//===- tests/arch_test.cpp - Machine substrate tests -------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//

#include "arch/BranchPredictor.h"
#include "arch/CacheSim.h"
#include "arch/MachineModel.h"
#include "arch/Timing.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::arch;
using namespace sdt::isa;

// --- CacheSim ------------------------------------------------------------

TEST(CacheSimTest, ColdMissThenHit) {
  CacheSim C({1024, 32, 2});
  EXPECT_FALSE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x101F)); // Same line.
  EXPECT_FALSE(C.access(0x1020)); // Next line.
  EXPECT_EQ(C.hits(), 2u);
  EXPECT_EQ(C.misses(), 2u);
}

TEST(CacheSimTest, DirectMappedConflicts) {
  CacheSim C({256, 32, 1}); // 8 sets.
  EXPECT_FALSE(C.access(0x0000));
  EXPECT_FALSE(C.access(0x0100)); // Same set (0x100 = 8 lines), evicts.
  EXPECT_FALSE(C.access(0x0000)); // Conflict miss.
}

TEST(CacheSimTest, TwoWayHoldsBothConflicting) {
  CacheSim C({512, 32, 2}); // 8 sets.
  EXPECT_FALSE(C.access(0x0000));
  EXPECT_FALSE(C.access(0x0100));
  EXPECT_TRUE(C.access(0x0000));
  EXPECT_TRUE(C.access(0x0100));
}

TEST(CacheSimTest, LruEvictsOldest) {
  CacheSim C({256, 32, 2}); // 4 sets; set 0 holds lines 0x000/0x100/0x200.
  C.access(0x0000);
  C.access(0x0100);
  C.access(0x0000);  // Refresh line 0; 0x100 is now LRU.
  C.access(0x0200);  // Evicts 0x100.
  EXPECT_TRUE(C.isResident(0x0000));
  EXPECT_FALSE(C.isResident(0x0100));
  EXPECT_TRUE(C.isResident(0x0200));
}

TEST(CacheSimTest, FlushDropsEverything) {
  CacheSim C({1024, 32, 2});
  C.access(0x1000);
  EXPECT_TRUE(C.isResident(0x1000));
  C.flush();
  EXPECT_FALSE(C.isResident(0x1000));
  EXPECT_FALSE(C.access(0x1000));
}

TEST(CacheSimTest, GeometryDerived) {
  CacheConfig Cfg{16 * 1024, 64, 4};
  EXPECT_EQ(Cfg.numSets(), 64u);
  CacheSim C(Cfg);
  EXPECT_EQ(C.config().SizeBytes, 16u * 1024u);
}

TEST(CacheSimTest, IsResidentDoesNotMutate) {
  CacheSim C({256, 32, 1});
  C.isResident(0x1000);
  EXPECT_EQ(C.accesses(), 0u);
  EXPECT_FALSE(C.access(0x1000)); // Still a cold miss.
}

// --- BranchPredictor -----------------------------------------------------

TEST(BranchPredictorTest, LearnsStableConditional) {
  BranchPredictor P({64, 16, 4});
  // Always-taken branch: once the global history register saturates and
  // the counters train, predictions are correct.
  for (int I = 0; I != 20; ++I)
    P.predictConditional(0x1000, true);
  uint64_t Before = P.conditionalMispredicts();
  for (int I = 0; I != 100; ++I)
    EXPECT_TRUE(P.predictConditional(0x1000, true));
  EXPECT_EQ(P.conditionalMispredicts(), Before);
}

TEST(BranchPredictorTest, BtbRemembersLastTarget) {
  BranchPredictor P({64, 16, 4});
  EXPECT_FALSE(P.predictIndirect(0x1000, 0x2000)); // Cold.
  EXPECT_TRUE(P.predictIndirect(0x1000, 0x2000));
  EXPECT_FALSE(P.predictIndirect(0x1000, 0x3000)); // Target changed.
  EXPECT_TRUE(P.predictIndirect(0x1000, 0x3000));
}

TEST(BranchPredictorTest, RasMatchesNestedCalls) {
  BranchPredictor P({64, 16, 8});
  P.pushReturn(0x100);
  P.pushReturn(0x200);
  P.pushReturn(0x300);
  EXPECT_TRUE(P.predictReturn(0x300));
  EXPECT_TRUE(P.predictReturn(0x200));
  EXPECT_TRUE(P.predictReturn(0x100));
  EXPECT_EQ(P.returnMispredicts(), 0u);
}

TEST(BranchPredictorTest, RasEmptyMispredicts) {
  BranchPredictor P({64, 16, 4});
  EXPECT_FALSE(P.predictReturn(0x100));
  EXPECT_EQ(P.returnMispredicts(), 1u);
}

TEST(BranchPredictorTest, RasOverflowWrapsAround) {
  BranchPredictor P({64, 16, 2}); // Depth 2.
  P.pushReturn(0x100);
  P.pushReturn(0x200);
  P.pushReturn(0x300); // Overwrites 0x100's slot.
  EXPECT_TRUE(P.predictReturn(0x300));
  EXPECT_TRUE(P.predictReturn(0x200));
  EXPECT_FALSE(P.predictReturn(0x100)); // Lost to overflow.
}

TEST(BranchPredictorTest, ResetClearsState) {
  BranchPredictor P({64, 16, 4});
  P.predictIndirect(0x1000, 0x2000);
  P.reset();
  EXPECT_EQ(P.indirectMispredicts(), 0u);
  EXPECT_FALSE(P.predictIndirect(0x1000, 0x2000)); // Cold again.
}

// --- MachineModel --------------------------------------------------------

TEST(MachineModelTest, FactoriesHaveNames) {
  EXPECT_EQ(x86Model().Name, "x86");
  EXPECT_EQ(sparcModel().Name, "sparc");
  EXPECT_EQ(simpleModel().Name, "simple");
}

TEST(MachineModelTest, LookupByName) {
  for (const std::string &Name : allModelNames()) {
    std::optional<MachineModel> M = modelByName(Name);
    ASSERT_TRUE(M.has_value());
    EXPECT_EQ(M->Name, Name);
  }
  EXPECT_FALSE(modelByName("vax").has_value());
}

TEST(MachineModelTest, X86FlagSaveAsymmetry) {
  // The paper's x86 premise: full flag save is much more expensive than
  // the light variant; on SPARC both are cheap.
  MachineModel X = x86Model();
  EXPECT_GT(X.FlagSaveFullCost, 5 * X.FlagSaveLightCost);
  MachineModel S = sparcModel();
  EXPECT_LE(S.FlagSaveFullCost, 2 * S.FlagSaveLightCost + 2);
}

TEST(MachineModelTest, DispatchCostDominatesInlineLookup) {
  // In every model, a dispatcher round trip (context save + map probe +
  // restore) must dwarf an IBTC hit's handful of ops — the premise that
  // makes inline translation worth it.
  for (const std::string &Name : allModelNames()) {
    MachineModel M = *modelByName(Name);
    unsigned Dispatch =
        M.ContextSaveCost + M.MapLookupCost + M.ContextRestoreCost;
    unsigned IbtcHit = M.FlagSaveLightCost + 3 * M.AluCost + 2 * M.LoadCost +
                       M.IndirectCost + M.FlagRestoreLightCost;
    EXPECT_GT(Dispatch, 3 * IbtcHit) << Name;
  }
}

// --- TimingModel ---------------------------------------------------------

TEST(TimingModelTest, CategoriesAccumulateSeparately) {
  TimingModel T(simpleModel());
  T.charge(10); // App by default.
  {
    TimingModel::CategoryScope Scope(T, CycleCategory::Dispatch);
    T.charge(5);
  }
  T.charge(1);
  EXPECT_EQ(T.cycles(CycleCategory::App), 11u);
  EXPECT_EQ(T.cycles(CycleCategory::Dispatch), 5u);
  EXPECT_EQ(T.totalCycles(), 16u);
}

TEST(TimingModelTest, CategoryScopeRestores) {
  TimingModel T(simpleModel());
  T.setCategory(CycleCategory::IBLookup);
  {
    TimingModel::CategoryScope Scope(T, CycleCategory::Link);
    EXPECT_EQ(T.category(), CycleCategory::Link);
  }
  EXPECT_EQ(T.category(), CycleCategory::IBLookup);
}

TEST(TimingModelTest, FetchChargesOnlyOnMiss) {
  MachineModel M = simpleModel();
  M.ICacheMissPenalty = 50;
  TimingModel T(M);
  T.chargeFetch(0x1000);
  EXPECT_EQ(T.totalCycles(), 50u);
  T.chargeFetch(0x1000);
  EXPECT_EQ(T.totalCycles(), 50u); // Hit: no charge.
}

TEST(TimingModelTest, LoadChargesOpPlusMiss) {
  MachineModel M = simpleModel();
  M.LoadCost = 2;
  M.DCacheMissPenalty = 30;
  TimingModel T(M);
  T.chargeLoad(0x2000);
  EXPECT_EQ(T.totalCycles(), 32u);
  T.chargeLoad(0x2000);
  EXPECT_EQ(T.totalCycles(), 34u);
}

TEST(TimingModelTest, ChargeCodeRangeTouchesEveryLine) {
  MachineModel M = simpleModel();
  M.ICacheMissPenalty = 10;
  TimingModel T(M); // 32-byte lines.
  T.chargeCodeRange(0x1000, 64); // Exactly 2 lines.
  EXPECT_EQ(T.totalCycles(), 20u);
  T.chargeCodeRange(0x1000, 64);
  EXPECT_EQ(T.totalCycles(), 20u); // All hits now.
  T.chargeCodeRange(0x103C, 8); // Straddles lines 1 and 2.
  EXPECT_EQ(T.totalCycles(), 30u); // One new line.
}

TEST(TimingModelTest, ChargeCodeRangeZeroBytesFree) {
  TimingModel T(simpleModel());
  T.chargeCodeRange(0x1000, 0);
  EXPECT_EQ(T.totalCycles(), 0u);
}

TEST(TimingModelTest, ExecuteCostsByOpClass) {
  MachineModel M = simpleModel();
  M.AluCost = 1;
  M.MulCost = 7;
  M.DivCost = 20;
  TimingModel T(M);
  T.chargeExecute(makeR(Opcode::Add, 1, 2, 3));
  EXPECT_EQ(T.totalCycles(), 1u);
  T.chargeExecute(makeR(Opcode::Mul, 1, 2, 3));
  EXPECT_EQ(T.totalCycles(), 8u);
  T.chargeExecute(makeR(Opcode::Rem, 1, 2, 3));
  EXPECT_EQ(T.totalCycles(), 28u);
}

TEST(TimingModelTest, MispredictPenaltyApplied) {
  MachineModel M = simpleModel();
  M.IndirectCost = 1;
  M.IndirectMispredictPenalty = 100;
  TimingModel T(M);
  T.chargeIndirectJump(0x1000, 0x2000); // Cold BTB: mispredict.
  EXPECT_EQ(T.totalCycles(), 101u);
  T.chargeIndirectJump(0x1000, 0x2000); // Predicted.
  EXPECT_EQ(T.totalCycles(), 102u);
}

TEST(TimingModelTest, ReturnPredictionViaRas) {
  MachineModel M = simpleModel();
  M.IndirectCost = 1;
  M.ReturnMispredictPenalty = 100;
  TimingModel T(M);
  T.chargeCallLink(0x1004);
  uint64_t AfterCall = T.totalCycles();
  T.chargeReturn(0x1004); // RAS hit.
  EXPECT_EQ(T.totalCycles(), AfterCall + 1);
  T.chargeReturn(0x1004); // RAS empty now: mispredict.
  EXPECT_EQ(T.totalCycles(), AfterCall + 102);
}

TEST(TimingModelTest, FlagSaveVariants) {
  MachineModel M = simpleModel();
  M.FlagSaveFullCost = 40;
  M.FlagSaveLightCost = 2;
  TimingModel T(M);
  T.chargeFlagSave(/*FullSave=*/true);
  EXPECT_EQ(T.totalCycles(), 40u);
  T.chargeFlagSave(/*FullSave=*/false);
  EXPECT_EQ(T.totalCycles(), 42u);
}

TEST(TimingModelTest, TranslationScalesWithInstrCount) {
  MachineModel M = simpleModel();
  M.TranslateCostPerInstr = 10;
  TimingModel T(M);
  T.chargeTranslation(7);
  EXPECT_EQ(T.totalCycles(), 70u);
}

TEST(CycleCategoryTest, NamesDistinct) {
  EXPECT_STREQ(cycleCategoryName(CycleCategory::App), "app");
  EXPECT_STREQ(cycleCategoryName(CycleCategory::Translate), "translate");
  EXPECT_STREQ(cycleCategoryName(CycleCategory::Dispatch), "dispatch");
  EXPECT_STREQ(cycleCategoryName(CycleCategory::IBLookup), "ib-lookup");
  EXPECT_STREQ(cycleCategoryName(CycleCategory::Link), "link");
}
