//===- tests/arch_test.cpp - Machine substrate tests -------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//

#include "arch/BranchPredictor.h"
#include "arch/CacheSim.h"
#include "arch/MachineModel.h"
#include "arch/Timing.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::arch;
using namespace sdt::isa;

// --- CacheSim ------------------------------------------------------------

TEST(CacheSimTest, ColdMissThenHit) {
  CacheSim C({1024, 32, 2});
  EXPECT_FALSE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x101F)); // Same line.
  EXPECT_FALSE(C.access(0x1020)); // Next line.
  EXPECT_EQ(C.hits(), 2u);
  EXPECT_EQ(C.misses(), 2u);
}

TEST(CacheSimTest, DirectMappedConflicts) {
  CacheSim C({256, 32, 1}); // 8 sets.
  EXPECT_FALSE(C.access(0x0000));
  EXPECT_FALSE(C.access(0x0100)); // Same set (0x100 = 8 lines), evicts.
  EXPECT_FALSE(C.access(0x0000)); // Conflict miss.
}

TEST(CacheSimTest, TwoWayHoldsBothConflicting) {
  CacheSim C({512, 32, 2}); // 8 sets.
  EXPECT_FALSE(C.access(0x0000));
  EXPECT_FALSE(C.access(0x0100));
  EXPECT_TRUE(C.access(0x0000));
  EXPECT_TRUE(C.access(0x0100));
}

TEST(CacheSimTest, LruEvictsOldest) {
  CacheSim C({256, 32, 2}); // 4 sets; set 0 holds lines 0x000/0x100/0x200.
  C.access(0x0000);
  C.access(0x0100);
  C.access(0x0000);  // Refresh line 0; 0x100 is now LRU.
  C.access(0x0200);  // Evicts 0x100.
  EXPECT_TRUE(C.isResident(0x0000));
  EXPECT_FALSE(C.isResident(0x0100));
  EXPECT_TRUE(C.isResident(0x0200));
}

TEST(CacheSimTest, FlushDropsEverything) {
  CacheSim C({1024, 32, 2});
  C.access(0x1000);
  EXPECT_TRUE(C.isResident(0x1000));
  C.flush();
  EXPECT_FALSE(C.isResident(0x1000));
  EXPECT_FALSE(C.access(0x1000));
}

TEST(CacheSimTest, GeometryDerived) {
  CacheConfig Cfg{16 * 1024, 64, 4};
  EXPECT_EQ(Cfg.numSets(), 64u);
  CacheSim C(Cfg);
  EXPECT_EQ(C.config().SizeBytes, 16u * 1024u);
}

TEST(CacheSimTest, IsResidentDoesNotMutate) {
  CacheSim C({256, 32, 1});
  C.isResident(0x1000);
  EXPECT_EQ(C.accesses(), 0u);
  EXPECT_FALSE(C.access(0x1000)); // Still a cold miss.
}

// --- BranchPredictor -----------------------------------------------------

TEST(BranchPredictorTest, LearnsStableConditional) {
  BranchPredictor P({64, 16, 4});
  // Always-taken branch: once the global history register saturates and
  // the counters train, predictions are correct.
  for (int I = 0; I != 20; ++I)
    P.predictConditional(0x1000, true);
  uint64_t Before = P.conditionalMispredicts();
  for (int I = 0; I != 100; ++I)
    EXPECT_TRUE(P.predictConditional(0x1000, true));
  EXPECT_EQ(P.conditionalMispredicts(), Before);
}

TEST(BranchPredictorTest, BtbRemembersLastTarget) {
  BranchPredictor P({64, 16, 4});
  EXPECT_FALSE(P.predictIndirect(0x1000, 0x2000)); // Cold.
  EXPECT_TRUE(P.predictIndirect(0x1000, 0x2000));
  EXPECT_FALSE(P.predictIndirect(0x1000, 0x3000)); // Target changed.
  EXPECT_TRUE(P.predictIndirect(0x1000, 0x3000));
}

TEST(BranchPredictorTest, RasMatchesNestedCalls) {
  BranchPredictor P({64, 16, 8});
  P.pushReturn(0x100);
  P.pushReturn(0x200);
  P.pushReturn(0x300);
  EXPECT_TRUE(P.predictReturn(0x300));
  EXPECT_TRUE(P.predictReturn(0x200));
  EXPECT_TRUE(P.predictReturn(0x100));
  EXPECT_EQ(P.returnMispredicts(), 0u);
}

TEST(BranchPredictorTest, RasEmptyMispredicts) {
  BranchPredictor P({64, 16, 4});
  EXPECT_FALSE(P.predictReturn(0x100));
  EXPECT_EQ(P.returnMispredicts(), 1u);
}

TEST(BranchPredictorTest, RasOverflowWrapsAround) {
  BranchPredictor P({64, 16, 2}); // Depth 2.
  P.pushReturn(0x100);
  P.pushReturn(0x200);
  P.pushReturn(0x300); // Overwrites 0x100's slot.
  EXPECT_TRUE(P.predictReturn(0x300));
  EXPECT_TRUE(P.predictReturn(0x200));
  EXPECT_FALSE(P.predictReturn(0x100)); // Lost to overflow.
}

TEST(BranchPredictorTest, ResetClearsState) {
  BranchPredictor P({64, 16, 4});
  P.predictIndirect(0x1000, 0x2000);
  P.reset();
  EXPECT_EQ(P.indirectMispredicts(), 0u);
  EXPECT_FALSE(P.predictIndirect(0x1000, 0x2000)); // Cold again.
}

TEST(BranchPredictorTest, GshareInitialStatePredictsNotTaken) {
  // Counters initialise to 1 = weakly not-taken: a fresh predictor gets
  // a not-taken branch right and a taken branch wrong. Pinned so the
  // documented initial state and the code cannot drift apart again.
  BranchPredictor P({64, 16, 4});
  EXPECT_TRUE(P.predictConditional(0x1000, false));
  BranchPredictor Q({64, 16, 4});
  EXPECT_FALSE(Q.predictConditional(0x1000, true));
  EXPECT_EQ(Q.conditionalMispredicts(), 1u);
}

TEST(BranchPredictorTest, GshareIndexAliasing) {
  // 64 counters: PCs 64 words apart XOR-fold onto the same counter when
  // the global history is identical, so training one branch leaks into
  // its alias — the classic gshare conflict.
  BranchPredictor P({64, 16, 4});
  for (int I = 0; I != 20; ++I)
    P.predictConditional(0x1000, true); // Saturate; history = all ones.
  // 0x1100 = 0x1000 + 64 words: same index under the same history.
  EXPECT_TRUE(P.predictConditional(0x1100, true));
}

// The sentinel regression: target 0 is a legal guest address, and the
// old table encoded "empty" as target 0 with no valid bit — a cold
// entry counted a genuine 0-target as a correct prediction. This test
// fails on that implementation.
TEST(BranchPredictorTest, ColdEntryDoesNotPredictTargetZero) {
  BranchPredictor P({64, 16, 4});
  EXPECT_FALSE(P.predictIndirect(0x1000, 0x0));
  EXPECT_EQ(P.indirectMispredicts(), 1u);
  EXPECT_TRUE(P.predictIndirect(0x1000, 0x0)); // Now trained.
}

TEST(BranchPredictorTest, BtbAliasedPcIsNotAHit) {
  // 4-entry BTB: 0x1000 and 0x1010 share entry 0. Without per-entry
  // tags the second branch would "hit" on the first one's target.
  BranchPredictor P({64, 4, 4});
  P.predictIndirect(0x1000, 0x2000);
  EXPECT_FALSE(P.predictIndirect(0x1010, 0x2000)); // Alias, not a hit.
  // And the alias evicted the original's entry.
  EXPECT_FALSE(P.predictIndirect(0x1000, 0x2000));
}

namespace {
PredictorConfig configOfKind(PredictorKind Kind, uint32_t Entries = 16,
                             uint32_t Ways = 2, uint32_t HistBits = 8) {
  PredictorConfig C{64, Entries, 4};
  C.Kind = Kind;
  C.IbtbWays = Ways;
  C.IbtbHistoryBits = HistBits;
  return C;
}
} // namespace

TEST(BranchPredictorTest, NoneBoundMispredictsEverything) {
  BranchPredictor P(configOfKind(PredictorKind::None));
  for (int I = 0; I != 5; ++I)
    EXPECT_FALSE(P.predictIndirect(0x1000, 0x2000)); // Never trains.
  P.pushReturn(0x100);
  EXPECT_FALSE(P.predictReturn(0x100)); // Even RAS-friendly returns.
  EXPECT_EQ(P.indirectMispredicts(), 5u);
  EXPECT_EQ(P.returnMispredicts(), 1u);
}

TEST(BranchPredictorTest, PerfectBoundPredictsEverything) {
  BranchPredictor P(configOfKind(PredictorKind::Perfect));
  EXPECT_TRUE(P.predictIndirect(0x1000, 0x2000)); // Cold is still right.
  EXPECT_TRUE(P.predictIndirect(0x1000, 0x3000));
  EXPECT_TRUE(P.predictReturn(0x100)); // Empty RAS is still right.
  EXPECT_EQ(P.indirectMispredicts(), 0u);
  EXPECT_EQ(P.returnMispredicts(), 0u);
  EXPECT_EQ(P.indirectLookups(), 2u);
  EXPECT_EQ(P.returnLookups(), 1u);
}

// iBTB geometry note for the tests below: 8 entries x 2 ways = 4 sets,
// set = ((Pc >> 2) ^ PathHistory) & 3. Targets are chosen with
// (Target >> 2) & 0xF == 0 so the path history stays zero and the set
// index is purely PC-derived.
TEST(BranchPredictorTest, IbtbTagMismatchIsAMiss) {
  BranchPredictor P(configOfKind(PredictorKind::TaggedIbtb, 8, 2));
  P.predictIndirect(0x1000, 0x2000);
  EXPECT_TRUE(P.predictIndirect(0x1000, 0x2000));
  // 0x1010 maps to the same set but carries a different tag: with both
  // ways available it allocates its own way instead of falsely hitting.
  EXPECT_FALSE(P.predictIndirect(0x1010, 0x2000));
  EXPECT_TRUE(P.predictIndirect(0x1010, 0x2000));
  EXPECT_TRUE(P.predictIndirect(0x1000, 0x2000)); // Still co-resident.
}

TEST(BranchPredictorTest, IbtbCapacityMissEvictsLru) {
  BranchPredictor P(configOfKind(PredictorKind::TaggedIbtb, 8, 2));
  P.predictIndirect(0x1000, 0x2000); // Set 0, way A.
  P.predictIndirect(0x1010, 0x2040); // Set 0, way B.
  EXPECT_TRUE(P.predictIndirect(0x1000, 0x2000));
  EXPECT_TRUE(P.predictIndirect(0x1010, 0x2040)); // LRU is now 0x1000.
  P.predictIndirect(0x1020, 0x2080);              // Evicts 0x1000.
  EXPECT_TRUE(P.predictIndirect(0x1010, 0x2040)); // Survivor first: the
  // miss below re-allocates and would evict it.
  EXPECT_FALSE(P.predictIndirect(0x1000, 0x2000)); // Capacity miss.
}

TEST(BranchPredictorTest, IbtbPathHistorySplitsPolymorphicSite) {
  // One site alternating between two targets defeats a last-target BTB
  // completely but trains cleanly in the iBTB: the path history differs
  // before each target, so the site occupies one entry per context.
  BranchPredictor Btb({64, 64, 4});
  BranchPredictor Ibtb(configOfKind(PredictorKind::TaggedIbtb, 64, 4));
  const uint32_t Site = 0x1000, A = 0x2004, B = 0x2008;
  for (int I = 0; I != 8; ++I) { // Warm up both.
    Btb.predictIndirect(Site, A);
    Btb.predictIndirect(Site, B);
    Ibtb.predictIndirect(Site, A);
    Ibtb.predictIndirect(Site, B);
  }
  uint64_t BtbBefore = Btb.indirectMispredicts();
  uint64_t IbtbBefore = Ibtb.indirectMispredicts();
  for (int I = 0; I != 8; ++I) {
    Btb.predictIndirect(Site, A);
    Btb.predictIndirect(Site, B);
    EXPECT_TRUE(Ibtb.predictIndirect(Site, A));
    EXPECT_TRUE(Ibtb.predictIndirect(Site, B));
  }
  EXPECT_EQ(Btb.indirectMispredicts(), BtbBefore + 16); // Every one.
  EXPECT_EQ(Ibtb.indirectMispredicts(), IbtbBefore);
}

TEST(BranchPredictorTest, ResetClearsIbtbAndCounters) {
  BranchPredictor P(configOfKind(PredictorKind::TaggedIbtb, 8, 2));
  P.predictIndirect(0x1000, 0x2004); // Nonzero path history.
  P.predictIndirect(0x1000, 0x2004);
  P.predictReturn(0x100);
  EXPECT_NE(P.indirectLookups(), 0u);
  P.reset();
  EXPECT_EQ(P.indirectLookups(), 0u);
  EXPECT_EQ(P.returnLookups(), 0u);
  EXPECT_EQ(P.indirectMispredicts(), 0u);
  EXPECT_EQ(P.returnMispredicts(), 0u);
  // Cold again, and set indexing starts from zero path history: with a
  // zero-nibble target the second access only hits if the stale
  // pre-reset history was actually cleared.
  EXPECT_FALSE(P.predictIndirect(0x1000, 0x2000));
  EXPECT_TRUE(P.predictIndirect(0x1000, 0x2000));
}

TEST(PredictorConfigTest, DescribeAndParse) {
  PredictorConfig C{4096, 512, 16};
  EXPECT_EQ(C.describe(), "btb:512");
  C.Kind = PredictorKind::TaggedIbtb;
  C.IbtbWays = 4;
  C.IbtbHistoryBits = 8;
  EXPECT_EQ(C.describe(), "ibtb:512x4h8");
  C.Kind = PredictorKind::None;
  EXPECT_EQ(C.describe(), "none");
  C.Kind = PredictorKind::Perfect;
  EXPECT_EQ(C.describe(), "perfect");

  for (PredictorKind K :
       {PredictorKind::None, PredictorKind::Btb, PredictorKind::TaggedIbtb,
        PredictorKind::Perfect})
    EXPECT_EQ(parsePredictorKind(predictorKindName(K)), K);
  EXPECT_FALSE(parsePredictorKind("oracle").has_value());
}

// --- MachineModel --------------------------------------------------------

TEST(MachineModelTest, FactoriesHaveNames) {
  EXPECT_EQ(x86Model().Name, "x86");
  EXPECT_EQ(sparcModel().Name, "sparc");
  EXPECT_EQ(simpleModel().Name, "simple");
}

TEST(MachineModelTest, LookupByName) {
  for (const std::string &Name : allModelNames()) {
    std::optional<MachineModel> M = modelByName(Name);
    ASSERT_TRUE(M.has_value());
    EXPECT_EQ(M->Name, Name);
  }
  EXPECT_FALSE(modelByName("vax").has_value());
}

TEST(MachineModelTest, X86FlagSaveAsymmetry) {
  // The paper's x86 premise: full flag save is much more expensive than
  // the light variant; on SPARC both are cheap.
  MachineModel X = x86Model();
  EXPECT_GT(X.FlagSaveFullCost, 5 * X.FlagSaveLightCost);
  MachineModel S = sparcModel();
  EXPECT_LE(S.FlagSaveFullCost, 2 * S.FlagSaveLightCost + 2);
}

TEST(MachineModelTest, DispatchCostDominatesInlineLookup) {
  // In every model, a dispatcher round trip (context save + map probe +
  // restore) must dwarf an IBTC hit's handful of ops — the premise that
  // makes inline translation worth it.
  for (const std::string &Name : allModelNames()) {
    MachineModel M = *modelByName(Name);
    unsigned Dispatch =
        M.ContextSaveCost + M.MapLookupCost + M.ContextRestoreCost;
    unsigned IbtcHit = M.FlagSaveLightCost + 3 * M.AluCost + 2 * M.LoadCost +
                       M.IndirectCost + M.FlagRestoreLightCost;
    EXPECT_GT(Dispatch, 3 * IbtcHit) << Name;
  }
}

// --- TimingModel ---------------------------------------------------------

TEST(TimingModelTest, CategoriesAccumulateSeparately) {
  TimingModel T(simpleModel());
  T.charge(10); // App by default.
  {
    TimingModel::CategoryScope Scope(T, CycleCategory::Dispatch);
    T.charge(5);
  }
  T.charge(1);
  EXPECT_EQ(T.cycles(CycleCategory::App), 11u);
  EXPECT_EQ(T.cycles(CycleCategory::Dispatch), 5u);
  EXPECT_EQ(T.totalCycles(), 16u);
}

TEST(TimingModelTest, CategoryScopeRestores) {
  TimingModel T(simpleModel());
  T.setCategory(CycleCategory::IBLookup);
  {
    TimingModel::CategoryScope Scope(T, CycleCategory::Link);
    EXPECT_EQ(T.category(), CycleCategory::Link);
  }
  EXPECT_EQ(T.category(), CycleCategory::IBLookup);
}

TEST(TimingModelTest, FetchChargesOnlyOnMiss) {
  MachineModel M = simpleModel();
  M.ICacheMissPenalty = 50;
  TimingModel T(M);
  T.chargeFetch(0x1000);
  EXPECT_EQ(T.totalCycles(), 50u);
  T.chargeFetch(0x1000);
  EXPECT_EQ(T.totalCycles(), 50u); // Hit: no charge.
}

TEST(TimingModelTest, LoadChargesOpPlusMiss) {
  MachineModel M = simpleModel();
  M.LoadCost = 2;
  M.DCacheMissPenalty = 30;
  TimingModel T(M);
  T.chargeLoad(0x2000);
  EXPECT_EQ(T.totalCycles(), 32u);
  T.chargeLoad(0x2000);
  EXPECT_EQ(T.totalCycles(), 34u);
}

TEST(TimingModelTest, ChargeCodeRangeTouchesEveryLine) {
  MachineModel M = simpleModel();
  M.ICacheMissPenalty = 10;
  TimingModel T(M); // 32-byte lines.
  T.chargeCodeRange(0x1000, 64); // Exactly 2 lines.
  EXPECT_EQ(T.totalCycles(), 20u);
  T.chargeCodeRange(0x1000, 64);
  EXPECT_EQ(T.totalCycles(), 20u); // All hits now.
  T.chargeCodeRange(0x103C, 8); // Straddles lines 1 and 2.
  EXPECT_EQ(T.totalCycles(), 30u); // One new line.
}

TEST(TimingModelTest, ChargeCodeRangeZeroBytesFree) {
  TimingModel T(simpleModel());
  T.chargeCodeRange(0x1000, 0);
  EXPECT_EQ(T.totalCycles(), 0u);
}

TEST(TimingModelTest, ExecuteCostsByOpClass) {
  MachineModel M = simpleModel();
  M.AluCost = 1;
  M.MulCost = 7;
  M.DivCost = 20;
  TimingModel T(M);
  T.chargeExecute(makeR(Opcode::Add, 1, 2, 3));
  EXPECT_EQ(T.totalCycles(), 1u);
  T.chargeExecute(makeR(Opcode::Mul, 1, 2, 3));
  EXPECT_EQ(T.totalCycles(), 8u);
  T.chargeExecute(makeR(Opcode::Rem, 1, 2, 3));
  EXPECT_EQ(T.totalCycles(), 28u);
}

TEST(TimingModelTest, MispredictPenaltyApplied) {
  MachineModel M = simpleModel();
  M.IndirectCost = 1;
  M.IndirectMispredictPenalty = 100;
  TimingModel T(M);
  T.chargeIndirectJump(0x1000, 0x2000); // Cold BTB: mispredict.
  EXPECT_EQ(T.totalCycles(), 101u);
  T.chargeIndirectJump(0x1000, 0x2000); // Predicted.
  EXPECT_EQ(T.totalCycles(), 102u);
}

TEST(TimingModelTest, ReturnPredictionViaRas) {
  MachineModel M = simpleModel();
  M.IndirectCost = 1;
  M.ReturnMispredictPenalty = 100;
  TimingModel T(M);
  T.chargeCallLink(0x1004);
  uint64_t AfterCall = T.totalCycles();
  T.chargeReturn(0x1004); // RAS hit.
  EXPECT_EQ(T.totalCycles(), AfterCall + 1);
  T.chargeReturn(0x1004); // RAS empty now: mispredict.
  EXPECT_EQ(T.totalCycles(), AfterCall + 102);
}

TEST(TimingModelTest, FlagSaveVariants) {
  MachineModel M = simpleModel();
  M.FlagSaveFullCost = 40;
  M.FlagSaveLightCost = 2;
  TimingModel T(M);
  T.chargeFlagSave(/*FullSave=*/true);
  EXPECT_EQ(T.totalCycles(), 40u);
  T.chargeFlagSave(/*FullSave=*/false);
  EXPECT_EQ(T.totalCycles(), 42u);
}

TEST(TimingModelTest, TranslationScalesWithInstrCount) {
  MachineModel M = simpleModel();
  M.TranslateCostPerInstr = 10;
  TimingModel T(M);
  T.chargeTranslation(7);
  EXPECT_EQ(T.totalCycles(), 70u);
}

TEST(CycleCategoryTest, NamesDistinct) {
  EXPECT_STREQ(cycleCategoryName(CycleCategory::App), "app");
  EXPECT_STREQ(cycleCategoryName(CycleCategory::Translate), "translate");
  EXPECT_STREQ(cycleCategoryName(CycleCategory::Dispatch), "dispatch");
  EXPECT_STREQ(cycleCategoryName(CycleCategory::IBLookup), "ib-lookup");
  EXPECT_STREQ(cycleCategoryName(CycleCategory::Link), "link");
}
