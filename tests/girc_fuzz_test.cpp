//===- tests/girc_fuzz_test.cpp - MinC compiler fuzzing ----------*- C++ -*-===//
//
// Part of StrataIB.
//
// Differential fuzzing of the girc compiler: randomly generated MinC
// programs must produce identical observable behaviour across every
// compiler configuration (optimiser on/off × register allocation
// on/off) and under the SDT — any divergence is a miscompile.
//
//===----------------------------------------------------------------------===//

#include "core/SdtEngine.h"
#include "girc/Compiler.h"
#include "girc/RandomMinc.h"
#include "vm/GuestVM.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::girc;

namespace {

vm::RunResult runProgram(const isa::Program &P) {
  vm::ExecOptions Exec;
  Exec.MaxInstructions = 20000000;
  auto VM = vm::GuestVM::create(P, Exec);
  EXPECT_TRUE(static_cast<bool>(VM));
  return (*VM)->run();
}

class MincFuzzTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST(RandomMincTest, GenerationDeterministic) {
  EXPECT_EQ(generateRandomMinc(7), generateRandomMinc(7));
  EXPECT_NE(generateRandomMinc(7), generateRandomMinc(8));
}

TEST_P(MincFuzzTest, AllCompilerConfigsAgree) {
  std::string Source = generateRandomMinc(GetParam());

  vm::RunResult Reference;
  bool First = true;
  for (bool Optimize : {false, true}) {
    for (bool RegAlloc : {false, true}) {
      CompileOptions Opts;
      Opts.Optimize = Optimize;
      Opts.RegisterAllocate = RegAlloc;
      Expected<isa::Program> P = compile(Source, Opts);
      ASSERT_TRUE(static_cast<bool>(P))
          << P.error().message() << "\n"
          << Source;
      vm::RunResult R = runProgram(*P);
      ASSERT_TRUE(R.finishedNormally())
          << R.FaultMessage << "\n(opt=" << Optimize
          << " regalloc=" << RegAlloc << ")\n"
          << Source;
      if (First) {
        Reference = R;
        First = false;
        continue;
      }
      EXPECT_EQ(R.Output, Reference.Output)
          << "(opt=" << Optimize << " regalloc=" << RegAlloc << ")";
      EXPECT_EQ(R.Checksum, Reference.Checksum)
          << "(opt=" << Optimize << " regalloc=" << RegAlloc << ")";
      EXPECT_EQ(R.ExitCode, Reference.ExitCode);
    }
  }
}

TEST_P(MincFuzzTest, TranslatedExecutionMatches) {
  std::string Source = generateRandomMinc(GetParam());
  Expected<isa::Program> P = compile(Source);
  ASSERT_TRUE(static_cast<bool>(P));
  vm::RunResult Native = runProgram(*P);
  ASSERT_TRUE(Native.finishedNormally()) << Native.FaultMessage;

  core::SdtOptions Opts;
  Opts.Returns = core::ReturnStrategy::FastReturn;
  Opts.EnableTraces = true;
  Opts.TraceHotThreshold = 5;
  vm::ExecOptions Exec;
  Exec.MaxInstructions = 20000000;
  auto Engine = core::SdtEngine::create(*P, Opts, Exec);
  ASSERT_TRUE(static_cast<bool>(Engine));
  vm::RunResult Translated = (*Engine)->run();
  EXPECT_EQ(Native.Output, Translated.Output);
  EXPECT_EQ(Native.Checksum, Translated.Checksum);
  EXPECT_EQ(Native.InstructionCount, Translated.InstructionCount);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MincFuzzTest,
                         ::testing::Range<uint64_t>(1, 25));

TEST(MincFuzzTest, BiggerProgramsStillAgree) {
  RandomMincOptions Big;
  Big.NumFunctions = 9;
  Big.StmtsPerFunction = 10;
  Big.MaxExprDepth = 4;
  for (uint64_t Seed = 100; Seed != 106; ++Seed) {
    std::string Source = generateRandomMinc(Seed, Big);
    CompileOptions NoOpt;
    NoOpt.Optimize = false;
    NoOpt.RegisterAllocate = false;
    Expected<isa::Program> P1 = compile(Source, NoOpt);
    Expected<isa::Program> P2 = compile(Source);
    ASSERT_TRUE(static_cast<bool>(P1)) << P1.error().message();
    ASSERT_TRUE(static_cast<bool>(P2)) << P2.error().message();
    vm::RunResult R1 = runProgram(*P1);
    vm::RunResult R2 = runProgram(*P2);
    ASSERT_TRUE(R1.finishedNormally()) << R1.FaultMessage;
    EXPECT_EQ(R1.Checksum, R2.Checksum) << "seed " << Seed;
    EXPECT_EQ(R1.Output, R2.Output) << "seed " << Seed;
  }
}
