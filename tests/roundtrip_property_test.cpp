//===- tests/roundtrip_property_test.cpp - Toolchain properties --*- C++ -*-===//
//
// Part of StrataIB.
//
// Property tests over randomly generated programs for the toolchain
// itself: encode/decode and disassemble/reassemble round trips, and
// generator determinism across option shapes.
//
//===----------------------------------------------------------------------===//

#include "assembler/Assembler.h"
#include "isa/Disassembler.h"
#include "isa/Encoding.h"
#include "support/Rng.h"
#include "vm/GuestVM.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::isa;

namespace {

class SeededTest : public ::testing::TestWithParam<uint64_t> {};
using EncodingRoundTrip = SeededTest;
using DisasmRoundTrip = SeededTest;
using GeneratorShape = SeededTest;

} // namespace

// Every instruction in a random program survives encode → decode.
TEST_P(EncodingRoundTrip, RandomProgramsDecodeToThemselves) {
  Expected<Program> P = workloads::generateRandomProgram(GetParam());
  ASSERT_TRUE(static_cast<bool>(P));
  unsigned Checked = 0;
  for (uint32_t Addr = P->loadAddress(); Addr < P->endAddress(); Addr += 4) {
    Expected<Instruction> I = P->fetch(Addr);
    if (!I)
      continue; // Data word.
    Expected<Instruction> Again = decode(encode(*I));
    ASSERT_TRUE(static_cast<bool>(Again));
    EXPECT_EQ(*Again, *I);
    ++Checked;
  }
  EXPECT_GT(Checked, 50u);
}

// Disassembling every instruction and reassembling the whole listing
// reproduces the image bit-for-bit (data words carried as .word).
TEST_P(DisasmRoundTrip, DisassembleReassembleIsIdentity) {
  Expected<Program> P = workloads::generateRandomProgram(GetParam());
  ASSERT_TRUE(static_cast<bool>(P));

  std::string Listing = ".org 0x1000\n";
  for (uint32_t Addr = P->loadAddress(); Addr < P->endAddress(); Addr += 4) {
    Expected<Instruction> I = P->fetch(Addr);
    uint32_t Word = readWordLE(&P->image()[Addr - P->loadAddress()]);
    if (I && encode(*I) == Word)
      Listing += "    " + disassemble(*I, Addr) + "\n";
    else
      Listing += "    .word " + std::to_string(Word) + "\n";
  }
  Expected<Program> P2 = assembler::assemble(Listing);
  ASSERT_TRUE(static_cast<bool>(P2)) << P2.error().message();
  EXPECT_EQ(P->image(), P2->image());
}

// Every option shape still yields terminating, deterministic programs.
TEST_P(GeneratorShape, AllFeatureCombinationsTerminate) {
  uint64_t Seed = GetParam();
  for (unsigned Mask = 0; Mask != 8; ++Mask) {
    workloads::RandomProgramOptions Opts;
    Opts.AllowIndirectCalls = Mask & 1;
    Opts.AllowIndirectJumps = Mask & 2;
    Opts.AllowLoops = Mask & 4;
    Opts.NumFunctions = 4;
    Opts.ItemsPerFunction = 5;
    Expected<Program> P = workloads::generateRandomProgram(Seed, Opts);
    ASSERT_TRUE(static_cast<bool>(P));
    vm::ExecOptions Exec;
    Exec.MaxInstructions = 2000000;
    auto VM = vm::GuestVM::create(*P, Exec);
    ASSERT_TRUE(static_cast<bool>(VM));
    vm::RunResult R = (*VM)->run();
    EXPECT_TRUE(R.finishedNormally())
        << "mask " << Mask << ": " << R.FaultMessage;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingRoundTrip,
                         ::testing::Range<uint64_t>(1, 9));
INSTANTIATE_TEST_SUITE_P(Seeds, DisasmRoundTrip,
                         ::testing::Range<uint64_t>(1, 9));
INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorShape,
                         ::testing::Range<uint64_t>(1, 7));

// The SPEC proxies also survive the disassemble/reassemble identity.
TEST(DisasmRoundTripWorkloads, GccProxyIsIdentity) {
  Expected<Program> P = workloads::buildWorkload("gcc", 1);
  ASSERT_TRUE(static_cast<bool>(P));
  std::string Listing = ".org 0x1000\n";
  for (uint32_t Addr = P->loadAddress(); Addr < P->endAddress(); Addr += 4) {
    Expected<Instruction> I = P->fetch(Addr);
    uint32_t Word = readWordLE(&P->image()[Addr - P->loadAddress()]);
    if (I && encode(*I) == Word)
      Listing += "    " + disassemble(*I, Addr) + "\n";
    else
      Listing += "    .word " + std::to_string(Word) + "\n";
  }
  Expected<Program> P2 = assembler::assemble(Listing);
  ASSERT_TRUE(static_cast<bool>(P2)) << P2.error().message();
  EXPECT_EQ(P->image(), P2->image());
}
