//===- tests/workloads_test.cpp - SPEC proxy workload tests ------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//

#include "core/SdtEngine.h"
#include "vm/GuestVM.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::vm;
using namespace sdt::workloads;

namespace {

RunResult runWorkload(const std::string &Name, uint32_t Scale) {
  Expected<isa::Program> P = buildWorkload(Name, Scale);
  EXPECT_TRUE(static_cast<bool>(P)) << (P ? "" : P.error().message());
  ExecOptions Exec;
  Exec.MaxInstructions = 100000000;
  auto VM = GuestVM::create(*P, Exec);
  EXPECT_TRUE(static_cast<bool>(VM));
  return (*VM)->run();
}

class WorkloadTest : public ::testing::TestWithParam<WorkloadInfo> {};

} // namespace

TEST(WorkloadRegistryTest, TwelveSpecIntProxies) {
  EXPECT_EQ(allWorkloads().size(), 12u);
  EXPECT_NE(findWorkload("perlbmk"), nullptr);
  EXPECT_EQ(findWorkload("specrand"), nullptr);
  EXPECT_FALSE(static_cast<bool>(buildWorkload("specrand", 1)));
}

TEST_P(WorkloadTest, TerminatesNormally) {
  RunResult R = runWorkload(GetParam().Name, 1);
  EXPECT_EQ(R.Reason, ExitReason::Exited) << R.FaultMessage;
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_GT(R.InstructionCount, 10000u);
}

TEST_P(WorkloadTest, DeterministicChecksum) {
  RunResult A = runWorkload(GetParam().Name, 1);
  RunResult B = runWorkload(GetParam().Name, 1);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_EQ(A.InstructionCount, B.InstructionCount);
}

TEST_P(WorkloadTest, ScaleIncreasesWork) {
  RunResult Small = runWorkload(GetParam().Name, 1);
  RunResult Large = runWorkload(GetParam().Name, 3);
  EXPECT_GT(Large.InstructionCount, Small.InstructionCount);
}

TEST_P(WorkloadTest, SourceAvailable) {
  Expected<std::string> Src = workloadSource(GetParam().Name, 1);
  ASSERT_TRUE(static_cast<bool>(Src));
  EXPECT_NE(Src->find("main:"), std::string::npos);
}

TEST_P(WorkloadTest, IBProfileMatchesAdvertised) {
  const WorkloadInfo &W = GetParam();
  RunResult R = runWorkload(W.Name, 2);
  const CtiStats &C = R.Cti;
  double PerK = 1000.0 * static_cast<double>(C.indirectTotal()) /
                static_cast<double>(R.InstructionCount);
  std::string Profile = W.IBProfile;
  if (Profile == "low-ib") {
    EXPECT_LT(PerK, 10.0) << W.Name;
  } else if (Profile == "returns") {
    EXPECT_GT(C.Returns, C.IndirectCalls) << W.Name;
    EXPECT_GT(C.Returns, C.IndirectJumps) << W.Name;
    EXPECT_GT(PerK, 10.0) << W.Name;
  } else if (Profile == "ind-jumps") {
    EXPECT_GT(C.IndirectJumps, C.Returns) << W.Name;
    EXPECT_GT(C.IndirectJumps, C.IndirectCalls) << W.Name;
    EXPECT_GT(PerK, 10.0) << W.Name;
  } else if (Profile == "ind-calls") {
    EXPECT_GT(C.IndirectCalls, 0u) << W.Name;
    EXPECT_GE(C.Returns, C.IndirectCalls) << W.Name; // Calls pair returns.
    EXPECT_GT(PerK, 10.0) << W.Name;
  } else {
    EXPECT_EQ(Profile, "mixed");
    EXPECT_GT(C.indirectTotal(), 0u) << W.Name;
  }
}

TEST_P(WorkloadTest, TransparentUnderDefaultSdt) {
  Expected<isa::Program> P = buildWorkload(GetParam().Name, 1);
  ASSERT_TRUE(static_cast<bool>(P));
  ExecOptions Exec;
  Exec.MaxInstructions = 100000000;
  auto VM = GuestVM::create(*P, Exec);
  ASSERT_TRUE(static_cast<bool>(VM));
  RunResult Native = (*VM)->run();
  auto Engine = core::SdtEngine::create(*P, core::SdtOptions(), Exec);
  ASSERT_TRUE(static_cast<bool>(Engine));
  RunResult Translated = (*Engine)->run();
  EXPECT_EQ(Native.Checksum, Translated.Checksum) << GetParam().Name;
  EXPECT_EQ(Native.InstructionCount, Translated.InstructionCount);
  EXPECT_EQ(Native.Reason, Translated.Reason) << Translated.FaultMessage;
}

INSTANTIATE_TEST_SUITE_P(
    AllTwelve, WorkloadTest, ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<WorkloadInfo> &Info) {
      return std::string(Info.param.Name);
    });

// --- Extra (non-SPEC) workloads ---------------------------------------------

class ExtraWorkloadTest : public ::testing::TestWithParam<WorkloadInfo> {};

TEST_P(ExtraWorkloadTest, TerminatesAndIsTransparent) {
  Expected<isa::Program> P = buildWorkload(GetParam().Name, 2);
  ASSERT_TRUE(static_cast<bool>(P));
  ExecOptions Exec;
  Exec.MaxInstructions = 100000000;
  auto VM = GuestVM::create(*P, Exec);
  ASSERT_TRUE(static_cast<bool>(VM));
  RunResult Native = (*VM)->run();
  EXPECT_EQ(Native.Reason, ExitReason::Exited) << Native.FaultMessage;
  auto Engine = core::SdtEngine::create(*P, core::SdtOptions(), Exec);
  ASSERT_TRUE(static_cast<bool>(Engine));
  RunResult Translated = (*Engine)->run();
  EXPECT_EQ(Native.Checksum, Translated.Checksum);
  EXPECT_EQ(Native.InstructionCount, Translated.InstructionCount);
}

INSTANTIATE_TEST_SUITE_P(
    Extras, ExtraWorkloadTest, ::testing::ValuesIn(extraWorkloads()),
    [](const ::testing::TestParamInfo<WorkloadInfo> &Info) {
      return std::string(Info.param.Name);
    });

TEST(ExtraWorkloadTest, MincHasCompiledIBProfile) {
  Expected<isa::Program> P = buildWorkload("minc", 2);
  ASSERT_TRUE(static_cast<bool>(P));
  ExecOptions Exec;
  Exec.MaxInstructions = 100000000;
  auto VM = GuestVM::create(*P, Exec);
  ASSERT_TRUE(static_cast<bool>(VM));
  RunResult R = (*VM)->run();
  EXPECT_GT(R.Cti.IndirectCalls, 1000u); // Function-pointer dispatch.
  EXPECT_GT(R.Cti.Returns, R.Cti.IndirectCalls); // Plus direct-call pairs.
}

// Table-1 style fan-out collection on the megamorphic interpreter.
TEST(WorkloadProfileTest, PerlbmkIsMegamorphic) {
  Expected<isa::Program> P = buildWorkload("perlbmk", 1);
  ASSERT_TRUE(static_cast<bool>(P));
  ExecOptions Exec;
  Exec.CollectSiteTargets = true;
  Exec.MaxInstructions = 100000000;
  auto VM = GuestVM::create(*P, Exec);
  ASSERT_TRUE(static_cast<bool>(VM));
  RunResult R = (*VM)->run();
  // At least one indirect-jump site sees many distinct targets.
  size_t MaxFanOut = 0;
  for (const auto &[Site, Targets] : R.SiteTargets)
    MaxFanOut = std::max(MaxFanOut, Targets.size());
  EXPECT_GE(MaxFanOut, 8u);
}

TEST(WorkloadProfileTest, EonVtableFanOut) {
  Expected<isa::Program> P = buildWorkload("eon", 1);
  ASSERT_TRUE(static_cast<bool>(P));
  ExecOptions Exec;
  Exec.CollectSiteTargets = true;
  Exec.MaxInstructions = 100000000;
  auto VM = GuestVM::create(*P, Exec);
  ASSERT_TRUE(static_cast<bool>(VM));
  RunResult R = (*VM)->run();
  // The single virtual-call site dispatches to all six methods.
  size_t CallSiteFanOut = 0;
  for (const auto &[Site, Targets] : R.SiteTargets)
    CallSiteFanOut = std::max(CallSiteFanOut, Targets.size());
  EXPECT_EQ(CallSiteFanOut, 6u);
}
