//===- tests/core_engine_test.cpp - SDT engine integration -------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//

#include "assembler/Assembler.h"
#include "core/SdtEngine.h"
#include "support/StringUtils.h"
#include "vm/GuestVM.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace sdt;
using namespace sdt::core;
using namespace sdt::vm;

namespace {

isa::Program mustAssemble(const char *Src) {
  Expected<isa::Program> P = assembler::assemble(Src);
  EXPECT_TRUE(static_cast<bool>(P)) << (P ? "" : P.error().message());
  return *P;
}

RunResult runVM(const isa::Program &P, ExecOptions Exec = {}) {
  auto VM = GuestVM::create(P, Exec);
  EXPECT_TRUE(static_cast<bool>(VM));
  return (*VM)->run();
}

struct SdtRun {
  RunResult Result;
  SdtStats Stats;
};

SdtRun runSdt(const isa::Program &P, SdtOptions Opts = {},
              ExecOptions Exec = {}) {
  auto Engine = SdtEngine::create(P, Opts, Exec);
  EXPECT_TRUE(static_cast<bool>(Engine));
  SdtRun R;
  R.Result = (*Engine)->run();
  R.Stats = (*Engine)->stats();
  return R;
}

void expectSameBehaviour(const RunResult &A, const RunResult &B) {
  EXPECT_EQ(A.Reason, B.Reason) << B.FaultMessage;
  EXPECT_EQ(A.ExitCode, B.ExitCode);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_EQ(A.InstructionCount, B.InstructionCount);
}

const char *const CallLoop = R"(
main:
    li   s0, 50
    li   s7, 0
loop:
    la   t0, fns
    andi t1, s0, 1
    slli t1, t1, 2
    add  t0, t0, t1
    lw   t2, 0(t0)
    move a0, s0
    jalr t2
    add  s7, s7, v0
    addi s0, s0, -1
    bnez s0, loop
    move a0, s7
    li   v0, 4
    syscall
    li   a0, 0
    li   v0, 0
    syscall
f_even:
    slli v0, a0, 1
    ret
f_odd:
    addi v0, a0, 100
    ret
fns: .word f_even, f_odd
)";

} // namespace

TEST(SdtEngineTest, TrivialProgramMatchesVM) {
  isa::Program P = mustAssemble("main:\n li a0, 3\n li v0, 0\n syscall\n");
  RunResult Native = runVM(P);
  SdtRun Sdt = runSdt(P);
  expectSameBehaviour(Native, Sdt.Result);
  EXPECT_EQ(Sdt.Result.ExitCode, 3);
}

TEST(SdtEngineTest, FragmentsFormedAtCtis) {
  isa::Program P = mustAssemble(
      "main:\n nop\n nop\n j next\nnext:\n nop\n halt\n");
  SdtRun Sdt = runSdt(P);
  EXPECT_EQ(Sdt.Result.Reason, ExitReason::Halted);
  EXPECT_EQ(Sdt.Stats.FragmentsTranslated, 2u);
  // nop nop j | nop halt.
  EXPECT_EQ(Sdt.Stats.GuestInstrsTranslated, 5u);
}

TEST(SdtEngineTest, LinkingEliminatesRepeatDispatches) {
  const char *Src = "main:\n li t0, 100\nloop:\n addi t0, t0, -1\n"
                    " bnez t0, loop\n halt\n";
  isa::Program P = mustAssemble(Src);

  SdtOptions Linked;
  Linked.LinkFragments = true;
  SdtRun WithLink = runSdt(P, Linked);
  SdtOptions Unlinked;
  Unlinked.LinkFragments = false;
  SdtRun NoLink = runSdt(P, Unlinked);

  expectSameBehaviour(WithLink.Result, NoLink.Result);
  // With linking the loop back-edge is patched once; without, every
  // iteration re-enters the dispatcher.
  EXPECT_LT(WithLink.Stats.DispatchEntries, 10u);
  EXPECT_GT(NoLink.Stats.DispatchEntries, 90u);
  EXPECT_GT(WithLink.Stats.LinksPatched, 0u);
  EXPECT_EQ(NoLink.Stats.LinksPatched, 0u);
}

TEST(SdtEngineTest, IBExecCountsMatchVmCtiStats) {
  isa::Program P = mustAssemble(CallLoop);
  RunResult Native = runVM(P);
  SdtRun Sdt = runSdt(P);
  expectSameBehaviour(Native, Sdt.Result);
  EXPECT_EQ(Sdt.Stats.IBExecs[size_t(IBClass::Call)],
            Native.Cti.IndirectCalls);
  EXPECT_EQ(Sdt.Stats.IBExecs[size_t(IBClass::Return)],
            Native.Cti.Returns);
  EXPECT_EQ(Sdt.Result.Cti.IndirectCalls, Native.Cti.IndirectCalls);
  EXPECT_EQ(Sdt.Result.Cti.Returns, Native.Cti.Returns);
  EXPECT_EQ(Sdt.Result.Cti.CondBranches, Native.Cti.CondBranches);
}

TEST(SdtEngineTest, IbtcHitsAfterWarmup) {
  isa::Program P = mustAssemble(CallLoop);
  SdtOptions Opts;
  Opts.Mechanism = IBMechanism::Ibtc;
  SdtRun Sdt = runSdt(P, Opts);
  // 50 calls, 2 targets: at most 2 cold misses on the call site.
  uint64_t CallExecs = Sdt.Stats.IBExecs[size_t(IBClass::Call)];
  uint64_t CallHits = Sdt.Stats.IBInlineHits[size_t(IBClass::Call)];
  EXPECT_EQ(CallExecs, 50u);
  EXPECT_GE(CallHits, CallExecs - 2);
}

TEST(SdtEngineTest, HitsNeverExceedExecs) {
  isa::Program P = mustAssemble(CallLoop);
  for (IBMechanism M :
       {IBMechanism::Dispatcher, IBMechanism::Ibtc, IBMechanism::Sieve}) {
    SdtOptions Opts;
    Opts.Mechanism = M;
    SdtRun Sdt = runSdt(P, Opts);
    for (unsigned C = 0; C != NumIBClasses; ++C)
      EXPECT_LE(Sdt.Stats.IBInlineHits[C], Sdt.Stats.IBExecs[C]);
  }
}

TEST(SdtEngineTest, DispatcherMechanismNeverHitsInline) {
  isa::Program P = mustAssemble(CallLoop);
  SdtOptions Opts;
  Opts.Mechanism = IBMechanism::Dispatcher;
  SdtRun Sdt = runSdt(P, Opts);
  for (unsigned C = 0; C != NumIBClasses; ++C)
    EXPECT_EQ(Sdt.Stats.IBInlineHits[C], 0u);
  // Every IB goes through the dispatcher.
  EXPECT_GE(Sdt.Stats.DispatchEntries, Sdt.Stats.ibExecTotal());
}

TEST(SdtEngineTest, FastReturnsResolveDirectly) {
  isa::Program P = mustAssemble(CallLoop);
  SdtOptions Opts;
  Opts.Returns = ReturnStrategy::FastReturn;
  SdtRun Sdt = runSdt(P, Opts);
  RunResult Native = runVM(P);
  expectSameBehaviour(Native, Sdt.Result);
  EXPECT_EQ(Sdt.Stats.FastReturnDirect, 50u);
  EXPECT_EQ(Sdt.Stats.FastReturnFallback, 0u);
}

TEST(SdtEngineTest, FastReturnSurvivesSavedRa) {
  // The callee spills/reloads ra (holding a translated address) through
  // guest memory — the round trip must stay intact.
  const char *Src = R"(
main:
    li   s0, 5
loop:
    jal  outer
    addi s0, s0, -1
    bnez s0, loop
    li   a0, 0
    li   v0, 0
    syscall
outer:
    push ra
    jal  inner
    pop  ra
    ret
inner:
    addi v0, a0, 1
    ret
)";
  isa::Program P = mustAssemble(Src);
  RunResult Native = runVM(P);
  SdtOptions Opts;
  Opts.Returns = ReturnStrategy::FastReturn;
  SdtRun Sdt = runSdt(P, Opts);
  expectSameBehaviour(Native, Sdt.Result);
  EXPECT_GT(Sdt.Stats.FastReturnDirect, 0u);
}

TEST(SdtEngineTest, ShadowStackServesReturns) {
  isa::Program P = mustAssemble(CallLoop);
  SdtOptions Opts;
  Opts.Returns = ReturnStrategy::ShadowStack;
  SdtRun Sdt = runSdt(P, Opts);
  RunResult Native = runVM(P);
  expectSameBehaviour(Native, Sdt.Result);
  EXPECT_EQ(Sdt.Stats.ShadowStackHits, 50u);
  EXPECT_EQ(Sdt.Stats.ShadowStackMisses, 0u);
}

TEST(SdtEngineTest, ShadowStackKeepsGuestLinkValue) {
  // Unlike fast returns, the shadow stack is fully transparent: a
  // program that *prints* its return address must see the guest value.
  const char *Src = R"(
main:
    jal f
    li  a0, 0
    li  v0, 0
    syscall
f:
    move a0, ra
    li   v0, 1
    syscall          # print ra — must be the guest address 0x1004
    ret
)";
  isa::Program P = mustAssemble(Src);
  RunResult Native = runVM(P);
  SdtOptions Opts;
  Opts.Returns = ReturnStrategy::ShadowStack;
  SdtRun Sdt = runSdt(P, Opts);
  expectSameBehaviour(Native, Sdt.Result);
  EXPECT_EQ(Native.Output, "4100\n"); // 0x1004 printed in decimal.
}

TEST(SdtEngineTest, ShadowStackWrapsOnDeepRecursion) {
  // Recursion deeper than the shadow stack: old entries are overwritten,
  // their returns miss and fall back — behaviour must stay correct.
  const char *Src = R"(
main:
    li  a0, 40
    jal rec
    move a0, v0
    li  v0, 0
    syscall
rec:
    beqz a0, base
    push ra
    push a0
    addi a0, a0, -1
    jal  rec
    pop  a0
    pop  ra
    add  v0, v0, a0
    ret
base:
    li v0, 0
    ret
)";
  isa::Program P = mustAssemble(Src);
  RunResult Native = runVM(P);
  SdtOptions Opts;
  Opts.Returns = ReturnStrategy::ShadowStack;
  Opts.ShadowStackDepth = 8; // Much shallower than the recursion.
  SdtRun Sdt = runSdt(P, Opts);
  expectSameBehaviour(Native, Sdt.Result);
  EXPECT_GT(Sdt.Stats.ShadowStackHits, 0u);
  EXPECT_GT(Sdt.Stats.ShadowStackMisses, 0u);
}

TEST(SdtEngineTest, ReturnCacheServesReturns) {
  isa::Program P = mustAssemble(CallLoop);
  SdtOptions Opts;
  Opts.Returns = ReturnStrategy::ReturnCache;
  SdtRun Sdt = runSdt(P, Opts);
  RunResult Native = runVM(P);
  expectSameBehaviour(Native, Sdt.Result);
  uint64_t RetHits = Sdt.Stats.IBInlineHits[size_t(IBClass::Return)];
  EXPECT_GE(RetHits, 45u); // Cold misses only.
}

TEST(SdtEngineTest, TinyFragmentCacheForcesFlushesButStaysCorrect) {
  isa::Program P = mustAssemble(CallLoop);
  RunResult Native = runVM(P);
  SdtOptions Opts;
  Opts.FragmentCacheBytes = 4096;
  Opts.MaxFragmentInstrs = 8;
  SdtRun Sdt = runSdt(P, Opts);
  expectSameBehaviour(Native, Sdt.Result);
}

TEST(SdtEngineTest, FastReturnsSurviveCacheFlush) {
  // A flush retires fragments whose addresses are still in ra / on the
  // guest stack; the retired-entry map must recover them. Build a program
  // with enough distinct functions that translating them all (twice: the
  // outer loop runs two passes) overflows a tiny fragment cache mid-call.
  std::string Src = "main:\n    li s6, 2\nmpass:\n";
  for (int F = 0; F != 120; ++F)
    Src += formatString("    jal fn%d\n", F);
  Src += "    addi s6, s6, -1\n"
         "    bnez s6, mpass\n"
         "    li a0, 0\n    li v0, 0\n    syscall\n";
  for (int F = 0; F != 120; ++F)
    Src += formatString("fn%d:\n    push ra\n    jal leaf\n    pop ra\n"
                        "    ret\n",
                        F);
  Src += "leaf:\n    addi v0, a0, 1\n    ret\n";

  isa::Program P = mustAssemble(Src.c_str());
  RunResult Native = runVM(P);
  SdtOptions Opts;
  Opts.Returns = ReturnStrategy::FastReturn;
  Opts.FragmentCacheBytes = 4096; // Force flushes mid-run.
  Opts.MaxFragmentInstrs = 4;
  SdtRun Sdt = runSdt(P, Opts);
  expectSameBehaviour(Native, Sdt.Result);
  EXPECT_GT(Sdt.Stats.Flushes, 0u);
}

TEST(SdtEngineTest, InstructionLimitHonoured) {
  isa::Program P = mustAssemble("main:\n j main\n");
  ExecOptions Exec;
  Exec.MaxInstructions = 64;
  SdtRun Sdt = runSdt(P, {}, Exec);
  EXPECT_EQ(Sdt.Result.Reason, ExitReason::InstrLimit);
  EXPECT_EQ(Sdt.Result.InstructionCount, 64u);
}

TEST(SdtEngineTest, JumpIntoDataFaults) {
  isa::Program P = mustAssemble(
      "main:\n la t0, data\n jr t0\ndata: .word 0xFC000000\n");
  SdtRun Sdt = runSdt(P);
  EXPECT_EQ(Sdt.Result.Reason, ExitReason::Fault);
  EXPECT_FALSE(Sdt.Result.FaultMessage.empty());
}

TEST(SdtEngineTest, MemoryFaultMatchesVM) {
  isa::Program P = mustAssemble("main:\n li t0, 16\n lw t1, 0(t0)\n halt\n");
  RunResult Native = runVM(P);
  SdtRun Sdt = runSdt(P);
  EXPECT_EQ(Native.Reason, ExitReason::Fault);
  EXPECT_EQ(Sdt.Result.Reason, ExitReason::Fault);
  EXPECT_EQ(Native.InstructionCount, Sdt.Result.InstructionCount);
}

TEST(SdtEngineTest, SiteTargetProfileMatchesVM) {
  isa::Program P = mustAssemble(CallLoop);
  ExecOptions Exec;
  Exec.CollectSiteTargets = true;
  RunResult Native = runVM(P, Exec);
  SdtRun Sdt = runSdt(P, {}, Exec);
  EXPECT_EQ(Native.SiteTargets, Sdt.Result.SiteTargets);
}

TEST(SdtEngineTest, MaxFragmentInstrsSplitsStraightLineCode) {
  std::string Src = "main:\n";
  for (int I = 0; I != 40; ++I)
    Src += "    addi t0, t0, 1\n";
  Src += "    halt\n";
  isa::Program P = mustAssemble(Src.c_str());
  SdtOptions Opts;
  Opts.MaxFragmentInstrs = 10;
  SdtRun Sdt = runSdt(P, Opts);
  EXPECT_EQ(Sdt.Result.Reason, ExitReason::Halted);
  EXPECT_GE(Sdt.Stats.FragmentsTranslated, 4u);
}

TEST(SdtEngineTest, ReportMentionsConfigAndClasses) {
  isa::Program P = mustAssemble(CallLoop);
  auto Engine = SdtEngine::create(P, SdtOptions(), ExecOptions());
  ASSERT_TRUE(static_cast<bool>(Engine));
  (*Engine)->run();
  std::string Report = (*Engine)->report();
  EXPECT_NE(Report.find("ibtc"), std::string::npos);
  EXPECT_NE(Report.find("return"), std::string::npos);
  EXPECT_NE(Report.find("fragments="), std::string::npos);
}

TEST(SdtEngineTest, SyscallOutputIdenticalUnderTranslation) {
  const char *Src = R"(
main:
    li   t0, 5
loop:
    move a0, t0
    li   v0, 1
    syscall
    addi t0, t0, -1
    bnez t0, loop
    li   a0, 0
    li   v0, 0
    syscall
)";
  isa::Program P = mustAssemble(Src);
  RunResult Native = runVM(P);
  SdtRun Sdt = runSdt(P);
  expectSameBehaviour(Native, Sdt.Result);
  EXPECT_EQ(Sdt.Result.Output, "5\n4\n3\n2\n1\n");
}

TEST(SdtEngineTest, PerClassMechanismOverrides) {
  // jalr sites go through a sieve while everything else uses the IBTC —
  // behaviour identical, and the jump/call stats land on the right
  // structures.
  const char *Src = R"(
main:
    li   s0, 30
loop:
    la   t0, spots
    andi t1, s0, 1
    slli t1, t1, 2
    add  t0, t0, t1
    lw   t2, 0(t0)
    jr   t2                 # indirect jump, alternating targets
spot0:
spot1:
    la   t3, fns
    lw   t4, 0(t3)
    move a0, s0
    jalr t4                 # indirect call
    add  s7, s7, v0
    addi s0, s0, -1
    bnez s0, loop
    move a0, s7
    li   v0, 4
    syscall
    li   a0, 0
    li   v0, 0
    syscall
fn:
    slli v0, a0, 1
    ret
spots: .word spot0, spot1
fns:   .word fn
)";
  isa::Program P = mustAssemble(Src);
  RunResult Native = runVM(P);

  SdtOptions Opts;
  Opts.Mechanism = IBMechanism::Ibtc;
  Opts.CallMechanism = IBMechanism::Sieve;
  auto Engine = SdtEngine::create(P, Opts, ExecOptions());
  ASSERT_TRUE(static_cast<bool>(Engine));
  RunResult Translated = (*Engine)->run();
  expectSameBehaviour(Native, Translated);
  // The sieve (call handler) saw exactly the 30 calls; the shared IBTC
  // (main) served the jumps and returns.
  EXPECT_GE((*Engine)->stats().IBExecs[size_t(IBClass::Call)], 30u);
  std::string Report = (*Engine)->report();
  EXPECT_NE(Report.find("calls: sieve"), std::string::npos);
}

TEST(SdtEngineTest, BlockCountInstrumentationCountsEntries) {
  const char *Src = R"(
main:
    li   t0, 25
loop:
    addi t0, t0, -1
    bnez t0, loop
    li   a0, 0
    li   v0, 0
    syscall
)";
  isa::Program P = mustAssemble(Src);
  SdtOptions O;
  O.InstrumentBlockCounts = true;
  auto Engine = SdtEngine::create(P, O, ExecOptions());
  ASSERT_TRUE(static_cast<bool>(Engine));
  RunResult R = (*Engine)->run();
  EXPECT_EQ(R.Reason, ExitReason::Exited);
  // Fragment-granularity counting: the first loop iteration runs inside
  // the entry fragment (main..bnez), so the loop-head fragment is
  // entered by the 24 back-edge executions.
  uint64_t MaxCount = 0, Total = 0;
  for (const auto &[Entry, Count] : (*Engine)->blockCounts()) {
    MaxCount = std::max(MaxCount, Count);
    Total += Count;
  }
  EXPECT_EQ(MaxCount, 24u);
  EXPECT_GE(Total, 25u);
  // Instrumentation must stay behaviour-transparent.
  RunResult Native = runVM(P);
  expectSameBehaviour(Native, R);
}

TEST(SdtEngineTest, InstrumentationChargesItsOwnCategory) {
  isa::Program P = mustAssemble(CallLoop);
  arch::TimingModel Plain(arch::x86Model()), Probed(arch::x86Model());
  {
    ExecOptions Exec;
    Exec.Timing = &Plain;
    runSdt(P, {}, Exec);
  }
  {
    ExecOptions Exec;
    Exec.Timing = &Probed;
    SdtOptions O;
    O.InstrumentBlockCounts = true;
    runSdt(P, O, Exec);
  }
  EXPECT_EQ(Plain.cycles(arch::CycleCategory::Instrument), 0u);
  EXPECT_GT(Probed.cycles(arch::CycleCategory::Instrument), 0u);
  EXPECT_GT(Probed.totalCycles(), Plain.totalCycles());
}

TEST(SdtEngineTest, ReturnIntegrityCatchesCorruptedReturnAddress) {
  // The callee overwrites its saved return address on the stack (a
  // ROP-style redirect to `gadget`). Natively this "works"; under
  // shadow-stack enforcement it faults.
  const char *Src = R"(
main:
    jal victim
    li   a0, 0
    li   v0, 0
    syscall
victim:
    push ra
    la   t0, gadget
    sw   t0, 0(sp)       # overwrite the saved return address
    pop  ra
    ret                  # hijacked
gadget:
    li   a0, 99
    li   v0, 0
    syscall
)";
  isa::Program P = mustAssemble(Src);

  RunResult Native = runVM(P);
  EXPECT_EQ(Native.Reason, ExitReason::Exited);
  EXPECT_EQ(Native.ExitCode, 99); // The hijack succeeds natively.

  SdtOptions Plain;
  Plain.Returns = ReturnStrategy::ShadowStack;
  SdtRun Unenforced = runSdt(P, Plain);
  expectSameBehaviour(Native, Unenforced.Result); // Transparent fallback.
  EXPECT_GT(Unenforced.Stats.ShadowStackMisses, 0u);

  SdtOptions Enforced = Plain;
  Enforced.EnforceReturnIntegrity = true;
  SdtRun Protected = runSdt(P, Enforced);
  EXPECT_EQ(Protected.Result.Reason, ExitReason::Fault);
  EXPECT_NE(Protected.Result.FaultMessage.find("integrity"),
            std::string::npos);
}

TEST(SdtEngineTest, ReturnIntegrityAllowsWellNestedCode) {
  isa::Program P = mustAssemble(CallLoop);
  RunResult Native = runVM(P);
  SdtOptions O;
  O.Returns = ReturnStrategy::ShadowStack;
  O.EnforceReturnIntegrity = true;
  SdtRun Sdt = runSdt(P, O);
  expectSameBehaviour(Native, Sdt.Result);
}

TEST(SdtEngineTest, TracesFormOnHotLoops) {
  // A hot loop whose body spans several blocks joined by direct jumps —
  // the case traces linearise.
  const char *Src = R"(
main:
    li   t0, 2000
loop:
    addi t1, t1, 3
    j    mid
mid:
    xori t1, t1, 85
    j    tail
tail:
    addi t0, t0, -1
    bnez t0, loop
    move a0, t1
    li   v0, 4
    syscall
    li   a0, 0
    li   v0, 0
    syscall
)";
  isa::Program P = mustAssemble(Src);
  RunResult Native = runVM(P);

  SdtOptions Traced;
  Traced.EnableTraces = true;
  Traced.TraceHotThreshold = 20;
  SdtRun WithTraces = runSdt(P, Traced);
  expectSameBehaviour(Native, WithTraces.Result);
  EXPECT_GT(WithTraces.Stats.TracesBuilt, 0u);
  EXPECT_GT(WithTraces.Stats.TraceGuestInstrs, 0u);
}

TEST(SdtEngineTest, TracesReduceCyclesOnJumpHeavyLoops) {
  const char *Src = R"(
main:
    li   t0, 5000
loop:
    addi t1, t1, 3
    j    mid
mid:
    xori t1, t1, 85
    j    tail
tail:
    addi t0, t0, -1
    bnez t0, loop
    li   a0, 0
    li   v0, 0
    syscall
)";
  isa::Program P = mustAssemble(Src);

  auto cyclesWith = [&P](bool Traces) {
    arch::TimingModel Timing(arch::x86Model());
    ExecOptions Exec;
    Exec.Timing = &Timing;
    SdtOptions O;
    O.EnableTraces = Traces;
    O.TraceHotThreshold = 20;
    auto Engine = SdtEngine::create(P, O, Exec);
    EXPECT_TRUE(static_cast<bool>(Engine));
    vm::RunResult R = (*Engine)->run();
    EXPECT_EQ(R.Reason, ExitReason::Exited);
    return Timing.totalCycles();
  };

  uint64_t Without = cyclesWith(false);
  uint64_t With = cyclesWith(true);
  EXPECT_LT(With, Without); // Elided jumps + linearised fall-throughs.
}

TEST(SdtEngineTest, TracesFollowCallsInline) {
  // The hot loop calls a leaf; the trace inlines the call (SetLink on
  // trace) and ends at the callee's return.
  const char *Src = R"(
main:
    li   s0, 1000
loop:
    move a0, s0
    jal  leaf
    add  s7, s7, v0
    addi s0, s0, -1
    bnez s0, loop
    move a0, s7
    li   v0, 4
    syscall
    li   a0, 0
    li   v0, 0
    syscall
leaf:
    slli v0, a0, 1
    ret
)";
  isa::Program P = mustAssemble(Src);
  RunResult Native = runVM(P);
  SdtOptions O;
  O.EnableTraces = true;
  O.TraceHotThreshold = 10;
  O.Returns = ReturnStrategy::FastReturn;
  SdtRun Sdt = runSdt(P, O);
  expectSameBehaviour(Native, Sdt.Result);
  EXPECT_GT(Sdt.Stats.TracesBuilt, 0u);
}

TEST(SdtEngineTest, TracesSurviveCacheFlush) {
  const char *Src = R"(
main:
    li   t0, 3000
loop:
    addi t1, t1, 1
    addi t0, t0, -1
    bnez t0, loop
    li   a0, 0
    li   v0, 0
    syscall
)";
  isa::Program P = mustAssemble(Src);
  RunResult Native = runVM(P);
  SdtOptions O;
  O.EnableTraces = true;
  O.TraceHotThreshold = 10;
  O.FragmentCacheBytes = 4096;
  SdtRun Sdt = runSdt(P, O);
  expectSameBehaviour(Native, Sdt.Result);
}

TEST(SdtEngineTest, OverheadNeverBelowNative) {
  isa::Program P = mustAssemble(CallLoop);
  arch::TimingModel Native(arch::x86Model());
  ExecOptions NativeExec;
  NativeExec.Timing = &Native;
  runVM(P, NativeExec);

  for (IBMechanism M :
       {IBMechanism::Dispatcher, IBMechanism::Ibtc, IBMechanism::Sieve}) {
    arch::TimingModel Sdt(arch::x86Model());
    ExecOptions SdtExec;
    SdtExec.Timing = &Sdt;
    SdtOptions Opts;
    Opts.Mechanism = M;
    runSdt(P, Opts, SdtExec);
    EXPECT_GT(Sdt.totalCycles(), Native.totalCycles())
        << ibMechanismName(M);
  }
}
