//===- tests/exec_plan_test.cpp - Plan-vs-switch engine identity -*- C++ -*-===//
//
// Part of StrataIB.
//
// The pre-decoded plan engine's contract (docs/ExecutionEngine.md) is
// bit-identity: for every configuration and every guest, the plan and
// switch engines produce the same run result, the same total and
// per-category cycles, the same cache/predictor states, and the same
// stats block — wall-clock is the only thing allowed to differ. These
// tests sweep that claim across mechanisms, return strategies, traces
// (plain, optimized, speculated), eviction/flush pressure, SMC, plugins,
// an attached trace sink, instruction-budget edges, and mid-run faults,
// then pin the plan store's coherence behaviour (rebuild on link patch,
// tombstone, flush; deopt on SMC hulls) through planStats().
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"
#include "arch/Timing.h"
#include "assembler/Assembler.h"
#include "cachemgr/CachePolicy.h"
#include "core/SdtEngine.h"
#include "exec/ExecutionPlan.h"
#include "plugin/PluginManager.h"
#include "trace/TraceSink.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace sdt;
using namespace sdt::core;
using namespace sdt::vm;

namespace {

/// Everything deterministic one engine run produces. Wall-clock is
/// deliberately absent: it is the one legitimate difference.
struct EngineObservation {
  RunResult Result;
  uint64_t TotalCycles = 0;
  std::array<uint64_t, size_t(arch::CycleCategory::NumCategories)>
      ByCategory{};
  uint64_t ICacheHits = 0, ICacheMisses = 0;
  uint64_t DCacheHits = 0, DCacheMisses = 0;
  SdtStats Stats;
  uint64_t MainLookups = 0, MainHits = 0;
  std::map<uint32_t, uint64_t> BlockCounts;
  std::vector<std::pair<std::string, uint64_t>> PluginMetrics;
  ExecEngineKind Active = ExecEngineKind::Switch;
  exec::PlanStats Plan; ///< Zero when the plan engine never ran.
};

struct RunSetup {
  std::string PluginSpec; ///< Comma list for createPluginManager, or "".
  bool AttachSink = false;
  uint64_t MaxInstructions = 50000000;
};

EngineObservation runUnder(const isa::Program &P, SdtOptions Opts,
                           ExecEngineKind Engine,
                           const RunSetup &Setup = {}) {
  Opts.Engine = Engine;
  arch::TimingModel Timing(arch::x86Model());
  ExecOptions Exec;
  Exec.MaxInstructions = Setup.MaxInstructions;
  Exec.Timing = &Timing;

  auto E = SdtEngine::create(P, Opts, Exec);
  EXPECT_TRUE(static_cast<bool>(E));
  std::unique_ptr<plugin::PluginManager> Plugins;
  if (!Setup.PluginSpec.empty()) {
    auto Mgr = plugin::createPluginManager(Setup.PluginSpec);
    EXPECT_TRUE(static_cast<bool>(Mgr));
    Plugins = std::move(*Mgr);
    (*E)->setPlugins(Plugins.get());
  }
  trace::TraceSink Sink(1 << 14);
  if (Setup.AttachSink)
    (*E)->setTraceSink(&Sink);

  EngineObservation O;
  O.Active = (*E)->activeEngine();
  O.Result = (*E)->run();
  O.TotalCycles = Timing.totalCycles();
  for (size_t I = 0; I != O.ByCategory.size(); ++I)
    O.ByCategory[I] = Timing.cycles(static_cast<arch::CycleCategory>(I));
  O.ICacheHits = Timing.icache().hits();
  O.ICacheMisses = Timing.icache().misses();
  O.DCacheHits = Timing.dcache().hits();
  O.DCacheMisses = Timing.dcache().misses();
  O.Stats = (*E)->stats();
  O.MainLookups = (*E)->mainHandler().lookups();
  O.MainHits = (*E)->mainHandler().hits();
  O.BlockCounts = (*E)->blockCounts();
  if (Plugins)
    for (const plugin::Plugin::Metric &M : Plugins->metrics())
      O.PluginMetrics.push_back(M);
  if (const exec::PlanStats *PS = (*E)->planStats())
    O.Plan = *PS;
  return O;
}

/// The identity assertion: every deterministic observation matches.
void expectIdentical(const EngineObservation &S, const EngineObservation &P,
                     const std::string &Label) {
  EXPECT_EQ(S.Result.Reason, P.Result.Reason)
      << Label << ": " << P.Result.FaultMessage;
  EXPECT_EQ(S.Result.ExitCode, P.Result.ExitCode) << Label;
  EXPECT_EQ(S.Result.Output, P.Result.Output) << Label;
  EXPECT_EQ(S.Result.Checksum, P.Result.Checksum) << Label;
  EXPECT_EQ(S.Result.InstructionCount, P.Result.InstructionCount) << Label;
  EXPECT_EQ(S.Result.FaultMessage, P.Result.FaultMessage) << Label;
  EXPECT_EQ(S.Result.Cti.Returns, P.Result.Cti.Returns) << Label;
  EXPECT_EQ(S.Result.Cti.IndirectCalls, P.Result.Cti.IndirectCalls) << Label;
  EXPECT_EQ(S.Result.Cti.IndirectJumps, P.Result.Cti.IndirectJumps) << Label;
  EXPECT_EQ(S.Result.Cti.CondBranches, P.Result.Cti.CondBranches) << Label;
  EXPECT_EQ(S.Result.Cti.DirectCalls, P.Result.Cti.DirectCalls) << Label;
  EXPECT_EQ(S.Result.Cti.DirectJumps, P.Result.Cti.DirectJumps) << Label;

  EXPECT_EQ(S.TotalCycles, P.TotalCycles) << Label;
  for (size_t I = 0; I != S.ByCategory.size(); ++I)
    EXPECT_EQ(S.ByCategory[I], P.ByCategory[I])
        << Label << " category "
        << arch::cycleCategoryName(static_cast<arch::CycleCategory>(I));
  EXPECT_EQ(S.ICacheHits, P.ICacheHits) << Label;
  EXPECT_EQ(S.ICacheMisses, P.ICacheMisses) << Label;
  EXPECT_EQ(S.DCacheHits, P.DCacheHits) << Label;
  EXPECT_EQ(S.DCacheMisses, P.DCacheMisses) << Label;

  EXPECT_EQ(S.MainLookups, P.MainLookups) << Label;
  EXPECT_EQ(S.MainHits, P.MainHits) << Label;
  EXPECT_EQ(S.BlockCounts, P.BlockCounts) << Label;
  EXPECT_EQ(S.PluginMetrics, P.PluginMetrics) << Label;

#define SDT_EQ_STAT(Field) EXPECT_EQ(S.Stats.Field, P.Stats.Field) << Label
  SDT_EQ_STAT(FragmentsTranslated);
  SDT_EQ_STAT(GuestInstrsTranslated);
  SDT_EQ_STAT(Flushes);
  SDT_EQ_STAT(PartialEvictions);
  SDT_EQ_STAT(EvictedBytes);
  SDT_EQ_STAT(RetranslationsAfterEviction);
  SDT_EQ_STAT(LinksUnlinked);
  SDT_EQ_STAT(CodeWriteInvalidations);
  SDT_EQ_STAT(FragmentsInvalidatedByWrite);
  SDT_EQ_STAT(StaleBytesDiscarded);
  SDT_EQ_STAT(DispatchEntries);
  SDT_EQ_STAT(LinksPatched);
  SDT_EQ_STAT(Syscalls);
  SDT_EQ_STAT(IBExecs);
  SDT_EQ_STAT(IBInlineHits);
  SDT_EQ_STAT(FastReturnDirect);
  SDT_EQ_STAT(FastReturnFallback);
  SDT_EQ_STAT(TracesBuilt);
  SDT_EQ_STAT(TraceGuestInstrs);
  SDT_EQ_STAT(TracesOptimized);
  SDT_EQ_STAT(TraceGlueElided);
  SDT_EQ_STAT(TraceConstFolds);
  SDT_EQ_STAT(TraceDeadLinks);
  SDT_EQ_STAT(TraceStubsOutlined);
  SDT_EQ_STAT(TraceFlagPairsElided);
  SDT_EQ_STAT(SpecGuardsEmitted);
  SDT_EQ_STAT(SpecGuardHits);
  SDT_EQ_STAT(SpecGuardMisses);
  SDT_EQ_STAT(ShadowStackHits);
  SDT_EQ_STAT(ShadowStackMisses);
#undef SDT_EQ_STAT
}

isa::Program mustBuild(const std::string &Workload, uint32_t Scale) {
  Expected<isa::Program> P = workloads::buildWorkload(Workload, Scale);
  EXPECT_TRUE(static_cast<bool>(P))
      << Workload << ": " << (P ? "" : P.error().message());
  return *P;
}

/// One named configuration for the differential sweep.
struct ConfigCase {
  const char *Name;
  SdtOptions Opts;
};

std::vector<ConfigCase> sweepConfigs() {
  std::vector<ConfigCase> Cases;
  auto add = [&Cases](const char *Name, auto Mutate) {
    SdtOptions O;
    Mutate(O);
    Cases.push_back({Name, O});
  };
  // The four mechanism columns of the paper sweeps.
  add("dispatcher",
      [](SdtOptions &O) { O.Mechanism = IBMechanism::Dispatcher; });
  add("ibtc", [](SdtOptions &O) { O.Mechanism = IBMechanism::Ibtc; });
  add("sieve", [](SdtOptions &O) { O.Mechanism = IBMechanism::Sieve; });
  add("ibtc_inline2", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.InlineCacheDepth = 2;
  });
  // Return strategies (the shadow stack and fast-return paths retire
  // returns outside the generic IB path).
  add("fast_returns",
      [](SdtOptions &O) { O.Returns = ReturnStrategy::FastReturn; });
  add("return_cache", [](SdtOptions &O) {
    O.Returns = ReturnStrategy::ReturnCache;
    O.ReturnCacheEntries = 16;
  });
  add("shadow_stack",
      [](SdtOptions &O) { O.Returns = ReturnStrategy::ShadowStack; });
  // Traces: plain recording, the optimizer, and speculative IB target
  // inlining (guard ops and trace trampolines all mutate live
  // fragments, exactly what PlanGen has to track).
  add("traces", [](SdtOptions &O) {
    O.EnableTraces = true;
    O.TraceHotThreshold = 4;
  });
  add("traces_optimized", [](SdtOptions &O) {
    O.EnableTraces = true;
    O.TraceHotThreshold = 4;
    O.OptimizeTraces = true;
  });
  add("traces_speculated", [](SdtOptions &O) {
    O.EnableTraces = true;
    O.TraceHotThreshold = 4;
    O.OptimizeTraces = true;
    O.TraceSpeculate = true;
    O.TraceSpeculateThreshold = 4;
  });
  // Eviction pressure: many small fragments in a tiny cache, FIFO so
  // hot fragments get evicted while control is elsewhere (tombstones +
  // partial-eviction unlinking under the plan store).
  add("fifo_tiny_cache", [](SdtOptions &O) {
    O.CachePolicy = cachemgr::CachePolicyKind::Fifo;
    O.FragmentCacheBytes = 4096;
    O.MaxFragmentInstrs = 6;
  });
  // Full-flush pressure: the whole cache (and every plan) dies at once.
  add("flushy", [](SdtOptions &O) {
    O.CachePolicy = cachemgr::CachePolicyKind::FullFlush;
    O.FragmentCacheBytes = 4096;
    O.MaxFragmentInstrs = 6;
  });
  // Block-count instrumentation runs a per-fragment-entry probe inside
  // the shared entry path (not a deopt: both engines pay it).
  add("block_counts",
      [](SdtOptions &O) { O.InstrumentBlockCounts = true; });
  return Cases;
}

/// Workloads chosen to stress every coherence edge: the SPEC proxies for
/// breadth, hotcold for eviction/tombstone churn, smcpatch for
/// self-modifying code (write invalidation + legacy deopt).
const char *const SweepWorkloads[] = {"gzip",    "mcf",     "crafty",
                                      "perlbmk", "hotcold", "smcpatch"};

struct SweepParam {
  ConfigCase Config;
  const char *Workload;
};

class ExecPlanDifferentialTest
    : public ::testing::TestWithParam<SweepParam> {};

} // namespace

TEST_P(ExecPlanDifferentialTest, PlanMatchesSwitchBitForBit) {
  const SweepParam &Param = GetParam();
  isa::Program P = mustBuild(Param.Workload, 2);
  EngineObservation S = runUnder(P, Param.Config.Opts,
                                 ExecEngineKind::Switch);
  EngineObservation Pl = runUnder(P, Param.Config.Opts,
                                  ExecEngineKind::Plan);
  EXPECT_EQ(S.Active, ExecEngineKind::Switch);
  EXPECT_EQ(Pl.Active, ExecEngineKind::Plan);
  expectIdentical(S, Pl, std::string(Param.Config.Name) + "/" +
                             Param.Workload);
  // The plan engine actually fused something (it would be trivially
  // identical if everything fell back to step ops).
  EXPECT_GT(Pl.Plan.PlansBuilt, 0u);
  EXPECT_GT(Pl.Plan.FusedOps, 0u);
}

static std::vector<SweepParam> makeSweep() {
  std::vector<SweepParam> Params;
  for (const ConfigCase &C : sweepConfigs())
    for (const char *W : SweepWorkloads)
      Params.push_back({C, W});
  return Params;
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, ExecPlanDifferentialTest, ::testing::ValuesIn(makeSweep()),
    [](const ::testing::TestParamInfo<SweepParam> &Info) {
      return std::string(Info.param.Config.Name) + "_" +
             Info.param.Workload;
    });

// --- Engine-level deopt predicates --------------------------------------

// Each in-tree plugin subscribes to an execution-time probe (fragment
// entry, IB resolution, memory access), so the engine must deopt to the
// switch loop — and produce identical results while doing so, including
// the plugin's own metrics.
TEST(ExecPlanDeoptTest, ExecutionProbePluginsForceSwitchAndStayIdentical) {
  const char *const Specs[] = {"coverage", "ibedges", "memcheck",
                               "coverage,ibedges,memcheck"};
  isa::Program P = mustBuild("vortex", 2);
  for (const char *Spec : Specs) {
    RunSetup Setup;
    Setup.PluginSpec = Spec;
    EngineObservation S = runUnder(P, SdtOptions(), ExecEngineKind::Switch,
                                   Setup);
    EngineObservation Pl = runUnder(P, SdtOptions(), ExecEngineKind::Plan,
                                    Setup);
    // The deopt predicate must hold: plugins with exec probes need exact
    // per-op callback interleaving.
    EXPECT_EQ(Pl.Active, ExecEngineKind::Switch) << Spec;
    expectIdentical(S, Pl, std::string("plugins ") + Spec);
    EXPECT_FALSE(Pl.PluginMetrics.empty()) << Spec;
  }
}

// A trace sink needs per-instruction fetch events, so an attached sink
// deopts the plan engine; results (and the cycle counts the sink's
// clock reads) stay identical.
TEST(ExecPlanDeoptTest, TraceSinkForcesSwitchAndStaysIdentical) {
  isa::Program P = mustBuild("eon", 2);
  RunSetup Setup;
  Setup.AttachSink = true;
  EngineObservation S = runUnder(P, SdtOptions(), ExecEngineKind::Switch,
                                 Setup);
  EngineObservation Pl = runUnder(P, SdtOptions(), ExecEngineKind::Plan,
                                  Setup);
  EXPECT_EQ(Pl.Active, ExecEngineKind::Switch);
  expectIdentical(S, Pl, "trace sink attached");
}

// --- Budget and fault edges ---------------------------------------------

// The plan loop clamps fused runs to the remaining instruction budget;
// every cut point (mid-run, at a run boundary, at a CondBr exit op)
// must stop at exactly the same instruction with the same charges.
TEST(ExecPlanEdgeTest, InstructionBudgetCutsRunsIdentically) {
  isa::Program P = mustBuild("gzip", 2);
  for (uint64_t Limit : {1ull, 2ull, 3ull, 5ull, 17ull, 100ull, 1001ull,
                         25000ull, 300000ull}) {
    RunSetup Setup;
    Setup.MaxInstructions = Limit;
    EngineObservation S = runUnder(P, SdtOptions(), ExecEngineKind::Switch,
                                   Setup);
    EngineObservation Pl = runUnder(P, SdtOptions(), ExecEngineKind::Plan,
                                    Setup);
    expectIdentical(S, Pl, "budget " + std::to_string(Limit));
    if (S.Result.Reason == ExitReason::InstrLimit) {
      EXPECT_EQ(S.Result.InstructionCount, Limit);
    }
  }
}

// A load fault in the middle of a fused straight-line run: the plan
// kernels must stop at the same instruction with the same fault message
// (pc and address included) and the same partial charges.
TEST(ExecPlanEdgeTest, MidRunFaultIdentical) {
  Expected<isa::Program> P = assembler::assemble(R"(
main:
    li   t0, 1
    add  t1, t0, t0
    addi t2, t1, 5
    mul  t3, t2, t2
    li   t4, 16
    lw   t5, 0(t4)
    halt
)");
  ASSERT_TRUE(static_cast<bool>(P)) << P.error().message();
  EngineObservation S = runUnder(*P, SdtOptions(), ExecEngineKind::Switch);
  EngineObservation Pl = runUnder(*P, SdtOptions(), ExecEngineKind::Plan);
  EXPECT_EQ(Pl.Result.Reason, ExitReason::Fault);
  EXPECT_NE(Pl.Result.FaultMessage.find("bad 32-bit load"),
            std::string::npos)
      << Pl.Result.FaultMessage;
  expectIdentical(S, Pl, "mid-run fault");
}

// --- Plan-store coherence (docs/ExecutionEngine.md) ---------------------

// Link patching mutates installed fragment bodies (ExitStub -> JumpHost,
// SetLink caching), bumping PlanGen: the store must rebuild those plans,
// not serve stale ones.
TEST(ExecPlanCoherenceTest, LinkPatchingRebuildsPlans) {
  isa::Program P = mustBuild("gzip", 2);
  SdtOptions Opts; // Linking on by default.
  EngineObservation Pl = runUnder(P, Opts, ExecEngineKind::Plan);
  EXPECT_GT(Pl.Plan.PlansBuilt, 0u);
  EXPECT_GT(Pl.Plan.PlansRebuilt, 0u)
      << "link patches must invalidate built plans";
  EXPECT_GT(Pl.Stats.LinksPatched, 0u) << "workload never linked";
}

// Partial eviction tombstones victims and unlinks their branches; a
// reoccupied fragment index must never revalidate against the retired
// fragment's plan.
TEST(ExecPlanCoherenceTest, EvictionPressureRebuildsPlans) {
  isa::Program P = mustBuild("hotcold", 2);
  SdtOptions Opts;
  Opts.CachePolicy = cachemgr::CachePolicyKind::Fifo;
  Opts.FragmentCacheBytes = 4096;
  Opts.MaxFragmentInstrs = 6;
  EngineObservation Pl = runUnder(P, Opts, ExecEngineKind::Plan);
  EXPECT_GT(Pl.Stats.PartialEvictions, 0u) << "no eviction pressure";
  EXPECT_GT(Pl.Plan.PlansRebuilt, 0u);
}

// A full flush retires every fragment index at once; the flush-stamp
// check must invalidate every surviving plan entry.
TEST(ExecPlanCoherenceTest, FlushRebuildsPlans) {
  isa::Program P = mustBuild("hotcold", 2);
  SdtOptions Opts;
  Opts.CachePolicy = cachemgr::CachePolicyKind::FullFlush;
  Opts.FragmentCacheBytes = 4096;
  Opts.MaxFragmentInstrs = 6;
  EngineObservation Pl = runUnder(P, Opts, ExecEngineKind::Plan);
  EXPECT_GT(Pl.Stats.Flushes, 0u) << "no flush pressure";
  EXPECT_GT(Pl.Plan.PlansRebuilt, 0u);
}

// Fragments translated over previously-dirtied code words deoptimize to
// the legacy path (exact per-store SMC observation, no rebuild churn).
TEST(ExecPlanCoherenceTest, SmcHullsDeoptimizeToLegacy) {
  isa::Program P = mustBuild("smcpatch", 2);
  EngineObservation Pl = runUnder(P, SdtOptions(), ExecEngineKind::Plan);
  EXPECT_GT(Pl.Stats.CodeWriteInvalidations, 0u) << "workload never wrote";
  EXPECT_GT(Pl.Plan.LegacyFragments, 0u)
      << "SMC-churned fragments must deopt to per-instruction execution";
}

// --- Option plumbing ----------------------------------------------------

TEST(ExecPlanOptionsTest, ParseExecEngineIsStrict) {
  EXPECT_EQ(parseExecEngine("plan"), ExecEngineKind::Plan);
  EXPECT_EQ(parseExecEngine("switch"), ExecEngineKind::Switch);
  EXPECT_FALSE(parseExecEngine("").has_value());
  EXPECT_FALSE(parseExecEngine("Plan").has_value());
  EXPECT_FALSE(parseExecEngine("plan ").has_value());
  EXPECT_FALSE(parseExecEngine("threaded").has_value());
}

TEST(ExecPlanOptionsTest, EngineNamesRoundTrip) {
  EXPECT_STREQ(execEngineName(ExecEngineKind::Plan), "plan");
  EXPECT_STREQ(execEngineName(ExecEngineKind::Switch), "switch");
  EXPECT_EQ(SdtOptions().Engine, ExecEngineKind::Plan)
      << "the plan engine is the default";
}
