//===- tests/service_test.cpp - Translation-service tests --------*- C++ -*-===//
//
// Part of StrataIB.
//
// The multi-tenant service layer: snapshot codec hardening (corrupt,
// truncated, foreign, and mismatched blobs degrade to a cold start, never
// to a crash), global-cache-arbiter accounting in both modes, warm-start
// effectiveness, worker-count determinism, and the single-tenant
// differential that pins the server to a standalone engine bit-for-bit.
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"
#include "arch/Timing.h"
#include "core/SdtEngine.h"
#include "service/EngineServer.h"
#include "service/Snapshot.h"
#include "service/ZipfTrace.h"
#include "trace/TraceSink.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

using namespace sdt;
using namespace sdt::service;

namespace {

isa::Program testProgram(const char *Workload = "gzip", uint32_t Scale = 2) {
  Expected<isa::Program> P = workloads::buildWorkload(Workload, Scale);
  if (!P) {
    ADD_FAILURE() << P.error().message();
    return isa::Program();
  }
  return std::move(*P);
}

/// Runs one standalone engine to completion and returns it with its
/// snapshot blob.
struct FinishedRun {
  std::vector<uint8_t> Blob;
  uint32_t OptionsFp = 0;
  uint32_t ProgramFp = 0;
  uint32_t UsedBytes = 0;
  uint64_t Fragments = 0;
};

FinishedRun finishedRun(const core::SdtOptions &Opts) {
  isa::Program P = testProgram();
  vm::ExecOptions Exec;
  auto Engine = core::SdtEngine::create(P, Opts, Exec);
  EXPECT_TRUE(static_cast<bool>(Engine));
  vm::RunResult R = (*Engine)->run();
  EXPECT_TRUE(R.finishedNormally());
  FinishedRun F;
  F.OptionsFp = optionsFingerprint(Opts);
  F.ProgramFp = programFingerprint(P);
  F.Blob = encodeSnapshot(**Engine, F.ProgramFp);
  F.UsedBytes = (*Engine)->fragmentCache().usedBytes();
  F.Fragments = (*Engine)->stats().FragmentsTranslated;
  return F;
}

/// Recomputes the snapshot's trailing FNV-1a checksum after a test
/// mutation, so the mutated field (not the checksum guard) is what the
/// decoder trips on.
void fixChecksum(std::vector<uint8_t> &Blob) {
  ASSERT_GE(Blob.size(), 4u);
  uint32_t H = 2166136261u;
  for (size_t I = 0; I != Blob.size() - 4; ++I) {
    H ^= Blob[I];
    H *= 16777619u;
  }
  uint8_t LE[4] = {static_cast<uint8_t>(H), static_cast<uint8_t>(H >> 8),
                   static_cast<uint8_t>(H >> 16),
                   static_cast<uint8_t>(H >> 24)};
  std::memcpy(Blob.data() + Blob.size() - 4, LE, 4);
}

// --- Snapshot codec ------------------------------------------------------

TEST(SnapshotTest, RoundTrip) {
  core::SdtOptions Opts;
  FinishedRun F = finishedRun(Opts);
  ASSERT_FALSE(F.Blob.empty());

  Expected<SnapshotInfo> Info =
      decodeSnapshot(F.Blob, F.OptionsFp, F.ProgramFp);
  ASSERT_TRUE(static_cast<bool>(Info));
  EXPECT_EQ(Info->CacheBytes, F.UsedBytes);
  EXPECT_GT(Info->Image.FragmentEntries.size(), 0u);
  EXPECT_LE(Info->Image.FragmentEntries.size(), F.Fragments);
  // The default configuration uses the shared IBTC, so at least some
  // indirect targets must survive the round trip.
  EXPECT_FALSE(Info->Image.SharedTargets.empty());
}

TEST(SnapshotTest, RejectsWrongFingerprints) {
  core::SdtOptions Opts;
  FinishedRun F = finishedRun(Opts);

  Expected<SnapshotInfo> WrongOpts =
      decodeSnapshot(F.Blob, F.OptionsFp + 1, F.ProgramFp);
  ASSERT_FALSE(static_cast<bool>(WrongOpts));
  EXPECT_NE(WrongOpts.error().message().find("configuration"),
            std::string::npos);

  Expected<SnapshotInfo> WrongProg =
      decodeSnapshot(F.Blob, F.OptionsFp, F.ProgramFp + 1);
  ASSERT_FALSE(static_cast<bool>(WrongProg));
  EXPECT_NE(WrongProg.error().message().find("different program"),
            std::string::npos);
}

TEST(SnapshotTest, RejectsCorruptionAndTruncation) {
  core::SdtOptions Opts;
  FinishedRun F = finishedRun(Opts);

  // Any flipped payload byte trips the checksum.
  std::vector<uint8_t> Corrupt = F.Blob;
  Corrupt[Corrupt.size() / 2] ^= 0x40;
  Expected<SnapshotInfo> C = decodeSnapshot(Corrupt, F.OptionsFp, F.ProgramFp);
  ASSERT_FALSE(static_cast<bool>(C));
  EXPECT_NE(C.error().message().find("checksum"), std::string::npos);

  // Truncation at every prefix length must error, never crash.
  for (size_t Len = 0; Len < F.Blob.size(); Len += 3) {
    std::vector<uint8_t> Short(F.Blob.begin(), F.Blob.begin() + Len);
    EXPECT_FALSE(static_cast<bool>(
        decodeSnapshot(Short, F.OptionsFp, F.ProgramFp)));
  }

  std::vector<uint8_t> BadMagic = F.Blob;
  BadMagic[0] = 'X';
  EXPECT_FALSE(static_cast<bool>(
      decodeSnapshot(BadMagic, F.OptionsFp, F.ProgramFp)));
}

TEST(SnapshotTest, RejectsForeignVersionAndEndianness) {
  core::SdtOptions Opts;
  FinishedRun F = finishedRun(Opts);

  // Bump the version field (offset 8, after magic + endian marker) and
  // re-seal the checksum so the version guard itself fires.
  std::vector<uint8_t> NewVersion = F.Blob;
  NewVersion[8] += 1;
  fixChecksum(NewVersion);
  Expected<SnapshotInfo> V =
      decodeSnapshot(NewVersion, F.OptionsFp, F.ProgramFp);
  ASSERT_FALSE(static_cast<bool>(V));
  EXPECT_NE(V.error().message().find("version"), std::string::npos);

  // Byte-swap the native endianness marker (offset 4): a blob from a
  // foreign host is refused before any payload parsing.
  std::vector<uint8_t> Foreign = F.Blob;
  std::swap(Foreign[4], Foreign[7]);
  std::swap(Foreign[5], Foreign[6]);
  fixChecksum(Foreign);
  Expected<SnapshotInfo> E = decodeSnapshot(Foreign, F.OptionsFp, F.ProgramFp);
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_NE(E.error().message().find("endianness"), std::string::npos);
}

// --- Arbiter accounting --------------------------------------------------

TEST(ArbiterTest, IsolationNeverReclaims) {
  GlobalCacheArbiter::Config C;
  C.Mode = ArbiterMode::Isolation;
  C.BudgetBytes = 64 * 1024;
  C.MaxTenants = 4;
  C.MinGrantBytes = 4096;
  GlobalCacheArbiter Arb(C);
  uint32_t Slice = 16 * 1024;

  for (uint32_t Round = 0; Round != 3; ++Round) {
    for (uint32_t T = 0; T != 4; ++T) {
      GlobalCacheArbiter::Admission A = Arb.admit(T, 32 * 1024);
      EXPECT_EQ(A.GrantBytes, Slice); // Capped at the tenant's slice.
      EXPECT_TRUE(A.Reclaimed.empty());
      EXPECT_TRUE(Arb.invariantHolds());
      Arb.sessionDone(T, A.GrantBytes);
      // Oversized warm state is refused, slice-sized state retained.
      EXPECT_FALSE(Arb.retain(T, Slice + 1).Accepted);
      EXPECT_TRUE(Arb.retain(T, Slice).Accepted);
      EXPECT_TRUE(Arb.invariantHolds());
    }
  }
  EXPECT_EQ(Arb.reclaims(), 0u);
  EXPECT_EQ(Arb.retainedTotal(), 4 * Slice);
}

TEST(ArbiterTest, SharedBudgetReclaimsLeastRecentlyActive) {
  GlobalCacheArbiter::Config C;
  C.Mode = ArbiterMode::SharedBudget;
  C.BudgetBytes = 40 * 1024;
  C.MaxTenants = 8;
  C.MinGrantBytes = 4096;
  GlobalCacheArbiter Arb(C);

  // Three tenants run serially and retain 10K each (t0 first = least
  // recently active afterwards).
  for (uint32_t T = 0; T != 3; ++T) {
    GlobalCacheArbiter::Admission A = Arb.admit(T, 10 * 1024);
    EXPECT_EQ(A.GrantBytes, 10u * 1024);
    Arb.sessionDone(T, A.GrantBytes);
    EXPECT_TRUE(Arb.retain(T, 10 * 1024).Accepted);
  }
  EXPECT_EQ(Arb.retainedTotal(), 30u * 1024);

  // Tenant 3 wants 20K; 10K are free, so exactly the least-recently
  // active tenant (t0) is evicted.
  GlobalCacheArbiter::Admission A = Arb.admit(3, 20 * 1024);
  EXPECT_EQ(A.GrantBytes, 20u * 1024);
  ASSERT_EQ(A.Reclaimed.size(), 1u);
  EXPECT_EQ(A.Reclaimed[0].Tenant, 0u);
  EXPECT_EQ(A.Reclaimed[0].CacheBytes, 10u * 1024);
  EXPECT_EQ(Arb.retainedBytes(0), 0u);
  EXPECT_EQ(Arb.retainedBytes(1), 10u * 1024);
  EXPECT_EQ(Arb.reclaims(), 1u);
  EXPECT_TRUE(Arb.invariantHolds());
}

TEST(ArbiterTest, AdmissionConsumesOwnReservation) {
  GlobalCacheArbiter::Config C;
  C.Mode = ArbiterMode::SharedBudget;
  C.BudgetBytes = 32 * 1024;
  GlobalCacheArbiter Arb(C);

  GlobalCacheArbiter::Admission A = Arb.admit(0, 8 * 1024);
  Arb.sessionDone(0, A.GrantBytes);
  EXPECT_TRUE(Arb.retain(0, 8 * 1024).Accepted);
  EXPECT_EQ(Arb.retainedBytes(0), 8u * 1024);

  // Re-admission folds the reservation into the new grant; the budget
  // is not double-charged.
  A = Arb.admit(0, 8 * 1024);
  EXPECT_EQ(Arb.retainedBytes(0), 0u);
  EXPECT_EQ(Arb.inflightBytes(), 8u * 1024);
  EXPECT_TRUE(Arb.invariantHolds());
  Arb.sessionDone(0, A.GrantBytes);
}

TEST(ArbiterTest, MinGrantFloorUnderExhaustedBudget) {
  GlobalCacheArbiter::Config C;
  C.Mode = ArbiterMode::SharedBudget;
  C.BudgetBytes = 8 * 1024;
  C.MinGrantBytes = 4096;
  GlobalCacheArbiter Arb(C);

  // Four concurrent sessions against an 8K budget: everyone still gets
  // the floor, and the documented overshoot bound holds.
  std::vector<uint32_t> Grants;
  for (uint32_t T = 0; T != 4; ++T) {
    GlobalCacheArbiter::Admission A = Arb.admit(T, 16 * 1024);
    EXPECT_GE(A.GrantBytes, 4096u);
    Grants.push_back(A.GrantBytes);
    EXPECT_TRUE(Arb.invariantHolds());
  }
  for (uint32_t T = 0; T != 4; ++T)
    Arb.sessionDone(T, Grants[T]);
  EXPECT_EQ(Arb.inflightBytes(), 0u);
  EXPECT_EQ(Arb.inflightSessions(), 0u);
}

// --- Zipf traces ---------------------------------------------------------

TEST(ZipfTraceTest, DeterministicAndSkewed) {
  std::vector<uint32_t> A = zipfTrace(6, 500, 120, 42);
  std::vector<uint32_t> B = zipfTrace(6, 500, 120, 42);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, zipfTrace(6, 500, 120, 43));

  std::map<uint32_t, uint32_t> Counts;
  for (uint32_t T : A) {
    ASSERT_LT(T, 6u);
    ++Counts[T];
  }
  // s = 1.2 makes tenant 0 the head of the distribution.
  EXPECT_GT(Counts[0], Counts[5]);
  EXPECT_GT(Counts[0], 500u / 6);
}

// --- Server behaviour ----------------------------------------------------

ServerConfig smallServerConfig(bool Warm, ArbiterMode Mode, unsigned Workers) {
  ServerConfig SC;
  SC.Mode = Mode;
  SC.GlobalCacheBytes = 256 * 1024;
  SC.MaxTenants = 2;
  SC.WarmStart = Warm;
  SC.Workers = Workers;
  // Serialize admissions: each session sees its predecessor's snapshot.
  SC.AdmissionWindow = 1;
  return SC;
}

TEST(EngineServerTest, WarmStartIsCheaperThanCold) {
  isa::Program P = testProgram();
  core::SdtOptions Opts;
  std::vector<uint32_t> Trace = {0, 0, 0};

  auto runServer = [&](bool Warm) {
    EngineServer Server(
        smallServerConfig(Warm, ArbiterMode::Isolation, /*Workers=*/2));
    Server.registerTenant("gzip", P, Opts, arch::x86Model(), 64 * 1024);
    return Server.runTrace(Trace);
  };

  std::vector<SessionResult> Cold = runServer(false);
  std::vector<SessionResult> Warm = runServer(true);
  ASSERT_EQ(Cold.size(), 3u);
  ASSERT_EQ(Warm.size(), 3u);

  // First admission has no snapshot either way.
  EXPECT_FALSE(Warm[0].Warm);
  EXPECT_EQ(Warm[0].TotalCycles, Cold[0].TotalCycles);

  size_t SnapLoad = static_cast<size_t>(arch::CycleCategory::SnapshotLoad);
  size_t Translate = static_cast<size_t>(arch::CycleCategory::Translate);
  for (size_t I = 1; I != 3; ++I) {
    EXPECT_TRUE(Warm[I].Warm);
    EXPECT_GT(Warm[I].Stats.RehydratedFragments, 0u);
    EXPECT_GT(Warm[I].CyclesByCategory[SnapLoad], 0u);
    // Rehydration replaces translation: the warm session spends far less
    // in Translate and runs strictly cheaper end to end.
    EXPECT_LT(Warm[I].CyclesByCategory[Translate],
              Cold[I].CyclesByCategory[Translate]);
    EXPECT_LT(Warm[I].TotalCycles, Cold[I].TotalCycles);
    // Transparency: identical observable execution either way.
    EXPECT_EQ(Warm[I].Run.Checksum, Cold[I].Run.Checksum);
    EXPECT_EQ(Warm[I].Run.InstructionCount, Cold[I].Run.InstructionCount);
  }
}

TEST(EngineServerTest, CorruptStoredSnapshotFallsBackToCold) {
  isa::Program P = testProgram();
  core::SdtOptions Opts;

  EngineServer Server(
      smallServerConfig(/*Warm=*/true, ArbiterMode::Isolation, 1));
  uint32_t Id =
      Server.registerTenant("gzip", P, Opts, arch::x86Model(), 64 * 1024);

  std::vector<SessionResult> First = Server.runTrace({Id});
  ASSERT_EQ(First.size(), 1u);
  const std::vector<uint8_t> *Stored = Server.snapshots().lookup(Id);
  ASSERT_NE(Stored, nullptr);

  // Damage the stored blob in place; the next admission must discard it
  // with a diagnostic and run cold — never crash.
  std::vector<uint8_t> Bad = *Stored;
  Bad[Bad.size() / 2] ^= 0xff;
  Server.snapshots().store(Id, std::move(Bad),
                           Server.snapshots().cacheBytes(Id));

  std::vector<SessionResult> Second = Server.runTrace({Id});
  ASSERT_EQ(Second.size(), 1u);
  EXPECT_FALSE(Second[0].Warm);
  EXPECT_NE(Second[0].SnapshotError.find("checksum"), std::string::npos);
  EXPECT_EQ(Second[0].TotalCycles, First[0].TotalCycles); // Plain cold run.
  EXPECT_EQ(Server.registry().tenant(Id).SnapshotsDiscarded, 1u);
  // The discarded blob released its reservation and a fresh snapshot
  // was retained by the second session.
  EXPECT_NE(Server.snapshots().lookup(Id), nullptr);
}

TEST(EngineServerTest, DeterministicAcrossWorkerCounts) {
  core::SdtOptions Opts;
  std::vector<std::string> Names = {"gzip", "vpr", "gcc"};
  std::vector<isa::Program> Programs;
  for (const std::string &N : Names)
    Programs.push_back(testProgram(N.c_str()));
  std::vector<uint32_t> Trace = zipfTrace(3, 12, 120, 7);

  auto runServer = [&](unsigned Workers) {
    ServerConfig SC;
    SC.Mode = ArbiterMode::SharedBudget;
    SC.GlobalCacheBytes = 24 * 1024;
    SC.MaxTenants = 3;
    SC.WarmStart = true;
    SC.Workers = Workers;
    EngineServer Server(SC);
    for (size_t T = 0; T != Names.size(); ++T)
      Server.registerTenant(Names[T], Programs[T], Opts, arch::x86Model(),
                            8 * 1024);
    return Server.runTrace(Trace);
  };

  std::vector<SessionResult> One = runServer(1);
  std::vector<SessionResult> Four = runServer(4);
  ASSERT_EQ(One.size(), Four.size());
  for (size_t I = 0; I != One.size(); ++I) {
    EXPECT_EQ(One[I].Tenant, Four[I].Tenant) << "session " << I;
    EXPECT_EQ(One[I].Warm, Four[I].Warm) << "session " << I;
    EXPECT_EQ(One[I].GrantBytes, Four[I].GrantBytes) << "session " << I;
    EXPECT_EQ(One[I].TotalCycles, Four[I].TotalCycles) << "session " << I;
  }
}

// The differential that pins the whole service plumbing: a single tenant
// whose arbiter grant equals a standalone engine's private cache budget
// must produce bit-identical cycle counts — the ArbitratedPolicy wrapper,
// the worker thread, and the admission machinery are all
// decision-transparent.
TEST(EngineServerTest, SingleTenantMatchesStandaloneEngine) {
  isa::Program P = testProgram();
  const uint32_t CacheBytes = 32 * 1024;

  for (core::IBMechanism Mech :
       {core::IBMechanism::Ibtc, core::IBMechanism::Sieve}) {
    core::SdtOptions Opts;
    Opts.Mechanism = Mech;

    // Standalone run under a private budget.
    core::SdtOptions Private = Opts;
    Private.FragmentCacheBytes = CacheBytes;
    arch::TimingModel Timing(arch::x86Model());
    vm::ExecOptions Exec;
    Exec.Timing = &Timing;
    auto Engine = core::SdtEngine::create(P, Private, Exec);
    ASSERT_TRUE(static_cast<bool>(Engine));
    vm::RunResult Standalone = (*Engine)->run();
    ASSERT_TRUE(Standalone.finishedNormally());

    // Server run: isolation with MaxTenants=1 makes the slice (and so
    // the grant) exactly the global budget.
    ServerConfig SC;
    SC.Mode = ArbiterMode::Isolation;
    SC.GlobalCacheBytes = CacheBytes;
    SC.MaxTenants = 1;
    SC.WarmStart = false;
    SC.Workers = 2;
    EngineServer Server(SC);
    Server.registerTenant("gzip", P, Opts, arch::x86Model(), CacheBytes);
    std::vector<SessionResult> R = Server.runTrace({0});
    ASSERT_EQ(R.size(), 1u);
    EXPECT_EQ(R[0].GrantBytes, CacheBytes);
    EXPECT_EQ(R[0].TotalCycles, Timing.totalCycles());
    EXPECT_EQ(R[0].Run.Checksum, Standalone.Checksum);
    EXPECT_EQ(R[0].Run.InstructionCount, Standalone.InstructionCount);
  }
}

// Per-tenant plugin attachment: each session gets a fresh manager built
// from the tenant's spec; tenants without plugins are untouched (cycle
// bit-identity), and a bad spec surfaces as a session error, not a crash.
TEST(EngineServerTest, PerTenantPluginsAreIsolated) {
  isa::Program P = testProgram();
  core::SdtOptions Opts;

  auto runPair = [&](const char *Spec) {
    EngineServer Server(
        smallServerConfig(/*Warm=*/true, ArbiterMode::Isolation, 1));
    Server.registerTenant("plain", P, Opts, arch::x86Model(), 64 * 1024);
    Server.registerTenant("instr", P, Opts, arch::x86Model(), 64 * 1024,
                          Spec);
    return Server.runTrace({0, 1, 0, 1});
  };

  std::vector<SessionResult> Off = runPair("");
  std::vector<SessionResult> On = runPair("coverage,ibedges");
  ASSERT_EQ(On.size(), 4u);

  for (size_t I : {size_t(1), size_t(3)}) { // The instrumented tenant.
    EXPECT_EQ(On[I].PluginSpec, "coverage,ibedges");
    EXPECT_FALSE(On[I].PluginMetrics.empty());
    uint64_t Entries = 0;
    for (const auto &KV : On[I].PluginMetrics)
      if (KV.first == "coverage.block_entries")
        Entries = KV.second;
    EXPECT_GT(Entries, 0u) << "session " << I;
    // Instrumentation charges cycles; identical guest behaviour.
    EXPECT_GT(On[I].TotalCycles, Off[I].TotalCycles);
    EXPECT_EQ(On[I].Run.Checksum, Off[I].Run.Checksum);
  }
  // Warm second round still delivers plugin state (prewarm fires the
  // translation callbacks through the normal translate path).
  EXPECT_TRUE(On[2].Warm);
  EXPECT_TRUE(On[3].Warm);
  for (size_t I : {size_t(0), size_t(2)}) { // The plain tenant.
    EXPECT_TRUE(On[I].PluginSpec.empty());
    EXPECT_TRUE(On[I].PluginMetrics.empty());
    // A co-resident instrumented tenant must not perturb this one.
    EXPECT_EQ(On[I].TotalCycles, Off[I].TotalCycles);
  }

  // A tenant registered with a bad spec fails its sessions gracefully.
  EngineServer Bad(
      smallServerConfig(/*Warm=*/false, ArbiterMode::Isolation, 1));
  Bad.registerTenant("oops", P, Opts, arch::x86Model(), 64 * 1024,
                     "coverage,typo");
  std::vector<SessionResult> R = Bad.runTrace({0});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_FALSE(R[0].EngineError.empty());
  EXPECT_NE(R[0].EngineError.find("typo"), std::string::npos);
}

TEST(EngineServerTest, TraceEventsReconcile) {
  isa::Program P = testProgram();
  core::SdtOptions Opts;

  EngineServer Server(
      smallServerConfig(/*Warm=*/true, ArbiterMode::Isolation, 1));
  Server.registerTenant("gzip", P, Opts, arch::x86Model(), 64 * 1024);

  trace::TraceSink Sink;
  Server.setTraceSink(&Sink);
  Server.runTrace({0, 0});

  trace::StatsExpectation E = Server.expectations();
  EXPECT_EQ(E.TenantAdmissions, 2u);
  EXPECT_EQ(E.SnapshotSaves, 2u);
  EXPECT_EQ(E.SnapshotLoads, 1u);
  EXPECT_EQ(Sink.totalCount(trace::EventKind::TenantAdmit),
            E.TenantAdmissions);
  EXPECT_EQ(Sink.totalCount(trace::EventKind::SnapshotSave), E.SnapshotSaves);
  EXPECT_EQ(Sink.totalCount(trace::EventKind::SnapshotLoad), E.SnapshotLoads);
  EXPECT_EQ(Sink.totalCount(trace::EventKind::TenantEvict), E.TenantEvictions);
}

} // namespace
