//===- tests/support_test.cpp - Support library tests ------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include "support/Hashing.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TableFormatter.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

using namespace sdt;

// --- Error / Expected ------------------------------------------------------

TEST(ErrorTest, DefaultIsSuccess) {
  Error E;
  EXPECT_FALSE(static_cast<bool>(E));
  EXPECT_TRUE(E.isSuccess());
}

TEST(ErrorTest, FailureCarriesMessage) {
  Error E = Error::failure("boom");
  EXPECT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.message(), "boom");
}

TEST(ErrorTest, AtLinePrefixesLineNumber) {
  Error E = Error::atLine(42, "bad register");
  EXPECT_EQ(E.message(), "line 42: bad register");
}

TEST(ExpectedTest, SuccessHoldsValue) {
  Expected<int> V(7);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(*V, 7);
}

TEST(ExpectedTest, FailureHoldsError) {
  Expected<int> V(Error::failure("nope"));
  ASSERT_FALSE(static_cast<bool>(V));
  EXPECT_EQ(V.error().message(), "nope");
  Error Taken = V.takeError();
  EXPECT_EQ(Taken.message(), "nope");
}

TEST(ExpectedTest, MoveOnlyValue) {
  Expected<std::unique_ptr<int>> V(std::make_unique<int>(3));
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(**V, 3);
}

// --- Hashing ------------------------------------------------------------

TEST(HashingTest, PowerOf2Detection) {
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(2));
  EXPECT_TRUE(isPowerOf2(1024));
  EXPECT_TRUE(isPowerOf2(0x80000000u));
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_FALSE(isPowerOf2(3));
  EXPECT_FALSE(isPowerOf2(1023));
}

TEST(HashingTest, Log2Floor) {
  EXPECT_EQ(log2Floor(1), 0u);
  EXPECT_EQ(log2Floor(2), 1u);
  EXPECT_EQ(log2Floor(3), 1u);
  EXPECT_EQ(log2Floor(4096), 12u);
  EXPECT_EQ(log2Floor(0xFFFFFFFFu), 31u);
}

class HashKindTest : public ::testing::TestWithParam<HashKind> {};

TEST_P(HashKindTest, IndexAlwaysInRange) {
  for (uint32_t Size : {1u, 2u, 16u, 4096u, 65536u})
    for (uint32_t Addr = 0x1000; Addr < 0x1400; Addr += 4)
      EXPECT_LT(hashAddress(GetParam(), Addr, Size), Size);
}

TEST_P(HashKindTest, Deterministic) {
  EXPECT_EQ(hashAddress(GetParam(), 0x1234, 1024),
            hashAddress(GetParam(), 0x1234, 1024));
}

TEST_P(HashKindTest, AluCostPositive) {
  EXPECT_GT(hashAluOpCount(GetParam()), 0u);
}

TEST_P(HashKindTest, NameNonEmpty) {
  EXPECT_FALSE(hashKindName(GetParam()).empty());
}

TEST_P(HashKindTest, SpreadsWordAlignedAddresses) {
  // Consecutive word-aligned code addresses must not all collide.
  std::set<uint32_t> Indices;
  for (uint32_t Addr = 0x1000; Addr < 0x1100; Addr += 4)
    Indices.insert(hashAddress(GetParam(), Addr, 256));
  EXPECT_GT(Indices.size(), 16u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, HashKindTest,
                         ::testing::Values(HashKind::ShiftMask,
                                           HashKind::XorFold,
                                           HashKind::Fibonacci));

TEST(HashingTest, Mix64Avalanches) {
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(0), 0u);
}

// --- Rng --------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  bool Differs = false;
  for (int I = 0; I != 10 && !Differs; ++I)
    Differs = A.next() != B.next();
  EXPECT_TRUE(Differs);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RngTest, NextBelowOneIsZero) {
  Rng R(7);
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(R.nextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, ChanceExtremes) {
  Rng R(11);
  for (int I = 0; I != 100; ++I) {
    EXPECT_TRUE(R.nextChance(1, 1));
    EXPECT_FALSE(R.nextChance(0, 1));
  }
}

// --- Statistics ------------------------------------------------------------

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.min(), 0.0);
  EXPECT_EQ(S.max(), 0.0);
}

TEST(RunningStatTest, TracksMinMaxMean) {
  RunningStat S;
  S.addSample(2.0);
  S.addSample(4.0);
  S.addSample(9.0);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
  EXPECT_DOUBLE_EQ(S.sum(), 15.0);
}

TEST(RunningStatTest, NegativeSamples) {
  RunningStat S;
  S.addSample(-5.0);
  S.addSample(5.0);
  EXPECT_DOUBLE_EQ(S.min(), -5.0);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
}

TEST(GeoMeanTest, EmptyIsZero) {
  EXPECT_EQ(geometricMean({}), 0.0);
}

TEST(GeoMeanTest, SingleValue) {
  EXPECT_NEAR(geometricMean({4.0}), 4.0, 1e-12);
}

TEST(GeoMeanTest, ClassicExample) {
  EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometricMean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram H(4, 10);
  H.addSample(0);
  H.addSample(9);
  H.addSample(10);
  H.addSample(39);
  H.addSample(40); // overflow
  H.addSample(1000);
  EXPECT_EQ(H.bucketValue(0), 2u);
  EXPECT_EQ(H.bucketValue(1), 1u);
  EXPECT_EQ(H.bucketValue(3), 1u);
  EXPECT_EQ(H.overflowCount(), 2u);
  EXPECT_EQ(H.totalCount(), 6u);
}

TEST(HistogramTest, MeanUsesTrueValues) {
  Histogram H(2, 1);
  H.addSample(0);
  H.addSample(10); // overflow bucket, but mean uses 10
  EXPECT_DOUBLE_EQ(H.mean(), 5.0);
}

TEST(HistogramTest, RenderSkipsEmptyBuckets) {
  Histogram H(8, 1);
  H.addSample(3);
  std::string Out = H.render();
  EXPECT_NE(Out.find("3"), std::string::npos);
  EXPECT_EQ(Out.find("overflow"), std::string::npos);
}

TEST(Log2HistogramTest, PowerOfTwoBucketing) {
  Log2Histogram H(6); // Buckets: 0, 1, 2-3, 4-7, 8-15, 16-31, overflow.
  H.addSample(0);
  H.addSample(1);
  H.addSample(2);
  H.addSample(3);
  H.addSample(4);
  H.addSample(15);
  H.addSample(31);
  H.addSample(32); // Overflow.
  EXPECT_EQ(H.bucketValue(0), 1u);
  EXPECT_EQ(H.bucketValue(1), 1u);
  EXPECT_EQ(H.bucketValue(2), 2u);
  EXPECT_EQ(H.bucketValue(3), 1u);
  EXPECT_EQ(H.bucketValue(4), 1u);
  EXPECT_EQ(H.bucketValue(5), 1u);
  EXPECT_EQ(H.overflowCount(), 1u);
  EXPECT_EQ(H.totalCount(), 8u);
  EXPECT_EQ(Log2Histogram::bucketLow(0), 0u);
  EXPECT_EQ(Log2Histogram::bucketLow(1), 1u);
  EXPECT_EQ(Log2Histogram::bucketLow(5), 16u);
}

TEST(Log2HistogramTest, MeanUsesTrueValues) {
  Log2Histogram H(4);
  H.addSample(2);
  H.addSample(1000); // Overflow, but its true value feeds the mean.
  EXPECT_DOUBLE_EQ(H.mean(), 501.0);
}

TEST(Log2HistogramTest, RenderSkipsEmptyBuckets) {
  Log2Histogram H(10);
  H.addSample(5);
  std::string Out = H.render();
  EXPECT_NE(Out.find("4..7"), std::string::npos);
  EXPECT_EQ(Out.find("overflow"), std::string::npos);
}

// --- StringUtils -----------------------------------------------------------

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\tx\n"), "x");
  EXPECT_EQ(trim("no-ws"), "no-ws");
}

TEST(StringUtilsTest, SplitKeepsEmptyFields) {
  auto F = split("a,b,,c", ',');
  ASSERT_EQ(F.size(), 4u);
  EXPECT_EQ(F[0], "a");
  EXPECT_EQ(F[2], "");
  EXPECT_EQ(F[3], "c");
}

TEST(StringUtilsTest, SplitSingleField) {
  auto F = split("solo", ',');
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0], "solo");
}

TEST(StringUtilsTest, ParseIntegerDecimal) {
  EXPECT_EQ(parseInteger("0"), 0);
  EXPECT_EQ(parseInteger("42"), 42);
  EXPECT_EQ(parseInteger("-42"), -42);
  EXPECT_EQ(parseInteger("+7"), 7);
  EXPECT_EQ(parseInteger("  13  "), 13);
}

TEST(StringUtilsTest, ParseIntegerHexAndBinary) {
  EXPECT_EQ(parseInteger("0x10"), 16);
  EXPECT_EQ(parseInteger("0XfF"), 255);
  EXPECT_EQ(parseInteger("-0x8"), -8);
  EXPECT_EQ(parseInteger("0b101"), 5);
}

TEST(StringUtilsTest, ParseIntegerRejectsGarbage) {
  EXPECT_FALSE(parseInteger(""));
  EXPECT_FALSE(parseInteger("-"));
  EXPECT_FALSE(parseInteger("0x"));
  EXPECT_FALSE(parseInteger("12a"));
  EXPECT_FALSE(parseInteger("a12"));
  EXPECT_FALSE(parseInteger("1 2"));
  EXPECT_FALSE(parseInteger("0b2"));
  EXPECT_FALSE(parseInteger("99999999999999999999999999"));
}

TEST(StringUtilsTest, ParseIntegerBoundaries) {
  EXPECT_EQ(parseInteger("9223372036854775807"),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(parseInteger("-9223372036854775808"),
            std::numeric_limits<int64_t>::min());
  EXPECT_FALSE(parseInteger("9223372036854775808"));
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(startsWith("hello", "he"));
  EXPECT_TRUE(startsWith("hello", ""));
  EXPECT_FALSE(startsWith("he", "hello"));
}

TEST(StringUtilsTest, ToLower) {
  EXPECT_EQ(toLower("AbC9_x"), "abc9_x");
}

TEST(StringUtilsTest, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(formatString("%08x", 0x42u), "00000042");
  EXPECT_EQ(formatString("plain"), "plain");
}

// --- TableFormatter -------------------------------------------------------

TEST(TableFormatterTest, AlignsColumns) {
  TableFormatter T({"name", "value"});
  T.beginRow().addCell(std::string("a")).addCell(uint64_t(100));
  T.beginRow().addCell(std::string("longer")).addCell(uint64_t(2));
  std::string Out = T.render();
  // Header, rule, 2 rows.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 4);
  // Numbers right-aligned: "2" must be preceded by spaces.
  EXPECT_NE(Out.find("   100"), std::string::npos - 1);
  EXPECT_NE(Out.find("longer"), std::string::npos);
}

TEST(TableFormatterTest, FixedPointCells) {
  TableFormatter T({"x"});
  T.beginRow().addCell(3.14159, 2);
  EXPECT_NE(T.render().find("3.14"), std::string::npos);
}

TEST(TableFormatterTest, HeaderOnlyRenders) {
  TableFormatter T({"a", "b"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("a"), std::string::npos);
  EXPECT_NE(Out.find("---"), std::string::npos);
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, WorkerCountAtLeastOne) {
  support::ThreadPool P(0);
  EXPECT_EQ(P.workerCount(), 1u);
  support::ThreadPool Q(3);
  EXPECT_EQ(Q.workerCount(), 3u);
}

TEST(ThreadPoolTest, SubmitReturnsResult) {
  support::ThreadPool P(2);
  std::future<int> F = P.submit([] { return 41 + 1; });
  EXPECT_EQ(F.get(), 42);
}

TEST(ThreadPoolTest, FuturesCollectInSubmissionOrder) {
  support::ThreadPool P(4);
  std::vector<std::future<size_t>> Futures;
  for (size_t I = 0; I != 64; ++I)
    Futures.push_back(P.submit([I] { return I * I; }));
  for (size_t I = 0; I != Futures.size(); ++I)
    EXPECT_EQ(Futures[I].get(), I * I);
}

TEST(ThreadPoolTest, AllTasksRunExactlyOnce) {
  std::atomic<unsigned> Count{0};
  {
    support::ThreadPool P(4);
    std::vector<std::future<void>> Futures;
    for (int I = 0; I != 100; ++I)
      Futures.push_back(P.submit([&Count] { ++Count; }));
    for (auto &F : Futures)
      F.get();
  }
  EXPECT_EQ(Count.load(), 100u);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  support::ThreadPool P(2);
  std::future<int> Ok = P.submit([] { return 1; });
  std::future<int> Bad =
      P.submit([]() -> int { throw std::runtime_error("cell failed"); });
  EXPECT_EQ(Ok.get(), 1);
  EXPECT_THROW(Bad.get(), std::runtime_error);
  // The pool survives a throwing task and keeps serving.
  EXPECT_EQ(P.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<unsigned> Count{0};
  {
    // One worker so most tasks are still queued at destruction time.
    support::ThreadPool P(1);
    for (int I = 0; I != 50; ++I)
      P.submit([&Count] { ++Count; });
  }
  EXPECT_EQ(Count.load(), 50u);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  support::ThreadPool P(2);
  for (int Batch = 0; Batch != 3; ++Batch) {
    std::vector<std::future<int>> Futures;
    for (int I = 0; I != 10; ++I)
      Futures.push_back(P.submit([I] { return I; }));
    int Sum = 0;
    for (auto &F : Futures)
      Sum += F.get();
    EXPECT_EQ(Sum, 45);
  }
}

// --- JsonWriter ------------------------------------------------------------

TEST(JsonTest, EscapesControlAndQuotes) {
  EXPECT_EQ(support::jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(support::jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(support::jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(support::jsonEscape("plain"), "plain");
}

TEST(JsonTest, EmptyContainers) {
  support::JsonWriter W;
  W.beginObject().endObject();
  EXPECT_EQ(W.str(), "{}");
  support::JsonWriter A;
  A.beginArray().endArray();
  EXPECT_EQ(A.str(), "[]");
}

TEST(JsonTest, ObjectWithScalarValues) {
  support::JsonWriter W;
  W.beginObject();
  W.key("s").value("x");
  W.key("n").value(uint64_t(7));
  W.key("d").value(1.5);
  W.key("b").value(true);
  W.endObject();
  std::string Doc = W.str();
  EXPECT_NE(Doc.find("\"s\": \"x\""), std::string::npos);
  EXPECT_NE(Doc.find("\"n\": 7"), std::string::npos);
  EXPECT_NE(Doc.find("1.5"), std::string::npos);
  EXPECT_NE(Doc.find("true"), std::string::npos);
}

TEST(JsonTest, NestedArrayCommaPlacement) {
  support::JsonWriter W;
  W.beginObject().key("xs").beginArray();
  W.value(uint64_t(1)).value(uint64_t(2)).value(uint64_t(3));
  W.endArray().endObject();
  std::string Doc = W.str();
  // Three elements, two commas between them.
  EXPECT_EQ(std::count(Doc.begin(), Doc.end(), ','), 2);
}
