//===- tests/isa_test.cpp - GIR ISA tests ------------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//

#include "isa/Disassembler.h"
#include "isa/Encoding.h"
#include "isa/Instruction.h"
#include "isa/Opcode.h"
#include "isa/Program.h"
#include "isa/Registers.h"
#include "isa/Serialize.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::isa;

// --- Registers -----------------------------------------------------------

TEST(RegistersTest, CanonicalNames) {
  EXPECT_EQ(registerName(0), "zero");
  EXPECT_EQ(registerName(RegSP), "sp");
  EXPECT_EQ(registerName(RegRA), "ra");
  EXPECT_EQ(registerName(RegV0), "v0");
  EXPECT_EQ(registerName(RegA0), "a0");
}

TEST(RegistersTest, ParseCanonicalAndNumeric) {
  EXPECT_EQ(parseRegisterName("zero"), 0u);
  EXPECT_EQ(parseRegisterName("SP"), unsigned(RegSP));
  EXPECT_EQ(parseRegisterName("r0"), 0u);
  EXPECT_EQ(parseRegisterName("r31"), 31u);
  EXPECT_EQ(parseRegisterName("R15"), 15u);
}

TEST(RegistersTest, ParseRejectsBadNames) {
  EXPECT_FALSE(parseRegisterName("r32"));
  EXPECT_FALSE(parseRegisterName("r-1"));
  EXPECT_FALSE(parseRegisterName("x5"));
  EXPECT_FALSE(parseRegisterName(""));
  EXPECT_FALSE(parseRegisterName("r"));
}

TEST(RegistersTest, AllNamesRoundTrip) {
  for (unsigned I = 0; I != NumRegisters; ++I)
    EXPECT_EQ(parseRegisterName(registerName(I)), I);
}

// --- Opcode metadata -------------------------------------------------------

TEST(OpcodeTest, MnemonicsRoundTrip) {
  for (size_t I = 0, E = static_cast<size_t>(Opcode::NumOpcodes); I != E;
       ++I) {
    Opcode Op = static_cast<Opcode>(I);
    EXPECT_EQ(parseMnemonic(opcodeMnemonic(Op)), Op);
  }
}

TEST(OpcodeTest, UnknownMnemonic) {
  EXPECT_FALSE(parseMnemonic("fma"));
  EXPECT_FALSE(parseMnemonic(""));
}

TEST(OpcodeTest, IndirectBranchClassification) {
  EXPECT_TRUE(isIndirectBranch(Opcode::Jr));
  EXPECT_TRUE(isIndirectBranch(Opcode::Jalr));
  EXPECT_TRUE(isIndirectBranch(Opcode::Ret));
  EXPECT_FALSE(isIndirectBranch(Opcode::J));
  EXPECT_FALSE(isIndirectBranch(Opcode::Jal));
  EXPECT_FALSE(isIndirectBranch(Opcode::Beq));
  EXPECT_FALSE(isIndirectBranch(Opcode::Add));
}

TEST(OpcodeTest, ControlTransferClassification) {
  EXPECT_TRUE(isControlTransfer(Opcode::Beq));
  EXPECT_TRUE(isControlTransfer(Opcode::J));
  EXPECT_TRUE(isControlTransfer(Opcode::Syscall));
  EXPECT_TRUE(isControlTransfer(Opcode::Halt));
  EXPECT_FALSE(isControlTransfer(Opcode::Add));
  EXPECT_FALSE(isControlTransfer(Opcode::Lw));
  EXPECT_FALSE(isControlTransfer(Opcode::Lui));
}

// --- Instruction factories ---------------------------------------------------

TEST(InstructionTest, FactoriesSetFields) {
  Instruction I = makeR(Opcode::Add, 1, 2, 3);
  EXPECT_EQ(I.Op, Opcode::Add);
  EXPECT_EQ(I.Rd, 1);
  EXPECT_EQ(I.Rs1, 2);
  EXPECT_EQ(I.Rs2, 3);

  Instruction J = makeI(Opcode::Addi, 4, 5, -100);
  EXPECT_EQ(J.Imm, -100);

  Instruction K = makeMem(Opcode::Lw, 6, 7, 16);
  EXPECT_EQ(K.Rd, 6);
  EXPECT_EQ(K.Rs1, 7);
  EXPECT_EQ(K.Imm, 16);
}

TEST(InstructionTest, NopIsAddZero) {
  Instruction N = makeNop();
  EXPECT_EQ(N.Op, Opcode::Add);
  EXPECT_EQ(N.Rd, 0);
}

TEST(InstructionTest, BranchTarget) {
  Instruction B = makeBranch(Opcode::Beq, 1, 2, -8);
  EXPECT_EQ(B.branchTarget(0x1010), 0x1008u);
}

TEST(InstructionTest, DirectTarget) {
  Instruction J = makeJump(Opcode::J, 0x2000);
  EXPECT_EQ(J.directTarget(), 0x2000u);
}

TEST(InstructionTest, CtiKinds) {
  EXPECT_EQ(makeRet().ctiKind(), CtiKind::Return);
  EXPECT_EQ(makeJr(5).ctiKind(), CtiKind::IndirectJump);
  EXPECT_EQ(makeJalr(RegRA, 5).ctiKind(), CtiKind::IndirectCall);
  EXPECT_EQ(makeSyscall().ctiKind(), CtiKind::Stop);
  EXPECT_FALSE(makeNop().isCti());
}

// --- Encoding round trips ------------------------------------------------

static void expectRoundTrip(const Instruction &I) {
  uint32_t Word = encode(I);
  Expected<Instruction> D = decode(Word);
  ASSERT_TRUE(static_cast<bool>(D)) << D.error().message();
  EXPECT_EQ(*D, I) << "opcode " << std::string(opcodeMnemonic(I.Op));
}

TEST(EncodingTest, RFormatRoundTrip) {
  for (Opcode Op : {Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Div,
                    Opcode::Rem, Opcode::And, Opcode::Or, Opcode::Xor,
                    Opcode::Sll, Opcode::Srl, Opcode::Sra, Opcode::Slt,
                    Opcode::Sltu})
    expectRoundTrip(makeR(Op, 31, 0, 17));
}

TEST(EncodingTest, IFormatRoundTrip) {
  for (int32_t Imm : {-32768, -1, 0, 1, 32767})
    expectRoundTrip(makeI(Opcode::Addi, 3, 4, Imm));
  for (Opcode Op : {Opcode::Slti, Opcode::Sltiu, Opcode::Slli, Opcode::Srli,
                    Opcode::Srai})
    expectRoundTrip(makeI(Op, 1, 2, 13));
}

TEST(EncodingTest, LogicalImmediatesZeroExtend) {
  for (int32_t Imm : {0, 1, 0x7FFF, 0x8000, 0xFFFF}) {
    for (Opcode Op : {Opcode::Andi, Opcode::Ori, Opcode::Xori}) {
      Instruction I = makeI(Op, 5, 6, Imm);
      Expected<Instruction> D = decode(encode(I));
      ASSERT_TRUE(static_cast<bool>(D));
      EXPECT_EQ(D->Imm, Imm); // Never sign-extended.
    }
  }
}

TEST(EncodingTest, LuiRoundTrip) {
  expectRoundTrip(makeLui(9, 0));
  expectRoundTrip(makeLui(9, 0xFFFF));
  expectRoundTrip(makeLui(9, 0x1234));
}

TEST(EncodingTest, MemRoundTrip) {
  for (Opcode Op : {Opcode::Lw, Opcode::Lh, Opcode::Lhu, Opcode::Lb,
                    Opcode::Lbu, Opcode::Sw, Opcode::Sh, Opcode::Sb})
    expectRoundTrip(makeMem(Op, 10, 29, -4));
}

TEST(EncodingTest, BranchRoundTrip) {
  for (Opcode Op : {Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bge,
                    Opcode::Bltu, Opcode::Bgeu}) {
    expectRoundTrip(makeBranch(Op, 1, 2, -131072)); // -32768 words
    expectRoundTrip(makeBranch(Op, 1, 2, 131068));  // 32767 words
    expectRoundTrip(makeBranch(Op, 1, 2, 0));
  }
}

TEST(EncodingTest, JumpRoundTrip) {
  expectRoundTrip(makeJump(Opcode::J, 0));
  expectRoundTrip(makeJump(Opcode::J, 0x0FFFFFFC));
  expectRoundTrip(makeJump(Opcode::Jal, 0x1000));
}

TEST(EncodingTest, IndirectAndSystemRoundTrip) {
  expectRoundTrip(makeJr(13));
  expectRoundTrip(makeJalr(31, 7));
  expectRoundTrip(makeJalr(5, 7));
  expectRoundTrip(makeRet());
  expectRoundTrip(makeSyscall());
  expectRoundTrip(makeHalt());
}

TEST(EncodingTest, InvalidOpcodeFieldFails) {
  // Opcode field 63 is far beyond NumOpcodes.
  Expected<Instruction> D = decode(0xFC000000u);
  EXPECT_FALSE(static_cast<bool>(D));
}

TEST(EncodingTest, WordLittleEndian) {
  uint8_t Bytes[4];
  writeWordLE(Bytes, 0x11223344);
  EXPECT_EQ(Bytes[0], 0x44);
  EXPECT_EQ(Bytes[3], 0x11);
  EXPECT_EQ(readWordLE(Bytes), 0x11223344u);
}

// --- Disassembler -------------------------------------------------------

TEST(DisassemblerTest, Formats) {
  EXPECT_EQ(disassemble(makeR(Opcode::Add, 2, 3, 4), 0),
            "add v0, v1, a0");
  EXPECT_EQ(disassemble(makeI(Opcode::Addi, 8, 8, -4), 0),
            "addi t0, t0, -4");
  EXPECT_EQ(disassemble(makeMem(Opcode::Lw, 8, 29, 8), 0),
            "lw t0, 8(sp)");
  EXPECT_EQ(disassemble(makeJump(Opcode::J, 0x2000), 0), "j 0x2000");
  EXPECT_EQ(disassemble(makeJr(9), 0), "jr t1");
  EXPECT_EQ(disassemble(makeJalr(31, 9), 0), "jalr ra, t1");
  EXPECT_EQ(disassemble(makeRet(), 0), "ret");
  EXPECT_EQ(disassemble(makeSyscall(), 0), "syscall");
}

TEST(DisassemblerTest, BranchShowsAbsoluteTarget) {
  Instruction B = makeBranch(Opcode::Bne, 1, 0, 16);
  EXPECT_EQ(disassemble(B, 0x1000), "bne at, zero, 0x1010");
}

TEST(DisassemblerTest, LuiHex) {
  EXPECT_EQ(disassemble(makeLui(8, 0xABC), 0), "lui t0, 0xabc");
}

// --- Program ------------------------------------------------------------

TEST(ProgramTest, FetchDecodesInstruction) {
  std::vector<uint8_t> Image(8, 0);
  writeWordLE(&Image[0], encode(makeNop()));
  writeWordLE(&Image[4], encode(makeHalt()));
  Program P(0x1000, Image);
  Expected<Instruction> I = P.fetch(0x1004);
  ASSERT_TRUE(static_cast<bool>(I));
  EXPECT_EQ(I->Op, Opcode::Halt);
}

TEST(ProgramTest, FetchRejectsUnalignedAndOutOfRange) {
  Program P(0x1000, std::vector<uint8_t>(8, 0));
  EXPECT_FALSE(static_cast<bool>(P.fetch(0x1002)));
  EXPECT_FALSE(static_cast<bool>(P.fetch(0x0FFC)));
  EXPECT_FALSE(static_cast<bool>(P.fetch(0x1008)));
}

TEST(ProgramTest, SymbolsResolve) {
  Program P(0x1000, std::vector<uint8_t>(4, 0));
  P.addSymbol("main", 0x1000);
  Expected<uint32_t> S = P.symbol("main");
  ASSERT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(*S, 0x1000u);
  EXPECT_FALSE(static_cast<bool>(P.symbol("missing")));
}

// --- GX serialization ----------------------------------------------------

static Program makeSampleProgram() {
  std::vector<uint8_t> Image(12);
  writeWordLE(&Image[0], encode(makeNop()));
  writeWordLE(&Image[4], encode(makeJr(5)));
  writeWordLE(&Image[8], 0xDEADBEEF); // Data word.
  Program P(0x2000, Image);
  P.setEntry(0x2004);
  P.addSymbol("main", 0x2004);
  P.addSymbol("table", 0x2008);
  return P;
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  Program P = makeSampleProgram();
  std::vector<uint8_t> Bytes = serializeProgram(P);
  EXPECT_TRUE(isGxImage(Bytes));
  Expected<Program> Q = deserializeProgram(Bytes);
  ASSERT_TRUE(static_cast<bool>(Q)) << Q.error().message();
  EXPECT_EQ(Q->loadAddress(), P.loadAddress());
  EXPECT_EQ(Q->entry(), P.entry());
  EXPECT_EQ(Q->image(), P.image());
  EXPECT_EQ(Q->symbols(), P.symbols());
}

TEST(SerializeTest, RejectsBadMagicAndVersion) {
  Program P = makeSampleProgram();
  std::vector<uint8_t> Bytes = serializeProgram(P);
  std::vector<uint8_t> BadMagic = Bytes;
  BadMagic[0] = 'X';
  EXPECT_FALSE(static_cast<bool>(deserializeProgram(BadMagic)));
  std::vector<uint8_t> BadVersion = Bytes;
  BadVersion[4] = 99;
  EXPECT_FALSE(static_cast<bool>(deserializeProgram(BadVersion)));
}

TEST(SerializeTest, RejectsTruncation) {
  Program P = makeSampleProgram();
  std::vector<uint8_t> Bytes = serializeProgram(P);
  for (size_t Cut : {size_t(3), size_t(10), size_t(25),
                     Bytes.size() - 3}) {
    std::vector<uint8_t> Short(Bytes.begin(),
                               Bytes.begin() + static_cast<long>(Cut));
    EXPECT_FALSE(static_cast<bool>(deserializeProgram(Short)))
        << "cut at " << Cut;
  }
}

TEST(SerializeTest, RejectsTrailingGarbage) {
  std::vector<uint8_t> Bytes = serializeProgram(makeSampleProgram());
  Bytes.push_back(0x42);
  EXPECT_FALSE(static_cast<bool>(deserializeProgram(Bytes)));
}

TEST(SerializeTest, FileRoundTrip) {
  Program P = makeSampleProgram();
  std::string Path = ::testing::TempDir() + "/strataib_test.gx";
  ASSERT_TRUE(writeProgramFile(Path, P).isSuccess());
  Expected<Program> Q = readProgramFile(Path);
  ASSERT_TRUE(static_cast<bool>(Q)) << Q.error().message();
  EXPECT_EQ(Q->image(), P.image());
  EXPECT_EQ(Q->symbols(), P.symbols());
}

TEST(ProgramTest, ContainsAndEnd) {
  Program P(0x1000, std::vector<uint8_t>(16, 0));
  EXPECT_TRUE(P.contains(0x1000, 16));
  EXPECT_FALSE(P.contains(0x1000, 17));
  EXPECT_FALSE(P.contains(0xFFF));
  EXPECT_EQ(P.endAddress(), 0x1010u);
  EXPECT_EQ(P.instructionCapacity(), 4u);
}
