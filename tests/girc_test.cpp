//===- tests/girc_test.cpp - MinC compiler tests -----------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//

#include "arch/Timing.h"
#include "core/SdtEngine.h"
#include "girc/Compiler.h"
#include "girc/Lexer.h"
#include "girc/Parser.h"
#include "girc/Sema.h"
#include "vm/GuestVM.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::girc;

namespace {

/// Compiles and runs MinC source natively; returns the run result.
vm::RunResult runMinc(std::string_view Source) {
  Expected<isa::Program> P = compile(Source);
  EXPECT_TRUE(static_cast<bool>(P)) << (P ? "" : P.error().message());
  vm::ExecOptions Exec;
  Exec.MaxInstructions = 50000000;
  auto VM = vm::GuestVM::create(*P, Exec);
  EXPECT_TRUE(static_cast<bool>(VM));
  return (*VM)->run();
}

std::string compileError(std::string_view Source) {
  Expected<isa::Program> P = compile(Source);
  EXPECT_FALSE(static_cast<bool>(P)) << "expected compilation to fail";
  return P ? "" : P.error().message();
}

} // namespace

// --- Lexer --------------------------------------------------------------

TEST(GircLexerTest, TokenisesOperatorsAndKeywords) {
  auto Tokens = lex("func f() { return 1 <= 2 && 3 != 4; } // tail");
  ASSERT_TRUE(static_cast<bool>(Tokens));
  std::vector<TokKind> Kinds;
  for (const Token &T : *Tokens)
    Kinds.push_back(T.Kind);
  EXPECT_EQ(Kinds, (std::vector<TokKind>{
                       TokKind::KwFunc, TokKind::Ident, TokKind::LParen,
                       TokKind::RParen, TokKind::LBrace, TokKind::KwReturn,
                       TokKind::Number, TokKind::Le, TokKind::Number,
                       TokKind::AmpAmp, TokKind::Number, TokKind::NotEq,
                       TokKind::Number, TokKind::Semi, TokKind::RBrace,
                       TokKind::Eof}));
}

TEST(GircLexerTest, HexNumbersAndLines) {
  auto Tokens = lex("1\n0xff\n");
  ASSERT_TRUE(static_cast<bool>(Tokens));
  EXPECT_EQ((*Tokens)[0].Value, 1);
  EXPECT_EQ((*Tokens)[1].Value, 255);
  EXPECT_EQ((*Tokens)[1].Line, 2u);
}

TEST(GircLexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(static_cast<bool>(lex("func f() { @ }")));
  EXPECT_FALSE(static_cast<bool>(lex("12abz_")));
}

// --- Parser -----------------------------------------------------------

TEST(GircParserTest, ModuleStructure) {
  Expected<Module> M = parse(R"(
    var g;
    array data[16];
    func helper(a, b) { return a + b; }
    func main() { return 0; }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << M.error().message();
  ASSERT_EQ(M->Globals.size(), 2u);
  EXPECT_FALSE(M->Globals[0].IsArray);
  EXPECT_TRUE(M->Globals[1].IsArray);
  EXPECT_EQ(M->Globals[1].ArraySize, 16u);
  ASSERT_EQ(M->Funcs.size(), 2u);
  EXPECT_EQ(M->Funcs[0].Params,
            (std::vector<std::string>{"a", "b"}));
}

TEST(GircParserTest, SyntaxErrorsNameLines) {
  Expected<Module> M = parse("func main() {\n  return 1 +;\n}\n");
  ASSERT_FALSE(static_cast<bool>(M));
  EXPECT_NE(M.error().message().find("line 2"), std::string::npos);
}

TEST(GircParserTest, RejectsTopLevelStatements) {
  EXPECT_FALSE(static_cast<bool>(parse("x = 1;")));
}

// --- Sema diagnostics ----------------------------------------------------

TEST(GircSemaTest, Diagnostics) {
  EXPECT_NE(compileError("func main() { return x; }").find("undeclared"),
            std::string::npos);
  EXPECT_NE(compileError("func main() { var a; var a; }")
                .find("duplicate local"),
            std::string::npos);
  EXPECT_NE(compileError("func f(a) { return a; } "
                         "func main() { return f(1, 2); }")
                .find("expects 1"),
            std::string::npos);
  EXPECT_NE(compileError("var g; func main() { return g[0]; }")
                .find("not an array"),
            std::string::npos);
  EXPECT_NE(compileError("func f() { return 0; } "
                         "func main() { f = 3; return 0; }")
                .find("cannot assign to function"),
            std::string::npos);
  EXPECT_NE(compileError("func main() { break; }").find("outside"),
            std::string::npos);
  EXPECT_NE(compileError("func f() { return 0; }").find("main"),
            std::string::npos);
  EXPECT_NE(compileError("func print(x) { return x; } "
                         "func main() { return 0; }")
                .find("builtin"),
            std::string::npos);
  EXPECT_NE(compileError("func f(a, b, c, d, e) { return 0; } "
                         "func main() { return 0; }")
                .find("parameters"),
            std::string::npos);
  EXPECT_NE(compileError("func main() { var main; return 0; }")
                .find("shadows"),
            std::string::npos);
}

// --- End-to-end execution --------------------------------------------------

TEST(GircRunTest, ArithmeticAndPrecedence) {
  vm::RunResult R = runMinc(R"(
    func main() {
      print(2 + 3 * 4);          // 14
      print((2 + 3) * 4);        // 20
      print(10 - 2 - 3);         // 5 (left assoc)
      print(7 / 2);              // 3
      print(7 % 3);              // 1
      print(1 << 5);             // 32
      print(256 >> 4);           // 16
      print(6 & 3);              // 2
      print(6 | 1);              // 7
      print(6 ^ 3);              // 5
      print(-5);                 // -5
      print(!0);                 // 1
      print(!7);                 // 0
      return 0;
    }
  )");
  EXPECT_EQ(R.Reason, vm::ExitReason::Exited);
  EXPECT_EQ(R.Output, "14\n20\n5\n3\n1\n32\n16\n2\n7\n5\n-5\n1\n0\n");
}

TEST(GircRunTest, Comparisons) {
  vm::RunResult R = runMinc(R"(
    func main() {
      print(3 < 5);  print(5 < 3);   // 1 0
      print(3 <= 3); print(4 <= 3);  // 1 0
      print(5 > 3);  print(3 > 5);   // 1 0
      print(3 >= 3); print(2 >= 3);  // 1 0
      print(4 == 4); print(4 == 5);  // 1 0
      print(4 != 5); print(4 != 4);  // 1 0
      print(-1 < 1);                 // signed compare: 1
      return 0;
    }
  )");
  EXPECT_EQ(R.Output, "1\n0\n1\n0\n1\n0\n1\n0\n1\n0\n1\n0\n1\n");
}

TEST(GircRunTest, ShortCircuitSkipsSideEffects) {
  vm::RunResult R = runMinc(R"(
    func noisy() { print(999); return 1; }
    func main() {
      print(0 && noisy());  // 0, noisy not called
      print(1 || noisy());  // 1, noisy not called
      print(1 && noisy());  // calls noisy: prints 999 then 1
      return 0;
    }
  )");
  EXPECT_EQ(R.Output, "0\n1\n999\n1\n");
}

TEST(GircRunTest, ControlFlow) {
  vm::RunResult R = runMinc(R"(
    func main() {
      var i = 0;
      var sum = 0;
      while (i < 10) {
        i = i + 1;
        if (i == 3) { continue; }
        if (i == 8) { break; }
        sum = sum + i;
      }
      print(sum);   // 1+2+4+5+6+7 = 25
      if (sum > 20) { print(1); } else { print(2); }
      return 0;
    }
  )");
  EXPECT_EQ(R.Output, "25\n1\n");
}

TEST(GircRunTest, RecursionFibonacci) {
  vm::RunResult R = runMinc(R"(
    func fib(n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    func main() {
      print(fib(10));
      return fib(7);
    }
  )");
  EXPECT_EQ(R.Output, "55\n");
  EXPECT_EQ(R.ExitCode, 13);
  EXPECT_GT(R.Cti.Returns, 100u); // Recursion produces real returns.
}

TEST(GircRunTest, GlobalsAndArrays) {
  vm::RunResult R = runMinc(R"(
    var count;
    array squares[10];
    func fill() {
      var i = 0;
      while (i < 10) {
        squares[i] = i * i;
        count = count + 1;
        i = i + 1;
      }
      return 0;
    }
    func main() {
      fill();
      print(squares[7]);  // 49
      print(count);       // 10
      return 0;
    }
  )");
  EXPECT_EQ(R.Output, "49\n10\n");
}

TEST(GircRunTest, FunctionPointerDispatch) {
  vm::RunResult R = runMinc(R"(
    func double_it(x) { return x * 2; }
    func square_it(x) { return x * x; }
    array ops[2];
    func main() {
      ops[0] = double_it;
      ops[1] = square_it;
      var i = 0;
      var fp;
      while (i < 6) {
        fp = ops[i % 2];
        print(fp(i + 1));   // indirect call through a variable
        i = i + 1;
      }
      return 0;
    }
  )");
  EXPECT_EQ(R.Output, "2\n4\n6\n16\n10\n36\n");
  EXPECT_EQ(R.Cti.IndirectCalls, 6u); // The jalr sites are real.
}

TEST(GircRunTest, BuiltinsPutcAndChecksum) {
  vm::RunResult R = runMinc(R"(
    func main() {
      putc(72); putc(105);   // "Hi"
      checksum(42);
      checksum(43);
      return 0;
    }
  )");
  EXPECT_EQ(R.Output, "Hi");
  vm::RunResult R2 = runMinc(
      "func main() { putc(72); putc(105); checksum(42); checksum(44); "
      "return 0; }");
  EXPECT_NE(R.Checksum, R2.Checksum);
}

TEST(GircRunTest, SieveOfEratosthenes) {
  vm::RunResult R = runMinc(R"(
    array sieve[100];
    func main() {
      var i = 2;
      while (i < 100) { sieve[i] = 1; i = i + 1; }
      i = 2;
      while (i * i < 100) {
        if (sieve[i]) {
          var j = i * i;
          while (j < 100) { sieve[j] = 0; j = j + i; }
        }
        i = i + 1;
      }
      var count = 0;
      i = 2;
      while (i < 100) { count = count + sieve[i]; i = i + 1; }
      print(count);   // 25 primes below 100
      return 0;
    }
  )");
  EXPECT_EQ(R.Output, "25\n");
}

TEST(GircRunTest, DeepExpressionsBalanceTheStack) {
  vm::RunResult R = runMinc(R"(
    func f(a, b, c, d) { return a + b * c - d; }
    func main() {
      print(f(1 + 2, 3 * 4, f(1, 2, 3, 4), 5) + f(6, 7, 8, 9) * 2);
      return 0;
    }
  )");
  // f(3,12,f(1,2,3,4)=3,5) = 3+36-5 = 34; f(6,7,8,9) = 6+56-9 = 53.
  EXPECT_EQ(R.Output, "140\n");
}

TEST(GircRunTest, SwitchDenseLowersToJumpTable) {
  vm::RunResult R = runMinc(R"(
    func classify(x) {
      switch (x) {
        case 0: return 100;
        case 1: return 101;
        case 2:
        case 3: return 123;    // fall-through shares a body
        case 5: return 105;
        default: return 99;
      }
    }
    func main() {
      var i = 0;
      while (i < 8) { print(classify(i)); i = i + 1; }
      return 0;
    }
  )");
  EXPECT_EQ(R.Output, "100\n101\n123\n123\n99\n105\n99\n99\n");
  // Dense range [0..5] lowers to a jump table: real indirect jumps.
  EXPECT_GT(R.Cti.IndirectJumps, 0u);
}

TEST(GircRunTest, SwitchSparseLowersToCompareChain) {
  vm::RunResult R = runMinc(R"(
    func f(x) {
      switch (x) {
        case 10: return 1;
        case 10000: return 2;
        case -10000: return 3;
        default: return 0;
      }
    }
    func main() {
      print(f(10)); print(f(10000)); print(f(-10000)); print(f(7));
      return 0;
    }
  )");
  EXPECT_EQ(R.Output, "1\n2\n3\n0\n");
  // Sparse values: no jump table, hence no indirect jumps.
  EXPECT_EQ(R.Cti.IndirectJumps, 0u);
}

TEST(GircRunTest, SwitchFallThroughAndBreak) {
  vm::RunResult R = runMinc(R"(
    func main() {
      var x = 1;
      switch (x) {
        case 0: print(0);
        case 1: print(1);      // entry point: falls through to case 2
        case 2: print(2); break;
        case 3: print(3);
      }
      switch (9) { case 1: print(111); default: print(42); }
      return 0;
    }
  )");
  EXPECT_EQ(R.Output, "1\n2\n42\n");
}

TEST(GircRunTest, SwitchWithoutDefaultSkips) {
  vm::RunResult R = runMinc(R"(
    func main() {
      switch (7) { case 1: print(1); case 2: print(2); }
      print(77);
      return 0;
    }
  )");
  EXPECT_EQ(R.Output, "77\n");
}

TEST(GircSemaTest, SwitchDiagnostics) {
  EXPECT_NE(compileError("func main() { switch (1) { case 1: case 1: } "
                         "return 0; }")
                .find("duplicate case"),
            std::string::npos);
  EXPECT_NE(compileError("func main() { switch (1) { default: default: } "
                         "return 0; }")
                .find("default"),
            std::string::npos);
  EXPECT_NE(compileError("func main() { switch (1) { } return 0; }")
                .find("no cases"),
            std::string::npos);
}

// --- Compiled code under the SDT --------------------------------------------

TEST(GircSdtTest, CompiledProgramsAreTransparent) {
  const char *Source = R"(
    func work(x) { return x * 3 + 1; }
    func twice(x) { return x * 2; }
    array tab[2];
    func main() {
      tab[0] = work;
      tab[1] = twice;
      var i = 0;
      var acc = 0;
      var fp;
      while (i < 200) {
        fp = tab[i & 1];
        acc = acc + fp(i);
        i = i + 1;
      }
      checksum(acc);
      print(acc);
      return 0;
    }
  )";
  Expected<isa::Program> P = compile(Source);
  ASSERT_TRUE(static_cast<bool>(P));
  auto VM = vm::GuestVM::create(*P, vm::ExecOptions());
  ASSERT_TRUE(static_cast<bool>(VM));
  vm::RunResult Native = (*VM)->run();
  ASSERT_EQ(Native.Reason, vm::ExitReason::Exited);

  for (core::ReturnStrategy Ret :
       {core::ReturnStrategy::AsIndirect, core::ReturnStrategy::FastReturn,
        core::ReturnStrategy::ShadowStack}) {
    core::SdtOptions Opts;
    Opts.Returns = Ret;
    Opts.EnableTraces = Ret == core::ReturnStrategy::FastReturn;
    Opts.TraceHotThreshold = 10;
    auto Engine = core::SdtEngine::create(*P, Opts, vm::ExecOptions());
    ASSERT_TRUE(static_cast<bool>(Engine));
    vm::RunResult Translated = (*Engine)->run();
    EXPECT_EQ(Native.Output, Translated.Output);
    EXPECT_EQ(Native.Checksum, Translated.Checksum);
    EXPECT_EQ(Native.InstructionCount, Translated.InstructionCount);
  }
}

// --- Optimiser ------------------------------------------------------------

TEST(GircOptimizerTest, ConstantsFoldToSingleLi) {
  CompileOptions NoOpt;
  NoOpt.Optimize = false;
  Expected<std::string> Plain = compileToAssembly(
      "func main() { return (2 + 3 * 4) << 2 | 1; }", NoOpt);
  Expected<std::string> Opt = compileToAssembly(
      "func main() { return (2 + 3 * 4) << 2 | 1; }");
  ASSERT_TRUE(static_cast<bool>(Plain));
  ASSERT_TRUE(static_cast<bool>(Opt));
  EXPECT_LT(Opt->size(), Plain->size());
  EXPECT_NE(Opt->find("li v0, 57"), std::string::npos); // 14<<2|1.
  EXPECT_EQ(Opt->find("mul"), std::string::npos);
}

TEST(GircOptimizerTest, DeadBranchesEliminated) {
  Expected<std::string> Opt = compileToAssembly(R"(
    func main() {
      if (0) { print(111); }
      if (1) { print(1); } else { print(222); }
      while (0) { print(333); }
      return 0;
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Opt));
  EXPECT_EQ(Opt->find("111"), std::string::npos);
  EXPECT_EQ(Opt->find("222"), std::string::npos);
  EXPECT_EQ(Opt->find("333"), std::string::npos);
  // The live print(1) survives as the function's only syscall pair.
  EXPECT_NE(Opt->find("li v0, 1"), std::string::npos);
  EXPECT_NE(Opt->find("syscall"), std::string::npos);
}

TEST(GircOptimizerTest, SideEffectsNeverDropped) {
  // f() * 0 must still call f; 1 || f() must not (C semantics).
  vm::RunResult R = runMinc(R"(
    func f() { print(7); return 3; }
    func main() {
      var x = f() * 0;
      print(x);
      print(1 || f());
      print(0 && f());
      return 0;
    }
  )");
  EXPECT_EQ(R.Output, "7\n0\n1\n0\n");
}

TEST(GircOptimizerTest, SemanticsMatchUnoptimised) {
  const char *Source = R"(
    func collatz(n) {
      var steps = 0;
      while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps = steps + 1;
      }
      return steps;
    }
    func main() {
      var i = 1;
      while (i < 30 + 0 * 99) {
        checksum(collatz(i) * 1 + 0);
        i = i + 1;
      }
      return 0;
    }
  )";
  CompileOptions NoOpt;
  NoOpt.Optimize = false;
  Expected<isa::Program> P1 = compile(Source, NoOpt);
  Expected<isa::Program> P2 = compile(Source);
  ASSERT_TRUE(static_cast<bool>(P1));
  ASSERT_TRUE(static_cast<bool>(P2));
  auto V1 = vm::GuestVM::create(*P1, vm::ExecOptions());
  auto V2 = vm::GuestVM::create(*P2, vm::ExecOptions());
  vm::RunResult R1 = (*V1)->run();
  vm::RunResult R2 = (*V2)->run();
  EXPECT_EQ(R1.Checksum, R2.Checksum);
  EXPECT_EQ(R1.Reason, R2.Reason);
  // The optimised build does strictly less work.
  EXPECT_LT(R2.InstructionCount, R1.InstructionCount);
}

TEST(GircOptimizerTest, FoldingMatchesVmDivisionSemantics) {
  // Folded and unfolded division-by-zero must agree with the VM.
  vm::RunResult R = runMinc(R"(
    func main() {
      var z = 0;
      print(5 / 0);      // folded at compile time
      print(5 / z);      // computed at run time
      print(5 % 0);
      print(5 % z);
      return 0;
    }
  )");
  EXPECT_EQ(R.Output, "-1\n-1\n5\n5\n");
}

// --- Register allocation -------------------------------------------------

TEST(GircRegAllocTest, HotLocalsLiveInCalleeSavedRegisters) {
  Expected<std::string> Asm = compileToAssembly(R"(
    func main() {
      var i = 0;
      var sum = 0;
      while (i < 100) { sum = sum + i; i = i + 1; }
      print(sum);
      return 0;
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Asm));
  // The loop variables are promoted: s-registers appear and are saved.
  EXPECT_NE(Asm->find("move s0"), std::string::npos);
  EXPECT_NE(Asm->find("sw s0,"), std::string::npos);
  EXPECT_NE(Asm->find("lw s0,"), std::string::npos);
}

TEST(GircRegAllocTest, ReducesExecutedCycles) {
  // Register moves replace frame loads/stores 1:1, so the instruction
  // count barely changes — the win is cycles (no memory latency).
  const char *Source = R"(
    func work(n) {
      var acc = 0;
      var i = 0;
      while (i < n) { acc = acc + i * 3; i = i + 1; }
      return acc;
    }
    func main() {
      checksum(work(500));
      return 0;
    }
  )";
  CompileOptions NoRa;
  NoRa.RegisterAllocate = false;
  Expected<isa::Program> Slots = compile(Source, NoRa);
  Expected<isa::Program> Regs = compile(Source);
  ASSERT_TRUE(static_cast<bool>(Slots));
  ASSERT_TRUE(static_cast<bool>(Regs));

  auto cyclesOf = [](const isa::Program &P, uint64_t &Checksum) {
    arch::TimingModel Timing(arch::x86Model());
    vm::ExecOptions Exec;
    Exec.Timing = &Timing;
    auto VM = vm::GuestVM::create(P, Exec);
    vm::RunResult R = (*VM)->run();
    Checksum = R.Checksum;
    return Timing.totalCycles();
  };
  uint64_t Sum1, Sum2;
  uint64_t C1 = cyclesOf(*Slots, Sum1);
  uint64_t C2 = cyclesOf(*Regs, Sum2);
  EXPECT_EQ(Sum1, Sum2);
  EXPECT_LT(C2, C1);
}

TEST(GircRegAllocTest, CalleeSavedRegistersSurviveCalls) {
  // The caller keeps its loop state in s-registers across calls to a
  // callee that itself claims s-registers — the save/restore protocol
  // must preserve both.
  vm::RunResult R = runMinc(R"(
    func chew(n) {
      var a = n; var b = n * 2; var c = n * 3;
      var k = 0;
      while (k < 5) { a = a + b + c; k = k + 1; }
      return a;
    }
    func main() {
      var i = 0;
      var total = 0;
      while (i < 10) {
        total = total + chew(i);
        i = i + 1;
      }
      print(total);   // sum of i*31? chew(n)=n+5*(5n)=26n → 26*45=1170
      return 0;
    }
  )");
  EXPECT_EQ(R.Reason, vm::ExitReason::Exited);
  EXPECT_EQ(R.Output, "1170\n");
}

TEST(GircSdtTest, GeneratedAssemblyIsReadable) {
  Expected<std::string> Asm = compileToAssembly(
      "func main() { print(1); return 0; }");
  ASSERT_TRUE(static_cast<bool>(Asm));
  EXPECT_NE(Asm->find("fn_main:"), std::string::npos);
  EXPECT_NE(Asm->find("jal fn_main"), std::string::npos);
  EXPECT_NE(Asm->find(".entry main"), std::string::npos);
}
