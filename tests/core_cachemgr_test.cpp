//===- tests/core_cachemgr_test.cpp - Cache-management tests -----*- C++ -*-===//
//
// Part of StrataIB.
//
// The code-cache management subsystem: eviction policies and the
// CacheManager's progress guarantee (pure unit tests against
// FragmentView snapshots), the per-handler invalidation paths that keep
// IB state coherent across partial evictions, and an engine-level run
// that exercises the whole pipeline under real pressure.
//
//===----------------------------------------------------------------------===//

#include "cachemgr/CacheManager.h"
#include "cachemgr/CachePolicy.h"
#include "core/DispatcherHandler.h"
#include "core/IbtcHandler.h"
#include "core/InlineCacheHandler.h"
#include "core/ReturnCacheHandler.h"
#include "core/SdtEngine.h"
#include "core/SieveHandler.h"
#include "vm/GuestVM.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::cachemgr;
using namespace sdt::core;

// --- Policy selection --------------------------------------------------

TEST(CachePolicyTest, NamesRoundTripThroughParse) {
  for (CachePolicyKind Kind :
       {CachePolicyKind::FullFlush, CachePolicyKind::Fifo,
        CachePolicyKind::Generational}) {
    std::optional<CachePolicyKind> Parsed =
        parseCachePolicy(cachePolicyName(Kind));
    ASSERT_TRUE(Parsed.has_value()) << cachePolicyName(Kind);
    EXPECT_EQ(*Parsed, Kind);
  }
}

TEST(CachePolicyTest, ParseAcceptsAliases) {
  EXPECT_EQ(parseCachePolicy("flush"), CachePolicyKind::FullFlush);
  EXPECT_EQ(parseCachePolicy("fullflush"), CachePolicyKind::FullFlush);
  EXPECT_EQ(parseCachePolicy("gen"), CachePolicyKind::Generational);
  EXPECT_FALSE(parseCachePolicy("lru").has_value());
  EXPECT_FALSE(parseCachePolicy("").has_value());
}

// --- Policy planning ---------------------------------------------------

namespace {

/// Builds a FragmentView list from (bytes, execCount) pairs, indexed in
/// allocation order.
std::vector<FragmentView>
makeViews(std::initializer_list<std::pair<uint32_t, uint64_t>> Specs) {
  std::vector<FragmentView> Views;
  uint32_t Index = 0, Addr = 0x40000000;
  for (const auto &[Bytes, Execs] : Specs) {
    Views.push_back({Index++, Addr, Bytes, Execs});
    Addr += Bytes;
  }
  return Views;
}

constexpr uint32_t NoPin = UINT32_MAX;

} // namespace

TEST(CachePolicyTest, FullFlushAlwaysFlushes) {
  auto P = makeCachePolicy(CachePolicyKind::FullFlush, PolicyConfig());
  EvictionPlan Plan =
      P->plan(makeViews({{100, 5}, {100, 0}}), {4096, 200}, NoPin);
  EXPECT_TRUE(Plan.FullFlush);
}

TEST(CachePolicyTest, FifoEvictsOldestUntilTarget) {
  PolicyConfig Config;
  Config.EvictTargetPct = 50;
  auto P = makeCachePolicy(CachePolicyKind::Fifo, Config);
  // Capacity 100, used 100, target 50: evicting fragments 0 and 1
  // (30 bytes each) reaches 40 <= 50; fragment 2 survives.
  EvictionPlan Plan =
      P->plan(makeViews({{30, 9}, {30, 9}, {40, 0}}), {100, 100}, NoPin);
  EXPECT_FALSE(Plan.FullFlush);
  EXPECT_EQ(Plan.Victims, (std::vector<uint32_t>{0, 1}));
}

TEST(CachePolicyTest, FifoSkipsPinnedFragment) {
  PolicyConfig Config;
  Config.EvictTargetPct = 50;
  auto P = makeCachePolicy(CachePolicyKind::Fifo, Config);
  EvictionPlan Plan = P->plan(makeViews({{30, 9}, {30, 9}, {40, 0}}),
                              {100, 100}, /*Pinned=*/0);
  EXPECT_FALSE(Plan.FullFlush);
  EXPECT_EQ(Plan.Victims, (std::vector<uint32_t>{1, 2}));
}

TEST(CachePolicyTest, GenerationalEvictsColdGenerationOnly) {
  PolicyConfig Config;
  Config.GenPromoteExecs = 8;
  auto P = makeCachePolicy(CachePolicyKind::Generational, Config);
  // Exec counts {10, 2, 8, 0}: 10 and 8 are promoted (>= threshold),
  // the cold generation {1, 3} goes wholesale.
  EvictionPlan Plan = P->plan(
      makeViews({{10, 10}, {10, 2}, {10, 8}, {10, 0}}), {40, 40}, NoPin);
  EXPECT_FALSE(Plan.FullFlush);
  EXPECT_EQ(Plan.Victims, (std::vector<uint32_t>{1, 3}));
}

TEST(CachePolicyTest, GenerationalSkipsPinnedColdFragment) {
  PolicyConfig Config;
  Config.GenPromoteExecs = 8;
  auto P = makeCachePolicy(CachePolicyKind::Generational, Config);
  EvictionPlan Plan = P->plan(makeViews({{10, 0}, {10, 0}}), {20, 20},
                              /*Pinned=*/0);
  EXPECT_EQ(Plan.Victims, (std::vector<uint32_t>{1}));
}

// --- CacheManager escalation -------------------------------------------

TEST(CacheManagerTest, EscalatesEmptyVictimSetToFullFlush) {
  CacheManager M(CachePolicyKind::Generational);
  // Every fragment is hot: the policy has nothing to evict, so the
  // manager must fall back to a full flush rather than loop forever.
  EvictionPlan Plan =
      M.plan(makeViews({{10, 100}, {10, 100}}), {20, 20}, NoPin);
  EXPECT_TRUE(Plan.FullFlush);
}

TEST(CacheManagerTest, EscalatesInsufficientPlanToFullFlush) {
  PolicyConfig Config;
  Config.EvictTargetPct = 50;
  CacheManager M(CachePolicyKind::Fifo, Config);
  // The pinned fragment holds nearly everything; evicting the rest
  // still leaves usage at capacity, so the plan cannot make progress.
  EvictionPlan Plan = M.plan(makeViews({{100, 1}, {20, 1}}), {100, 120},
                             /*Pinned=*/0);
  EXPECT_TRUE(Plan.FullFlush);
}

TEST(CacheManagerTest, PassesViablePlanThrough) {
  PolicyConfig Config;
  Config.EvictTargetPct = 50;
  CacheManager M(CachePolicyKind::Fifo, Config);
  EvictionPlan Plan =
      M.plan(makeViews({{60, 1}, {40, 1}}), {100, 100}, NoPin);
  EXPECT_FALSE(Plan.FullFlush);
  EXPECT_EQ(Plan.Victims, (std::vector<uint32_t>{0}));
}

// --- Handler invalidation ----------------------------------------------

namespace {

struct InvalidationFixture : public ::testing::Test {
  FragmentCache Cache{1 << 20};
  SdtOptions Opts;

  uint32_t addSite(IBHandler &H, IBClass Class = IBClass::Jump) {
    uint32_t Id = NextSite++;
    H.emitSite(Id, Class, 0x1000 + Id * 4, Cache);
    return Id;
  }

  /// A finalized range covering exactly [Addr, Addr + 16).
  static EvictedRanges rangeAt(uint32_t Addr) {
    EvictedRanges R;
    R.add(Addr, Addr + 16);
    R.finalize();
    return R;
  }

  uint32_t NextSite = 0;
};

using DispatcherInvalidationTest = InvalidationFixture;
using IbtcInvalidationTest = InvalidationFixture;
using SieveInvalidationTest = InvalidationFixture;
using ReturnCacheInvalidationTest = InvalidationFixture;
using InlineCacheInvalidationTest = InvalidationFixture;

} // namespace

TEST_F(DispatcherInvalidationTest, NothingToInvalidate) {
  DispatcherHandler H;
  addSite(H);
  EXPECT_EQ(H.invalidateEvicted(rangeAt(0x40000100), Cache, nullptr), 0u);
}

TEST_F(IbtcInvalidationTest, ClearsOnlyEntriesInRange) {
  Opts.IbtcEntries = 64;
  IbtcHandler H(Opts);
  uint32_t S = addSite(H);
  // 0x2000 and 0x2044 hash to distinct sets under shift-mask.
  H.record(S, 0x2000, 0x40000100, nullptr);
  H.record(S, 0x2044, 0x40005000, nullptr);
  EXPECT_EQ(H.invalidateEvicted(rangeAt(0x40000100), Cache, nullptr), 1u);
  EXPECT_FALSE(H.lookup(S, 0x2000, nullptr).Hit); // Stale entry cleared.
  EXPECT_TRUE(H.lookup(S, 0x2044, nullptr).Hit);  // Survivor untouched.
}

TEST_F(IbtcInvalidationTest, PrivateTablesAllScanned) {
  Opts.IbtcShared = false;
  IbtcHandler H(Opts);
  uint32_t S1 = addSite(H), S2 = addSite(H);
  H.record(S1, 0x2000, 0x40000100, nullptr);
  H.record(S2, 0x2000, 0x40000100, nullptr);
  EXPECT_EQ(H.invalidateEvicted(rangeAt(0x40000100), Cache, nullptr), 2u);
  EXPECT_FALSE(H.lookup(S1, 0x2000, nullptr).Hit);
  EXPECT_FALSE(H.lookup(S2, 0x2000, nullptr).Hit);
}

TEST_F(SieveInvalidationTest, UnchainsStubsAndReturnsTheirBytes) {
  SieveHandler H(Opts);
  H.initialize(Cache);
  uint32_t S = addSite(H);
  H.record(S, 0x2000, 0x40000100, nullptr);
  H.record(S, 0x3000, 0x40005000, nullptr);
  uint32_t UsedBefore = Cache.usedBytes();
  ASSERT_EQ(H.stubCount(), 2u);

  EXPECT_EQ(H.invalidateEvicted(rangeAt(0x40000100), Cache, nullptr), 1u);
  EXPECT_EQ(H.stubCount(), 1u);
  EXPECT_FALSE(H.lookup(S, 0x2000, nullptr).Hit);
  EXPECT_TRUE(H.lookup(S, 0x3000, nullptr).Hit);
  // The dead stub's code bytes went back to the capacity budget.
  EXPECT_LT(Cache.usedBytes(), UsedBefore);
}

TEST_F(ReturnCacheInvalidationTest, ClearsStaleReturnEntries) {
  Opts.ReturnCacheEntries = 64;
  ReturnCacheHandler H(Opts);
  uint32_t S = addSite(H, IBClass::Return);
  // 0x2004 and 0x2044 land in distinct direct-mapped slots (1 and 17).
  H.record(S, 0x2004, 0x40000100, nullptr);
  H.record(S, 0x2044, 0x40005000, nullptr);
  EXPECT_EQ(H.invalidateEvicted(rangeAt(0x40000100), Cache, nullptr), 1u);
  EXPECT_FALSE(H.lookup(S, 0x2004, nullptr).Hit);
  EXPECT_TRUE(H.lookup(S, 0x2044, nullptr).Hit);
}

TEST_F(InlineCacheInvalidationTest, ClearsInlineSlotsAndBacking) {
  Opts.InlineCacheDepth = 1;
  InlineCacheHandler H(Opts, std::make_unique<IbtcHandler>(
                                 Opts, /*ChargeFlagSave=*/false));
  uint32_t S = addSite(H);
  H.record(S, 0x2000, 0x40000100, nullptr); // Fills the inline slot.
  H.lookup(S, 0x3000, nullptr);
  H.record(S, 0x3000, 0x40000108, nullptr); // Overflows to the IBTC.
  ASSERT_TRUE(H.lookup(S, 0x2000, nullptr).Hit);
  ASSERT_TRUE(H.lookup(S, 0x3000, nullptr).Hit);

  // One range covering both targets: the inline slot and the backing
  // IBTC entry must both go.
  EXPECT_EQ(H.invalidateEvicted(rangeAt(0x40000100), Cache, nullptr), 2u);
  EXPECT_FALSE(H.lookup(S, 0x2000, nullptr).Hit);
  EXPECT_FALSE(H.lookup(S, 0x3000, nullptr).Hit);
}

// --- Engine integration ------------------------------------------------

// A tiny bounded cache under each partial-eviction policy: the engine
// must actually evict (not just flush) and stay transparent. The
// programs are the big-program generator shape — the small ones never
// outgrow the 4096-byte floor the fragment cache enforces.
TEST(CacheManagerEngineTest, PartialEvictionsHappenAndStayTransparent) {
  workloads::RandomProgramOptions RpOpts;
  RpOpts.NumFunctions = 10;
  RpOpts.ItemsPerFunction = 10;
  RpOpts.MainIterations = 5;
  for (CachePolicyKind Policy :
       {CachePolicyKind::Fifo, CachePolicyKind::Generational}) {
    uint64_t TotalEvictions = 0;
    for (uint64_t Seed = 101; Seed <= 103; ++Seed) {
      Expected<isa::Program> Program =
          workloads::generateRandomProgram(Seed, RpOpts);
      ASSERT_TRUE(static_cast<bool>(Program));

      vm::ExecOptions Exec;
      Exec.MaxInstructions = 20000000;
      auto VM = vm::GuestVM::create(*Program, Exec);
      ASSERT_TRUE(static_cast<bool>(VM));
      vm::RunResult Native = (*VM)->run();
      ASSERT_TRUE(Native.finishedNormally()) << Native.FaultMessage;

      SdtOptions Opts;
      Opts.CachePolicy = Policy;
      Opts.FragmentCacheBytes = 4096;
      Opts.MaxFragmentInstrs = 6;
      Opts.CacheGenPromoteExecs = 4;
      auto Engine = SdtEngine::create(*Program, Opts, Exec);
      ASSERT_TRUE(static_cast<bool>(Engine));
      vm::RunResult Translated = (*Engine)->run();

      EXPECT_EQ(Native.Checksum, Translated.Checksum)
          << cachePolicyName(Policy) << " seed " << Seed;
      EXPECT_EQ(Native.Output, Translated.Output);
      EXPECT_EQ(Native.InstructionCount, Translated.InstructionCount);
      TotalEvictions += (*Engine)->stats().PartialEvictions;
    }
    // At least one seed must have hit real partial-eviction pressure,
    // or this test exercises nothing.
    EXPECT_GT(TotalEvictions, 0u) << cachePolicyName(Policy);
  }
}
