//===- tests/bench_parallel_test.cpp - Parallel engine tests -----*- C++ -*-===//
//
// Part of StrataIB.
//
// The contract the parallel experiment engine must keep: running a sweep
// across N workers produces bit-identical simulated cycle counts to the
// serial run. Worker count is an execution detail; the simulation is
// deterministic per cell.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

using namespace sdt;
using namespace sdt::bench;

namespace {

/// Scoped environment-variable override (restored on destruction).
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    if (const char *Old = std::getenv(Name))
      Saved = Old;
    ::setenv(Name, Value, 1);
  }
  ~ScopedEnv() {
    if (Saved)
      ::setenv(Name, Saved->c_str(), 1);
    else
      ::unsetenv(Name);
  }

private:
  const char *Name;
  std::optional<std::string> Saved;
};

/// Scoped STRATAIB_JOBS override.
class JobsEnv : public ScopedEnv {
public:
  explicit JobsEnv(const char *Value) : ScopedEnv("STRATAIB_JOBS", Value) {}
};

struct CellSnapshot {
  uint64_t NativeCycles;
  uint64_t SdtCycles;
  std::array<uint64_t, size_t(arch::CycleCategory::NumCategories)> ByCategory;
  uint64_t MainLookups;
  uint64_t MainHits;
  uint64_t IbLookups;
  uint64_t IbMispredicts;
  uint64_t Instructions;
  bool Transparent;
};

/// Runs the reference sweep (2 workloads x 3 configs, one of them under
/// the tagged path-history iBTB) under the given worker count and
/// snapshots every cell.
std::vector<CellSnapshot> runSweep(const char *Jobs) {
  JobsEnv Env(Jobs);
  BenchContext Ctx(/*Scale=*/4);
  arch::MachineModel Model = arch::x86Model();
  // One predictor-enabled cell: the iBTB's path history and LRU clocks
  // are per-TimingModel state, so its cycles must stay bit-identical
  // across worker counts like everything else.
  arch::PredictorConfig Ibtb = Model.Predictor;
  Ibtb.Kind = arch::PredictorKind::TaggedIbtb;
  arch::MachineModel IbtbModel = arch::withPredictor(Model, Ibtb);

  core::SdtOptions Dispatcher;
  Dispatcher.Mechanism = core::IBMechanism::Dispatcher;
  core::SdtOptions Ibtc;
  Ibtc.Mechanism = core::IBMechanism::Ibtc;
  Ibtc.IbtcShared = true;
  Ibtc.IbtcEntries = 512;

  ParallelRunner Runner(Ctx, "bench_parallel_test");
  std::vector<size_t> Ids;
  for (const std::string &W : {std::string("gcc"), std::string("perlbmk")}) {
    for (const core::SdtOptions &Opts : {Dispatcher, Ibtc})
      Ids.push_back(Runner.enqueue(W, Model, Opts));
    Ids.push_back(Runner.enqueue(W, IbtbModel, Ibtc));
  }
  Runner.runAll();

  std::vector<CellSnapshot> Out;
  for (size_t Id : Ids) {
    const Measurement &M = Runner.result(Id);
    CellSnapshot S;
    S.NativeCycles = M.NativeCycles;
    S.SdtCycles = M.SdtCycles;
    S.ByCategory = M.SdtByCategory;
    S.MainLookups = M.MainLookups;
    S.MainHits = M.MainHits;
    S.IbLookups = M.SdtIndirectLookups + M.SdtReturnLookups;
    S.IbMispredicts = M.SdtIndirectMispredicts + M.SdtReturnMispredicts;
    S.Instructions = M.Instructions;
    S.Transparent = M.Transparent;
    Out.push_back(S);
  }
  return Out;
}

} // namespace

TEST(BenchParallelTest, JobsFromEnvParsesOverride) {
  JobsEnv Env("3");
  EXPECT_EQ(ParallelRunner::jobsFromEnv(), 3u);
}

// Garbage in a STRATAIB_* numeric knob is a hard configuration error
// (exit 2 with a diagnostic), not something to silently fall back from:
// a typo'd STRATAIB_JOBS=1O must not quietly run a different experiment.
TEST(BenchParallelTest, JobsFromEnvRejectsGarbage) {
  JobsEnv Env("not-a-number");
  EXPECT_EXIT(ParallelRunner::jobsFromEnv(), ::testing::ExitedWithCode(2),
              "invalid STRATAIB_JOBS");
}

TEST(BenchParallelTest, JobsFromEnvRejectsOutOfRange) {
  JobsEnv Env("-3");
  EXPECT_EXIT(ParallelRunner::jobsFromEnv(), ::testing::ExitedWithCode(2),
              "invalid STRATAIB_JOBS");
}

TEST(BenchParallelTest, JobsFromEnvEmptyMeansDefault) {
  JobsEnv Env("");
  EXPECT_GE(ParallelRunner::jobsFromEnv(), 1u);
}

// The predictor knobs follow the same strict-parse contract as the
// cache knobs: unknown names and malformed geometry are configuration
// errors (exit 2), never silent fallbacks.
TEST(BenchParallelTest, PredictorEnvRejectsUnknownKind) {
  ScopedEnv Env("STRATAIB_PREDICTOR", "oracle");
  EXPECT_EXIT(withPredictorEnvOverrides(arch::x86Model()),
              ::testing::ExitedWithCode(2), "unknown STRATAIB_PREDICTOR");
}

TEST(BenchParallelTest, PredictorEnvRejectsNonPowerOfTwoEntries) {
  ScopedEnv Env("STRATAIB_BTB_ENTRIES", "100");
  EXPECT_EXIT(withPredictorEnvOverrides(arch::x86Model()),
              ::testing::ExitedWithCode(2), "not a power of two");
}

TEST(BenchParallelTest, PredictorEnvRejectsGarbageEntries) {
  ScopedEnv Env("STRATAIB_BTB_ENTRIES", "fast");
  EXPECT_EXIT(withPredictorEnvOverrides(arch::x86Model()),
              ::testing::ExitedWithCode(2), "invalid STRATAIB_BTB_ENTRIES");
}

TEST(BenchParallelTest, PredictorEnvOverridesRenameModel) {
  ScopedEnv Kind("STRATAIB_PREDICTOR", "ibtb");
  ScopedEnv Entries("STRATAIB_BTB_ENTRIES", "256");
  arch::MachineModel M = withPredictorEnvOverrides(arch::x86Model());
  EXPECT_EQ(M.Predictor.Kind, arch::PredictorKind::TaggedIbtb);
  EXPECT_EQ(M.Predictor.BtbEntries, 256u);
  // The rename keeps memoised native baselines from colliding.
  EXPECT_EQ(M.Name, "x86/ibtb:256x4h8");
}

TEST(BenchParallelTest, PredictorEnvUnsetLeavesModelAlone) {
  arch::MachineModel M = withPredictorEnvOverrides(arch::x86Model());
  EXPECT_EQ(M.Name, "x86");
  EXPECT_EQ(M.Predictor.Kind, arch::PredictorKind::Btb);
}

TEST(BenchParallelTest, ParallelSweepMatchesSerialBitIdentically) {
  std::vector<CellSnapshot> Serial = runSweep("1");
  std::vector<CellSnapshot> Parallel = runSweep("4");
  ASSERT_EQ(Serial.size(), Parallel.size());
  for (size_t I = 0; I != Serial.size(); ++I) {
    SCOPED_TRACE("cell " + std::to_string(I));
    EXPECT_EQ(Serial[I].NativeCycles, Parallel[I].NativeCycles);
    EXPECT_EQ(Serial[I].SdtCycles, Parallel[I].SdtCycles);
    EXPECT_EQ(Serial[I].ByCategory, Parallel[I].ByCategory);
    EXPECT_EQ(Serial[I].MainLookups, Parallel[I].MainLookups);
    EXPECT_EQ(Serial[I].MainHits, Parallel[I].MainHits);
    EXPECT_EQ(Serial[I].IbLookups, Parallel[I].IbLookups);
    EXPECT_EQ(Serial[I].IbMispredicts, Parallel[I].IbMispredicts);
    EXPECT_EQ(Serial[I].Instructions, Parallel[I].Instructions);
    EXPECT_TRUE(Serial[I].Transparent);
    EXPECT_TRUE(Parallel[I].Transparent);
  }
}

// The TraceSink guard must not perturb simulated cycles (events are
// timestamped through a read-only clock callback) nor race across workers
// (each cell owns its sink). Running serial-untraced, serial-traced, and
// 4-worker-traced sweeps must all agree bit-for-bit; under
// -DSTRATAIB_TSAN=ON this test also puts the per-cell sink wiring under
// the race detector.
TEST(BenchParallelTest, ParallelSweepUnperturbedByTracing) {
  std::vector<CellSnapshot> Untraced = runSweep("1");

  std::string Prefix = ::testing::TempDir() + "strataib_trace_test";
  ScopedEnv Trace("STRATAIB_TRACE", Prefix.c_str());
  ScopedEnv Capacity("STRATAIB_TRACE_EVENTS", "1024");
  std::vector<CellSnapshot> TracedSerial = runSweep("1");
  std::vector<CellSnapshot> TracedParallel = runSweep("4");

  ASSERT_EQ(Untraced.size(), TracedSerial.size());
  ASSERT_EQ(Untraced.size(), TracedParallel.size());
  for (size_t I = 0; I != Untraced.size(); ++I) {
    SCOPED_TRACE("cell " + std::to_string(I));
    EXPECT_EQ(Untraced[I].SdtCycles, TracedSerial[I].SdtCycles);
    EXPECT_EQ(Untraced[I].SdtCycles, TracedParallel[I].SdtCycles);
    EXPECT_EQ(Untraced[I].ByCategory, TracedSerial[I].ByCategory);
    EXPECT_EQ(Untraced[I].ByCategory, TracedParallel[I].ByCategory);
    EXPECT_EQ(Untraced[I].MainLookups, TracedParallel[I].MainLookups);
    EXPECT_EQ(Untraced[I].MainHits, TracedParallel[I].MainHits);
    EXPECT_TRUE(TracedParallel[I].Transparent);
  }

  // The traced sweeps actually wrote trace files for their cells.
  core::SdtOptions Dispatcher;
  Dispatcher.Mechanism = core::IBMechanism::Dispatcher;
  std::string Base =
      traceFileBase(Prefix, "gcc", arch::x86Model().Name, Dispatcher);
  std::FILE *F = std::fopen((Base + ".jsonl").c_str(), "r");
  ASSERT_NE(F, nullptr) << Base + ".jsonl";
  std::fclose(F);
}

TEST(BenchParallelTest, NativeCellsRunInParallel) {
  JobsEnv Env("4");
  BenchContext Ctx(/*Scale=*/4);
  ParallelRunner Runner(Ctx, "bench_parallel_test_native");
  size_t A = Runner.enqueueNative("gzip");
  size_t B = Runner.enqueueNative("mcf");
  Runner.runAll();
  EXPECT_GT(Runner.nativeResult(A).InstructionCount, 0u);
  EXPECT_GT(Runner.nativeResult(B).InstructionCount, 0u);
}

TEST(BenchParallelTest, SummaryJsonWrittenWhenRequested) {
  JobsEnv Env("2");
  std::string Path = ::testing::TempDir() + "strataib_summary_test.json";
  ::setenv("STRATAIB_SUMMARY", Path.c_str(), 1);
  {
    BenchContext Ctx(/*Scale=*/4);
    arch::MachineModel Model = arch::x86Model();
    core::SdtOptions Opts;
    Opts.Mechanism = core::IBMechanism::Ibtc;
    ParallelRunner Runner(Ctx, "bench_parallel_test_summary");
    Runner.enqueue("gzip", Model, Opts);
    Runner.runAll();
  }
  ::unsetenv("STRATAIB_SUMMARY");
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  std::string Doc;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Doc.append(Buf, N);
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_EQ(Doc.front(), '{');
  EXPECT_NE(Doc.find("\"experiment\": \"bench_parallel_test_summary\""),
            std::string::npos);
  EXPECT_NE(Doc.find("\"sdt_cycles\""), std::string::npos);
  EXPECT_NE(Doc.find("\"cycles_by_category\""), std::string::npos);
}
