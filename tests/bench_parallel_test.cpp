//===- tests/bench_parallel_test.cpp - Parallel engine tests -----*- C++ -*-===//
//
// Part of StrataIB.
//
// The contract the parallel experiment engine must keep: running a sweep
// across N workers produces bit-identical simulated cycle counts to the
// serial run. Worker count is an execution detail; the simulation is
// deterministic per cell.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

using namespace sdt;
using namespace sdt::bench;

namespace {

/// Scoped STRATAIB_JOBS override (restored on destruction).
class JobsEnv {
public:
  explicit JobsEnv(const char *Value) {
    if (const char *Old = std::getenv("STRATAIB_JOBS"))
      Saved = Old;
    ::setenv("STRATAIB_JOBS", Value, 1);
  }
  ~JobsEnv() {
    if (Saved)
      ::setenv("STRATAIB_JOBS", Saved->c_str(), 1);
    else
      ::unsetenv("STRATAIB_JOBS");
  }

private:
  std::optional<std::string> Saved;
};

struct CellSnapshot {
  uint64_t NativeCycles;
  uint64_t SdtCycles;
  std::array<uint64_t, size_t(arch::CycleCategory::NumCategories)> ByCategory;
  uint64_t MainLookups;
  uint64_t MainHits;
  uint64_t Instructions;
  bool Transparent;
};

/// Runs the reference sweep (2 workloads x 2 configs) under the given
/// worker count and snapshots every cell.
std::vector<CellSnapshot> runSweep(const char *Jobs) {
  JobsEnv Env(Jobs);
  BenchContext Ctx(/*Scale=*/4);
  arch::MachineModel Model = arch::x86Model();

  core::SdtOptions Dispatcher;
  Dispatcher.Mechanism = core::IBMechanism::Dispatcher;
  core::SdtOptions Ibtc;
  Ibtc.Mechanism = core::IBMechanism::Ibtc;
  Ibtc.IbtcShared = true;
  Ibtc.IbtcEntries = 512;

  ParallelRunner Runner(Ctx, "bench_parallel_test");
  std::vector<size_t> Ids;
  for (const std::string &W : {std::string("gcc"), std::string("perlbmk")})
    for (const core::SdtOptions &Opts : {Dispatcher, Ibtc})
      Ids.push_back(Runner.enqueue(W, Model, Opts));
  Runner.runAll();

  std::vector<CellSnapshot> Out;
  for (size_t Id : Ids) {
    const Measurement &M = Runner.result(Id);
    CellSnapshot S;
    S.NativeCycles = M.NativeCycles;
    S.SdtCycles = M.SdtCycles;
    S.ByCategory = M.SdtByCategory;
    S.MainLookups = M.MainLookups;
    S.MainHits = M.MainHits;
    S.Instructions = M.Instructions;
    S.Transparent = M.Transparent;
    Out.push_back(S);
  }
  return Out;
}

} // namespace

TEST(BenchParallelTest, JobsFromEnvParsesOverride) {
  JobsEnv Env("3");
  EXPECT_EQ(ParallelRunner::jobsFromEnv(), 3u);
}

TEST(BenchParallelTest, JobsFromEnvIgnoresGarbage) {
  JobsEnv Env("not-a-number");
  EXPECT_GE(ParallelRunner::jobsFromEnv(), 1u);
}

TEST(BenchParallelTest, ParallelSweepMatchesSerialBitIdentically) {
  std::vector<CellSnapshot> Serial = runSweep("1");
  std::vector<CellSnapshot> Parallel = runSweep("4");
  ASSERT_EQ(Serial.size(), Parallel.size());
  for (size_t I = 0; I != Serial.size(); ++I) {
    SCOPED_TRACE("cell " + std::to_string(I));
    EXPECT_EQ(Serial[I].NativeCycles, Parallel[I].NativeCycles);
    EXPECT_EQ(Serial[I].SdtCycles, Parallel[I].SdtCycles);
    EXPECT_EQ(Serial[I].ByCategory, Parallel[I].ByCategory);
    EXPECT_EQ(Serial[I].MainLookups, Parallel[I].MainLookups);
    EXPECT_EQ(Serial[I].MainHits, Parallel[I].MainHits);
    EXPECT_EQ(Serial[I].Instructions, Parallel[I].Instructions);
    EXPECT_TRUE(Serial[I].Transparent);
    EXPECT_TRUE(Parallel[I].Transparent);
  }
}

TEST(BenchParallelTest, NativeCellsRunInParallel) {
  JobsEnv Env("4");
  BenchContext Ctx(/*Scale=*/4);
  ParallelRunner Runner(Ctx, "bench_parallel_test_native");
  size_t A = Runner.enqueueNative("gzip");
  size_t B = Runner.enqueueNative("mcf");
  Runner.runAll();
  EXPECT_GT(Runner.nativeResult(A).InstructionCount, 0u);
  EXPECT_GT(Runner.nativeResult(B).InstructionCount, 0u);
}

TEST(BenchParallelTest, SummaryJsonWrittenWhenRequested) {
  JobsEnv Env("2");
  std::string Path = ::testing::TempDir() + "strataib_summary_test.json";
  ::setenv("STRATAIB_SUMMARY", Path.c_str(), 1);
  {
    BenchContext Ctx(/*Scale=*/4);
    arch::MachineModel Model = arch::x86Model();
    core::SdtOptions Opts;
    Opts.Mechanism = core::IBMechanism::Ibtc;
    ParallelRunner Runner(Ctx, "bench_parallel_test_summary");
    Runner.enqueue("gzip", Model, Opts);
    Runner.runAll();
  }
  ::unsetenv("STRATAIB_SUMMARY");
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  std::string Doc;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Doc.append(Buf, N);
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_EQ(Doc.front(), '{');
  EXPECT_NE(Doc.find("\"experiment\": \"bench_parallel_test_summary\""),
            std::string::npos);
  EXPECT_NE(Doc.find("\"sdt_cycles\""), std::string::npos);
  EXPECT_NE(Doc.find("\"cycles_by_category\""), std::string::npos);
}
