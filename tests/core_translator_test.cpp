//===- tests/core_translator_test.cpp - Translator structure -----*- C++ -*-===//
//
// Part of StrataIB.
//
// White-box tests of fragment and trace formation: the exact host-op
// sequences the translator emits for each guest CTI kind.
//
//===----------------------------------------------------------------------===//

#include "assembler/Assembler.h"
#include "core/DispatcherHandler.h"
#include "core/Translator.h"
#include "vm/GuestMemory.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::core;
using namespace sdt::isa;

namespace {

/// Assembles \p Src, loads it, and exposes a ready Translator.
struct TranslatorFixture : public ::testing::Test {
  void build(const char *Src, SdtOptions TheOpts = {}) {
    Expected<Program> P = assembler::assemble(Src);
    ASSERT_TRUE(static_cast<bool>(P)) << P.error().message();
    Prog = std::make_unique<Program>(std::move(*P));
    Memory = std::make_unique<vm::GuestMemory>();
    ASSERT_TRUE(Memory->loadProgram(*Prog));
    Decoder = std::make_unique<vm::DecodeCache>(
        *Memory, Prog->loadAddress(),
        static_cast<uint32_t>(Prog->image().size()) & ~3u);
    Opts = TheOpts;
    Cache = std::make_unique<FragmentCache>(Opts.FragmentCacheBytes);
    Handler = std::make_unique<DispatcherHandler>();
    Xlate = std::make_unique<Translator>(*Decoder, *Cache, Opts);
    Xlate->setHandlers(Handler.get(), Handler.get());
  }

  const Fragment &translateAt(uint32_t Pc) {
    Expected<HostLoc> Loc = Xlate->translate(Pc, nullptr, Stats);
    EXPECT_TRUE(static_cast<bool>(Loc))
        << (Loc ? "" : Loc.error().message());
    return Cache->fragment(Loc->Frag);
  }

  std::unique_ptr<Program> Prog;
  std::unique_ptr<vm::GuestMemory> Memory;
  std::unique_ptr<vm::DecodeCache> Decoder;
  std::unique_ptr<FragmentCache> Cache;
  std::unique_ptr<DispatcherHandler> Handler;
  std::unique_ptr<Translator> Xlate;
  SdtOptions Opts;
  SdtStats Stats;
};

std::vector<HostOpKind> kindsOf(const Fragment &F) {
  std::vector<HostOpKind> Kinds;
  for (const HostInstr &HI : F.Code)
    Kinds.push_back(HI.Kind);
  return Kinds;
}

} // namespace

TEST_F(TranslatorFixture, StraightLineEndsAtHalt) {
  build("main:\n nop\n nop\n halt\n");
  const Fragment &F = translateAt(0x1000);
  EXPECT_EQ(kindsOf(F), (std::vector<HostOpKind>{HostOpKind::Guest,
                                                 HostOpKind::Guest,
                                                 HostOpKind::HaltOp}));
  EXPECT_EQ(Stats.GuestInstrsTranslated, 3u);
  // Host addresses are contiguous and monotonically increasing.
  EXPECT_EQ(F.Code[0].HostAddr, F.HostEntryAddr);
  EXPECT_EQ(F.Code[1].HostAddr, F.HostEntryAddr + 4);
}

TEST_F(TranslatorFixture, CondBranchEmitsTwoStubs) {
  build("main:\n beq t0, t1, main\n halt\n");
  const Fragment &F = translateAt(0x1000);
  ASSERT_EQ(kindsOf(F), (std::vector<HostOpKind>{HostOpKind::CondBranch,
                                                 HostOpKind::ExitStub,
                                                 HostOpKind::ExitStub}));
  EXPECT_EQ(F.Code[1].TargetGuest, 0x1004u); // Fall-through first.
  EXPECT_EQ(F.Code[2].TargetGuest, 0x1000u); // Taken second.
  EXPECT_FALSE(F.Code[1].CountsAsGuest);
  EXPECT_TRUE(F.Code[0].CountsAsGuest);
}

TEST_F(TranslatorFixture, DirectJumpIsCountingStub) {
  build("main:\n j main\n");
  const Fragment &F = translateAt(0x1000);
  ASSERT_EQ(kindsOf(F), (std::vector<HostOpKind>{HostOpKind::ExitStub}));
  EXPECT_TRUE(F.Code[0].CountsAsGuest);
  EXPECT_EQ(F.Code[0].TargetGuest, 0x1000u);
}

TEST_F(TranslatorFixture, DirectCallSetsLinkThenExits) {
  build("main:\n jal f\nf: halt\n");
  const Fragment &F = translateAt(0x1000);
  ASSERT_EQ(kindsOf(F), (std::vector<HostOpKind>{HostOpKind::SetLink,
                                                 HostOpKind::ExitStub}));
  EXPECT_TRUE(F.Code[0].CountsAsGuest);
  EXPECT_EQ(F.Code[0].TargetGuest, 0x1004u); // Return address.
  EXPECT_EQ(F.Code[0].GuestI.Rd, unsigned(RegRA));
  EXPECT_FALSE(F.Code[1].CountsAsGuest);
  EXPECT_EQ(F.Code[1].TargetGuest, 0x1004u); // Callee.
}

TEST_F(TranslatorFixture, IndirectCallSetsLinkThenLooksUp) {
  build("main:\n jalr t2\n");
  const Fragment &F = translateAt(0x1000);
  ASSERT_EQ(kindsOf(F), (std::vector<HostOpKind>{HostOpKind::SetLink,
                                                 HostOpKind::IBLookup}));
  EXPECT_FALSE(F.Code[0].CountsAsGuest); // The IBLookup retires the jalr.
  EXPECT_TRUE(F.Code[1].CountsAsGuest);
  EXPECT_EQ(F.Code[1].SiteClass, IBClass::Call);
  EXPECT_EQ(F.Code[1].GuestI.Rs1, 10u); // t2.
  ASSERT_EQ(Xlate->sites().size(), 1u);
  EXPECT_EQ(Xlate->sites()[0].Class, IBClass::Call);
}

TEST_F(TranslatorFixture, ReturnIsReturnClassSite) {
  build("main:\n ret\n");
  const Fragment &F = translateAt(0x1000);
  ASSERT_EQ(kindsOf(F), (std::vector<HostOpKind>{HostOpKind::IBLookup}));
  EXPECT_EQ(F.Code[0].SiteClass, IBClass::Return);
  EXPECT_EQ(F.Code[0].GuestI.Rs1, unsigned(RegRA));
}

TEST_F(TranslatorFixture, SyscallEndsFragmentWithContinuation) {
  build("main:\n syscall\n halt\n");
  const Fragment &F = translateAt(0x1000);
  ASSERT_EQ(kindsOf(F), (std::vector<HostOpKind>{HostOpKind::SyscallOp,
                                                 HostOpKind::ExitStub}));
  EXPECT_EQ(F.Code[1].TargetGuest, 0x1004u);
}

TEST_F(TranslatorFixture, FragmentBudgetSplits) {
  SdtOptions O;
  O.MaxFragmentInstrs = 2;
  build("main:\n nop\n nop\n nop\n halt\n", O);
  const Fragment &F = translateAt(0x1000);
  ASSERT_EQ(kindsOf(F), (std::vector<HostOpKind>{HostOpKind::Guest,
                                                 HostOpKind::Guest,
                                                 HostOpKind::ExitStub}));
  EXPECT_EQ(F.Code[2].TargetGuest, 0x1008u);
}

TEST_F(TranslatorFixture, InvalidEntryFails) {
  build("main: .word 0xFC000000\n");
  Expected<HostLoc> Loc = Xlate->translate(0x1000, nullptr, Stats);
  EXPECT_FALSE(static_cast<bool>(Loc));
}

TEST_F(TranslatorFixture, InvalidMidFragmentStops) {
  build("main:\n nop\ndata: .word 0xFC000000\n");
  const Fragment &F = translateAt(0x1000);
  ASSERT_EQ(kindsOf(F), (std::vector<HostOpKind>{HostOpKind::Guest,
                                                 HostOpKind::ExitStub}));
  EXPECT_EQ(F.Code[1].TargetGuest, 0x1004u);
}

TEST_F(TranslatorFixture, TranslationChargesTranslateCategory) {
  build("main:\n nop\n halt\n");
  arch::TimingModel Timing(arch::simpleModel());
  Expected<HostLoc> Loc = Xlate->translate(0x1000, &Timing, Stats);
  ASSERT_TRUE(static_cast<bool>(Loc));
  EXPECT_EQ(Timing.cycles(arch::CycleCategory::Translate),
            2u * arch::simpleModel().TranslateCostPerInstr);
  EXPECT_EQ(Timing.cycles(arch::CycleCategory::App), 0u);
}

// --- Trace building -------------------------------------------------------

TEST_F(TranslatorFixture, TraceLinearisesLoopBody) {
  // loop: addi; j mid / mid: addi; bnez back to loop.
  build(R"(
main:
loop:
    addi t1, t1, 1
    j    mid
mid:
    addi t0, t0, -1
    bnez t0, loop
    halt
)");
  translateAt(0x1000); // Head must exist before tracing.
  // Recorded path: j (cti 1), bnez taken (cti 2), lands back on head.
  Expected<HostLoc> Trace = Xlate->buildTrace(
      0x1000, {true}, 2, Translator::TraceEnd::CtiBudget, nullptr, Stats);
  ASSERT_TRUE(static_cast<bool>(Trace));
  const Fragment &F = Cache->fragment(Trace->Frag);
  ASSERT_EQ(kindsOf(F),
            (std::vector<HostOpKind>{
                HostOpKind::Guest,        // addi t1
                HostOpKind::Elided,       // j mid (linearised away)
                HostOpKind::Guest,        // addi t0
                HostOpKind::TraceBranch,  // bnez (on-trace = taken)
                HostOpKind::ExitStub,     // off-trace: fall-through exit
                HostOpKind::ExitStub}));  // loop-close stub to head
  EXPECT_TRUE(F.Code[3].OnTraceTaken);
  EXPECT_EQ(F.Code[4].TargetGuest, 0x1010u); // Off-trace fall-through.
  EXPECT_EQ(F.Code[5].TargetGuest, 0x1000u); // Back to head (self-link).
  EXPECT_EQ(Stats.TracesBuilt, 1u);
  // The guest map now points at the trace.
  EXPECT_EQ(Cache->lookup(0x1000), *Trace);
}

TEST_F(TranslatorFixture, TraceEndsAtReturn) {
  build(R"(
main:
    jal f
    halt
f:
    addi v0, a0, 1
    ret
)");
  translateAt(0x1000);
  // Path: jal (cti 1) → f body → ret ends the trace.
  Expected<HostLoc> Trace = Xlate->buildTrace(
      0x1000, {}, 1, Translator::TraceEnd::AtIB, nullptr, Stats);
  ASSERT_TRUE(static_cast<bool>(Trace));
  const Fragment &F = Cache->fragment(Trace->Frag);
  ASSERT_EQ(kindsOf(F),
            (std::vector<HostOpKind>{HostOpKind::SetLink, // jal, inlined
                                     HostOpKind::Guest,   // addi v0
                                     HostOpKind::IBLookup})); // ret
  EXPECT_TRUE(F.Code[0].CountsAsGuest);
  EXPECT_EQ(F.Code[2].SiteClass, IBClass::Return);
}
