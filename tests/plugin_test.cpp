//===- tests/plugin_test.cpp - Instrumentation plugin API --------*- C++ -*-===//
//
// Part of StrataIB.
//
// The plugin subsystem under test (src/plugin): spec parsing, the
// no-plugins cycle-identity contract (an engine with no manager, and an
// engine with an *empty* manager, are bit-identical in simulated cycles
// across every IB mechanism), exactly-once delivery of translation-time
// and IB-resolution callbacks, coherence under partial eviction / SMC
// invalidation / full flush / snapshot rehydration, and the three
// in-tree plugins against analytic oracles.
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"
#include "arch/Timing.h"
#include "assembler/Assembler.h"
#include "core/SdtEngine.h"
#include "support/StringUtils.h"
#include "plugin/CoveragePlugin.h"
#include "plugin/IbEdgePlugin.h"
#include "plugin/MemCheckPlugin.h"
#include "plugin/PluginManager.h"
#include "vm/GuestVM.h"

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace sdt;
using namespace sdt::core;
using namespace sdt::vm;

namespace {

isa::Program mustAssemble(const char *Src) {
  Expected<isa::Program> P = assembler::assemble(Src);
  EXPECT_TRUE(static_cast<bool>(P)) << (P ? "" : P.error().message());
  return *P;
}

/// Indirect-call loop alternating between two callees; exercises
/// ind-call and return sites under every mechanism.
const char *const CallLoop = R"(
main:
    li   s0, 50
    li   s7, 0
loop:
    la   t0, fns
    andi t1, s0, 1
    slli t1, t1, 2
    add  t0, t0, t1
    lw   t2, 0(t0)
    move a0, s0
    jalr t2
    add  s7, s7, v0
    addi s0, s0, -1
    bnez s0, loop
    move a0, s7
    li   v0, 4
    syscall
    li   a0, 0
    li   v0, 0
    syscall
f_even:
    slli v0, a0, 1
    ret
f_odd:
    addi v0, a0, 100
    ret
fns: .word f_even, f_odd
)";

/// A call-heavy program big enough to overflow a 4 KiB fragment cache
/// (the eviction/flush coherence tests need real cache churn; CallLoop
/// alone fits comfortably).
std::string bigCallProgram() {
  std::string Src = "main:\n    li s6, 2\nmpass:\n";
  for (int F = 0; F != 120; ++F)
    Src += formatString("    jal fn%d\n", F);
  Src += "    addi s6, s6, -1\n"
         "    bnez s6, mpass\n"
         "    li a0, 0\n    li v0, 0\n    syscall\n";
  for (int F = 0; F != 120; ++F)
    Src += formatString(
        "fn%d:\n    push ra\n    jal leaf\n    pop ra\n    ret\n", F);
  Src += "leaf:\n    addi v0, a0, 1\n    ret\n";
  return Src;
}

/// The four mechanism configurations the cycle-identity contract is
/// pinned across (mirrors the E19 sweep axes).
std::vector<std::pair<const char *, SdtOptions>> mechanismConfigs() {
  std::vector<std::pair<const char *, SdtOptions>> Cs;
  SdtOptions O;
  O.Mechanism = IBMechanism::Dispatcher;
  Cs.emplace_back("dispatcher", O);
  O = SdtOptions();
  O.Mechanism = IBMechanism::Ibtc;
  Cs.emplace_back("ibtc", O);
  O = SdtOptions();
  O.Mechanism = IBMechanism::Sieve;
  Cs.emplace_back("sieve", O);
  O = SdtOptions();
  O.Mechanism = IBMechanism::Ibtc;
  O.InlineCacheDepth = 2;
  Cs.emplace_back("ibtc+inline2", O);
  return Cs;
}

struct TimedRun {
  RunResult Result;
  SdtStats Stats;
  uint64_t Cycles = 0;
  std::array<uint64_t, size_t(arch::CycleCategory::NumCategories)>
      ByCategory{};
};

/// Runs \p P under \p Opts with an x86 timing model, optionally with a
/// plugin manager attached.
TimedRun runTimed(const isa::Program &P, const SdtOptions &Opts,
                  plugin::PluginManager *Mgr) {
  arch::TimingModel Timing(arch::x86Model());
  ExecOptions Exec;
  Exec.Timing = &Timing;
  auto Engine = SdtEngine::create(P, Opts, Exec);
  EXPECT_TRUE(static_cast<bool>(Engine));
  if (Mgr)
    (*Engine)->setPlugins(Mgr);
  TimedRun R;
  R.Result = (*Engine)->run();
  R.Stats = (*Engine)->stats();
  R.Cycles = Timing.totalCycles();
  for (size_t I = 0; I != R.ByCategory.size(); ++I)
    R.ByCategory[I] = Timing.cycles(static_cast<arch::CycleCategory>(I));
  return R;
}

/// Counts every callback delivery; subscribes to all execution-time
/// categories.
class CountingPlugin : public plugin::Plugin {
public:
  const char *name() const override { return "counting"; }
  CallbackSet callbacks() const override {
    CallbackSet S;
    S.FragmentEntry = true;
    S.IBResolved = true;
    S.MemAccess = true;
    return S;
  }
  void onAttach(const plugin::GuestLayout &Layout) override {
    ++Attaches;
    LastLayout = Layout;
  }
  void onFragmentTranslated(const plugin::FragmentView &F) override {
    ++Translations;
    if (F.IsTrace)
      ++TraceTranslations;
    TranslatedEntries.push_back(F.GuestEntry);
    for (const plugin::IBSiteView &S : F.Sites)
      EXPECT_NE(S.Mechanism, nullptr);
  }
  void onFragmentInvalidated(uint32_t FragIndex, uint32_t) override {
    ++Invalidations;
    InvalidatedIndices.insert(FragIndex);
  }
  void onCacheFlush() override { ++Flushes; }
  void onFragmentEntry(uint32_t, uint32_t, arch::TimingModel *) override {
    ++Entries;
  }
  void onIBResolved(const plugin::IBResolution &R,
                    arch::TimingModel *) override {
    ++Resolutions;
    ++ByClass[static_cast<size_t>(R.Class)];
    EXPECT_NE(R.Mechanism, nullptr);
  }
  void onMemAccess(uint32_t, uint32_t, bool IsStore,
                   arch::TimingModel *) override {
    ++(IsStore ? Stores : Loads);
  }

  uint64_t Attaches = 0;
  uint64_t Translations = 0;
  uint64_t TraceTranslations = 0;
  uint64_t Invalidations = 0;
  uint64_t Flushes = 0;
  uint64_t Entries = 0;
  uint64_t Resolutions = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  std::array<uint64_t, NumIBClasses> ByClass{};
  std::vector<uint32_t> TranslatedEntries;
  std::set<uint32_t> InvalidatedIndices;
  plugin::GuestLayout LastLayout;
};

/// Attaches a fresh manager owning one CountingPlugin; returns the
/// plugin (manager keeps ownership).
CountingPlugin *addCounter(plugin::PluginManager &Mgr) {
  auto P = std::make_unique<CountingPlugin>();
  CountingPlugin *Raw = P.get();
  Mgr.add(std::move(P));
  return Raw;
}

} // namespace

// --- Spec parsing -----------------------------------------------------------

TEST(PluginSpecTest, KnownNamesAndWhitespace) {
  auto Mgr = plugin::createPluginManager(" coverage , memcheck ");
  ASSERT_TRUE(static_cast<bool>(Mgr));
  EXPECT_EQ((*Mgr)->size(), 2u);
  EXPECT_NE((*Mgr)->find("coverage"), nullptr);
  EXPECT_NE((*Mgr)->find("memcheck"), nullptr);
  EXPECT_EQ((*Mgr)->find("ibedges"), nullptr);
  EXPECT_TRUE((*Mgr)->wantsFragmentEntry());
  EXPECT_FALSE((*Mgr)->wantsIBResolved());
  EXPECT_TRUE((*Mgr)->wantsMemAccess());
}

TEST(PluginSpecTest, EmptySpecYieldsEmptyManager) {
  auto Mgr = plugin::createPluginManager("");
  ASSERT_TRUE(static_cast<bool>(Mgr));
  EXPECT_EQ((*Mgr)->size(), 0u);
  EXPECT_FALSE((*Mgr)->wantsFragmentEntry());
  EXPECT_FALSE((*Mgr)->wantsIBResolved());
  EXPECT_FALSE((*Mgr)->wantsMemAccess());
}

TEST(PluginSpecTest, UnknownNameIsError) {
  auto Mgr = plugin::createPluginManager("coverage,typo");
  ASSERT_FALSE(static_cast<bool>(Mgr));
  std::string Msg = Mgr.error().message();
  EXPECT_NE(Msg.find("typo"), std::string::npos);
  EXPECT_NE(Msg.find(plugin::knownPluginNames()), std::string::npos);
}

TEST(PluginSpecTest, DuplicateNameIsError) {
  auto Mgr = plugin::createPluginManager("ibedges,ibedges");
  ASSERT_FALSE(static_cast<bool>(Mgr));
  EXPECT_NE(Mgr.error().message().find("duplicate"), std::string::npos);
}

// --- The cycle-identity contract --------------------------------------------

// A run with no manager, and a run with an EMPTY manager attached, are
// bit-identical in total and per-category cycles under every mechanism
// configuration — the `if (Plugins)` guards plus cached wants-flags must
// never perturb the simulation. This is the differential that pins the
// tentpole's "plugins off = free" guarantee.
TEST(PluginCycleIdentityTest, NoPluginsIsBitIdenticalAcrossMechanisms) {
  isa::Program P = mustAssemble(CallLoop);
  for (const auto &[Name, Opts] : mechanismConfigs()) {
    TimedRun Bare = runTimed(P, Opts, nullptr);
    auto Empty = plugin::createPluginManager("");
    ASSERT_TRUE(static_cast<bool>(Empty));
    TimedRun WithEmpty = runTimed(P, Opts, Empty->get());

    EXPECT_EQ(Bare.Cycles, WithEmpty.Cycles) << Name;
    EXPECT_EQ(Bare.ByCategory, WithEmpty.ByCategory) << Name;
    EXPECT_EQ(Bare.Result.Checksum, WithEmpty.Result.Checksum) << Name;
    EXPECT_EQ(Bare.Result.InstructionCount,
              WithEmpty.Result.InstructionCount)
        << Name;
  }
}

// Loaded plugins cost cycles — all of it in CycleCategory::Instrument;
// every other category stays bit-identical to the uninstrumented run
// (probes never perturb the translation/dispatch/mechanism accounting).
TEST(PluginCycleIdentityTest, LoadedPluginsChargeOnlyInstrument) {
  isa::Program P = mustAssemble(CallLoop);
  for (const auto &[Name, Opts] : mechanismConfigs()) {
    TimedRun Bare = runTimed(P, Opts, nullptr);
    auto Full =
        plugin::createPluginManager("coverage,ibedges,memcheck");
    ASSERT_TRUE(static_cast<bool>(Full));
    TimedRun Inst = runTimed(P, Opts, Full->get());

    size_t InstrumentIdx = static_cast<size_t>(
        arch::CycleCategory::Instrument);
    EXPECT_GT(Inst.ByCategory[InstrumentIdx], 0u) << Name;
    EXPECT_GT(Inst.Cycles, Bare.Cycles) << Name;
    for (size_t I = 0; I != Bare.ByCategory.size(); ++I) {
      if (I != InstrumentIdx) {
        EXPECT_EQ(Bare.ByCategory[I], Inst.ByCategory[I])
            << Name << " category " << I;
      }
    }
    EXPECT_EQ(Bare.Result.Checksum, Inst.Result.Checksum) << Name;
  }
}

// --- Exactly-once callback delivery -----------------------------------------

// Every executed indirect branch produces exactly one onIBResolved,
// whichever path served it (mechanism hit or miss, inline cache, fast
// return, shadow stack, return cache) — the invariant that makes the
// ibedges matrix equal the paper's Table-1 dynamic counts.
TEST(PluginDeliveryTest, IBResolutionFiresExactlyOncePerExecutedIB) {
  isa::Program P = mustAssemble(CallLoop);
  std::vector<std::pair<const char *, SdtOptions>> Configs =
      mechanismConfigs();
  for (ReturnStrategy RS :
       {ReturnStrategy::AsIndirect, ReturnStrategy::FastReturn,
        ReturnStrategy::ShadowStack, ReturnStrategy::ReturnCache}) {
    SdtOptions O;
    O.Mechanism = IBMechanism::Ibtc;
    O.Returns = RS;
    Configs.emplace_back("ibtc+returns", O);
  }
  for (const auto &[Name, Opts] : Configs) {
    plugin::PluginManager Mgr;
    CountingPlugin *C = addCounter(Mgr);
    TimedRun R = runTimed(P, Opts, &Mgr);
    uint64_t IBExecs = 0;
    for (uint64_t N : R.Stats.IBExecs)
      IBExecs += N;
    EXPECT_EQ(C->Resolutions, IBExecs) << Name;
    EXPECT_EQ(C->ByClass[size_t(IBClass::Call)],
              R.Stats.IBExecs[size_t(IBClass::Call)])
        << Name;
    EXPECT_EQ(C->ByClass[size_t(IBClass::Return)],
              R.Stats.IBExecs[size_t(IBClass::Return)])
        << Name;
    EXPECT_EQ(C->Attaches, 1u) << Name;
  }
}

// One onFragmentTranslated per installed fragment or trace, and the
// guest memory-access stream matches the interpreter's oracle.
TEST(PluginDeliveryTest, TranslationAndMemAccessCountsMatchStats) {
  isa::Program P = mustAssemble(CallLoop);
  SdtOptions Opts;
  Opts.EnableTraces = true;
  Opts.TraceHotThreshold = 8;
  plugin::PluginManager Mgr;
  CountingPlugin *C = addCounter(Mgr);
  TimedRun R = runTimed(P, Opts, &Mgr);

  // Stats count traces under FragmentsTranslated too, so that figure
  // alone is the install count the callbacks must match.
  EXPECT_EQ(C->Translations, R.Stats.FragmentsTranslated);
  EXPECT_EQ(C->TraceTranslations, R.Stats.TracesBuilt);
  EXPECT_GT(C->TraceTranslations, 0u);

  // The interpreter's CTI stats do not count memory ops, but the run
  // result's instruction mix is fixed: replay natively and count.
  auto VM = GuestVM::create(P, ExecOptions());
  ASSERT_TRUE(static_cast<bool>(VM));
  RunResult Native = (*VM)->run();
  EXPECT_EQ(R.Result.Checksum, Native.Checksum);
  // CallLoop executes one lw per iteration and no stores.
  EXPECT_EQ(C->Loads, 50u);
  EXPECT_EQ(C->Stores, 0u);
}

// --- Coherence: eviction, SMC, flush, prewarm -------------------------------

namespace {

/// Checks the manager's translation-record table against the live
/// fragment cache: every record names a live fragment with the same
/// guest entry, and every live fragment has a record.
void expectRecordsMatchCache(const plugin::PluginManager &Mgr,
                             FragmentCache &Cache) {
  size_t Live = 0;
  for (uint32_t I = 0; I != Cache.fragmentCount(); ++I)
    if (Cache.fragment(I).Live)
      ++Live;
  EXPECT_EQ(Mgr.fragmentRecords().size(), Live);
  for (const auto &[Index, Rec] : Mgr.fragmentRecords()) {
    ASSERT_LT(Index, Cache.fragmentCount());
    EXPECT_TRUE(Cache.fragment(Index).Live);
    EXPECT_EQ(Rec.GuestEntry, Cache.fragment(Index).GuestEntry);
  }
}

} // namespace

TEST(PluginCoherenceTest, PartialEvictionDropsRecordsAndNotifies) {
  isa::Program P = mustAssemble(bigCallProgram().c_str());
  SdtOptions Opts;
  Opts.Mechanism = IBMechanism::Ibtc;
  Opts.CachePolicy = cachemgr::CachePolicyKind::Fifo;
  Opts.FragmentCacheBytes = 4096; // Small enough to force evictions.
  Opts.MaxFragmentInstrs = 4;

  plugin::PluginManager Mgr;
  CountingPlugin *C = addCounter(Mgr);
  arch::TimingModel Timing(arch::x86Model());
  ExecOptions Exec;
  Exec.Timing = &Timing;
  auto Engine = SdtEngine::create(P, Opts, Exec);
  ASSERT_TRUE(static_cast<bool>(Engine));
  (*Engine)->setPlugins(&Mgr);
  RunResult R = (*Engine)->run();
  EXPECT_EQ(R.Reason, ExitReason::Exited) << R.FaultMessage;

  EXPECT_GT((*Engine)->stats().PartialEvictions, 0u);
  EXPECT_GT(C->Invalidations, 0u);
  EXPECT_EQ(C->Invalidations, Mgr.invalidationCallbacks());
  expectRecordsMatchCache(Mgr, (*Engine)->fragmentCache());
}

TEST(PluginCoherenceTest, FullFlushDropsEveryRecord) {
  isa::Program P = mustAssemble(bigCallProgram().c_str());
  SdtOptions Opts;
  Opts.CachePolicy = cachemgr::CachePolicyKind::FullFlush;
  Opts.FragmentCacheBytes = 4096;
  Opts.MaxFragmentInstrs = 4;

  plugin::PluginManager Mgr;
  CountingPlugin *C = addCounter(Mgr);
  arch::TimingModel Timing(arch::x86Model());
  ExecOptions Exec;
  Exec.Timing = &Timing;
  auto Engine = SdtEngine::create(P, Opts, Exec);
  ASSERT_TRUE(static_cast<bool>(Engine));
  (*Engine)->setPlugins(&Mgr);
  RunResult R = (*Engine)->run();
  EXPECT_EQ(R.Reason, ExitReason::Exited) << R.FaultMessage;

  EXPECT_GT((*Engine)->stats().Flushes, 0u);
  EXPECT_EQ(C->Flushes, (*Engine)->stats().Flushes);
  EXPECT_EQ(Mgr.flushCallbacks(), (*Engine)->stats().Flushes);
  expectRecordsMatchCache(Mgr, (*Engine)->fragmentCache());
}

// SMC invalidation delivers one onFragmentInvalidated per victim; with a
// roomy cache (no capacity evictions) the counts match the engine's own
// write-invalidation stats exactly, and the patched program still
// produces the coherent result.
TEST(PluginCoherenceTest, SmcInvalidationNotifiesPerVictim) {
  static const char *Src = R"(
main:
    la t0, ps
    la t1, tmpl
    lw t2, 0(t1)
    li s1, 0
    jal blk
    jal blk
    move a0, s1
    li v0, 0
    syscall
blk:
    sw t2, 0(t0)
ps:
    addi s1, s1, 1
    ret
tmpl:
    addi s1, s1, 100
)";
  isa::Program P = mustAssemble(Src);
  plugin::PluginManager Mgr;
  CountingPlugin *C = addCounter(Mgr);
  arch::TimingModel Timing(arch::x86Model());
  ExecOptions Exec;
  Exec.Timing = &Timing;
  auto Engine = SdtEngine::create(P, SdtOptions(), Exec);
  ASSERT_TRUE(static_cast<bool>(Engine));
  (*Engine)->setPlugins(&Mgr);
  RunResult R = (*Engine)->run();
  EXPECT_EQ(R.Reason, ExitReason::Exited) << R.FaultMessage;
  EXPECT_EQ(R.ExitCode, 200);

  const SdtStats &S = (*Engine)->stats();
  EXPECT_GE(S.CodeWriteInvalidations, 2u);
  EXPECT_EQ(C->Invalidations, S.FragmentsInvalidatedByWrite);
  expectRecordsMatchCache(Mgr, (*Engine)->fragmentCache());
}

// Snapshot rehydration (prewarm) delivers the translation-time callback
// for each reinstalled fragment, and run() never replays it: the final
// delivery count equals the engine's total translation count, with the
// prewarmed entries delivered before run() started.
TEST(PluginCoherenceTest, PrewarmDeliversTranslationCallbacksExactlyOnce) {
  isa::Program P = mustAssemble(CallLoop);
  SdtOptions Opts;
  Opts.Mechanism = IBMechanism::Ibtc;

  // First run: collect the fragment entries a snapshot would record.
  auto First = SdtEngine::create(P, Opts, ExecOptions());
  ASSERT_TRUE(static_cast<bool>(First));
  RunResult R1 = (*First)->run();
  ASSERT_EQ(R1.Reason, ExitReason::Exited) << R1.FaultMessage;
  PrewarmImage Image;
  FragmentCache &Cache1 = (*First)->fragmentCache();
  for (uint32_t I = 0; I != Cache1.fragmentCount(); ++I)
    if (Cache1.fragment(I).Live)
      Image.FragmentEntries.push_back(Cache1.fragment(I).GuestEntry);
  ASSERT_GT(Image.FragmentEntries.size(), 2u);

  // Second run: rehydrate with a manager attached.
  plugin::PluginManager Mgr;
  CountingPlugin *C = addCounter(Mgr);
  auto Second = SdtEngine::create(P, Opts, ExecOptions());
  ASSERT_TRUE(static_cast<bool>(Second));
  (*Second)->setPlugins(&Mgr);
  (*Second)->prewarm(Image);

  const uint64_t AfterPrewarm = C->Translations;
  EXPECT_EQ(AfterPrewarm, (*Second)->stats().RehydratedFragments);
  EXPECT_EQ(AfterPrewarm, Image.FragmentEntries.size());

  RunResult R2 = (*Second)->run();
  EXPECT_EQ(R2.Reason, ExitReason::Exited) << R2.FaultMessage;
  EXPECT_EQ(R2.Checksum, R1.Checksum);
  // Everything was rehydrated, so run() translated nothing new and —
  // critically — did not replay the prewarm deliveries.
  EXPECT_EQ(C->Translations, (*Second)->stats().FragmentsTranslated);
  EXPECT_EQ(C->Translations, AfterPrewarm);
  expectRecordsMatchCache(Mgr, (*Second)->fragmentCache());
}

// --- The in-tree plugins against analytic oracles ---------------------------

TEST(InTreePluginTest, CoverageMapRecordsKnownEdges) {
  // main: two fragments (li/li/jal-shaped split at the call), loop body
  // re-entered 50 times — the exact edge counts come from the engine's
  // own block-count instrumentation as the oracle.
  isa::Program P = mustAssemble(CallLoop);
  SdtOptions Opts;
  Opts.InstrumentBlockCounts = true;

  plugin::PluginManager Mgr;
  auto Cov = std::make_unique<plugin::CoveragePlugin>();
  plugin::CoveragePlugin *C = Cov.get();
  Mgr.add(std::move(Cov));
  arch::TimingModel Timing(arch::x86Model());
  ExecOptions Exec;
  Exec.Timing = &Timing;
  auto Engine = SdtEngine::create(P, Opts, Exec);
  ASSERT_TRUE(static_cast<bool>(Engine));
  (*Engine)->setPlugins(&Mgr);
  RunResult R = (*Engine)->run();
  ASSERT_EQ(R.Reason, ExitReason::Exited) << R.FaultMessage;

  uint64_t OracleEntries = 0;
  for (const auto &[Pc, N] : (*Engine)->blockCounts())
    OracleEntries += N;
  uint64_t MapTotal = 0;
  for (uint32_t Hits : C->map())
    MapTotal += Hits;
  EXPECT_EQ(MapTotal, OracleEntries);
  EXPECT_GT(MapTotal, 100u); // 50 iterations x several blocks.

  bool FoundEntries = false;
  for (const auto &[Key, Value] : C->metrics())
    if (Key == "block_entries") {
      EXPECT_EQ(Value, OracleEntries);
      FoundEntries = true;
    }
  EXPECT_TRUE(FoundEntries);
}

TEST(InTreePluginTest, IbEdgeMatrixMatchesNativeCtiStats) {
  isa::Program P = mustAssemble(CallLoop);
  auto VM = GuestVM::create(P, ExecOptions());
  ASSERT_TRUE(static_cast<bool>(VM));
  RunResult Native = (*VM)->run();

  plugin::PluginManager Mgr;
  auto Edge = std::make_unique<plugin::IbEdgePlugin>();
  plugin::IbEdgePlugin *E = Edge.get();
  Mgr.add(std::move(Edge));
  auto Engine = SdtEngine::create(P, SdtOptions(), ExecOptions());
  ASSERT_TRUE(static_cast<bool>(Engine));
  (*Engine)->setPlugins(&Mgr);
  RunResult R = (*Engine)->run();
  ASSERT_EQ(R.Reason, ExitReason::Exited) << R.FaultMessage;

  std::map<std::string, uint64_t> M;
  for (const auto &KV : E->metrics())
    M[KV.first] = KV.second;
  EXPECT_EQ(M["call_executions"], Native.Cti.IndirectCalls);
  EXPECT_EQ(M["return_executions"], Native.Cti.Returns);
  EXPECT_EQ(M["total_executions"],
            Native.Cti.IndirectJumps + Native.Cti.IndirectCalls +
                Native.Cti.Returns);
  // One jalr site alternating between two callees: polymorphic, arity 2.
  EXPECT_EQ(M["call_sites"], 1u);
  EXPECT_EQ(M["call_edges"], 2u);
  EXPECT_EQ(M["call_polymorphic_sites"], 1u);
  EXPECT_EQ(M["call_max_targets"], 2u);
  // Two ret sites, each returning to the single call continuation.
  EXPECT_EQ(M["return_sites"], 2u);
  EXPECT_EQ(M["return_edges"], 2u);
  EXPECT_EQ(M["return_polymorphic_sites"], 0u);
}

TEST(InTreePluginTest, MemCheckFlagsLoadBeforeStore) {
  // Loads 0x8000 (never stored) then stores/loads 0x8100 (clean).
  static const char *Src = R"(
main:
    li t0, 0x8000
    lw t1, 0(t0)
    li t0, 0x8100
    li t2, 7
    sw t2, 0(t0)
    lw t3, 0(t0)
    move a0, t3
    li v0, 0
    syscall
)";
  isa::Program P = mustAssemble(Src);
  plugin::PluginManager Mgr;
  auto Chk = std::make_unique<plugin::MemCheckPlugin>();
  plugin::MemCheckPlugin *C = Chk.get();
  Mgr.add(std::move(Chk));
  auto Engine = SdtEngine::create(P, SdtOptions(), ExecOptions());
  ASSERT_TRUE(static_cast<bool>(Engine));
  (*Engine)->setPlugins(&Mgr);
  RunResult R = (*Engine)->run();
  ASSERT_EQ(R.Reason, ExitReason::Exited) << R.FaultMessage;
  EXPECT_EQ(R.ExitCode, 7);

  EXPECT_EQ(C->uninitialisedLoads(), 1u);
  ASSERT_EQ(C->offenders().size(), 1u);
  EXPECT_EQ(C->offenders()[0].Addr, 0x8000u);
  EXPECT_NE(C->reportText().find("0x00008000"), std::string::npos);
}

// The manager's JSON report is well-formed enough for the summary
// tooling: names present, metric keys escaped/quoted.
TEST(InTreePluginTest, ManagerReportJsonNamesEveryPlugin) {
  auto Mgr = plugin::createPluginManager("coverage,ibedges,memcheck");
  ASSERT_TRUE(static_cast<bool>(Mgr));
  std::string Doc = (*Mgr)->reportJson();
  EXPECT_NE(Doc.find("\"coverage\""), std::string::npos);
  EXPECT_NE(Doc.find("\"ibedges\""), std::string::npos);
  EXPECT_NE(Doc.find("\"memcheck\""), std::string::npos);
  EXPECT_NE(Doc.find("\"plugins\""), std::string::npos);
}
