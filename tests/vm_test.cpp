//===- tests/vm_test.cpp - VM / interpreter tests ----------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//

#include "assembler/Assembler.h"
#include "isa/Encoding.h"
#include "vm/DecodeCache.h"
#include "vm/ExecSemantics.h"
#include "vm/GuestMemory.h"
#include "vm/GuestVM.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::isa;
using namespace sdt::vm;

// --- GuestMemory -------------------------------------------------------

TEST(GuestMemoryTest, PageZeroUnmapped) {
  GuestMemory M(1 << 20);
  uint8_t B;
  EXPECT_FALSE(M.load8(0, B));
  EXPECT_FALSE(M.load8(0xFFF, B));
  EXPECT_TRUE(M.load8(0x1000, B));
  EXPECT_FALSE(M.store8(0x0800, 1));
}

TEST(GuestMemoryTest, BoundsChecked) {
  GuestMemory M(1 << 20);
  uint32_t W;
  EXPECT_FALSE(M.load32(M.size(), W));
  EXPECT_FALSE(M.load32(M.size() - 2, W));
  EXPECT_TRUE(M.load32(M.size() - 4, W));
  // Wrap-around attempt.
  EXPECT_FALSE(M.load32(0xFFFFFFFC, W));
}

TEST(GuestMemoryTest, AlignmentChecked) {
  GuestMemory M(1 << 20);
  uint32_t W;
  uint16_t H;
  EXPECT_FALSE(M.load32(0x1002, W));
  EXPECT_FALSE(M.load16(0x1001, H));
  EXPECT_TRUE(M.load16(0x1002, H));
}

TEST(GuestMemoryTest, RoundTripAllWidths) {
  GuestMemory M(1 << 20);
  EXPECT_TRUE(M.store32(0x2000, 0xDEADBEEF));
  uint32_t W;
  EXPECT_TRUE(M.load32(0x2000, W));
  EXPECT_EQ(W, 0xDEADBEEFu);
  uint16_t H;
  EXPECT_TRUE(M.load16(0x2000, H));
  EXPECT_EQ(H, 0xBEEF);
  uint8_t B;
  EXPECT_TRUE(M.load8(0x2003, B));
  EXPECT_EQ(B, 0xDE);
  EXPECT_TRUE(M.store16(0x2000, 0x1122));
  EXPECT_TRUE(M.load32(0x2000, W));
  EXPECT_EQ(W, 0xDEAD1122u);
}

TEST(GuestMemoryTest, LoadProgramPlacesImage) {
  Program P(0x1000, {1, 2, 3, 4});
  GuestMemory M(1 << 20);
  ASSERT_TRUE(M.loadProgram(P));
  uint8_t B;
  EXPECT_TRUE(M.load8(0x1002, B));
  EXPECT_EQ(B, 3);
}

TEST(GuestMemoryTest, LoadProgramRejectsOversized) {
  Program P(0x1000, std::vector<uint8_t>(1 << 21, 0));
  GuestMemory M(1 << 20);
  EXPECT_FALSE(M.loadProgram(P));
}

// --- GuestState -----------------------------------------------------------

TEST(GuestStateTest, RegisterZeroStaysZero) {
  GuestState S;
  S.setReg(0, 123);
  EXPECT_EQ(S.reg(0), 0u);
  S.setReg(5, 7);
  EXPECT_EQ(S.reg(5), 7u);
}

// --- ExecSemantics: ALU table-driven ---------------------------------------

struct AluCase {
  const char *Name;
  Instruction Instr;
  uint32_t A, B;
  uint32_t Want;
};

class AluSemanticsTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemanticsTest, ComputesExpected) {
  const AluCase &C = GetParam();
  GuestState S;
  GuestMemory M(1 << 20);
  S.setReg(1, C.A);
  S.setReg(2, C.B);
  ExecEffect E = executeNonCti(C.Instr, S, M);
  EXPECT_FALSE(E.faulted());
  EXPECT_EQ(S.reg(3), C.Want) << C.Name;
}

static const AluCase AluCases[] = {
    {"add", makeR(Opcode::Add, 3, 1, 2), 5, 7, 12},
    {"add-wrap", makeR(Opcode::Add, 3, 1, 2), 0xFFFFFFFF, 2, 1},
    {"sub", makeR(Opcode::Sub, 3, 1, 2), 5, 7, 0xFFFFFFFE},
    {"mul", makeR(Opcode::Mul, 3, 1, 2), 7, 6, 42},
    {"mul-wrap", makeR(Opcode::Mul, 3, 1, 2), 0x10000, 0x10000, 0},
    {"div", makeR(Opcode::Div, 3, 1, 2), 42, 5, 8},
    {"div-neg", makeR(Opcode::Div, 3, 1, 2), static_cast<uint32_t>(-42), 5,
     static_cast<uint32_t>(-8)},
    {"div-by-zero", makeR(Opcode::Div, 3, 1, 2), 42, 0, 0xFFFFFFFF},
    {"div-overflow", makeR(Opcode::Div, 3, 1, 2), 0x80000000,
     static_cast<uint32_t>(-1), 0x80000000},
    {"rem", makeR(Opcode::Rem, 3, 1, 2), 42, 5, 2},
    {"rem-by-zero", makeR(Opcode::Rem, 3, 1, 2), 42, 0, 42},
    {"rem-overflow", makeR(Opcode::Rem, 3, 1, 2), 0x80000000,
     static_cast<uint32_t>(-1), 0},
    {"and", makeR(Opcode::And, 3, 1, 2), 0xF0F0, 0xFF00, 0xF000},
    {"or", makeR(Opcode::Or, 3, 1, 2), 0xF0F0, 0x0F00, 0xFFF0},
    {"xor", makeR(Opcode::Xor, 3, 1, 2), 0xFF, 0x0F, 0xF0},
    {"sll", makeR(Opcode::Sll, 3, 1, 2), 1, 4, 16},
    {"sll-mask", makeR(Opcode::Sll, 3, 1, 2), 1, 33, 2},
    {"srl", makeR(Opcode::Srl, 3, 1, 2), 0x80000000, 31, 1},
    {"sra", makeR(Opcode::Sra, 3, 1, 2), 0x80000000, 31, 0xFFFFFFFF},
    {"slt-true", makeR(Opcode::Slt, 3, 1, 2), static_cast<uint32_t>(-1), 0,
     1},
    {"slt-false", makeR(Opcode::Slt, 3, 1, 2), 0, static_cast<uint32_t>(-1),
     0},
    {"sltu-true", makeR(Opcode::Sltu, 3, 1, 2), 0,
     static_cast<uint32_t>(-1), 1},
    {"addi", makeI(Opcode::Addi, 3, 1, -3), 5, 0, 2},
    {"andi-zext", makeI(Opcode::Andi, 3, 1, 0xFFFF), 0x12345678, 0,
     0x5678},
    {"ori-zext", makeI(Opcode::Ori, 3, 1, 0x8000), 1, 0, 0x8001},
    {"xori", makeI(Opcode::Xori, 3, 1, 0xFF), 0x0F, 0, 0xF0},
    {"slti", makeI(Opcode::Slti, 3, 1, 0), static_cast<uint32_t>(-5), 0, 1},
    {"sltiu", makeI(Opcode::Sltiu, 3, 1, 10), 5, 0, 1},
    {"slli", makeI(Opcode::Slli, 3, 1, 3), 2, 0, 16},
    {"srli", makeI(Opcode::Srli, 3, 1, 4), 0x100, 0, 0x10},
    {"srai", makeI(Opcode::Srai, 3, 1, 1), 0x80000000, 0, 0xC0000000},
    {"lui", makeLui(3, 0xABCD), 0, 0, 0xABCD0000},
};

INSTANTIATE_TEST_SUITE_P(
    AllOps, AluSemanticsTest, ::testing::ValuesIn(AluCases),
    [](const ::testing::TestParamInfo<AluCase> &Info) {
      std::string N = Info.param.Name;
      for (char &C : N)
        if (C == '-')
          C = '_';
      return N;
    });

// --- ExecSemantics: memory --------------------------------------------------

TEST(MemSemanticsTest, LoadSignAndZeroExtend) {
  GuestState S;
  GuestMemory M(1 << 20);
  ASSERT_TRUE(M.store32(0x2000, 0xFFFE8380)); // bytes 80 83 FE FF

  S.setReg(1, 0x2000);
  ExecEffect E = executeNonCti(makeMem(Opcode::Lb, 3, 1, 0), S, M);
  EXPECT_FALSE(E.faulted());
  EXPECT_EQ(S.reg(3), 0xFFFFFF80u);
  executeNonCti(makeMem(Opcode::Lbu, 3, 1, 0), S, M);
  EXPECT_EQ(S.reg(3), 0x80u);
  executeNonCti(makeMem(Opcode::Lh, 3, 1, 0), S, M);
  EXPECT_EQ(S.reg(3), 0xFFFF8380u);
  executeNonCti(makeMem(Opcode::Lhu, 3, 1, 0), S, M);
  EXPECT_EQ(S.reg(3), 0x8380u);
}

TEST(MemSemanticsTest, StoreWidths) {
  GuestState S;
  GuestMemory M(1 << 20);
  S.setReg(1, 0x2000);
  S.setReg(3, 0xAABBCCDD);
  executeNonCti(makeMem(Opcode::Sw, 3, 1, 0), S, M);
  executeNonCti(makeMem(Opcode::Sb, 3, 1, 4), S, M);
  executeNonCti(makeMem(Opcode::Sh, 3, 1, 6), S, M);
  uint32_t W;
  M.load32(0x2000, W);
  EXPECT_EQ(W, 0xAABBCCDDu);
  M.load32(0x2004, W);
  EXPECT_EQ(W, 0xCCDD00DDu);
}

TEST(MemSemanticsTest, FaultReportsAddress) {
  GuestState S;
  GuestMemory M(1 << 20);
  S.setReg(1, 0x10); // Page zero.
  ExecEffect E = executeNonCti(makeMem(Opcode::Lw, 3, 1, 0), S, M);
  EXPECT_TRUE(E.faulted());
  EXPECT_EQ(E.Addr, 0x10u);
}

TEST(MemSemanticsTest, NegativeOffsetAddressing) {
  GuestState S;
  GuestMemory M(1 << 20);
  ASSERT_TRUE(M.store32(0x1FFC, 99));
  S.setReg(1, 0x2000);
  executeNonCti(makeMem(Opcode::Lw, 3, 1, -4), S, M);
  EXPECT_EQ(S.reg(3), 99u);
}

// --- Branch conditions -------------------------------------------------------

TEST(BranchSemanticsTest, AllConditions) {
  GuestState S;
  S.setReg(1, static_cast<uint32_t>(-1));
  S.setReg(2, 1);
  EXPECT_FALSE(evalBranchCondition(makeBranch(Opcode::Beq, 1, 2, 0), S));
  EXPECT_TRUE(evalBranchCondition(makeBranch(Opcode::Bne, 1, 2, 0), S));
  EXPECT_TRUE(evalBranchCondition(makeBranch(Opcode::Blt, 1, 2, 0), S));
  EXPECT_FALSE(evalBranchCondition(makeBranch(Opcode::Bge, 1, 2, 0), S));
  // Unsigned: -1 is max.
  EXPECT_FALSE(evalBranchCondition(makeBranch(Opcode::Bltu, 1, 2, 0), S));
  EXPECT_TRUE(evalBranchCondition(makeBranch(Opcode::Bgeu, 1, 2, 0), S));
  S.setReg(2, static_cast<uint32_t>(-1));
  EXPECT_TRUE(evalBranchCondition(makeBranch(Opcode::Beq, 1, 2, 0), S));
  EXPECT_TRUE(evalBranchCondition(makeBranch(Opcode::Bge, 1, 2, 0), S));
}

// --- DecodeCache ------------------------------------------------------------

TEST(DecodeCacheTest, CachesAndRejects) {
  GuestMemory M(1 << 20);
  ASSERT_TRUE(M.store32(0x1000, encode(makeNop())));
  ASSERT_TRUE(M.store32(0x1004, 0xFC000000)); // invalid opcode
  DecodeCache D(M, 0x1000, 8);
  const Instruction *I = D.fetch(0x1000);
  ASSERT_NE(I, nullptr);
  EXPECT_EQ(I->Op, Opcode::Add);
  EXPECT_EQ(D.fetch(0x1000), I); // Same slot on re-fetch.
  EXPECT_EQ(D.fetch(0x1004), nullptr);
  EXPECT_EQ(D.fetch(0x1004), nullptr); // Cached invalid.
  EXPECT_EQ(D.fetch(0x1008), nullptr); // Out of region.
  EXPECT_EQ(D.fetch(0x0FFC), nullptr);
  EXPECT_EQ(D.fetch(0x1002), nullptr); // Unaligned.
}

// --- GuestVM end-to-end -------------------------------------------------

static RunResult runProgram(const char *Src, ExecOptions Opts = {}) {
  Expected<isa::Program> P = assembler::assemble(Src);
  EXPECT_TRUE(static_cast<bool>(P)) << (P ? "" : P.error().message());
  auto VM = GuestVM::create(*P, Opts);
  EXPECT_TRUE(static_cast<bool>(VM));
  return (*VM)->run();
}

TEST(GuestVMTest, ExitCodePropagates) {
  RunResult R = runProgram("main:\n li a0, 42\n li v0, 0\n syscall\n");
  EXPECT_EQ(R.Reason, ExitReason::Exited);
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(GuestVMTest, HaltStops) {
  RunResult R = runProgram("main:\n halt\n");
  EXPECT_EQ(R.Reason, ExitReason::Halted);
  EXPECT_EQ(R.InstructionCount, 1u);
}

TEST(GuestVMTest, PrintSyscalls) {
  RunResult R = runProgram(R"(
main:
    li a0, -7
    li v0, 1
    syscall            # print_int
    li a0, 65
    li v0, 2
    syscall            # print_char 'A'
    la a0, msg
    li v0, 3
    syscall            # print_str
    li a0, 0
    li v0, 0
    syscall
msg: .asciz "hi"
)");
  EXPECT_EQ(R.Reason, ExitReason::Exited);
  EXPECT_EQ(R.Output, "-7\nAhi");
}

TEST(GuestVMTest, ChecksumSyscallDeterministic) {
  const char *Src = "main:\n li a0, 5\n li v0, 4\n syscall\n"
                    " li a0, 0\n li v0, 0\n syscall\n";
  RunResult A = runProgram(Src), B = runProgram(Src);
  EXPECT_EQ(A.Checksum, B.Checksum);
  RunResult C = runProgram("main:\n li a0, 6\n li v0, 4\n syscall\n"
                           " li a0, 0\n li v0, 0\n syscall\n");
  EXPECT_NE(A.Checksum, C.Checksum);
}

TEST(GuestVMTest, UnknownSyscallFaults) {
  RunResult R = runProgram("main:\n li v0, 99\n syscall\n");
  EXPECT_EQ(R.Reason, ExitReason::Fault);
  EXPECT_NE(R.FaultMessage.find("syscall"), std::string::npos);
}

TEST(GuestVMTest, BadFetchFaults) {
  // Jump into unmapped space.
  RunResult R = runProgram("main:\n li t0, 0x8000\n jr t0\n");
  EXPECT_EQ(R.Reason, ExitReason::Fault);
  EXPECT_NE(R.FaultMessage.find("fetch"), std::string::npos);
}

TEST(GuestVMTest, MemoryFaultMessageHasPcAndAddr) {
  RunResult R = runProgram("main:\n li t0, 16\n lw t1, 0(t0)\n halt\n");
  EXPECT_EQ(R.Reason, ExitReason::Fault);
  EXPECT_NE(R.FaultMessage.find("pc=0x"), std::string::npos);
  EXPECT_NE(R.FaultMessage.find("addr=0x10"), std::string::npos);
}

TEST(GuestVMTest, InstructionLimit) {
  ExecOptions Opts;
  Opts.MaxInstructions = 100;
  RunResult R = runProgram("main:\n j main\n", Opts);
  EXPECT_EQ(R.Reason, ExitReason::InstrLimit);
  EXPECT_EQ(R.InstructionCount, 100u);
}

TEST(GuestVMTest, CallAndReturn) {
  RunResult R = runProgram(R"(
main:
    li  a0, 10
    jal double
    move a0, v0
    li  v0, 1
    syscall
    li  a0, 0
    li  v0, 0
    syscall
double:
    slli v0, a0, 1
    ret
)");
  EXPECT_EQ(R.Output, "20\n");
  EXPECT_EQ(R.Cti.DirectCalls, 1u);
  EXPECT_EQ(R.Cti.Returns, 1u);
}

TEST(GuestVMTest, CtiStatsCounted) {
  RunResult R = runProgram(R"(
main:
    li   t0, 3
loop:
    la   t1, fn
    jalr t1
    addi t0, t0, -1
    bnez t0, loop
    li   t2, 2
    la   t3, spot
    jr   t3
spot:
    li   a0, 0
    li   v0, 0
    syscall
fn: ret
)");
  EXPECT_EQ(R.Reason, ExitReason::Exited);
  EXPECT_EQ(R.Cti.IndirectCalls, 3u);
  EXPECT_EQ(R.Cti.Returns, 3u);
  EXPECT_EQ(R.Cti.IndirectJumps, 1u);
  EXPECT_EQ(R.Cti.CondBranches, 3u);
}

TEST(GuestVMTest, SiteTargetProfileCollected) {
  ExecOptions Opts;
  Opts.CollectSiteTargets = true;
  RunResult R = runProgram(R"(
main:
    li   t0, 2
loop:
    andi t1, t0, 1
    slli t1, t1, 2
    la   t2, tab
    add  t2, t2, t1
    lw   t3, 0(t2)
    jr   t3
back0:
back1:
    addi t0, t0, -1
    bnez t0, loop
    li   a0, 0
    li   v0, 0
    syscall
tab: .word back0, back1
)",
                           Opts);
  EXPECT_EQ(R.Reason, ExitReason::Exited);
  ASSERT_EQ(R.SiteTargets.size(), 1u);
  EXPECT_EQ(R.SiteTargets.begin()->second.size(), 1u); // back0 == back1
}

TEST(GuestVMTest, StackInitialised) {
  // push/pop around a call works out of the box.
  RunResult R = runProgram(R"(
main:
    push ra
    jal  f
    pop  ra
    move a0, v0
    li   v0, 0
    syscall
f:  li v0, 9
    ret
)");
  EXPECT_EQ(R.Reason, ExitReason::Exited);
  EXPECT_EQ(R.ExitCode, 9);
}

TEST(GuestVMTest, TimingChargesCycles) {
  arch::TimingModel Timing(arch::simpleModel());
  ExecOptions Opts;
  Opts.Timing = &Timing;
  RunResult R = runProgram("main:\n nop\n nop\n halt\n", Opts);
  EXPECT_EQ(R.Reason, ExitReason::Halted);
  // 2 nops (1 cycle each) + halt's syscall-free stop; at least 2 cycles.
  EXPECT_GE(Timing.totalCycles(), 2u);
  EXPECT_EQ(Timing.cycles(arch::CycleCategory::Dispatch), 0u);
}
