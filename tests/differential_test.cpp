//===- tests/differential_test.cpp - VM vs SDT property tests ----*- C++ -*-===//
//
// Part of StrataIB.
//
// The core correctness property of any SDT: translated execution is
// observably identical to native execution. Random programs (seeded,
// terminating by construction) sweep every mechanism configuration.
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"
#include "arch/Timing.h"
#include "cachemgr/CachePolicy.h"
#include "core/SdtEngine.h"
#include "vm/GuestVM.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::core;
using namespace sdt::vm;
using namespace sdt::workloads;

namespace {

/// One named SDT configuration for the sweep.
struct ConfigCase {
  const char *Name;
  SdtOptions Opts;
};

std::vector<ConfigCase> allConfigs() {
  std::vector<ConfigCase> Cases;

  auto add = [&Cases](const char *Name, auto Mutate) {
    SdtOptions O;
    Mutate(O);
    Cases.push_back({Name, O});
  };

  add("dispatcher",
      [](SdtOptions &O) { O.Mechanism = IBMechanism::Dispatcher; });
  add("ibtc_shared", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.IbtcShared = true;
  });
  add("ibtc_private", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.IbtcShared = false;
    O.IbtcEntries = 64;
  });
  add("ibtc_tiny_table", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.IbtcEntries = 2; // Constant conflict pressure.
  });
  add("ibtc_adaptive", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.IbtcEntries = 4;
    O.IbtcAdaptive = true;
  });
  add("ibtc_4way", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.IbtcEntries = 16;
    O.IbtcAssociativity = 4;
  });
  add("ibtc_fullflags", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.FullFlagSave = true;
  });
  add("ibtc_xorfold", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.IbtcHash = HashKind::XorFold;
  });
  add("ibtc_fibonacci", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.IbtcHash = HashKind::Fibonacci;
  });
  add("sieve", [](SdtOptions &O) { O.Mechanism = IBMechanism::Sieve; });
  add("mixed_per_class", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.JumpMechanism = IBMechanism::Sieve;
    O.CallMechanism = IBMechanism::Dispatcher;
  });
  add("sieve_tiny", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Sieve;
    O.SieveBuckets = 2; // Long chains.
  });
  add("inline1_ibtc", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.InlineCacheDepth = 1;
  });
  add("inline3_sieve", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Sieve;
    O.InlineCacheDepth = 3;
  });
  add("return_cache", [](SdtOptions &O) {
    O.Returns = ReturnStrategy::ReturnCache;
    O.ReturnCacheEntries = 16;
  });
  add("fast_returns", [](SdtOptions &O) {
    O.Returns = ReturnStrategy::FastReturn;
  });
  add("shadow_stack", [](SdtOptions &O) {
    O.Returns = ReturnStrategy::ShadowStack;
  });
  add("shadow_stack_tiny", [](SdtOptions &O) {
    O.Returns = ReturnStrategy::ShadowStack;
    O.ShadowStackDepth = 2; // Constant wrap pressure.
  });
  add("fast_returns_flushy", [](SdtOptions &O) {
    O.Returns = ReturnStrategy::FastReturn;
    O.FragmentCacheBytes = 4096;
    O.MaxFragmentInstrs = 6;
  });
  add("nolink", [](SdtOptions &O) { O.LinkFragments = false; });
  add("traces", [](SdtOptions &O) {
    O.EnableTraces = true;
    O.TraceHotThreshold = 5; // Trace aggressively.
    O.MaxTraceBlocks = 8;
  });
  add("traces_fastret", [](SdtOptions &O) {
    O.EnableTraces = true;
    O.TraceHotThreshold = 3;
    O.Returns = ReturnStrategy::FastReturn;
  });
  add("traces_flushy", [](SdtOptions &O) {
    O.EnableTraces = true;
    O.TraceHotThreshold = 3;
    O.FragmentCacheBytes = 4096;
    O.MaxFragmentInstrs = 6;
  });
  add("traces_shadow_stack", [](SdtOptions &O) {
    O.EnableTraces = true;
    O.TraceHotThreshold = 4;
    O.Returns = ReturnStrategy::ShadowStack;
    O.ShadowStackDepth = 4; // Wrap pressure under traces.
  });
  add("instrumented", [](SdtOptions &O) {
    O.InstrumentBlockCounts = true;
    O.Returns = ReturnStrategy::FastReturn;
  });
  add("flushy_small_fragments", [](SdtOptions &O) {
    O.FragmentCacheBytes = 4096;
    O.MaxFragmentInstrs = 4;
  });
  add("fifo_evict", [](SdtOptions &O) {
    O.CachePolicy = cachemgr::CachePolicyKind::Fifo;
    O.FragmentCacheBytes = 4096;
    O.MaxFragmentInstrs = 6;
  });
  add("generational_evict", [](SdtOptions &O) {
    O.CachePolicy = cachemgr::CachePolicyKind::Generational;
    O.FragmentCacheBytes = 4096;
    O.MaxFragmentInstrs = 6;
    O.CacheGenPromoteExecs = 4;
  });
  add("fifo_evict_fastret", [](SdtOptions &O) {
    O.CachePolicy = cachemgr::CachePolicyKind::Fifo;
    O.FragmentCacheBytes = 4096;
    O.MaxFragmentInstrs = 6;
    O.Returns = ReturnStrategy::FastReturn;
  });
  add("fifo_evict_traces", [](SdtOptions &O) {
    O.CachePolicy = cachemgr::CachePolicyKind::Fifo;
    O.FragmentCacheBytes = 4096;
    O.MaxFragmentInstrs = 6;
    O.EnableTraces = true;
    O.TraceHotThreshold = 3;
  });
  return Cases;
}

struct DiffParam {
  ConfigCase Config;
  uint64_t Seed;
};

class DifferentialTest : public ::testing::TestWithParam<DiffParam> {};

} // namespace

TEST_P(DifferentialTest, TranslatedExecutionIsTransparent) {
  const DiffParam &P = GetParam();
  Expected<isa::Program> Program = generateRandomProgram(P.Seed);
  ASSERT_TRUE(static_cast<bool>(Program));

  ExecOptions Exec;
  Exec.MaxInstructions = 5000000;

  auto VM = GuestVM::create(*Program, Exec);
  ASSERT_TRUE(static_cast<bool>(VM));
  RunResult Native = (*VM)->run();
  ASSERT_TRUE(Native.finishedNormally())
      << "random program should terminate: " << Native.FaultMessage;

  auto Engine = SdtEngine::create(*Program, P.Config.Opts, Exec);
  ASSERT_TRUE(static_cast<bool>(Engine));
  RunResult Translated = (*Engine)->run();

  EXPECT_EQ(Native.Reason, Translated.Reason)
      << Translated.FaultMessage;
  EXPECT_EQ(Native.ExitCode, Translated.ExitCode);
  EXPECT_EQ(Native.Output, Translated.Output);
  EXPECT_EQ(Native.Checksum, Translated.Checksum);
  EXPECT_EQ(Native.InstructionCount, Translated.InstructionCount);
}

static std::vector<DiffParam> makeParams() {
  std::vector<DiffParam> Params;
  for (const ConfigCase &C : allConfigs())
    for (uint64_t Seed = 1; Seed <= 8; ++Seed)
      Params.push_back({C, Seed});
  return Params;
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, DifferentialTest, ::testing::ValuesIn(makeParams()),
    [](const ::testing::TestParamInfo<DiffParam> &Info) {
      return std::string(Info.param.Config.Name) + "_seed" +
             std::to_string(Info.param.Seed);
    });

// Larger, deeper programs on a smaller config subset.
class DeepDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeepDifferentialTest, BigProgramsStayTransparent) {
  RandomProgramOptions RpOpts;
  RpOpts.NumFunctions = 10;
  RpOpts.ItemsPerFunction = 10;
  RpOpts.MainIterations = 5;
  Expected<isa::Program> Program =
      generateRandomProgram(GetParam(), RpOpts);
  ASSERT_TRUE(static_cast<bool>(Program));

  ExecOptions Exec;
  Exec.MaxInstructions = 20000000;
  auto VM = GuestVM::create(*Program, Exec);
  ASSERT_TRUE(static_cast<bool>(VM));
  RunResult Native = (*VM)->run();
  ASSERT_TRUE(Native.finishedNormally()) << Native.FaultMessage;

  SdtOptions Opts;
  Opts.Returns = ReturnStrategy::FastReturn;
  Opts.InlineCacheDepth = 1;
  auto Engine = SdtEngine::create(*Program, Opts, Exec);
  ASSERT_TRUE(static_cast<bool>(Engine));
  RunResult Translated = (*Engine)->run();
  EXPECT_EQ(Native.Checksum, Translated.Checksum);
  EXPECT_EQ(Native.InstructionCount, Translated.InstructionCount);
  EXPECT_EQ(Native.Reason, Translated.Reason) << Translated.FaultMessage;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepDifferentialTest,
                         ::testing::Range<uint64_t>(100, 112));

// The eviction-policy pinning tests: a policy may only change *when*
// translations are thrown away, never what the guest observes.

namespace {

const cachemgr::CachePolicyKind AllPolicies[] = {
    cachemgr::CachePolicyKind::FullFlush,
    cachemgr::CachePolicyKind::Fifo,
    cachemgr::CachePolicyKind::Generational,
};

} // namespace

// Guest-visible results are bit-identical across all policies at every
// swept capacity (including ones tight enough to evict constantly).
// Big-program seeds: 101/102 overflow a 4096-byte cache many times
// (dozens of real partial evictions), 103 a few, so every policy's
// eviction path actually runs.
TEST(CachePolicyDifferentialTest, OutputIdenticalAcrossPoliciesAndCapacities) {
  RandomProgramOptions RpOpts;
  RpOpts.NumFunctions = 10;
  RpOpts.ItemsPerFunction = 10;
  RpOpts.MainIterations = 5;
  const uint32_t Capacities[] = {4096, 16384, 1u << 20};
  for (uint64_t Seed = 101; Seed <= 103; ++Seed) {
    Expected<isa::Program> Program = generateRandomProgram(Seed, RpOpts);
    ASSERT_TRUE(static_cast<bool>(Program));

    ExecOptions Exec;
    Exec.MaxInstructions = 20000000;
    auto VM = GuestVM::create(*Program, Exec);
    ASSERT_TRUE(static_cast<bool>(VM));
    RunResult Native = (*VM)->run();
    ASSERT_TRUE(Native.finishedNormally()) << Native.FaultMessage;

    for (uint32_t Cap : Capacities) {
      for (cachemgr::CachePolicyKind Policy : AllPolicies) {
        SdtOptions Opts;
        Opts.CachePolicy = Policy;
        Opts.FragmentCacheBytes = Cap;
        Opts.MaxFragmentInstrs = 6; // Many small fragments: real pressure.
        Opts.CacheGenPromoteExecs = 4;

        auto Engine = SdtEngine::create(*Program, Opts, Exec);
        ASSERT_TRUE(static_cast<bool>(Engine));
        RunResult Translated = (*Engine)->run();

        std::string Label = std::string(cachemgr::cachePolicyName(Policy)) +
                            " @" + std::to_string(Cap) + " seed " +
                            std::to_string(Seed);
        EXPECT_EQ(Native.Reason, Translated.Reason)
            << Label << ": " << Translated.FaultMessage;
        EXPECT_EQ(Native.Output, Translated.Output) << Label;
        EXPECT_EQ(Native.Checksum, Translated.Checksum) << Label;
        EXPECT_EQ(Native.InstructionCount, Translated.InstructionCount)
            << Label;
      }
    }
  }
}

// With an effectively unbounded cache no policy ever has to act, so
// selecting one must not change the timing model's cycle count at all —
// the subsystem is exactly free until pressure exists. (FullFlush here
// is the pre-subsystem configuration, so this also pins the other
// policies to the pre-PR cycle counts.)
TEST(CachePolicyDifferentialTest, UnboundedCapacityCyclesIdentical) {
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    Expected<isa::Program> Program = generateRandomProgram(Seed);
    ASSERT_TRUE(static_cast<bool>(Program));

    std::vector<uint64_t> Cycles;
    for (cachemgr::CachePolicyKind Policy : AllPolicies) {
      arch::TimingModel Timing(arch::simpleModel());
      ExecOptions Exec;
      Exec.MaxInstructions = 5000000;
      Exec.Timing = &Timing;

      SdtOptions Opts;
      Opts.CachePolicy = Policy; // Default (8MB) capacity: never full.
      auto Engine = SdtEngine::create(*Program, Opts, Exec);
      ASSERT_TRUE(static_cast<bool>(Engine));
      RunResult Translated = (*Engine)->run();
      ASSERT_TRUE(Translated.finishedNormally())
          << Translated.FaultMessage;

      const SdtStats &S = (*Engine)->stats();
      EXPECT_EQ(S.Flushes, 0u);
      EXPECT_EQ(S.PartialEvictions, 0u);
      Cycles.push_back(Timing.totalCycles());
    }
    EXPECT_EQ(Cycles[0], Cycles[1]) << "fifo diverged, seed " << Seed;
    EXPECT_EQ(Cycles[0], Cycles[2])
        << "generational diverged, seed " << Seed;
  }
}

// Random programs must be bit-identical across generator invocations.
TEST(RandomProgramTest, GenerationDeterministic) {
  EXPECT_EQ(generateRandomAssembly(42), generateRandomAssembly(42));
  EXPECT_NE(generateRandomAssembly(42), generateRandomAssembly(43));
}

TEST(RandomProgramTest, FeatureTogglesRespected) {
  RandomProgramOptions NoInd;
  NoInd.AllowIndirectCalls = false;
  NoInd.AllowIndirectJumps = false;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Expected<isa::Program> P = generateRandomProgram(Seed, NoInd);
    ASSERT_TRUE(static_cast<bool>(P));
    auto VM = GuestVM::create(*P, ExecOptions());
    ASSERT_TRUE(static_cast<bool>(VM));
    RunResult R = (*VM)->run();
    EXPECT_TRUE(R.finishedNormally());
    EXPECT_EQ(R.Cti.IndirectCalls, 0u);
    EXPECT_EQ(R.Cti.IndirectJumps, 0u);
  }
}
