//===- tests/opt_superblock_test.cpp - Superblock optimizer tests *- C++ -*-===//
//
// Part of StrataIB.
//
// The trace-optimization pipeline (src/opt) and speculative IB-target
// inlining under test: pass-level structure checks against hand-written
// guests, guest-visible identity across every pass/speculation
// configuration (including under eviction pressure and self-modifying
// code), and the coherence regression — a guest store into a
// speculatively-inlined target's source range must invalidate the trace
// that inlined it.
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"
#include "arch/Timing.h"
#include "assembler/Assembler.h"
#include "cachemgr/CachePolicy.h"
#include "core/DispatcherHandler.h"
#include "core/SdtEngine.h"
#include "core/Translator.h"
#include "trace/TraceSink.h"
#include "vm/GuestMemory.h"
#include "vm/GuestVM.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace sdt;
using namespace sdt::core;
using namespace sdt::isa;
using namespace sdt::vm;
using namespace sdt::workloads;

namespace {

/// Assembles \p Src, loads it, and exposes a ready Translator (same
/// shape as core_translator_test, plus per-test SdtOptions).
struct OptTraceFixture : public ::testing::Test {
  void build(const char *Src, SdtOptions TheOpts = {}) {
    Expected<Program> P = assembler::assemble(Src);
    ASSERT_TRUE(static_cast<bool>(P)) << P.error().message();
    Prog = std::make_unique<Program>(std::move(*P));
    Memory = std::make_unique<vm::GuestMemory>();
    ASSERT_TRUE(Memory->loadProgram(*Prog));
    Decoder = std::make_unique<vm::DecodeCache>(
        *Memory, Prog->loadAddress(),
        static_cast<uint32_t>(Prog->image().size()) & ~3u);
    Opts = TheOpts;
    Cache = std::make_unique<FragmentCache>(Opts.FragmentCacheBytes);
    Handler = std::make_unique<DispatcherHandler>();
    Xlate = std::make_unique<Translator>(*Decoder, *Cache, Opts);
    Xlate->setHandlers(Handler.get(), Handler.get());
  }

  const Fragment &translateAt(uint32_t Pc) {
    Expected<HostLoc> Loc = Xlate->translate(Pc, nullptr, Stats);
    EXPECT_TRUE(static_cast<bool>(Loc))
        << (Loc ? "" : Loc.error().message());
    return Cache->fragment(Loc->Frag);
  }

  /// Options with the optimizer on but every pass off — tests switch on
  /// exactly the passes they assert about.
  static SdtOptions optBase() {
    SdtOptions O;
    O.OptimizeTraces = true;
    O.OptConstForward = false;
    O.OptDeadLink = false;
    O.OptElideGlue = false;
    O.OptOutlineStubs = false;
    O.OptCoalesceFlags = false;
    return O;
  }

  std::unique_ptr<Program> Prog;
  std::unique_ptr<vm::GuestMemory> Memory;
  std::unique_ptr<vm::DecodeCache> Decoder;
  std::unique_ptr<FragmentCache> Cache;
  std::unique_ptr<DispatcherHandler> Handler;
  std::unique_ptr<Translator> Xlate;
  SdtOptions Opts;
  SdtStats Stats;
};

std::vector<HostOpKind> kindsOf(const Fragment &F) {
  std::vector<HostOpKind> Kinds;
  for (const HostInstr &HI : F.Code)
    Kinds.push_back(HI.Kind);
  return Kinds;
}

// The loop whose unoptimized trace is pinned by
// TranslatorFixture.TraceLinearisesLoopBody: addi / j mid / addi / bnez.
const char *LoopSrc = R"(
main:
loop:
    addi t1, t1, 1
    j    mid
mid:
    addi t0, t0, -1
    bnez t0, loop
    halt
)";

} // namespace

//===----------------------------------------------------------------------===//
// Pass-level structure
//===----------------------------------------------------------------------===//

TEST_F(OptTraceFixture, GlueElisionFoldsJumpIntoSuccessor) {
  SdtOptions O = optBase();
  O.OptElideGlue = true;
  build(LoopSrc, O);
  translateAt(0x1000);
  Expected<HostLoc> Trace = Xlate->buildTrace(
      0x1000, {true}, 2, Translator::TraceEnd::CtiBudget, nullptr, Stats);
  ASSERT_TRUE(static_cast<bool>(Trace));
  const Fragment &F = Cache->fragment(Trace->Frag);
  // The Elided marker for `j mid` is gone; its retirement rides on the
  // second addi.
  ASSERT_EQ(kindsOf(F),
            (std::vector<HostOpKind>{HostOpKind::Guest, HostOpKind::Guest,
                                     HostOpKind::TraceBranch,
                                     HostOpKind::ExitStub,
                                     HostOpKind::ExitStub}));
  EXPECT_EQ(F.Code[0].ElidedJumps, 0u);
  EXPECT_EQ(F.Code[1].ElidedJumps, 1u);
  // OffTraceIndex was remapped across the removed op.
  EXPECT_EQ(F.Code[2].OffTraceIndex, 3u);
  EXPECT_EQ(F.Code[3].TargetGuest, 0x1010u); // Off-trace fall-through.
  EXPECT_EQ(F.Code[4].TargetGuest, 0x1000u); // Loop close.
  EXPECT_EQ(Stats.TraceGlueElided, 1u);
  EXPECT_EQ(Stats.TracesOptimized, 1u);
}

TEST_F(OptTraceFixture, OutliningMovesOffTraceStubToTail) {
  SdtOptions O = optBase();
  O.OptElideGlue = true;
  O.OptOutlineStubs = true;
  build(LoopSrc, O);
  translateAt(0x1000);
  Expected<HostLoc> Trace = Xlate->buildTrace(
      0x1000, {true}, 2, Translator::TraceEnd::CtiBudget, nullptr, Stats);
  ASSERT_TRUE(static_cast<bool>(Trace));
  const Fragment &F = Cache->fragment(Trace->Frag);
  // The off-trace stub no longer sits between the branch and the
  // loop-close stub: the hot line is [addi, addi, bnez, close].
  ASSERT_EQ(kindsOf(F),
            (std::vector<HostOpKind>{HostOpKind::Guest, HostOpKind::Guest,
                                     HostOpKind::TraceBranch,
                                     HostOpKind::ExitStub,
                                     HostOpKind::ExitStub}));
  EXPECT_EQ(F.Code[2].OffTraceIndex, 4u);
  EXPECT_EQ(F.Code[3].TargetGuest, 0x1000u); // Close stub first now.
  EXPECT_EQ(F.Code[4].TargetGuest, 0x1010u); // Cold stub at the tail.
  EXPECT_LT(F.Code[3].HostAddr, F.Code[4].HostAddr);
  EXPECT_EQ(Stats.TraceStubsOutlined, 1u);
}

TEST_F(OptTraceFixture, ConstForwardingFoldsKnownAlu) {
  SdtOptions O = optBase();
  O.OptConstForward = true;
  build(R"(
main:
loop:
    li   t0, 6
    li   t1, 7
    mul  t2, t0, t1
    j    loop
)",
        O);
  translateAt(0x1000);
  Expected<HostLoc> Trace = Xlate->buildTrace(
      0x1000, {}, 1, Translator::TraceEnd::CtiBudget, nullptr, Stats);
  ASSERT_TRUE(static_cast<bool>(Trace));
  const Fragment &F = Cache->fragment(Trace->Frag);
  // li expands to lui+ori; all five ALU ops have provable results.
  ASSERT_EQ(kindsOf(F),
            (std::vector<HostOpKind>{HostOpKind::Guest, HostOpKind::Guest,
                                     HostOpKind::Guest, HostOpKind::Guest,
                                     HostOpKind::Guest, HostOpKind::Elided,
                                     HostOpKind::ExitStub}));
  EXPECT_TRUE(F.Code[4].Folded);
  EXPECT_EQ(F.Code[4].FoldedValue, 42u); // mul of forwarded constants
  EXPECT_EQ(Stats.TraceConstFolds, 5u);
}

TEST_F(OptTraceFixture, DeadLinkKilledWhenOverwrittenUnreadFirst) {
  SdtOptions O = optBase();
  O.OptDeadLink = true;
  build(R"(
main:
    jal f
    halt
f:
    jal g
    halt
g:
    ret
)",
        O);
  translateAt(0x1000);
  // Path: jal f, jal g, ret — the first link store dies at the second.
  Expected<HostLoc> Trace = Xlate->buildTrace(
      0x1000, {}, 2, Translator::TraceEnd::AtIB, nullptr, Stats);
  ASSERT_TRUE(static_cast<bool>(Trace));
  const Fragment &F = Cache->fragment(Trace->Frag);
  ASSERT_EQ(kindsOf(F),
            (std::vector<HostOpKind>{HostOpKind::SetLink, HostOpKind::SetLink,
                                     HostOpKind::IBLookup}));
  EXPECT_TRUE(F.Code[0].LinkDead);
  EXPECT_FALSE(F.Code[1].LinkDead); // read by the ret's IB site
  EXPECT_EQ(hostInstrBytes(F.Code[0]), 0u);
  EXPECT_EQ(F.Code[1].HostAddr, F.Code[0].HostAddr);
  EXPECT_EQ(Stats.TraceDeadLinks, 1u);
}

TEST_F(OptTraceFixture, DeadLinkGatedOffUnderShadowStack) {
  SdtOptions O = optBase();
  O.OptDeadLink = true;
  O.Returns = ReturnStrategy::ShadowStack;
  build(R"(
main:
    jal f
    halt
f:
    jal g
    halt
g:
    ret
)",
        O);
  translateAt(0x1000);
  Expected<HostLoc> Trace = Xlate->buildTrace(
      0x1000, {}, 2, Translator::TraceEnd::AtIB, nullptr, Stats);
  ASSERT_TRUE(static_cast<bool>(Trace));
  const Fragment &F = Cache->fragment(Trace->Frag);
  // Skipping the push would desynchronise the shadow stack's pops.
  EXPECT_FALSE(F.Code[0].LinkDead);
  EXPECT_EQ(Stats.TraceDeadLinks, 0u);
}

//===----------------------------------------------------------------------===//
// Speculative IB-target inlining (translator level)
//===----------------------------------------------------------------------===//

namespace {

const char *SpecLoopSrc = R"(
main:
loop:
    addi s1, s1, 1
    jr   t2
tgt:
    addi s2, s2, 1
    bnez s1, loop
    halt
)";

} // namespace

TEST_F(OptTraceFixture, SpecGuardCrossesMonomorphicIB) {
  SdtOptions O; // optimizer off: raw guard emission
  build(SpecLoopSrc, O);
  translateAt(0x1000);
  // jr t2 recorded monomorphic to tgt (0x1008): guard + fallback site,
  // then the trace continues through the target block.
  Expected<HostLoc> Trace = Xlate->buildTrace(
      0x1000, {true}, {0x1008}, 2, Translator::TraceEnd::CtiBudget, nullptr,
      Stats);
  ASSERT_TRUE(static_cast<bool>(Trace));
  const Fragment &F = Cache->fragment(Trace->Frag);
  ASSERT_EQ(kindsOf(F),
            (std::vector<HostOpKind>{
                HostOpKind::Guest,       // addi s1
                HostOpKind::SpecGuard,   // jr t2, predicted 0x1008
                HostOpKind::IBLookup,    // fallback site (guard miss)
                HostOpKind::Guest,       // addi s2 — inlined target block
                HostOpKind::TraceBranch, // bnez back to head
                HostOpKind::ExitStub,    // off-trace fall-through (halt)
                HostOpKind::ExitStub})); // loop close
  const HostInstr &Guard = F.Code[1];
  EXPECT_EQ(Guard.TargetGuest, 0x1008u);
  EXPECT_EQ(Guard.OffTraceIndex, 2u);
  EXPECT_EQ(Guard.SiteClass, IBClass::Jump);
  EXPECT_FALSE(Guard.CountsAsGuest); // retired manually on guard hits
  const HostInstr &Fallback = F.Code[2];
  EXPECT_TRUE(Fallback.SpecFallback);
  EXPECT_TRUE(Fallback.CountsAsGuest);
  EXPECT_EQ(Fallback.SiteClass, IBClass::Jump);
  EXPECT_EQ(Stats.SpecGuardsEmitted, 1u);
  // The head BB's own jr site plus the trace's fallback site.
  ASSERT_EQ(Xlate->sites().size(), 2u);
  // The trace's guest hull covers the inlined target block, so an SMC
  // write into tgt invalidates this trace (the coherence property the
  // engine-level regression below depends on).
  EXPECT_LE(F.GuestLow, 0x1000u);
  EXPECT_GE(F.GuestHigh, 0x1010u);
}

TEST_F(OptTraceFixture, OutliningMovesSpecFallbackToTail) {
  SdtOptions O = optBase();
  O.OptElideGlue = true;
  O.OptOutlineStubs = true;
  build(SpecLoopSrc, O);
  translateAt(0x1000);
  Expected<HostLoc> Trace = Xlate->buildTrace(
      0x1000, {true}, {0x1008}, 2, Translator::TraceEnd::CtiBudget, nullptr,
      Stats);
  ASSERT_TRUE(static_cast<bool>(Trace));
  const Fragment &F = Cache->fragment(Trace->Frag);
  // Hot straight line first, cold fallback site + off-trace stub last.
  ASSERT_EQ(kindsOf(F),
            (std::vector<HostOpKind>{
                HostOpKind::Guest, HostOpKind::SpecGuard, HostOpKind::Guest,
                HostOpKind::TraceBranch, HostOpKind::ExitStub,
                HostOpKind::IBLookup, HostOpKind::ExitStub}));
  EXPECT_EQ(F.Code[1].OffTraceIndex, 5u); // guard -> outlined fallback
  EXPECT_TRUE(F.Code[5].SpecFallback);
  EXPECT_EQ(F.Code[3].OffTraceIndex, 6u); // branch -> outlined stub
  EXPECT_EQ(F.Code[4].TargetGuest, 0x1000u);
  EXPECT_EQ(Stats.TraceStubsOutlined, 2u);
}

//===----------------------------------------------------------------------===//
// Trace-end edge cases
//===----------------------------------------------------------------------===//

TEST_F(OptTraceFixture, AtStopTraceEndsOnHalt) {
  build(R"(
main:
    j    body
body:
    nop
    halt
)");
  translateAt(0x1000);
  Expected<HostLoc> Trace = Xlate->buildTrace(
      0x1000, {}, 1, Translator::TraceEnd::AtStop, nullptr, Stats);
  ASSERT_TRUE(static_cast<bool>(Trace));
  const Fragment &F = Cache->fragment(Trace->Frag);
  ASSERT_EQ(kindsOf(F),
            (std::vector<HostOpKind>{HostOpKind::Elided, HostOpKind::Guest,
                                     HostOpKind::HaltOp}));
}

TEST_F(OptTraceFixture, AtStopTraceWithGlueElision) {
  SdtOptions O = optBase();
  O.OptElideGlue = true;
  build(R"(
main:
    j    body
body:
    nop
    halt
)",
        O);
  translateAt(0x1000);
  Expected<HostLoc> Trace = Xlate->buildTrace(
      0x1000, {}, 1, Translator::TraceEnd::AtStop, nullptr, Stats);
  ASSERT_TRUE(static_cast<bool>(Trace));
  const Fragment &F = Cache->fragment(Trace->Frag);
  // The leading elided jump folds into the nop's retirement count.
  ASSERT_EQ(kindsOf(F),
            (std::vector<HostOpKind>{HostOpKind::Guest, HostOpKind::HaltOp}));
  EXPECT_EQ(F.Code[0].ElidedJumps, 1u);
}

TEST_F(OptTraceFixture, PassesPreserveRetiredInstructionAccounting) {
  // The optimized trace must promise exactly the same number of retired
  // guest instructions as the unoptimized one: CountsAsGuest ops plus
  // folded ElidedJumps.
  auto retirements = [](const Fragment &F) {
    uint64_t N = 0;
    for (const HostInstr &HI : F.Code) {
      if (HI.CountsAsGuest)
        ++N;
      N += HI.ElidedJumps;
      // SpecGuard hits retire the crossing manually.
      if (HI.Kind == HostOpKind::SpecGuard)
        ++N;
    }
    return N;
  };

  build(SpecLoopSrc);
  translateAt(0x1000);
  Expected<HostLoc> Plain = Xlate->buildTrace(
      0x1000, {true}, {0x1008}, 2, Translator::TraceEnd::CtiBudget, nullptr,
      Stats);
  ASSERT_TRUE(static_cast<bool>(Plain));
  uint64_t PlainCount = retirements(Cache->fragment(Plain->Frag));

  SdtOptions O;
  O.OptimizeTraces = true; // all passes on
  build(SpecLoopSrc, O);
  translateAt(0x1000);
  SdtStats S2;
  Expected<HostLoc> Opt = Xlate->buildTrace(
      0x1000, {true}, {0x1008}, 2, Translator::TraceEnd::CtiBudget, nullptr,
      S2);
  ASSERT_TRUE(static_cast<bool>(Opt));
  // The fallback IBLookup also counts, but it and the guard can never
  // both retire on one crossing — subtract the double-promise.
  uint64_t OptCount =
      retirements(Cache->fragment(Opt->Frag)) - S2.SpecGuardsEmitted;
  EXPECT_EQ(OptCount, PlainCount - Stats.SpecGuardsEmitted);
}

//===----------------------------------------------------------------------===//
// Engine-level differential sweep: pass/speculation configs × workloads
//===----------------------------------------------------------------------===//

namespace {

struct OptConfig {
  const char *Name;
  SdtOptions Opts;
};

std::vector<OptConfig> optConfigs() {
  std::vector<OptConfig> Cases;
  auto add = [&Cases](const char *Name, auto Mutate) {
    SdtOptions O;
    O.EnableTraces = true;
    O.TraceHotThreshold = 4;
    Mutate(O);
    Cases.push_back({Name, O});
  };
  add("traces_noopt", [](SdtOptions &) {});
  add("opt_all", [](SdtOptions &O) { O.OptimizeTraces = true; });
  add("opt_noconst", [](SdtOptions &O) {
    O.OptimizeTraces = true;
    O.OptConstForward = false;
  });
  add("opt_nodeadlink", [](SdtOptions &O) {
    O.OptimizeTraces = true;
    O.OptDeadLink = false;
  });
  add("opt_noglue", [](SdtOptions &O) {
    O.OptimizeTraces = true;
    O.OptElideGlue = false;
  });
  add("opt_nooutline", [](SdtOptions &O) {
    O.OptimizeTraces = true;
    O.OptOutlineStubs = false;
  });
  add("opt_nocoalesce", [](SdtOptions &O) {
    O.OptimizeTraces = true;
    O.OptCoalesceFlags = false;
  });
  add("spec_noopt", [](SdtOptions &O) {
    O.TraceSpeculate = true;
    O.TraceSpeculateThreshold = 4;
  });
  add("opt_spec", [](SdtOptions &O) {
    O.OptimizeTraces = true;
    O.TraceSpeculate = true;
    O.TraceSpeculateThreshold = 4;
  });
  add("opt_spec_sieve", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Sieve;
    O.OptimizeTraces = true;
    O.TraceSpeculate = true;
    O.TraceSpeculateThreshold = 4;
  });
  add("opt_spec_inline2", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.InlineCacheDepth = 2;
    O.OptimizeTraces = true;
    O.TraceSpeculate = true;
    O.TraceSpeculateThreshold = 4;
  });
  add("opt_spec_retcache", [](SdtOptions &O) {
    O.Returns = ReturnStrategy::ReturnCache;
    O.ReturnCacheEntries = 16;
    O.OptimizeTraces = true;
    O.TraceSpeculate = true;
    O.TraceSpeculateThreshold = 4;
  });
  add("opt_spec_fastret", [](SdtOptions &O) {
    O.Returns = ReturnStrategy::FastReturn;
    O.OptimizeTraces = true;
    O.TraceSpeculate = true;
    O.TraceSpeculateThreshold = 4;
  });
  add("opt_spec_shadow", [](SdtOptions &O) {
    O.Returns = ReturnStrategy::ShadowStack;
    O.OptimizeTraces = true;
    O.TraceSpeculate = true;
    O.TraceSpeculateThreshold = 4;
  });
  // Truncated recordings: every trace ends at the block budget.
  add("opt_spec_maxblocks2", [](SdtOptions &O) {
    O.MaxTraceBlocks = 2;
    O.OptimizeTraces = true;
    O.TraceSpeculate = true;
    O.TraceSpeculateThreshold = 4;
  });
  // Eviction pressure: optimized/speculative traces are built, evicted,
  // and rebuilt while the guest runs.
  add("opt_spec_fifo4k", [](SdtOptions &O) {
    O.CachePolicy = cachemgr::CachePolicyKind::Fifo;
    O.FragmentCacheBytes = 4096;
    O.MaxFragmentInstrs = 6;
    O.OptimizeTraces = true;
    O.TraceSpeculate = true;
    O.TraceSpeculateThreshold = 4;
    O.TraceHotThreshold = 3;
  });
  add("opt_spec_flush4k", [](SdtOptions &O) {
    O.CachePolicy = cachemgr::CachePolicyKind::FullFlush;
    O.FragmentCacheBytes = 4096;
    O.MaxFragmentInstrs = 6;
    O.OptimizeTraces = true;
    O.TraceSpeculate = true;
    O.TraceSpeculateThreshold = 4;
    O.TraceHotThreshold = 3;
  });
  return Cases;
}

struct OptDiffParam {
  const char *Workload;
  OptConfig Config;
};

class OptDifferentialTest : public ::testing::TestWithParam<OptDiffParam> {};

} // namespace

TEST_P(OptDifferentialTest, GuestVisibleIdentity) {
  const OptDiffParam &P = GetParam();
  Expected<isa::Program> Program = buildWorkload(P.Workload, 1);
  ASSERT_TRUE(static_cast<bool>(Program))
      << (Program ? "" : Program.error().message());

  ExecOptions Exec;
  Exec.MaxInstructions = 50000000;
  auto VM = GuestVM::create(*Program, Exec);
  ASSERT_TRUE(static_cast<bool>(VM));
  RunResult Native = (*VM)->run();
  ASSERT_TRUE(Native.finishedNormally()) << Native.FaultMessage;

  auto Engine = SdtEngine::create(*Program, P.Config.Opts, Exec);
  ASSERT_TRUE(static_cast<bool>(Engine));
  RunResult Translated = (*Engine)->run();

  EXPECT_EQ(Native.Reason, Translated.Reason) << Translated.FaultMessage;
  EXPECT_EQ(Native.ExitCode, Translated.ExitCode);
  EXPECT_EQ(Native.Output, Translated.Output);
  EXPECT_EQ(Native.Checksum, Translated.Checksum);
  EXPECT_EQ(Native.InstructionCount, Translated.InstructionCount);
  EXPECT_GT((*Engine)->stats().TracesBuilt, 0u);
  if (P.Config.Opts.OptimizeTraces)
    EXPECT_EQ((*Engine)->stats().TracesOptimized,
              (*Engine)->stats().TracesBuilt);
}

static std::vector<OptDiffParam> makeOptDiffParams() {
  std::vector<OptDiffParam> Params;
  // parser/eon: ind-jump and ind-call heavy (speculation engages);
  // crafty: return-dominated (exercises the per-strategy gates);
  // smctable: self-modifying jump tables under every config.
  for (const char *W : {"parser", "eon", "crafty", "smctable"})
    for (const OptConfig &C : optConfigs())
      Params.push_back({W, C});
  return Params;
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, OptDifferentialTest, ::testing::ValuesIn(makeOptDiffParams()),
    [](const ::testing::TestParamInfo<OptDiffParam> &Info) {
      return std::string(Info.param.Workload) + "_" +
             Info.param.Config.Name;
    });

//===----------------------------------------------------------------------===//
// Speculation smoke: guards engage and the optimizer never costs cycles
//===----------------------------------------------------------------------===//

TEST(OptSuperblockTest, SpeculationEngagesOnMonomorphicWorkload) {
  Expected<isa::Program> P = buildWorkload("eon", 1);
  ASSERT_TRUE(static_cast<bool>(P));

  ExecOptions Exec;
  auto VM = GuestVM::create(*P, Exec);
  ASSERT_TRUE(static_cast<bool>(VM));
  RunResult Native = (*VM)->run();
  ASSERT_TRUE(Native.finishedNormally());

  SdtOptions Opts;
  Opts.Mechanism = IBMechanism::Ibtc;
  Opts.EnableTraces = true;
  Opts.TraceHotThreshold = 8;
  Opts.OptimizeTraces = true;
  Opts.TraceSpeculate = true;
  Opts.TraceSpeculateThreshold = 4;
  auto Engine = SdtEngine::create(*P, Opts, Exec);
  ASSERT_TRUE(static_cast<bool>(Engine));
  RunResult R = (*Engine)->run();
  ASSERT_TRUE(R.finishedNormally()) << R.FaultMessage;
  EXPECT_EQ(Native.Output, R.Output);
  EXPECT_EQ(Native.InstructionCount, R.InstructionCount);

  const SdtStats &S = (*Engine)->stats();
  EXPECT_GT(S.TracesBuilt, 0u);
  EXPECT_GT(S.TracesOptimized, 0u);
  EXPECT_GT(S.SpecGuardsEmitted, 0u);
  EXPECT_GT(S.SpecGuardHits, 0u);
}

TEST(OptSuperblockTest, OptimizerNeverAddsCycles) {
  // The redundancy passes only remove bytes and charges, so with
  // speculation off the optimized engine can never be slower. The
  // simulator is deterministic: this is an exact invariant, not a
  // statistical one.
  for (const char *W : {"parser", "crafty"}) {
    Expected<isa::Program> P = buildWorkload(W, 1);
    ASSERT_TRUE(static_cast<bool>(P));
    uint64_t Cycles[2];
    for (int Optimized = 0; Optimized != 2; ++Optimized) {
      arch::TimingModel Timing(arch::simpleModel());
      ExecOptions Exec;
      Exec.Timing = &Timing;
      SdtOptions Opts;
      Opts.EnableTraces = true;
      Opts.TraceHotThreshold = 8;
      Opts.OptimizeTraces = Optimized != 0;
      auto Engine = SdtEngine::create(*P, Opts, Exec);
      ASSERT_TRUE(static_cast<bool>(Engine));
      RunResult R = (*Engine)->run();
      ASSERT_TRUE(R.finishedNormally()) << R.FaultMessage;
      Cycles[Optimized] = Timing.totalCycles();
    }
    EXPECT_LE(Cycles[1], Cycles[0]) << W;
  }
}

//===----------------------------------------------------------------------===//
// Trace events reconcile with the new counters
//===----------------------------------------------------------------------===//

TEST(OptSuperblockTest, TraceEventsMatchOptimizerCounters) {
  Expected<isa::Program> P = buildWorkload("eon", 1);
  ASSERT_TRUE(static_cast<bool>(P));

  trace::TraceSink Sink(1 << 16);
  SdtOptions Opts;
  Opts.EnableTraces = true;
  Opts.TraceHotThreshold = 8;
  Opts.OptimizeTraces = true;
  Opts.TraceSpeculate = true;
  Opts.TraceSpeculateThreshold = 4;
  auto Engine = SdtEngine::create(*P, Opts, ExecOptions());
  ASSERT_TRUE(static_cast<bool>(Engine));
  (*Engine)->setTraceSink(&Sink);
  RunResult R = (*Engine)->run();
  ASSERT_TRUE(R.finishedNormally()) << R.FaultMessage;

  const SdtStats &S = (*Engine)->stats();
  EXPECT_GT(S.TracesOptimized, 0u);
  EXPECT_EQ(Sink.totalCount(trace::EventKind::TraceOptimized),
            S.TracesOptimized);
  EXPECT_EQ(Sink.totalCount(trace::EventKind::SpecGuardHit),
            S.SpecGuardHits);
  EXPECT_EQ(Sink.totalCount(trace::EventKind::SpecGuardMiss),
            S.SpecGuardMisses);
}

//===----------------------------------------------------------------------===//
// Coherence regression: SMC write into a speculatively-inlined target
//===----------------------------------------------------------------------===//

// The hot loop's trace speculatively inlines `tgt` (reached only through
// `jr t0`). At iteration 100 the guest rewrites tgt's addi from +1 to
// +5. The inlined copy lives inside the trace, physically far from the
// loop's own blocks — only the extended guest hull (which covers every
// walked pc, inlined targets included) lets the code-write invalidation
// find and evict the trace. An engine that kept the stale trace would
// keep adding 1 on every guard hit and exit with the wrong total.
TEST(OptSuperblockTest, SmcWriteToInlinedTargetInvalidatesTrace) {
  static const char *Src = R"(
main:
    la   t0, tgt
    la   t1, patchslot
    la   t2, tmpl
    lw   t3, 0(t2)
    li   t4, 200
    li   t5, 100
    li   s1, 0
    li   s2, 0
loop:
    addi s1, s1, 1
    jr   t0
back:
    bne  s1, t5, skip
    sw   t3, 0(t1)
skip:
    blt  s1, t4, loop
    move a0, s2
    li   v0, 0
    syscall
tgt:
patchslot:
    addi s2, s2, 1
    j    back
tmpl:
    addi s2, s2, 5
)";
  Expected<isa::Program> P = assembler::assemble(Src);
  ASSERT_TRUE(static_cast<bool>(P)) << (P ? "" : P.error().message());

  auto VM = GuestVM::create(*P, ExecOptions());
  ASSERT_TRUE(static_cast<bool>(VM));
  RunResult Native = (*VM)->run();
  ASSERT_EQ(Native.Reason, ExitReason::Exited) << Native.FaultMessage;
  // 100 iterations of +1, then 100 of +5.
  ASSERT_EQ(Native.ExitCode, 600);

  SdtOptions Opts;
  Opts.EnableTraces = true;
  Opts.TraceHotThreshold = 8;
  Opts.OptimizeTraces = true;
  Opts.TraceSpeculate = true;
  Opts.TraceSpeculateThreshold = 4;
  auto Engine = SdtEngine::create(*P, Opts, ExecOptions());
  ASSERT_TRUE(static_cast<bool>(Engine));
  RunResult Translated = (*Engine)->run();
  EXPECT_EQ(Translated.Reason, ExitReason::Exited)
      << Translated.FaultMessage;
  EXPECT_EQ(Native.ExitCode, Translated.ExitCode);
  EXPECT_EQ(Native.Checksum, Translated.Checksum);
  EXPECT_EQ(Native.InstructionCount, Translated.InstructionCount);

  const SdtStats &S = (*Engine)->stats();
  // The trace really did inline the target behind a guard and run hot...
  EXPECT_GT(S.TracesBuilt, 0u);
  EXPECT_GT(S.SpecGuardsEmitted, 0u);
  EXPECT_GT(S.SpecGuardHits, 0u);
  // ...and the patch invalidated it (trace hull covers patchslot).
  EXPECT_EQ(S.CodeWriteInvalidations, 1u);
  EXPECT_GE(S.FragmentsInvalidatedByWrite, 1u);
}
