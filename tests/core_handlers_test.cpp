//===- tests/core_handlers_test.cpp - IB mechanism tests ---------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//

#include "assembler/Assembler.h"
#include "core/DispatcherHandler.h"
#include "core/IbtcHandler.h"
#include "core/InlineCacheHandler.h"
#include "core/ReturnCacheHandler.h"
#include "core/SdtEngine.h"
#include "core/SieveHandler.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::core;

namespace {

struct HandlerFixture : public ::testing::Test {
  FragmentCache Cache{1 << 20};
  SdtOptions Opts;

  /// Registers a site and returns its id.
  uint32_t addSite(IBHandler &H, IBClass Class = IBClass::Jump) {
    uint32_t Id = NextSite++;
    SiteCode Code = H.emitSite(Id, Class, 0x1000 + Id * 4, Cache);
    EXPECT_GT(Code.Bytes, 0u);
    return Id;
  }

  uint32_t NextSite = 0;
};

using DispatcherHandlerTest = HandlerFixture;
using IbtcHandlerTest = HandlerFixture;
using SieveHandlerTest = HandlerFixture;
using ReturnCacheHandlerTest = HandlerFixture;
using InlineCacheHandlerTest = HandlerFixture;

} // namespace

// --- DispatcherHandler -------------------------------------------------

TEST_F(DispatcherHandlerTest, AlwaysMisses) {
  DispatcherHandler H;
  uint32_t S = addSite(H);
  H.record(S, 0x2000, 0x40000100, nullptr);
  LookupOutcome O = H.lookup(S, 0x2000, nullptr);
  EXPECT_FALSE(O.Hit);
  EXPECT_EQ(H.hits(), 0u);
  EXPECT_EQ(H.misses(), 1u);
}

// --- IbtcHandler ------------------------------------------------------------

TEST_F(IbtcHandlerTest, MissThenRecordThenHit) {
  IbtcHandler H(Opts);
  uint32_t S = addSite(H);
  EXPECT_FALSE(H.lookup(S, 0x2000, nullptr).Hit);
  H.record(S, 0x2000, 0x40000100, nullptr);
  LookupOutcome O = H.lookup(S, 0x2000, nullptr);
  EXPECT_TRUE(O.Hit);
  EXPECT_EQ(O.HostEntryAddr, 0x40000100u);
  EXPECT_EQ(H.hits(), 1u);
  EXPECT_EQ(H.misses(), 1u);
}

TEST_F(IbtcHandlerTest, SharedTableVisibleAcrossSites) {
  Opts.IbtcShared = true;
  IbtcHandler H(Opts);
  uint32_t S1 = addSite(H), S2 = addSite(H);
  H.record(S1, 0x2000, 0x40000100, nullptr);
  EXPECT_TRUE(H.lookup(S2, 0x2000, nullptr).Hit);
  EXPECT_EQ(H.tableCount(), 1u);
}

TEST_F(IbtcHandlerTest, PrivateTablesIsolated) {
  Opts.IbtcShared = false;
  IbtcHandler H(Opts);
  uint32_t S1 = addSite(H), S2 = addSite(H);
  H.record(S1, 0x2000, 0x40000100, nullptr);
  EXPECT_TRUE(H.lookup(S1, 0x2000, nullptr).Hit);
  EXPECT_FALSE(H.lookup(S2, 0x2000, nullptr).Hit);
  EXPECT_EQ(H.tableCount(), 2u);
}

TEST_F(IbtcHandlerTest, ConflictReplacementCounted) {
  Opts.IbtcEntries = 1; // Every distinct target conflicts.
  IbtcHandler H(Opts);
  uint32_t S = addSite(H);
  H.record(S, 0x2000, 0x40000100, nullptr);
  H.record(S, 0x3000, 0x40000200, nullptr);
  EXPECT_EQ(H.replacements(), 1u);
  EXPECT_FALSE(H.lookup(S, 0x2000, nullptr).Hit); // Evicted.
  EXPECT_TRUE(H.lookup(S, 0x3000, nullptr).Hit);
}

TEST_F(IbtcHandlerTest, RerecordSameTargetNotAReplacement) {
  IbtcHandler H(Opts);
  uint32_t S = addSite(H);
  H.record(S, 0x2000, 0x40000100, nullptr);
  H.record(S, 0x2000, 0x40000300, nullptr); // Retranslation updates.
  EXPECT_EQ(H.replacements(), 0u);
  EXPECT_EQ(H.lookup(S, 0x2000, nullptr).HostEntryAddr, 0x40000300u);
}

TEST_F(IbtcHandlerTest, TwoWaySetHoldsConflictingTargets) {
  Opts.IbtcEntries = 2;
  Opts.IbtcAssociativity = 2; // One set, two ways.
  IbtcHandler H(Opts);
  uint32_t S = addSite(H);
  H.record(S, 0x2000, 0x40000100, nullptr);
  H.record(S, 0x3000, 0x40000200, nullptr);
  EXPECT_TRUE(H.lookup(S, 0x2000, nullptr).Hit);
  EXPECT_TRUE(H.lookup(S, 0x3000, nullptr).Hit);
  EXPECT_EQ(H.replacements(), 0u);
  // A direct-mapped table of the same size would have evicted.
  SdtOptions Direct = Opts;
  Direct.IbtcAssociativity = 1;
  FragmentCache C2(1 << 20);
  IbtcHandler H2(Direct);
  H2.emitSite(0, IBClass::Jump, 0x1000, C2);
  H2.record(0, 0x2000, 0x40000100, nullptr);
  H2.record(0, 0x2008, 0x40000300, nullptr); // Same set index (2 sets).
  EXPECT_FALSE(H2.lookup(0, 0x2000, nullptr).Hit);
}

TEST_F(IbtcHandlerTest, LruWayEvictedOnSetOverflow) {
  Opts.IbtcEntries = 2;
  Opts.IbtcAssociativity = 2;
  IbtcHandler H(Opts);
  uint32_t S = addSite(H);
  H.record(S, 0x2000, 0x40000100, nullptr);
  H.record(S, 0x3000, 0x40000200, nullptr);
  // Refresh 0x2000 so 0x3000 becomes LRU.
  EXPECT_TRUE(H.lookup(S, 0x2000, nullptr).Hit);
  H.record(S, 0x4000, 0x40000300, nullptr);
  EXPECT_EQ(H.replacements(), 1u);
  EXPECT_TRUE(H.lookup(S, 0x2000, nullptr).Hit);
  EXPECT_FALSE(H.lookup(S, 0x3000, nullptr).Hit);
  EXPECT_TRUE(H.lookup(S, 0x4000, nullptr).Hit);
}

TEST_F(IbtcHandlerTest, HigherAssociativityChargesMoreProbesOnMiss) {
  arch::MachineModel Model = arch::simpleModel();
  uint64_t Cycles[2];
  int Index = 0;
  for (uint32_t Assoc : {1u, 4u}) {
    SdtOptions O = Opts;
    O.IbtcEntries = 64;
    O.IbtcAssociativity = Assoc;
    FragmentCache LocalCache(1 << 20);
    IbtcHandler H(O);
    H.emitSite(0, IBClass::Jump, 0x1000, LocalCache);
    arch::TimingModel T(Model);
    H.lookup(0, 0x2000, &T); // Full-set miss probes every way.
    Cycles[Index++] = T.totalCycles();
  }
  EXPECT_GT(Cycles[1], Cycles[0]);
}

TEST_F(IbtcHandlerTest, AdaptiveTableGrowsUnderConflicts) {
  Opts.IbtcEntries = 4;
  Opts.IbtcAdaptive = true;
  Opts.IbtcMaxEntries = 64;
  IbtcHandler H(Opts);
  uint32_t S = addSite(H);
  // Install many distinct targets: conflicts pile up and the table grows.
  for (uint32_t I = 0; I != 64; ++I)
    H.record(S, 0x2000 + I * 4, 0x40000000 + I * 64, nullptr);
  EXPECT_GT(H.resizes(), 0u);
  EXPECT_GT(H.currentCapacity(), 4u);
  EXPECT_LE(H.currentCapacity(), 64u);
}

TEST_F(IbtcHandlerTest, AdaptiveGrowthPreservesLiveEntries) {
  Opts.IbtcEntries = 4;
  Opts.IbtcAdaptive = true;
  Opts.IbtcMaxEntries = 256;
  IbtcHandler H(Opts);
  uint32_t S = addSite(H);
  for (uint32_t I = 0; I != 32; ++I)
    H.record(S, 0x2000 + I * 4, 0x40000000 + I * 64, nullptr);
  ASSERT_GT(H.resizes(), 0u);
  // Recently recorded targets survive the rehash.
  EXPECT_TRUE(H.lookup(S, 0x2000 + 31 * 4, nullptr).Hit);
  EXPECT_TRUE(H.lookup(S, 0x2000 + 30 * 4, nullptr).Hit);
}

TEST_F(IbtcHandlerTest, AdaptiveRespectsMaxEntries) {
  Opts.IbtcEntries = 4;
  Opts.IbtcAdaptive = true;
  Opts.IbtcMaxEntries = 16;
  IbtcHandler H(Opts);
  uint32_t S = addSite(H);
  for (uint32_t I = 0; I != 256; ++I)
    H.record(S, 0x2000 + I * 4, 0x40000000 + I * 64, nullptr);
  EXPECT_LE(H.currentCapacity(), 16u);
}

TEST_F(IbtcHandlerTest, FixedTableNeverResizes) {
  Opts.IbtcEntries = 4;
  Opts.IbtcAdaptive = false;
  IbtcHandler H(Opts);
  uint32_t S = addSite(H);
  for (uint32_t I = 0; I != 64; ++I)
    H.record(S, 0x2000 + I * 4, 0x40000000 + I * 64, nullptr);
  EXPECT_EQ(H.resizes(), 0u);
  EXPECT_EQ(H.currentCapacity(), 4u);
}

TEST_F(IbtcHandlerTest, FlushEmptiesTables) {
  IbtcHandler H(Opts);
  uint32_t S = addSite(H);
  H.record(S, 0x2000, 0x40000100, nullptr);
  H.flush();
  uint32_t S2 = addSite(H); // Sites re-register after a flush.
  EXPECT_FALSE(H.lookup(S2, 0x2000, nullptr).Hit);
}

TEST_F(IbtcHandlerTest, FullFlagSaveCostsMore) {
  arch::MachineModel Model = arch::simpleModel();
  Model.FlagSaveFullCost = 50;
  Model.FlagSaveLightCost = 1;

  SdtOptions Light = Opts;
  Light.FullFlagSave = false;
  SdtOptions Full = Opts;
  Full.FullFlagSave = true;

  uint64_t Cycles[2];
  int Index = 0;
  for (const SdtOptions &O : {Light, Full}) {
    FragmentCache LocalCache(1 << 20);
    IbtcHandler H(O);
    SiteCode Code = H.emitSite(0, IBClass::Jump, 0x1000, LocalCache);
    EXPECT_GT(Code.Bytes, 0u);
    arch::TimingModel T(Model);
    H.record(0, 0x2000, 0x40000100, nullptr);
    H.lookup(0, 0x2000, &T); // Hit: save + restore charged.
    Cycles[Index++] = T.totalCycles();
  }
  EXPECT_GT(Cycles[1], Cycles[0] + 50);
}

TEST_F(IbtcHandlerTest, LookupChargesDataCache) {
  IbtcHandler H(Opts);
  uint32_t S = addSite(H);
  arch::TimingModel T(arch::simpleModel());
  uint64_t DAccessesBefore = T.dcache().accesses();
  H.lookup(S, 0x2000, &T);
  EXPECT_GT(T.dcache().accesses(), DAccessesBefore); // Table load is data.
}

TEST_F(IbtcHandlerTest, StatsSummaryMentionsConfig) {
  Opts.IbtcEntries = 512;
  IbtcHandler H(Opts);
  EXPECT_NE(H.statsSummary().find("512"), std::string::npos);
  EXPECT_NE(H.statsSummary().find("shared"), std::string::npos);
}

// --- SieveHandler -----------------------------------------------------------

TEST_F(SieveHandlerTest, MissRecordHit) {
  SieveHandler H(Opts);
  H.initialize(Cache);
  uint32_t S = addSite(H);
  EXPECT_FALSE(H.lookup(S, 0x2000, nullptr).Hit);
  H.record(S, 0x2000, 0x40000100, nullptr);
  LookupOutcome O = H.lookup(S, 0x2000, nullptr);
  EXPECT_TRUE(O.Hit);
  EXPECT_EQ(O.HostEntryAddr, 0x40000100u);
  EXPECT_EQ(H.stubCount(), 1u);
}

TEST_F(SieveHandlerTest, StructureSharedAcrossSites) {
  SieveHandler H(Opts);
  H.initialize(Cache);
  uint32_t S1 = addSite(H), S2 = addSite(H);
  H.record(S1, 0x2000, 0x40000100, nullptr);
  EXPECT_TRUE(H.lookup(S2, 0x2000, nullptr).Hit);
}

TEST_F(SieveHandlerTest, DuplicateTargetsGetOneStub) {
  SieveHandler H(Opts);
  H.initialize(Cache);
  uint32_t S = addSite(H);
  H.record(S, 0x2000, 0x40000100, nullptr);
  H.record(S, 0x2000, 0x40000100, nullptr);
  EXPECT_EQ(H.stubCount(), 1u);
}

TEST_F(SieveHandlerTest, ChainsGrowOnBucketCollisions) {
  Opts.SieveBuckets = 1; // Everything chains in one bucket.
  SieveHandler H(Opts);
  H.initialize(Cache);
  uint32_t S = addSite(H);
  H.record(S, 0x2000, 0x40000100, nullptr);
  H.record(S, 0x2004, 0x40000200, nullptr);
  H.record(S, 0x2008, 0x40000300, nullptr);
  EXPECT_EQ(H.stubCount(), 3u);
  // The third target sits at chain position 3.
  EXPECT_TRUE(H.lookup(S, 0x2008, nullptr).Hit);
  EXPECT_GE(H.chainLengthHistogram().mean(), 3.0);
}

TEST_F(SieveHandlerTest, StubsLiveInFragmentCache) {
  SieveHandler H(Opts);
  H.initialize(Cache);
  uint32_t S = addSite(H);
  uint32_t Before = Cache.usedBytes();
  H.record(S, 0x2000, 0x40000100, nullptr);
  EXPECT_GT(Cache.usedBytes(), Before); // Stub allocated in code space.
}

TEST_F(SieveHandlerTest, LookupChargesInstructionCache) {
  SieveHandler H(Opts);
  H.initialize(Cache);
  uint32_t S = addSite(H);
  H.record(S, 0x2000, 0x40000100, nullptr);
  arch::TimingModel T(arch::simpleModel());
  uint64_t IBefore = T.icache().accesses();
  uint64_t DBefore = T.dcache().accesses();
  H.lookup(S, 0x2000, &T);
  EXPECT_GT(T.icache().accesses(), IBefore); // Stub walk is code.
  EXPECT_EQ(T.dcache().accesses(), DBefore); // No data-table loads.
}

TEST_F(SieveHandlerTest, FlushClearsChains) {
  SieveHandler H(Opts);
  H.initialize(Cache);
  uint32_t S = addSite(H);
  H.record(S, 0x2000, 0x40000100, nullptr);
  H.flush();
  H.initialize(Cache);
  uint32_t S2 = addSite(H);
  EXPECT_FALSE(H.lookup(S2, 0x2000, nullptr).Hit);
  EXPECT_EQ(H.stubCount(), 0u);
}

// --- ReturnCacheHandler -----------------------------------------------------

TEST_F(ReturnCacheHandlerTest, MissRecordHit) {
  ReturnCacheHandler H(Opts);
  uint32_t S = addSite(H, IBClass::Return);
  EXPECT_FALSE(H.lookup(S, 0x2004, nullptr).Hit);
  H.record(S, 0x2004, 0x40000100, nullptr);
  EXPECT_TRUE(H.lookup(S, 0x2004, nullptr).Hit);
}

TEST_F(ReturnCacheHandlerTest, DirectMappedOverwrite) {
  Opts.ReturnCacheEntries = 1;
  ReturnCacheHandler H(Opts);
  uint32_t S = addSite(H, IBClass::Return);
  H.record(S, 0x2000, 0x40000100, nullptr);
  H.record(S, 0x3000, 0x40000200, nullptr);
  EXPECT_FALSE(H.lookup(S, 0x2000, nullptr).Hit);
  EXPECT_TRUE(H.lookup(S, 0x3000, nullptr).Hit);
}

TEST_F(ReturnCacheHandlerTest, NoFlagSaveCharged) {
  arch::MachineModel Model = arch::simpleModel();
  Model.FlagSaveFullCost = 1000;
  Model.FlagSaveLightCost = 1000; // Any flag save would be visible.
  Opts.FullFlagSave = true;
  ReturnCacheHandler H(Opts);
  uint32_t S = addSite(H, IBClass::Return);
  H.record(S, 0x2004, 0x40000100, nullptr);
  arch::TimingModel T(Model);
  H.lookup(S, 0x2004, &T);
  EXPECT_LT(T.totalCycles(), 1000u);
}

// --- InlineCacheHandler -----------------------------------------------------

TEST_F(InlineCacheHandlerTest, InlineEntryServesRepeatTargets) {
  Opts.InlineCacheDepth = 2;
  InlineCacheHandler H(Opts, std::make_unique<IbtcHandler>(
                                 Opts, /*ChargeFlagSave=*/false));
  uint32_t S = addSite(H);
  EXPECT_FALSE(H.lookup(S, 0x2000, nullptr).Hit);
  H.record(S, 0x2000, 0x40000100, nullptr);
  LookupOutcome O = H.lookup(S, 0x2000, nullptr);
  EXPECT_TRUE(O.Hit);
  EXPECT_EQ(H.inlineHits(), 1u);
  EXPECT_EQ(H.backing().lookups(), 1u); // Only the first miss fell through.
}

TEST_F(InlineCacheHandlerTest, OverflowGoesToBacking) {
  Opts.InlineCacheDepth = 1;
  InlineCacheHandler H(Opts, std::make_unique<IbtcHandler>(
                                 Opts, /*ChargeFlagSave=*/false));
  uint32_t S = addSite(H);
  H.record(S, 0x2000, 0x40000100, nullptr); // Fills the inline slot.
  H.lookup(S, 0x3000, nullptr);             // Miss everywhere.
  H.record(S, 0x3000, 0x40000200, nullptr); // Goes to the IBTC.
  LookupOutcome O = H.lookup(S, 0x3000, nullptr);
  EXPECT_TRUE(O.Hit);
  EXPECT_EQ(O.HostEntryAddr, 0x40000200u);
  EXPECT_EQ(H.inlineHits(), 0u);
  // Inline entry still serves its own target.
  EXPECT_TRUE(H.lookup(S, 0x2000, nullptr).Hit);
  EXPECT_EQ(H.inlineHits(), 1u);
}

TEST_F(InlineCacheHandlerTest, PerSiteIsolation) {
  Opts.InlineCacheDepth = 1;
  Opts.IbtcShared = false;
  InlineCacheHandler H(Opts, std::make_unique<IbtcHandler>(
                                 Opts, /*ChargeFlagSave=*/false));
  uint32_t S1 = addSite(H), S2 = addSite(H);
  H.record(S1, 0x2000, 0x40000100, nullptr);
  EXPECT_TRUE(H.lookup(S1, 0x2000, nullptr).Hit);
  EXPECT_FALSE(H.lookup(S2, 0x2000, nullptr).Hit);
}

TEST_F(InlineCacheHandlerTest, FlushClearsInlineEntries) {
  Opts.InlineCacheDepth = 2;
  InlineCacheHandler H(Opts, std::make_unique<IbtcHandler>(
                                 Opts, /*ChargeFlagSave=*/false));
  uint32_t S = addSite(H);
  H.record(S, 0x2000, 0x40000100, nullptr);
  H.flush();
  uint32_t S2 = addSite(H);
  EXPECT_FALSE(H.lookup(S2, 0x2000, nullptr).Hit);
}

TEST_F(InlineCacheHandlerTest, StatsSummaryIncludesBacking) {
  Opts.InlineCacheDepth = 1;
  InlineCacheHandler H(Opts, std::make_unique<IbtcHandler>(
                                 Opts, /*ChargeFlagSave=*/false));
  std::string Summary = H.statsSummary();
  EXPECT_NE(Summary.find("inline-cache"), std::string::npos);
  EXPECT_NE(Summary.find("ibtc"), std::string::npos);
}

// --- Dispatch accounting ----------------------------------------------------

namespace {

/// Indirect-call + return workout: a loop alternating two callees through
/// a function-pointer table, so every configured mechanism sees both hits
/// and misses.
const char *const DispatchWorkout = R"(
main:
    li   s0, 40
    li   s7, 0
loop:
    la   t0, fns
    andi t1, s0, 1
    slli t1, t1, 2
    add  t0, t0, t1
    lw   t2, 0(t0)
    move a0, s0
    jalr t2
    add  s7, s7, v0
    addi s0, s0, -1
    bnez s0, loop
    move a0, s7
    li   v0, 4
    syscall
    li   a0, 0
    li   v0, 0
    syscall
f_even:
    slli v0, a0, 1
    ret
f_odd:
    addi v0, a0, 100
    ret
fns: .word f_even, f_odd
)";

} // namespace

// Pins the DispatchEntries accounting against the per-mechanism miss
// counters: with fragment linking on, no flushes, and no trace building,
// every slow-path entry is either the initial entry, the one dispatch
// behind each patched link, or a top-level IB miss — each counted exactly
// once (an IBTC miss that falls through to the dispatcher must not count
// twice).
TEST(DispatchAccountingTest, DispatchEntriesMatchMissCounters) {
  Expected<isa::Program> P = assembler::assemble(DispatchWorkout);
  ASSERT_TRUE(static_cast<bool>(P)) << (P ? "" : P.error().message());

  struct Config {
    const char *Label;
    IBMechanism Mechanism;
    unsigned InlineDepth;
    ReturnStrategy Returns;
  };
  const Config Configs[] = {
      {"dispatcher", IBMechanism::Dispatcher, 0, ReturnStrategy::AsIndirect},
      {"ibtc", IBMechanism::Ibtc, 0, ReturnStrategy::AsIndirect},
      {"sieve", IBMechanism::Sieve, 0, ReturnStrategy::AsIndirect},
      {"ibtc+inline", IBMechanism::Ibtc, 2, ReturnStrategy::AsIndirect},
      {"ibtc+retcache", IBMechanism::Ibtc, 0, ReturnStrategy::ReturnCache},
      {"sieve+retcache", IBMechanism::Sieve, 0,
       ReturnStrategy::ReturnCache},
  };

  for (const Config &C : Configs) {
    SdtOptions Opts;
    Opts.Mechanism = C.Mechanism;
    Opts.InlineCacheDepth = C.InlineDepth;
    Opts.Returns = C.Returns;

    auto Engine = SdtEngine::create(*P, Opts, {});
    ASSERT_TRUE(static_cast<bool>(Engine)) << C.Label;
    vm::RunResult R = (*Engine)->run();
    EXPECT_EQ(R.Reason, vm::ExitReason::Exited) << C.Label;

    const SdtStats &S = (*Engine)->stats();
    ASSERT_EQ(S.Flushes, 0u) << C.Label;

    IBHandler &Main = (*Engine)->mainHandler();
    IBHandler &Ret = (*Engine)->returnHandler();
    uint64_t Misses = Main.misses();
    uint64_t Lookups = Main.lookups();
    if (&Ret != &Main) {
      Misses += Ret.misses();
      Lookups += Ret.lookups();
    }

    // Every executed IB site ran exactly one top-level lookup.
    uint64_t IBExecTotal = 0;
    for (unsigned Class = 0; Class != NumIBClasses; ++Class)
      IBExecTotal += S.IBExecs[Class];
    EXPECT_EQ(Lookups, IBExecTotal) << C.Label;

    EXPECT_EQ(S.DispatchEntries, 1 + S.LinksPatched + Misses) << C.Label;
    EXPECT_GT(Misses, 0u) << C.Label;
  }
}
