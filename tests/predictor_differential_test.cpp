//===- tests/predictor_differential_test.cpp - RAS symmetry ------*- C++ -*-===//
//
// Part of StrataIB.
//
// The RAS push/pop symmetry contract: every guest call pushes the return
// predictor exactly once and every fast return pops it exactly once, in
// both execution modes. Under ReturnStrategy::FastReturn the SDT's
// return-shaped host jumps should therefore see *exactly* the native
// returnMispredicts() count — calls push the host return point (an
// injective, flush-stable image of the guest return address) and returns
// pop with the matching host target, so the hit/miss pattern is
// identical to the interpreter's guest-address pattern.
//
// This differential catches both historical asymmetries: dead-link calls
// that skipped the push (optimized traces), and transparency fallbacks
// that skipped the pop.
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"
#include "arch/Timing.h"
#include "assembler/Assembler.h"
#include "core/SdtEngine.h"
#include "vm/GuestVM.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::core;
using namespace sdt::vm;

namespace {

struct RasCase {
  const char *Name;
  SdtOptions Opts;
};

std::vector<RasCase> rasConfigs() {
  std::vector<RasCase> Cases;
  auto add = [&Cases](const char *Name, auto Mutate) {
    SdtOptions O;
    O.Returns = ReturnStrategy::FastReturn;
    Mutate(O);
    Cases.push_back({Name, O});
  };
  add("fastret_ibtc", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
  });
  add("fastret_sieve", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Sieve;
  });
  add("fastret_traces", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.EnableTraces = true;
  });
  // The dead-link eliminator must keep pushing for elided SetLinks, and
  // speculation guards must not introduce extra pops.
  add("fastret_opt_spec", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.EnableTraces = true;
    O.OptimizeTraces = true;
    O.TraceSpeculate = true;
  });
  return Cases;
}

class RasDifferentialTest
    : public ::testing::TestWithParam<std::tuple<const char *, size_t>> {};

} // namespace

TEST_P(RasDifferentialTest, ReturnMispredictsMatchNative) {
  const char *Workload = std::get<0>(GetParam());
  const RasCase Case = rasConfigs()[std::get<1>(GetParam())];

  Expected<isa::Program> P = workloads::buildWorkload(Workload, 3);
  ASSERT_TRUE(bool(P)) << P.error().message();

  arch::MachineModel Model = arch::x86Model();

  arch::TimingModel NativeTiming(Model);
  ExecOptions NativeExec;
  NativeExec.Timing = &NativeTiming;
  auto VM = GuestVM::create(*P, NativeExec);
  ASSERT_TRUE(bool(VM)) << VM.error().message();
  RunResult Native = (*VM)->run();
  ASSERT_TRUE(Native.finishedNormally()) << Native.FaultMessage;

  arch::TimingModel SdtTiming(Model);
  ExecOptions SdtExec;
  SdtExec.Timing = &SdtTiming;
  auto Engine = SdtEngine::create(*P, Case.Opts, SdtExec);
  ASSERT_TRUE(bool(Engine)) << Engine.error().message();
  RunResult Translated = (*Engine)->run();
  ASSERT_TRUE(Translated.finishedNormally()) << Translated.FaultMessage;
  ASSERT_EQ(Translated.Checksum, Native.Checksum);

  // Same number of return-shaped pops...
  EXPECT_EQ(SdtTiming.predictor().returnLookups(),
            NativeTiming.predictor().returnLookups())
      << Case.Name;
  // ...and the same hit/miss pattern through them.
  EXPECT_EQ(SdtTiming.predictor().returnMispredicts(),
            NativeTiming.predictor().returnMispredicts())
      << Case.Name;
  // Sanity: these are call-heavy workloads; the differential is vacuous
  // if no returns executed.
  EXPECT_GT(NativeTiming.predictor().returnLookups(), 0u);
}

// The transparency fallback must pop too: a return whose link register
// holds a synthesized *guest* address takes the fallback path, but the
// return-shaped host jump still consumed the RAS — the hardware pops on
// the instruction, not on where it lands. Before the fix this path
// skipped the pop, shifting every later return prediction.
TEST(RasDifferentialTest, FallbackReturnStillPops) {
  Expected<isa::Program> P = assembler::assemble(R"(
main:
    jal  f
    la   ra, done
    ret
done:
    li   a0, 0
    li   v0, 0
    syscall
f:
    ret
)");
  ASSERT_TRUE(bool(P)) << P.error().message();

  arch::MachineModel Model = arch::x86Model();
  arch::TimingModel NativeTiming(Model);
  vm::ExecOptions NativeExec;
  NativeExec.Timing = &NativeTiming;
  auto VM = GuestVM::create(*P, NativeExec);
  ASSERT_TRUE(bool(VM));
  RunResult Native = (*VM)->run();
  ASSERT_TRUE(Native.finishedNormally()) << Native.FaultMessage;

  SdtOptions Opts;
  Opts.Returns = ReturnStrategy::FastReturn;
  arch::TimingModel SdtTiming(Model);
  vm::ExecOptions SdtExec;
  SdtExec.Timing = &SdtTiming;
  auto Engine = SdtEngine::create(*P, Opts, SdtExec);
  ASSERT_TRUE(bool(Engine));
  RunResult Translated = (*Engine)->run();
  ASSERT_TRUE(Translated.finishedNormally()) << Translated.FaultMessage;

  EXPECT_EQ((*Engine)->stats().FastReturnFallback, 1u);
  EXPECT_EQ(SdtTiming.predictor().returnLookups(),
            NativeTiming.predictor().returnLookups());
  EXPECT_EQ(SdtTiming.predictor().returnMispredicts(),
            NativeTiming.predictor().returnMispredicts());
}

INSTANTIATE_TEST_SUITE_P(
    CallHeavy, RasDifferentialTest,
    ::testing::Combine(::testing::Values("gcc", "crafty", "vortex", "eon"),
                       ::testing::Range<size_t>(0, rasConfigs().size())),
    [](const ::testing::TestParamInfo<RasDifferentialTest::ParamType> &I) {
      return std::string(std::get<0>(I.param)) + "_" +
             rasConfigs()[std::get<1>(I.param)].Name;
    });
