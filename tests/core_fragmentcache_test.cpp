//===- tests/core_fragmentcache_test.cpp - Fragment cache tests --*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//

#include "core/FragmentCache.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::core;

static Fragment makeFragment(FragmentCache &Cache, uint32_t GuestEntry,
                             unsigned Ops = 2) {
  Fragment F;
  F.GuestEntry = GuestEntry;
  F.HostEntryAddr = Cache.beginFragment();
  for (unsigned I = 0; I != Ops; ++I) {
    HostInstr HI;
    HI.Kind = I + 1 == Ops ? HostOpKind::HaltOp : HostOpKind::Guest;
    HI.HostAddr = Cache.allocateBytes(hostOpBytes(HI.Kind));
    F.Code.push_back(HI);
  }
  F.CodeBytes = Cache.beginFragment() - F.HostEntryAddr;
  return F;
}

TEST(FragmentCacheTest, HostOpBytesSane) {
  EXPECT_EQ(hostOpBytes(HostOpKind::Guest), 4u);
  EXPECT_EQ(hostOpBytes(HostOpKind::SetLink), 8u);
  EXPECT_EQ(hostOpBytes(HostOpKind::ExitStub), 16u);
  EXPECT_EQ(hostOpBytes(HostOpKind::IBLookup), 0u);
}

TEST(FragmentCacheTest, LookupMissOnEmpty) {
  FragmentCache C(1 << 20);
  EXPECT_FALSE(C.lookup(0x1000).valid());
}

TEST(FragmentCacheTest, InsertThenLookup) {
  FragmentCache C(1 << 20);
  Fragment F = makeFragment(C, 0x1000);
  uint32_t Entry = F.HostEntryAddr;
  HostLoc Loc = C.insert(std::move(F));
  EXPECT_TRUE(Loc.valid());
  EXPECT_EQ(C.lookup(0x1000), Loc);
  EXPECT_EQ(C.locForEntryAddr(Entry), Loc);
  EXPECT_EQ(C.fragmentCount(), 1u);
}

TEST(FragmentCacheTest, AddressesMonotonicAndAligned) {
  FragmentCache C(1 << 20);
  uint32_t A = C.allocateBytes(16);
  uint32_t B = C.allocateBytes(4);
  EXPECT_EQ(A, FragmentCacheBase);
  EXPECT_EQ(B, A + 16);
  EXPECT_EQ(C.usedBytes(), 20u);
}

TEST(FragmentCacheTest, IsFullAfterCapacity) {
  FragmentCache C(4096);
  EXPECT_FALSE(C.isFull());
  C.allocateBytes(4096);
  EXPECT_TRUE(C.isFull());
}

TEST(FragmentCacheTest, FlushDropsLiveKeepsRetired) {
  FragmentCache C(1 << 20);
  Fragment F = makeFragment(C, 0x1000);
  uint32_t Entry = F.HostEntryAddr;
  C.insert(std::move(F));
  C.flushAll();
  EXPECT_FALSE(C.lookup(0x1000).valid());
  EXPECT_FALSE(C.locForEntryAddr(Entry).valid());
  EXPECT_EQ(C.retiredGuestEntry(Entry), 0x1000u);
  EXPECT_EQ(C.retiredGuestEntry(0xDEAD0000), 0u);
  EXPECT_EQ(C.fragmentCount(), 0u);
  EXPECT_EQ(C.usedBytes(), 0u);
  EXPECT_EQ(C.flushCount(), 1u);
}

TEST(FragmentCacheTest, CursorNotResetByFlush) {
  FragmentCache C(1 << 20);
  C.allocateBytes(64);
  C.flushAll();
  // New allocations continue past the old ones: addresses never reused.
  EXPECT_EQ(C.allocateBytes(4), FragmentCacheBase + 64);
}

TEST(FragmentCacheTest, ReinsertAfterFlush) {
  FragmentCache C(1 << 20);
  C.insert(makeFragment(C, 0x1000));
  C.flushAll();
  Fragment F2 = makeFragment(C, 0x1000);
  uint32_t NewEntry = F2.HostEntryAddr;
  HostLoc Loc = C.insert(std::move(F2));
  EXPECT_EQ(C.lookup(0x1000), Loc);
  EXPECT_NE(NewEntry, FragmentCacheBase); // Fresh address.
}

// Regression tests for the one-entry lookup memos: a memoised hit must
// never outlive the mutation that invalidates it. Each test primes the
// memo with a successful lookup first, so a missing invalidation would
// serve the stale answer.

TEST(FragmentCacheTest, MemoisedLookupInvalidatedByFlush) {
  FragmentCache C(1 << 20);
  HostLoc Loc = C.insert(makeFragment(C, 0x1000));
  ASSERT_EQ(C.lookup(0x1000), Loc); // Prime the guest-PC memo.
  C.flushAll();
  EXPECT_FALSE(C.lookup(0x1000).valid());
}

TEST(FragmentCacheTest, MemoisedEntryAddrInvalidatedByFlush) {
  FragmentCache C(1 << 20);
  Fragment F = makeFragment(C, 0x1000);
  uint32_t Entry = F.HostEntryAddr;
  HostLoc Loc = C.insert(std::move(F));
  ASSERT_EQ(C.locForEntryAddr(Entry), Loc); // Prime the entry-addr memo.
  C.flushAll();
  EXPECT_FALSE(C.locForEntryAddr(Entry).valid());
  // The retired mapping still resolves the guest address.
  EXPECT_EQ(C.retiredGuestEntry(Entry), 0x1000u);
}

TEST(FragmentCacheTest, MemoisedLookupFollowsReplaceForGuest) {
  FragmentCache C(1 << 20);
  HostLoc Old = C.insert(makeFragment(C, 0x1000));
  ASSERT_EQ(C.lookup(0x1000), Old); // Prime the memo on the old fragment.
  HostLoc Trace = C.replaceForGuest(makeFragment(C, 0x1000));
  EXPECT_NE(Trace, Old);
  EXPECT_EQ(C.lookup(0x1000), Trace);
}

TEST(FragmentCacheTest, MemoisedLookupSurvivesUnrelatedInsert) {
  FragmentCache C(1 << 20);
  HostLoc L1 = C.insert(makeFragment(C, 0x1000));
  ASSERT_EQ(C.lookup(0x1000), L1);
  C.insert(makeFragment(C, 0x2000)); // Invalidates, must then re-fill.
  EXPECT_EQ(C.lookup(0x1000), L1);
  EXPECT_EQ(C.lookup(0x1000), L1); // Second hit served from the memo.
}

TEST(FragmentCacheTest, MultipleFragmentsIndependent) {
  FragmentCache C(1 << 20);
  HostLoc L1 = C.insert(makeFragment(C, 0x1000));
  HostLoc L2 = C.insert(makeFragment(C, 0x2000));
  EXPECT_NE(L1.Frag, L2.Frag);
  EXPECT_EQ(C.lookup(0x1000), L1);
  EXPECT_EQ(C.lookup(0x2000), L2);
  EXPECT_EQ(C.fragment(L2.Frag).GuestEntry, 0x2000u);
}

// --- Partial eviction -------------------------------------------------------

TEST(EvictedRangesTest, MergesAndContains) {
  EvictedRanges R;
  R.add(0x100, 0x110);
  R.add(0x110, 0x120); // Adjacent: merges with the first.
  R.add(0x200, 0x210);
  R.add(0x150, 0x150); // Empty: dropped.
  R.finalize();
  ASSERT_EQ(R.ranges().size(), 2u);
  EXPECT_TRUE(R.contains(0x100));
  EXPECT_TRUE(R.contains(0x11C));
  EXPECT_FALSE(R.contains(0x120)); // Half-open.
  EXPECT_FALSE(R.contains(0x150));
  EXPECT_TRUE(R.contains(0x200));
  EXPECT_FALSE(R.contains(0x210));
  EXPECT_FALSE(R.contains(0x0));
}

TEST(FragmentCacheTest, EvictRemovesMappingsKeepsRetired) {
  FragmentCache C(1 << 20);
  Fragment F1 = makeFragment(C, 0x1000);
  uint32_t Entry1 = F1.HostEntryAddr;
  HostLoc L1 = C.insert(std::move(F1));
  HostLoc L2 = C.insert(makeFragment(C, 0x2000));
  uint32_t UsedBefore = C.usedBytes();

  EvictionOutcome Out = C.evict({L1.Frag});
  EXPECT_EQ(Out.FragmentsEvicted, 1u);
  EXPECT_GT(Out.BytesFreed, 0u);
  EXPECT_TRUE(Out.Ranges.contains(Entry1));

  // The victim is gone from every live map but stays resolvable as a
  // retired entry, exactly like a flushed fragment.
  EXPECT_FALSE(C.lookup(0x1000).valid());
  EXPECT_FALSE(C.locForEntryAddr(Entry1).valid());
  EXPECT_EQ(C.retiredGuestEntry(Entry1), 0x1000u);

  // The survivor is untouched; the slot indices are stable (tombstone).
  EXPECT_EQ(C.lookup(0x2000), L2);
  EXPECT_EQ(C.fragmentCount(), 2u); // Vector slot survives...
  EXPECT_EQ(C.liveFragmentCount(), 1u); // ...but only one is live.
  EXPECT_FALSE(C.isLive(L1.Frag));
  EXPECT_TRUE(C.isLive(L2.Frag));
  EXPECT_EQ(C.usedBytes(), UsedBefore - Out.BytesFreed);
  // Partial eviction is not a flush.
  EXPECT_EQ(C.flushCount(), 0u);
}

TEST(FragmentCacheTest, MemoisedLookupInvalidatedByEvict) {
  FragmentCache C(1 << 20);
  HostLoc Loc = C.insert(makeFragment(C, 0x1000));
  ASSERT_EQ(C.lookup(0x1000), Loc); // Prime the guest-PC memo.
  C.evict({Loc.Frag});
  EXPECT_FALSE(C.lookup(0x1000).valid());
}

TEST(FragmentCacheTest, MemoisedEntryAddrInvalidatedByEvict) {
  FragmentCache C(1 << 20);
  Fragment F = makeFragment(C, 0x1000);
  uint32_t Entry = F.HostEntryAddr;
  HostLoc Loc = C.insert(std::move(F));
  ASSERT_EQ(C.locForEntryAddr(Entry), Loc); // Prime the entry-addr memo.
  C.evict({Loc.Frag});
  EXPECT_FALSE(C.locForEntryAddr(Entry).valid());
  EXPECT_EQ(C.retiredGuestEntry(Entry), 0x1000u);
}

TEST(FragmentCacheTest, EvictUnlinksIncomingJumpHost) {
  FragmentCache C(1 << 20);
  Fragment Victim = makeFragment(C, 0x2000);
  HostLoc VictimLoc = C.insert(std::move(Victim));

  // A surviving fragment whose tail was patched into a direct jump to
  // the victim (the linked-ExitStub shape the dispatcher produces).
  Fragment Src;
  Src.GuestEntry = 0x1000;
  Src.HostEntryAddr = C.beginFragment();
  HostInstr Jump;
  Jump.Kind = HostOpKind::JumpHost;
  Jump.HostAddr = C.allocateBytes(hostOpBytes(HostOpKind::ExitStub));
  Jump.TargetGuest = 0x2000;
  Jump.TargetHost = VictimLoc;
  Jump.Linked = true;
  Jump.CountsAsGuest = true;
  Src.Code.push_back(Jump);
  Src.CodeBytes = C.beginFragment() - Src.HostEntryAddr;
  HostLoc SrcLoc = C.insert(std::move(Src));

  EvictionOutcome Out = C.evict({VictimLoc.Frag});
  EXPECT_EQ(Out.LinksUnlinked, 1u);
  const HostInstr &Reverted = C.fragment(SrcLoc.Frag).Code[0];
  EXPECT_EQ(Reverted.Kind, HostOpKind::ExitStub);
  EXPECT_FALSE(Reverted.TargetHost.valid());
  EXPECT_FALSE(Reverted.Linked);
  // The stub still knows its guest target, so it can re-dispatch.
  EXPECT_EQ(Reverted.TargetGuest, 0x2000u);
  EXPECT_TRUE(Reverted.CountsAsGuest); // Retirement semantics unchanged.
}

TEST(FragmentCacheTest, EvictUnlinksCachedSetLink) {
  FragmentCache C(1 << 20);
  Fragment Victim = makeFragment(C, 0x2000);
  uint32_t VictimEntry = Victim.HostEntryAddr;
  HostLoc VictimLoc = C.insert(std::move(Victim));

  // A fast-return SetLink that cached the victim's entry address.
  Fragment Src;
  Src.GuestEntry = 0x1000;
  Src.HostEntryAddr = C.beginFragment();
  HostInstr Link;
  Link.Kind = HostOpKind::SetLink;
  Link.HostAddr = C.allocateBytes(hostOpBytes(HostOpKind::SetLink));
  Link.TargetGuest = 0x2000;
  Link.TargetHostAddr = VictimEntry;
  Link.Linked = true;
  Src.Code.push_back(Link);
  Src.CodeBytes = C.beginFragment() - Src.HostEntryAddr;
  HostLoc SrcLoc = C.insert(std::move(Src));

  EvictionOutcome Out = C.evict({VictimLoc.Frag});
  EXPECT_EQ(Out.LinksUnlinked, 1u);
  const HostInstr &Reverted = C.fragment(SrcLoc.Frag).Code[0];
  EXPECT_EQ(Reverted.Kind, HostOpKind::SetLink);
  EXPECT_FALSE(Reverted.Linked);
  EXPECT_EQ(Reverted.TargetHostAddr, 0u); // Re-resolves on next run.
  EXPECT_EQ(Reverted.TargetGuest, 0x2000u);
}

TEST(FragmentCacheTest, RetranslationCountedAfterEvict) {
  FragmentCache C(1 << 20);
  HostLoc Loc = C.insert(makeFragment(C, 0x1000));
  C.evict({Loc.Frag});
  EXPECT_EQ(C.retranslations(), 0u);
  C.insert(makeFragment(C, 0x1000)); // Same guest entry: thrash.
  EXPECT_EQ(C.retranslations(), 1u);
  C.insert(makeFragment(C, 0x3000)); // Fresh entry: not a retranslation.
  EXPECT_EQ(C.retranslations(), 1u);
}

TEST(FragmentCacheTest, RetranslationCountedAfterFlush) {
  FragmentCache C(1 << 20);
  C.insert(makeFragment(C, 0x1000));
  C.flushAll();
  C.insert(makeFragment(C, 0x1000));
  EXPECT_EQ(C.retranslations(), 1u);
  // Re-inserting again without another free is not a second thrash.
  C.flushAll();
  C.insert(makeFragment(C, 0x1000));
  EXPECT_EQ(C.retranslations(), 2u);
}

TEST(FragmentCacheTest, ReleaseBytesShrinksPressure) {
  FragmentCache C(4096);
  C.allocateBytes(4096);
  ASSERT_TRUE(C.isFull());
  C.releaseBytes(1024);
  EXPECT_FALSE(C.isFull());
  EXPECT_EQ(C.usedBytes(), 3072u);
  // Addresses are never reused: the cursor continues past the released
  // space.
  EXPECT_EQ(C.allocateBytes(4), FragmentCacheBase + 4096);
}

TEST(FragmentCacheTest, EvictedGuestReachableThroughRetiredEntry) {
  // retiredGuestEntry() must resolve addresses freed by a *policy*, not
  // just by flushAll(): a fast-return address pointing at an evicted
  // fragment redirects through the retired map to its guest PC.
  FragmentCache C(1 << 20);
  Fragment F = makeFragment(C, 0x5000);
  uint32_t Entry = F.HostEntryAddr;
  HostLoc Loc = C.insert(std::move(F));
  C.evict({Loc.Frag});
  EXPECT_EQ(C.retiredGuestEntry(Entry), 0x5000u);
  // Re-translate and evict again: still exactly one retired mapping for
  // the *old* address, and the new address resolves too.
  Fragment F2 = makeFragment(C, 0x5000);
  uint32_t Entry2 = F2.HostEntryAddr;
  HostLoc Loc2 = C.insert(std::move(F2));
  C.evict({Loc2.Frag});
  EXPECT_EQ(C.retiredGuestEntry(Entry), 0x5000u);
  EXPECT_EQ(C.retiredGuestEntry(Entry2), 0x5000u);
}
