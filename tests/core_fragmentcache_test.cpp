//===- tests/core_fragmentcache_test.cpp - Fragment cache tests --*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//

#include "core/FragmentCache.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::core;

static Fragment makeFragment(FragmentCache &Cache, uint32_t GuestEntry,
                             unsigned Ops = 2) {
  Fragment F;
  F.GuestEntry = GuestEntry;
  F.HostEntryAddr = Cache.beginFragment();
  for (unsigned I = 0; I != Ops; ++I) {
    HostInstr HI;
    HI.Kind = I + 1 == Ops ? HostOpKind::HaltOp : HostOpKind::Guest;
    HI.HostAddr = Cache.allocateBytes(hostOpBytes(HI.Kind));
    F.Code.push_back(HI);
  }
  F.CodeBytes = Cache.beginFragment() - F.HostEntryAddr;
  return F;
}

TEST(FragmentCacheTest, HostOpBytesSane) {
  EXPECT_EQ(hostOpBytes(HostOpKind::Guest), 4u);
  EXPECT_EQ(hostOpBytes(HostOpKind::SetLink), 8u);
  EXPECT_EQ(hostOpBytes(HostOpKind::ExitStub), 16u);
  EXPECT_EQ(hostOpBytes(HostOpKind::IBLookup), 0u);
}

TEST(FragmentCacheTest, LookupMissOnEmpty) {
  FragmentCache C(1 << 20);
  EXPECT_FALSE(C.lookup(0x1000).valid());
}

TEST(FragmentCacheTest, InsertThenLookup) {
  FragmentCache C(1 << 20);
  Fragment F = makeFragment(C, 0x1000);
  uint32_t Entry = F.HostEntryAddr;
  HostLoc Loc = C.insert(std::move(F));
  EXPECT_TRUE(Loc.valid());
  EXPECT_EQ(C.lookup(0x1000), Loc);
  EXPECT_EQ(C.locForEntryAddr(Entry), Loc);
  EXPECT_EQ(C.fragmentCount(), 1u);
}

TEST(FragmentCacheTest, AddressesMonotonicAndAligned) {
  FragmentCache C(1 << 20);
  uint32_t A = C.allocateBytes(16);
  uint32_t B = C.allocateBytes(4);
  EXPECT_EQ(A, FragmentCacheBase);
  EXPECT_EQ(B, A + 16);
  EXPECT_EQ(C.usedBytes(), 20u);
}

TEST(FragmentCacheTest, IsFullAfterCapacity) {
  FragmentCache C(4096);
  EXPECT_FALSE(C.isFull());
  C.allocateBytes(4096);
  EXPECT_TRUE(C.isFull());
}

TEST(FragmentCacheTest, FlushDropsLiveKeepsRetired) {
  FragmentCache C(1 << 20);
  Fragment F = makeFragment(C, 0x1000);
  uint32_t Entry = F.HostEntryAddr;
  C.insert(std::move(F));
  C.flushAll();
  EXPECT_FALSE(C.lookup(0x1000).valid());
  EXPECT_FALSE(C.locForEntryAddr(Entry).valid());
  EXPECT_EQ(C.retiredGuestEntry(Entry), 0x1000u);
  EXPECT_EQ(C.retiredGuestEntry(0xDEAD0000), 0u);
  EXPECT_EQ(C.fragmentCount(), 0u);
  EXPECT_EQ(C.usedBytes(), 0u);
  EXPECT_EQ(C.flushCount(), 1u);
}

TEST(FragmentCacheTest, CursorNotResetByFlush) {
  FragmentCache C(1 << 20);
  C.allocateBytes(64);
  C.flushAll();
  // New allocations continue past the old ones: addresses never reused.
  EXPECT_EQ(C.allocateBytes(4), FragmentCacheBase + 64);
}

TEST(FragmentCacheTest, ReinsertAfterFlush) {
  FragmentCache C(1 << 20);
  C.insert(makeFragment(C, 0x1000));
  C.flushAll();
  Fragment F2 = makeFragment(C, 0x1000);
  uint32_t NewEntry = F2.HostEntryAddr;
  HostLoc Loc = C.insert(std::move(F2));
  EXPECT_EQ(C.lookup(0x1000), Loc);
  EXPECT_NE(NewEntry, FragmentCacheBase); // Fresh address.
}

// Regression tests for the one-entry lookup memos: a memoised hit must
// never outlive the mutation that invalidates it. Each test primes the
// memo with a successful lookup first, so a missing invalidation would
// serve the stale answer.

TEST(FragmentCacheTest, MemoisedLookupInvalidatedByFlush) {
  FragmentCache C(1 << 20);
  HostLoc Loc = C.insert(makeFragment(C, 0x1000));
  ASSERT_EQ(C.lookup(0x1000), Loc); // Prime the guest-PC memo.
  C.flushAll();
  EXPECT_FALSE(C.lookup(0x1000).valid());
}

TEST(FragmentCacheTest, MemoisedEntryAddrInvalidatedByFlush) {
  FragmentCache C(1 << 20);
  Fragment F = makeFragment(C, 0x1000);
  uint32_t Entry = F.HostEntryAddr;
  HostLoc Loc = C.insert(std::move(F));
  ASSERT_EQ(C.locForEntryAddr(Entry), Loc); // Prime the entry-addr memo.
  C.flushAll();
  EXPECT_FALSE(C.locForEntryAddr(Entry).valid());
  // The retired mapping still resolves the guest address.
  EXPECT_EQ(C.retiredGuestEntry(Entry), 0x1000u);
}

TEST(FragmentCacheTest, MemoisedLookupFollowsReplaceForGuest) {
  FragmentCache C(1 << 20);
  HostLoc Old = C.insert(makeFragment(C, 0x1000));
  ASSERT_EQ(C.lookup(0x1000), Old); // Prime the memo on the old fragment.
  HostLoc Trace = C.replaceForGuest(makeFragment(C, 0x1000));
  EXPECT_NE(Trace, Old);
  EXPECT_EQ(C.lookup(0x1000), Trace);
}

TEST(FragmentCacheTest, MemoisedLookupSurvivesUnrelatedInsert) {
  FragmentCache C(1 << 20);
  HostLoc L1 = C.insert(makeFragment(C, 0x1000));
  ASSERT_EQ(C.lookup(0x1000), L1);
  C.insert(makeFragment(C, 0x2000)); // Invalidates, must then re-fill.
  EXPECT_EQ(C.lookup(0x1000), L1);
  EXPECT_EQ(C.lookup(0x1000), L1); // Second hit served from the memo.
}

TEST(FragmentCacheTest, MultipleFragmentsIndependent) {
  FragmentCache C(1 << 20);
  HostLoc L1 = C.insert(makeFragment(C, 0x1000));
  HostLoc L2 = C.insert(makeFragment(C, 0x2000));
  EXPECT_NE(L1.Frag, L2.Frag);
  EXPECT_EQ(C.lookup(0x1000), L1);
  EXPECT_EQ(C.lookup(0x2000), L2);
  EXPECT_EQ(C.fragment(L2.Frag).GuestEntry, 0x2000u);
}
