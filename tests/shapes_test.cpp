//===- tests/shapes_test.cpp - Reproduction shape guards ---------*- C++ -*-===//
//
// Part of StrataIB.
//
// Regression guards for the paper's qualitative results at small scale:
// if a refactor breaks an ordering or crossover the experiments depend
// on, these fail long before anyone reruns the full benchmarks.
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"
#include "arch/Timing.h"
#include "core/SdtEngine.h"
#include "vm/GuestVM.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::core;

namespace {

/// Measures one workload's slowdown under (Model, Opts) at small scale.
double slowdownOf(const std::string &Workload,
                  const arch::MachineModel &Model, const SdtOptions &Opts,
                  uint32_t Scale = 4) {
  Expected<isa::Program> P = workloads::buildWorkload(Workload, Scale);
  EXPECT_TRUE(static_cast<bool>(P));

  arch::TimingModel NativeTiming(Model);
  vm::ExecOptions NativeExec;
  NativeExec.Timing = &NativeTiming;
  auto VM = vm::GuestVM::create(*P, NativeExec);
  EXPECT_TRUE(static_cast<bool>(VM));
  vm::RunResult Native = (*VM)->run();
  EXPECT_TRUE(Native.finishedNormally());

  arch::TimingModel SdtTiming(Model);
  vm::ExecOptions SdtExec;
  SdtExec.Timing = &SdtTiming;
  auto Engine = SdtEngine::create(*P, Opts, SdtExec);
  EXPECT_TRUE(static_cast<bool>(Engine));
  vm::RunResult Translated = (*Engine)->run();
  EXPECT_EQ(Translated.Checksum, Native.Checksum);

  return static_cast<double>(SdtTiming.totalCycles()) /
         static_cast<double>(NativeTiming.totalCycles());
}

SdtOptions withMechanism(IBMechanism M) {
  SdtOptions O;
  O.Mechanism = M;
  return O;
}

} // namespace

TEST(ShapeTest, DispatcherIsWorstOnIBHeavyCode) {
  arch::MachineModel X86 = arch::x86Model();
  for (const char *W : {"perlbmk", "gcc", "vortex"}) {
    double Disp = slowdownOf(W, X86, withMechanism(IBMechanism::Dispatcher));
    double Ibtc = slowdownOf(W, X86, withMechanism(IBMechanism::Ibtc));
    double Sieve = slowdownOf(W, X86, withMechanism(IBMechanism::Sieve));
    EXPECT_GT(Disp, 2.0 * Ibtc) << W;
    EXPECT_GT(Disp, 2.0 * Sieve) << W;
  }
}

TEST(ShapeTest, IBLightWorkloadsNearNative) {
  arch::MachineModel X86 = arch::x86Model();
  for (const char *W : {"mcf", "bzip2"}) {
    double Disp = slowdownOf(W, X86, withMechanism(IBMechanism::Dispatcher));
    EXPECT_LT(Disp, 1.6) << W; // Even the worst mechanism barely hurts.
  }
}

TEST(ShapeTest, FullFlagSaveHurtsOnX86NotOnSparc) {
  SdtOptions Light = withMechanism(IBMechanism::Ibtc);
  SdtOptions Full = Light;
  Full.FullFlagSave = true;

  double X86Light = slowdownOf("gcc", arch::x86Model(), Light);
  double X86Full = slowdownOf("gcc", arch::x86Model(), Full);
  EXPECT_GT(X86Full, 1.3 * X86Light); // Big penalty on x86...

  double SparcLight = slowdownOf("gcc", arch::sparcModel(), Light);
  double SparcFull = slowdownOf("gcc", arch::sparcModel(), Full);
  EXPECT_LT(SparcFull, 1.1 * SparcLight); // ...near-noise on SPARC.
}

TEST(ShapeTest, MechanismWinnerFlipsAcrossArchitectures) {
  // The paper's headline: sieve-style dispatch wins on the x86-class
  // model, the IBTC wins on the SPARC-class model (megamorphic case).
  SdtOptions Ibtc = withMechanism(IBMechanism::Ibtc);
  SdtOptions Sieve = withMechanism(IBMechanism::Sieve);
  EXPECT_LT(slowdownOf("perlbmk", arch::x86Model(), Sieve),
            slowdownOf("perlbmk", arch::x86Model(), Ibtc));
  EXPECT_LT(slowdownOf("perlbmk", arch::sparcModel(), Ibtc),
            slowdownOf("perlbmk", arch::sparcModel(), Sieve));
}

TEST(ShapeTest, IbtcSizeSweepMonotoneOnMegamorphicCode) {
  arch::MachineModel X86 = arch::x86Model();
  double Prev = 1e9;
  for (uint32_t Entries : {4u, 16u, 64u, 1024u}) {
    SdtOptions O = withMechanism(IBMechanism::Ibtc);
    O.IbtcEntries = Entries;
    double S = slowdownOf("perlbmk", X86, O);
    EXPECT_LE(S, Prev * 1.02) << Entries; // Monotone within noise.
    Prev = S;
  }
}

TEST(ShapeTest, FastReturnsBeatEveryOtherReturnStrategy) {
  arch::MachineModel X86 = arch::x86Model();
  for (const char *W : {"crafty", "gcc", "vortex"}) {
    SdtOptions Base = withMechanism(IBMechanism::Ibtc);
    SdtOptions Cache = Base;
    Cache.Returns = ReturnStrategy::ReturnCache;
    SdtOptions Shadow = Base;
    Shadow.Returns = ReturnStrategy::ShadowStack;
    SdtOptions Fast = Base;
    Fast.Returns = ReturnStrategy::FastReturn;

    double SBase = slowdownOf(W, X86, Base);
    double SCache = slowdownOf(W, X86, Cache);
    double SShadow = slowdownOf(W, X86, Shadow);
    double SFast = slowdownOf(W, X86, Fast);
    EXPECT_LT(SFast, SCache) << W;
    EXPECT_LT(SFast, SShadow) << W;
    EXPECT_LT(SCache, SBase) << W;
  }
}

TEST(ShapeTest, InlineCacheHelpsMonomorphicHurtsMegamorphic) {
  arch::MachineModel X86 = arch::x86Model();
  SdtOptions Depth0 = withMechanism(IBMechanism::Ibtc);
  SdtOptions Depth1 = Depth0;
  Depth1.InlineCacheDepth = 1;
  SdtOptions Depth4 = Depth0;
  Depth4.InlineCacheDepth = 4;

  // crafty's return sites are near-monomorphic: depth 1 wins clearly.
  EXPECT_LT(slowdownOf("crafty", X86, Depth1),
            slowdownOf("crafty", X86, Depth0));
  // parser's single megamorphic site: deep inlining regresses.
  EXPECT_GT(slowdownOf("parser", X86, Depth4),
            slowdownOf("parser", X86, Depth0));
}

TEST(ShapeTest, AssociativityHelpsOnlySmallTables) {
  arch::MachineModel X86 = arch::x86Model();
  SdtOptions Small1 = withMechanism(IBMechanism::Ibtc);
  Small1.IbtcEntries = 64;
  SdtOptions Small4 = Small1;
  Small4.IbtcAssociativity = 4;
  EXPECT_LT(slowdownOf("perlbmk", X86, Small4),
            slowdownOf("perlbmk", X86, Small1));

  SdtOptions Big1 = withMechanism(IBMechanism::Ibtc);
  Big1.IbtcEntries = 4096;
  SdtOptions Big4 = Big1;
  Big4.IbtcAssociativity = 4;
  EXPECT_GE(slowdownOf("perlbmk", X86, Big4),
            slowdownOf("perlbmk", X86, Big1) * 0.999);
}

TEST(ShapeTest, LinkingIsEssential) {
  arch::MachineModel X86 = arch::x86Model();
  SdtOptions Linked = withMechanism(IBMechanism::Ibtc);
  SdtOptions Unlinked = Linked;
  Unlinked.LinkFragments = false;
  EXPECT_GT(slowdownOf("gzip", X86, Unlinked),
            3.0 * slowdownOf("gzip", X86, Linked));
}

TEST(ShapeTest, BigcodeThrashesTinyFragmentCache) {
  arch::MachineModel X86 = arch::x86Model();
  SdtOptions Big = withMechanism(IBMechanism::Ibtc);
  Big.FragmentCacheBytes = 8 << 20;
  SdtOptions Tiny = Big;
  Tiny.FragmentCacheBytes = 8 << 10;
  EXPECT_GT(slowdownOf("bigcode", X86, Tiny),
            2.0 * slowdownOf("bigcode", X86, Big));
}

TEST(ShapeTest, TimingIsDeterministic) {
  arch::MachineModel X86 = arch::x86Model();
  SdtOptions O = withMechanism(IBMechanism::Sieve);
  O.Returns = ReturnStrategy::FastReturn;
  EXPECT_DOUBLE_EQ(slowdownOf("gcc", X86, O), slowdownOf("gcc", X86, O));
}

TEST(ShapeTest, BigcodeTransparentUnderFlushPressure) {
  Expected<isa::Program> P = workloads::buildWorkload("bigcode", 2);
  ASSERT_TRUE(static_cast<bool>(P));
  auto VM = vm::GuestVM::create(*P, vm::ExecOptions());
  ASSERT_TRUE(static_cast<bool>(VM));
  vm::RunResult Native = (*VM)->run();
  ASSERT_TRUE(Native.finishedNormally());

  SdtOptions O;
  O.FragmentCacheBytes = 4096;
  O.Returns = ReturnStrategy::FastReturn;
  auto Engine = SdtEngine::create(*P, O, vm::ExecOptions());
  ASSERT_TRUE(static_cast<bool>(Engine));
  vm::RunResult Translated = (*Engine)->run();
  EXPECT_EQ(Native.Checksum, Translated.Checksum);
  EXPECT_EQ(Native.InstructionCount, Translated.InstructionCount);
  EXPECT_GT((*Engine)->stats().Flushes, 0u);
}
