//===- tests/assembler_test.cpp - Assembler tests ----------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//

#include "assembler/AsmBuilder.h"
#include "assembler/AsmLexer.h"
#include "assembler/Assembler.h"
#include "isa/Disassembler.h"
#include "isa/Encoding.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::assembler;
using namespace sdt::isa;

static Program mustAssemble(std::string_view Src) {
  Expected<Program> P = assemble(Src);
  EXPECT_TRUE(static_cast<bool>(P))
      << (P ? "" : P.error().message());
  return *P;
}

static std::string assembleError(std::string_view Src) {
  Expected<Program> P = assemble(Src);
  EXPECT_FALSE(static_cast<bool>(P)) << "expected assembly to fail";
  return P ? "" : P.error().message();
}

static Instruction fetchAt(const Program &P, uint32_t Addr) {
  Expected<Instruction> I = P.fetch(Addr);
  EXPECT_TRUE(static_cast<bool>(I));
  return *I;
}

// --- Lexer -------------------------------------------------------------

TEST(AsmLexerTest, CommentsStripped) {
  auto Lines = lexAssembly("add t0, t1, t2 # comment\n; full line\n");
  ASSERT_TRUE(static_cast<bool>(Lines));
  ASSERT_EQ(Lines->size(), 1u);
  EXPECT_EQ((*Lines)[0].Mnemonic, "add");
  EXPECT_EQ((*Lines)[0].Operands.size(), 3u);
}

TEST(AsmLexerTest, LabelsPeeled) {
  auto Lines = lexAssembly("a: b: nop\n");
  ASSERT_TRUE(static_cast<bool>(Lines));
  ASSERT_EQ(Lines->size(), 1u);
  EXPECT_EQ((*Lines)[0].Labels, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*Lines)[0].Mnemonic, "nop");
}

TEST(AsmLexerTest, LabelOnOwnLine) {
  auto Lines = lexAssembly("start:\n  nop\n");
  ASSERT_TRUE(static_cast<bool>(Lines));
  ASSERT_EQ(Lines->size(), 2u);
  EXPECT_TRUE((*Lines)[0].Mnemonic.empty());
}

TEST(AsmLexerTest, StringLiteralProtectsCommasAndComments) {
  auto Lines = lexAssembly(".asciz \"a,b # c\"\n");
  ASSERT_TRUE(static_cast<bool>(Lines));
  ASSERT_EQ((*Lines)[0].Operands.size(), 1u);
  EXPECT_EQ((*Lines)[0].Operands[0], "\"a,b # c\"");
}

TEST(AsmLexerTest, StringEscapes) {
  Expected<std::string> S = decodeStringLiteral("\"a\\n\\t\\0\\\\\\\"\"", 1);
  ASSERT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(*S, std::string("a\n\t\0\\\"", 6));
}

TEST(AsmLexerTest, BadEscapeFails) {
  EXPECT_FALSE(static_cast<bool>(decodeStringLiteral("\"\\q\"", 3)));
}

TEST(AsmLexerTest, LineNumbersTracked) {
  auto Lines = lexAssembly("\n\nnop\n");
  ASSERT_TRUE(static_cast<bool>(Lines));
  EXPECT_EQ((*Lines)[0].Number, 3u);
}

// --- Basic assembly ---------------------------------------------------------

TEST(AssemblerTest, MinimalProgram) {
  Program P = mustAssemble("main: halt\n");
  EXPECT_EQ(P.loadAddress(), 0x1000u);
  EXPECT_EQ(P.entry(), 0x1000u);
  EXPECT_EQ(fetchAt(P, 0x1000).Op, Opcode::Halt);
}

TEST(AssemblerTest, OrgSetsLoadAddress) {
  Program P = mustAssemble(".org 0x2000\nmain: halt\n");
  EXPECT_EQ(P.loadAddress(), 0x2000u);
  EXPECT_EQ(P.entry(), 0x2000u);
}

TEST(AssemblerTest, EntryDirective) {
  Program P = mustAssemble("first: nop\nsecond: halt\n.entry second\n");
  EXPECT_EQ(P.entry(), 0x1004u);
}

TEST(AssemblerTest, EntryDefaultsToOriginWithoutMain) {
  Program P = mustAssemble("start: halt\n");
  EXPECT_EQ(P.entry(), 0x1000u);
}

TEST(AssemblerTest, AllFormatsParse) {
  Program P = mustAssemble(R"(
main:
    add  t0, t1, t2
    addi t0, t0, -5
    lui  t3, 0x1234
    lw   t4, 8(sp)
    sw   t4, -8(sp)
    beq  t0, zero, main
    j    main
    jal  main
    jr   t0
    jalr ra, t0
    ret
    syscall
    halt
)");
  EXPECT_EQ(fetchAt(P, 0x1000).Op, Opcode::Add);
  EXPECT_EQ(fetchAt(P, 0x1004).Imm, -5);
  EXPECT_EQ(fetchAt(P, 0x1008).Imm, 0x1234);
  EXPECT_EQ(fetchAt(P, 0x100C).Imm, 8);
  EXPECT_EQ(fetchAt(P, 0x1010).Imm, -8);
  Instruction B = fetchAt(P, 0x1014);
  EXPECT_EQ(B.branchTarget(0x1014), 0x1000u);
  EXPECT_EQ(fetchAt(P, 0x1018).directTarget(), 0x1000u);
  EXPECT_EQ(fetchAt(P, 0x1024).Op, Opcode::Jalr);
  EXPECT_EQ(fetchAt(P, 0x1028).Op, Opcode::Ret);
}

TEST(AssemblerTest, ForwardReferences) {
  Program P = mustAssemble("main: j end\nnop\nend: halt\n");
  EXPECT_EQ(fetchAt(P, 0x1000).directTarget(), 0x1008u);
}

// --- Pseudo-instructions ---------------------------------------------------

TEST(AssemblerPseudoTest, LiSmallAndLarge) {
  Program P = mustAssemble("main:\n li t0, 5\n li t1, 0x12345678\n"
                           " li t2, -1\n halt\n");
  // li expands to lui+ori.
  Instruction Lui0 = fetchAt(P, 0x1000);
  Instruction Ori0 = fetchAt(P, 0x1004);
  EXPECT_EQ(Lui0.Op, Opcode::Lui);
  EXPECT_EQ(Lui0.Imm, 0);
  EXPECT_EQ(Ori0.Op, Opcode::Ori);
  EXPECT_EQ(Ori0.Imm, 5);
  EXPECT_EQ(fetchAt(P, 0x1008).Imm, 0x1234);
  EXPECT_EQ(fetchAt(P, 0x100C).Imm, 0x5678);
  EXPECT_EQ(fetchAt(P, 0x1010).Imm, 0xFFFF);
  EXPECT_EQ(fetchAt(P, 0x1014).Imm, 0xFFFF);
}

TEST(AssemblerPseudoTest, LaResolvesSymbol) {
  Program P = mustAssemble("main:\n la t0, data\n halt\ndata: .word 7\n");
  // data at 0x100C.
  EXPECT_EQ(fetchAt(P, 0x1000).Imm, 0);      // hi16 of 0x100C
  EXPECT_EQ(fetchAt(P, 0x1004).Imm, 0x100C); // lo16
}

TEST(AssemblerPseudoTest, MoveNegNop) {
  Program P = mustAssemble("main:\n nop\n move t0, t1\n neg t2, t3\n halt\n");
  Instruction Nop = fetchAt(P, 0x1000);
  EXPECT_EQ(Nop.Op, Opcode::Add);
  EXPECT_EQ(Nop.Rd, 0);
  Instruction Mv = fetchAt(P, 0x1004);
  EXPECT_EQ(Mv.Op, Opcode::Add);
  EXPECT_EQ(Mv.Rs2, 0);
  Instruction Neg = fetchAt(P, 0x1008);
  EXPECT_EQ(Neg.Op, Opcode::Sub);
  EXPECT_EQ(Neg.Rs1, 0);
}

TEST(AssemblerPseudoTest, BranchAliases) {
  Program P = mustAssemble(R"(
main:
    beqz t0, main
    bnez t0, main
    bgt  t0, t1, main
    ble  t0, t1, main
    b    main
    halt
)");
  EXPECT_EQ(fetchAt(P, 0x1000).Op, Opcode::Beq);
  EXPECT_EQ(fetchAt(P, 0x1004).Op, Opcode::Bne);
  Instruction Bgt = fetchAt(P, 0x1008);
  EXPECT_EQ(Bgt.Op, Opcode::Blt); // Swapped operands.
  EXPECT_EQ(Bgt.Rs1, 9u);         // t1
  EXPECT_EQ(Bgt.Rs2, 8u);         // t0
  EXPECT_EQ(fetchAt(P, 0x100C).Op, Opcode::Bge);
  Instruction B = fetchAt(P, 0x1010);
  EXPECT_EQ(B.Op, Opcode::Beq);
  EXPECT_EQ(B.Rs1, 0);
  EXPECT_EQ(B.Rs2, 0);
}

TEST(AssemblerPseudoTest, PushPop) {
  Program P = mustAssemble("main:\n push ra\n pop ra\n halt\n");
  Instruction A = fetchAt(P, 0x1000); // addi sp, sp, -4
  EXPECT_EQ(A.Op, Opcode::Addi);
  EXPECT_EQ(A.Imm, -4);
  Instruction S = fetchAt(P, 0x1004); // sw ra, 0(sp)
  EXPECT_EQ(S.Op, Opcode::Sw);
  EXPECT_EQ(S.Rd, 31u);
  Instruction L = fetchAt(P, 0x1008); // lw ra, 0(sp)
  EXPECT_EQ(L.Op, Opcode::Lw);
  Instruction A2 = fetchAt(P, 0x100C);
  EXPECT_EQ(A2.Imm, 4);
}

TEST(AssemblerPseudoTest, JalrOneOperandDefaultsRa) {
  Program P = mustAssemble("main:\n jalr t0\n halt\n");
  Instruction I = fetchAt(P, 0x1000);
  EXPECT_EQ(I.Op, Opcode::Jalr);
  EXPECT_EQ(I.Rd, 31u);
}

TEST(AssemblerPseudoTest, CallAlias) {
  Program P = mustAssemble("main:\n call f\n halt\nf: ret\n");
  EXPECT_EQ(fetchAt(P, 0x1000).Op, Opcode::Jal);
}

// --- Directives ----------------------------------------------------------

TEST(AssemblerDirectiveTest, WordAndByteLayout) {
  Program P = mustAssemble(
      "main: halt\nw: .word 0x11223344, -1\nb: .byte 1, 2, 255\n");
  uint32_t W;
  EXPECT_TRUE(P.contains(0x1004, 4));
  W = readWordLE(&P.image()[0x1004 - 0x1000]);
  EXPECT_EQ(W, 0x11223344u);
  W = readWordLE(&P.image()[0x1008 - 0x1000]);
  EXPECT_EQ(W, 0xFFFFFFFFu);
  EXPECT_EQ(P.image()[0x100C - 0x1000], 1);
  EXPECT_EQ(P.image()[0x100E - 0x1000], 255);
}

TEST(AssemblerDirectiveTest, WordWithSymbolAndAddend) {
  Program P = mustAssemble("main: halt\nt: .word main, main+8\n");
  EXPECT_EQ(readWordLE(&P.image()[4]), 0x1000u);
  EXPECT_EQ(readWordLE(&P.image()[8]), 0x1008u);
}

TEST(AssemblerDirectiveTest, SpaceZeroFills) {
  Program P = mustAssemble("main: halt\nbuf: .space 8\nend: .word 1\n");
  Expected<uint32_t> End = P.symbol("end");
  ASSERT_TRUE(static_cast<bool>(End));
  EXPECT_EQ(*End, 0x100Cu);
  EXPECT_EQ(P.image()[5], 0);
}

TEST(AssemblerDirectiveTest, AlignPads) {
  Program P = mustAssemble("main: halt\nx: .byte 1\n.align 4\ny: .word 2\n");
  Expected<uint32_t> Y = P.symbol("y");
  ASSERT_TRUE(static_cast<bool>(Y));
  EXPECT_EQ(*Y, 0x1008u);
}

TEST(AssemblerDirectiveTest, AscizAppendsNul) {
  Program P = mustAssemble("main: halt\ns: .asciz \"hi\"\n");
  EXPECT_EQ(P.image()[4], 'h');
  EXPECT_EQ(P.image()[5], 'i');
  EXPECT_EQ(P.image()[6], 0);
}

TEST(AssemblerDirectiveTest, LabelAtEndOfFile) {
  Program P = mustAssemble("main: halt\nend:\n");
  Expected<uint32_t> End = P.symbol("end");
  ASSERT_TRUE(static_cast<bool>(End));
  EXPECT_EQ(*End, 0x1004u);
}

// --- Errors ------------------------------------------------------------

TEST(AssemblerErrorTest, UnknownMnemonic) {
  EXPECT_NE(assembleError("main: fmadd t0, t1, t2\n").find("fmadd"),
            std::string::npos);
}

TEST(AssemblerErrorTest, OperandCountMismatch) {
  EXPECT_NE(assembleError("add t0, t1\n").find("expects 3"),
            std::string::npos);
}

TEST(AssemblerErrorTest, BadRegister) {
  EXPECT_NE(assembleError("add t0, t1, q9\n").find("register"),
            std::string::npos);
}

TEST(AssemblerErrorTest, UndefinedSymbol) {
  EXPECT_NE(assembleError("main: j nowhere\n").find("undefined symbol"),
            std::string::npos);
}

TEST(AssemblerErrorTest, DuplicateLabel) {
  EXPECT_NE(assembleError("a: nop\na: nop\n").find("duplicate"),
            std::string::npos);
}

TEST(AssemblerErrorTest, ImmediateOutOfRange) {
  EXPECT_NE(assembleError("addi t0, t0, 40000\n").find("out of range"),
            std::string::npos);
  EXPECT_NE(assembleError("addi t0, t0, -40000\n").find("out of range"),
            std::string::npos);
}

TEST(AssemblerErrorTest, LineNumberInDiagnostic) {
  EXPECT_NE(assembleError("nop\nnop\nbogus t0\n").find("line 3"),
            std::string::npos);
}

TEST(AssemblerErrorTest, OrgAfterCodeRejected) {
  EXPECT_NE(assembleError("nop\n.org 0x2000\n").find(".org"),
            std::string::npos);
}

TEST(AssemblerErrorTest, BadAlign) {
  EXPECT_NE(assembleError(".align 3\n").find("power of two"),
            std::string::npos);
}

TEST(AssemblerErrorTest, UnknownDirective) {
  EXPECT_NE(assembleError(".bogus 1\n").find("unknown directive"),
            std::string::npos);
}

TEST(AssemblerErrorTest, MissingEntrySymbol) {
  EXPECT_NE(assembleError("nop\n.entry nowhere\n").find("entry"),
            std::string::npos);
}

TEST(AssemblerErrorTest, MalformedMemOperand) {
  EXPECT_NE(assembleError("lw t0, t1\n").find("offset(base)"),
            std::string::npos);
}

TEST(AssemblerErrorTest, MalformedLabel) {
  Expected<Program> P = assemble("a b: nop\n");
  EXPECT_FALSE(static_cast<bool>(P));
}

// --- Round trips ----------------------------------------------------------

TEST(AssemblerRoundTrip, DisassembleReassemble) {
  const char *Src = "main:\n add t0, t1, t2\n lw t3, 4(sp)\n"
                    " beq t0, t3, main\n jr t0\n ret\n halt\n";
  Program P1 = mustAssemble(Src);
  // Disassemble every instruction and re-assemble the result.
  std::string Redis = "main:\n";
  for (uint32_t A = P1.loadAddress(); A < P1.endAddress(); A += 4) {
    Expected<Instruction> I = P1.fetch(A);
    ASSERT_TRUE(static_cast<bool>(I));
    Redis += "    " + disassemble(*I, A) + "\n";
  }
  Program P2 = mustAssemble(Redis);
  EXPECT_EQ(P1.image(), P2.image());
}

// --- AsmBuilder ----------------------------------------------------------

TEST(AsmBuilderTest, BuildsRunnableSource) {
  AsmBuilder B;
  B.org(0x1000);
  B.entry("main");
  B.comment("trivial");
  B.label("main");
  B.emitf("li t0, %d", 42);
  B.emit("halt");
  Expected<Program> P = B.build();
  ASSERT_TRUE(static_cast<bool>(P)) << P.error().message();
  EXPECT_EQ(P->entry(), 0x1000u);
}
