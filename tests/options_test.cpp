//===- tests/options_test.cpp - Configuration surface tests ------*- C++ -*-===//
//
// Part of StrataIB.
//
// Locks down the option-description strings the benchmark reports rely
// on, and the name functions used throughout the harness.
//
//===----------------------------------------------------------------------===//

#include "core/SdtOptions.h"

#include <gtest/gtest.h>

using namespace sdt;
using namespace sdt::core;

TEST(SdtOptionsTest, DefaultDescribe) {
  SdtOptions O;
  EXPECT_EQ(O.describe(), "ibtc(shared,4096,light) returns=as-indirect");
}

TEST(SdtOptionsTest, DescribeCoversEveryAxis) {
  SdtOptions O;
  O.Mechanism = IBMechanism::Sieve;
  O.SieveBuckets = 256;
  O.FullFlagSave = true;
  O.Returns = ReturnStrategy::FastReturn;
  O.InlineCacheDepth = 2;
  O.LinkFragments = false;
  O.EnableTraces = true;
  O.TraceHotThreshold = 10;
  O.MaxTraceBlocks = 8;
  std::string D = O.describe();
  EXPECT_NE(D.find("sieve(256,full)"), std::string::npos);
  EXPECT_NE(D.find("returns=fast-return"), std::string::npos);
  EXPECT_NE(D.find("inline=2"), std::string::npos);
  EXPECT_NE(D.find("nolink"), std::string::npos);
  EXPECT_NE(D.find("traces(hot=10,max=8)"), std::string::npos);
}

TEST(SdtOptionsTest, DescribePerClassOverrides) {
  SdtOptions O;
  O.JumpMechanism = IBMechanism::Sieve;
  O.CallMechanism = IBMechanism::Dispatcher;
  std::string D = O.describe();
  EXPECT_NE(D.find("jumps=sieve"), std::string::npos);
  EXPECT_NE(D.find("calls=dispatcher"), std::string::npos);
  // Overrides equal to the main mechanism are not noise.
  SdtOptions Same;
  Same.JumpMechanism = Same.Mechanism;
  EXPECT_EQ(Same.describe().find("jumps="), std::string::npos);
}

TEST(SdtOptionsTest, DescribeAssociativityAndReturnCache) {
  SdtOptions O;
  O.IbtcAssociativity = 4;
  O.IbtcShared = false;
  O.IbtcEntries = 64;
  O.Returns = ReturnStrategy::ReturnCache;
  O.ReturnCacheEntries = 128;
  std::string D = O.describe();
  EXPECT_NE(D.find("ibtc(private,64x4,light)"), std::string::npos);
  EXPECT_NE(D.find("returns=return-cache(128)"), std::string::npos);
}

TEST(SdtOptionsTest, NameFunctions) {
  EXPECT_STREQ(ibClassName(IBClass::Jump), "ind-jump");
  EXPECT_STREQ(ibClassName(IBClass::Call), "ind-call");
  EXPECT_STREQ(ibClassName(IBClass::Return), "return");
  EXPECT_STREQ(ibMechanismName(IBMechanism::Dispatcher), "dispatcher");
  EXPECT_STREQ(ibMechanismName(IBMechanism::Ibtc), "ibtc");
  EXPECT_STREQ(ibMechanismName(IBMechanism::Sieve), "sieve");
  EXPECT_STREQ(returnStrategyName(ReturnStrategy::AsIndirect),
               "as-indirect");
  EXPECT_STREQ(returnStrategyName(ReturnStrategy::ShadowStack),
               "shadow-stack");
}
