//===- tests/smc_test.cpp - Self-modifying-code coherence tests --*- C++ -*-===//
//
// Part of StrataIB.
//
// The SMC bugfix under test: a guest store into its own code range must
// invalidate every stale decoded/translated view before it can execute
// again. Covers the GuestMemory write-tracking primitive, DecodeCache
// invalidation, engine-level fragment invalidation (including killing
// the currently-executing fragment), the analytic smcpatch regression,
// differential sweeps of both SMC workloads across mechanism and
// cache-policy configurations, and trace/stat reconciliation.
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"
#include "arch/Timing.h"
#include "assembler/Assembler.h"
#include "cachemgr/CachePolicy.h"
#include "core/SdtEngine.h"
#include "isa/Encoding.h"
#include "trace/TraceSink.h"
#include "vm/DecodeCache.h"
#include "vm/GuestVM.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace sdt;
using namespace sdt::core;
using namespace sdt::vm;
using namespace sdt::workloads;

using Ranges = std::vector<std::pair<uint32_t, uint32_t>>;

// --- GuestMemory write tracking ---------------------------------------------

TEST(CodeWriteTrackingTest, OffByDefault) {
  GuestMemory M(1 << 20);
  EXPECT_FALSE(M.hasPendingCodeWrites());
  ASSERT_TRUE(M.store32(0x1000, 0xDEADBEEF));
  ASSERT_TRUE(M.store8(0x2000, 7));
  EXPECT_FALSE(M.hasPendingCodeWrites());
  EXPECT_TRUE(M.takePendingCodeWrites().empty());
}

TEST(CodeWriteTrackingTest, WordSnappedRanges) {
  GuestMemory M(1 << 20);
  M.trackCodeWrites(0x1000, 64);

  // A byte store dirties exactly the word holding it.
  ASSERT_TRUE(M.store8(0x1001, 0xAA));
  ASSERT_TRUE(M.hasPendingCodeWrites());
  Ranges R = M.takePendingCodeWrites();
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0], std::make_pair(0x1000u, 0x1004u));
  EXPECT_FALSE(M.hasPendingCodeWrites());

  // Halfword in the upper half of a word still maps to that word.
  ASSERT_TRUE(M.store16(0x1012, 0xBEEF));
  R = M.takePendingCodeWrites();
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0], std::make_pair(0x1010u, 0x1014u));

  // Stores outside the window never record.
  M.trackCodeWrites(0x2000, 64);
  ASSERT_TRUE(M.store32(0x2040, 1)); // one past the end
  ASSERT_TRUE(M.store32(0x1FFC, 1)); // just below
  ASSERT_TRUE(M.store32(0x8000, 1)); // far away
  EXPECT_FALSE(M.hasPendingCodeWrites());
}

TEST(CodeWriteTrackingTest, AdjacentWritesCoalesce) {
  GuestMemory M(1 << 20);
  M.trackCodeWrites(0x1000, 0x1000);

  // A sequential patch loop becomes one range...
  ASSERT_TRUE(M.store32(0x1100, 1));
  ASSERT_TRUE(M.store32(0x1104, 2));
  ASSERT_TRUE(M.store32(0x1108, 3));
  // ...and a disjoint store starts a new one.
  ASSERT_TRUE(M.store32(0x1200, 4));
  Ranges R = M.takePendingCodeWrites();
  ASSERT_EQ(R.size(), 2u);
  EXPECT_EQ(R[0], std::make_pair(0x1100u, 0x110Cu));
  EXPECT_EQ(R[1], std::make_pair(0x1200u, 0x1204u));
}

TEST(CodeWriteTrackingTest, DisableDropsWindowAndPending) {
  GuestMemory M(1 << 20);
  M.trackCodeWrites(0x1000, 0x100);
  ASSERT_TRUE(M.store32(0x1000, 1));
  EXPECT_TRUE(M.hasPendingCodeWrites());
  M.trackCodeWrites(0, 0); // off: drops the pending set too
  EXPECT_FALSE(M.hasPendingCodeWrites());
  ASSERT_TRUE(M.store32(0x1000, 2));
  EXPECT_FALSE(M.hasPendingCodeWrites());
}

TEST(CodeWriteTrackingTest, SizeProblemStrings) {
  EXPECT_NE(GuestMemory::sizeProblem(0), nullptr);
  EXPECT_NE(GuestMemory::sizeProblem(GuestMemory::PageSize), nullptr);
  EXPECT_NE(GuestMemory::sizeProblem(2 * GuestMemory::PageSize + 4),
            nullptr);
  EXPECT_EQ(GuestMemory::sizeProblem(2 * GuestMemory::PageSize), nullptr);
  EXPECT_EQ(GuestMemory::sizeProblem(GuestMemory::DefaultSize), nullptr);
}

// --- DecodeCache invalidation -----------------------------------------------

TEST(DecodeCacheInvalidateTest, RefetchSeesPatchedWord) {
  GuestMemory M(1 << 20);
  ASSERT_TRUE(M.store32(0x1000, isa::encode(isa::makeNop())));
  DecodeCache D(M, 0x1000, 8);
  const isa::Instruction *I = D.fetch(0x1000);
  ASSERT_NE(I, nullptr);
  EXPECT_EQ(I->Op, isa::Opcode::Add);

  // Overwrite with an invalid encoding; the cached view is stale until
  // the owner invalidates.
  ASSERT_TRUE(M.store32(0x1000, 0xFC000000));
  EXPECT_NE(D.fetch(0x1000), nullptr); // still the stale decode
  EXPECT_EQ(D.invalidate(0x1000, 4), 1u);
  EXPECT_EQ(D.fetch(0x1000), nullptr); // re-decoded: invalid now

  // Invalidating untouched or out-of-region ranges resets nothing.
  EXPECT_EQ(D.invalidate(0x1004, 4), 0u); // never fetched
  EXPECT_EQ(D.invalidate(0x4000, 64), 0u);
  EXPECT_EQ(D.invalidate(0x0800, 0x800), 0u); // clamps to region start
}

// --- create()-time memory-size validation -----------------------------------

TEST(MemorySizeValidationTest, BadSizesAreErrorsNotAsserts) {
  Expected<isa::Program> P =
      assembler::assemble("main:\n li a0, 0\n li v0, 0\n syscall\n");
  ASSERT_TRUE(static_cast<bool>(P));

  ExecOptions Exec;
  Exec.MemorySize = 2 * GuestMemory::PageSize + 4; // not page-aligned
  auto VM = GuestVM::create(*P, Exec);
  ASSERT_FALSE(static_cast<bool>(VM));
  EXPECT_NE(VM.error().message().find("MemorySize"), std::string::npos);

  auto Engine = SdtEngine::create(*P, SdtOptions(), Exec);
  ASSERT_FALSE(static_cast<bool>(Engine));
  EXPECT_NE(Engine.error().message().find("MemorySize"), std::string::npos);

  Exec.MemorySize = GuestMemory::PageSize; // too small
  EXPECT_FALSE(static_cast<bool>(GuestVM::create(*P, Exec)));
  EXPECT_FALSE(
      static_cast<bool>(SdtEngine::create(*P, SdtOptions(), Exec)));
}

// --- Killing the currently-executing fragment -------------------------------

// The store and the word it rewrites sit in the SAME basic block, so the
// engine must abandon the fragment it is standing in and resume at the
// next guest pc through the dispatcher. A stale engine executes the old
// "addi s1, s1, 1" and exits 2; a coherent one exits 200.
TEST(SelfModifyTest, StorePatchingOwnFragmentTakesEffectImmediately) {
  static const char *Src = R"(
main:
    la t0, ps
    la t1, tmpl
    lw t2, 0(t1)
    li s1, 0
    jal blk
    jal blk
    move a0, s1
    li v0, 0
    syscall
blk:
    sw t2, 0(t0)      # rewrites ps, one instruction ahead in this block
ps:
    addi s1, s1, 1    # replaced by the template before it ever runs
    ret
tmpl:
    addi s1, s1, 100  # never executed in place
)";
  Expected<isa::Program> P = assembler::assemble(Src);
  ASSERT_TRUE(static_cast<bool>(P)) << (P ? "" : P.error().message());

  auto VM = GuestVM::create(*P, ExecOptions());
  ASSERT_TRUE(static_cast<bool>(VM));
  RunResult Native = (*VM)->run();
  ASSERT_EQ(Native.Reason, ExitReason::Exited) << Native.FaultMessage;
  ASSERT_EQ(Native.ExitCode, 200);

  for (IBMechanism Mech : {IBMechanism::Dispatcher, IBMechanism::Ibtc,
                           IBMechanism::Sieve}) {
    SdtOptions Opts;
    Opts.Mechanism = Mech;
    auto Engine = SdtEngine::create(*P, Opts, ExecOptions());
    ASSERT_TRUE(static_cast<bool>(Engine));
    RunResult Translated = (*Engine)->run();
    EXPECT_EQ(Translated.Reason, ExitReason::Exited)
        << Translated.FaultMessage;
    EXPECT_EQ(Translated.ExitCode, 200);
    EXPECT_EQ(Translated.InstructionCount, Native.InstructionCount);
    // Both calls patch (same bytes the second time, but stores are
    // detected by address, not value).
    EXPECT_EQ((*Engine)->stats().CodeWriteInvalidations, 2u);
    EXPECT_GE((*Engine)->stats().FragmentsInvalidatedByWrite, 2u);
  }
}

// --- The analytic smcpatch regression ---------------------------------------

// smcpatch's printed total is CallsPerPhase * sum(K) by construction.
// An engine that keeps executing the stale kernel translation prints
// CallsPerPhase * 6 * K[0] instead — this is the test that fails on the
// pre-fix engine and passes on the fixed one.
TEST(SelfModifyTest, SmcPatchMatchesAnalyticTotal) {
  const uint32_t Scale = 1;
  Expected<isa::Program> P = buildWorkload("smcpatch", Scale);
  ASSERT_TRUE(static_cast<bool>(P)) << (P ? "" : P.error().message());

  auto VM = GuestVM::create(*P, ExecOptions());
  ASSERT_TRUE(static_cast<bool>(VM));
  RunResult Native = (*VM)->run();
  ASSERT_TRUE(Native.finishedNormally()) << Native.FaultMessage;

  const uint64_t Analytic = Scale * 300ull * (1 + 2 + 3 + 5 + 7 + 11);
  EXPECT_NE(Native.Output.find(std::to_string(Analytic)),
            std::string::npos)
      << "oracle output: " << Native.Output;

  auto Engine = SdtEngine::create(*P, SdtOptions(), ExecOptions());
  ASSERT_TRUE(static_cast<bool>(Engine));
  RunResult Translated = (*Engine)->run();
  EXPECT_EQ(Native.Output, Translated.Output);
  EXPECT_EQ(Native.Checksum, Translated.Checksum);
  EXPECT_EQ(Native.InstructionCount, Translated.InstructionCount);
  // 5 phase-boundary patches, each invalidating at least the kernel.
  EXPECT_EQ((*Engine)->stats().CodeWriteInvalidations, 5u);
  EXPECT_GE((*Engine)->stats().FragmentsInvalidatedByWrite, 5u);
  EXPECT_GT((*Engine)->stats().StaleBytesDiscarded, 0u);
}

// --- Differential sweep: SMC workloads x configurations ---------------------

namespace {

struct SmcConfig {
  const char *Name;
  SdtOptions Opts;
};

std::vector<SmcConfig> smcConfigs() {
  std::vector<SmcConfig> Cases;
  auto add = [&Cases](const char *Name, auto Mutate) {
    SdtOptions O;
    Mutate(O);
    Cases.push_back({Name, O});
  };
  add("dispatcher",
      [](SdtOptions &O) { O.Mechanism = IBMechanism::Dispatcher; });
  add("ibtc", [](SdtOptions &O) { O.Mechanism = IBMechanism::Ibtc; });
  add("ibtc_private", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.IbtcShared = false;
    O.IbtcEntries = 16;
  });
  add("sieve", [](SdtOptions &O) { O.Mechanism = IBMechanism::Sieve; });
  add("sieve_tiny", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Sieve;
    O.SieveBuckets = 2;
  });
  add("inline2_ibtc", [](SdtOptions &O) {
    O.Mechanism = IBMechanism::Ibtc;
    O.InlineCacheDepth = 2;
  });
  add("return_cache", [](SdtOptions &O) {
    O.Returns = ReturnStrategy::ReturnCache;
    O.ReturnCacheEntries = 16;
  });
  add("fast_returns",
      [](SdtOptions &O) { O.Returns = ReturnStrategy::FastReturn; });
  add("shadow_stack",
      [](SdtOptions &O) { O.Returns = ReturnStrategy::ShadowStack; });
  add("nolink", [](SdtOptions &O) { O.LinkFragments = false; });
  add("traces", [](SdtOptions &O) {
    O.EnableTraces = true;
    O.TraceHotThreshold = 4;
  });
  // Bounded caches: capacity eviction and SMC invalidation interleave.
  add("flush_4k", [](SdtOptions &O) {
    O.CachePolicy = cachemgr::CachePolicyKind::FullFlush;
    O.FragmentCacheBytes = 4096;
    O.MaxFragmentInstrs = 6;
  });
  add("fifo_4k", [](SdtOptions &O) {
    O.CachePolicy = cachemgr::CachePolicyKind::Fifo;
    O.FragmentCacheBytes = 4096;
    O.MaxFragmentInstrs = 6;
  });
  add("generational_4k", [](SdtOptions &O) {
    O.CachePolicy = cachemgr::CachePolicyKind::Generational;
    O.FragmentCacheBytes = 4096;
    O.MaxFragmentInstrs = 6;
    O.CacheGenPromoteExecs = 4;
  });
  add("fifo_4k_traces", [](SdtOptions &O) {
    O.CachePolicy = cachemgr::CachePolicyKind::Fifo;
    O.FragmentCacheBytes = 4096;
    O.MaxFragmentInstrs = 6;
    O.EnableTraces = true;
    O.TraceHotThreshold = 3;
  });
  return Cases;
}

struct SmcDiffParam {
  const char *Workload;
  SmcConfig Config;
};

class SmcDifferentialTest
    : public ::testing::TestWithParam<SmcDiffParam> {};

} // namespace

TEST_P(SmcDifferentialTest, SelfModifyingGuestStaysTransparent) {
  const SmcDiffParam &P = GetParam();
  Expected<isa::Program> Program = buildWorkload(P.Workload, 1);
  ASSERT_TRUE(static_cast<bool>(Program))
      << (Program ? "" : Program.error().message());

  ExecOptions Exec;
  Exec.MaxInstructions = 50000000;
  auto VM = GuestVM::create(*Program, Exec);
  ASSERT_TRUE(static_cast<bool>(VM));
  RunResult Native = (*VM)->run();
  ASSERT_TRUE(Native.finishedNormally()) << Native.FaultMessage;

  auto Engine = SdtEngine::create(*Program, P.Config.Opts, Exec);
  ASSERT_TRUE(static_cast<bool>(Engine));
  RunResult Translated = (*Engine)->run();

  EXPECT_EQ(Native.Reason, Translated.Reason) << Translated.FaultMessage;
  EXPECT_EQ(Native.ExitCode, Translated.ExitCode);
  EXPECT_EQ(Native.Output, Translated.Output);
  EXPECT_EQ(Native.Checksum, Translated.Checksum);
  EXPECT_EQ(Native.InstructionCount, Translated.InstructionCount);
  // Every configuration must actually see the code writes.
  EXPECT_GT((*Engine)->stats().CodeWriteInvalidations, 0u);
}

static std::vector<SmcDiffParam> makeSmcParams() {
  std::vector<SmcDiffParam> Params;
  for (const char *W : {"smcpatch", "smctable"})
    for (const SmcConfig &C : smcConfigs())
      Params.push_back({W, C});
  return Params;
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, SmcDifferentialTest, ::testing::ValuesIn(makeSmcParams()),
    [](const ::testing::TestParamInfo<SmcDiffParam> &Info) {
      return std::string(Info.param.Workload) + "_" +
             Info.param.Config.Name;
    });

// --- Trace / stats reconciliation -------------------------------------------

TEST(SelfModifyTest, TraceEventsMatchCounters) {
  Expected<isa::Program> P = buildWorkload("smctable", 1);
  ASSERT_TRUE(static_cast<bool>(P));

  trace::TraceSink Sink(1 << 16);
  SdtOptions Opts;
  Opts.Mechanism = IBMechanism::Ibtc;
  auto Engine = SdtEngine::create(*P, Opts, ExecOptions());
  ASSERT_TRUE(static_cast<bool>(Engine));
  (*Engine)->setTraceSink(&Sink);
  RunResult R = (*Engine)->run();
  ASSERT_TRUE(R.finishedNormally()) << R.FaultMessage;

  const SdtStats &S = (*Engine)->stats();
  EXPECT_GT(S.CodeWriteInvalidations, 0u);
  EXPECT_EQ(Sink.totalCount(trace::EventKind::CodeWrite),
            S.CodeWriteInvalidations);
  EXPECT_EQ(Sink.totalCount(trace::EventKind::FragInvalidate),
            S.FragmentsInvalidatedByWrite);
}

// --- Non-SMC guests are untouched -------------------------------------------

// Random guests store heavily into data that shares pages with code; the
// word-granular tracker must classify all of it as data, leaving every
// SMC counter at zero (and therefore the simulated cycle counts exactly
// as they were before this subsystem existed).
TEST(SelfModifyTest, DataStoresNeverInvalidate) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    Expected<isa::Program> P = generateRandomProgram(Seed);
    ASSERT_TRUE(static_cast<bool>(P));
    arch::TimingModel Timing(arch::simpleModel());
    ExecOptions Exec;
    Exec.MaxInstructions = 5000000;
    Exec.Timing = &Timing;
    auto Engine = SdtEngine::create(*P, SdtOptions(), Exec);
    ASSERT_TRUE(static_cast<bool>(Engine));
    RunResult R = (*Engine)->run();
    ASSERT_TRUE(R.finishedNormally()) << R.FaultMessage;
    const SdtStats &S = (*Engine)->stats();
    EXPECT_EQ(S.CodeWriteInvalidations, 0u) << "seed " << Seed;
    EXPECT_EQ(S.FragmentsInvalidatedByWrite, 0u) << "seed " << Seed;
    EXPECT_EQ(S.StaleBytesDiscarded, 0u) << "seed " << Seed;
  }
}
