//===- tests/trace_test.cpp - Event-tracing subsystem ------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"
#include "arch/Timing.h"
#include "assembler/Assembler.h"
#include "core/SdtEngine.h"
#include "trace/TraceExport.h"
#include "trace/TraceSink.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

using namespace sdt;
using namespace sdt::core;
using trace::EventKind;
using trace::TraceEvent;
using trace::TraceSink;

namespace {

isa::Program mustAssemble(const char *Src) {
  Expected<isa::Program> P = assembler::assemble(Src);
  EXPECT_TRUE(static_cast<bool>(P)) << (P ? "" : P.error().message());
  return *P;
}

/// Indirect-call + return workout (same shape as the engine tests).
const char *const CallLoop = R"(
main:
    li   s0, 50
    li   s7, 0
loop:
    la   t0, fns
    andi t1, s0, 1
    slli t1, t1, 2
    add  t0, t0, t1
    lw   t2, 0(t0)
    move a0, s0
    jalr t2
    add  s7, s7, v0
    addi s0, s0, -1
    bnez s0, loop
    move a0, s7
    li   v0, 4
    syscall
    li   a0, 0
    li   v0, 0
    syscall
f_even:
    slli v0, a0, 1
    ret
f_odd:
    addi v0, a0, 100
    ret
fns: .word f_even, f_odd
)";

std::vector<TraceEvent> collect(const TraceSink &Sink) {
  std::vector<TraceEvent> Events;
  Sink.forEach([&Events](const TraceEvent &E) { Events.push_back(E); });
  return Events;
}

} // namespace

TEST(TraceSinkTest, RetainsEverythingBelowCapacity) {
  TraceSink Sink(8);
  Sink.record(EventKind::DispatchEntry, 0x100);
  Sink.record(EventKind::FragmentTranslated, 0x100, 7);
  Sink.record(EventKind::LinkPatch, 0x104, 0x40000010);

  EXPECT_EQ(Sink.capacity(), 8u);
  EXPECT_EQ(Sink.totalCount(), 3u);
  EXPECT_EQ(Sink.recordedCount(), 3u);
  EXPECT_EQ(Sink.droppedCount(), 0u);
  EXPECT_EQ(Sink.totalCount(EventKind::DispatchEntry), 1u);
  EXPECT_EQ(Sink.totalCount(EventKind::FragmentTranslated), 1u);
  EXPECT_EQ(Sink.totalCount(EventKind::LinkPatch), 1u);
  EXPECT_EQ(Sink.totalCount(EventKind::CacheFlush), 0u);

  std::vector<TraceEvent> Events = collect(Sink);
  ASSERT_EQ(Events.size(), 3u);
  EXPECT_EQ(Events[0].Kind, EventKind::DispatchEntry);
  EXPECT_EQ(Events[0].A, 0x100u);
  EXPECT_EQ(Events[1].Kind, EventKind::FragmentTranslated);
  EXPECT_EQ(Events[1].B, 7u);
  EXPECT_EQ(Events[2].Kind, EventKind::LinkPatch);
}

TEST(TraceSinkTest, RingDropsOldestButKeepsTotals) {
  TraceSink Sink(4);
  for (uint32_t I = 0; I != 10; ++I)
    Sink.record(EventKind::DispatchEntry, I);

  EXPECT_EQ(Sink.totalCount(), 10u);
  EXPECT_EQ(Sink.recordedCount(), 4u);
  EXPECT_EQ(Sink.droppedCount(), 6u);
  EXPECT_EQ(Sink.totalCount(EventKind::DispatchEntry), 10u);

  // The retained window is the newest four, oldest first.
  std::vector<TraceEvent> Events = collect(Sink);
  ASSERT_EQ(Events.size(), 4u);
  for (uint32_t I = 0; I != 4; ++I)
    EXPECT_EQ(Events[I].A, 6 + I);
}

TEST(TraceSinkTest, MechTotalsSurviveRingWrap) {
  TraceSink Sink(2);
  for (int I = 0; I != 5; ++I)
    Sink.record(EventKind::IBLookupHit, 0, 0x200, "ibtc");
  for (int I = 0; I != 3; ++I)
    Sink.record(EventKind::IBLookupMiss, 0, 0x204, "ibtc");
  Sink.record(EventKind::IBLookupMiss, 1, 0x300, "sieve");

  ASSERT_EQ(Sink.mechTotals().size(), 2u);
  EXPECT_STREQ(Sink.mechTotals()[0].Name, "ibtc");
  EXPECT_EQ(Sink.mechTotals()[0].Hits, 5u);
  EXPECT_EQ(Sink.mechTotals()[0].Misses, 3u);
  EXPECT_STREQ(Sink.mechTotals()[1].Name, "sieve");
  EXPECT_EQ(Sink.mechTotals()[1].Misses, 1u);
}

// The O(1) interned-id recording path must land in exactly the slots the
// name-based path fills: same mechanism order, same names, same totals.
// (Regression: a divergence here would skew every mech_totals summary.)
TEST(TraceSinkTest, InternedRecordingMatchesNameBasedRecording) {
  TraceSink ByName(8), ById(8);
  uint16_t Ibtc = ById.internMech("ibtc");
  uint16_t Sieve = ById.internMech("sieve");
  // Interning again must dedup by content, not allocate a second slot.
  EXPECT_EQ(ById.internMech("ibtc"), Ibtc);

  for (int I = 0; I != 4; ++I) {
    ByName.record(EventKind::IBLookupHit, 0, 0x200, "ibtc");
    ById.record(EventKind::IBLookupHit, 0, 0x200, Ibtc);
  }
  ByName.record(EventKind::IBLookupMiss, 0, 0x204, "ibtc");
  ById.record(EventKind::IBLookupMiss, 0, 0x204, Ibtc);
  ByName.record(EventKind::IBLookupMiss, 1, 0x300, "sieve");
  ById.record(EventKind::IBLookupMiss, 1, 0x300, Sieve);

  ASSERT_EQ(ByName.mechTotals().size(), ById.mechTotals().size());
  for (size_t I = 0; I != ByName.mechTotals().size(); ++I) {
    EXPECT_STREQ(ByName.mechTotals()[I].Name, ById.mechTotals()[I].Name);
    EXPECT_EQ(ByName.mechTotals()[I].Hits, ById.mechTotals()[I].Hits);
    EXPECT_EQ(ByName.mechTotals()[I].Misses, ById.mechTotals()[I].Misses);
  }
  // The retained events must also carry the resolved name, not an id.
  std::vector<TraceEvent> A = collect(ByName), B = collect(ById);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    EXPECT_STREQ(A[I].Mech, B[I].Mech);
  // An interned mechanism that never records keeps an all-zero slot and
  // must not leak into the exported summary (interning alone never
  // changes the emitted JSON).
  ById.internMech("never-used");
  EXPECT_EQ(trace::jsonlSummaryLine(ById, nullptr).find("never-used"),
            std::string::npos);
}

TEST(TraceSinkTest, ClockAndIbClassStampEvents) {
  uint64_t Now = 41;
  TraceSink Sink(8);
  Sink.setClock(
      [](const void *Ctx) { return *static_cast<const uint64_t *>(Ctx); },
      &Now);
  Sink.setIbClass(2); // IBClass::Return.
  Sink.record(EventKind::IBLookupMiss, 3, 0x500, "ibtc");
  Now = 99;
  Sink.record(EventKind::DispatchEntry, 0x500);

  std::vector<TraceEvent> Events = collect(Sink);
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].Cycle, 41u);
  EXPECT_EQ(Events[0].IbClass, 2);
  EXPECT_EQ(Events[1].Cycle, 99u);
  // Non-lookup events never carry an IB class.
  EXPECT_EQ(Events[1].IbClass, trace::NoIbClass);
}

TEST(TraceExportTest, JsonlLineCarriesKindSpecificFields) {
  TraceEvent E;
  E.Kind = EventKind::IBLookupMiss;
  E.Cycle = 1234;
  E.A = 7;
  E.B = 0x2000;
  E.Mech = "sieve";
  E.IbClass = 1;
  EXPECT_EQ(trace::jsonlLine(E),
            "{\"ev\":\"ib-lookup-miss\",\"cycle\":1234,\"mech\":\"sieve\","
            "\"class\":\"ind-call\",\"site\":7,\"target\":8192}");

  TraceEvent F;
  F.Kind = EventKind::CacheFlush;
  F.Cycle = 9;
  F.A = 12;
  F.B = 4096;
  EXPECT_EQ(trace::jsonlLine(F),
            "{\"ev\":\"cache-flush\",\"cycle\":9,\"fragments\":12,"
            "\"used_bytes\":4096}");
}

TEST(TraceExportTest, JsonlFileEndsWithReconcilableSummary) {
  TraceSink Sink(4);
  Sink.record(EventKind::DispatchEntry, 0x100);
  Sink.record(EventKind::IBLookupHit, 0, 0x200, "ibtc");

  trace::StatsExpectation Expect;
  Expect.DispatchEntries = 1;
  Expect.Mechanisms.push_back({"ibtc", 1, 1});

  std::string Path = ::testing::TempDir() + "trace_test_out.jsonl";
  ASSERT_TRUE(trace::writeJsonl(Sink, Path, &Expect));

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::vector<std::string> Lines;
  for (std::string L; std::getline(In, L);)
    Lines.push_back(L);
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_NE(Lines[0].find("\"ev\":\"dispatch-entry\""), std::string::npos);
  EXPECT_NE(Lines[1].find("\"ev\":\"ib-lookup-hit\""), std::string::npos);
  const std::string &Summary = Lines.back();
  EXPECT_NE(Summary.find("\"summary\":true"), std::string::npos);
  EXPECT_NE(Summary.find("\"recorded\":2"), std::string::npos);
  EXPECT_NE(Summary.find("\"dispatch-entry\":1"), std::string::npos);
  EXPECT_NE(Summary.find("\"ibtc\":{\"hits\":1,\"misses\":0}"),
            std::string::npos);
  EXPECT_NE(Summary.find("\"dispatch_entries\":1"), std::string::npos);
  EXPECT_NE(Summary.find("\"ibtc\":{\"lookups\":1,\"hits\":1}"),
            std::string::npos);
}

// Regression: a wrapped ring must export its retained window in
// chronological (oldest-first) order starting at Head, not at slot 0,
// and the summary must say how many events the ring dropped.
TEST(TraceExportTest, WrappedExportIsOldestFirstAndCountsDrops) {
  TraceSink Sink(4);
  for (uint32_t I = 0; I != 10; ++I)
    Sink.record(EventKind::DispatchEntry, I);

  std::string Path = ::testing::TempDir() + "trace_test_wrap.jsonl";
  ASSERT_TRUE(trace::writeJsonl(Sink, Path, nullptr));

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::vector<std::string> Lines;
  for (std::string L; std::getline(In, L);)
    Lines.push_back(L);
  ASSERT_EQ(Lines.size(), 5u); // Four retained events plus the summary.
  // 10 records into a 4-slot ring retain 6..9; any other order means the
  // exporter started at the wrong slot.
  for (uint32_t I = 0; I != 4; ++I) {
    std::string Want = "\"guest_pc\":" + std::to_string(6 + I);
    EXPECT_NE(Lines[I].find(Want), std::string::npos)
        << "line " << I << ": " << Lines[I];
  }
  EXPECT_NE(Lines.back().find("\"dropped_events\":6"), std::string::npos)
      << Lines.back();
  EXPECT_NE(Lines.back().find("\"total\":10"), std::string::npos);
}

// Regression: mechanism names flow into JSON output verbatim-by-content;
// a hostile name (quotes, backslashes, control bytes) must come out
// escaped in both the per-event lines and the summary object.
TEST(TraceExportTest, HostileMechanismNamesAreEscaped) {
  const char *Hostile = "ev\"il\\mech\n\x01";
  TraceEvent E;
  E.Kind = EventKind::IBLookupHit;
  E.Mech = Hostile;
  E.IbClass = 1;
  std::string Line = trace::jsonlLine(E);
  EXPECT_NE(Line.find("ev\\\"il\\\\mech\\n\\u0001"), std::string::npos)
      << Line;
  EXPECT_EQ(Line.find('\n'), std::string::npos) << "raw newline in JSONL";

  TraceSink Sink(4);
  Sink.record(EventKind::IBLookupMiss, 0, 0x100, Hostile);
  trace::StatsExpectation Expect;
  Expect.Mechanisms.push_back({Hostile, 1, 0});
  std::string Summary = trace::jsonlSummaryLine(Sink, &Expect);
  // Once under mech_totals, once under expected_mechanisms.
  size_t First = Summary.find("ev\\\"il\\\\mech\\n\\u0001");
  ASSERT_NE(First, std::string::npos) << Summary;
  EXPECT_NE(Summary.find("ev\\\"il\\\\mech\\n\\u0001", First + 1),
            std::string::npos)
      << Summary;
  EXPECT_EQ(Summary.find('\n'), std::string::npos);
}

TEST(TraceExportTest, ChromeTraceIsInstantEventsOnCycleTimeline) {
  TraceSink Sink(4);
  uint64_t Now = 77;
  Sink.setClock(
      [](const void *Ctx) { return *static_cast<const uint64_t *>(Ctx); },
      &Now);
  Sink.record(EventKind::FragmentTranslated, 0x100, 5);

  std::string Doc = trace::chromeTraceJson(Sink);
  EXPECT_NE(Doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Doc.find("\"name\": \"fragment-translated\""),
            std::string::npos);
  EXPECT_NE(Doc.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(Doc.find("\"ts\": 77"), std::string::npos);
}

TEST(TraceEngineTest, EventTotalsReconcileWithEngineStats) {
  isa::Program P = mustAssemble(CallLoop);
  arch::TimingModel Timing(*arch::modelByName("x86"));
  vm::ExecOptions Exec;
  Exec.Timing = &Timing;
  SdtOptions Opts; // IBTC, returns as-indirect, linking on.
  auto Engine = SdtEngine::create(P, Opts, Exec);
  ASSERT_TRUE(static_cast<bool>(Engine));

  TraceSink Sink;
  (*Engine)->setTraceSink(&Sink);
  vm::RunResult R = (*Engine)->run();
  EXPECT_EQ(R.Reason, vm::ExitReason::Exited);

  const SdtStats &S = (*Engine)->stats();
  EXPECT_EQ(Sink.totalCount(EventKind::DispatchEntry), S.DispatchEntries);
  EXPECT_EQ(Sink.totalCount(EventKind::FragmentTranslated),
            S.FragmentsTranslated);
  EXPECT_EQ(Sink.totalCount(EventKind::TraceBuilt), S.TracesBuilt);
  EXPECT_EQ(Sink.totalCount(EventKind::LinkPatch), S.LinksPatched);
  EXPECT_EQ(Sink.totalCount(EventKind::CacheFlush), S.Flushes);

  // One mechanism (IBTC serves all classes); its event totals must match
  // the handler's own counters, and every lookup the engine executed must
  // have produced exactly one hit-or-miss event.
  ASSERT_EQ(Sink.mechTotals().size(), 1u);
  const TraceSink::MechTotals &M = Sink.mechTotals()[0];
  EXPECT_STREQ(M.Name, "ibtc");
  IBHandler &H = (*Engine)->mainHandler();
  EXPECT_EQ(M.Hits, H.hits());
  EXPECT_EQ(M.Hits + M.Misses, H.lookups());
  EXPECT_EQ(Sink.totalCount(EventKind::IBLookupHit) +
                Sink.totalCount(EventKind::IBLookupMiss),
            H.lookups());
  EXPECT_GT(H.lookups(), 0u);

  // Lookup events carry the dynamic IB class the engine stamped.
  uint64_t Calls = 0, Returns = 0;
  Sink.forEach([&](const TraceEvent &E) {
    if (E.Kind != EventKind::IBLookupHit &&
        E.Kind != EventKind::IBLookupMiss)
      return;
    if (E.IbClass == 1)
      ++Calls;
    else if (E.IbClass == 2)
      ++Returns;
  });
  EXPECT_GT(Calls, 0u);
  EXPECT_GT(Returns, 0u);
}

TEST(TraceEngineTest, AttachingASinkDoesNotPerturbCycles) {
  isa::Program P = mustAssemble(CallLoop);
  SdtOptions Opts;
  Opts.EnableTraces = true; // Exercise buildTrace + trampoline patching.
  Opts.TraceHotThreshold = 5;

  auto runOnce = [&](TraceSink *Sink, uint64_t &CyclesOut) {
    arch::TimingModel Timing(*arch::modelByName("x86"));
    vm::ExecOptions Exec;
    Exec.Timing = &Timing;
    auto Engine = SdtEngine::create(P, Opts, Exec);
    ASSERT_TRUE(static_cast<bool>(Engine));
    if (Sink)
      (*Engine)->setTraceSink(Sink);
    vm::RunResult R = (*Engine)->run();
    EXPECT_EQ(R.Reason, vm::ExitReason::Exited);
    CyclesOut = Timing.totalCycles();
  };

  uint64_t Untraced = 0, Traced = 0;
  runOnce(nullptr, Untraced);
  TraceSink Sink(64); // Tiny ring: wrap handling must not perturb either.
  runOnce(&Sink, Traced);
  EXPECT_EQ(Untraced, Traced);
  EXPECT_GT(Sink.droppedCount(), 0u);
}
