//===- examples/quickstart.cpp - StrataIB in 60 lines ------------*- C++ -*-===//
//
// Part of StrataIB.
//
// Assembles a small guest program with an indirect call, runs it natively
// (reference interpreter) and under the SDT with an IBTC, and prints both
// results plus the simulated overhead — the whole public API in one file.
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"
#include "arch/Timing.h"
#include "assembler/Assembler.h"
#include "core/SdtEngine.h"
#include "vm/GuestVM.h"

#include <cstdio>
#include <cstdlib>

using namespace sdt;

static const char *const Source = R"(
    .org 0x1000
    .entry main
main:
    li   s0, 200000       # iterations
    li   s7, 0            # accumulator
    la   s1, fns
loop:
    andi t0, s0, 1        # alternate between the two callees
    slli t0, t0, 2
    add  t0, s1, t0
    lw   t1, 0(t0)
    move a0, s0
    jalr t1               # indirect call
    add  s7, s7, v0
    addi s0, s0, -1
    bnez s0, loop
    move a0, s7
    li   v0, 1
    syscall               # print the accumulator
    li   a0, 0
    li   v0, 0
    syscall               # exit(0)
double_it:
    slli v0, a0, 1
    ret
square_low:
    mul  v0, a0, a0
    andi v0, v0, 4095
    ret
fns: .word double_it, square_low
)";

int main() {
  // 1. Assemble.
  Expected<isa::Program> Program = assembler::assemble(Source);
  if (!Program) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 Program.error().message().c_str());
    return 1;
  }

  arch::MachineModel Model = arch::x86Model();

  // 2. Native baseline: the reference interpreter under a timing model.
  arch::TimingModel NativeTiming(Model);
  vm::ExecOptions NativeOpts;
  NativeOpts.Timing = &NativeTiming;
  auto VM = vm::GuestVM::create(*Program, NativeOpts);
  if (!VM) {
    std::fprintf(stderr, "%s\n", VM.error().message().c_str());
    return 1;
  }
  vm::RunResult Native = (*VM)->run();

  // 3. The same program under software dynamic translation with an IBTC.
  arch::TimingModel SdtTiming(Model);
  vm::ExecOptions SdtExec;
  SdtExec.Timing = &SdtTiming;
  core::SdtOptions Opts;
  Opts.Mechanism = core::IBMechanism::Ibtc;
  Opts.Returns = core::ReturnStrategy::FastReturn;
  auto Engine = core::SdtEngine::create(*Program, Opts, SdtExec);
  if (!Engine) {
    std::fprintf(stderr, "%s\n", Engine.error().message().c_str());
    return 1;
  }
  vm::RunResult Translated = (*Engine)->run();

  // 4. Compare: identical observable behaviour, measured overhead.
  std::printf("native output:     %s", Native.Output.c_str());
  std::printf("translated output: %s", Translated.Output.c_str());
  std::printf("instructions: native=%llu translated=%llu\n",
              static_cast<unsigned long long>(Native.InstructionCount),
              static_cast<unsigned long long>(Translated.InstructionCount));
  std::printf("cycles: native=%llu translated=%llu  slowdown=%.3fx\n",
              static_cast<unsigned long long>(NativeTiming.totalCycles()),
              static_cast<unsigned long long>(SdtTiming.totalCycles()),
              static_cast<double>(SdtTiming.totalCycles()) /
                  static_cast<double>(NativeTiming.totalCycles()));
  std::printf("\n%s", (*Engine)->report().c_str());

  bool Same = Native.Output == Translated.Output &&
              Native.Checksum == Translated.Checksum &&
              Native.InstructionCount == Translated.InstructionCount;
  std::printf("behaviour identical: %s\n", Same ? "yes" : "NO (bug!)");
  return Same ? 0 : 1;
}
