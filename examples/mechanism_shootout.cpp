//===- examples/mechanism_shootout.cpp - Compare IB mechanisms ---*- C++ -*-===//
//
// Part of StrataIB.
//
// The paper's core question as a single program: for one workload, how do
// the IB handling mechanisms compare? Runs every mechanism/return-strategy
// combination on the chosen workload and machine model and prints a
// ranked table.
//
// Usage: mechanism_shootout [workload] [arch] [scale]
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"
#include "arch/Timing.h"
#include "core/SdtEngine.h"
#include "support/TableFormatter.h"
#include "vm/GuestVM.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace sdt;

namespace {

struct Entry {
  std::string Name;
  core::SdtOptions Opts;
  double Slowdown = 0.0;
  double IBShare = 0.0;
  double DispatchShare = 0.0;
};

} // namespace

int main(int argc, char **argv) {
  std::string Workload = argc > 1 ? argv[1] : "gcc";
  std::string Arch = argc > 2 ? argv[2] : "x86";
  uint32_t Scale = argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 10;
  if (Scale == 0)
    Scale = 1;

  std::optional<arch::MachineModel> Model = arch::modelByName(Arch);
  if (!Model) {
    std::fprintf(stderr, "unknown arch '%s'\n", Arch.c_str());
    return 1;
  }
  Expected<isa::Program> Program =
      workloads::buildWorkload(Workload, Scale);
  if (!Program) {
    std::fprintf(stderr, "%s\n", Program.error().message().c_str());
    return 1;
  }

  // Native baseline.
  arch::TimingModel NativeTiming(*Model);
  vm::ExecOptions NativeExec;
  NativeExec.Timing = &NativeTiming;
  auto VM = vm::GuestVM::create(*Program, NativeExec);
  if (!VM) {
    std::fprintf(stderr, "%s\n", VM.error().message().c_str());
    return 1;
  }
  vm::RunResult Native = (*VM)->run();
  if (!Native.finishedNormally()) {
    std::fprintf(stderr, "native run failed: %s\n",
                 Native.FaultMessage.c_str());
    return 1;
  }

  // Candidate configurations.
  std::vector<Entry> Entries;
  auto add = [&Entries](const char *Name, auto Mutate) {
    Entry E;
    E.Name = Name;
    Mutate(E.Opts);
    Entries.push_back(E);
  };
  add("dispatcher (baseline)", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Dispatcher;
  });
  add("ibtc full-flags", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Ibtc;
    O.FullFlagSave = true;
  });
  add("ibtc light-flags", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Ibtc;
  });
  add("sieve", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Sieve;
  });
  add("ibtc + return cache", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Ibtc;
    O.Returns = core::ReturnStrategy::ReturnCache;
  });
  add("ibtc + fast returns", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Ibtc;
    O.Returns = core::ReturnStrategy::FastReturn;
  });
  add("sieve + fast returns", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Sieve;
    O.Returns = core::ReturnStrategy::FastReturn;
  });
  add("ibtc + fastret + inline2", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Ibtc;
    O.Returns = core::ReturnStrategy::FastReturn;
    O.InlineCacheDepth = 2;
  });

  for (Entry &E : Entries) {
    arch::TimingModel Timing(*Model);
    vm::ExecOptions Exec;
    Exec.Timing = &Timing;
    auto Engine = core::SdtEngine::create(*Program, E.Opts, Exec);
    if (!Engine) {
      std::fprintf(stderr, "%s\n", Engine.error().message().c_str());
      return 1;
    }
    vm::RunResult R = (*Engine)->run();
    if (R.Checksum != Native.Checksum) {
      std::fprintf(stderr, "transparency violation under %s!\n",
                   E.Name.c_str());
      return 1;
    }
    E.Slowdown = static_cast<double>(Timing.totalCycles()) /
                 static_cast<double>(NativeTiming.totalCycles());
    E.IBShare =
        static_cast<double>(Timing.cycles(arch::CycleCategory::IBLookup)) /
        static_cast<double>(Timing.totalCycles());
    E.DispatchShare =
        static_cast<double>(Timing.cycles(arch::CycleCategory::Dispatch)) /
        static_cast<double>(Timing.totalCycles());
  }

  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) {
              return A.Slowdown < B.Slowdown;
            });

  std::printf("workload %s on %s (scale %u, %llu instructions, %.2f IBs "
              "per 1k)\n\n",
              Workload.c_str(), Arch.c_str(), Scale,
              static_cast<unsigned long long>(Native.InstructionCount),
              1000.0 * static_cast<double>(Native.Cti.indirectTotal()) /
                  static_cast<double>(Native.InstructionCount));

  TableFormatter T({"rank", "configuration", "slowdown", "ib-lookup%",
                    "dispatch%"});
  uint64_t Rank = 1;
  for (const Entry &E : Entries)
    T.beginRow()
        .addCell(Rank++)
        .addCell(E.Name)
        .addCell(E.Slowdown, 3)
        .addCell(100.0 * E.IBShare, 1)
        .addCell(100.0 * E.DispatchShare, 1);
  std::printf("%s", T.render().c_str());
  return 0;
}
