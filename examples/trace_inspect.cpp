//===- examples/trace_inspect.cpp - Trace summariser CLI ---------*- C++ -*-===//
//
// Part of StrataIB.
//
// Reads a JSONL trace produced by STRATAIB_TRACE (see docs/Tracing.md),
// prints per-kind and per-mechanism summaries plus a dispatch
// inter-arrival histogram, and reconciles the trace's full-run event
// totals against the engine's own SdtStats counters embedded in the
// summary line. Exits non-zero if the trace and the stats disagree — a
// trace is only trustworthy if it saw every event the engine counted.
//
// Usage: trace_inspect <trace.jsonl> [--event <kind>] [--events a,b,...]
//                      [--mech <name>] [--limit N]
//   --event <kind>   print retained events of one kind (dispatch-entry,
//                    ib-lookup-miss, ...) instead of the summary
//   --events <list>  same, for a comma-separated list of kinds; the
//                    aliases "eviction" (cache-evict), "unlink"
//                    (link-unlink), "smc" (code-write) and "invalidate"
//                    (frag-invalidate) are accepted alongside full names
//   --mech <name>    restrict event output to one mechanism
//   --limit N        print at most N events (default 20)
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

using sdt::Log2Histogram;

namespace {

/// A parsed JSON value — only the shapes the exporter emits (objects,
/// strings, unsigned integers, booleans).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Object } K = Kind::Null;
  bool B = false;
  uint64_t N = 0;
  std::string S;
  std::map<std::string, JsonValue> O;

  const JsonValue *field(const std::string &Name) const {
    auto It = O.find(Name);
    return It == O.end() ? nullptr : &It->second;
  }
  uint64_t num(const std::string &Name) const {
    const JsonValue *V = field(Name);
    return V ? V->N : 0;
  }
  std::string str(const std::string &Name) const {
    const JsonValue *V = field(Name);
    return V ? V->S : std::string();
  }
};

/// Minimal recursive-descent parser for one exporter-produced line.
class LineParser {
public:
  explicit LineParser(const std::string &Text) : Text(Text) {}

  bool parse(JsonValue &Out) { return parseValue(Out) && skipWs() == npos; }

private:
  static constexpr size_t npos = std::string::npos;

  size_t skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t'))
      ++Pos;
    return Pos < Text.size() ? Pos : npos;
  }

  bool parseValue(JsonValue &Out) {
    if (skipWs() == npos)
      return false;
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Out);
    if (C == '"') {
      Out.K = JsonValue::Kind::String;
      return parseString(Out.S);
    }
    if (C == 't' || C == 'f') {
      bool True = C == 't';
      const char *Word = True ? "true" : "false";
      if (Text.compare(Pos, std::strlen(Word), Word) != 0)
        return false;
      Pos += std::strlen(Word);
      Out.K = JsonValue::Kind::Bool;
      Out.B = True;
      return true;
    }
    if (C >= '0' && C <= '9') {
      Out.K = JsonValue::Kind::Number;
      Out.N = 0;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        Out.N = Out.N * 10 + (Text[Pos++] - '0');
      return true;
    }
    return false;
  }

  bool parseString(std::string &Out) {
    if (Text[Pos] != '"')
      return false;
    ++Pos;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C == '\\' && Pos < Text.size()) {
        char E = Text[Pos++];
        switch (E) {
        case 'n': C = '\n'; break;
        case 't': C = '\t'; break;
        case 'r': C = '\r'; break;
        default: C = E; break; // \" \\ \/ and anything exotic.
        }
      }
      Out += C;
    }
    if (Pos >= Text.size())
      return false;
    ++Pos; // Closing quote.
    return true;
  }

  bool parseObject(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    if (skipWs() == npos)
      return false;
    if (Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      if (skipWs() == npos)
        return false;
      std::string Key;
      if (!parseString(Key))
        return false;
      if (skipWs() == npos || Text[Pos] != ':')
        return false;
      ++Pos;
      if (!parseValue(Out.O[Key]))
        return false;
      if (skipWs() == npos)
        return false;
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  const std::string &Text;
  size_t Pos = 0;
};

struct MechCount {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Maps the user-facing aliases onto exporter kind names; full names
/// pass through unchanged.
std::string normalizeEventKind(const std::string &Name) {
  if (Name == "eviction")
    return "cache-evict";
  if (Name == "unlink")
    return "link-unlink";
  if (Name == "smc")
    return "code-write";
  if (Name == "invalidate")
    return "frag-invalidate";
  if (Name == "admit")
    return "tenant-admit";
  if (Name == "reclaim")
    return "tenant-evict";
  return Name;
}

/// Splits a --events comma list into normalized kind names.
std::vector<std::string> splitEventList(const std::string &List) {
  std::vector<std::string> Kinds;
  size_t Start = 0;
  while (Start <= List.size()) {
    size_t Comma = List.find(',', Start);
    if (Comma == std::string::npos)
      Comma = List.size();
    if (Comma > Start)
      Kinds.push_back(normalizeEventKind(List.substr(Start, Comma - Start)));
    Start = Comma + 1;
  }
  return Kinds;
}

int reconcileFailures(const JsonValue &Summary) {
  int Failures = 0;
  auto check = [&Failures](const char *What, uint64_t Trace,
                           uint64_t Stats) {
    if (Trace == Stats)
      return;
    std::fprintf(stderr,
                 "RECONCILE MISMATCH: %s: trace=%llu stats=%llu\n", What,
                 static_cast<unsigned long long>(Trace),
                 static_cast<unsigned long long>(Stats));
    ++Failures;
  };

  const JsonValue *Totals = Summary.field("event_totals");
  const JsonValue *Stats = Summary.field("stats");
  if (!Totals)
    return 0;
  if (Stats) {
    check("dispatch entries", Totals->num("dispatch-entry"),
          Stats->num("dispatch_entries"));
    check("fragments translated", Totals->num("fragment-translated"),
          Stats->num("fragments_translated"));
    check("traces built", Totals->num("trace-built"),
          Stats->num("traces_built"));
    check("links patched", Totals->num("link-patch"),
          Stats->num("links_patched"));
    check("cache flushes", Totals->num("cache-flush"),
          Stats->num("flushes"));
    check("partial evictions", Totals->num("cache-evict"),
          Stats->num("partial_evictions"));
    check("links unlinked", Totals->num("link-unlink"),
          Stats->num("links_unlinked"));
    check("code-write invalidations", Totals->num("code-write"),
          Stats->num("code_write_invalidations"));
    check("fragments invalidated by write", Totals->num("frag-invalidate"),
          Stats->num("fragments_invalidated_by_write"));
    check("traces optimized", Totals->num("trace-optimized"),
          Stats->num("traces_optimized"));
    check("spec guard hits", Totals->num("spec-guard-hit"),
          Stats->num("spec_guard_hits"));
    check("spec guard misses", Totals->num("spec-guard-miss"),
          Stats->num("spec_guard_misses"));
    check("tenant admissions", Totals->num("tenant-admit"),
          Stats->num("tenant_admissions"));
    check("tenant evictions", Totals->num("tenant-evict"),
          Stats->num("tenant_evictions"));
    check("snapshot saves", Totals->num("snapshot-save"),
          Stats->num("snapshot_saves"));
    check("snapshot loads", Totals->num("snapshot-load"),
          Stats->num("snapshot_loads"));
  }

  const JsonValue *MechTotals = Summary.field("mech_totals");
  const JsonValue *Expected = Summary.field("expected_mechanisms");
  if (MechTotals && Expected) {
    for (const auto &[Name, Exp] : Expected->O) {
      const JsonValue *Got = MechTotals->field(Name);
      uint64_t Hits = Got ? Got->num("hits") : 0;
      uint64_t Misses = Got ? Got->num("misses") : 0;
      check((Name + " lookups").c_str(), Hits + Misses,
            Exp.num("lookups"));
      check((Name + " hits").c_str(), Hits, Exp.num("hits"));
    }
    for (const auto &[Name, Got] : MechTotals->O)
      if (!Expected->field(Name)) {
        std::fprintf(stderr,
                     "RECONCILE MISMATCH: trace mechanism '%s' unknown "
                     "to the engine stats\n",
                     Name.c_str());
        ++Failures;
      }
  }
  return Failures;
}

} // namespace

int main(int argc, char **argv) {
  std::string Path;
  std::vector<std::string> EventFilter; ///< Empty = summary mode.
  std::string MechFilter;
  uint64_t Limit = 20;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--event" && I + 1 < argc)
      EventFilter.push_back(normalizeEventKind(argv[++I]));
    else if (Arg == "--events" && I + 1 < argc) {
      for (std::string &Kind : splitEventList(argv[++I]))
        EventFilter.push_back(std::move(Kind));
    } else if (Arg == "--mech" && I + 1 < argc)
      MechFilter = argv[++I];
    else if (Arg == "--limit" && I + 1 < argc)
      Limit = std::strtoull(argv[++I], nullptr, 10);
    else if (Path.empty() && !Arg.empty() && Arg[0] != '-')
      Path = Arg;
    else {
      std::fprintf(stderr,
                   "usage: trace_inspect <trace.jsonl> [--event <kind>] "
                   "[--events a,b,...] [--mech <name>] [--limit N]\n");
      return 2;
    }
  }
  if (Path.empty()) {
    std::fprintf(stderr, "trace_inspect: no trace file given\n");
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "trace_inspect: cannot open %s\n", Path.c_str());
    return 2;
  }

  std::map<std::string, uint64_t> KindCounts;
  std::map<std::string, MechCount> MechCounts;
  Log2Histogram DispatchGaps;
  Log2Histogram EvictionGaps;
  uint64_t Retained = 0;
  uint64_t FirstCycle = 0, LastCycle = 0;
  uint64_t LastDispatchCycle = 0;
  bool SawDispatch = false;
  uint64_t LastEvictCycle = 0;
  bool SawEvict = false;
  uint64_t Printed = 0;
  JsonValue Summary;
  bool SawSummary = false;

  std::string Line;
  uint64_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    JsonValue V;
    if (!LineParser(Line).parse(V) || V.K != JsonValue::Kind::Object) {
      std::fprintf(stderr, "trace_inspect: %s:%llu: unparseable line\n",
                   Path.c_str(), static_cast<unsigned long long>(LineNo));
      return 2;
    }
    const JsonValue *IsSummary = V.field("summary");
    if (IsSummary && IsSummary->B) {
      Summary = std::move(V);
      SawSummary = true;
      continue;
    }

    std::string Kind = V.str("ev");
    uint64_t Cycle = V.num("cycle");
    if (Retained == 0)
      FirstCycle = Cycle;
    LastCycle = Cycle;
    ++Retained;
    ++KindCounts[Kind];
    if (Kind == "ib-lookup-hit")
      ++MechCounts[V.str("mech")].Hits;
    else if (Kind == "ib-lookup-miss")
      ++MechCounts[V.str("mech")].Misses;
    else if (Kind == "dispatch-entry") {
      if (SawDispatch)
        DispatchGaps.addSample(Cycle - LastDispatchCycle);
      LastDispatchCycle = Cycle;
      SawDispatch = true;
    } else if (Kind == "cache-evict") {
      if (SawEvict)
        EvictionGaps.addSample(Cycle - LastEvictCycle);
      LastEvictCycle = Cycle;
      SawEvict = true;
    }

    bool Selected = false;
    for (const std::string &Want : EventFilter)
      if (Kind == Want) {
        Selected = true;
        break;
      }
    if (Selected && (MechFilter.empty() || V.str("mech") == MechFilter) &&
        Printed < Limit) {
      std::printf("%s\n", Line.c_str());
      ++Printed;
    }
  }

  if (!EventFilter.empty()) {
    uint64_t Matching = 0;
    for (const std::string &Want : EventFilter)
      if (auto It = KindCounts.find(Want); It != KindCounts.end())
        Matching += It->second;
    std::printf("(%llu of %llu retained events shown)\n",
                static_cast<unsigned long long>(Printed),
                static_cast<unsigned long long>(Matching));
  } else {
    std::printf("trace: %s\n", Path.c_str());
    std::printf("retained events: %llu  (cycles %llu..%llu)\n",
                static_cast<unsigned long long>(Retained),
                static_cast<unsigned long long>(FirstCycle),
                static_cast<unsigned long long>(LastCycle));
    if (SawSummary)
      std::printf("full run: %llu events, %llu dropped by the ring "
                  "(capacity %llu)\n",
                  static_cast<unsigned long long>(Summary.num("total")),
                  static_cast<unsigned long long>(Summary.num("dropped_events")),
                  static_cast<unsigned long long>(Summary.num("capacity")));
    std::printf("\nretained by kind:\n");
    for (const auto &[Kind, Count] : KindCounts)
      std::printf("  %-20s %llu\n", Kind.c_str(),
                  static_cast<unsigned long long>(Count));
    if (!MechCounts.empty()) {
      std::printf("\nretained IB lookups by mechanism:\n");
      for (const auto &[Mech, C] : MechCounts) {
        uint64_t Lookups = C.Hits + C.Misses;
        std::printf("  %-16s lookups=%llu hit-rate=%.2f%%\n", Mech.c_str(),
                    static_cast<unsigned long long>(Lookups),
                    Lookups ? 100.0 * double(C.Hits) / double(Lookups)
                            : 0.0);
      }
    }
    if (DispatchGaps.totalCount() > 0) {
      std::printf("\ndispatch inter-arrival cycles (mean %.1f):\n%s",
                  DispatchGaps.mean(), DispatchGaps.render().c_str());
    }
    if (EvictionGaps.totalCount() > 0) {
      std::printf("\neviction inter-arrival cycles (mean %.1f):\n%s",
                  EvictionGaps.mean(), EvictionGaps.render().c_str());
    }
  }

  if (!SawSummary) {
    std::fprintf(stderr, "trace_inspect: no summary line (truncated "
                         "trace?)\n");
    return 1;
  }
  if (Retained != Summary.num("recorded")) {
    std::fprintf(stderr,
                 "trace_inspect: %llu event lines but summary says "
                 "recorded=%llu\n",
                 static_cast<unsigned long long>(Retained),
                 static_cast<unsigned long long>(Summary.num("recorded")));
    return 1;
  }
  int Failures = reconcileFailures(Summary);
  if (Failures) {
    std::fprintf(stderr, "trace_inspect: %d reconciliation failure(s)\n",
                 Failures);
    return 1;
  }
  if (EventFilter.empty() && Summary.field("stats"))
    std::printf("\nreconciliation: trace totals match engine stats\n");
  return 0;
}
