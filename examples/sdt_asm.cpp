//===- examples/sdt_asm.cpp - Guest toolchain driver --------------*- C++ -*-===//
//
// Part of StrataIB.
//
// A small toolchain driver for GIR assembly files: assemble, disassemble,
// dump symbols, run natively, or run under the SDT. Demonstrates the
// assembler / Program / VM / engine APIs on user-supplied sources.
//
// Usage:
//   sdt_asm run file.s        # assemble + run natively
//   sdt_asm sdt file.s        # assemble + run under the default SDT
//   sdt_asm disasm file.s     # assemble + disassemble the image
//   sdt_asm symbols file.s    # assemble + dump the symbol table
//   sdt_asm as file.s out.gx  # assemble to a GX object file
//
// Every command also accepts a pre-assembled .gx object in place of the
// .s source (detected by magic).
//
//===----------------------------------------------------------------------===//

#include "assembler/Assembler.h"
#include "core/SdtEngine.h"
#include "isa/Disassembler.h"
#include "isa/Serialize.h"
#include "vm/GuestVM.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace sdt;

static int usage() {
  std::fprintf(
      stderr,
      "usage: sdt_asm <run|sdt|disasm|symbols> <file.s|file.gx>\n"
      "       sdt_asm as <file.s> <out.gx>\n");
  return 2;
}

/// Loads a guest program from assembly text or a GX object (by magic).
static Expected<isa::Program> loadInput(const std::string &Path) {
  std::ifstream File(Path, std::ios::binary);
  if (!File)
    return Error::failure("cannot open '" + Path + "'");
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(File)),
                             std::istreambuf_iterator<char>());
  if (isa::isGxImage(Bytes))
    return isa::deserializeProgram(Bytes);
  return assembler::assemble(
      std::string_view(reinterpret_cast<const char *>(Bytes.data()),
                       Bytes.size()));
}

static void printRunResult(const vm::RunResult &R) {
  std::fputs(R.Output.c_str(), stdout);
  std::printf("[%s, exit=%d, %llu instructions, checksum=%016llx]\n",
              vm::exitReasonName(R.Reason), R.ExitCode,
              static_cast<unsigned long long>(R.InstructionCount),
              static_cast<unsigned long long>(R.Checksum));
  if (!R.FaultMessage.empty())
    std::printf("fault: %s\n", R.FaultMessage.c_str());
}

int main(int argc, char **argv) {
  if (argc < 3)
    return usage();
  std::string Command = argv[1];

  Expected<isa::Program> P = loadInput(argv[2]);
  if (!P) {
    std::fprintf(stderr, "sdt_asm: %s: %s\n", argv[2],
                 P.error().message().c_str());
    return 1;
  }

  if (Command == "as") {
    if (argc != 4)
      return usage();
    if (Error E = isa::writeProgramFile(argv[3], *P)) {
      std::fprintf(stderr, "sdt_asm: %s\n", E.message().c_str());
      return 1;
    }
    return 0;
  }
  if (argc != 3)
    return usage();

  if (Command == "run") {
    auto VM = vm::GuestVM::create(*P, vm::ExecOptions());
    if (!VM) {
      std::fprintf(stderr, "sdt_asm: %s\n", VM.error().message().c_str());
      return 1;
    }
    vm::RunResult R = (*VM)->run();
    printRunResult(R);
    return R.finishedNormally() ? R.ExitCode : 1;
  }

  if (Command == "sdt") {
    auto Engine =
        core::SdtEngine::create(*P, core::SdtOptions(), vm::ExecOptions());
    if (!Engine) {
      std::fprintf(stderr, "sdt_asm: %s\n",
                   Engine.error().message().c_str());
      return 1;
    }
    vm::RunResult R = (*Engine)->run();
    printRunResult(R);
    std::printf("\n%s", (*Engine)->report().c_str());
    return R.finishedNormally() ? R.ExitCode : 1;
  }

  if (Command == "disasm") {
    for (uint32_t Addr = P->loadAddress(); Addr < P->endAddress();
         Addr += isa::InstructionSize) {
      // Print any symbols defined at this address.
      for (const auto &[Name, SymAddr] : P->symbols())
        if (SymAddr == Addr)
          std::printf("%s:\n", Name.c_str());
      Expected<isa::Instruction> I = P->fetch(Addr);
      if (I)
        std::printf("  %08x:  %s\n", Addr,
                    isa::disassemble(*I, Addr).c_str());
      else
        std::printf("  %08x:  .word (data)\n", Addr);
    }
    return 0;
  }

  if (Command == "symbols") {
    std::printf("entry: 0x%x\n", P->entry());
    for (const auto &[Name, Addr] : P->symbols())
      std::printf("%08x  %s\n", Addr, Name.c_str());
    return 0;
  }

  return usage();
}
