//===- examples/run_workload.cpp - Workload measurement CLI ------*- C++ -*-===//
//
// Part of StrataIB.
//
// Runs one of the SPEC CPU2000 proxy workloads natively and under a chosen
// SDT configuration, printing IB statistics, the per-category cycle
// breakdown, and the overhead — the paper's measurement methodology as a
// command-line tool.
//
// Usage: run_workload [workload] [mechanism] [arch] [scale]
//   workload  = gzip|vpr|gcc|mcf|crafty|parser|eon|perlbmk|gap|vortex|
//               bzip2|twolf            (default perlbmk)
//   mechanism = dispatcher|ibtc|sieve  (default ibtc)
//   arch      = x86|sparc|simple       (default x86)
//   scale     = positive integer      (default 5)
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"
#include "arch/Timing.h"
#include "core/SdtEngine.h"
#include "support/StringUtils.h"
#include "vm/GuestVM.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace sdt;

int main(int argc, char **argv) {
  std::string Workload = argc > 1 ? argv[1] : "perlbmk";
  std::string Mechanism = argc > 2 ? argv[2] : "ibtc";
  std::string Arch = argc > 3 ? argv[3] : "x86";
  uint32_t Scale = argc > 4 ? static_cast<uint32_t>(std::atoi(argv[4])) : 5;
  if (Scale == 0)
    Scale = 1;

  Expected<isa::Program> Program =
      workloads::buildWorkload(Workload, Scale);
  if (!Program) {
    std::fprintf(stderr, "error: %s\n", Program.error().message().c_str());
    std::fprintf(stderr, "workloads:");
    for (const auto &W : workloads::allWorkloads())
      std::fprintf(stderr, " %s", W.Name);
    std::fprintf(stderr, "\n");
    return 1;
  }

  std::optional<arch::MachineModel> Model = arch::modelByName(Arch);
  if (!Model) {
    std::fprintf(stderr, "error: unknown arch '%s' (x86|sparc|simple)\n",
                 Arch.c_str());
    return 1;
  }

  core::SdtOptions Opts;
  if (Mechanism == "dispatcher") {
    Opts.Mechanism = core::IBMechanism::Dispatcher;
  } else if (Mechanism == "ibtc") {
    Opts.Mechanism = core::IBMechanism::Ibtc;
  } else if (Mechanism == "sieve") {
    Opts.Mechanism = core::IBMechanism::Sieve;
  } else {
    std::fprintf(stderr,
                 "error: unknown mechanism '%s' (dispatcher|ibtc|sieve)\n",
                 Mechanism.c_str());
    return 1;
  }

  // --- Native run -----------------------------------------------------------
  arch::TimingModel NativeTiming(*Model);
  vm::ExecOptions NativeExec;
  NativeExec.Timing = &NativeTiming;
  auto VM = vm::GuestVM::create(*Program, NativeExec);
  if (!VM) {
    std::fprintf(stderr, "error: %s\n", VM.error().message().c_str());
    return 1;
  }
  vm::RunResult Native = (*VM)->run();
  if (!Native.finishedNormally()) {
    std::fprintf(stderr, "native run failed: %s %s\n",
                 vm::exitReasonName(Native.Reason),
                 Native.FaultMessage.c_str());
    return 1;
  }

  // --- Translated run ---------------------------------------------------
  arch::TimingModel SdtTiming(*Model);
  vm::ExecOptions SdtExec;
  SdtExec.Timing = &SdtTiming;
  auto Engine = core::SdtEngine::create(*Program, Opts, SdtExec);
  if (!Engine) {
    std::fprintf(stderr, "error: %s\n", Engine.error().message().c_str());
    return 1;
  }
  vm::RunResult Translated = (*Engine)->run();

  // --- Report -----------------------------------------------------------
  const vm::CtiStats &C = Native.Cti;
  std::printf("workload %s (scale %u) on %s: %llu instructions\n",
              Workload.c_str(), Scale, Arch.c_str(),
              static_cast<unsigned long long>(Native.InstructionCount));
  std::printf(
      "IB mix: returns=%llu ind-calls=%llu ind-jumps=%llu "
      "(%.2f IBs per 1k instructions)\n",
      static_cast<unsigned long long>(C.Returns),
      static_cast<unsigned long long>(C.IndirectCalls),
      static_cast<unsigned long long>(C.IndirectJumps),
      1000.0 * static_cast<double>(C.indirectTotal()) /
          static_cast<double>(Native.InstructionCount));

  bool Same = Native.Output == Translated.Output &&
              Native.Checksum == Translated.Checksum &&
              Native.InstructionCount == Translated.InstructionCount &&
              Native.Reason == Translated.Reason;
  std::printf("behaviour identical under SDT: %s\n", Same ? "yes" : "NO");
  if (!Same && !Translated.FaultMessage.empty())
    std::printf("  translated fault: %s\n",
                Translated.FaultMessage.c_str());

  std::printf("\nnative cycles:     %llu\n",
              static_cast<unsigned long long>(NativeTiming.totalCycles()));
  std::printf("translated cycles: %llu  (slowdown %.3fx)\n",
              static_cast<unsigned long long>(SdtTiming.totalCycles()),
              static_cast<double>(SdtTiming.totalCycles()) /
                  static_cast<double>(NativeTiming.totalCycles()));
  std::printf("cycle breakdown:");
  for (unsigned I = 0;
       I != static_cast<unsigned>(arch::CycleCategory::NumCategories); ++I) {
    arch::CycleCategory Cat = static_cast<arch::CycleCategory>(I);
    std::printf(" %s=%.1f%%", arch::cycleCategoryName(Cat),
                100.0 * static_cast<double>(SdtTiming.cycles(Cat)) /
                    static_cast<double>(SdtTiming.totalCycles()));
  }
  std::printf("\n\n%s", (*Engine)->report().c_str());
  return Same ? 0 : 1;
}
