//===- examples/girc_cc.cpp - MinC compiler driver -----------------*- C++ -*-===//
//
// Part of StrataIB.
//
// Command-line driver for girc, the MinC → GIR compiler: emit assembly,
// run natively, or run under the SDT with a report. Write guest programs
// in a C-like language and watch how their indirect branches behave
// under translation.
//
// Usage:
//   girc_cc emit file.mc     # print generated GIR assembly
//   girc_cc run  file.mc     # compile + run natively
//   girc_cc sdt  file.mc     # compile + run under the default SDT
//
//===----------------------------------------------------------------------===//

#include "core/SdtEngine.h"
#include "girc/Compiler.h"
#include "vm/GuestVM.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace sdt;

static int usage() {
  std::fprintf(stderr, "usage: girc_cc <emit|run|sdt> <file.mc>\n");
  return 2;
}

int main(int argc, char **argv) {
  if (argc != 3)
    return usage();
  std::string Command = argv[1];

  std::ifstream File(argv[2]);
  if (!File) {
    std::fprintf(stderr, "girc_cc: cannot open '%s'\n", argv[2]);
    return 1;
  }
  std::ostringstream Buffer;
  Buffer << File.rdbuf();

  if (Command == "emit") {
    Expected<std::string> Asm = girc::compileToAssembly(Buffer.str());
    if (!Asm) {
      std::fprintf(stderr, "girc_cc: %s: %s\n", argv[2],
                   Asm.error().message().c_str());
      return 1;
    }
    std::fputs(Asm->c_str(), stdout);
    return 0;
  }

  Expected<isa::Program> P = girc::compile(Buffer.str());
  if (!P) {
    std::fprintf(stderr, "girc_cc: %s: %s\n", argv[2],
                 P.error().message().c_str());
    return 1;
  }

  if (Command == "run") {
    auto VM = vm::GuestVM::create(*P, vm::ExecOptions());
    if (!VM) {
      std::fprintf(stderr, "girc_cc: %s\n", VM.error().message().c_str());
      return 1;
    }
    vm::RunResult R = (*VM)->run();
    std::fputs(R.Output.c_str(), stdout);
    if (R.Reason == vm::ExitReason::Fault)
      std::fprintf(stderr, "fault: %s\n", R.FaultMessage.c_str());
    return R.finishedNormally() ? R.ExitCode : 1;
  }

  if (Command == "sdt") {
    auto Engine =
        core::SdtEngine::create(*P, core::SdtOptions(), vm::ExecOptions());
    if (!Engine) {
      std::fprintf(stderr, "girc_cc: %s\n",
                   Engine.error().message().c_str());
      return 1;
    }
    vm::RunResult R = (*Engine)->run();
    std::fputs(R.Output.c_str(), stdout);
    if (R.Reason == vm::ExitReason::Fault)
      std::fprintf(stderr, "fault: %s\n", R.FaultMessage.c_str());
    std::fprintf(stderr, "\n%s", (*Engine)->report().c_str());
    return R.finishedNormally() ? R.ExitCode : 1;
  }

  return usage();
}
