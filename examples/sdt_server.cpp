//===- examples/sdt_server.cpp - Multi-tenant server CLI ---------*- C++ -*-===//
//
// Part of StrataIB.
//
// Command-line front end for the translation service: registers a set of
// tenant workloads, drives a Zipfian admission trace through the
// EngineServer, and prints one line per session plus the per-tenant
// summary. The service knobs come from the environment:
//
//   STRATAIB_TENANTS            tenant count (1..64, default 6)
//   STRATAIB_GLOBAL_CACHE_BYTES global budget (0 = auto-size, default)
//   STRATAIB_ZIPF_S             Zipf exponent in hundredths (default 120)
//   STRATAIB_WARM_START         0 = cold only, 1 = warm (default 1)
//   STRATAIB_JOBS               worker threads (wall time only)
//   STRATAIB_SCALE              workload scale
//
// Usage:
//   sdt_server [mechanism [sessions]]
//     mechanism: ibtc (default), sieve, inline, dispatcher
//     sessions:  admission-trace length (default 5 * tenants)
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "service/EngineServer.h"
#include "service/ZipfTrace.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace sdt;
using namespace sdt::bench;

static int usage() {
  std::fprintf(stderr,
               "usage: sdt_server [mechanism [sessions]]\n"
               "  mechanism: ibtc | sieve | inline | dispatcher\n"
               "  sessions:  admission-trace length (default 5 * tenants)\n");
  return 2;
}

int main(int argc, char **argv) {
  core::SdtOptions Opts;
  if (argc > 1) {
    if (std::strcmp(argv[1], "ibtc") == 0) {
      Opts.Mechanism = core::IBMechanism::Ibtc;
    } else if (std::strcmp(argv[1], "sieve") == 0) {
      Opts.Mechanism = core::IBMechanism::Sieve;
    } else if (std::strcmp(argv[1], "inline") == 0) {
      Opts.Mechanism = core::IBMechanism::Ibtc;
      Opts.InlineCacheDepth = 2;
    } else if (std::strcmp(argv[1], "dispatcher") == 0) {
      Opts.Mechanism = core::IBMechanism::Dispatcher;
    } else {
      return usage();
    }
  }
  Opts = withCacheEnvOverrides(Opts);

  uint32_t Scale = scaleFromEnv(10);
  uint32_t Tenants =
      static_cast<uint32_t>(envNumberOr("STRATAIB_TENANTS", 6, 1, 64));
  uint32_t GlobalBytes = static_cast<uint32_t>(
      envNumberOr("STRATAIB_GLOBAL_CACHE_BYTES", 0, 0, 1L << 30));
  if (GlobalBytes != 0 && GlobalBytes < 4096) {
    std::fprintf(stderr,
                 "sdt_server: STRATAIB_GLOBAL_CACHE_BYTES must be 0 (auto) "
                 "or >= 4096, got %u\n",
                 GlobalBytes);
    return 2;
  }
  uint32_t ZipfS =
      static_cast<uint32_t>(envNumberOr("STRATAIB_ZIPF_S", 120, 0, 400));
  bool WarmStart = envNumberOr("STRATAIB_WARM_START", 1, 0, 1) != 0;

  uint32_t Sessions = 5 * Tenants;
  if (argc > 2) {
    long S = std::strtol(argv[2], nullptr, 10);
    if (S < 1 || S > 100000)
      return usage();
    Sessions = static_cast<uint32_t>(S);
  }
  if (argc > 3)
    return usage();

  const arch::MachineModel Model = withPredictorEnvOverrides(arch::x86Model());
  std::vector<std::string> Suite = BenchContext::allWorkloadNames();

  // Register tenants round-robin over the workload suite; each requests
  // 1.25x the footprint an untimed probe run measures.
  std::vector<isa::Program> Programs(Tenants);
  std::vector<std::string> Names(Tenants);
  std::vector<uint32_t> Requests(Tenants);
  uint64_t RequestSum = 0;
  for (uint32_t T = 0; T != Tenants; ++T) {
    Names[T] = Suite[T % Suite.size()];
    Expected<isa::Program> P = workloads::buildWorkload(Names[T], Scale);
    if (!P) {
      std::fprintf(stderr, "sdt_server: %s\n", P.error().message().c_str());
      return 1;
    }
    Programs[T] = std::move(*P);

    core::SdtOptions ProbeOpts = Opts;
    ProbeOpts.FragmentCacheBytes = 8u << 20;
    vm::ExecOptions Exec;
    auto Probe = core::SdtEngine::create(Programs[T], ProbeOpts, Exec);
    if (!Probe) {
      std::fprintf(stderr, "sdt_server: %s\n",
                   Probe.error().message().c_str());
      return 1;
    }
    vm::RunResult R = (*Probe)->run();
    if (!R.finishedNormally()) {
      std::fprintf(stderr, "sdt_server: probe %s did not finish: %s\n",
                   Names[T].c_str(), R.FaultMessage.c_str());
      return 1;
    }
    uint32_t Used = (*Probe)->fragmentCache().usedBytes();
    Requests[T] = Used + Used / 4;
    RequestSum += Requests[T];
  }

  service::ServerConfig SC;
  SC.Mode = service::ArbiterMode::SharedBudget;
  SC.MaxTenants = Tenants;
  SC.WarmStart = WarmStart;
  SC.Workers = ParallelRunner::jobsFromEnv();
  SC.GlobalCacheBytes =
      GlobalBytes != 0
          ? GlobalBytes
          : static_cast<uint32_t>(std::max<uint64_t>(
                RequestSum, SC.AdmissionWindow * SC.MinGrantBytes +
                                RequestSum / 2));

  service::EngineServer Server(SC);
  for (uint32_t T = 0; T != Tenants; ++T)
    Server.registerTenant(Names[T], Programs[T], Opts, Model, Requests[T]);

  std::printf("sdt_server: %u tenants, %u sessions, budget %u bytes, "
              "%s arbiter, warm-start %s, %u workers\n",
              Tenants, Sessions, SC.GlobalCacheBytes,
              service::arbiterModeName(SC.Mode), WarmStart ? "on" : "off",
              SC.Workers);

  std::vector<uint32_t> Trace =
      service::zipfTrace(Tenants, Sessions, ZipfS, /*Seed=*/0xE18C0FFEEULL);
  std::vector<service::SessionResult> Results = Server.runTrace(Trace);

  for (size_t I = 0; I != Results.size(); ++I) {
    const service::SessionResult &R = Results[I];
    if (!R.EngineError.empty()) {
      std::fprintf(stderr, "sdt_server: session %zu failed: %s\n", I,
                   R.EngineError.c_str());
      return 1;
    }
    std::printf("session %3zu  tenant %2u (%-10s) %s grant %7u  cycles "
                "%12llu  frags %5llu rehydrated %5llu%s\n",
                I, R.Tenant, Server.registry().tenant(R.Tenant).Name.c_str(),
                R.Warm ? "warm" : "cold", R.GrantBytes,
                static_cast<unsigned long long>(R.TotalCycles),
                static_cast<unsigned long long>(R.Stats.FragmentsTranslated),
                static_cast<unsigned long long>(R.Stats.RehydratedFragments),
                R.SnapshotError.empty() ? "" : "  [snapshot discarded]");
  }

  std::printf("\nper-tenant summary:\n");
  for (uint32_t T = 0; T != Tenants; ++T) {
    const service::TenantRecord &Rec = Server.registry().tenant(T);
    std::printf("  tenant %2u (%-10s): %llu sessions, %llu warm, %llu "
                "snapshots discarded, %u bytes retained\n",
                T, Rec.Name.c_str(),
                static_cast<unsigned long long>(Rec.Sessions),
                static_cast<unsigned long long>(Rec.WarmSessions),
                static_cast<unsigned long long>(Rec.SnapshotsDiscarded),
                Server.arbiter().retainedBytes(T));
  }
  std::printf("arbiter: %llu warm-state reclaims, %u bytes retained in "
              "total, %zu snapshots stored (%zu blob bytes)\n",
              static_cast<unsigned long long>(Server.arbiter().reclaims()),
              Server.arbiter().retainedTotal(), Server.snapshots().count(),
              Server.snapshots().storedBlobBytes());
  return 0;
}
