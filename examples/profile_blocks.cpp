//===- examples/profile_blocks.cpp - SDT-based profiling ----------*- C++ -*-===//
//
// Part of StrataIB.
//
// The abstract's first listed SDT use: program instrumentation. Runs a
// workload under translation with block-count probes injected at every
// fragment entry, prints the hottest blocks (with their leading
// instructions), and reports what the instrumentation itself cost —
// demonstrating that IB handling overhead, not probe cost, dominates an
// instrumenting SDT.
//
// Usage: profile_blocks [workload] [scale]
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"
#include "arch/Timing.h"
#include "core/SdtEngine.h"
#include "isa/Disassembler.h"
#include "support/StringUtils.h"
#include "support/TableFormatter.h"
#include "vm/GuestVM.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace sdt;

int main(int argc, char **argv) {
  std::string Workload = argc > 1 ? argv[1] : "gcc";
  uint32_t Scale = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 5;
  if (Scale == 0)
    Scale = 1;

  Expected<isa::Program> Program =
      workloads::buildWorkload(Workload, Scale);
  if (!Program) {
    std::fprintf(stderr, "%s\n", Program.error().message().c_str());
    return 1;
  }

  arch::MachineModel Model = arch::x86Model();

  // Uninstrumented translated run (the overhead baseline).
  arch::TimingModel PlainTiming(Model);
  vm::ExecOptions PlainExec;
  PlainExec.Timing = &PlainTiming;
  core::SdtOptions PlainOpts;
  auto Plain = core::SdtEngine::create(*Program, PlainOpts, PlainExec);
  if (!Plain) {
    std::fprintf(stderr, "%s\n", Plain.error().message().c_str());
    return 1;
  }
  (*Plain)->run();

  // Instrumented run.
  arch::TimingModel ProbedTiming(Model);
  vm::ExecOptions ProbedExec;
  ProbedExec.Timing = &ProbedTiming;
  core::SdtOptions ProbedOpts;
  ProbedOpts.InstrumentBlockCounts = true;
  auto Probed = core::SdtEngine::create(*Program, ProbedOpts, ProbedExec);
  if (!Probed) {
    std::fprintf(stderr, "%s\n", Probed.error().message().c_str());
    return 1;
  }
  vm::RunResult R = (*Probed)->run();
  if (!R.finishedNormally()) {
    std::fprintf(stderr, "run failed: %s\n", R.FaultMessage.c_str());
    return 1;
  }

  // Hottest blocks.
  std::vector<std::pair<uint64_t, uint32_t>> Hot; // (count, entry)
  for (const auto &[Entry, Count] : (*Probed)->blockCounts())
    Hot.emplace_back(Count, Entry);
  std::sort(Hot.rbegin(), Hot.rend());

  std::printf("block profile of %s (scale %u): %zu blocks, %llu "
              "instructions\n\n",
              Workload.c_str(), Scale, Hot.size(),
              static_cast<unsigned long long>(R.InstructionCount));

  TableFormatter T({"entry", "executions", "first instructions"});
  for (size_t I = 0; I != std::min<size_t>(10, Hot.size()); ++I) {
    auto [Count, Entry] = Hot[I];
    std::string Lead;
    for (uint32_t Addr = Entry; Addr < Entry + 8; Addr += 4) {
      Expected<isa::Instruction> Ins = Program->fetch(Addr);
      if (!Ins)
        break;
      if (!Lead.empty())
        Lead += "; ";
      Lead += isa::disassemble(*Ins, Addr);
      if (Ins->isCti())
        break;
    }
    T.beginRow()
        .addCell(formatString("0x%x", Entry))
        .addCell(Count)
        .addCell(Lead);
  }
  std::printf("%s\n", T.render().c_str());

  double Overhead =
      100.0 *
      static_cast<double>(
          ProbedTiming.cycles(arch::CycleCategory::Instrument)) /
      static_cast<double>(ProbedTiming.totalCycles());
  std::printf("instrumented run: %llu cycles (+%.2f%% over plain "
              "translation; %.1f%% of cycles in probes)\n",
              static_cast<unsigned long long>(ProbedTiming.totalCycles()),
              100.0 * (static_cast<double>(ProbedTiming.totalCycles()) /
                           static_cast<double>(PlainTiming.totalCycles()) -
                       1.0),
              Overhead);
  return 0;
}
