//===- girc/CodeGen.cpp ----------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See CodeGen.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "girc/CodeGen.h"

#include "assembler/AsmBuilder.h"
#include "girc/RegAlloc.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <vector>

using namespace sdt;
using namespace sdt::girc;
using assembler::AsmBuilder;

namespace {

/// Emits one function at a time into the shared builder.
class CodeGen {
public:
  CodeGen(const Module &M, const ModuleInfo &Info, bool RegisterAllocate)
      : M(M), Info(Info), RegisterAllocate(RegisterAllocate) {}

  std::string run();

private:
  void emitFunction(const FuncDecl &F);
  void emitStmt(const Stmt &S);
  /// Evaluates \p E into v0 (clobbers t0/t1/t2; balances the stack).
  void emitExpr(const Expr &E);
  void emitCall(const Expr &E);
  void emitShortCircuit(const Expr &E);

  std::string freshLabel() { return formatString("Lg%u", LabelCounter++); }

  void emitSwitch(const Stmt &S);

  /// Frame-pointer byte offset of local slot \p Slot.
  static int32_t slotOffset(unsigned Slot) {
    return -4 * (static_cast<int32_t>(Slot) + 1);
  }

  bool isLocal(const std::string &Name) const {
    return CurrentFn->LocalSlots.count(Name) != 0;
  }

  /// Loads local \p Name into \p Dst ("v0", "t2", ...).
  void emitLoadLocal(const std::string &Name, const char *Dst) {
    if (Alloc.inRegister(Name))
      B.emitf("move %s, %s", Dst, Alloc.regName(Name).c_str());
    else
      B.emitf("lw %s, %d(fp)", Dst,
              slotOffset(CurrentFn->LocalSlots.at(Name)));
  }

  /// Stores v0 into local \p Name.
  void emitStoreLocal(const std::string &Name) {
    if (Alloc.inRegister(Name))
      B.emitf("move %s, v0", Alloc.regName(Name).c_str());
    else
      B.emitf("sw v0, %d(fp)",
              slotOffset(CurrentFn->LocalSlots.at(Name)));
  }

  /// Frame offset of the k-th saved callee-saved register (they live
  /// below the locals).
  int32_t savedRegOffset(unsigned K) const {
    return -4 * (static_cast<int32_t>(CurrentFn->NumLocals + K) + 1);
  }

  const Module &M;
  const ModuleInfo &Info;
  AsmBuilder B;
  /// (label, ".word ..." line) pairs for switch jump tables, emitted
  /// with the globals.
  std::vector<std::pair<std::string, std::string>> DeferredData;
  bool RegisterAllocate;
  Allocation Alloc;
  const FunctionInfo *CurrentFn = nullptr;
  std::string RetLabel;
  std::vector<std::string> BreakLabels;
  std::vector<std::string> ContinueLabels;
  unsigned LabelCounter = 0;
};

} // namespace

void CodeGen::emitShortCircuit(const Expr &E) {
  std::string End = freshLabel();
  std::string Shortcut = freshLabel();
  emitExpr(*E.Lhs);
  if (E.Op == TokKind::AmpAmp)
    B.emitf("beqz v0, %s", Shortcut.c_str());
  else
    B.emitf("bnez v0, %s", Shortcut.c_str());
  emitExpr(*E.Rhs);
  B.emit("sltu v0, zero, v0"); // Normalise to 0/1.
  B.emitf("j %s", End.c_str());
  B.label(Shortcut);
  B.emitf("li v0, %d", E.Op == TokKind::AmpAmp ? 0 : 1);
  B.label(End);
}

void CodeGen::emitCall(const Expr &E) {
  // Builtins lower straight to syscalls.
  if (ModuleInfo::isBuiltin(E.Name)) {
    emitExpr(*E.Args.front());
    B.emit("move a0, v0");
    unsigned Code = E.Name == "print" ? 1 : E.Name == "putc" ? 2 : 4;
    B.emitf("li v0, %u", Code);
    B.emit("syscall");
    B.emit("li v0, 0");
    return;
  }

  // Arguments left to right onto the stack, then popped into a3..a0.
  for (const auto &Arg : E.Args) {
    emitExpr(*Arg);
    B.emit("push v0");
  }
  for (size_t I = E.Args.size(); I != 0; --I)
    B.emitf("pop a%zu", I - 1);

  if (Info.Functions.count(E.Name)) {
    B.emitf("jal fn_%s", E.Name.c_str());
    return;
  }
  // Indirect call through a variable (loading it cannot clobber a0..a3).
  if (isLocal(E.Name)) {
    emitLoadLocal(E.Name, "t2");
  } else {
    B.emitf("la t2, gv_%s", E.Name.c_str());
    B.emit("lw t2, 0(t2)");
  }
  B.emit("jalr t2");
}

void CodeGen::emitExpr(const Expr &E) {
  switch (E.K) {
  case Expr::Kind::IntLit:
    B.emitf("li v0, %lld", static_cast<long long>(E.IntValue));
    return;

  case Expr::Kind::VarRef:
    if (isLocal(E.Name)) {
      emitLoadLocal(E.Name, "v0");
      return;
    }
    if (Info.Functions.count(E.Name)) {
      B.emitf("la v0, fn_%s", E.Name.c_str()); // Function address.
      return;
    }
    if (Info.Globals.at(E.Name)->IsArray) {
      B.emitf("la v0, gv_%s", E.Name.c_str()); // Array base address.
      return;
    }
    B.emitf("la t0, gv_%s", E.Name.c_str());
    B.emit("lw v0, 0(t0)");
    return;

  case Expr::Kind::Index:
    emitExpr(*E.Rhs);
    B.emit("slli t0, v0, 2");
    B.emitf("la t1, gv_%s", E.Name.c_str());
    B.emit("add t0, t0, t1");
    B.emit("lw v0, 0(t0)");
    return;

  case Expr::Kind::Unary:
    emitExpr(*E.Rhs);
    if (E.Op == TokKind::Minus)
      B.emit("sub v0, zero, v0");
    else
      B.emit("sltiu v0, v0, 1"); // Logical not.
    return;

  case Expr::Kind::Binary: {
    if (E.Op == TokKind::AmpAmp || E.Op == TokKind::PipePipe) {
      emitShortCircuit(E);
      return;
    }
    emitExpr(*E.Lhs);
    B.emit("push v0");
    emitExpr(*E.Rhs);
    B.emit("pop t0"); // t0 = lhs, v0 = rhs.
    switch (E.Op) {
    case TokKind::Plus:
      B.emit("add v0, t0, v0");
      break;
    case TokKind::Minus:
      B.emit("sub v0, t0, v0");
      break;
    case TokKind::Star:
      B.emit("mul v0, t0, v0");
      break;
    case TokKind::Slash:
      B.emit("div v0, t0, v0");
      break;
    case TokKind::Percent:
      B.emit("rem v0, t0, v0");
      break;
    case TokKind::Amp:
      B.emit("and v0, t0, v0");
      break;
    case TokKind::Pipe:
      B.emit("or v0, t0, v0");
      break;
    case TokKind::Caret:
      B.emit("xor v0, t0, v0");
      break;
    case TokKind::Shl:
      B.emit("sll v0, t0, v0");
      break;
    case TokKind::Shr:
      B.emit("srl v0, t0, v0");
      break;
    case TokKind::Lt:
      B.emit("slt v0, t0, v0");
      break;
    case TokKind::Gt:
      B.emit("slt v0, v0, t0");
      break;
    case TokKind::Le:
      B.emit("slt v0, v0, t0");
      B.emit("xori v0, v0, 1");
      break;
    case TokKind::Ge:
      B.emit("slt v0, t0, v0");
      B.emit("xori v0, v0, 1");
      break;
    case TokKind::EqEq:
      B.emit("xor v0, t0, v0");
      B.emit("sltiu v0, v0, 1");
      break;
    case TokKind::NotEq:
      B.emit("xor v0, t0, v0");
      B.emit("sltu v0, zero, v0");
      break;
    default:
      assert(false && "unhandled binary operator");
    }
    return;
  }

  case Expr::Kind::Call:
    emitCall(E);
    return;
  }
  assert(false && "unknown expression kind");
}

void CodeGen::emitStmt(const Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::Block:
    for (const auto &Child : S.Body)
      emitStmt(*Child);
    return;

  case Stmt::Kind::VarDecl:
    if (S.Value) {
      emitExpr(*S.Value);
      emitStoreLocal(S.Name);
    }
    return;

  case Stmt::Kind::Assign:
    if (S.Index) {
      emitExpr(*S.Value);
      B.emit("push v0");
      emitExpr(*S.Index);
      B.emit("slli t0, v0, 2");
      B.emitf("la t1, gv_%s", S.Name.c_str());
      B.emit("add t0, t0, t1");
      B.emit("pop v0");
      B.emit("sw v0, 0(t0)");
      return;
    }
    emitExpr(*S.Value);
    if (isLocal(S.Name)) {
      emitStoreLocal(S.Name);
    } else {
      B.emitf("la t0, gv_%s", S.Name.c_str());
      B.emit("sw v0, 0(t0)");
    }
    return;

  case Stmt::Kind::If: {
    std::string ElseLabel = freshLabel();
    emitExpr(*S.Cond);
    B.emitf("beqz v0, %s", ElseLabel.c_str());
    emitStmt(*S.Then);
    if (S.Else) {
      std::string EndLabel = freshLabel();
      B.emitf("j %s", EndLabel.c_str());
      B.label(ElseLabel);
      emitStmt(*S.Else);
      B.label(EndLabel);
    } else {
      B.label(ElseLabel);
    }
    return;
  }

  case Stmt::Kind::While: {
    std::string CondLabel = freshLabel();
    std::string EndLabel = freshLabel();
    B.label(CondLabel);
    emitExpr(*S.Cond);
    B.emitf("beqz v0, %s", EndLabel.c_str());
    BreakLabels.push_back(EndLabel);
    ContinueLabels.push_back(CondLabel);
    emitStmt(*S.Body.front());
    BreakLabels.pop_back();
    ContinueLabels.pop_back();
    B.emitf("j %s", CondLabel.c_str());
    B.label(EndLabel);
    return;
  }

  case Stmt::Kind::Return:
    if (S.Value)
      emitExpr(*S.Value);
    else
      B.emit("li v0, 0");
    B.emitf("j %s", RetLabel.c_str());
    return;

  case Stmt::Kind::ExprStmt:
    emitExpr(*S.Value);
    return;

  case Stmt::Kind::Switch:
    emitSwitch(S);
    return;

  case Stmt::Kind::Break:
    assert(!BreakLabels.empty() && "sema admits break only inside loops");
    B.emitf("j %s", BreakLabels.back().c_str());
    return;
  case Stmt::Kind::Continue:
    assert(!ContinueLabels.empty() && "sema admits continue inside loops");
    B.emitf("j %s", ContinueLabels.back().c_str());
    return;
  }
  assert(false && "unknown statement kind");
}

void CodeGen::emitSwitch(const Stmt &S) {
  std::string EndLabel = freshLabel();
  std::string DefaultLabel = EndLabel;
  std::vector<std::string> CaseLabels(S.Cases.size());
  std::map<int64_t, std::string> ValueLabels;
  int64_t Min = 0, Max = 0;
  bool HaveValues = false;
  for (size_t I = 0, E = S.Cases.size(); I != E; ++I) {
    CaseLabels[I] = freshLabel();
    const Stmt::SwitchCase &Case = S.Cases[I];
    if (Case.IsDefault) {
      DefaultLabel = CaseLabels[I];
      continue;
    }
    ValueLabels.emplace(Case.Value, CaseLabels[I]);
    if (!HaveValues) {
      Min = Max = Case.Value;
      HaveValues = true;
    } else {
      Min = std::min(Min, Case.Value);
      Max = std::max(Max, Case.Value);
    }
  }

  emitExpr(*S.Cond); // Scrutinee in v0.

  int64_t Range = HaveValues ? Max - Min + 1 : 0;
  bool Dense = HaveValues && Range <= 1024 &&
               Range <= 4 * static_cast<int64_t>(ValueLabels.size()) + 16;
  if (Dense) {
    // Jump-table dispatch: the compiled `jr` the SDT must translate.
    std::string Table = freshLabel();
    B.emitf("li t0, %lld", static_cast<long long>(Min));
    B.emitf("blt v0, t0, %s", DefaultLabel.c_str());
    B.emitf("li t0, %lld", static_cast<long long>(Max));
    B.emitf("bgt v0, t0, %s", DefaultLabel.c_str());
    B.emitf("li t0, %lld", static_cast<long long>(Min));
    B.emit("sub t0, v0, t0");
    B.emit("slli t0, t0, 2");
    B.emitf("la t1, %s", Table.c_str());
    B.emit("add t0, t0, t1");
    B.emit("lw t0, 0(t0)");
    B.emit("jr t0");

    std::string Words = ".word ";
    for (int64_t V = Min; V <= Max; ++V) {
      if (V != Min)
        Words += ", ";
      auto It = ValueLabels.find(V);
      Words += It != ValueLabels.end() ? It->second : DefaultLabel;
    }
    DeferredData.emplace_back(Table, Words);
  } else if (HaveValues) {
    // Sparse: compare chain.
    for (const auto &[Value, Label] : ValueLabels) {
      B.emitf("li t0, %lld", static_cast<long long>(Value));
      B.emitf("beq v0, t0, %s", Label.c_str());
    }
    B.emitf("j %s", DefaultLabel.c_str());
  } else {
    B.emitf("j %s", DefaultLabel.c_str());
  }

  // Arms in source order; C fall-through unless an arm breaks.
  BreakLabels.push_back(EndLabel);
  for (size_t I = 0, E = S.Cases.size(); I != E; ++I) {
    B.label(CaseLabels[I]);
    emitStmt(*S.Body[S.Cases[I].BodyIndex]);
  }
  BreakLabels.pop_back();
  B.label(EndLabel);
}

void CodeGen::emitFunction(const FuncDecl &F) {
  CurrentFn = &Info.Functions.at(F.Name);
  RetLabel = freshLabel();
  Alloc = RegisterAllocate ? allocateRegisters(F, *CurrentFn)
                           : Allocation();

  B.blank();
  B.comment("func " + F.Name);
  B.label("fn_" + F.Name);
  B.emit("push ra");
  B.emit("push fp");
  B.emit("move fp, sp");
  unsigned FrameWords = CurrentFn->NumLocals + Alloc.numUsed();
  if (FrameWords != 0)
    B.emitf("addi sp, sp, -%u", 4 * FrameWords);
  // Preserve the callee-saved registers this function claims.
  for (unsigned K = 0; K != Alloc.numUsed(); ++K)
    B.emitf("sw s%u, %d(fp)", K, savedRegOffset(K));
  // Home the parameters (register or frame slot).
  for (size_t I = 0, E = F.Params.size(); I != E; ++I) {
    const std::string &Param = F.Params[I];
    if (Alloc.inRegister(Param))
      B.emitf("move %s, a%zu", Alloc.regName(Param).c_str(), I);
    else
      B.emitf("sw a%zu, %d(fp)", I,
              slotOffset(static_cast<unsigned>(I)));
  }

  emitStmt(*F.Body);

  B.emit("li v0, 0"); // Fall-off-the-end returns 0.
  B.label(RetLabel);
  for (unsigned K = 0; K != Alloc.numUsed(); ++K)
    B.emitf("lw s%u, %d(fp)", K, savedRegOffset(K));
  B.emit("move sp, fp");
  B.emit("pop fp");
  B.emit("pop ra");
  B.emit("ret");
}

std::string CodeGen::run() {
  B.org(0x1000);
  B.entry("main");
  B.comment("girc-generated bootstrap: exit(main())");
  B.label("main");
  B.emit("jal fn_main");
  B.emit("move a0, v0");
  B.emit("li v0, 0");
  B.emit("syscall");

  for (const FuncDecl &F : M.Funcs)
    emitFunction(F);

  if (!M.Globals.empty() || !DeferredData.empty()) {
    B.blank();
    B.comment("globals and jump tables");
    B.emit(".align 4");
    for (const GlobalDecl &G : M.Globals) {
      B.label("gv_" + G.Name);
      if (G.IsArray)
        B.emitf(".space %u", 4 * G.ArraySize);
      else
        B.emit(".word 0");
    }
    for (const auto &[Label, Words] : DeferredData) {
      B.label(Label);
      B.emit(Words);
    }
  }
  return B.source();
}

std::string sdt::girc::generateAssembly(const Module &M,
                                        const ModuleInfo &Info,
                                        bool RegisterAllocate) {
  CodeGen Gen(M, Info, RegisterAllocate);
  return Gen.run();
}
