//===- girc/RegAlloc.cpp ---------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See RegAlloc.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "girc/RegAlloc.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace sdt;
using namespace sdt::girc;

std::string Allocation::regName(const std::string &Name) const {
  auto It = RegOf.find(Name);
  assert(It != RegOf.end() && "local not register-allocated");
  return formatString("s%u", It->second);
}

namespace {

/// Accumulates per-local reference counts over a function body.
class UseCounter {
public:
  explicit UseCounter(const FunctionInfo &Info) : Info(Info) {}

  void countStmt(const Stmt &S);
  void countExpr(const Expr &E);

  std::map<std::string, unsigned> Counts;

private:
  void bump(const std::string &Name) {
    if (Info.LocalSlots.count(Name))
      ++Counts[Name];
  }

  const FunctionInfo &Info;
};

} // namespace

void UseCounter::countExpr(const Expr &E) {
  switch (E.K) {
  case Expr::Kind::IntLit:
    return;
  case Expr::Kind::VarRef:
    bump(E.Name);
    return;
  case Expr::Kind::Index:
    countExpr(*E.Rhs);
    return;
  case Expr::Kind::Unary:
    countExpr(*E.Rhs);
    return;
  case Expr::Kind::Binary:
    countExpr(*E.Lhs);
    countExpr(*E.Rhs);
    return;
  case Expr::Kind::Call:
    bump(E.Name); // Indirect-call callee (no-op for function names).
    for (const auto &Arg : E.Args)
      countExpr(*Arg);
    return;
  }
  assert(false && "unknown expression kind");
}

void UseCounter::countStmt(const Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::Block:
    for (const auto &Child : S.Body)
      countStmt(*Child);
    return;
  case Stmt::Kind::VarDecl:
    if (S.Value) {
      bump(S.Name);
      countExpr(*S.Value);
    }
    return;
  case Stmt::Kind::Assign:
    bump(S.Name);
    countExpr(*S.Value);
    if (S.Index)
      countExpr(*S.Index);
    return;
  case Stmt::Kind::If:
    countExpr(*S.Cond);
    countStmt(*S.Then);
    if (S.Else)
      countStmt(*S.Else);
    return;
  case Stmt::Kind::While:
    // Loop bodies run many times: weight their references.
    countExpr(*S.Cond);
    countExpr(*S.Cond);
    {
      UseCounter Body(Info);
      Body.countStmt(*S.Body.front());
      for (const auto &[Name, N] : Body.Counts)
        Counts[Name] += 4 * N;
    }
    return;
  case Stmt::Kind::Return:
    if (S.Value)
      countExpr(*S.Value);
    return;
  case Stmt::Kind::ExprStmt:
    countExpr(*S.Value);
    return;
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    return;
  case Stmt::Kind::Switch:
    countExpr(*S.Cond);
    for (const auto &Arm : S.Body)
      countStmt(*Arm);
    return;
  }
  assert(false && "unknown statement kind");
}

Allocation sdt::girc::allocateRegisters(const FuncDecl &F,
                                        const FunctionInfo &Info) {
  UseCounter Counter(Info);
  Counter.countStmt(*F.Body);
  // Parameters get a baseline bump: they are at least written once.
  for (const std::string &Param : F.Params)
    ++Counter.Counts[Param];

  std::vector<std::pair<unsigned, std::string>> Ranked;
  for (const auto &[Name, N] : Counter.Counts)
    Ranked.emplace_back(N, Name);
  // Highest use count first; ties broken by name for determinism.
  std::sort(Ranked.begin(), Ranked.end(),
            [](const auto &A, const auto &B) {
              if (A.first != B.first)
                return A.first > B.first;
              return A.second < B.second;
            });

  Allocation Alloc;
  for (const auto &[N, Name] : Ranked) {
    if (Alloc.RegOf.size() == NumAllocatableRegs)
      break;
    unsigned Reg = static_cast<unsigned>(Alloc.RegOf.size());
    Alloc.RegOf.emplace(Name, Reg);
  }
  return Alloc;
}
