//===- girc/Optimizer.h - MinC AST optimisations ------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST-level optimisations for girc: constant folding (with exactly the
/// 32-bit semantics the VM implements, including division-by-zero and
/// shift-masking rules), algebraic identities on pure subexpressions,
/// short-circuit simplification, and dead-branch elimination
/// (`if (0)`, `while (0)`). Side effects are never dropped except where
/// C's own semantics drop them (the unevaluated arm of `1 || f()`).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_GIRC_OPTIMIZER_H
#define STRATAIB_GIRC_OPTIMIZER_H

#include "girc/Ast.h"

namespace sdt {
namespace girc {

/// Optimises \p M in place. Runs after analyze() (the tree is known
/// well-formed) and before code generation.
void optimize(Module &M);

/// True if evaluating \p E has no side effects (no calls).
bool isPure(const Expr &E);

} // namespace girc
} // namespace sdt

#endif // STRATAIB_GIRC_OPTIMIZER_H
