//===- girc/RegAlloc.h - MinC local-variable allocation -----------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple usage-count register allocator for MinC locals: the most
/// referenced locals of each function are promoted from frame slots to
/// callee-saved registers (s0..s5), which the generated prologue saves
/// and the epilogue restores. Everything else stays in its frame slot.
/// Correctness is easy to see: girc-generated code is the only code in a
/// guest image, and every generated function preserves the s-registers
/// it uses.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_GIRC_REGALLOC_H
#define STRATAIB_GIRC_REGALLOC_H

#include "girc/Ast.h"
#include "girc/Sema.h"

#include <map>
#include <string>

namespace sdt {
namespace girc {

/// Callee-saved registers available for promotion (s0..s5; s6/s7 are
/// left to hand-written assembly conventions in mixed test images).
inline constexpr unsigned NumAllocatableRegs = 6;

/// Allocation result for one function: local name → s-register index
/// (0 => "s0"). Locals absent from the map stay in frame slots.
struct Allocation {
  std::map<std::string, unsigned> RegOf;

  bool inRegister(const std::string &Name) const {
    return RegOf.count(Name) != 0;
  }
  /// Register name ("s0".."s5") for an allocated local.
  std::string regName(const std::string &Name) const;
  /// Number of s-registers used (they are assigned densely from s0).
  unsigned numUsed() const { return static_cast<unsigned>(RegOf.size()); }
};

/// Counts references to each local in \p F (reads, writes, calls through
/// it) and assigns the top-used locals to s-registers.
Allocation allocateRegisters(const FuncDecl &F, const FunctionInfo &Info);

} // namespace girc
} // namespace sdt

#endif // STRATAIB_GIRC_REGALLOC_H
