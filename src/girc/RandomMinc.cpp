//===- girc/RandomMinc.cpp -------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See RandomMinc.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "girc/RandomMinc.h"

#include "support/Rng.h"
#include "support/StringUtils.h"

#include <vector>

using namespace sdt;
using namespace sdt::girc;

namespace {

/// Emits one whole program. Each function knows the set of scalar names
/// (params + declared locals + global scalars) it may read and write.
class MincGen {
public:
  MincGen(uint64_t Seed, const RandomMincOptions &Opts)
      : Rng(Seed), Opts(Opts) {}

  std::string run();

private:
  void emitFunction(unsigned Index, unsigned NumParams);
  void emitStmts(unsigned Count, unsigned Depth, unsigned FuncIndex);
  std::string genExpr(unsigned Depth, unsigned FuncIndex);
  std::string genCall(unsigned FuncIndex);
  std::string randScalar() {
    return Scalars[Rng.nextBelow(Scalars.size())];
  }
  std::string randArrayRef(unsigned Depth, unsigned FuncIndex);

  void line(const std::string &Text) {
    Out.append(Indent, ' ');
    Out += Text;
    Out += '\n';
  }

  sdt::Rng Rng;
  RandomMincOptions Opts;
  std::string Out;
  unsigned Indent = 0;
  std::vector<std::string> Scalars; ///< Readable/writable in scope.
  std::vector<unsigned> FuncParams; ///< Arity per generated function.
  unsigned LoopCounter = 0;         ///< Unique loop-variable names.
  // Termination/blowup control: the call graph is a DAG, but call *sites*
  // multiply along paths, so each function gets a small call budget and
  // loops contain no calls at all.
  unsigned CallBudget = 0;
  bool InLoop = false;
};

} // namespace

std::string MincGen::randArrayRef(unsigned Depth, unsigned FuncIndex) {
  // Indices are masked into the 64-word arrays: `expr & 63` is always a
  // valid non-negative index.
  return formatString("g_arr%u[(%s) & 63]",
                      static_cast<unsigned>(Rng.nextBelow(2)),
                      genExpr(Depth, FuncIndex).c_str());
}

std::string MincGen::genExpr(unsigned Depth, unsigned FuncIndex) {
  if (Depth == 0 || Rng.nextChance(1, 4)) {
    switch (Rng.nextBelow(3)) {
    case 0:
      return std::to_string(Rng.nextInRange(-99, 99));
    case 1:
      return randScalar();
    default:
      return "g_acc";
    }
  }
  switch (Rng.nextBelow(8)) {
  case 0:
  case 1: {
    static const char *const Ops[] = {"+", "-",  "*",  "&",  "|", "^",
                                      "<<", ">>", "<",  "==", "!="};
    const char *Op = Ops[Rng.nextBelow(std::size(Ops))];
    return formatString("(%s %s %s)", genExpr(Depth - 1, FuncIndex).c_str(),
                        Op, genExpr(Depth - 1, FuncIndex).c_str());
  }
  case 2:
    return formatString("(%s / %s)", genExpr(Depth - 1, FuncIndex).c_str(),
                        genExpr(Depth - 1, FuncIndex).c_str());
  case 3:
    return formatString("(%s %% %s)",
                        genExpr(Depth - 1, FuncIndex).c_str(),
                        genExpr(Depth - 1, FuncIndex).c_str());
  case 4:
    return formatString("(-%s)", genExpr(Depth - 1, FuncIndex).c_str());
  case 5:
    return randArrayRef(Depth - 1, FuncIndex);
  case 6:
    if (FuncIndex + 1 < FuncParams.size() && !InLoop && CallBudget > 0) {
      --CallBudget;
      return genCall(FuncIndex);
    }
    return randScalar();
  default:
    return formatString("(%s && %s)",
                        genExpr(Depth - 1, FuncIndex).c_str(),
                        genExpr(Depth - 1, FuncIndex).c_str());
  }
}

std::string MincGen::genCall(unsigned FuncIndex) {
  // Callees are strictly higher-numbered: the call graph is a DAG.
  unsigned Callee =
      FuncIndex + 1 +
      static_cast<unsigned>(
          Rng.nextBelow(FuncParams.size() - FuncIndex - 1));
  std::string Args;
  for (unsigned I = 0; I != FuncParams[Callee]; ++I) {
    if (I != 0)
      Args += ", ";
    Args += genExpr(1, FuncIndex);
  }
  return formatString("f%u(%s)", Callee, Args.c_str());
}

void MincGen::emitStmts(unsigned Count, unsigned Depth,
                        unsigned FuncIndex) {
  for (unsigned I = 0; I != Count; ++I) {
    switch (Rng.nextBelow(10)) {
    case 0:
    case 1: // Scalar assignment.
      line(formatString("%s = %s;", randScalar().c_str(),
                        genExpr(Opts.MaxExprDepth, FuncIndex).c_str()));
      break;
    case 2: // Array store.
      line(formatString("%s = %s;",
                        randArrayRef(1, FuncIndex).c_str(),
                        genExpr(Opts.MaxExprDepth, FuncIndex).c_str()));
      break;
    case 3: // Checksum a value (observability).
      line(formatString("checksum(%s);",
                        genExpr(Opts.MaxExprDepth, FuncIndex).c_str()));
      break;
    case 4: { // Bounded countdown loop with a dedicated counter.
      std::string Counter = formatString("lc%u", LoopCounter++);
      line(formatString("var %s = %u;", Counter.c_str(),
                        2 + static_cast<unsigned>(Rng.nextBelow(5))));
      line(formatString("while (%s > 0) {", Counter.c_str()));
      Indent += 2;
      line(formatString("%s = %s - 1;", Counter.c_str(),
                        Counter.c_str()));
      if (Depth != 0) {
        bool SavedInLoop = InLoop;
        InLoop = true;
        emitStmts(1 + static_cast<unsigned>(Rng.nextBelow(2)), Depth - 1,
                  FuncIndex);
        InLoop = SavedInLoop;
      }
      Indent -= 2;
      line("}");
      break;
    }
    case 5: // If/else.
      line(formatString("if (%s) {",
                        genExpr(2, FuncIndex).c_str()));
      Indent += 2;
      if (Depth != 0)
        emitStmts(1, Depth - 1, FuncIndex);
      line(formatString("g_acc = g_acc + %d;",
                        static_cast<int>(Rng.nextInRange(1, 9))));
      Indent -= 2;
      line("} else {");
      Indent += 2;
      line(formatString("g_acc = g_acc ^ %d;",
                        static_cast<int>(Rng.nextInRange(1, 99))));
      Indent -= 2;
      line("}");
      break;
    case 6: { // Switch over a masked value.
      line(formatString("switch ((%s) & 3) {",
                        genExpr(2, FuncIndex).c_str()));
      Indent += 2;
      for (unsigned C = 0; C != 4; ++C) {
        bool Breaks = Rng.nextChance(2, 3);
        line(formatString("case %u: g_acc = g_acc + %u; %s", C,
                          C * 7 + 1, Breaks ? "break;" : ""));
      }
      line("default: g_acc = g_acc - 1;");
      Indent -= 2;
      line("}");
      break;
    }
    case 7: // New local.
      if (true) {
        std::string Name = formatString("v%u_%u", FuncIndex,
                                        static_cast<unsigned>(
                                            Scalars.size()));
        line(formatString("var %s = %s;", Name.c_str(),
                          genExpr(2, FuncIndex).c_str()));
        Scalars.push_back(Name);
      }
      break;
    case 8: // Call for effect.
      if (FuncIndex + 1 < FuncParams.size() && !InLoop && CallBudget > 0) {
        --CallBudget;
        line(genCall(FuncIndex) + ";");
      } else {
        line(formatString("g_acc = g_acc + %s;",
                          randScalar().c_str()));
      }
      break;
    default: // Accumulate.
      line(formatString("g_acc = g_acc ^ (%s);",
                        genExpr(Opts.MaxExprDepth, FuncIndex).c_str()));
      break;
    }
  }
}

void MincGen::emitFunction(unsigned Index, unsigned NumParams) {
  std::vector<std::string> SavedScalars = {"g_acc"};
  Scalars = SavedScalars;

  std::string Params;
  for (unsigned I = 0; I != NumParams; ++I) {
    std::string Name = formatString("p%u", I);
    if (I != 0)
      Params += ", ";
    Params += Name;
    Scalars.push_back(Name);
  }

  CallBudget = 2;
  InLoop = false;
  line(formatString("func f%u(%s) {", Index, Params.c_str()));
  Indent += 2;
  emitStmts(Opts.StmtsPerFunction, 2, Index);
  line(formatString("return g_acc ^ %u;", Index * 97 + 5));
  Indent -= 2;
  line("}");
  line("");
}

std::string MincGen::run() {
  line("// Randomly generated MinC program (girc fuzzing).");
  line("var g_acc;");
  line("array g_arr0[64];");
  line("array g_arr1[64];");
  line("");

  FuncParams.resize(Opts.NumFunctions);
  for (unsigned I = 0; I != Opts.NumFunctions; ++I)
    FuncParams[I] = static_cast<unsigned>(Rng.nextBelow(4));
  for (unsigned I = 0; I != Opts.NumFunctions; ++I)
    emitFunction(I, FuncParams[I]);

  line("func main() {");
  Indent += 2;
  line("g_acc = 1;");
  line("var round = 3;");
  line("while (round > 0) {");
  Indent += 2;
  line("round = round - 1;");
  if (!FuncParams.empty()) {
    std::string Args;
    for (unsigned I = 0; I != FuncParams[0]; ++I) {
      if (I != 0)
        Args += ", ";
      Args += formatString("round + %u", I);
    }
    line(formatString("g_acc = g_acc + f0(%s);", Args.c_str()));
  }
  line("checksum(g_acc);");
  Indent -= 2;
  line("}");
  line("print(g_acc);");
  line("return 0;");
  Indent -= 2;
  line("}");
  return Out;
}

std::string sdt::girc::generateRandomMinc(uint64_t Seed,
                                          const RandomMincOptions &Opts) {
  MincGen Gen(Seed, Opts);
  return Gen.run();
}
