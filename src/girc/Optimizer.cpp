//===- girc/Optimizer.cpp --------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Optimizer.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "girc/Optimizer.h"

#include <cassert>
#include <limits>

using namespace sdt;
using namespace sdt::girc;

bool sdt::girc::isPure(const Expr &E) {
  switch (E.K) {
  case Expr::Kind::IntLit:
  case Expr::Kind::VarRef:
    return true;
  case Expr::Kind::Index:
    return isPure(*E.Rhs);
  case Expr::Kind::Unary:
    return isPure(*E.Rhs);
  case Expr::Kind::Binary:
    return isPure(*E.Lhs) && isPure(*E.Rhs);
  case Expr::Kind::Call:
    return false;
  }
  assert(false && "unknown expression kind");
  return false;
}

namespace {

/// Replaces *E with an IntLit of \p Value (32-bit wrapped).
void makeIntLit(std::unique_ptr<Expr> &E, uint32_t Value) {
  auto Lit = std::make_unique<Expr>();
  Lit->K = Expr::Kind::IntLit;
  Lit->Line = E->Line;
  Lit->IntValue = static_cast<int32_t>(Value);
  E = std::move(Lit);
}

/// 32-bit evaluation matching vm::executeNonCti exactly.
uint32_t evalBinary(TokKind Op, uint32_t A, uint32_t B) {
  int32_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
  switch (Op) {
  case TokKind::Plus:
    return A + B;
  case TokKind::Minus:
    return A - B;
  case TokKind::Star:
    return A * B;
  case TokKind::Slash:
    if (SB == 0)
      return 0xFFFFFFFFu;
    if (SA == std::numeric_limits<int32_t>::min() && SB == -1)
      return A;
    return static_cast<uint32_t>(SA / SB);
  case TokKind::Percent:
    if (SB == 0)
      return A;
    if (SA == std::numeric_limits<int32_t>::min() && SB == -1)
      return 0;
    return static_cast<uint32_t>(SA % SB);
  case TokKind::Amp:
    return A & B;
  case TokKind::Pipe:
    return A | B;
  case TokKind::Caret:
    return A ^ B;
  case TokKind::Shl:
    return A << (B & 31);
  case TokKind::Shr:
    return A >> (B & 31);
  case TokKind::Lt:
    return SA < SB;
  case TokKind::Le:
    return SA <= SB;
  case TokKind::Gt:
    return SA > SB;
  case TokKind::Ge:
    return SA >= SB;
  case TokKind::EqEq:
    return A == B;
  case TokKind::NotEq:
    return A != B;
  case TokKind::AmpAmp:
    return (A != 0) && (B != 0);
  case TokKind::PipePipe:
    return (A != 0) || (B != 0);
  default:
    assert(false && "not a binary operator");
    return 0;
  }
}

bool isIntLit(const Expr &E, uint32_t Value) {
  return E.K == Expr::Kind::IntLit &&
         static_cast<uint32_t>(E.IntValue) == Value;
}

void foldExpr(std::unique_ptr<Expr> &E);

/// Rewrites *E to `Inner != 0` (boolean normalisation of a short-circuit
/// operand whose other side folded away).
void makeBoolOf(std::unique_ptr<Expr> &E, std::unique_ptr<Expr> Inner) {
  auto Zero = std::make_unique<Expr>();
  Zero->K = Expr::Kind::IntLit;
  Zero->Line = Inner->Line;
  Zero->IntValue = 0;
  auto Cmp = std::make_unique<Expr>();
  Cmp->K = Expr::Kind::Binary;
  Cmp->Line = Inner->Line;
  Cmp->Op = TokKind::NotEq;
  Cmp->Lhs = std::move(Inner);
  Cmp->Rhs = std::move(Zero);
  E = std::move(Cmp);
}

void foldExpr(std::unique_ptr<Expr> &E) {
  switch (E->K) {
  case Expr::Kind::IntLit:
  case Expr::Kind::VarRef:
    return;
  case Expr::Kind::Index:
    foldExpr(E->Rhs);
    return;
  case Expr::Kind::Call:
    for (auto &Arg : E->Args)
      foldExpr(Arg);
    return;
  case Expr::Kind::Unary: {
    foldExpr(E->Rhs);
    if (E->Rhs->K != Expr::Kind::IntLit)
      return;
    uint32_t V = static_cast<uint32_t>(E->Rhs->IntValue);
    makeIntLit(E, E->Op == TokKind::Minus ? 0u - V : (V == 0 ? 1u : 0u));
    return;
  }
  case Expr::Kind::Binary:
    break;
  }

  foldExpr(E->Lhs);
  foldExpr(E->Rhs);
  bool LConst = E->Lhs->K == Expr::Kind::IntLit;
  bool RConst = E->Rhs->K == Expr::Kind::IntLit;

  // Short-circuit forms with a constant left side follow C's evaluation
  // rules: the right side may be legitimately discarded.
  if (E->Op == TokKind::AmpAmp || E->Op == TokKind::PipePipe) {
    if (LConst) {
      bool L = E->Lhs->IntValue != 0;
      bool ShortCircuits = E->Op == TokKind::AmpAmp ? !L : L;
      if (ShortCircuits) {
        // 0 && x == 0 and 1 || x == 1; x is legitimately unevaluated.
        makeIntLit(E, E->Op == TokKind::AmpAmp ? 0 : 1);
      } else {
        // 1 && x == (x != 0); 0 || x == (x != 0).
        makeBoolOf(E, std::move(E->Rhs));
        foldExpr(E); // The normalisation may itself be constant.
      }
    }
    return;
  }

  if (LConst && RConst) {
    makeIntLit(E, evalBinary(E->Op, static_cast<uint32_t>(E->Lhs->IntValue),
                             static_cast<uint32_t>(E->Rhs->IntValue)));
    return;
  }

  // Algebraic identities. Dropping a subexpression is only legal when it
  // is pure.
  switch (E->Op) {
  case TokKind::Plus:
    if (RConst && isIntLit(*E->Rhs, 0)) {
      E = std::move(E->Lhs);
    } else if (LConst && isIntLit(*E->Lhs, 0)) {
      E = std::move(E->Rhs);
    }
    return;
  case TokKind::Minus:
  case TokKind::Shl:
  case TokKind::Shr:
    if (RConst && isIntLit(*E->Rhs, 0))
      E = std::move(E->Lhs);
    return;
  case TokKind::Star:
    if (RConst && isIntLit(*E->Rhs, 1)) {
      E = std::move(E->Lhs);
    } else if (LConst && isIntLit(*E->Lhs, 1)) {
      E = std::move(E->Rhs);
    } else if (RConst && isIntLit(*E->Rhs, 0) && isPure(*E->Lhs)) {
      makeIntLit(E, 0);
    } else if (LConst && isIntLit(*E->Lhs, 0) && isPure(*E->Rhs)) {
      makeIntLit(E, 0);
    }
    return;
  default:
    return;
  }
}

/// Folds within a statement; returns true if the statement itself should
/// be deleted (dead branch).
bool foldStmt(std::unique_ptr<Stmt> &S) {
  switch (S->K) {
  case Stmt::Kind::Block: {
    auto &Body = S->Body;
    for (size_t I = 0; I != Body.size();) {
      if (foldStmt(Body[I]))
        Body.erase(Body.begin() + static_cast<ptrdiff_t>(I));
      else
        ++I;
    }
    return false;
  }
  case Stmt::Kind::VarDecl:
    if (S->Value)
      foldExpr(S->Value);
    return false;
  case Stmt::Kind::Assign:
    foldExpr(S->Value);
    if (S->Index)
      foldExpr(S->Index);
    return false;
  case Stmt::Kind::If: {
    foldExpr(S->Cond);
    foldStmt(S->Then);
    if (S->Else)
      foldStmt(S->Else);
    if (S->Cond->K != Expr::Kind::IntLit)
      return false;
    // Dead-branch elimination: replace with the live arm (or nothing).
    if (S->Cond->IntValue != 0) {
      S = std::move(S->Then);
      return false;
    }
    if (S->Else) {
      S = std::move(S->Else);
      return false;
    }
    return true; // if (0) with no else: delete.
  }
  case Stmt::Kind::While:
    foldExpr(S->Cond);
    foldStmt(S->Body.front());
    return S->Cond->K == Expr::Kind::IntLit && S->Cond->IntValue == 0;
  case Stmt::Kind::Return:
    if (S->Value)
      foldExpr(S->Value);
    return false;
  case Stmt::Kind::ExprStmt:
    foldExpr(S->Value);
    // A pure expression statement is dead.
    return isPure(*S->Value);
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    return false;
  case Stmt::Kind::Switch:
    foldExpr(S->Cond);
    for (auto &Arm : S->Body)
      foldStmt(Arm);
    return false;
  }
  assert(false && "unknown statement kind");
  return false;
}

} // namespace

void sdt::girc::optimize(Module &M) {
  for (FuncDecl &F : M.Funcs)
    foldStmt(F.Body);
}
