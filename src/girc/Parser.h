//===- girc/Parser.h - MinC parser -------------------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MinC with precedence climbing for binary
/// expressions (C precedence: || < && < | < ^ < & < ==/!= < relational <
/// shifts < additive < multiplicative < unary).
///
/// Grammar sketch:
/// \code
///   module   := (global | func)*
///   global   := 'var' ident ';' | 'array' ident '[' number ']' ';'
///   func     := 'func' ident '(' params? ')' block
///   block    := '{' stmt* '}'
///   stmt     := block | 'var' ident ('=' expr)? ';'
///             | 'if' '(' expr ')' stmt ('else' stmt)?
///             | 'while' '(' expr ')' stmt
///             | 'return' expr? ';' | 'break' ';' | 'continue' ';'
///             | ident '=' expr ';' | ident '[' expr ']' '=' expr ';'
///             | expr ';'
///   primary  := number | ident | ident '(' args? ')' | ident '[' expr ']'
///             | '(' expr ')' | '-' primary | '!' primary
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_GIRC_PARSER_H
#define STRATAIB_GIRC_PARSER_H

#include "girc/Ast.h"
#include "support/Error.h"

#include <string_view>

namespace sdt {
namespace girc {

/// Parses MinC source into a Module. Diagnostics name the source line.
Expected<Module> parse(std::string_view Source);

} // namespace girc
} // namespace sdt

#endif // STRATAIB_GIRC_PARSER_H
