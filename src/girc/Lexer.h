//===- girc/Lexer.h - MinC lexer ---------------------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for MinC: identifiers, decimal/hex numbers, keywords, operators,
/// and `//` comments.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_GIRC_LEXER_H
#define STRATAIB_GIRC_LEXER_H

#include "girc/Token.h"
#include "support/Error.h"

#include <string_view>
#include <vector>

namespace sdt {
namespace girc {

/// Lexes \p Source into a token stream ending with an Eof token. Fails on
/// unknown characters and malformed numbers, naming the line.
Expected<std::vector<Token>> lex(std::string_view Source);

} // namespace girc
} // namespace sdt

#endif // STRATAIB_GIRC_LEXER_H
