//===- girc/Ast.h - MinC abstract syntax -------------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MinC AST. Nodes are tagged structs (no RTTI); ownership is by
/// unique_ptr down the tree. Everything is a 32-bit word: integers,
/// global-array addresses, and function addresses — which is what lets
/// `fp = work; fp(x)` express the indirect calls this repository exists
/// to study.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_GIRC_AST_H
#define STRATAIB_GIRC_AST_H

#include "girc/Token.h"

#include <memory>
#include <string>
#include <vector>

namespace sdt {
namespace girc {

/// Expression node (tagged).
struct Expr {
  enum class Kind : uint8_t {
    IntLit, ///< Value
    VarRef, ///< Name — local, global, array (as address), or function.
    Index,  ///< Name[Rhs] — element of a global array.
    Unary,  ///< Op (Minus or Bang) applied to Rhs.
    Binary, ///< Lhs Op Rhs.
    Call,   ///< Name(Args) — direct, builtin, or through a variable.
  };

  Kind K = Kind::IntLit;
  unsigned Line = 0;
  int64_t IntValue = 0;
  std::string Name;
  TokKind Op = TokKind::Plus;
  std::unique_ptr<Expr> Lhs;
  std::unique_ptr<Expr> Rhs;
  std::vector<std::unique_ptr<Expr>> Args;
};

/// Statement node (tagged).
struct Stmt {
  enum class Kind : uint8_t {
    Block,    ///< Body
    VarDecl,  ///< var Name; (optionally = Value)
    Assign,   ///< Name = Value; or Name[Index] = Value;
    If,       ///< if (Cond) Then else Else
    While,    ///< while (Cond) Body[0]
    Return,   ///< return Value; (Value may be null: returns 0)
    ExprStmt, ///< Value; (evaluated for side effects)
    Break,
    Continue,
    Switch,   ///< switch (Cond) { Cases over Body blocks }
  };

  /// One `case N:` (or `default:`) arm; its statements are the Block at
  /// Body[BodyIndex]. C semantics: arms fall through unless they break.
  struct SwitchCase {
    int64_t Value = 0;
    bool IsDefault = false;
    size_t BodyIndex = 0;
  };

  Kind K = Kind::Block;
  unsigned Line = 0;
  std::string Name;
  std::unique_ptr<Expr> Cond;
  std::unique_ptr<Expr> Index; ///< Assign to array element when non-null.
  std::unique_ptr<Expr> Value;
  std::unique_ptr<Stmt> Then;
  std::unique_ptr<Stmt> Else;
  std::vector<std::unique_ptr<Stmt>> Body; ///< Block / While / case arms.
  std::vector<SwitchCase> Cases;           ///< Switch only.
};

/// One `func` definition.
struct FuncDecl {
  std::string Name;
  std::vector<std::string> Params;
  std::unique_ptr<Stmt> Body; ///< Always a Block.
  unsigned Line = 0;
};

/// One global: `var g;` or `array a[N];`.
struct GlobalDecl {
  std::string Name;
  bool IsArray = false;
  uint32_t ArraySize = 0; ///< Elements (words), arrays only.
  unsigned Line = 0;
};

/// A parsed translation unit.
struct Module {
  std::vector<GlobalDecl> Globals;
  std::vector<FuncDecl> Funcs;
};

} // namespace girc
} // namespace sdt

#endif // STRATAIB_GIRC_AST_H
