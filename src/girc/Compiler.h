//===- girc/Compiler.h - MinC compiler driver --------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The girc public entry points: MinC source → GIR assembly → loadable
/// Program (lex, parse, analyze, generate, assemble).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_GIRC_COMPILER_H
#define STRATAIB_GIRC_COMPILER_H

#include "isa/Program.h"
#include "support/Error.h"

#include <string>
#include <string_view>

namespace sdt {
namespace girc {

/// Compilation knobs.
struct CompileOptions {
  /// Run the AST optimiser (constant folding, dead branches, algebraic
  /// identities) before code generation.
  bool Optimize = true;
  /// Promote each function's hottest locals to callee-saved registers.
  bool RegisterAllocate = true;
};

/// Compiles MinC source to GIR assembly text.
Expected<std::string> compileToAssembly(std::string_view Source,
                                        const CompileOptions &Opts = {});

/// Compiles MinC source all the way to a loadable Program.
Expected<isa::Program> compile(std::string_view Source,
                               const CompileOptions &Opts = {});

} // namespace girc
} // namespace sdt

#endif // STRATAIB_GIRC_COMPILER_H
