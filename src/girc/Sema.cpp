//===- girc/Sema.cpp -------------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Sema.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "girc/Sema.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cstdint>
#include <set>

using namespace sdt;
using namespace sdt::girc;

namespace {

/// Per-function checking pass.
class FunctionChecker {
public:
  FunctionChecker(const ModuleInfo &Info, FunctionInfo &Fn)
      : Info(Info), Fn(Fn) {}

  Error run() {
    for (const std::string &Param : Fn.Decl->Params)
      Declared.insert(Param);
    return checkStmt(*Fn.Decl->Body);
  }

private:
  Error checkStmt(const Stmt &S);
  Error checkExpr(const Expr &E);

  /// True if \p Name currently denotes a readable scalar value (local or
  /// global scalar).
  bool isScalarVar(const std::string &Name) const {
    if (Declared.count(Name))
      return true;
    auto It = Info.Globals.find(Name);
    return It != Info.Globals.end() && !It->second->IsArray;
  }

  const ModuleInfo &Info;
  FunctionInfo &Fn;
  std::set<std::string> Declared; ///< Locals visible so far.
  unsigned LoopDepth = 0;
  unsigned SwitchDepth = 0; ///< 'break' is also valid inside a switch.
};

} // namespace

Error FunctionChecker::checkExpr(const Expr &E) {
  switch (E.K) {
  case Expr::Kind::IntLit:
    return Error();

  case Expr::Kind::VarRef: {
    if (Declared.count(E.Name) || Info.Globals.count(E.Name) ||
        Info.Functions.count(E.Name))
      return Error();
    if (ModuleInfo::isBuiltin(E.Name))
      return Error::atLine(E.Line, "builtin '" + E.Name +
                                       "' cannot be used as a value");
    return Error::atLine(E.Line, "undeclared identifier '" + E.Name + "'");
  }

  case Expr::Kind::Index: {
    auto It = Info.Globals.find(E.Name);
    if (It == Info.Globals.end() || !It->second->IsArray)
      return Error::atLine(E.Line, "'" + E.Name + "' is not an array");
    return checkExpr(*E.Rhs);
  }

  case Expr::Kind::Unary:
    return checkExpr(*E.Rhs);

  case Expr::Kind::Binary:
    if (Error Err = checkExpr(*E.Lhs))
      return Err;
    return checkExpr(*E.Rhs);

  case Expr::Kind::Call: {
    if (E.Args.size() > MaxParams)
      return Error::atLine(E.Line,
                           formatString("too many arguments (max %u)",
                                        MaxParams));
    for (const auto &Arg : E.Args)
      if (Error Err = checkExpr(*Arg))
        return Err;

    if (ModuleInfo::isBuiltin(E.Name)) {
      if (E.Args.size() != 1)
        return Error::atLine(E.Line,
                             "builtin '" + E.Name + "' takes one argument");
      return Error();
    }
    auto Func = Info.Functions.find(E.Name);
    if (Func != Info.Functions.end()) {
      if (E.Args.size() != Func->second.Decl->Params.size())
        return Error::atLine(
            E.Line,
            formatString("'%s' expects %zu argument(s), got %zu",
                         E.Name.c_str(),
                         Func->second.Decl->Params.size(), E.Args.size()));
      return Error();
    }
    if (isScalarVar(E.Name))
      return Error(); // Indirect call through a variable.
    return Error::atLine(E.Line,
                         "call target '" + E.Name +
                             "' is neither a function nor a variable");
  }
  }
  assert(false && "unknown expression kind");
  return Error();
}

Error FunctionChecker::checkStmt(const Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::Block:
    for (const auto &Child : S.Body)
      if (Error Err = checkStmt(*Child))
        return Err;
    return Error();

  case Stmt::Kind::VarDecl: {
    if (Declared.count(S.Name))
      return Error::atLine(S.Line, "duplicate local '" + S.Name + "'");
    if (Info.Globals.count(S.Name) || Info.Functions.count(S.Name) ||
        ModuleInfo::isBuiltin(S.Name))
      return Error::atLine(S.Line,
                           "local '" + S.Name + "' shadows a global name");
    if (S.Value)
      if (Error Err = checkExpr(*S.Value))
        return Err;
    Declared.insert(S.Name);
    Fn.LocalSlots.emplace(S.Name, Fn.NumLocals++);
    return Error();
  }

  case Stmt::Kind::Assign: {
    if (Error Err = checkExpr(*S.Value))
      return Err;
    if (S.Index) {
      auto It = Info.Globals.find(S.Name);
      if (It == Info.Globals.end() || !It->second->IsArray)
        return Error::atLine(S.Line, "'" + S.Name + "' is not an array");
      return checkExpr(*S.Index);
    }
    if (isScalarVar(S.Name))
      return Error();
    if (Info.Functions.count(S.Name))
      return Error::atLine(S.Line,
                           "cannot assign to function '" + S.Name + "'");
    return Error::atLine(S.Line,
                         "undeclared assignment target '" + S.Name + "'");
  }

  case Stmt::Kind::If:
    if (Error Err = checkExpr(*S.Cond))
      return Err;
    if (Error Err = checkStmt(*S.Then))
      return Err;
    if (S.Else)
      return checkStmt(*S.Else);
    return Error();

  case Stmt::Kind::While: {
    if (Error Err = checkExpr(*S.Cond))
      return Err;
    ++LoopDepth;
    Error Err = checkStmt(*S.Body.front());
    --LoopDepth;
    return Err;
  }

  case Stmt::Kind::Return:
    if (S.Value)
      return checkExpr(*S.Value);
    return Error();

  case Stmt::Kind::ExprStmt:
    return checkExpr(*S.Value);

  case Stmt::Kind::Break:
    if (LoopDepth == 0 && SwitchDepth == 0)
      return Error::atLine(S.Line, "'break' outside of a loop or switch");
    return Error();
  case Stmt::Kind::Continue:
    if (LoopDepth == 0)
      return Error::atLine(S.Line, "'continue' outside of a loop");
    return Error();

  case Stmt::Kind::Switch: {
    if (Error Err = checkExpr(*S.Cond))
      return Err;
    std::set<int64_t> Seen;
    bool SawDefault = false;
    for (const Stmt::SwitchCase &Case : S.Cases) {
      if (Case.IsDefault) {
        if (SawDefault)
          return Error::atLine(S.Line, "multiple 'default' labels");
        SawDefault = true;
        continue;
      }
      if (Case.Value < INT32_MIN || Case.Value > INT32_MAX)
        return Error::atLine(S.Line, "case value out of 32-bit range");
      if (!Seen.insert(Case.Value).second)
        return Error::atLine(S.Line,
                             formatString("duplicate case value %lld",
                                          static_cast<long long>(
                                              Case.Value)));
    }
    ++SwitchDepth;
    for (const auto &Arm : S.Body)
      if (Error Err = checkStmt(*Arm)) {
        --SwitchDepth;
        return Err;
      }
    --SwitchDepth;
    return Error();
  }
  }
  assert(false && "unknown statement kind");
  return Error();
}

Expected<ModuleInfo> sdt::girc::analyze(const Module &M) {
  ModuleInfo Info;

  for (const GlobalDecl &G : M.Globals) {
    if (ModuleInfo::isBuiltin(G.Name))
      return Error::atLine(G.Line,
                           "global '" + G.Name + "' shadows a builtin");
    auto [It, Inserted] = Info.Globals.emplace(G.Name, &G);
    (void)It;
    if (!Inserted)
      return Error::atLine(G.Line, "duplicate global '" + G.Name + "'");
  }

  for (const FuncDecl &F : M.Funcs) {
    if (ModuleInfo::isBuiltin(F.Name))
      return Error::atLine(F.Line,
                           "function '" + F.Name + "' shadows a builtin");
    if (Info.Globals.count(F.Name))
      return Error::atLine(F.Line, "function '" + F.Name +
                                       "' collides with a global");
    if (F.Params.size() > MaxParams)
      return Error::atLine(F.Line,
                           formatString("too many parameters (max %u)",
                                        MaxParams));
    FunctionInfo Fn;
    Fn.Decl = &F;
    for (const std::string &Param : F.Params) {
      auto [It, Inserted] = Fn.LocalSlots.emplace(Param, Fn.NumLocals);
      (void)It;
      if (!Inserted)
        return Error::atLine(F.Line, "duplicate parameter '" + Param + "'");
      ++Fn.NumLocals;
    }
    auto [It, Inserted] = Info.Functions.emplace(F.Name, std::move(Fn));
    (void)It;
    if (!Inserted)
      return Error::atLine(F.Line, "duplicate function '" + F.Name + "'");
  }

  auto Main = Info.Functions.find("main");
  if (Main == Info.Functions.end())
    return Error::failure("no 'main' function defined");
  if (!Main->second.Decl->Params.empty())
    return Error::atLine(Main->second.Decl->Line,
                         "'main' takes no parameters");

  for (const FuncDecl &F : M.Funcs) {
    FunctionChecker Checker(Info, Info.Functions.at(F.Name));
    if (Error Err = Checker.run())
      return Err;
  }
  return Info;
}
