//===- girc/Lexer.cpp ------------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Lexer.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "girc/Lexer.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cctype>

using namespace sdt;
using namespace sdt::girc;

std::string sdt::girc::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Ident:
    return "identifier";
  case TokKind::Number:
    return "number";
  case TokKind::KwFunc:
    return "'func'";
  case TokKind::KwVar:
    return "'var'";
  case TokKind::KwArray:
    return "'array'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::KwSwitch:
    return "'switch'";
  case TokKind::KwCase:
    return "'case'";
  case TokKind::KwDefault:
    return "'default'";
  case TokKind::Colon:
    return "':'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Assign:
    return "'='";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Eof:
    return "end of input";
  }
  assert(false && "unknown token kind");
  return "?";
}

static TokKind keywordOrIdent(std::string_view Text) {
  if (Text == "func")
    return TokKind::KwFunc;
  if (Text == "var")
    return TokKind::KwVar;
  if (Text == "array")
    return TokKind::KwArray;
  if (Text == "if")
    return TokKind::KwIf;
  if (Text == "else")
    return TokKind::KwElse;
  if (Text == "while")
    return TokKind::KwWhile;
  if (Text == "return")
    return TokKind::KwReturn;
  if (Text == "break")
    return TokKind::KwBreak;
  if (Text == "continue")
    return TokKind::KwContinue;
  if (Text == "switch")
    return TokKind::KwSwitch;
  if (Text == "case")
    return TokKind::KwCase;
  if (Text == "default")
    return TokKind::KwDefault;
  return TokKind::Ident;
}

Expected<std::vector<Token>> sdt::girc::lex(std::string_view Source) {
  std::vector<Token> Tokens;
  unsigned Line = 1;
  size_t I = 0, E = Source.size();

  auto push = [&](TokKind Kind) {
    Token T;
    T.Kind = Kind;
    T.Line = Line;
    Tokens.push_back(std::move(T));
  };

  while (I < E) {
    char C = Source[I];

    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '/' && I + 1 < E && Source[I + 1] == '/') {
      while (I < E && Source[I] != '\n')
        ++I;
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < E && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      std::string_view Text = Source.substr(Start, I - Start);
      Token T;
      T.Kind = keywordOrIdent(Text);
      if (T.Kind == TokKind::Ident)
        T.Text = std::string(Text);
      T.Line = Line;
      Tokens.push_back(std::move(T));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      while (I < E && (std::isalnum(static_cast<unsigned char>(Source[I]))))
        ++I;
      std::string_view Text = Source.substr(Start, I - Start);
      std::optional<int64_t> V = parseInteger(Text);
      if (!V || *V > 0xFFFFFFFFLL)
        return Error::atLine(Line,
                             "malformed number '" + std::string(Text) + "'");
      Token T;
      T.Kind = TokKind::Number;
      T.Value = *V;
      T.Line = Line;
      Tokens.push_back(std::move(T));
      continue;
    }

    auto twoChar = [&](char Next, TokKind Two, TokKind One) {
      if (I + 1 < E && Source[I + 1] == Next) {
        push(Two);
        I += 2;
      } else {
        push(One);
        ++I;
      }
    };

    switch (C) {
    case '(':
      push(TokKind::LParen);
      ++I;
      break;
    case ')':
      push(TokKind::RParen);
      ++I;
      break;
    case '{':
      push(TokKind::LBrace);
      ++I;
      break;
    case '}':
      push(TokKind::RBrace);
      ++I;
      break;
    case '[':
      push(TokKind::LBracket);
      ++I;
      break;
    case ']':
      push(TokKind::RBracket);
      ++I;
      break;
    case ',':
      push(TokKind::Comma);
      ++I;
      break;
    case ';':
      push(TokKind::Semi);
      ++I;
      break;
    case ':':
      push(TokKind::Colon);
      ++I;
      break;
    case '+':
      push(TokKind::Plus);
      ++I;
      break;
    case '-':
      push(TokKind::Minus);
      ++I;
      break;
    case '*':
      push(TokKind::Star);
      ++I;
      break;
    case '/':
      push(TokKind::Slash);
      ++I;
      break;
    case '%':
      push(TokKind::Percent);
      ++I;
      break;
    case '^':
      push(TokKind::Caret);
      ++I;
      break;
    case '&':
      twoChar('&', TokKind::AmpAmp, TokKind::Amp);
      break;
    case '|':
      twoChar('|', TokKind::PipePipe, TokKind::Pipe);
      break;
    case '<':
      if (I + 1 < E && Source[I + 1] == '<') {
        push(TokKind::Shl);
        I += 2;
      } else {
        twoChar('=', TokKind::Le, TokKind::Lt);
      }
      break;
    case '>':
      if (I + 1 < E && Source[I + 1] == '>') {
        push(TokKind::Shr);
        I += 2;
      } else {
        twoChar('=', TokKind::Ge, TokKind::Gt);
      }
      break;
    case '=':
      twoChar('=', TokKind::EqEq, TokKind::Assign);
      break;
    case '!':
      twoChar('=', TokKind::NotEq, TokKind::Bang);
      break;
    default:
      return Error::atLine(Line, formatString("unexpected character '%c'",
                                              C));
    }
  }

  push(TokKind::Eof);
  return Tokens;
}
