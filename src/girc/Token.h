//===- girc/Token.h - MinC token definitions ---------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens for MinC, the small C-like language the `girc` compiler lowers
/// to GIR assembly. MinC exists so guest programs with realistic compiled
/// control flow — including the function-pointer calls and deep call
/// trees whose indirect branches this repository studies — can be written
/// in a high-level language instead of assembly.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_GIRC_TOKEN_H
#define STRATAIB_GIRC_TOKEN_H

#include <cstdint>
#include <string>

namespace sdt {
namespace girc {

/// Token kinds. Operator enumerators double as binary-operator tags in
/// the AST.
enum class TokKind : uint8_t {
  // Literals and names.
  Ident,
  Number,
  // Keywords.
  KwFunc,
  KwVar,
  KwArray,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwBreak,
  KwContinue,
  KwSwitch,
  KwCase,
  KwDefault,
  Colon,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Shl,
  Shr,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  Assign,
  AmpAmp,
  PipePipe,
  Bang,
  // End of input.
  Eof,
};

/// One lexed token.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;  ///< Identifier spelling (Ident only).
  int64_t Value = 0; ///< Numeric value (Number only).
  unsigned Line = 0; ///< 1-based source line.
};

/// Short printable name for diagnostics ("identifier", "'+'", ...).
std::string tokKindName(TokKind Kind);

} // namespace girc
} // namespace sdt

#endif // STRATAIB_GIRC_TOKEN_H
