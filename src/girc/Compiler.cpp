//===- girc/Compiler.cpp ---------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Compiler.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "girc/Compiler.h"

#include "assembler/Assembler.h"
#include "girc/CodeGen.h"
#include "girc/Optimizer.h"
#include "girc/Parser.h"
#include "girc/Sema.h"

#include <cassert>

using namespace sdt;
using namespace sdt::girc;

Expected<std::string>
sdt::girc::compileToAssembly(std::string_view Source,
                             const CompileOptions &Opts) {
  Expected<Module> M = parse(Source);
  if (!M)
    return M.takeError();
  Expected<ModuleInfo> Info = analyze(*M);
  if (!Info)
    return Info.takeError();
  if (Opts.Optimize)
    optimize(*M);
  return generateAssembly(*M, *Info, Opts.RegisterAllocate);
}

Expected<isa::Program> sdt::girc::compile(std::string_view Source,
                                          const CompileOptions &Opts) {
  Expected<std::string> Asm = compileToAssembly(Source, Opts);
  if (!Asm)
    return Asm.takeError();
  Expected<isa::Program> P = assembler::assemble(*Asm);
  // Generated assembly failing to assemble is a compiler bug; report it
  // as such in every build mode (an assert vanishes under NDEBUG).
  if (!P)
    return Error::failure("girc emitted assembly that does not assemble "
                          "(compiler bug): " +
                          P.error().message());
  return P;
}
