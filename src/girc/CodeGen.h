//===- girc/CodeGen.h - MinC → GIR assembly ----------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Code generation from a checked MinC module to GIR assembly text.
///
/// Conventions:
///  - frame-pointer frames: `[saved ra][saved fp][locals...]`, local slot
///    i at `-(4*(i+1))(fp)`; parameters arrive in a0..a3 and are spilled
///    into their slots in the prologue;
///  - expressions evaluate into v0, binary operands via push/pop on the
///    guest stack (accumulator style);
///  - direct calls lower to `jal fn_<name>`, calls through variables to
///    `jalr` — the indirect branches the SDT study needs;
///  - builtins print/putc/checksum lower to the VM's syscalls.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_GIRC_CODEGEN_H
#define STRATAIB_GIRC_CODEGEN_H

#include "girc/Ast.h"
#include "girc/Sema.h"
#include "support/Error.h"

#include <string>

namespace sdt {
namespace girc {

/// Lowers checked module \p M to GIR assembly source. \p Info must come
/// from analyze(M). When \p RegisterAllocate is set, each function's
/// hottest locals are promoted to callee-saved registers.
std::string generateAssembly(const Module &M, const ModuleInfo &Info,
                             bool RegisterAllocate = true);

} // namespace girc
} // namespace sdt

#endif // STRATAIB_GIRC_CODEGEN_H
