//===- girc/Sema.h - MinC semantic analysis ----------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and static checks for MinC: symbol tables for globals
/// and per-function locals (parameters first), arity and kind checks for
/// calls and assignments, and structural checks (main exists,
/// break/continue inside loops, declare-before-use).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_GIRC_SEMA_H
#define STRATAIB_GIRC_SEMA_H

#include "girc/Ast.h"
#include "support/Error.h"

#include <map>
#include <string>
#include <string_view>

namespace sdt {
namespace girc {

/// Maximum function parameters (passed in a0..a3).
inline constexpr unsigned MaxParams = 4;

/// Resolved facts about one function.
struct FunctionInfo {
  const FuncDecl *Decl = nullptr;
  /// Frame-slot index per local (parameters occupy slots 0..N-1).
  std::map<std::string, unsigned> LocalSlots;
  unsigned NumLocals = 0;
};

/// Resolved facts about a module.
struct ModuleInfo {
  std::map<std::string, FunctionInfo> Functions;
  std::map<std::string, const GlobalDecl *> Globals;

  /// Builtins compile to syscalls: print/putc/checksum, all arity 1.
  static bool isBuiltin(std::string_view Name) {
    return Name == "print" || Name == "putc" || Name == "checksum";
  }
};

/// Checks \p M and builds its symbol tables. Diagnostics name lines.
Expected<ModuleInfo> analyze(const Module &M);

} // namespace girc
} // namespace sdt

#endif // STRATAIB_GIRC_SEMA_H
