//===- girc/Parser.cpp -----------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Parser.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "girc/Parser.h"

#include "girc/Lexer.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace sdt;
using namespace sdt::girc;

namespace {

/// Binding power of binary operator \p K; 0 when not a binary operator.
unsigned precedenceOf(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return 1;
  case TokKind::AmpAmp:
    return 2;
  case TokKind::Pipe:
    return 3;
  case TokKind::Caret:
    return 4;
  case TokKind::Amp:
    return 5;
  case TokKind::EqEq:
  case TokKind::NotEq:
    return 6;
  case TokKind::Lt:
  case TokKind::Le:
  case TokKind::Gt:
  case TokKind::Ge:
    return 7;
  case TokKind::Shl:
  case TokKind::Shr:
    return 8;
  case TokKind::Plus:
  case TokKind::Minus:
    return 9;
  case TokKind::Star:
  case TokKind::Slash:
  case TokKind::Percent:
    return 10;
  default:
    return 0;
  }
}

class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  Expected<Module> run();

private:
  const Token &peek() const { return Tokens[Pos]; }
  const Token &advance() { return Tokens[Pos++]; }
  bool at(TokKind K) const { return peek().Kind == K; }
  bool accept(TokKind K) {
    if (!at(K))
      return false;
    ++Pos;
    return true;
  }

  Error expect(TokKind K, const char *Context) {
    if (accept(K))
      return Error();
    return Error::atLine(peek().Line,
                         formatString("expected %s %s, got %s",
                                      tokKindName(K).c_str(), Context,
                                      tokKindName(peek().Kind).c_str()));
  }

  Expected<std::string> expectIdent(const char *Context) {
    if (!at(TokKind::Ident))
      return Error::atLine(peek().Line,
                           formatString("expected identifier %s, got %s",
                                        Context,
                                        tokKindName(peek().Kind).c_str()));
    return advance().Text;
  }

  Expected<GlobalDecl> parseGlobal();
  Expected<FuncDecl> parseFunc();
  Expected<std::unique_ptr<Stmt>> parseBlock();
  Expected<std::unique_ptr<Stmt>> parseStmt();
  Expected<std::unique_ptr<Expr>> parseExpr();
  Expected<std::unique_ptr<Expr>> parseBinary(unsigned MinPrec);
  Expected<std::unique_ptr<Expr>> parseUnary();
  Expected<std::unique_ptr<Expr>> parsePrimary();

  std::vector<Token> Tokens;
  size_t Pos = 0;
};

} // namespace

Expected<GlobalDecl> Parser::parseGlobal() {
  GlobalDecl G;
  G.Line = peek().Line;
  if (accept(TokKind::KwVar)) {
    Expected<std::string> Name = expectIdent("after 'var'");
    if (!Name)
      return Name.takeError();
    G.Name = *Name;
    if (Error E = expect(TokKind::Semi, "after global declaration"))
      return E;
    return G;
  }
  assert(at(TokKind::KwArray) && "caller dispatches on var/array");
  advance();
  Expected<std::string> Name = expectIdent("after 'array'");
  if (!Name)
    return Name.takeError();
  G.Name = *Name;
  G.IsArray = true;
  if (Error E = expect(TokKind::LBracket, "after array name"))
    return E;
  if (!at(TokKind::Number))
    return Error::atLine(peek().Line, "expected array size");
  int64_t Size = advance().Value;
  if (Size <= 0 || Size > (1 << 20))
    return Error::atLine(G.Line, "array size out of range");
  G.ArraySize = static_cast<uint32_t>(Size);
  if (Error E = expect(TokKind::RBracket, "after array size"))
    return E;
  if (Error E = expect(TokKind::Semi, "after array declaration"))
    return E;
  return G;
}

Expected<FuncDecl> Parser::parseFunc() {
  FuncDecl F;
  F.Line = peek().Line;
  advance(); // 'func'
  Expected<std::string> Name = expectIdent("after 'func'");
  if (!Name)
    return Name.takeError();
  F.Name = *Name;
  if (Error E = expect(TokKind::LParen, "after function name"))
    return E;
  if (!at(TokKind::RParen)) {
    do {
      Expected<std::string> Param = expectIdent("in parameter list");
      if (!Param)
        return Param.takeError();
      F.Params.push_back(*Param);
    } while (accept(TokKind::Comma));
  }
  if (Error E = expect(TokKind::RParen, "after parameters"))
    return E;
  Expected<std::unique_ptr<Stmt>> Body = parseBlock();
  if (!Body)
    return Body.takeError();
  F.Body = std::move(*Body);
  return F;
}

Expected<std::unique_ptr<Stmt>> Parser::parseBlock() {
  auto Block = std::make_unique<Stmt>();
  Block->K = Stmt::Kind::Block;
  Block->Line = peek().Line;
  if (Error E = expect(TokKind::LBrace, "to open a block"))
    return E;
  while (!at(TokKind::RBrace)) {
    if (at(TokKind::Eof))
      return Error::atLine(peek().Line, "unterminated block");
    Expected<std::unique_ptr<Stmt>> S = parseStmt();
    if (!S)
      return S.takeError();
    Block->Body.push_back(std::move(*S));
  }
  advance(); // '}'
  return Block;
}

Expected<std::unique_ptr<Stmt>> Parser::parseStmt() {
  unsigned Line = peek().Line;

  if (at(TokKind::LBrace))
    return parseBlock();

  auto S = std::make_unique<Stmt>();
  S->Line = Line;

  if (accept(TokKind::KwVar)) {
    S->K = Stmt::Kind::VarDecl;
    Expected<std::string> Name = expectIdent("after 'var'");
    if (!Name)
      return Name.takeError();
    S->Name = *Name;
    if (accept(TokKind::Assign)) {
      Expected<std::unique_ptr<Expr>> Init = parseExpr();
      if (!Init)
        return Init.takeError();
      S->Value = std::move(*Init);
    }
    if (Error E = expect(TokKind::Semi, "after variable declaration"))
      return E;
    return S;
  }

  if (accept(TokKind::KwIf)) {
    S->K = Stmt::Kind::If;
    if (Error E = expect(TokKind::LParen, "after 'if'"))
      return E;
    Expected<std::unique_ptr<Expr>> Cond = parseExpr();
    if (!Cond)
      return Cond.takeError();
    S->Cond = std::move(*Cond);
    if (Error E = expect(TokKind::RParen, "after condition"))
      return E;
    Expected<std::unique_ptr<Stmt>> Then = parseStmt();
    if (!Then)
      return Then.takeError();
    S->Then = std::move(*Then);
    if (accept(TokKind::KwElse)) {
      Expected<std::unique_ptr<Stmt>> Else = parseStmt();
      if (!Else)
        return Else.takeError();
      S->Else = std::move(*Else);
    }
    return S;
  }

  if (accept(TokKind::KwWhile)) {
    S->K = Stmt::Kind::While;
    if (Error E = expect(TokKind::LParen, "after 'while'"))
      return E;
    Expected<std::unique_ptr<Expr>> Cond = parseExpr();
    if (!Cond)
      return Cond.takeError();
    S->Cond = std::move(*Cond);
    if (Error E = expect(TokKind::RParen, "after condition"))
      return E;
    Expected<std::unique_ptr<Stmt>> Body = parseStmt();
    if (!Body)
      return Body.takeError();
    S->Body.push_back(std::move(*Body));
    return S;
  }

  if (accept(TokKind::KwSwitch)) {
    S->K = Stmt::Kind::Switch;
    if (Error E = expect(TokKind::LParen, "after 'switch'"))
      return E;
    Expected<std::unique_ptr<Expr>> Cond = parseExpr();
    if (!Cond)
      return Cond.takeError();
    S->Cond = std::move(*Cond);
    if (Error E = expect(TokKind::RParen, "after switch expression"))
      return E;
    if (Error E = expect(TokKind::LBrace, "to open the switch body"))
      return E;
    while (!accept(TokKind::RBrace)) {
      if (at(TokKind::Eof))
        return Error::atLine(peek().Line, "unterminated switch");
      Stmt::SwitchCase Case;
      if (accept(TokKind::KwCase)) {
        bool Negative = accept(TokKind::Minus);
        if (!at(TokKind::Number))
          return Error::atLine(peek().Line,
                               "expected constant after 'case'");
        Case.Value = advance().Value;
        if (Negative)
          Case.Value = -Case.Value;
      } else if (accept(TokKind::KwDefault)) {
        Case.IsDefault = true;
      } else {
        return Error::atLine(peek().Line,
                             "expected 'case' or 'default' in switch");
      }
      if (Error E = expect(TokKind::Colon, "after case label"))
        return E;
      auto Arm = std::make_unique<Stmt>();
      Arm->K = Stmt::Kind::Block;
      Arm->Line = peek().Line;
      while (!at(TokKind::KwCase) && !at(TokKind::KwDefault) &&
             !at(TokKind::RBrace)) {
        if (at(TokKind::Eof))
          return Error::atLine(peek().Line, "unterminated switch");
        Expected<std::unique_ptr<Stmt>> Child = parseStmt();
        if (!Child)
          return Child.takeError();
        Arm->Body.push_back(std::move(*Child));
      }
      Case.BodyIndex = S->Body.size();
      S->Body.push_back(std::move(Arm));
      S->Cases.push_back(Case);
    }
    if (S->Cases.empty())
      return Error::atLine(S->Line, "switch with no cases");
    return S;
  }

  if (accept(TokKind::KwReturn)) {
    S->K = Stmt::Kind::Return;
    if (!at(TokKind::Semi)) {
      Expected<std::unique_ptr<Expr>> V = parseExpr();
      if (!V)
        return V.takeError();
      S->Value = std::move(*V);
    }
    if (Error E = expect(TokKind::Semi, "after 'return'"))
      return E;
    return S;
  }

  if (accept(TokKind::KwBreak)) {
    S->K = Stmt::Kind::Break;
    if (Error E = expect(TokKind::Semi, "after 'break'"))
      return E;
    return S;
  }
  if (accept(TokKind::KwContinue)) {
    S->K = Stmt::Kind::Continue;
    if (Error E = expect(TokKind::Semi, "after 'continue'"))
      return E;
    return S;
  }

  // Assignment (ident = / ident[expr] =) or expression statement.
  if (at(TokKind::Ident)) {
    TokKind After = Tokens[Pos + 1].Kind;
    if (After == TokKind::Assign) {
      S->K = Stmt::Kind::Assign;
      S->Name = advance().Text;
      advance(); // '='
      Expected<std::unique_ptr<Expr>> V = parseExpr();
      if (!V)
        return V.takeError();
      S->Value = std::move(*V);
      if (Error E = expect(TokKind::Semi, "after assignment"))
        return E;
      return S;
    }
    if (After == TokKind::LBracket) {
      // Could be `a[i] = e;` or an expression like `a[i] + 1;` — parse
      // the index and look for '='.
      size_t Save = Pos;
      std::string Name = advance().Text;
      advance(); // '['
      Expected<std::unique_ptr<Expr>> Index = parseExpr();
      if (!Index)
        return Index.takeError();
      if (Error E = expect(TokKind::RBracket, "after index"))
        return E;
      if (accept(TokKind::Assign)) {
        S->K = Stmt::Kind::Assign;
        S->Name = std::move(Name);
        S->Index = std::move(*Index);
        Expected<std::unique_ptr<Expr>> V = parseExpr();
        if (!V)
          return V.takeError();
        S->Value = std::move(*V);
        if (Error E = expect(TokKind::Semi, "after assignment"))
          return E;
        return S;
      }
      Pos = Save; // Re-parse as a plain expression statement.
    }
  }

  S->K = Stmt::Kind::ExprStmt;
  Expected<std::unique_ptr<Expr>> V = parseExpr();
  if (!V)
    return V.takeError();
  S->Value = std::move(*V);
  if (Error E = expect(TokKind::Semi, "after expression"))
    return E;
  return S;
}

Expected<std::unique_ptr<Expr>> Parser::parseExpr() {
  return parseBinary(1);
}

Expected<std::unique_ptr<Expr>> Parser::parseBinary(unsigned MinPrec) {
  Expected<std::unique_ptr<Expr>> Lhs = parseUnary();
  if (!Lhs)
    return Lhs;
  std::unique_ptr<Expr> Node = std::move(*Lhs);

  while (true) {
    unsigned Prec = precedenceOf(peek().Kind);
    if (Prec < MinPrec || Prec == 0)
      return Node;
    TokKind Op = advance().Kind;
    Expected<std::unique_ptr<Expr>> Rhs = parseBinary(Prec + 1);
    if (!Rhs)
      return Rhs;
    auto Bin = std::make_unique<Expr>();
    Bin->K = Expr::Kind::Binary;
    Bin->Line = Node->Line;
    Bin->Op = Op;
    Bin->Lhs = std::move(Node);
    Bin->Rhs = std::move(*Rhs);
    Node = std::move(Bin);
  }
}

Expected<std::unique_ptr<Expr>> Parser::parseUnary() {
  if (at(TokKind::Minus) || at(TokKind::Bang)) {
    auto U = std::make_unique<Expr>();
    U->K = Expr::Kind::Unary;
    U->Line = peek().Line;
    U->Op = advance().Kind;
    Expected<std::unique_ptr<Expr>> Operand = parseUnary();
    if (!Operand)
      return Operand;
    U->Rhs = std::move(*Operand);
    return U;
  }
  return parsePrimary();
}

Expected<std::unique_ptr<Expr>> Parser::parsePrimary() {
  auto Node = std::make_unique<Expr>();
  Node->Line = peek().Line;

  if (at(TokKind::Number)) {
    Node->K = Expr::Kind::IntLit;
    Node->IntValue = advance().Value;
    return Node;
  }

  if (accept(TokKind::LParen)) {
    Expected<std::unique_ptr<Expr>> Inner = parseExpr();
    if (!Inner)
      return Inner;
    if (Error E = expect(TokKind::RParen, "after expression"))
      return E;
    return Inner;
  }

  if (at(TokKind::Ident)) {
    Node->Name = advance().Text;
    if (accept(TokKind::LParen)) {
      Node->K = Expr::Kind::Call;
      if (!at(TokKind::RParen)) {
        do {
          Expected<std::unique_ptr<Expr>> Arg = parseExpr();
          if (!Arg)
            return Arg;
          Node->Args.push_back(std::move(*Arg));
        } while (accept(TokKind::Comma));
      }
      if (Error E = expect(TokKind::RParen, "after arguments"))
        return E;
      return Node;
    }
    if (accept(TokKind::LBracket)) {
      Node->K = Expr::Kind::Index;
      Expected<std::unique_ptr<Expr>> Index = parseExpr();
      if (!Index)
        return Index;
      Node->Rhs = std::move(*Index);
      if (Error E = expect(TokKind::RBracket, "after index"))
        return E;
      return Node;
    }
    Node->K = Expr::Kind::VarRef;
    return Node;
  }

  return Error::atLine(peek().Line,
                       formatString("expected expression, got %s",
                                    tokKindName(peek().Kind).c_str()));
}

Expected<Module> Parser::run() {
  Module M;
  while (!at(TokKind::Eof)) {
    if (at(TokKind::KwVar) || at(TokKind::KwArray)) {
      Expected<GlobalDecl> G = parseGlobal();
      if (!G)
        return G.takeError();
      M.Globals.push_back(std::move(*G));
      continue;
    }
    if (at(TokKind::KwFunc)) {
      Expected<FuncDecl> F = parseFunc();
      if (!F)
        return F.takeError();
      M.Funcs.push_back(std::move(*F));
      continue;
    }
    return Error::atLine(peek().Line,
                         formatString("expected 'func', 'var' or 'array' "
                                      "at top level, got %s",
                                      tokKindName(peek().Kind).c_str()));
  }
  return M;
}

Expected<Module> sdt::girc::parse(std::string_view Source) {
  Expected<std::vector<Token>> Tokens = lex(Source);
  if (!Tokens)
    return Tokens.takeError();
  Parser P(std::move(*Tokens));
  return P.run();
}
