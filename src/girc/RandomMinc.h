//===- girc/RandomMinc.h - Random MinC program generation ---------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random MinC source generation for compiler fuzzing. Generated
/// programs terminate by construction (calls only reach higher-numbered
/// functions, loops count down dedicated counters, array indices are
/// masked into bounds) and accumulate a checksum, so any two correct
/// compilations — optimised or not, register-allocated or not, native or
/// translated — must agree bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_GIRC_RANDOMMINC_H
#define STRATAIB_GIRC_RANDOMMINC_H

#include <cstdint>
#include <string>

namespace sdt {
namespace girc {

/// Shape knobs.
struct RandomMincOptions {
  unsigned NumFunctions = 5;     ///< Excluding main.
  unsigned StmtsPerFunction = 6; ///< Top-level statements drawn per body.
  unsigned MaxExprDepth = 3;
};

/// Generates MinC source for \p Seed. Always parses, checks, and runs.
std::string generateRandomMinc(uint64_t Seed,
                               const RandomMincOptions &Opts = {});

} // namespace girc
} // namespace sdt

#endif // STRATAIB_GIRC_RANDOMMINC_H
