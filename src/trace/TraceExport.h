//===- trace/TraceExport.h - Trace file exporters ----------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exporters for a recorded TraceSink:
///
///  - JSONL: one JSON object per line per event, terminated by a summary
///    line carrying the full-run per-kind/per-mechanism totals (immune to
///    ring wrap) and, when provided, the engine's own counters so a
///    reader can reconcile the trace against SdtStats exactly.
///  - Chrome trace_event JSON: instant events on a simulated-cycle
///    timeline, loadable in Perfetto / chrome://tracing.
///
/// The schema is documented in docs/Tracing.md; examples/trace_inspect.cpp
/// is the reference reader.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_TRACE_TRACEEXPORT_H
#define STRATAIB_TRACE_TRACEEXPORT_H

#include "trace/TraceSink.h"

#include <string>
#include <vector>

namespace sdt {
namespace trace {

/// One mechanism's engine-side counters, for reconciliation.
struct MechExpectation {
  std::string Name;
  uint64_t Lookups = 0;
  uint64_t Hits = 0;
};

/// The engine-side counters a trace must reconcile against (filled from
/// core::SdtStats and the IB handlers by the caller; the trace layer has
/// no core dependency).
struct StatsExpectation {
  uint64_t DispatchEntries = 0;
  uint64_t FragmentsTranslated = 0;
  uint64_t TracesBuilt = 0;
  uint64_t LinksPatched = 0;
  uint64_t Flushes = 0;
  uint64_t PartialEvictions = 0;
  uint64_t EvictedBytes = 0;
  uint64_t LinksUnlinked = 0;
  uint64_t CodeWriteInvalidations = 0;
  uint64_t FragmentsInvalidatedByWrite = 0;
  uint64_t StaleBytesDiscarded = 0;
  uint64_t TracesOptimized = 0;
  uint64_t SpecGuardHits = 0;
  uint64_t SpecGuardMisses = 0;
  // Service-layer counters (filled by the engine server; zero for
  // single-engine traces, which record none of these events).
  uint64_t TenantAdmissions = 0;
  uint64_t TenantEvictions = 0;
  uint64_t SnapshotSaves = 0;
  uint64_t SnapshotLoads = 0;
  std::vector<MechExpectation> Mechanisms;
};

/// Renders one event as a single-line JSON object (no trailing newline).
std::string jsonlLine(const TraceEvent &E);

/// Renders the JSONL summary line for \p Sink (with reconciliation
/// expectations when \p Expect is non-null).
std::string jsonlSummaryLine(const TraceSink &Sink,
                             const StatsExpectation *Expect);

/// Writes the JSONL trace to \p Path. Returns false on I/O failure.
bool writeJsonl(const TraceSink &Sink, const std::string &Path,
                const StatsExpectation *Expect = nullptr);

/// Renders the Chrome trace_event document for \p Sink.
std::string chromeTraceJson(const TraceSink &Sink);

/// Writes the Chrome trace_event document to \p Path. Returns false on
/// I/O failure.
bool writeChromeTrace(const TraceSink &Sink, const std::string &Path);

} // namespace trace
} // namespace sdt

#endif // STRATAIB_TRACE_TRACEEXPORT_H
