//===- trace/TraceExport.cpp -----------------------------------*- C++ -*-===//
//
// Part of StrataIB. See TraceExport.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceExport.h"

#include "support/Json.h"

#include <fstream>

using namespace sdt;
using namespace sdt::trace;
using support::jsonEscape;
using support::JsonWriter;

namespace {

void appendField(std::string &Out, const char *Key, uint64_t V) {
  Out += ",\"";
  Out += Key;
  Out += "\":";
  Out += std::to_string(V);
}

void appendField(std::string &Out, const char *Key, const char *V) {
  Out += ",\"";
  Out += Key;
  Out += "\":\"";
  Out += jsonEscape(V);
  Out += '"';
}

} // namespace

// JSONL lines are hand-assembled: support::JsonWriter pretty-prints with
// newlines, and JSONL needs exactly one object per line.
std::string sdt::trace::jsonlLine(const TraceEvent &E) {
  std::string Out = "{\"ev\":\"";
  Out += eventKindName(E.Kind);
  Out += "\",\"cycle\":";
  Out += std::to_string(E.Cycle);
  switch (E.Kind) {
  case EventKind::FragmentTranslated:
    appendField(Out, "guest_pc", E.A);
    appendField(Out, "instrs", E.B);
    break;
  case EventKind::TraceBuilt:
    appendField(Out, "head_pc", E.A);
    appendField(Out, "instrs", E.B);
    break;
  case EventKind::DispatchEntry:
    appendField(Out, "guest_pc", E.A);
    break;
  case EventKind::IBLookupHit:
  case EventKind::IBLookupMiss:
    appendField(Out, "mech", E.Mech ? E.Mech : "?");
    appendField(Out, "class", ibClassLabel(E.IbClass));
    appendField(Out, "site", E.A);
    appendField(Out, "target", E.B);
    break;
  case EventKind::LinkPatch:
    appendField(Out, "target_pc", E.A);
    appendField(Out, "stub_addr", E.B);
    break;
  case EventKind::CacheFlush:
    appendField(Out, "fragments", E.A);
    appendField(Out, "used_bytes", E.B);
    break;
  case EventKind::CacheEvict:
    appendField(Out, "fragments", E.A);
    appendField(Out, "freed_bytes", E.B);
    break;
  case EventKind::LinkUnlink:
    appendField(Out, "target_pc", E.A);
    appendField(Out, "stub_addr", E.B);
    break;
  case EventKind::CodeWrite:
    appendField(Out, "store_addr", E.A);
    appendField(Out, "dirty_bytes", E.B);
    break;
  case EventKind::FragInvalidate:
    appendField(Out, "guest_pc", E.A);
    appendField(Out, "code_bytes", E.B);
    break;
  case EventKind::TraceOptimized:
    appendField(Out, "head_pc", E.A);
    appendField(Out, "eliminated", E.B);
    break;
  case EventKind::SpecGuardHit:
  case EventKind::SpecGuardMiss:
    appendField(Out, "site_pc", E.A);
    appendField(Out, "target", E.B);
    break;
  case EventKind::TenantAdmit:
    appendField(Out, "tenant", E.A);
    appendField(Out, "grant_bytes", E.B);
    break;
  case EventKind::TenantEvict:
    appendField(Out, "tenant", E.A);
    appendField(Out, "reclaimed_bytes", E.B);
    break;
  case EventKind::SnapshotSave:
    appendField(Out, "tenant", E.A);
    appendField(Out, "cache_bytes", E.B);
    break;
  case EventKind::SnapshotLoad:
    appendField(Out, "tenant", E.A);
    appendField(Out, "cache_bytes", E.B);
    break;
  case EventKind::NumKinds:
    break;
  }
  Out += '}';
  return Out;
}

std::string sdt::trace::jsonlSummaryLine(const TraceSink &Sink,
                                         const StatsExpectation *Expect) {
  std::string Out = "{\"summary\":true";
  appendField(Out, "capacity", static_cast<uint64_t>(Sink.capacity()));
  appendField(Out, "recorded", static_cast<uint64_t>(Sink.recordedCount()));
  appendField(Out, "dropped_events", Sink.droppedCount());
  appendField(Out, "total", Sink.totalCount());

  Out += ",\"event_totals\":{";
  for (size_t K = 0; K != NumEventKinds; ++K) {
    if (K)
      Out += ',';
    Out += '"';
    Out += eventKindName(static_cast<EventKind>(K));
    Out += "\":";
    Out += std::to_string(Sink.totalCount(static_cast<EventKind>(K)));
  }
  Out += '}';

  Out += ",\"mech_totals\":{";
  bool First = true;
  for (const TraceSink::MechTotals &M : Sink.mechTotals()) {
    // Handlers intern their names at sink-attach time; a mechanism that
    // never recorded a lookup has an all-zero slot and is not part of the
    // run's story — skip it so interning never changes the summary.
    if (M.Hits == 0 && M.Misses == 0)
      continue;
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += jsonEscape(M.Name ? M.Name : "?");
    Out += "\":{\"hits\":";
    Out += std::to_string(M.Hits);
    Out += ",\"misses\":";
    Out += std::to_string(M.Misses);
    Out += '}';
  }
  Out += '}';

  if (Expect) {
    Out += ",\"stats\":{";
    Out += "\"dispatch_entries\":";
    Out += std::to_string(Expect->DispatchEntries);
    Out += ",\"fragments_translated\":";
    Out += std::to_string(Expect->FragmentsTranslated);
    Out += ",\"traces_built\":";
    Out += std::to_string(Expect->TracesBuilt);
    Out += ",\"links_patched\":";
    Out += std::to_string(Expect->LinksPatched);
    Out += ",\"flushes\":";
    Out += std::to_string(Expect->Flushes);
    Out += ",\"partial_evictions\":";
    Out += std::to_string(Expect->PartialEvictions);
    Out += ",\"evicted_bytes\":";
    Out += std::to_string(Expect->EvictedBytes);
    Out += ",\"links_unlinked\":";
    Out += std::to_string(Expect->LinksUnlinked);
    Out += ",\"code_write_invalidations\":";
    Out += std::to_string(Expect->CodeWriteInvalidations);
    Out += ",\"fragments_invalidated_by_write\":";
    Out += std::to_string(Expect->FragmentsInvalidatedByWrite);
    Out += ",\"stale_bytes_discarded\":";
    Out += std::to_string(Expect->StaleBytesDiscarded);
    Out += ",\"traces_optimized\":";
    Out += std::to_string(Expect->TracesOptimized);
    Out += ",\"spec_guard_hits\":";
    Out += std::to_string(Expect->SpecGuardHits);
    Out += ",\"spec_guard_misses\":";
    Out += std::to_string(Expect->SpecGuardMisses);
    Out += ",\"tenant_admissions\":";
    Out += std::to_string(Expect->TenantAdmissions);
    Out += ",\"tenant_evictions\":";
    Out += std::to_string(Expect->TenantEvictions);
    Out += ",\"snapshot_saves\":";
    Out += std::to_string(Expect->SnapshotSaves);
    Out += ",\"snapshot_loads\":";
    Out += std::to_string(Expect->SnapshotLoads);
    Out += '}';
    Out += ",\"expected_mechanisms\":{";
    First = true;
    for (const MechExpectation &M : Expect->Mechanisms) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += jsonEscape(M.Name);
      Out += "\":{\"lookups\":";
      Out += std::to_string(M.Lookups);
      Out += ",\"hits\":";
      Out += std::to_string(M.Hits);
      Out += '}';
    }
    Out += '}';
  }

  Out += '}';
  return Out;
}

bool sdt::trace::writeJsonl(const TraceSink &Sink, const std::string &Path,
                            const StatsExpectation *Expect) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  Sink.forEach([&OS](const TraceEvent &E) { OS << jsonlLine(E) << '\n'; });
  OS << jsonlSummaryLine(Sink, Expect) << '\n';
  return static_cast<bool>(OS);
}

std::string sdt::trace::chromeTraceJson(const TraceSink &Sink) {
  // Instant events ("ph":"i") on a microsecond timeline; we map one
  // simulated cycle to one microsecond so Perfetto renders cycle offsets
  // directly.
  JsonWriter W;
  W.beginObject();
  W.key("displayTimeUnit").value("ns");
  W.key("traceEvents").beginArray();
  Sink.forEach([&W](const TraceEvent &E) {
    W.beginObject();
    W.key("name").value(eventKindName(E.Kind));
    W.key("ph").value("i");
    W.key("s").value("t");
    W.key("ts").value(E.Cycle);
    W.key("pid").value(1);
    W.key("tid").value(1);
    W.key("cat").value(E.Mech ? E.Mech : "engine");
    W.key("args").beginObject();
    W.key("a").value(E.A);
    W.key("b").value(E.B);
    if (E.IbClass != NoIbClass)
      W.key("class").value(ibClassLabel(E.IbClass));
    W.endObject();
    W.endObject();
  });
  W.endArray();
  W.endObject();
  return W.str();
}

bool sdt::trace::writeChromeTrace(const TraceSink &Sink,
                                  const std::string &Path) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  OS << chromeTraceJson(Sink) << '\n';
  return static_cast<bool>(OS);
}
