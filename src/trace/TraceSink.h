//===- trace/TraceSink.h - Event-trace ring buffer ---------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-engine trace sink: a fixed-capacity ring buffer of TraceEvents
/// plus full per-kind and per-mechanism totals that keep counting even
/// after the ring wraps (the oldest events are dropped, the accounting is
/// not). Recording never charges the timing model — timestamps are read
/// through an optional clock callback — so attaching a sink leaves the
/// simulated cycle counts bit-identical.
///
/// Emitters guard every record() with `if (Sink)`; a null sink is the
/// tracing-off fast path and costs one predictable branch.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_TRACE_TRACESINK_H
#define STRATAIB_TRACE_TRACESINK_H

#include "trace/TraceEvent.h"

#include <array>
#include <vector>

namespace sdt {
namespace trace {

/// Fixed-capacity event recorder. Create one per engine run; not
/// thread-safe (each simulated engine is single-threaded; parallel bench
/// cells each get their own sink).
class TraceSink {
public:
  static constexpr size_t DefaultCapacity = 1 << 16;

  explicit TraceSink(size_t CapacityEvents = DefaultCapacity);

  /// Timestamp source: a plain function pointer + context (usually the
  /// run's TimingModel), so the trace layer needs no arch dependency.
  /// Unset, events are stamped with cycle 0.
  using CycleFn = uint64_t (*)(const void *);
  void setClock(CycleFn Fn, const void *Ctx) {
    Clock = Fn;
    ClockCtx = Ctx;
  }

  /// The engine sets the dynamic IB class before consulting a mechanism;
  /// handler-emitted lookup events are stamped with it.
  void setIbClass(uint8_t Class) { CurrentIbClass = Class; }

  /// Records one event (the hot-path entry point; emitters guard the call
  /// with `if (Sink)`). The name-based form dedups \p Mech by content on
  /// every lookup event; hot emitters should intern once and use the
  /// id-based overload below.
  void record(EventKind K, uint32_t A = 0, uint32_t B = 0,
              const char *Mech = nullptr);

  /// Interns \p Mech (deduped by content) into the per-mechanism totals
  /// table and returns its small id. Handlers call this once when a sink
  /// is attached, so per-event recording is an indexed bump instead of a
  /// linear strcmp scan. An interned mechanism that never records a
  /// lookup keeps zero totals; exporters skip such entries, so interning
  /// alone never changes the emitted summary.
  uint16_t internMech(const char *Mech);

  /// O(1) hot-path overload: \p MechId must come from internMech() on
  /// this sink. Lands in the same per-mechanism slot as the name-based
  /// overload — totals are bit-identical whichever path recorded them.
  void record(EventKind K, uint32_t A, uint32_t B, uint16_t MechId);

  size_t capacity() const { return Ring.size(); }
  /// Events currently retained in the ring.
  size_t recordedCount() const {
    return Total < Ring.size() ? static_cast<size_t>(Total) : Ring.size();
  }
  /// Events recorded over the run, including any the ring dropped.
  uint64_t totalCount() const { return Total; }
  uint64_t totalCount(EventKind K) const {
    return Totals[static_cast<size_t>(K)];
  }
  uint64_t droppedCount() const { return Total - recordedCount(); }

  /// Full-run lookup totals per mechanism name (never dropped).
  struct MechTotals {
    const char *Name = nullptr;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
  };
  const std::vector<MechTotals> &mechTotals() const { return Mechs; }

  /// Visits the retained events oldest-to-newest.
  template <typename Fn> void forEach(Fn F) const {
    size_t N = recordedCount();
    size_t Start = Total > N ? Head : 0;
    for (size_t I = 0; I != N; ++I)
      F(Ring[(Start + I) % Ring.size()]);
  }

private:
  void bumpMech(const char *Mech, bool Hit);
  void push(TraceEvent &E);

  std::vector<TraceEvent> Ring;
  size_t Head = 0; ///< Next write index.
  uint64_t Total = 0;
  std::array<uint64_t, NumEventKinds> Totals{};
  std::vector<MechTotals> Mechs;
  CycleFn Clock = nullptr;
  const void *ClockCtx = nullptr;
  uint8_t CurrentIbClass = NoIbClass;
};

} // namespace trace
} // namespace sdt

#endif // STRATAIB_TRACE_TRACESINK_H
