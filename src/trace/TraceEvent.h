//===- trace/TraceEvent.h - Typed SDT trace events ---------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed events the SDT hot path can emit: one small POD per event,
/// stamped with the simulated cycle at which it fired. The trace layer
/// deliberately depends only on support/ — core components hold a
/// TraceSink pointer and emit through it, so IB classes and mechanism
/// names arrive here as a raw byte and a static string respectively.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_TRACE_TRACEEVENT_H
#define STRATAIB_TRACE_TRACEEVENT_H

#include <cstddef>
#include <cstdint>

namespace sdt {
namespace trace {

/// Every event kind the SDT engine and its components emit.
enum class EventKind : uint8_t {
  FragmentTranslated, ///< A fragment was built (A=guest entry, B=instrs).
  TraceBuilt,         ///< A hot path became a trace (A=head, B=instrs).
  DispatchEntry,      ///< Slow-path dispatcher entry (A=guest target).
  IBLookupHit,        ///< Inline IB lookup hit (A=site id, B=guest target).
  IBLookupMiss,       ///< Inline IB lookup miss (A=site id, B=guest target).
  LinkPatch,          ///< A stub was patched (A=guest target, B=stub addr).
  CacheFlush,         ///< Fragment cache flushed (A=fragments, B=used bytes).
  CacheEvict,         ///< Partial eviction (A=fragments, B=bytes freed).
  LinkUnlink,         ///< A link reverted to a stub (A=guest target,
                      ///< B=stub addr) because its target was evicted.
  CodeWrite,          ///< A guest store dirtied decoded code (A=store
                      ///< addr, B=dirtied bytes, word-granular).
  FragInvalidate,     ///< A fragment died because a guest write hit its
                      ///< source range (A=guest entry, B=code bytes).
  TraceOptimized,     ///< The superblock pass pipeline ran over a trace
                      ///< (A=head, B=host ops eliminated).
  SpecGuardHit,       ///< A speculation guard's prediction held
                      ///< (A=site guest pc, B=dynamic target).
  SpecGuardMiss,      ///< A speculation guard fell back to the bound
                      ///< mechanism (A=site guest pc, B=dynamic target).
  TenantAdmit,        ///< The engine server admitted a session
                      ///< (A=tenant id, B=granted cache bytes).
  TenantEvict,        ///< The arbiter reclaimed a tenant's retained warm
                      ///< state under budget pressure (A=tenant id,
                      ///< B=cache bytes reclaimed).
  SnapshotSave,       ///< A finished session's warm state was retained
                      ///< (A=tenant id, B=cache bytes snapshotted).
  SnapshotLoad,       ///< A session started warm from a snapshot
                      ///< (A=tenant id, B=cache bytes rehydratable).
  NumKinds,
};

inline constexpr size_t NumEventKinds =
    static_cast<size_t>(EventKind::NumKinds);

/// Stable short name used by the exporters ("dispatch-entry", ...).
const char *eventKindName(EventKind K);

/// IbClass value for events that are not IB lookups.
inline constexpr uint8_t NoIbClass = 0xFF;

/// Label for a core::IBClass value carried in TraceEvent::IbClass
/// ("ind-jump" / "ind-call" / "return", matching core's naming), or "-"
/// for NoIbClass / unknown values.
const char *ibClassLabel(uint8_t Class);

/// One recorded event. A and B are kind-specific operands (see EventKind).
struct TraceEvent {
  uint64_t Cycle = 0;         ///< Simulated cycle timestamp.
  uint32_t A = 0;             ///< Kind-specific operand.
  uint32_t B = 0;             ///< Kind-specific operand.
  const char *Mech = nullptr; ///< Mechanism name for IB lookup events.
  EventKind Kind = EventKind::DispatchEntry;
  uint8_t IbClass = NoIbClass; ///< IB class for IB lookup events.
};

} // namespace trace
} // namespace sdt

#endif // STRATAIB_TRACE_TRACEEVENT_H
