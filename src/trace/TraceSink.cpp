//===- trace/TraceSink.cpp -------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See TraceSink.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceSink.h"

#include <cassert>
#include <cstring>

using namespace sdt;
using namespace sdt::trace;

const char *sdt::trace::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::FragmentTranslated:
    return "fragment-translated";
  case EventKind::TraceBuilt:
    return "trace-built";
  case EventKind::DispatchEntry:
    return "dispatch-entry";
  case EventKind::IBLookupHit:
    return "ib-lookup-hit";
  case EventKind::IBLookupMiss:
    return "ib-lookup-miss";
  case EventKind::LinkPatch:
    return "link-patch";
  case EventKind::CacheFlush:
    return "cache-flush";
  case EventKind::CacheEvict:
    return "cache-evict";
  case EventKind::LinkUnlink:
    return "link-unlink";
  case EventKind::CodeWrite:
    return "code-write";
  case EventKind::FragInvalidate:
    return "frag-invalidate";
  case EventKind::TraceOptimized:
    return "trace-optimized";
  case EventKind::SpecGuardHit:
    return "spec-guard-hit";
  case EventKind::SpecGuardMiss:
    return "spec-guard-miss";
  case EventKind::TenantAdmit:
    return "tenant-admit";
  case EventKind::TenantEvict:
    return "tenant-evict";
  case EventKind::SnapshotSave:
    return "snapshot-save";
  case EventKind::SnapshotLoad:
    return "snapshot-load";
  case EventKind::NumKinds:
    break;
  }
  assert(false && "invalid event kind");
  return "unknown";
}

const char *sdt::trace::ibClassLabel(uint8_t Class) {
  // Matches core::ibClassName for the three IBClass values; the trace
  // layer keeps its own copy to stay core-independent.
  switch (Class) {
  case 0:
    return "ind-jump";
  case 1:
    return "ind-call";
  case 2:
    return "return";
  default:
    return "-";
  }
}

TraceSink::TraceSink(size_t CapacityEvents)
    : Ring(CapacityEvents > 0 ? CapacityEvents : 1) {}

void TraceSink::bumpMech(const char *Mech, bool Hit) {
  if (!Mech)
    return;
  for (MechTotals &M : Mechs) {
    // Names are static strings but may come from distinct handler
    // instances; compare by content.
    if (M.Name == Mech || std::strcmp(M.Name, Mech) == 0) {
      ++(Hit ? M.Hits : M.Misses);
      return;
    }
  }
  MechTotals M;
  M.Name = Mech;
  (Hit ? M.Hits : M.Misses) = 1;
  Mechs.push_back(M);
}

uint16_t TraceSink::internMech(const char *Mech) {
  assert(Mech && "cannot intern a null mechanism name");
  for (size_t I = 0; I != Mechs.size(); ++I)
    if (Mechs[I].Name == Mech || std::strcmp(Mechs[I].Name, Mech) == 0)
      return static_cast<uint16_t>(I);
  MechTotals M;
  M.Name = Mech;
  Mechs.push_back(M);
  return static_cast<uint16_t>(Mechs.size() - 1);
}

void TraceSink::push(TraceEvent &E) {
  Ring[Head] = E;
  Head = Head + 1 == Ring.size() ? 0 : Head + 1;
  ++Total;
  ++Totals[static_cast<size_t>(E.Kind)];
}

void TraceSink::record(EventKind K, uint32_t A, uint32_t B,
                       const char *Mech) {
  TraceEvent E;
  E.Cycle = Clock ? Clock(ClockCtx) : 0;
  E.A = A;
  E.B = B;
  E.Mech = Mech;
  E.Kind = K;
  if (K == EventKind::IBLookupHit || K == EventKind::IBLookupMiss) {
    E.IbClass = CurrentIbClass;
    bumpMech(Mech, K == EventKind::IBLookupHit);
  }
  push(E);
}

void TraceSink::record(EventKind K, uint32_t A, uint32_t B, uint16_t MechId) {
  assert(MechId < Mechs.size() && "record() with an id not from internMech()");
  MechTotals &M = Mechs[MechId];
  TraceEvent E;
  E.Cycle = Clock ? Clock(ClockCtx) : 0;
  E.A = A;
  E.B = B;
  E.Mech = M.Name;
  E.Kind = K;
  if (K == EventKind::IBLookupHit || K == EventKind::IBLookupMiss) {
    E.IbClass = CurrentIbClass;
    ++(K == EventKind::IBLookupHit ? M.Hits : M.Misses);
  }
  push(E);
}
