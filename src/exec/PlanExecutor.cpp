//===- exec/PlanExecutor.cpp - Pre-decoded fragment executor ----*- C++ -*-===//
//
// Part of StrataIB. SdtEngine::runPlanLoop lives here (not in
// core/SdtEngine.cpp) so the core stays ignorant of the plan format; see
// docs/ExecutionEngine.md for the engine contract.
//
// The loop below must stay observably bit-identical to runSwitchLoop:
// same modeled cycles per category, same cache states, same stats, same
// run results. Fused superop runs get that by deferring *pure
// accumulator* work only — cycle counts into LocalCycles, repeat-line
// I-cache hits into HitCredits — while everything stateful (D-cache
// probes, I-cache probes on a line change, register/memory effects,
// faults, SMC handling) happens at exactly the legacy point in program
// order. The kernels below inline the semantics of vm/ExecSemantics
// (evalPureAlu is the shared single source for ALU results; load/store
// fast paths reproduce executeNonCti's address arithmetic and fault
// messages verbatim). Any op the plan did not fuse executes through
// SdtEngine::stepAt, which *is* the legacy switch body.
//
//===----------------------------------------------------------------------===//

#include "core/SdtEngine.h"

#include "arch/Timing.h"
#include "exec/ExecutionPlan.h"
#include "support/StringUtils.h"
#include "vm/ExecSemantics.h"

#include <cassert>

using namespace sdt;
using namespace sdt::core;
using namespace sdt::vm;
using arch::TimingModel;

SdtEngine::~SdtEngine() = default;

const exec::PlanStats *SdtEngine::planStats() const {
  return PlanEngine ? &PlanEngine->stats() : nullptr;
}

// Deferred-charge bookkeeping for one fused run. Charges flush (a) before
// anything that might itself touch the timing model or the I-cache
// (handleCodeWrite, dispatchTo) and (b) at every run exit. The CurLine
// sentinel is only trusted *between* flushes: resetting it forces the
// next slot to re-probe, which is always exact — skipping the probe is
// the conditional optimization, re-probing never is.
#define SDT_FLUSH_CHARGES()                                                    \
  do {                                                                         \
    if (T) {                                                                   \
      if (LocalCycles) {                                                       \
        T->charge(LocalCycles);                                                \
        LocalCycles = 0;                                                       \
      }                                                                        \
      if (HitCredits) {                                                        \
        IC->creditHits(HitCredits);                                            \
        HitCredits = 0;                                                        \
      }                                                                        \
    }                                                                          \
    CurLine = ~0u;                                                             \
  } while (0)

// Per-slot fetch accounting + guest retirement. A repeat touch of the
// line probed last is a guaranteed LRU hit (see CacheSim::creditHits);
// only line changes reach the cache simulator.
#define SDT_PLAN_PROLOGUE()                                                    \
  do {                                                                         \
    if (T) {                                                                   \
      if (Sl->LineTag != CurLine) {                                            \
        if (!IC->access(Sl->HostAddr))                                         \
          LocalCycles += M->ICacheMissPenalty;                                 \
        CurLine = Sl->LineTag;                                                 \
      } else {                                                                 \
        ++HitCredits;                                                          \
      }                                                                        \
    }                                                                          \
    ++Ctx.Executed;                                                            \
  } while (0)

// Fault exit: identical message format to stepAt's Guest case.
#define SDT_PLAN_FAULT(Reason, FaultAddr)                                      \
  do {                                                                         \
    faultRun(Ctx, formatString("%s at pc=0x%x (addr=0x%x)", (Reason),          \
                               Sl->GuestPc, (FaultAddr)));                     \
    goto RunExit;                                                              \
  } while (0)

// SMC watch shared by the store kernels, mirroring the Guest-store case
// of stepAt: charges flush first (the handler and any dispatch may
// translate code and probe the caches), and if the write killed the
// fragment being executed, the run resumes at the next guest pc through
// the dispatcher.
#define SDT_SMC_WATCH(WriteAddr)                                               \
  do {                                                                         \
    if (Memory.hasPendingCodeWrites()) {                                       \
      SDT_FLUSH_CHARGES();                                                     \
      if (handleCodeWrite((WriteAddr), Ctx.Cur.Frag)) {                        \
        HostLoc Loc = dispatchTo(Sl->GuestPc + isa::InstructionSize);          \
        if (!Loc.valid()) {                                                    \
          faultRun(Ctx, PendingFault);                                         \
          goto RunExit;                                                        \
        }                                                                      \
        Ctx.Cur = Loc;                                                         \
        goto RunExit;                                                          \
      }                                                                        \
    }                                                                          \
  } while (0)

// Op kernels, shared verbatim by the threaded and switch dispatchers;
// CONT is the dispatcher's continue-run action. ExecCost is pre-zeroed
// when the run has no timing model, so the unconditional adds stay exact.
// Pure-ALU kernels have no fault path: evalPureAlu is total.
#define SDT_OP_ALU(CONT)                                                       \
  {                                                                            \
    const isa::Instruction &GI = Sl->GuestI;                                   \
    State.setReg(GI.Rd,                                                        \
                 evalPureAlu(GI, State.reg(GI.Rs1), State.reg(GI.Rs2)));       \
    LocalCycles += Sl->ExecCost;                                               \
    CONT;                                                                      \
  }

#define SDT_OP_ADDI(CONT)                                                      \
  {                                                                            \
    const isa::Instruction &GI = Sl->GuestI;                                   \
    State.setReg(GI.Rd,                                                        \
                 State.reg(GI.Rs1) + static_cast<uint32_t>(GI.Imm));           \
    LocalCycles += Sl->ExecCost;                                               \
    CONT;                                                                      \
  }

#define SDT_OP_ADD(CONT)                                                       \
  {                                                                            \
    const isa::Instruction &GI = Sl->GuestI;                                   \
    State.setReg(GI.Rd, State.reg(GI.Rs1) + State.reg(GI.Rs2));                \
    LocalCycles += Sl->ExecCost;                                               \
    CONT;                                                                      \
  }

#define SDT_OP_FOLDED(CONT)                                                    \
  {                                                                            \
    State.setReg(Sl->GuestI.Rd, Sl->FoldedValue);                              \
    LocalCycles += Sl->ExecCost;                                               \
    CONT;                                                                      \
  }

#define SDT_OP_LW(CONT)                                                        \
  {                                                                            \
    const isa::Instruction &GI = Sl->GuestI;                                   \
    uint32_t Addr = State.reg(GI.Rs1) + static_cast<uint32_t>(GI.Imm);         \
    uint32_t Value;                                                            \
    if (!Memory.load32(Addr, Value))                                           \
      SDT_PLAN_FAULT("bad 32-bit load", Addr);                                 \
    State.setReg(GI.Rd, Value);                                                \
    if (T) {                                                                   \
      LocalCycles += M->LoadCost;                                              \
      if (!DC->access(Addr))                                                   \
        LocalCycles += M->DCacheMissPenalty;                                   \
    }                                                                          \
    CONT;                                                                      \
  }

#define SDT_OP_LOAD(CONT)                                                      \
  {                                                                            \
    ExecEffect Eff = executeNonCti(Sl->GuestI, State, Memory);                 \
    if (Eff.faulted())                                                         \
      SDT_PLAN_FAULT(Eff.FaultReason, Eff.Addr);                               \
    if (T) {                                                                   \
      LocalCycles += M->LoadCost;                                              \
      if (!DC->access(Eff.Addr))                                               \
        LocalCycles += M->DCacheMissPenalty;                                   \
    }                                                                          \
    CONT;                                                                      \
  }

#define SDT_OP_SW(CONT)                                                        \
  {                                                                            \
    const isa::Instruction &GI = Sl->GuestI;                                   \
    uint32_t Addr = State.reg(GI.Rs1) + static_cast<uint32_t>(GI.Imm);         \
    if (!Memory.store32(Addr, State.reg(GI.Rd)))                               \
      SDT_PLAN_FAULT("bad 32-bit store", Addr);                                \
    if (T) {                                                                   \
      LocalCycles += M->StoreCost;                                             \
      if (!DC->access(Addr))                                                   \
        LocalCycles += M->DCacheMissPenalty;                                   \
    }                                                                          \
    SDT_SMC_WATCH(Addr);                                                       \
    CONT;                                                                      \
  }

// Conditional-branch exit op, always the last slot of a run. Only runs
// while the trace recorder is idle (recording runs are truncated to
// RunEndNoExit), so recordCtiStep would be a no-op and is skipped. Sets
// the resume index itself (fall-through stub at CodeIndex+1, taken stub
// at CodeIndex+2 — the translator's layout) and exits the run.
#define SDT_OP_CONDBR()                                                        \
  {                                                                            \
    const isa::Instruction &GI = Sl->GuestI;                                   \
    bool Taken = evalBranchCondition(GI, State);                               \
    if (T) {                                                                   \
      LocalCycles += M->BranchCost;                                            \
      if (!BP->predictConditional(Sl->HostAddr, Taken))                        \
        LocalCycles += M->CondMispredictPenalty;                               \
    }                                                                          \
    ++Ctx.Result.Cti.CondBranches;                                             \
    Ctx.Cur.Index = Sl->CodeIndex + (Taken ? 2u : 1u);                         \
    goto RunExit;                                                              \
  }

#define SDT_OP_STORE(CONT)                                                     \
  {                                                                            \
    ExecEffect Eff = executeNonCti(Sl->GuestI, State, Memory);                 \
    if (Eff.faulted())                                                         \
      SDT_PLAN_FAULT(Eff.FaultReason, Eff.Addr);                               \
    if (T) {                                                                   \
      LocalCycles += M->StoreCost;                                             \
      if (!DC->access(Eff.Addr))                                               \
        LocalCycles += M->DCacheMissPenalty;                                   \
    }                                                                          \
    SDT_SMC_WATCH(Eff.Addr);                                                   \
    CONT;                                                                      \
  }

void SdtEngine::runPlanLoop(RunContext &Ctx) {
  if (!PlanEngine)
    PlanEngine = std::make_unique<exec::PlanStore>();

  TimingModel *T = Ctx.T;
  arch::CacheSim *IC = T ? &T->icache() : nullptr;
  arch::CacheSim *DC = T ? &T->dcache() : nullptr;
  arch::BranchPredictor *BP = T ? &T->predictor() : nullptr;
  const arch::MachineModel *M = T ? &T->model() : nullptr;

  while (!Ctx.Done) {
    if (Ctx.Executed >= Exec.MaxInstructions) {
      finishRun(Ctx, ExitReason::InstrLimit);
      break;
    }
    if (Ctx.Cur.Index == 0)
      noteFragmentEntry(Ctx);

    // A full flush during SetLink return-point resolution leaves Cur
    // pointing at a retired fragment index (the legacy switch simply
    // keeps stepping through it until the next dispatch). Never build or
    // consult a plan through such an index: planFor would stamp a plan
    // with the *current* flush epoch while describing the *retired*
    // fragment, and a new fragment reoccupying the index would then pass
    // revalidation against the stale plan. Step ops route through
    // stepAt, which is the legacy path, byte for byte.
    if (Ctx.Cur.Frag >= Cache.fragmentCount()) {
      stepAt(Ctx);
      continue;
    }

    // Revalidated every iteration: any step op below may patch, evict,
    // tombstone, or flush fragments, and the Gen/FlushStamp check makes
    // stale plans rebuild lazily (docs/ExecutionEngine.md).
    const exec::FragmentPlan *P = PlanEngine->cachedPlan(
        Ctx.Cur.Frag, Cache.fragment(Ctx.Cur.Frag).PlanGen,
        Cache.flushCount());
    if (!P)
      P = &PlanEngine->planFor(Cache, Ctx.Cur.Frag, DirtiedGuestSpans, T);
    if (P->Legacy || Ctx.Cur.Index >= P->SlotOf.size()) {
      stepAt(Ctx);
      continue;
    }
    int32_t Entry = P->SlotOf[Ctx.Cur.Index];
    if (Entry < 0) {
      // Exit op (CTI, IB site, stub, syscall, ...): the legacy switch
      // body handles it — identity by construction.
      stepAt(Ctx);
      continue;
    }

    // --- One fused superop run -----------------------------------------
    // Executes slots [SI, End): every op retires exactly one guest
    // instruction, so the instruction budget clamps End and the outer
    // loop re-checks the limit with bit-identical results.
    uint32_t SI = static_cast<uint32_t>(Entry);
    uint32_t End = P->RunEnd[SI];
    if (Recording) {
      // An active trace recording observes every CTI through the step
      // path, so drop the run's CondBr exit slot. Recording can only
      // turn *off* mid-run (SMC abandons it), never on, so the
      // truncation decided here stays valid for the whole run.
      End = P->RunEndNoExit[SI];
      if (End == SI) {
        stepAt(Ctx);
        continue;
      }
    }
    uint64_t Budget = Exec.MaxInstructions - Ctx.Executed;
    if (End - SI > Budget)
      End = SI + static_cast<uint32_t>(Budget);

    uint64_t LocalCycles = 0;
    uint64_t HitCredits = 0;
    uint32_t CurLine = ~0u;
    const exec::PlanSlot *Sl = nullptr;

#if defined(__GNUC__)
    // Threaded dispatch: a computed-goto table indexed by slot kind, so
    // the hot loop has one indirect jump per op instead of a switch.
    // Table order must match exec::PlanSlot::Kind.
    {
      static const void *const KindTable[9] = {
          &&K_Alu,  &&K_Addi, &&K_Add,    &&K_Lw,     &&K_Load,
          &&K_Sw,   &&K_Store, &&K_Folded, &&K_CondBr};
#define SDT_DISPATCH()                                                         \
  do {                                                                         \
    Sl = &P->Slots[SI];                                                        \
    SDT_PLAN_PROLOGUE();                                                       \
    goto *KindTable[static_cast<unsigned>(Sl->K)];                             \
  } while (0)
#define SDT_NEXT()                                                             \
  do {                                                                         \
    if (++SI == End)                                                           \
      goto RunDone;                                                            \
    SDT_DISPATCH();                                                            \
  } while (0)
      SDT_DISPATCH();
    K_Alu:
      SDT_OP_ALU(SDT_NEXT())
    K_Addi:
      SDT_OP_ADDI(SDT_NEXT())
    K_Add:
      SDT_OP_ADD(SDT_NEXT())
    K_Lw:
      SDT_OP_LW(SDT_NEXT())
    K_Load:
      SDT_OP_LOAD(SDT_NEXT())
    K_Sw:
      SDT_OP_SW(SDT_NEXT())
    K_Store:
      SDT_OP_STORE(SDT_NEXT())
    K_Folded:
      SDT_OP_FOLDED(SDT_NEXT())
    K_CondBr:
      SDT_OP_CONDBR()
#undef SDT_DISPATCH
#undef SDT_NEXT
    }
#else
    for (; SI != End; ++SI) {
      Sl = &P->Slots[SI];
      SDT_PLAN_PROLOGUE();
      switch (Sl->K) {
      case exec::PlanSlot::Kind::Alu:
        SDT_OP_ALU(break)
      case exec::PlanSlot::Kind::Addi:
        SDT_OP_ADDI(break)
      case exec::PlanSlot::Kind::Add:
        SDT_OP_ADD(break)
      case exec::PlanSlot::Kind::Lw:
        SDT_OP_LW(break)
      case exec::PlanSlot::Kind::Load:
        SDT_OP_LOAD(break)
      case exec::PlanSlot::Kind::Sw:
        SDT_OP_SW(break)
      case exec::PlanSlot::Kind::Store:
        SDT_OP_STORE(break)
      case exec::PlanSlot::Kind::Folded:
        SDT_OP_FOLDED(break)
      case exec::PlanSlot::Kind::CondBr:
        SDT_OP_CONDBR()
      }
    }
    goto RunDone;
#endif

  RunDone:
    // Normal or budget-clamped completion: resume right after the last
    // executed op (the next op is an exit op, or the limit check fires).
    Ctx.Cur.Index = P->Slots[End - 1].CodeIndex + 1;
  RunExit:
    SDT_FLUSH_CHARGES();
  }
}
