//===- exec/ExecutionPlan.h - Pre-decoded fragment execution ----*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pre-decoded execution engine's plan format (docs/ExecutionEngine.md).
/// A FragmentPlan compiles one installed fragment into a dense array of
/// PlanSlots: maximal straight-line runs of non-CTI host instructions are
/// fused into superop runs carrying precomputed per-op cycle charges and
/// I-fetch line tags (so the I-cache sim is probed once per line span, not
/// once per instruction), while CTIs, IB sites, and every other op that
/// needs the legacy switch stay step ops delegated to SdtEngine::stepAt.
/// Modeled cycles, cache states, stats, and run results are bit-identical
/// to the legacy interpreter by construction.
///
/// Coherence contract: fragment bodies mutate after installation (link
/// patching, lazy SetLink caching, trace trampolines, eviction unlinking,
/// tombstoning), so every plan is stamped with the fragment's PlanGen
/// generation counter and the cache's flush count, revalidated before each
/// use, and lazily rebuilt when either stamp diverges. Fragments whose
/// guest hull overlaps an observed code-write span deoptimize to the
/// legacy per-instruction path (Legacy = true) instead of being re-planned
/// on every SMC invalidate/retranslate round trip.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_EXEC_EXECUTIONPLAN_H
#define STRATAIB_EXEC_EXECUTIONPLAN_H

#include "isa/Instruction.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace sdt {
namespace arch {
class TimingModel;
}
namespace core {
class FragmentCache;
}
namespace exec {

/// One fused (non-CTI, non-elided) host op, pre-decoded into exactly what
/// the fused loop needs. Slots are self-contained copies: they hold no
/// pointers into Fragment::Code, so mid-run evictions that clear victim
/// code vectors can never dangle a slot.
struct PlanSlot {
  /// Dispatch kind, in table order for the threaded dispatcher. The
  /// non-CTI op space is closed (pure ALU, five load forms, three store
  /// forms), so the plan pre-resolves each op to a kernel: pure-ALU
  /// kernels skip the ExecEffect fault machinery entirely (ALU ops cannot
  /// fault), and the hottest opcodes (addi, add, lw, sw) get dedicated
  /// kernels that bypass the opcode switch as well.
  enum class Kind : uint8_t {
    Alu = 0,    ///< Generic pure ALU via evalPureAlu (no fault path).
    Addi = 1,   ///< rd = rs1 + imm.
    Add = 2,    ///< rd = rs1 + rs2.
    Lw = 3,     ///< 32-bit load, inline fast path.
    Load = 4,   ///< Lh/Lhu/Lb/Lbu via executeNonCti.
    Sw = 5,     ///< 32-bit store, inline fast path (+ SMC watch).
    Store = 6,  ///< Sh/Sb via executeNonCti (+ SMC watch).
    Folded = 7, ///< Constant-folded op: write FoldedValue to rd.
    /// Conditional-branch exit op, always the last slot of its run:
    /// evaluates the condition, charges branch cost + predictor outcome,
    /// and resumes at the fall-through (CodeIndex+1) or taken
    /// (CodeIndex+2) exit stub. Only fused while the trace recorder is
    /// idle — a recording run is truncated to RunEndNoExit so the step
    /// path observes every CTI.
    CondBr = 8,
  };

  Kind K = Kind::Alu;
  isa::Instruction GuestI;   ///< The guest instruction to execute.
  uint32_t GuestPc = 0;      ///< For fault messages and SMC resume.
  uint32_t HostAddr = 0;     ///< Simulated fetch address.
  uint32_t LineTag = 0;      ///< HostAddr >> I-cache line shift.
  uint32_t CodeIndex = 0;    ///< This op's index in Fragment::Code.
  /// Precomputed execute charge: chargeExecute's cost for ALU kinds
  /// (Mul/Div/Rem/Alu by opcode), the ALU materialisation cost for
  /// Folded. Load/store kinds charge their model costs at run time
  /// because the D-cache must be probed per access anyway. 0 when no
  /// timing model.
  uint32_t ExecCost = 0;
  uint32_t FoldedValue = 0;  ///< Folded only.
};

/// The compiled execution plan for one fragment.
struct FragmentPlan {
  bool Built = false;
  /// Deopt: execute this fragment through the legacy switch, one op at a
  /// time. Set for fragments whose guest hull overlaps an observed
  /// code-write span (exact per-instruction SMC observation, and no
  /// rebuild churn for write-hot code).
  bool Legacy = false;
  uint64_t Gen = 0;        ///< Fragment::PlanGen this plan was built from.
  uint64_t FlushStamp = 0; ///< FragmentCache::flushCount() at build time.
  /// Per Fragment::Code index: the slot index when the op is fused, -1
  /// for step ops. Control can enter a fragment at any index (branch
  /// stubs, off-trace exits), so the mapping covers every op.
  std::vector<int32_t> SlotOf;
  std::vector<PlanSlot> Slots;
  /// Per slot: one-past-the-end slot index of the fused run containing
  /// it. Entering mid-run simply executes [slot, RunEnd[slot]).
  std::vector<uint32_t> RunEnd;
  /// Per slot: like RunEnd but excluding the run's trailing CondBr exit
  /// slot (equal to RunEnd for runs without one). Used while the trace
  /// recorder is active, which must see every CTI through the step path.
  std::vector<uint32_t> RunEndNoExit;
};

/// Build-side counters (docs/ExecutionEngine.md). Deliberately not part
/// of SdtStats: engine choice must not perturb the stats block covered by
/// the plan-vs-switch bit-identity invariant.
struct PlanStats {
  uint64_t PlansBuilt = 0;    ///< First-time plan builds.
  uint64_t PlansRebuilt = 0;  ///< Rebuilds after a stale stamp.
  uint64_t LegacyFragments = 0; ///< Builds that deoptimized (SMC hull).
  uint64_t FusedRuns = 0;     ///< Superop runs across all builds.
  uint64_t FusedOps = 0;      ///< Ops inside fused runs.
  uint64_t StepOps = 0;       ///< Ops left to the legacy switch.
};

/// Lazily-built, generation-checked plans for every fragment in one
/// engine's cache, indexed by fragment index (tombstones keep empty
/// entries; a flush restarts indices and the FlushStamp check rebuilds).
class PlanStore {
public:
  /// Returns the current plan for \p Frag, rebuilding it when its
  /// generation or flush stamp went stale. \p DirtiedGuestSpans is the
  /// engine's accumulated code-write record (deopt predicate); \p T is
  /// the run's timing model (null = no timing: costs stay zero and the
  /// executor skips all charging).
  const FragmentPlan &
  planFor(const core::FragmentCache &Cache, uint32_t Frag,
          const std::vector<std::pair<uint32_t, uint32_t>> &DirtiedGuestSpans,
          const arch::TimingModel *T);

  /// Inline fast path for the executor's per-iteration revalidation:
  /// returns the cached plan when its stamps match the fragment's current
  /// (\p Gen, \p FlushCount), null when planFor must run. Keeps the
  /// common dispatch loop free of an out-of-line call per fragment entry.
  const FragmentPlan *cachedPlan(uint32_t Frag, uint64_t Gen,
                                 uint64_t FlushCount) const {
    if (Frag >= Plans.size())
      return nullptr;
    const FragmentPlan &P = Plans[Frag];
    return (P.Built && P.Gen == Gen && P.FlushStamp == FlushCount) ? &P
                                                                   : nullptr;
  }

  const PlanStats &stats() const { return Stats; }

private:
  std::vector<FragmentPlan> Plans; ///< Indexed by fragment index.
  PlanStats Stats;
};

} // namespace exec
} // namespace sdt

#endif // STRATAIB_EXEC_EXECUTIONPLAN_H
