//===- exec/PlanBuilder.cpp - Fragment -> execution plan compiler -*- C++ -*-===//
//
// Part of StrataIB. See ExecutionPlan.h for the plan format and
// docs/ExecutionEngine.md for the fusion rules and coherence contract.
//
//===----------------------------------------------------------------------===//

#include "exec/ExecutionPlan.h"

#include "arch/Timing.h"
#include "core/FragmentCache.h"

#include <bit>
#include <cassert>

using namespace sdt;
using namespace sdt::core;
using namespace sdt::exec;

namespace {

bool isLoadOp(isa::Opcode Op) {
  switch (Op) {
  case isa::Opcode::Lw:
  case isa::Opcode::Lh:
  case isa::Opcode::Lhu:
  case isa::Opcode::Lb:
  case isa::Opcode::Lbu:
    return true;
  default:
    return false;
  }
}

bool isStoreOp(isa::Opcode Op) {
  switch (Op) {
  case isa::Opcode::Sw:
  case isa::Opcode::Sh:
  case isa::Opcode::Sb:
    return true;
  default:
    return false;
  }
}

/// Mirror of TimingModel::chargeExecute's opcode -> cost mapping, hoisted
/// to plan-build time.
uint32_t execCostFor(isa::Opcode Op, const arch::MachineModel &M) {
  switch (Op) {
  case isa::Opcode::Mul:
    return M.MulCost;
  case isa::Opcode::Div:
  case isa::Opcode::Rem:
    return M.DivCost;
  default:
    return M.AluCost;
  }
}

/// An op is fusable when the legacy switch would run exactly this
/// sequence for it: fetch, retire one guest instruction, execute a
/// non-CTI, advance to Index+1 — with no recorder, plugin, or stat side
/// channel. Elided-jump glue retires extra guest instructions and feeds
/// the trace recorder, so ops carrying it stay on the step path.
bool isFusable(const HostInstr &HI) {
  return HI.Kind == HostOpKind::Guest && HI.ElidedJumps == 0 &&
         HI.CountsAsGuest;
}

/// A plain conditional branch can terminate a fused run as an explicit
/// exit op: its whole step-path behaviour (condition, branch + predictor
/// charge, CondBranches count, stub-relative resume) is reproducible in
/// the fused loop — except trace recording, which the executor handles by
/// truncating runs to RunEndNoExit while recording. TraceBranch has
/// different resume logic and stays a step op.
bool isFusableExit(const HostInstr &HI) {
  return HI.Kind == HostOpKind::CondBranch && HI.ElidedJumps == 0 &&
         HI.CountsAsGuest;
}

void buildPlan(FragmentPlan &P, const FragmentCache &Cache, uint32_t Frag,
               const std::vector<std::pair<uint32_t, uint32_t>> &Dirtied,
               const arch::TimingModel *T, PlanStats &Stats) {
  const Fragment &F = Cache.fragment(Frag);
  P.Built = true;
  P.Legacy = false;
  P.Gen = F.PlanGen;
  P.FlushStamp = Cache.flushCount();
  P.SlotOf.clear();
  P.Slots.clear();
  P.RunEnd.clear();
  P.RunEndNoExit.clear();

  // Deopt predicate: a fragment translated over previously-dirtied code
  // words is SMC-churned. Execute it per-instruction so every store gets
  // exact in-order observation, and so the write/invalidate/retranslate
  // cycle does not also pay a re-plan each round.
  for (const auto &[Begin, End] : Dirtied) {
    if (F.overlapsGuest(Begin, End)) {
      P.Legacy = true;
      ++Stats.LegacyFragments;
      return;
    }
  }

  // I-cache line geometry for precomputed fetch line tags. Without a
  // timing model the tags are never consulted.
  uint32_t LineShift = 0;
  if (T) {
    uint32_t LineBytes = T->model().ICache.LineBytes;
    assert(LineBytes != 0 && std::has_single_bit(LineBytes) &&
           "I-cache line size must be a power of two");
    LineShift = static_cast<uint32_t>(std::countr_zero(LineBytes));
  }

  P.SlotOf.assign(F.Code.size(), -1);
  for (uint32_t I = 0, E = static_cast<uint32_t>(F.Code.size()); I != E;) {
    const HostInstr &HI = F.Code[I];
    if (!isFusable(HI) && !isFusableExit(HI)) {
      ++Stats.StepOps;
      ++I;
      continue;
    }
    // A maximal straight-line run of fusable ops — optionally terminated
    // by a CondBr exit op — becomes one superop run.
    uint32_t RunStart = static_cast<uint32_t>(P.Slots.size());
    while (I != E && isFusable(F.Code[I])) {
      const HostInstr &Op = F.Code[I];
      PlanSlot S;
      S.GuestI = Op.GuestI;
      S.GuestPc = Op.GuestPc;
      S.HostAddr = Op.HostAddr;
      S.LineTag = Op.HostAddr >> LineShift;
      S.CodeIndex = I;
      if (Op.Folded) {
        S.K = PlanSlot::Kind::Folded;
        S.FoldedValue = Op.FoldedValue;
        S.ExecCost = T ? T->model().AluCost : 0;
      } else if (Op.GuestI.Op == isa::Opcode::Lw) {
        S.K = PlanSlot::Kind::Lw;
      } else if (isLoadOp(Op.GuestI.Op)) {
        S.K = PlanSlot::Kind::Load;
      } else if (Op.GuestI.Op == isa::Opcode::Sw) {
        S.K = PlanSlot::Kind::Sw;
      } else if (isStoreOp(Op.GuestI.Op)) {
        S.K = PlanSlot::Kind::Store;
      } else {
        // Pure ALU (the only remaining non-CTI form): pre-resolve the
        // hottest opcodes to dedicated kernels.
        if (Op.GuestI.Op == isa::Opcode::Addi)
          S.K = PlanSlot::Kind::Addi;
        else if (Op.GuestI.Op == isa::Opcode::Add)
          S.K = PlanSlot::Kind::Add;
        else
          S.K = PlanSlot::Kind::Alu;
        S.ExecCost = T ? execCostFor(Op.GuestI.Op, T->model()) : 0;
      }
      P.SlotOf[I] = static_cast<int32_t>(P.Slots.size());
      P.Slots.push_back(S);
      ++I;
    }
    uint32_t BodyEnd = static_cast<uint32_t>(P.Slots.size());
    if (I != E && isFusableExit(F.Code[I])) {
      const HostInstr &Op = F.Code[I];
      PlanSlot S;
      S.K = PlanSlot::Kind::CondBr;
      S.GuestI = Op.GuestI;
      S.GuestPc = Op.GuestPc;
      S.HostAddr = Op.HostAddr;
      S.LineTag = Op.HostAddr >> LineShift;
      S.CodeIndex = I;
      P.SlotOf[I] = static_cast<int32_t>(P.Slots.size());
      P.Slots.push_back(S);
      ++I;
    }
    uint32_t RunEnd = static_cast<uint32_t>(P.Slots.size());
    P.RunEnd.resize(RunEnd, RunEnd);
    P.RunEndNoExit.resize(RunEnd, BodyEnd);
    ++Stats.FusedRuns;
    Stats.FusedOps += RunEnd - RunStart;
  }
}

} // namespace

const FragmentPlan &PlanStore::planFor(
    const FragmentCache &Cache, uint32_t Frag,
    const std::vector<std::pair<uint32_t, uint32_t>> &DirtiedGuestSpans,
    const arch::TimingModel *T) {
  assert(Frag < Cache.fragmentCount() &&
         "plans must never be built through a stale fragment index");
  if (Frag >= Plans.size())
    Plans.resize(Cache.fragmentCount());
  FragmentPlan &P = Plans[Frag];
  const Fragment &F = Cache.fragment(Frag);
  if (P.Built && P.Gen == F.PlanGen && P.FlushStamp == Cache.flushCount())
    return P;
  if (P.Built)
    ++Stats.PlansRebuilt;
  else
    ++Stats.PlansBuilt;
  buildPlan(P, Cache, Frag, DirtiedGuestSpans, T, Stats);
  return P;
}
