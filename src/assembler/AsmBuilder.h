//===- assembler/AsmBuilder.h - Assembly text builder -----------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fluent builder for generating GIR assembly text from C++ —
/// the workload generators use it so every generated program round-trips
/// through the real assembler (exercising the same pipeline a user would).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ASSEMBLER_ASMBUILDER_H
#define STRATAIB_ASSEMBLER_ASMBUILDER_H

#include "assembler/Assembler.h"
#include "isa/Program.h"
#include "support/Error.h"

#include <cstdint>
#include <string>

namespace sdt {
namespace assembler {

/// Accumulates assembly source text line by line.
class AsmBuilder {
public:
  /// Appends ".org" / ".entry" headers.
  AsmBuilder &org(uint32_t Address);
  AsmBuilder &entry(const std::string &Symbol);

  /// Appends "Name:".
  AsmBuilder &label(const std::string &Name);

  /// Appends one raw line (an instruction or directive), indented.
  AsmBuilder &emit(const std::string &Line);

  /// Appends one printf-formatted line.
  AsmBuilder &emitf(const char *Fmt, ...)
      __attribute__((format(printf, 2, 3)));

  /// Appends a "# ..." comment line.
  AsmBuilder &comment(const std::string &Text);

  /// Appends a blank line (readability of dumped sources).
  AsmBuilder &blank();

  /// Appends pre-formatted assembly text verbatim (e.g. the output of
  /// another code generator).
  AsmBuilder &raw(const std::string &Text);

  /// The source accumulated so far.
  const std::string &source() const { return Source; }

  /// Assembles the accumulated source.
  Expected<isa::Program> build() const { return assemble(Source); }

private:
  std::string Source;
};

} // namespace assembler
} // namespace sdt

#endif // STRATAIB_ASSEMBLER_ASMBUILDER_H
