//===- assembler/AsmParser.h - Assembly parser ------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses tokenized lines into AsmStatements, expanding pseudo-instructions
/// (`li`, `la`, `move`, `nop`, `b`, `call`, `bgt`, `ble`, `bgtu`, `bleu`,
/// `push`, `pop`) into fixed-size machine sequences.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ASSEMBLER_ASMPARSER_H
#define STRATAIB_ASSEMBLER_ASMPARSER_H

#include "assembler/AsmLexer.h"
#include "assembler/AsmStatement.h"
#include "support/Error.h"

#include <string_view>

namespace sdt {
namespace assembler {

/// Parses \p Source into statements + labels + directives.
Expected<AsmFile> parseAssembly(std::string_view Source);

} // namespace assembler
} // namespace sdt

#endif // STRATAIB_ASSEMBLER_ASMPARSER_H
