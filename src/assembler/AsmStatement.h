//===- assembler/AsmStatement.h - Parsed assembly statements ----*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statement representation the parser produces and the layout/encode
/// passes consume. Pseudo-instructions are already expanded by the parser
/// into fixed-size sequences, so every statement has a size known before
/// symbol resolution (which keeps the assembler strictly two-pass).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ASSEMBLER_ASMSTATEMENT_H
#define STRATAIB_ASSEMBLER_ASMSTATEMENT_H

#include "isa/Opcode.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sdt {
namespace assembler {

/// A symbol reference or literal value, resolved during pass 2.
struct AsmExpr {
  enum class Kind { Literal, Symbol } K = Kind::Literal;
  int64_t Literal = 0;     ///< Valid when K == Literal.
  std::string Symbol;      ///< Valid when K == Symbol.
  int64_t Addend = 0;      ///< Added to the symbol's address.

  static AsmExpr literal(int64_t V) {
    AsmExpr E;
    E.K = Kind::Literal;
    E.Literal = V;
    return E;
  }
  static AsmExpr symbol(std::string Name, int64_t Addend = 0) {
    AsmExpr E;
    E.K = Kind::Symbol;
    E.Symbol = std::move(Name);
    E.Addend = Addend;
    return E;
  }
};

/// Which half of a resolved expression an instruction operand takes.
/// Drives the `li`/`la` expansion (`lui` takes Hi16, `ori` takes Lo16).
enum class ExprPart : uint8_t { Full, Hi16, Lo16 };

/// One statement with a fixed encoded size.
struct AsmStatement {
  enum class Kind {
    Instr, ///< A single machine instruction (4 bytes).
    Word,  ///< .word: one 32-bit value.
    Byte,  ///< .byte: one byte value.
    Space, ///< .space: SizeBytes zero bytes.
    Align, ///< .align: pad to AlignTo boundary (size depends on address).
  } K = Kind::Instr;

  unsigned Line = 0; ///< 1-based source line for diagnostics.

  // Kind::Instr fields. Register fields are resolved by the parser;
  // the immediate/target may reference a symbol.
  isa::Opcode Op = isa::Opcode::Halt;
  uint8_t Rd = 0;
  uint8_t Rs1 = 0;
  uint8_t Rs2 = 0;
  AsmExpr Imm;               ///< Immediate / branch target / jump target.
  ExprPart Part = ExprPart::Full;

  // Kind::Word / Kind::Byte.
  AsmExpr Data;

  // Kind::Space.
  uint32_t SizeBytes = 0;

  // Kind::Align.
  uint32_t AlignTo = 0;
};

/// Result of parsing a whole source file.
struct AsmFile {
  uint32_t OrgAddress;                  ///< .org (default load address).
  bool HasOrg = false;
  std::string EntrySymbol;              ///< .entry (empty: main/origin).
  /// Label definitions: symbol name -> statement index it precedes (or
  /// end-of-file index).
  std::vector<std::pair<std::string, size_t>> Labels;
  std::vector<AsmStatement> Statements;
};

} // namespace assembler
} // namespace sdt

#endif // STRATAIB_ASSEMBLER_ASMSTATEMENT_H
