//===- assembler/Assembler.h - GIR assembler --------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public assembler entry point: assembles GIR assembly text into a
/// loadable Program. Two passes: layout (addresses + labels), then
/// resolve-and-encode with range diagnostics.
///
/// Syntax overview:
/// \code
///   .org 0x1000            # load address (optional)
///   .entry main            # entry symbol (default: 'main' if defined)
///   main:
///     li   t0, 100         # pseudo: lui+ori
///     la   t1, table       # pseudo: lui+ori
///     lw   t2, 0(t1)
///     jalr t2              # indirect call (rd defaults to ra)
///     beqz t0, done
///     ret
///   done:
///     li   v0, 0           # exit code
///     syscall
///   table: .word fn_a, fn_b
///   buf:   .space 64
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ASSEMBLER_ASSEMBLER_H
#define STRATAIB_ASSEMBLER_ASSEMBLER_H

#include "isa/Program.h"
#include "support/Error.h"

#include <string_view>

namespace sdt {
namespace assembler {

/// Assembles \p Source into a Program. On failure, the Error message names
/// the offending source line.
Expected<isa::Program> assemble(std::string_view Source);

} // namespace assembler
} // namespace sdt

#endif // STRATAIB_ASSEMBLER_ASSEMBLER_H
