//===- assembler/Assembler.cpp ---------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Assembler.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "assembler/Assembler.h"

#include "assembler/AsmParser.h"
#include "isa/Encoding.h"
#include "support/StringUtils.h"

#include <cassert>
#include <map>

using namespace sdt;
using namespace sdt::assembler;
using namespace sdt::isa;

namespace {

/// Layout + encode over a parsed AsmFile.
class Emitter {
public:
  explicit Emitter(AsmFile File) : File(std::move(File)) {}

  Expected<Program> run();

private:
  Error layout();
  Expected<int64_t> resolve(const AsmExpr &E, unsigned Line) const;
  Expected<int32_t> resolvePart(const AsmExpr &E, ExprPart Part,
                                unsigned Line) const;
  Error encodeStatement(const AsmStatement &S, uint32_t Addr,
                        std::vector<uint8_t> &Image) const;

  AsmFile File;
  std::vector<uint32_t> StatementAddr; ///< Address of each statement.
  uint32_t EndAddress = 0;
  std::map<std::string, uint32_t> SymbolTable;
};

} // namespace

Error Emitter::layout() {
  uint32_t Addr = File.OrgAddress;
  StatementAddr.reserve(File.Statements.size());
  for (const AsmStatement &S : File.Statements) {
    StatementAddr.push_back(Addr);
    switch (S.K) {
    case AsmStatement::Kind::Instr:
      if (Addr % InstructionSize != 0)
        return Error::atLine(S.Line, "instruction at unaligned address; "
                                     "add .align 4");
      Addr += InstructionSize;
      break;
    case AsmStatement::Kind::Word:
      if (Addr % 4 != 0)
        return Error::atLine(S.Line,
                             ".word at unaligned address; add .align 4");
      Addr += 4;
      break;
    case AsmStatement::Kind::Byte:
      Addr += 1;
      break;
    case AsmStatement::Kind::Space:
      Addr += S.SizeBytes;
      break;
    case AsmStatement::Kind::Align: {
      uint32_t Mask = S.AlignTo - 1;
      Addr = (Addr + Mask) & ~Mask;
      break;
    }
    }
  }
  EndAddress = Addr;

  for (const auto &[Name, Index] : File.Labels) {
    uint32_t LabelAddr =
        Index < StatementAddr.size() ? StatementAddr[Index] : EndAddress;
    auto [It, Inserted] = SymbolTable.emplace(Name, LabelAddr);
    if (!Inserted)
      return Error::failure("duplicate label '" + Name + "'");
    (void)It;
  }
  return Error();
}

Expected<int64_t> Emitter::resolve(const AsmExpr &E, unsigned Line) const {
  if (E.K == AsmExpr::Kind::Literal)
    return E.Literal;
  auto It = SymbolTable.find(E.Symbol);
  if (It == SymbolTable.end())
    return Error::atLine(Line, "undefined symbol '" + E.Symbol + "'");
  return static_cast<int64_t>(It->second) + E.Addend;
}

Expected<int32_t> Emitter::resolvePart(const AsmExpr &E, ExprPart Part,
                                       unsigned Line) const {
  Expected<int64_t> V = resolve(E, Line);
  if (!V)
    return V.takeError();
  uint32_t U = static_cast<uint32_t>(*V);
  switch (Part) {
  case ExprPart::Full:
    return static_cast<int32_t>(*V);
  case ExprPart::Hi16:
    return static_cast<int32_t>((U >> 16) & 0xFFFF);
  case ExprPart::Lo16:
    return static_cast<int32_t>(U & 0xFFFF);
  }
  assert(false && "unknown expr part");
  return 0;
}

Error Emitter::encodeStatement(const AsmStatement &S, uint32_t Addr,
                               std::vector<uint8_t> &Image) const {
  uint32_t Offset = Addr - File.OrgAddress;
  switch (S.K) {
  case AsmStatement::Kind::Instr: {
    Expected<int32_t> Imm = resolvePart(S.Imm, S.Part, S.Line);
    if (!Imm)
      return Imm.takeError();

    Instruction I;
    I.Op = S.Op;
    I.Rd = S.Rd;
    I.Rs1 = S.Rs1;
    I.Rs2 = S.Rs2;

    const OpcodeInfo &Info = opcodeInfo(S.Op);
    switch (Info.Form) {
    case Format::I: {
      bool Logical = S.Op == Opcode::Andi || S.Op == Opcode::Ori ||
                     S.Op == Opcode::Xori;
      if (Logical ? (*Imm < 0 || *Imm > 0xFFFF)
                  : (*Imm < -32768 || *Imm > 32767))
        return Error::atLine(S.Line,
                             formatString("immediate %d out of range", *Imm));
      I.Imm = *Imm;
      break;
    }
    case Format::Lui:
      if (*Imm < 0 || *Imm > 0xFFFF)
        return Error::atLine(S.Line, "lui immediate out of range");
      I.Imm = *Imm;
      break;
    case Format::Mem:
      if (*Imm < -32768 || *Imm > 32767)
        return Error::atLine(
            S.Line, formatString("memory offset %d out of range", *Imm));
      I.Imm = *Imm;
      break;
    case Format::B: {
      int64_t Disp = static_cast<int64_t>(static_cast<uint32_t>(*Imm)) -
                     static_cast<int64_t>(Addr);
      if (Disp % 4 != 0)
        return Error::atLine(S.Line, "unaligned branch target");
      if (Disp / 4 < -32768 || Disp / 4 > 32767)
        return Error::atLine(S.Line, "branch target out of range");
      I.Imm = static_cast<int32_t>(Disp);
      break;
    }
    case Format::Jump: {
      uint32_t Target = static_cast<uint32_t>(*Imm);
      if (Target % 4 != 0)
        return Error::atLine(S.Line, "unaligned jump target");
      if ((Target >> 2) >= (1u << 26))
        return Error::atLine(S.Line, "jump target out of range");
      I.Imm = static_cast<int32_t>(Target);
      break;
    }
    case Format::R:
    case Format::Jr:
    case Format::Jalr:
    case Format::None:
      break;
    }
    writeWordLE(&Image[Offset], encode(I));
    return Error();
  }
  case AsmStatement::Kind::Word: {
    Expected<int64_t> V = resolve(S.Data, S.Line);
    if (!V)
      return V.takeError();
    if (*V < -2147483648LL || *V > 4294967295LL)
      return Error::atLine(S.Line, ".word value out of range");
    writeWordLE(&Image[Offset], static_cast<uint32_t>(*V));
    return Error();
  }
  case AsmStatement::Kind::Byte: {
    Expected<int64_t> V = resolve(S.Data, S.Line);
    if (!V)
      return V.takeError();
    if (*V < -128 || *V > 255)
      return Error::atLine(S.Line, ".byte value out of range");
    Image[Offset] = static_cast<uint8_t>(*V);
    return Error();
  }
  case AsmStatement::Kind::Space:
  case AsmStatement::Kind::Align:
    return Error(); // Already zero-filled.
  }
  assert(false && "unknown statement kind");
  return Error();
}

Expected<Program> Emitter::run() {
  if (Error E = layout())
    return E;

  std::vector<uint8_t> Image(EndAddress - File.OrgAddress, 0);
  for (size_t I = 0, E = File.Statements.size(); I != E; ++I)
    if (Error Err = encodeStatement(File.Statements[I], StatementAddr[I],
                                    Image))
      return Err;

  Program P(File.OrgAddress, std::move(Image));
  for (const auto &[Name, Addr] : SymbolTable)
    P.addSymbol(Name, Addr);

  if (!File.EntrySymbol.empty()) {
    Expected<uint32_t> EntryAddr = P.symbol(File.EntrySymbol);
    if (!EntryAddr)
      return Error::failure(".entry: " + EntryAddr.error().message());
    P.setEntry(*EntryAddr);
  } else if (Expected<uint32_t> Main = P.symbol("main")) {
    P.setEntry(*Main);
  } else {
    P.setEntry(File.OrgAddress);
  }
  return P;
}

Expected<Program> sdt::assembler::assemble(std::string_view Source) {
  Expected<AsmFile> File = parseAssembly(Source);
  if (!File)
    return File.takeError();
  Emitter E(std::move(*File));
  return E.run();
}
