//===- assembler/AsmParser.cpp ---------------------------------*- C++ -*-===//
//
// Part of StrataIB. See AsmParser.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "assembler/AsmParser.h"

#include "isa/Program.h"
#include "isa/Registers.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace sdt;
using namespace sdt::assembler;
using namespace sdt::isa;

namespace {

/// Stateful parser over tokenized lines. Produces the AsmFile.
class Parser {
public:
  Expected<AsmFile> run(std::string_view Source);

private:
  Error parseLine(const AsmLine &Line);
  Error parseDirective(const AsmLine &Line);
  Error parseInstruction(const AsmLine &Line);

  Expected<unsigned> parseReg(const std::string &Tok, unsigned Line);
  Expected<AsmExpr> parseExpr(const std::string &Tok, unsigned Line);
  Expected<std::pair<AsmExpr, unsigned>> parseMemRef(const std::string &Tok,
                                                     unsigned Line);

  Error expectOperands(const AsmLine &Line, size_t Count);

  void emitInstr(unsigned Line, Opcode Op, unsigned Rd, unsigned Rs1,
                 unsigned Rs2, AsmExpr Imm = AsmExpr::literal(0),
                 ExprPart Part = ExprPart::Full);

  AsmFile File;
  bool SawStatement = false;
};

} // namespace

Expected<unsigned> Parser::parseReg(const std::string &Tok, unsigned Line) {
  std::optional<unsigned> R = parseRegisterName(trim(Tok));
  if (!R)
    return Error::atLine(Line, "expected register, got '" + Tok + "'");
  return *R;
}

Expected<AsmExpr> Parser::parseExpr(const std::string &Tok, unsigned Line) {
  std::string_view S = trim(Tok);
  if (S.empty())
    return Error::atLine(Line, "empty expression");

  if (std::optional<int64_t> V = parseInteger(S))
    return AsmExpr::literal(*V);

  // symbol, symbol+imm, or symbol-imm. Scan past the first character so a
  // leading '-' stays with the (already rejected) integer case.
  size_t SplitPos = std::string_view::npos;
  for (size_t I = 1, E = S.size(); I != E; ++I)
    if (S[I] == '+' || S[I] == '-') {
      SplitPos = I;
      break;
    }

  std::string_view SymPart = S;
  int64_t Addend = 0;
  if (SplitPos != std::string_view::npos) {
    SymPart = trim(S.substr(0, SplitPos));
    std::string_view AddPart = S.substr(SplitPos); // Includes the sign.
    std::optional<int64_t> V = parseInteger(AddPart);
    if (!V)
      return Error::atLine(Line,
                           "malformed addend in '" + std::string(S) + "'");
    Addend = *V;
  }
  if (SymPart.empty())
    return Error::atLine(Line, "malformed expression '" + std::string(S) +
                                   "'");
  return AsmExpr::symbol(std::string(SymPart), Addend);
}

Expected<std::pair<AsmExpr, unsigned>>
Parser::parseMemRef(const std::string &Tok, unsigned Line) {
  std::string_view S = trim(Tok);
  size_t Open = S.rfind('(');
  if (Open == std::string_view::npos || S.empty() || S.back() != ')')
    return Error::atLine(Line, "expected offset(base), got '" + Tok + "'");
  std::string_view OffsetText = trim(S.substr(0, Open));
  std::string_view BaseText = S.substr(Open + 1, S.size() - Open - 2);

  std::optional<unsigned> Base = parseRegisterName(trim(BaseText));
  if (!Base)
    return Error::atLine(Line, "expected base register in '" + Tok + "'");

  AsmExpr Offset = AsmExpr::literal(0);
  if (!OffsetText.empty()) {
    Expected<AsmExpr> E = parseExpr(std::string(OffsetText), Line);
    if (!E)
      return E.takeError();
    Offset = *E;
  }
  return std::make_pair(Offset, *Base);
}

Error Parser::expectOperands(const AsmLine &Line, size_t Count) {
  if (Line.Operands.size() == Count)
    return Error();
  return Error::atLine(Line.Number,
                       formatString("'%s' expects %zu operand(s), got %zu",
                                    Line.Mnemonic.c_str(), Count,
                                    Line.Operands.size()));
}

void Parser::emitInstr(unsigned Line, Opcode Op, unsigned Rd, unsigned Rs1,
                       unsigned Rs2, AsmExpr Imm, ExprPart Part) {
  AsmStatement S;
  S.K = AsmStatement::Kind::Instr;
  S.Line = Line;
  S.Op = Op;
  S.Rd = static_cast<uint8_t>(Rd);
  S.Rs1 = static_cast<uint8_t>(Rs1);
  S.Rs2 = static_cast<uint8_t>(Rs2);
  S.Imm = std::move(Imm);
  S.Part = Part;
  File.Statements.push_back(std::move(S));
  SawStatement = true;
}

Error Parser::parseDirective(const AsmLine &Line) {
  const std::string &D = Line.Mnemonic;
  unsigned N = Line.Number;

  if (D == ".org") {
    if (Error E = expectOperands(Line, 1))
      return E;
    if (SawStatement)
      return Error::atLine(N, ".org must precede all statements");
    std::optional<int64_t> V = parseInteger(Line.Operands[0]);
    if (!V || *V < 0 || *V > 0xFFFFFFF0LL || *V % 4 != 0)
      return Error::atLine(N, "bad .org address");
    File.OrgAddress = static_cast<uint32_t>(*V);
    File.HasOrg = true;
    return Error();
  }

  if (D == ".entry") {
    if (Error E = expectOperands(Line, 1))
      return E;
    File.EntrySymbol = std::string(trim(Line.Operands[0]));
    return Error();
  }

  if (D == ".word" || D == ".byte") {
    if (Line.Operands.empty())
      return Error::atLine(N, D + " expects at least one value");
    for (const std::string &Op : Line.Operands) {
      Expected<AsmExpr> E = parseExpr(Op, N);
      if (!E)
        return E.takeError();
      AsmStatement S;
      S.K = D == ".word" ? AsmStatement::Kind::Word
                         : AsmStatement::Kind::Byte;
      S.Line = N;
      S.Data = *E;
      File.Statements.push_back(std::move(S));
    }
    SawStatement = true;
    return Error();
  }

  if (D == ".space") {
    if (Error E = expectOperands(Line, 1))
      return E;
    std::optional<int64_t> V = parseInteger(Line.Operands[0]);
    if (!V || *V < 0 || *V > (64 << 20))
      return Error::atLine(N, "bad .space size");
    AsmStatement S;
    S.K = AsmStatement::Kind::Space;
    S.Line = N;
    S.SizeBytes = static_cast<uint32_t>(*V);
    File.Statements.push_back(std::move(S));
    SawStatement = true;
    return Error();
  }

  if (D == ".align") {
    if (Error E = expectOperands(Line, 1))
      return E;
    std::optional<int64_t> V = parseInteger(Line.Operands[0]);
    if (!V || *V <= 0 || (*V & (*V - 1)) != 0 || *V > 4096)
      return Error::atLine(N, ".align expects a power of two");
    AsmStatement S;
    S.K = AsmStatement::Kind::Align;
    S.Line = N;
    S.AlignTo = static_cast<uint32_t>(*V);
    File.Statements.push_back(std::move(S));
    SawStatement = true;
    return Error();
  }

  if (D == ".asciz" || D == ".ascii") {
    if (Error E = expectOperands(Line, 1))
      return E;
    Expected<std::string> Str = decodeStringLiteral(Line.Operands[0], N);
    if (!Str)
      return Str.takeError();
    std::string Bytes = *Str;
    if (D == ".asciz")
      Bytes += '\0';
    for (char C : Bytes) {
      AsmStatement S;
      S.K = AsmStatement::Kind::Byte;
      S.Line = N;
      S.Data = AsmExpr::literal(static_cast<unsigned char>(C));
      File.Statements.push_back(std::move(S));
    }
    SawStatement = true;
    return Error();
  }

  // Accepted no-op directives for source familiarity.
  if (D == ".text" || D == ".data" || D == ".globl" || D == ".global")
    return Error();

  return Error::atLine(N, "unknown directive '" + D + "'");
}

Error Parser::parseInstruction(const AsmLine &Line) {
  const std::string &M = Line.Mnemonic;
  unsigned N = Line.Number;
  const std::vector<std::string> &Ops = Line.Operands;

  // --- Pseudo-instructions (fixed-size expansions) -----------------------
  if (M == "nop") {
    if (Error E = expectOperands(Line, 0))
      return E;
    emitInstr(N, Opcode::Add, RegZero, RegZero, RegZero);
    return Error();
  }
  if (M == "move" || M == "mv") {
    if (Error E = expectOperands(Line, 2))
      return E;
    Expected<unsigned> Rd = parseReg(Ops[0], N), Rs = parseReg(Ops[1], N);
    if (!Rd)
      return Rd.takeError();
    if (!Rs)
      return Rs.takeError();
    emitInstr(N, Opcode::Add, *Rd, *Rs, RegZero);
    return Error();
  }
  if (M == "neg") {
    if (Error E = expectOperands(Line, 2))
      return E;
    Expected<unsigned> Rd = parseReg(Ops[0], N), Rs = parseReg(Ops[1], N);
    if (!Rd)
      return Rd.takeError();
    if (!Rs)
      return Rs.takeError();
    emitInstr(N, Opcode::Sub, *Rd, RegZero, *Rs);
    return Error();
  }
  if (M == "li" || M == "la") {
    if (Error E = expectOperands(Line, 2))
      return E;
    Expected<unsigned> Rd = parseReg(Ops[0], N);
    if (!Rd)
      return Rd.takeError();
    Expected<AsmExpr> V = parseExpr(Ops[1], N);
    if (!V)
      return V.takeError();
    // Always two instructions so statement sizes are fixed in pass 1.
    emitInstr(N, Opcode::Lui, *Rd, 0, 0, *V, ExprPart::Hi16);
    emitInstr(N, Opcode::Ori, *Rd, *Rd, 0, *V, ExprPart::Lo16);
    return Error();
  }
  if (M == "b") {
    if (Error E = expectOperands(Line, 1))
      return E;
    Expected<AsmExpr> T = parseExpr(Ops[0], N);
    if (!T)
      return T.takeError();
    emitInstr(N, Opcode::Beq, 0, RegZero, RegZero, *T);
    return Error();
  }
  if (M == "call") {
    if (Error E = expectOperands(Line, 1))
      return E;
    Expected<AsmExpr> T = parseExpr(Ops[0], N);
    if (!T)
      return T.takeError();
    emitInstr(N, Opcode::Jal, 0, 0, 0, *T);
    return Error();
  }
  if (M == "beqz" || M == "bnez") {
    if (Error E = expectOperands(Line, 2))
      return E;
    Expected<unsigned> Rs = parseReg(Ops[0], N);
    if (!Rs)
      return Rs.takeError();
    Expected<AsmExpr> T = parseExpr(Ops[1], N);
    if (!T)
      return T.takeError();
    emitInstr(N, M == "beqz" ? Opcode::Beq : Opcode::Bne, 0, *Rs, RegZero,
              *T);
    return Error();
  }
  if (M == "bgt" || M == "ble" || M == "bgtu" || M == "bleu") {
    if (Error E = expectOperands(Line, 3))
      return E;
    Expected<unsigned> Rs = parseReg(Ops[0], N), Rt = parseReg(Ops[1], N);
    if (!Rs)
      return Rs.takeError();
    if (!Rt)
      return Rt.takeError();
    Expected<AsmExpr> T = parseExpr(Ops[2], N);
    if (!T)
      return T.takeError();
    Opcode Op = (M == "bgt")    ? Opcode::Blt
                : (M == "ble")  ? Opcode::Bge
                : (M == "bgtu") ? Opcode::Bltu
                                : Opcode::Bgeu;
    // Swapped operands: "rs > rt" == "rt < rs".
    emitInstr(N, Op, 0, *Rt, *Rs, *T);
    return Error();
  }
  if (M == "push") {
    if (Error E = expectOperands(Line, 1))
      return E;
    Expected<unsigned> Rs = parseReg(Ops[0], N);
    if (!Rs)
      return Rs.takeError();
    emitInstr(N, Opcode::Addi, RegSP, RegSP, 0, AsmExpr::literal(-4));
    emitInstr(N, Opcode::Sw, *Rs, RegSP, 0, AsmExpr::literal(0));
    return Error();
  }
  if (M == "pop") {
    if (Error E = expectOperands(Line, 1))
      return E;
    Expected<unsigned> Rd = parseReg(Ops[0], N);
    if (!Rd)
      return Rd.takeError();
    emitInstr(N, Opcode::Lw, *Rd, RegSP, 0, AsmExpr::literal(0));
    emitInstr(N, Opcode::Addi, RegSP, RegSP, 0, AsmExpr::literal(4));
    return Error();
  }

  // --- Real opcodes -------------------------------------------------------
  std::optional<Opcode> Op = parseMnemonic(M);
  if (!Op)
    return Error::atLine(N, "unknown mnemonic '" + M + "'");

  switch (opcodeInfo(*Op).Form) {
  case Format::R: {
    if (Error E = expectOperands(Line, 3))
      return E;
    Expected<unsigned> Rd = parseReg(Ops[0], N), Rs1 = parseReg(Ops[1], N),
                       Rs2 = parseReg(Ops[2], N);
    if (!Rd)
      return Rd.takeError();
    if (!Rs1)
      return Rs1.takeError();
    if (!Rs2)
      return Rs2.takeError();
    emitInstr(N, *Op, *Rd, *Rs1, *Rs2);
    return Error();
  }
  case Format::I: {
    if (Error E = expectOperands(Line, 3))
      return E;
    Expected<unsigned> Rd = parseReg(Ops[0], N), Rs1 = parseReg(Ops[1], N);
    if (!Rd)
      return Rd.takeError();
    if (!Rs1)
      return Rs1.takeError();
    Expected<AsmExpr> V = parseExpr(Ops[2], N);
    if (!V)
      return V.takeError();
    emitInstr(N, *Op, *Rd, *Rs1, 0, *V);
    return Error();
  }
  case Format::Lui: {
    if (Error E = expectOperands(Line, 2))
      return E;
    Expected<unsigned> Rd = parseReg(Ops[0], N);
    if (!Rd)
      return Rd.takeError();
    Expected<AsmExpr> V = parseExpr(Ops[1], N);
    if (!V)
      return V.takeError();
    emitInstr(N, *Op, *Rd, 0, 0, *V);
    return Error();
  }
  case Format::Mem: {
    if (Error E = expectOperands(Line, 2))
      return E;
    Expected<unsigned> Rd = parseReg(Ops[0], N);
    if (!Rd)
      return Rd.takeError();
    Expected<std::pair<AsmExpr, unsigned>> Ref = parseMemRef(Ops[1], N);
    if (!Ref)
      return Ref.takeError();
    emitInstr(N, *Op, *Rd, Ref->second, 0, Ref->first);
    return Error();
  }
  case Format::B: {
    if (Error E = expectOperands(Line, 3))
      return E;
    Expected<unsigned> Rs1 = parseReg(Ops[0], N), Rs2 = parseReg(Ops[1], N);
    if (!Rs1)
      return Rs1.takeError();
    if (!Rs2)
      return Rs2.takeError();
    Expected<AsmExpr> T = parseExpr(Ops[2], N);
    if (!T)
      return T.takeError();
    emitInstr(N, *Op, 0, *Rs1, *Rs2, *T);
    return Error();
  }
  case Format::Jump: {
    if (Error E = expectOperands(Line, 1))
      return E;
    Expected<AsmExpr> T = parseExpr(Ops[0], N);
    if (!T)
      return T.takeError();
    emitInstr(N, *Op, 0, 0, 0, *T);
    return Error();
  }
  case Format::Jr: {
    if (Error E = expectOperands(Line, 1))
      return E;
    Expected<unsigned> Rs1 = parseReg(Ops[0], N);
    if (!Rs1)
      return Rs1.takeError();
    emitInstr(N, *Op, 0, *Rs1, 0);
    return Error();
  }
  case Format::Jalr: {
    // "jalr rd, rs1" or the one-operand form "jalr rs1" (rd = ra).
    if (Ops.size() == 1) {
      Expected<unsigned> Rs1 = parseReg(Ops[0], N);
      if (!Rs1)
        return Rs1.takeError();
      emitInstr(N, *Op, RegRA, *Rs1, 0);
      return Error();
    }
    if (Error E = expectOperands(Line, 2))
      return E;
    Expected<unsigned> Rd = parseReg(Ops[0], N), Rs1 = parseReg(Ops[1], N);
    if (!Rd)
      return Rd.takeError();
    if (!Rs1)
      return Rs1.takeError();
    emitInstr(N, *Op, *Rd, *Rs1, 0);
    return Error();
  }
  case Format::None:
    if (Error E = expectOperands(Line, 0))
      return E;
    emitInstr(N, *Op, 0, 0, 0);
    return Error();
  }
  assert(false && "unknown format");
  return Error();
}

Error Parser::parseLine(const AsmLine &Line) {
  for (const std::string &Label : Line.Labels)
    File.Labels.emplace_back(Label, File.Statements.size());
  if (Line.Mnemonic.empty())
    return Error();
  if (Line.Mnemonic.front() == '.')
    return parseDirective(Line);
  return parseInstruction(Line);
}

Expected<AsmFile> Parser::run(std::string_view Source) {
  File.OrgAddress = DefaultLoadAddress;
  Expected<std::vector<AsmLine>> Lines = lexAssembly(Source);
  if (!Lines)
    return Lines.takeError();
  for (const AsmLine &Line : *Lines)
    if (Error E = parseLine(Line))
      return E;
  return std::move(File);
}

Expected<AsmFile> sdt::assembler::parseAssembly(std::string_view Source) {
  Parser P;
  return P.run(Source);
}
