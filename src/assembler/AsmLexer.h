//===- assembler/AsmLexer.h - Line-oriented assembly lexer ------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splits assembly source into logical lines and each line into a label,
/// a mnemonic/directive, and comma-separated operand fields. Comments
/// start with '#' or ';'. String literals in .asciz are respected (commas
/// and comment characters inside quotes do not split).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ASSEMBLER_ASMLEXER_H
#define STRATAIB_ASSEMBLER_ASMLEXER_H

#include "support/Error.h"

#include <string>
#include <string_view>
#include <vector>

namespace sdt {
namespace assembler {

/// One tokenized source line.
struct AsmLine {
  unsigned Number = 0;          ///< 1-based line number.
  std::vector<std::string> Labels; ///< Labels defined on this line.
  std::string Mnemonic;         ///< Lower-cased mnemonic or ".directive".
  std::vector<std::string> Operands; ///< Trimmed operand fields.

  bool empty() const { return Labels.empty() && Mnemonic.empty(); }
};

/// Tokenizes \p Source. Fails on malformed labels or unterminated strings.
Expected<std::vector<AsmLine>> lexAssembly(std::string_view Source);

/// Decodes a double-quoted string literal with C-style escapes
/// (\n, \t, \0, \\, \"). \p Token must include the quotes.
Expected<std::string> decodeStringLiteral(std::string_view Token,
                                          unsigned Line);

} // namespace assembler
} // namespace sdt

#endif // STRATAIB_ASSEMBLER_ASMLEXER_H
