//===- assembler/AsmBuilder.cpp --------------------------------*- C++ -*-===//
//
// Part of StrataIB. See AsmBuilder.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "assembler/AsmBuilder.h"

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace sdt;
using namespace sdt::assembler;

AsmBuilder &AsmBuilder::org(uint32_t Address) {
  Source += formatString(".org 0x%x\n", Address);
  return *this;
}

AsmBuilder &AsmBuilder::entry(const std::string &Symbol) {
  Source += ".entry " + Symbol + "\n";
  return *this;
}

AsmBuilder &AsmBuilder::label(const std::string &Name) {
  Source += Name + ":\n";
  return *this;
}

AsmBuilder &AsmBuilder::emit(const std::string &Line) {
  Source += "    " + Line + "\n";
  return *this;
}

AsmBuilder &AsmBuilder::emitf(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  char Buffer[512];
  std::vsnprintf(Buffer, sizeof(Buffer), Fmt, Args);
  va_end(Args);
  return emit(Buffer);
}

AsmBuilder &AsmBuilder::comment(const std::string &Text) {
  Source += "# " + Text + "\n";
  return *this;
}

AsmBuilder &AsmBuilder::blank() {
  Source += "\n";
  return *this;
}

AsmBuilder &AsmBuilder::raw(const std::string &Text) {
  Source += Text;
  if (!Text.empty() && Text.back() != '\n')
    Source += '\n';
  return *this;
}
