//===- assembler/AsmLexer.cpp ----------------------------------*- C++ -*-===//
//
// Part of StrataIB. See AsmLexer.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "assembler/AsmLexer.h"

#include "support/StringUtils.h"

#include <cctype>

using namespace sdt;
using namespace sdt::assembler;

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '.';
}

static bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '.' ||
         C == '$';
}

/// Strips a trailing comment, honouring double-quoted strings.
static std::string_view stripComment(std::string_view Line) {
  bool InString = false;
  for (size_t I = 0, E = Line.size(); I != E; ++I) {
    char C = Line[I];
    if (InString) {
      if (C == '\\' && I + 1 < E)
        ++I; // Skip the escaped character.
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '#' || C == ';')
      return Line.substr(0, I);
  }
  return Line;
}

/// Splits operand text on commas outside string literals.
static std::vector<std::string> splitOperands(std::string_view Text) {
  std::vector<std::string> Fields;
  std::string Current;
  bool InString = false;
  for (size_t I = 0, E = Text.size(); I != E; ++I) {
    char C = Text[I];
    if (InString) {
      Current += C;
      if (C == '\\' && I + 1 < E)
        Current += Text[++I];
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"') {
      InString = true;
      Current += C;
      continue;
    }
    if (C == ',') {
      Fields.push_back(std::string(trim(Current)));
      Current.clear();
      continue;
    }
    Current += C;
  }
  std::string_view Last = trim(Current);
  if (!Last.empty() || !Fields.empty())
    Fields.push_back(std::string(Last));
  return Fields;
}

Expected<std::vector<AsmLine>>
sdt::assembler::lexAssembly(std::string_view Source) {
  std::vector<AsmLine> Lines;
  unsigned LineNo = 0;
  for (std::string_view Raw : split(Source, '\n')) {
    ++LineNo;
    std::string_view Text = trim(stripComment(Raw));

    AsmLine Line;
    Line.Number = LineNo;

    // Peel off any leading "label:" definitions.
    while (!Text.empty()) {
      size_t Colon = Text.find(':');
      if (Colon == std::string_view::npos)
        break;
      std::string_view Candidate = trim(Text.substr(0, Colon));
      // "1(sp):"-like text is not a label; require identifier syntax.
      if (Candidate.empty() || !isIdentStart(Candidate.front()))
        break;
      bool AllIdent = true;
      for (char C : Candidate)
        if (!isIdentChar(C)) {
          AllIdent = false;
          break;
        }
      if (!AllIdent)
        return Error::atLine(LineNo, "malformed label '" +
                                         std::string(Candidate) + "'");
      Line.Labels.push_back(std::string(Candidate));
      Text = trim(Text.substr(Colon + 1));
    }

    if (!Text.empty()) {
      size_t SpacePos = 0;
      while (SpacePos < Text.size() &&
             !std::isspace(static_cast<unsigned char>(Text[SpacePos])))
        ++SpacePos;
      Line.Mnemonic = toLower(Text.substr(0, SpacePos));
      std::string_view Rest = trim(Text.substr(SpacePos));
      if (!Rest.empty())
        Line.Operands = splitOperands(Rest);
    }

    if (!Line.empty())
      Lines.push_back(std::move(Line));
  }
  return Lines;
}

Expected<std::string>
sdt::assembler::decodeStringLiteral(std::string_view Token, unsigned Line) {
  Token = trim(Token);
  if (Token.size() < 2 || Token.front() != '"' || Token.back() != '"')
    return Error::atLine(Line, "expected string literal");
  std::string Out;
  for (size_t I = 1, E = Token.size() - 1; I != E; ++I) {
    char C = Token[I];
    if (C != '\\') {
      Out += C;
      continue;
    }
    if (I + 1 == E)
      return Error::atLine(Line, "dangling escape in string literal");
    char Esc = Token[++I];
    switch (Esc) {
    case 'n':
      Out += '\n';
      break;
    case 't':
      Out += '\t';
      break;
    case '0':
      Out += '\0';
      break;
    case '\\':
      Out += '\\';
      break;
    case '"':
      Out += '"';
      break;
    default:
      return Error::atLine(Line, std::string("unknown escape '\\") + Esc +
                                     "'");
    }
  }
  return Out;
}
