//===- support/Error.h - Lightweight error handling -----------*- C++ -*-===//
//
// Part of StrataIB, a reproduction of "Evaluating Indirect Branch Handling
// Mechanisms in Software Dynamic Translation Systems" (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exception-free error propagation in the style of llvm::Error /
/// llvm::Expected. An Error carries a message and a source location hint
/// (e.g. "line 12: unknown mnemonic 'fma'"); an Expected<T> is either a T
/// or an Error. Library code never throws; tools render the message and
/// exit.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_SUPPORT_ERROR_H
#define STRATAIB_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sdt {

/// A failure description. Default-constructed Error is the success value.
///
/// Unlike llvm::Error this class does not abort on unchecked drops; it is a
/// plain value type, which keeps the reproduction small while preserving the
/// "errors are values, not exceptions" discipline.
class Error {
public:
  /// Creates the success value.
  Error() = default;

  /// Creates a failure with \p Message.
  static Error failure(std::string Message) {
    Error E;
    E.Message = std::move(Message);
    E.Failed = true;
    return E;
  }

  /// Creates a failure tagged with a 1-based line number, for assembler and
  /// loader diagnostics.
  static Error atLine(unsigned Line, std::string Message);

  /// True if this represents a failure.
  explicit operator bool() const { return Failed; }

  bool isSuccess() const { return !Failed; }

  /// Returns the diagnostic message. Only meaningful for failures.
  const std::string &message() const {
    assert(Failed && "querying message of a success value");
    return Message;
  }

private:
  std::string Message;
  bool Failed = false;
};

/// Either a value of type T or an Error, in the style of llvm::Expected.
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure. \p E must be a failure value.
  Expected(Error E) : Err(std::move(E)) {
    assert(Err && "Expected constructed from a success Error");
  }

  /// True on success.
  explicit operator bool() const { return Value.has_value(); }

  T &get() {
    assert(Value && "dereferencing a failed Expected");
    return *Value;
  }
  const T &get() const {
    assert(Value && "dereferencing a failed Expected");
    return *Value;
  }

  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// Moves the error out. Only valid on failure.
  Error takeError() {
    assert(!Value && "taking error from a success value");
    return std::move(Err);
  }

  const Error &error() const {
    assert(!Value && "querying error of a success value");
    return Err;
  }

private:
  std::optional<T> Value;
  Error Err;
};

/// Aborts the process with \p Message. Used for invariant violations that
/// cannot be represented as recoverable errors (the llvm_unreachable
/// analogue).
[[noreturn]] void reportFatalError(const std::string &Message);

} // namespace sdt

#endif // STRATAIB_SUPPORT_ERROR_H
