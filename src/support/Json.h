//===- support/Json.h - Minimal JSON emission -------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer for machine-readable experiment output
/// (results/bench_summary.json). Emission only — the repo never parses
/// JSON — with correct string escaping and automatic comma placement.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_SUPPORT_JSON_H
#define STRATAIB_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace sdt {
namespace support {

/// Escapes \p S for use inside a JSON string literal (no surrounding
/// quotes).
std::string jsonEscape(const std::string &S);

/// Streaming JSON writer with two-space indentation. Usage:
///
///   JsonWriter W;
///   W.beginObject();
///   W.key("cells").beginArray();
///   W.beginObject().key("slowdown").value(1.25).endObject();
///   W.endArray().endObject();
///   std::string Doc = W.str();
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits an object key; the next emission must be its value.
  JsonWriter &key(const std::string &Name);

  JsonWriter &value(const std::string &S);
  JsonWriter &value(const char *S);
  JsonWriter &value(double D);
  JsonWriter &value(uint64_t N);
  JsonWriter &value(int64_t N);
  JsonWriter &value(uint32_t N) { return value(static_cast<uint64_t>(N)); }
  JsonWriter &value(int N) { return value(static_cast<int64_t>(N)); }
  JsonWriter &value(bool B);

  /// The finished document. All containers must be closed.
  const std::string &str() const;

private:
  void beforeItem();
  void newline();

  std::string Out;
  /// One entry per open container: whether it already holds an item.
  std::vector<bool> HasItem;
  bool PendingKey = false;
};

} // namespace support
} // namespace sdt

#endif // STRATAIB_SUPPORT_JSON_H
