//===- support/ThreadPool.cpp ----------------------------------*- C++ -*-===//
//
// Part of StrataIB. See ThreadPool.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace sdt;
using namespace sdt::support;

ThreadPool::ThreadPool(unsigned WorkerCount) {
  if (WorkerCount == 0)
    WorkerCount = 1;
  Workers.reserve(WorkerCount);
  for (unsigned I = 0; I != WorkerCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  Ready.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Ready.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task(); // packaged_task captures exceptions into the future.
  }
}
