//===- support/Statistics.cpp ----------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Statistics.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace sdt;

void RunningStat::addSample(double X) {
  if (Count == 0) {
    Min = Max = X;
  } else {
    if (X < Min)
      Min = X;
    if (X > Max)
      Max = X;
  }
  Sum += X;
  ++Count;
}

double sdt::geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean of non-positive value");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

Histogram::Histogram(size_t BucketCount, uint64_t BucketWidth)
    : Buckets(BucketCount, 0), BucketWidth(BucketWidth) {
  assert(BucketCount > 0 && BucketWidth > 0 && "degenerate histogram");
}

void Histogram::addSample(uint64_t X) {
  size_t Index = static_cast<size_t>(X / BucketWidth);
  if (Index >= Buckets.size())
    ++Overflow;
  else
    ++Buckets[Index];
  ++Total;
  Sum += X;
}

std::string Histogram::render() const {
  std::string Out;
  char Line[128];
  for (size_t I = 0, E = Buckets.size(); I != E; ++I) {
    if (Buckets[I] == 0)
      continue;
    uint64_t Lo = I * BucketWidth;
    uint64_t Hi = Lo + BucketWidth - 1;
    if (BucketWidth == 1)
      std::snprintf(Line, sizeof(Line), "%8llu: %llu\n",
                    static_cast<unsigned long long>(Lo),
                    static_cast<unsigned long long>(Buckets[I]));
    else
      std::snprintf(Line, sizeof(Line), "%8llu-%llu: %llu\n",
                    static_cast<unsigned long long>(Lo),
                    static_cast<unsigned long long>(Hi),
                    static_cast<unsigned long long>(Buckets[I]));
    Out += Line;
  }
  if (Overflow != 0) {
    std::snprintf(Line, sizeof(Line), "overflow: %llu\n",
                  static_cast<unsigned long long>(Overflow));
    Out += Line;
  }
  return Out;
}

Log2Histogram::Log2Histogram(size_t BucketCount) : Buckets(BucketCount, 0) {
  assert(BucketCount > 0 && BucketCount <= 65 && "degenerate histogram");
}

void Log2Histogram::addSample(uint64_t X) {
  // Bucket 0 holds 0; bucket floor(log2(X)) + 1 holds X > 0.
  size_t Index = 0;
  for (uint64_t V = X; V != 0; V >>= 1)
    ++Index;
  if (Index >= Buckets.size())
    ++Overflow;
  else
    ++Buckets[Index];
  ++Total;
  Sum += X;
}

std::string Log2Histogram::render() const {
  std::string Out;
  char Line[128];
  for (size_t I = 0, E = Buckets.size(); I != E; ++I) {
    if (Buckets[I] == 0)
      continue;
    uint64_t Lo = bucketLow(I);
    uint64_t Hi = bucketLow(I + 1) - 1;
    std::snprintf(Line, sizeof(Line), "%12llu..%llu: %llu\n",
                  static_cast<unsigned long long>(Lo),
                  static_cast<unsigned long long>(Hi),
                  static_cast<unsigned long long>(Buckets[I]));
    Out += Line;
  }
  if (Overflow != 0) {
    std::snprintf(Line, sizeof(Line), "overflow: %llu\n",
                  static_cast<unsigned long long>(Overflow));
    Out += Line;
  }
  return Out;
}
