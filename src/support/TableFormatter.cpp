//===- support/TableFormatter.cpp ------------------------------*- C++ -*-===//
//
// Part of StrataIB. See TableFormatter.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "support/TableFormatter.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace sdt;

TableFormatter::TableFormatter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {
  assert(!this->Headers.empty() && "table with no columns");
}

TableFormatter &TableFormatter::beginRow() {
  assert((Rows.empty() || Rows.back().size() == Headers.size()) &&
         "previous row is incomplete");
  Rows.emplace_back();
  return *this;
}

TableFormatter &TableFormatter::addCell(const std::string &Text) {
  assert(!Rows.empty() && "addCell before beginRow");
  Rows.back().push_back({Text, /*RightAlign=*/false});
  return *this;
}

TableFormatter &TableFormatter::addCell(uint64_t Value) {
  assert(!Rows.empty() && "addCell before beginRow");
  Rows.back().push_back({std::to_string(Value), /*RightAlign=*/true});
  return *this;
}

TableFormatter &TableFormatter::addCell(double Value, unsigned Decimals) {
  assert(!Rows.empty() && "addCell before beginRow");
  Rows.back().push_back(
      {formatString("%.*f", static_cast<int>(Decimals), Value),
       /*RightAlign=*/true});
  return *this;
}

std::string TableFormatter::render() const {
  assert((Rows.empty() || Rows.back().size() == Headers.size()) &&
         "last row is incomplete");

  std::vector<size_t> Widths(Headers.size());
  for (size_t I = 0, E = Headers.size(); I != E; ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0, E = Row.size(); I != E; ++I)
      if (Row[I].Text.size() > Widths[I])
        Widths[I] = Row[I].Text.size();

  auto appendPadded = [](std::string &Out, const std::string &Text,
                         size_t Width, bool RightAlign) {
    size_t Pad = Width - Text.size();
    if (RightAlign)
      Out.append(Pad, ' ');
    Out += Text;
    if (!RightAlign)
      Out.append(Pad, ' ');
  };

  std::string Out;
  for (size_t I = 0, E = Headers.size(); I != E; ++I) {
    if (I != 0)
      Out += "  ";
    appendPadded(Out, Headers[I], Widths[I], /*RightAlign=*/false);
  }
  Out += '\n';
  size_t RuleWidth = 0;
  for (size_t W : Widths)
    RuleWidth += W;
  RuleWidth += 2 * (Headers.size() - 1);
  Out.append(RuleWidth, '-');
  Out += '\n';

  for (const auto &Row : Rows) {
    for (size_t I = 0, E = Row.size(); I != E; ++I) {
      if (I != 0)
        Out += "  ";
      appendPadded(Out, Row[I].Text, Widths[I], Row[I].RightAlign);
    }
    Out += '\n';
  }
  return Out;
}
