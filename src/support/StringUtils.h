//===- support/StringUtils.h - String helpers ------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared by the assembler and the benchmark harness.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_SUPPORT_STRINGUTILS_H
#define STRATAIB_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sdt {

/// Returns \p S with leading/trailing whitespace removed.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep, keeping empty fields.
std::vector<std::string_view> split(std::string_view S, char Sep);

/// Parses a signed integer with optional 0x/0b prefix and leading '-'.
/// Returns std::nullopt on malformed input or overflow of int64_t.
std::optional<int64_t> parseInteger(std::string_view S);

/// True if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// Lower-cases ASCII letters in \p S.
std::string toLower(std::string_view S);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace sdt

#endif // STRATAIB_SUPPORT_STRINGUTILS_H
