//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool with future-based task submission. Built for
/// the parallel experiment engine: measurement cells are independent, so
/// the pool only needs submit-and-wait semantics — no work stealing, no
/// priorities. Exceptions thrown by a task are captured into its future
/// and rethrown at get(), so worker failures surface at the submission
/// site instead of tearing down the process.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_SUPPORT_THREADPOOL_H
#define STRATAIB_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sdt {
namespace support {

/// A fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p Workers threads (at least one).
  explicit ThreadPool(unsigned Workers);

  /// Drains nothing: tasks already queued still run to completion, then
  /// the workers are joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workerCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Queues \p F for execution and returns a future for its result. The
  /// future rethrows any exception \p F throws. Safe to call from
  /// multiple threads; results are consumed through the futures, so
  /// submission order is whatever ordering the caller imposes on their
  /// future collection.
  template <typename Fn>
  auto submit(Fn &&F) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    auto Task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(F));
    std::future<Result> Future = Task->get_future();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Queue.emplace_back([Task] { (*Task)(); });
    }
    Ready.notify_one();
    return Future;
  }

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable Ready;
  bool Stopping = false;
};

} // namespace support
} // namespace sdt

#endif // STRATAIB_SUPPORT_THREADPOOL_H
