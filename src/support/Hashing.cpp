//===- support/Hashing.cpp -------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Hashing.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "support/Hashing.h"

#include <cassert>

using namespace sdt;

bool sdt::isPowerOf2(uint32_t V) { return V != 0 && (V & (V - 1)) == 0; }

unsigned sdt::log2Floor(uint32_t V) {
  assert(V != 0 && "log2Floor of zero");
  unsigned Result = 0;
  while (V >>= 1)
    ++Result;
  return Result;
}

uint32_t sdt::hashAddress(HashKind Kind, uint32_t Addr, uint32_t Size) {
  assert(isPowerOf2(Size) && "hash table size must be a power of two");
  uint32_t Mask = Size - 1;
  switch (Kind) {
  case HashKind::ShiftMask:
    return (Addr >> 2) & Mask;
  case HashKind::XorFold:
    return ((Addr >> 2) ^ (Addr >> 12)) & Mask;
  case HashKind::Fibonacci: {
    // Knuth's multiplicative constant, 2^32 / phi.
    uint32_t Product = Addr * 2654435761u;
    unsigned Bits = log2Floor(Size);
    if (Bits == 0)
      return 0;
    return Product >> (32 - Bits);
  }
  }
  assert(false && "unknown hash kind");
  return 0;
}

unsigned sdt::hashAluOpCount(HashKind Kind) {
  switch (Kind) {
  case HashKind::ShiftMask:
    return 2; // shift, and
  case HashKind::XorFold:
    return 4; // shift, shift, xor, and
  case HashKind::Fibonacci:
    return 2; // multiply, shift (multiply cost is charged as a mul op)
  }
  assert(false && "unknown hash kind");
  return 0;
}

std::string sdt::hashKindName(HashKind Kind) {
  switch (Kind) {
  case HashKind::ShiftMask:
    return "shift-mask";
  case HashKind::XorFold:
    return "xor-fold";
  case HashKind::Fibonacci:
    return "fibonacci";
  }
  assert(false && "unknown hash kind");
  return "";
}

uint64_t sdt::mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}
