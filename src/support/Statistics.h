//===- support/Statistics.h - Summary statistics ---------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics used by the benchmark harness: running mean/min/max,
/// geometric mean (the paper reports geo-means over SPEC), and fixed-bucket
/// histograms (used for sieve chain-length and IBTC probe distributions).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_SUPPORT_STATISTICS_H
#define STRATAIB_SUPPORT_STATISTICS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sdt {

/// Accumulates count/min/max/mean without storing samples.
class RunningStat {
public:
  void addSample(double X);

  size_t count() const { return Count; }
  double mean() const { return Count == 0 ? 0.0 : Sum / Count; }
  double min() const { return Count == 0 ? 0.0 : Min; }
  double max() const { return Count == 0 ? 0.0 : Max; }
  double sum() const { return Sum; }

private:
  size_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Geometric mean of \p Values. Values must be positive; returns 0 for an
/// empty input.
double geometricMean(const std::vector<double> &Values);

/// Fixed-width bucket histogram over non-negative integer samples. Samples
/// at or beyond the last bucket accumulate in an overflow bucket.
class Histogram {
public:
  /// \p BucketCount buckets of width \p BucketWidth each, plus overflow.
  Histogram(size_t BucketCount, uint64_t BucketWidth);

  void addSample(uint64_t X);

  size_t bucketCount() const { return Buckets.size(); }
  uint64_t bucketValue(size_t I) const { return Buckets[I]; }
  uint64_t overflowCount() const { return Overflow; }
  uint64_t totalCount() const { return Total; }

  /// Mean of all recorded samples (overflow samples contribute their true
  /// value, which is retained in a running sum).
  double mean() const { return Total == 0 ? 0.0 : double(Sum) / Total; }

  /// Renders "bucket-range: count" lines, skipping empty buckets.
  std::string render() const;

private:
  std::vector<uint64_t> Buckets;
  uint64_t BucketWidth;
  uint64_t Overflow = 0;
  uint64_t Total = 0;
  uint64_t Sum = 0;
};

/// Power-of-two bucket histogram over non-negative integer samples: bucket
/// 0 holds the value 0, bucket i>0 holds [2^(i-1), 2^i). Suited to
/// heavy-tailed cycle-gap distributions where fixed-width buckets either
/// truncate the tail or wash out the head.
class Log2Histogram {
public:
  /// \p BucketCount buckets (so values up to 2^(BucketCount-1) - 1), plus
  /// overflow.
  explicit Log2Histogram(size_t BucketCount = 40);

  void addSample(uint64_t X);

  size_t bucketCount() const { return Buckets.size(); }
  uint64_t bucketValue(size_t I) const { return Buckets[I]; }
  /// Lower bound of bucket \p I (0, then 2^(I-1)).
  static uint64_t bucketLow(size_t I) {
    return I == 0 ? 0 : uint64_t(1) << (I - 1);
  }
  uint64_t overflowCount() const { return Overflow; }
  uint64_t totalCount() const { return Total; }

  /// Mean of all recorded samples (true values, not bucket midpoints).
  double mean() const { return Total == 0 ? 0.0 : double(Sum) / Total; }

  /// Renders "low..high: count" lines, skipping empty buckets.
  std::string render() const;

private:
  std::vector<uint64_t> Buckets;
  uint64_t Overflow = 0;
  uint64_t Total = 0;
  uint64_t Sum = 0;
};

} // namespace sdt

#endif // STRATAIB_SUPPORT_STATISTICS_H
