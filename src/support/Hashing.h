//===- support/Hashing.h - Address hash functions --------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash functions used to index indirect-branch lookup structures (IBTC
/// tables, sieve buckets, return caches). The paper's mechanisms hash a
/// 32-bit guest address down to a power-of-two table index with only a
/// couple of host instructions, so each function here also reports the
/// number of host ALU operations its inline expansion costs — the timing
/// model charges exactly that.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_SUPPORT_HASHING_H
#define STRATAIB_SUPPORT_HASHING_H

#include <cstdint>
#include <string>

namespace sdt {

/// Hash function choices for IB lookup structures.
///
/// Real SDT systems favour the cheapest hash that spreads branch targets
/// adequately; since instruction addresses are word-aligned, dropping the
/// low alignment bits before masking matters. The enumerators mirror the
/// choices discussed for Strata-style systems.
enum class HashKind {
  /// index = (addr >> 2) & mask. One shift + one AND.
  ShiftMask,
  /// index = ((addr >> 2) ^ (addr >> 12)) & mask. Folds high bits in to
  /// break up page-aligned regularity. Two shifts + XOR + AND.
  XorFold,
  /// index = (addr * 2654435761) >> (32 - log2(size)). Fibonacci /
  /// multiplicative hashing; best spread, costs a multiply.
  Fibonacci,
};

/// Returns the table index for \p Addr in a table of \p Size entries.
/// \p Size must be a power of two.
uint32_t hashAddress(HashKind Kind, uint32_t Addr, uint32_t Size);

/// Number of host ALU micro-ops the inline expansion of \p Kind costs.
/// The timing model charges this per lookup.
unsigned hashAluOpCount(HashKind Kind);

/// Human-readable name ("shift-mask", "xor-fold", "fibonacci").
std::string hashKindName(HashKind Kind);

/// Returns floor(log2(V)). \p V must be nonzero.
unsigned log2Floor(uint32_t V);

/// True if \p V is a nonzero power of two.
bool isPowerOf2(uint32_t V);

/// A 64-bit avalanche mix (SplitMix64 finalizer) for host-side hashing
/// where quality matters more than modeled cost (e.g. the dispatcher's
/// translation map in the simulator itself).
uint64_t mix64(uint64_t X);

} // namespace sdt

#endif // STRATAIB_SUPPORT_HASHING_H
