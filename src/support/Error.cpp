//===- support/Error.cpp --------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Error.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace sdt;

Error Error::atLine(unsigned Line, std::string Message) {
  return failure("line " + std::to_string(Line) + ": " + std::move(Message));
}

void sdt::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "fatal error: %s\n", Message.c_str());
  std::abort();
}
