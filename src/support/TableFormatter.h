//===- support/TableFormatter.h - Paper-style tables ------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders aligned text tables for the benchmark harness. Every experiment
/// binary prints the rows/series of one of the paper's tables or figures
/// through this class so the output layout is uniform.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_SUPPORT_TABLEFORMATTER_H
#define STRATAIB_SUPPORT_TABLEFORMATTER_H

#include <cstdint>
#include <string>
#include <vector>

namespace sdt {

/// Column-aligned table builder. Numeric cells are right-aligned, text
/// cells left-aligned.
class TableFormatter {
public:
  explicit TableFormatter(std::vector<std::string> Headers);

  /// Starts a new row.
  TableFormatter &beginRow();

  /// Appends a text cell (left-aligned).
  TableFormatter &addCell(const std::string &Text);

  /// Appends an integer cell (right-aligned).
  TableFormatter &addCell(uint64_t Value);

  /// Appends a fixed-point cell with \p Decimals digits (right-aligned).
  TableFormatter &addCell(double Value, unsigned Decimals = 2);

  /// Renders the table with a header rule. All rows must have as many
  /// cells as there are headers.
  std::string render() const;

private:
  struct Cell {
    std::string Text;
    bool RightAlign;
  };

  std::vector<std::string> Headers;
  std::vector<std::vector<Cell>> Rows;
};

} // namespace sdt

#endif // STRATAIB_SUPPORT_TABLEFORMATTER_H
