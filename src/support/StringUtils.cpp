//===- support/StringUtils.cpp ---------------------------------*- C++ -*-===//
//
// Part of StrataIB. See StringUtils.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <limits>

using namespace sdt;

std::string_view sdt::trim(std::string_view S) {
  size_t Begin = 0;
  while (Begin < S.size() &&
         std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  size_t End = S.size();
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string_view> sdt::split(std::string_view S, char Sep) {
  std::vector<std::string_view> Fields;
  size_t Start = 0;
  for (size_t I = 0, E = S.size(); I != E; ++I) {
    if (S[I] != Sep)
      continue;
    Fields.push_back(S.substr(Start, I - Start));
    Start = I + 1;
  }
  Fields.push_back(S.substr(Start));
  return Fields;
}

bool sdt::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

std::string sdt::toLower(std::string_view S) {
  std::string Out(S);
  for (char &C : Out)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return Out;
}

std::optional<int64_t> sdt::parseInteger(std::string_view S) {
  S = trim(S);
  if (S.empty())
    return std::nullopt;

  bool Negative = false;
  if (S.front() == '-' || S.front() == '+') {
    Negative = S.front() == '-';
    S.remove_prefix(1);
    if (S.empty())
      return std::nullopt;
  }

  unsigned Base = 10;
  if (startsWith(S, "0x") || startsWith(S, "0X")) {
    Base = 16;
    S.remove_prefix(2);
  } else if (startsWith(S, "0b") || startsWith(S, "0B")) {
    Base = 2;
    S.remove_prefix(2);
  }
  if (S.empty())
    return std::nullopt;

  uint64_t Value = 0;
  for (char C : S) {
    unsigned Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<unsigned>(C - 'a' + 10);
    else if (C >= 'A' && C <= 'F')
      Digit = static_cast<unsigned>(C - 'A' + 10);
    else
      return std::nullopt;
    if (Digit >= Base)
      return std::nullopt;
    uint64_t Next = Value * Base + Digit;
    if (Next < Value) // overflow
      return std::nullopt;
    Value = Next;
  }

  uint64_t Limit = Negative
                       ? static_cast<uint64_t>(
                             std::numeric_limits<int64_t>::max()) +
                             1
                       : static_cast<uint64_t>(
                             std::numeric_limits<int64_t>::max());
  if (Value > Limit)
    return std::nullopt;
  int64_t Signed = static_cast<int64_t>(Value);
  return Negative ? -Signed : Signed;
}

std::string sdt::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return "";
  }
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}
