//===- support/Json.cpp ----------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Json.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace sdt;
using namespace sdt::support;

std::string sdt::support::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonWriter::newline() {
  Out += '\n';
  Out.append(2 * HasItem.size(), ' ');
}

void JsonWriter::beforeItem() {
  if (PendingKey) {
    PendingKey = false;
    return; // The key already placed the comma and indentation.
  }
  if (!HasItem.empty()) {
    if (HasItem.back())
      Out += ',';
    HasItem.back() = true;
    newline();
  }
}

JsonWriter &JsonWriter::beginObject() {
  beforeItem();
  HasItem.push_back(false);
  Out += '{';
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!HasItem.empty() && "endObject with no open container");
  bool Any = HasItem.back();
  HasItem.pop_back();
  if (Any)
    newline();
  Out += '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  beforeItem();
  HasItem.push_back(false);
  Out += '[';
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!HasItem.empty() && "endArray with no open container");
  bool Any = HasItem.back();
  HasItem.pop_back();
  if (Any)
    newline();
  Out += ']';
  return *this;
}

JsonWriter &JsonWriter::key(const std::string &Name) {
  assert(!PendingKey && "key directly after key");
  beforeItem();
  Out += '"';
  Out += jsonEscape(Name);
  Out += "\": ";
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &S) {
  beforeItem();
  Out += '"';
  Out += jsonEscape(S);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(const char *S) {
  return value(std::string(S));
}

JsonWriter &JsonWriter::value(double D) {
  beforeItem();
  if (!std::isfinite(D)) {
    Out += "null"; // JSON has no inf/nan.
    return *this;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", D);
  Out += Buf;
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t N) {
  beforeItem();
  Out += std::to_string(N);
  return *this;
}

JsonWriter &JsonWriter::value(int64_t N) {
  beforeItem();
  Out += std::to_string(N);
  return *this;
}

JsonWriter &JsonWriter::value(bool B) {
  beforeItem();
  Out += B ? "true" : "false";
  return *this;
}

const std::string &JsonWriter::str() const {
  assert(HasItem.empty() && "unclosed JSON container");
  return Out;
}
