//===- support/Rng.h - Deterministic PRNG ----------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (xoshiro-style over a SplitMix64 seeder) used
/// by workload generators and property tests. std::mt19937 is avoided so
/// that generated programs are bit-identical across standard libraries.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_SUPPORT_RNG_H
#define STRATAIB_SUPPORT_RNG_H

#include "support/Hashing.h"

#include <cassert>
#include <cstdint>

namespace sdt {

/// Deterministic 64-bit PRNG with convenience helpers for bounded draws.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    // Seed the two words via SplitMix64 so that nearby seeds diverge.
    State0 = mix64(Seed);
    State1 = mix64(Seed + 0x632be59bd9b4e019ULL);
    if (State0 == 0 && State1 == 0)
      State1 = 1;
  }

  /// Next raw 64-bit value (xoroshiro128+).
  uint64_t next() {
    uint64_t S0 = State0;
    uint64_t S1 = State1;
    uint64_t Result = S0 + S1;
    S1 ^= S0;
    State0 = rotl(S0, 24) ^ S1 ^ (S1 << 16);
    State1 = rotl(S1, 37);
    return Result;
  }

  /// Uniform draw in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow(0)");
    // Multiply-shift rejection-free bounding; bias is negligible for the
    // bounds used here (all far below 2^32).
    return (static_cast<unsigned __int128>(next()) * Bound) >> 64;
  }

  /// Uniform draw in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Bernoulli draw: true with probability Numer/Denom.
  bool nextChance(uint64_t Numer, uint64_t Denom) {
    assert(Denom != 0 && Numer <= Denom && "bad probability");
    return nextBelow(Denom) < Numer;
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State0;
  uint64_t State1;
};

} // namespace sdt

#endif // STRATAIB_SUPPORT_RNG_H
