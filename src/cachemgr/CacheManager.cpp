//===- cachemgr/CacheManager.cpp -------------------------------*- C++ -*-===//
//
// Part of StrataIB. See CacheManager.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "cachemgr/CacheManager.h"

using namespace sdt;
using namespace sdt::cachemgr;

EvictionPlan CacheManager::plan(const std::vector<FragmentView> &Live,
                                const CacheUsage &Usage, uint32_t Pinned) {
  EvictionPlan P = Policy->plan(Live, Usage, Pinned);
  if (P.FullFlush)
    return P;
  // Both shipped policies emit victims in Live (allocation) order, so a
  // single merge walk tallies the freed bytes.
  uint64_t Freed = 0;
  size_t LiveIt = 0;
  for (uint32_t Victim : P.Victims) {
    while (LiveIt != Live.size() && Live[LiveIt].Index != Victim)
      ++LiveIt;
    if (LiveIt != Live.size())
      Freed += Live[LiveIt].Bytes;
  }
  // Progress guarantee: the eviction must get usage strictly back under
  // capacity, or the engine would immediately be full again.
  if (P.Victims.empty() || Usage.UsedBytes - Freed >= Usage.CapacityBytes) {
    P.FullFlush = true;
    P.Victims.clear();
  }
  return P;
}
