//===- cachemgr/CachePolicy.h - Code-cache eviction policies -----*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pluggable eviction policies for the bounded fragment cache. A policy
/// sees a lightweight view of the live fragments (index, entry address,
/// size, execution count) plus the capacity situation, and returns an
/// EvictionPlan: either "flush everything" or a concrete victim set.
/// Policies are pure capacity deciders — the mechanics of tombstoning
/// victims and invalidating the structures that reference them live in
/// core (FragmentCache::evict and the IB handlers), driven by the
/// CacheManager.
///
/// Shipped policies (docs/CodeCacheManagement.md has the full semantics):
///  - FullFlush:    always flush everything (the pre-subsystem baseline).
///  - Fifo:         evict the oldest fragments in allocation order until
///                  usage drops to EvictTargetPct of capacity.
///  - Generational: treat fragments with ExecCount >= GenPromoteExecs as
///                  the hot generation and evict the cold generation
///                  wholesale.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_CACHEMGR_CACHEPOLICY_H
#define STRATAIB_CACHEMGR_CACHEPOLICY_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace sdt {
namespace cachemgr {

/// The selectable eviction policies.
enum class CachePolicyKind : uint8_t {
  FullFlush,
  Fifo,
  Generational,
};

/// Stable lower-case name ("full-flush", "fifo", "generational").
const char *cachePolicyName(CachePolicyKind Kind);

/// Parses a policy name as accepted by STRATAIB_CACHE_POLICY
/// ("full-flush"/"fullflush"/"flush", "fifo", "generational"/"gen");
/// nullopt for anything else.
std::optional<CachePolicyKind> parseCachePolicy(std::string_view Name);

/// What a policy sees of one live fragment.
struct FragmentView {
  uint32_t Index = 0;     ///< Fragment-cache index (stable, tombstoned).
  uint32_t EntryAddr = 0; ///< Simulated host entry address.
  uint32_t Bytes = 0;     ///< Simulated code bytes.
  uint64_t ExecCount = 0; ///< Head-of-fragment execution count.
};

/// Capacity situation at decision time.
struct CacheUsage {
  uint32_t CapacityBytes = 0;
  uint32_t UsedBytes = 0;
};

/// A policy decision: full flush, or a concrete victim set (fragment
/// indices). An empty victim set without FullFlush means the policy
/// could not free anything — the manager escalates to a full flush.
struct EvictionPlan {
  bool FullFlush = false;
  std::vector<uint32_t> Victims;
};

/// Policy tuning knobs (mirrored in core::SdtOptions).
struct PolicyConfig {
  /// Fifo evicts until UsedBytes <= CapacityBytes * EvictTargetPct / 100.
  uint32_t EvictTargetPct = 50;
  /// Generational promotes fragments with ExecCount >= this threshold
  /// into the hot generation (never evicted while any cold one exists).
  uint32_t GenPromoteExecs = 8;
};

/// Abstract eviction policy.
class CachePolicy {
public:
  virtual ~CachePolicy() = default;

  virtual CachePolicyKind kind() const = 0;

  /// Decides what to free. \p Live lists the live fragments in
  /// allocation order; \p Pinned is the fragment index the engine is
  /// currently executing (never a valid victim; UINT32_MAX when none).
  virtual EvictionPlan plan(const std::vector<FragmentView> &Live,
                            const CacheUsage &Usage, uint32_t Pinned) = 0;

  /// Notification that the cache was fully flushed (policy state, if
  /// any, should reset).
  virtual void notifyFlush() {}
};

/// Builds the policy for \p Kind with \p Config.
std::unique_ptr<CachePolicy> makeCachePolicy(CachePolicyKind Kind,
                                             const PolicyConfig &Config);

} // namespace cachemgr
} // namespace sdt

#endif // STRATAIB_CACHEMGR_CACHEPOLICY_H
