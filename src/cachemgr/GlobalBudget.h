//===- cachemgr/GlobalBudget.h - Cross-engine cache accounting ---*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-engine accounting for a fleet of fragment caches sharing one
/// host. Each tenant engine keeps its private CachePolicy, but the
/// service layer wraps it in an ArbitratedPolicy that charges every
/// eviction decision to a shared GlobalBudgetLedger — the sum of all
/// tenants' cache activity becomes observable (and therefore testable)
/// without the engines knowing about each other.
///
/// The wrapper is deliberately decision-transparent: kind() and plan()
/// delegate to the inner policy unchanged, so an engine running under
/// the arbiter with the same capacity produces bit-identical cycles to
/// a standalone engine (pinned by a differential test). Capacity
/// *grants* — how many bytes each tenant's cache may use under the
/// global budget — are decided at admission time by the service-layer
/// GlobalCacheArbiter, not here; this layer only accounts.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_CACHEMGR_GLOBALBUDGET_H
#define STRATAIB_CACHEMGR_GLOBALBUDGET_H

#include "cachemgr/CachePolicy.h"

#include <atomic>

namespace sdt {
namespace cachemgr {

/// Shared counters for all engines running under one global budget.
/// Written from worker threads (relaxed atomics — counters only, never
/// read back into any simulation decision), read after the workers are
/// joined.
struct GlobalBudgetLedger {
  /// Partial-eviction plans executed across all tenant engines.
  std::atomic<uint64_t> PartialEvictions{0};
  /// Bytes freed by those partial evictions.
  std::atomic<uint64_t> EvictedBytes{0};
  /// Full cache flushes across all tenant engines (policy flushes and
  /// manager escalations alike — counted where the flush happens).
  std::atomic<uint64_t> Flushes{0};

  void reset() {
    PartialEvictions.store(0, std::memory_order_relaxed);
    EvictedBytes.store(0, std::memory_order_relaxed);
    Flushes.store(0, std::memory_order_relaxed);
  }
};

/// CachePolicy wrapper that forwards every decision to an inner policy
/// and charges the outcome to a GlobalBudgetLedger. Installed via
/// core::SdtOptions::PolicyFactory by the engine server.
class ArbitratedPolicy : public CachePolicy {
public:
  ArbitratedPolicy(std::unique_ptr<CachePolicy> Inner,
                   GlobalBudgetLedger &Ledger);

  /// Delegates to the inner policy: the engine short-circuits pressure
  /// handling to a flush when kind() == FullFlush, so reporting our own
  /// kind would change eviction behaviour.
  CachePolicyKind kind() const override { return Inner->kind(); }

  EvictionPlan plan(const std::vector<FragmentView> &Live,
                    const CacheUsage &Usage, uint32_t Pinned) override;

  void notifyFlush() override;

private:
  std::unique_ptr<CachePolicy> Inner;
  GlobalBudgetLedger &Ledger;
};

} // namespace cachemgr
} // namespace sdt

#endif // STRATAIB_CACHEMGR_GLOBALBUDGET_H
