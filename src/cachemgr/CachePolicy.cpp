//===- cachemgr/CachePolicy.cpp --------------------------------*- C++ -*-===//
//
// Part of StrataIB. See CachePolicy.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "cachemgr/CachePolicy.h"

#include <cassert>

using namespace sdt;
using namespace sdt::cachemgr;

const char *sdt::cachemgr::cachePolicyName(CachePolicyKind Kind) {
  switch (Kind) {
  case CachePolicyKind::FullFlush:
    return "full-flush";
  case CachePolicyKind::Fifo:
    return "fifo";
  case CachePolicyKind::Generational:
    return "generational";
  }
  assert(false && "invalid cache policy kind");
  return "unknown";
}

std::optional<CachePolicyKind>
sdt::cachemgr::parseCachePolicy(std::string_view Name) {
  if (Name == "full-flush" || Name == "fullflush" || Name == "flush")
    return CachePolicyKind::FullFlush;
  if (Name == "fifo")
    return CachePolicyKind::Fifo;
  if (Name == "generational" || Name == "gen")
    return CachePolicyKind::Generational;
  return std::nullopt;
}

namespace {

/// The pre-subsystem baseline: every capacity overrun drops the whole
/// cache at once.
class FullFlushPolicy final : public CachePolicy {
public:
  CachePolicyKind kind() const override { return CachePolicyKind::FullFlush; }

  EvictionPlan plan(const std::vector<FragmentView> &, const CacheUsage &,
                    uint32_t) override {
    EvictionPlan P;
    P.FullFlush = true;
    return P;
  }
};

/// Evicts the oldest fragments in allocation order (live fragments are
/// presented in allocation order, so a front-to-back walk is FIFO)
/// until usage drops to EvictTargetPct of capacity.
class FifoPolicy final : public CachePolicy {
public:
  explicit FifoPolicy(const PolicyConfig &Config) : Config(Config) {}

  CachePolicyKind kind() const override { return CachePolicyKind::Fifo; }

  EvictionPlan plan(const std::vector<FragmentView> &Live,
                    const CacheUsage &Usage, uint32_t Pinned) override {
    EvictionPlan P;
    uint64_t Target = static_cast<uint64_t>(Usage.CapacityBytes) *
                      Config.EvictTargetPct / 100;
    uint64_t Remaining = Usage.UsedBytes;
    for (const FragmentView &F : Live) {
      if (Remaining <= Target)
        break;
      if (F.Index == Pinned)
        continue;
      P.Victims.push_back(F.Index);
      Remaining -= F.Bytes;
    }
    return P;
  }

private:
  PolicyConfig Config;
};

/// Two logical generations split by execution count: fragments that
/// reached GenPromoteExecs head executions are "hot" (promotion is
/// sticky — ExecCount only grows), everything else is the cold
/// generation and is evicted wholesale. When the cold generation is
/// empty (or frees too little), the manager escalates to a full flush,
/// which is exactly the semi-space collection of the hot generation.
class GenerationalPolicy final : public CachePolicy {
public:
  explicit GenerationalPolicy(const PolicyConfig &Config) : Config(Config) {}

  CachePolicyKind kind() const override {
    return CachePolicyKind::Generational;
  }

  EvictionPlan plan(const std::vector<FragmentView> &Live, const CacheUsage &,
                    uint32_t Pinned) override {
    EvictionPlan P;
    for (const FragmentView &F : Live) {
      if (F.Index == Pinned)
        continue;
      if (F.ExecCount < Config.GenPromoteExecs)
        P.Victims.push_back(F.Index);
    }
    return P;
  }

private:
  PolicyConfig Config;
};

} // namespace

std::unique_ptr<CachePolicy>
sdt::cachemgr::makeCachePolicy(CachePolicyKind Kind,
                               const PolicyConfig &Config) {
  switch (Kind) {
  case CachePolicyKind::FullFlush:
    return std::make_unique<FullFlushPolicy>();
  case CachePolicyKind::Fifo:
    return std::make_unique<FifoPolicy>(Config);
  case CachePolicyKind::Generational:
    return std::make_unique<GenerationalPolicy>(Config);
  }
  assert(false && "invalid cache policy kind");
  return nullptr;
}
