//===- cachemgr/CacheManager.h - Capacity decision owner ---------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CacheManager owns the fragment-cache capacity decision: when the
/// engine reports the cache full, the manager consults its policy and
/// returns a plan that is guaranteed to make progress — a plan whose
/// victim set is empty, or frees too little to get back under capacity,
/// is escalated to a full flush. The manager is deliberately free of any
/// core dependency (it sees FragmentView snapshots, not fragments), so
/// policies stay unit-testable without an engine.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_CACHEMGR_CACHEMANAGER_H
#define STRATAIB_CACHEMGR_CACHEMANAGER_H

#include "cachemgr/CachePolicy.h"

namespace sdt {
namespace cachemgr {

/// Owns a CachePolicy and enforces the progress guarantee on its plans.
class CacheManager {
public:
  explicit CacheManager(CachePolicyKind Kind,
                        const PolicyConfig &Config = PolicyConfig())
      : Policy(makeCachePolicy(Kind, Config)) {}

  /// Adopts an already-built policy — the service layer uses this to
  /// install an ArbitratedPolicy wrapper (GlobalBudget.h) around one of
  /// the shipped policies.
  explicit CacheManager(std::unique_ptr<CachePolicy> AdoptedPolicy)
      : Policy(std::move(AdoptedPolicy)) {}

  CachePolicyKind kind() const { return Policy->kind(); }
  const char *policyName() const { return cachePolicyName(Policy->kind()); }

  /// Returns the policy's plan, escalated to a full flush when it would
  /// not bring usage back under capacity (empty victim set included).
  EvictionPlan plan(const std::vector<FragmentView> &Live,
                    const CacheUsage &Usage, uint32_t Pinned);

  /// Forwarded to the policy when the engine flushes everything.
  void notifyFlush() { Policy->notifyFlush(); }

private:
  std::unique_ptr<CachePolicy> Policy;
};

} // namespace cachemgr
} // namespace sdt

#endif // STRATAIB_CACHEMGR_CACHEMANAGER_H
