//===- cachemgr/GlobalBudget.cpp -------------------------------*- C++ -*-===//
//
// Part of StrataIB. See GlobalBudget.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "cachemgr/GlobalBudget.h"

#include <cassert>

using namespace sdt;
using namespace sdt::cachemgr;

ArbitratedPolicy::ArbitratedPolicy(std::unique_ptr<CachePolicy> InnerPolicy,
                                   GlobalBudgetLedger &SharedLedger)
    : Inner(std::move(InnerPolicy)), Ledger(SharedLedger) {
  assert(Inner && "ArbitratedPolicy needs an inner policy");
}

EvictionPlan ArbitratedPolicy::plan(const std::vector<FragmentView> &Live,
                                    const CacheUsage &Usage, uint32_t Pinned) {
  EvictionPlan P = Inner->plan(Live, Usage, Pinned);
  if (P.FullFlush)
    return P; // The engine's flush calls notifyFlush(); counted there.
  // Mirror of the CacheManager progress-guarantee walk: a plan that
  // frees too little is escalated to a full flush above us and never
  // executes as a partial eviction, so only charge the ledger for plans
  // that will actually run.
  uint64_t Freed = 0;
  size_t LiveIt = 0;
  for (uint32_t Victim : P.Victims) {
    while (LiveIt != Live.size() && Live[LiveIt].Index != Victim)
      ++LiveIt;
    if (LiveIt != Live.size())
      Freed += Live[LiveIt].Bytes;
  }
  if (!P.Victims.empty() && Usage.UsedBytes - Freed < Usage.CapacityBytes) {
    Ledger.PartialEvictions.fetch_add(1, std::memory_order_relaxed);
    Ledger.EvictedBytes.fetch_add(Freed, std::memory_order_relaxed);
  }
  return P;
}

void ArbitratedPolicy::notifyFlush() {
  Ledger.Flushes.fetch_add(1, std::memory_order_relaxed);
  Inner->notifyFlush();
}
