//===- isa/Program.h - Loadable guest image ---------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program is the loadable guest image: a flat byte image (code and data
/// interleaved as the assembler laid them out), a load address, an entry
/// point, and a symbol table. The assembler produces one; the VM loader
/// and the SDT consume it.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ISA_PROGRAM_H
#define STRATAIB_ISA_PROGRAM_H

#include "isa/Instruction.h"
#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sdt {
namespace isa {

/// Default load address for assembled programs (page 1, leaving page 0
/// unmapped so null dereferences fault).
inline constexpr uint32_t DefaultLoadAddress = 0x1000;

/// A loadable guest image.
class Program {
public:
  Program() = default;
  Program(uint32_t LoadAddress, std::vector<uint8_t> Image)
      : LoadAddr(LoadAddress), Image(std::move(Image)) {}

  uint32_t loadAddress() const { return LoadAddr; }
  uint32_t entry() const { return Entry; }
  void setEntry(uint32_t E) { Entry = E; }

  const std::vector<uint8_t> &image() const { return Image; }
  std::vector<uint8_t> &image() { return Image; }

  /// First address past the image.
  uint32_t endAddress() const {
    return LoadAddr + static_cast<uint32_t>(Image.size());
  }

  /// True if [Addr, Addr+Size) lies inside the image.
  bool contains(uint32_t Addr, uint32_t Size = 1) const {
    return Addr >= LoadAddr && Addr + Size <= endAddress() &&
           Addr + Size >= Addr;
  }

  /// Decodes the instruction at \p Addr. Fails when \p Addr is unaligned,
  /// outside the image, or holds an invalid encoding.
  Expected<Instruction> fetch(uint32_t Addr) const;

  /// Defines symbol \p Name at \p Addr (last definition wins; the
  /// assembler rejects duplicates before this point).
  void addSymbol(const std::string &Name, uint32_t Addr) {
    Symbols[Name] = Addr;
  }

  /// Looks up symbol \p Name; fails if undefined.
  Expected<uint32_t> symbol(const std::string &Name) const;

  const std::map<std::string, uint32_t> &symbols() const { return Symbols; }

  /// Number of instructions a straight-line decode of the whole image
  /// would yield (image size / 4, rounded down).
  uint32_t instructionCapacity() const {
    return static_cast<uint32_t>(Image.size() / InstructionSize);
  }

private:
  uint32_t LoadAddr = DefaultLoadAddress;
  uint32_t Entry = DefaultLoadAddress;
  std::vector<uint8_t> Image;
  std::map<std::string, uint32_t> Symbols;
};

} // namespace isa
} // namespace sdt

#endif // STRATAIB_ISA_PROGRAM_H
