//===- isa/Disassembler.cpp ------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Disassembler.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "isa/Disassembler.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace sdt;
using namespace sdt::isa;

std::string sdt::isa::disassemble(const Instruction &I, uint32_t Pc) {
  const OpcodeInfo &Info = opcodeInfo(I.Op);
  std::string M(Info.Mnemonic);
  switch (Info.Form) {
  case Format::R:
    return formatString("%s %s, %s, %s", M.c_str(),
                        registerName(I.Rd).c_str(),
                        registerName(I.Rs1).c_str(),
                        registerName(I.Rs2).c_str());
  case Format::I:
    return formatString("%s %s, %s, %d", M.c_str(),
                        registerName(I.Rd).c_str(),
                        registerName(I.Rs1).c_str(), I.Imm);
  case Format::Lui:
    return formatString("%s %s, 0x%x", M.c_str(),
                        registerName(I.Rd).c_str(),
                        static_cast<unsigned>(I.Imm));
  case Format::Mem:
    return formatString("%s %s, %d(%s)", M.c_str(),
                        registerName(I.Rd).c_str(), I.Imm,
                        registerName(I.Rs1).c_str());
  case Format::B:
    return formatString("%s %s, %s, 0x%x", M.c_str(),
                        registerName(I.Rs1).c_str(),
                        registerName(I.Rs2).c_str(), I.branchTarget(Pc));
  case Format::Jump:
    return formatString("%s 0x%x", M.c_str(), I.directTarget());
  case Format::Jr:
    return formatString("%s %s", M.c_str(), registerName(I.Rs1).c_str());
  case Format::Jalr:
    return formatString("%s %s, %s", M.c_str(),
                        registerName(I.Rd).c_str(),
                        registerName(I.Rs1).c_str());
  case Format::None:
    return M;
  }
  assert(false && "unknown format");
  return M;
}
