//===- isa/Opcode.cpp ------------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Opcode.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "isa/Opcode.h"

#include <cassert>

using namespace sdt;
using namespace sdt::isa;

static const OpcodeInfo InfoTable[] = {
    {"add", Format::R, CtiKind::None},
    {"sub", Format::R, CtiKind::None},
    {"mul", Format::R, CtiKind::None},
    {"div", Format::R, CtiKind::None},
    {"rem", Format::R, CtiKind::None},
    {"and", Format::R, CtiKind::None},
    {"or", Format::R, CtiKind::None},
    {"xor", Format::R, CtiKind::None},
    {"sll", Format::R, CtiKind::None},
    {"srl", Format::R, CtiKind::None},
    {"sra", Format::R, CtiKind::None},
    {"slt", Format::R, CtiKind::None},
    {"sltu", Format::R, CtiKind::None},
    {"addi", Format::I, CtiKind::None},
    {"andi", Format::I, CtiKind::None},
    {"ori", Format::I, CtiKind::None},
    {"xori", Format::I, CtiKind::None},
    {"slti", Format::I, CtiKind::None},
    {"sltiu", Format::I, CtiKind::None},
    {"slli", Format::I, CtiKind::None},
    {"srli", Format::I, CtiKind::None},
    {"srai", Format::I, CtiKind::None},
    {"lui", Format::Lui, CtiKind::None},
    {"lw", Format::Mem, CtiKind::None},
    {"lh", Format::Mem, CtiKind::None},
    {"lhu", Format::Mem, CtiKind::None},
    {"lb", Format::Mem, CtiKind::None},
    {"lbu", Format::Mem, CtiKind::None},
    {"sw", Format::Mem, CtiKind::None},
    {"sh", Format::Mem, CtiKind::None},
    {"sb", Format::Mem, CtiKind::None},
    {"beq", Format::B, CtiKind::CondBranch},
    {"bne", Format::B, CtiKind::CondBranch},
    {"blt", Format::B, CtiKind::CondBranch},
    {"bge", Format::B, CtiKind::CondBranch},
    {"bltu", Format::B, CtiKind::CondBranch},
    {"bgeu", Format::B, CtiKind::CondBranch},
    {"j", Format::Jump, CtiKind::DirectJump},
    {"jal", Format::Jump, CtiKind::DirectCall},
    {"jr", Format::Jr, CtiKind::IndirectJump},
    {"jalr", Format::Jalr, CtiKind::IndirectCall},
    {"ret", Format::None, CtiKind::Return},
    {"syscall", Format::None, CtiKind::Stop},
    {"halt", Format::None, CtiKind::Stop},
};

static_assert(sizeof(InfoTable) / sizeof(InfoTable[0]) ==
                  static_cast<size_t>(Opcode::NumOpcodes),
              "opcode metadata table out of sync with the Opcode enum");

const OpcodeInfo &sdt::isa::opcodeInfo(Opcode Op) {
  assert(Op < Opcode::NumOpcodes && "invalid opcode");
  return InfoTable[static_cast<size_t>(Op)];
}

std::string_view sdt::isa::opcodeMnemonic(Opcode Op) {
  return opcodeInfo(Op).Mnemonic;
}

std::optional<Opcode> sdt::isa::parseMnemonic(std::string_view Name) {
  for (size_t I = 0, E = static_cast<size_t>(Opcode::NumOpcodes); I != E;
       ++I)
    if (Name == InfoTable[I].Mnemonic)
      return static_cast<Opcode>(I);
  return std::nullopt;
}

bool sdt::isa::isControlTransfer(Opcode Op) {
  return opcodeInfo(Op).Cti != CtiKind::None;
}

bool sdt::isa::isIndirectBranch(Opcode Op) {
  CtiKind K = opcodeInfo(Op).Cti;
  return K == CtiKind::IndirectJump || K == CtiKind::IndirectCall ||
         K == CtiKind::Return;
}
