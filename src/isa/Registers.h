//===- isa/Registers.h - GIR register file ---------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register numbering and calling convention for GIR, the guest ISA. GIR
/// has 32 general-purpose 32-bit registers with MIPS-flavoured software
/// conventions; `r0` reads as zero, `r31` is the link register written by
/// calls and read by returns (which is what lets the SDT classify `RET`
/// separately from other indirect jumps, exactly as real SDTs classify
/// `ret`/`retl`).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ISA_REGISTERS_H
#define STRATAIB_ISA_REGISTERS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sdt {
namespace isa {

/// Number of architectural registers.
inline constexpr unsigned NumRegisters = 32;

/// Software-convention register numbers.
enum Reg : uint8_t {
  RegZero = 0, ///< Hardwired zero.
  RegV0 = 2,   ///< Return value / syscall code.
  RegV1 = 3,   ///< Second return value.
  RegA0 = 4,   ///< First argument.
  RegA1 = 5,
  RegA2 = 6,
  RegA3 = 7,
  RegT0 = 8, ///< Caller-saved temporaries r8..r15.
  RegS0 = 16, ///< Callee-saved r16..r23.
  RegGP = 28, ///< Global pointer.
  RegSP = 29, ///< Stack pointer.
  RegFP = 30, ///< Frame pointer.
  RegRA = 31, ///< Link register.
};

/// Canonical name for register \p Number ("zero", "v0", "sp", ...).
/// \p Number must be < NumRegisters.
std::string registerName(unsigned Number);

/// Parses a register name: canonical ABI names, or "r0".."r31". Returns
/// std::nullopt if \p Name is not a register.
std::optional<unsigned> parseRegisterName(std::string_view Name);

} // namespace isa
} // namespace sdt

#endif // STRATAIB_ISA_REGISTERS_H
