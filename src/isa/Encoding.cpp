//===- isa/Encoding.cpp ----------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Encoding.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "isa/Encoding.h"

#include <cassert>

using namespace sdt;
using namespace sdt::isa;

uint32_t sdt::isa::readWordLE(const uint8_t *Bytes) {
  return static_cast<uint32_t>(Bytes[0]) |
         (static_cast<uint32_t>(Bytes[1]) << 8) |
         (static_cast<uint32_t>(Bytes[2]) << 16) |
         (static_cast<uint32_t>(Bytes[3]) << 24);
}

void sdt::isa::writeWordLE(uint8_t *Bytes, uint32_t Word) {
  Bytes[0] = static_cast<uint8_t>(Word);
  Bytes[1] = static_cast<uint8_t>(Word >> 8);
  Bytes[2] = static_cast<uint8_t>(Word >> 16);
  Bytes[3] = static_cast<uint8_t>(Word >> 24);
}

uint32_t sdt::isa::encode(const Instruction &I) {
  uint32_t Word = static_cast<uint32_t>(I.Op) << 26;
  switch (opcodeInfo(I.Op).Form) {
  case Format::R:
    Word |= static_cast<uint32_t>(I.Rd) << 21;
    Word |= static_cast<uint32_t>(I.Rs1) << 16;
    Word |= static_cast<uint32_t>(I.Rs2) << 11;
    break;
  case Format::I:
  case Format::Mem:
    assert(I.Imm >= -32768 && I.Imm <= 0xFFFF && "imm16 out of range");
    Word |= static_cast<uint32_t>(I.Rd) << 21;
    Word |= static_cast<uint32_t>(I.Rs1) << 16;
    Word |= static_cast<uint32_t>(I.Imm) & 0xFFFF;
    break;
  case Format::Lui:
    assert(I.Imm >= 0 && I.Imm <= 0xFFFF && "lui imm out of range");
    Word |= static_cast<uint32_t>(I.Rd) << 21;
    Word |= static_cast<uint32_t>(I.Imm) & 0xFFFF;
    break;
  case Format::B: {
    assert(I.Imm % 4 == 0 && "unaligned branch displacement");
    int32_t WordDisp = I.Imm / 4;
    assert(WordDisp >= -32768 && WordDisp <= 32767 && "branch out of range");
    Word |= static_cast<uint32_t>(I.Rs1) << 21;
    Word |= static_cast<uint32_t>(I.Rs2) << 16;
    Word |= static_cast<uint32_t>(WordDisp) & 0xFFFF;
    break;
  }
  case Format::Jump: {
    uint32_t Target = static_cast<uint32_t>(I.Imm);
    assert(Target % 4 == 0 && "unaligned jump target");
    assert((Target >> 2) < (1u << 26) && "jump target out of range");
    Word |= Target >> 2;
    break;
  }
  case Format::Jr:
    Word |= static_cast<uint32_t>(I.Rs1) << 16;
    break;
  case Format::Jalr:
    Word |= static_cast<uint32_t>(I.Rd) << 21;
    Word |= static_cast<uint32_t>(I.Rs1) << 16;
    break;
  case Format::None:
    break;
  }
  return Word;
}

static int32_t signExtend16(uint32_t V) {
  return static_cast<int32_t>(static_cast<int16_t>(V & 0xFFFF));
}

Expected<Instruction> sdt::isa::decode(uint32_t Word) {
  uint32_t OpField = Word >> 26;
  if (OpField >= static_cast<uint32_t>(Opcode::NumOpcodes))
    return Error::failure("unknown opcode field " + std::to_string(OpField));

  Instruction I;
  I.Op = static_cast<Opcode>(OpField);
  switch (opcodeInfo(I.Op).Form) {
  case Format::R:
    I.Rd = static_cast<uint8_t>((Word >> 21) & 31);
    I.Rs1 = static_cast<uint8_t>((Word >> 16) & 31);
    I.Rs2 = static_cast<uint8_t>((Word >> 11) & 31);
    break;
  case Format::I:
  case Format::Mem:
    I.Rd = static_cast<uint8_t>((Word >> 21) & 31);
    I.Rs1 = static_cast<uint8_t>((Word >> 16) & 31);
    // Logical immediates are zero-extended (so `li` = `lui` + `ori`),
    // everything else is sign-extended.
    if (I.Op == Opcode::Andi || I.Op == Opcode::Ori || I.Op == Opcode::Xori)
      I.Imm = static_cast<int32_t>(Word & 0xFFFF);
    else
      I.Imm = signExtend16(Word);
    break;
  case Format::Lui:
    I.Rd = static_cast<uint8_t>((Word >> 21) & 31);
    I.Imm = static_cast<int32_t>(Word & 0xFFFF);
    break;
  case Format::B:
    I.Rs1 = static_cast<uint8_t>((Word >> 21) & 31);
    I.Rs2 = static_cast<uint8_t>((Word >> 16) & 31);
    I.Imm = signExtend16(Word) * 4;
    break;
  case Format::Jump:
    I.Imm = static_cast<int32_t>((Word & 0x03FFFFFF) << 2);
    break;
  case Format::Jr:
    I.Rs1 = static_cast<uint8_t>((Word >> 16) & 31);
    break;
  case Format::Jalr:
    I.Rd = static_cast<uint8_t>((Word >> 21) & 31);
    I.Rs1 = static_cast<uint8_t>((Word >> 16) & 31);
    break;
  case Format::None:
    break;
  }
  return I;
}
