//===- isa/Instruction.cpp -------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Instruction.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "isa/Instruction.h"

#include <cassert>

using namespace sdt;
using namespace sdt::isa;

uint32_t Instruction::directTarget() const {
  assert(opcodeInfo(Op).Form == Format::Jump && "not a direct jump");
  return static_cast<uint32_t>(Imm);
}

uint32_t Instruction::branchTarget(uint32_t Pc) const {
  assert(opcodeInfo(Op).Form == Format::B && "not a conditional branch");
  return Pc + static_cast<uint32_t>(Imm);
}

static void assertReg(unsigned R) {
  assert(R < NumRegisters && "register out of range");
  (void)R;
}

static bool fitsImm16(int32_t V) { return V >= -32768 && V <= 32767; }

/// Logical immediates (andi/ori/xori) are zero-extended, MIPS-style, so
/// that `li` can expand to `lui` + `ori`.
static bool isLogicalImm(Opcode Op) {
  return Op == Opcode::Andi || Op == Opcode::Ori || Op == Opcode::Xori;
}

Instruction sdt::isa::makeR(Opcode Op, unsigned Rd, unsigned Rs1,
                            unsigned Rs2) {
  assert(opcodeInfo(Op).Form == Format::R && "opcode is not R-format");
  assertReg(Rd);
  assertReg(Rs1);
  assertReg(Rs2);
  Instruction I;
  I.Op = Op;
  I.Rd = static_cast<uint8_t>(Rd);
  I.Rs1 = static_cast<uint8_t>(Rs1);
  I.Rs2 = static_cast<uint8_t>(Rs2);
  return I;
}

Instruction sdt::isa::makeI(Opcode Op, unsigned Rd, unsigned Rs1,
                            int32_t Imm) {
  assert(opcodeInfo(Op).Form == Format::I && "opcode is not I-format");
  assertReg(Rd);
  assertReg(Rs1);
  assert((isLogicalImm(Op) ? (Imm >= 0 && Imm <= 0xFFFF) : fitsImm16(Imm)) &&
         "immediate does not fit in 16 bits");
  Instruction I;
  I.Op = Op;
  I.Rd = static_cast<uint8_t>(Rd);
  I.Rs1 = static_cast<uint8_t>(Rs1);
  I.Imm = Imm;
  return I;
}

Instruction sdt::isa::makeLui(unsigned Rd, int32_t Imm16) {
  assertReg(Rd);
  assert(Imm16 >= 0 && Imm16 <= 0xFFFF && "lui immediate out of range");
  Instruction I;
  I.Op = Opcode::Lui;
  I.Rd = static_cast<uint8_t>(Rd);
  I.Imm = Imm16;
  return I;
}

Instruction sdt::isa::makeMem(Opcode Op, unsigned Reg, unsigned Base,
                              int32_t Offset) {
  assert(opcodeInfo(Op).Form == Format::Mem && "opcode is not Mem-format");
  assertReg(Reg);
  assertReg(Base);
  assert(fitsImm16(Offset) && "memory offset does not fit in 16 bits");
  Instruction I;
  I.Op = Op;
  I.Rd = static_cast<uint8_t>(Reg); // Loaded/stored register.
  I.Rs1 = static_cast<uint8_t>(Base);
  I.Imm = Offset;
  return I;
}

Instruction sdt::isa::makeBranch(Opcode Op, unsigned Rs1, unsigned Rs2,
                                 int32_t ByteDisp) {
  assert(opcodeInfo(Op).Form == Format::B && "opcode is not B-format");
  assertReg(Rs1);
  assertReg(Rs2);
  assert(ByteDisp % 4 == 0 && "branch displacement must be word-aligned");
  assert(fitsImm16(ByteDisp / 4) && "branch displacement out of range");
  Instruction I;
  I.Op = Op;
  I.Rs1 = static_cast<uint8_t>(Rs1);
  I.Rs2 = static_cast<uint8_t>(Rs2);
  I.Imm = ByteDisp;
  return I;
}

Instruction sdt::isa::makeJump(Opcode Op, uint32_t ByteTarget) {
  assert(opcodeInfo(Op).Form == Format::Jump && "opcode is not Jump-format");
  assert(ByteTarget % 4 == 0 && "jump target must be word-aligned");
  assert((ByteTarget >> 2) < (1u << 26) && "jump target out of range");
  Instruction I;
  I.Op = Op;
  I.Imm = static_cast<int32_t>(ByteTarget);
  return I;
}

Instruction sdt::isa::makeJr(unsigned Rs1) {
  assertReg(Rs1);
  Instruction I;
  I.Op = Opcode::Jr;
  I.Rs1 = static_cast<uint8_t>(Rs1);
  return I;
}

Instruction sdt::isa::makeJalr(unsigned Rd, unsigned Rs1) {
  assertReg(Rd);
  assertReg(Rs1);
  Instruction I;
  I.Op = Opcode::Jalr;
  I.Rd = static_cast<uint8_t>(Rd);
  I.Rs1 = static_cast<uint8_t>(Rs1);
  return I;
}

Instruction sdt::isa::makeRet() {
  Instruction I;
  I.Op = Opcode::Ret;
  return I;
}

Instruction sdt::isa::makeSyscall() {
  Instruction I;
  I.Op = Opcode::Syscall;
  return I;
}

Instruction sdt::isa::makeHalt() {
  Instruction I;
  I.Op = Opcode::Halt;
  return I;
}

Instruction sdt::isa::makeNop() {
  return makeR(Opcode::Add, RegZero, RegZero, RegZero);
}
