//===- isa/Serialize.cpp ---------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Serialize.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "isa/Serialize.h"

#include "support/StringUtils.h"

#include <cstring>
#include <fstream>

using namespace sdt;
using namespace sdt::isa;

static constexpr char Magic[4] = {'G', 'I', 'R', 'X'};
static constexpr uint32_t Version = 1;

static void appendU32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

namespace {

/// Bounds-checked little-endian reader.
class Reader {
public:
  explicit Reader(const std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  bool readU32(uint32_t &Out) {
    if (Pos + 4 > Bytes.size())
      return false;
    Out = static_cast<uint32_t>(Bytes[Pos]) |
          (static_cast<uint32_t>(Bytes[Pos + 1]) << 8) |
          (static_cast<uint32_t>(Bytes[Pos + 2]) << 16) |
          (static_cast<uint32_t>(Bytes[Pos + 3]) << 24);
    Pos += 4;
    return true;
  }

  bool readBytes(void *Out, size_t Count) {
    if (Pos + Count > Bytes.size())
      return false;
    std::memcpy(Out, &Bytes[Pos], Count);
    Pos += Count;
    return true;
  }

  bool atEnd() const { return Pos == Bytes.size(); }

private:
  const std::vector<uint8_t> &Bytes;
  size_t Pos = 0;
};

} // namespace

bool sdt::isa::isGxImage(const std::vector<uint8_t> &Bytes) {
  return Bytes.size() >= 4 && std::memcmp(Bytes.data(), Magic, 4) == 0;
}

std::vector<uint8_t> sdt::isa::serializeProgram(const Program &P) {
  std::vector<uint8_t> Out;
  for (char C : Magic)
    Out.push_back(static_cast<uint8_t>(C));
  appendU32(Out, Version);
  appendU32(Out, P.loadAddress());
  appendU32(Out, P.entry());
  appendU32(Out, static_cast<uint32_t>(P.image().size()));
  appendU32(Out, static_cast<uint32_t>(P.symbols().size()));
  Out.insert(Out.end(), P.image().begin(), P.image().end());
  for (const auto &[Name, Addr] : P.symbols()) {
    appendU32(Out, Addr);
    appendU32(Out, static_cast<uint32_t>(Name.size()));
    Out.insert(Out.end(), Name.begin(), Name.end());
  }
  return Out;
}

Expected<Program>
sdt::isa::deserializeProgram(const std::vector<uint8_t> &Bytes) {
  if (!isGxImage(Bytes))
    return Error::failure("not a GX image (bad magic)");
  Reader R(Bytes);
  char Skip[4];
  (void)R.readBytes(Skip, 4);

  uint32_t FileVersion, LoadAddr, Entry, ImageSize, SymCount;
  if (!R.readU32(FileVersion) || !R.readU32(LoadAddr) ||
      !R.readU32(Entry) || !R.readU32(ImageSize) || !R.readU32(SymCount))
    return Error::failure("truncated GX header");
  if (FileVersion != Version)
    return Error::failure(
        formatString("unsupported GX version %u", FileVersion));
  if (ImageSize > (256u << 20))
    return Error::failure("GX image size implausibly large");

  std::vector<uint8_t> Image(ImageSize);
  if (ImageSize != 0 && !R.readBytes(Image.data(), ImageSize))
    return Error::failure("truncated GX image");

  Program P(LoadAddr, std::move(Image));
  P.setEntry(Entry);
  for (uint32_t I = 0; I != SymCount; ++I) {
    uint32_t Addr, Len;
    if (!R.readU32(Addr) || !R.readU32(Len) || Len > 4096)
      return Error::failure("truncated or corrupt GX symbol table");
    std::string Name(Len, '\0');
    if (Len != 0 && !R.readBytes(Name.data(), Len))
      return Error::failure("truncated GX symbol name");
    P.addSymbol(Name, Addr);
  }
  if (!R.atEnd())
    return Error::failure("trailing bytes after GX symbol table");
  return P;
}

Error sdt::isa::writeProgramFile(const std::string &Path,
                                 const Program &P) {
  std::vector<uint8_t> Bytes = serializeProgram(P);
  std::ofstream File(Path, std::ios::binary | std::ios::trunc);
  if (!File)
    return Error::failure("cannot open '" + Path + "' for writing");
  File.write(reinterpret_cast<const char *>(Bytes.data()),
             static_cast<std::streamsize>(Bytes.size()));
  if (!File)
    return Error::failure("write to '" + Path + "' failed");
  return Error();
}

Expected<Program> sdt::isa::readProgramFile(const std::string &Path) {
  std::ifstream File(Path, std::ios::binary);
  if (!File)
    return Error::failure("cannot open '" + Path + "'");
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(File)),
                             std::istreambuf_iterator<char>());
  return deserializeProgram(Bytes);
}
