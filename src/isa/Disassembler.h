//===- isa/Disassembler.h - GIR disassembler --------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders decoded instructions back to assembly text, in the syntax the
/// assembler accepts (round-trippable).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ISA_DISASSEMBLER_H
#define STRATAIB_ISA_DISASSEMBLER_H

#include "isa/Instruction.h"

#include <string>

namespace sdt {
namespace isa {

/// Renders \p I as assembly text. Branch and jump targets print as
/// absolute hex addresses; \p Pc is the instruction's own address, needed
/// to resolve PC-relative branch displacements.
std::string disassemble(const Instruction &I, uint32_t Pc);

} // namespace isa
} // namespace sdt

#endif // STRATAIB_ISA_DISASSEMBLER_H
