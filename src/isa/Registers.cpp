//===- isa/Registers.cpp ---------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Registers.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "isa/Registers.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace sdt;
using namespace sdt::isa;

static const char *const CanonicalNames[NumRegisters] = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0",   "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0",   "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8",   "t9", "k0", "k1", "gp", "sp", "fp", "ra"};

std::string sdt::isa::registerName(unsigned Number) {
  assert(Number < NumRegisters && "register number out of range");
  return CanonicalNames[Number];
}

std::optional<unsigned> sdt::isa::parseRegisterName(std::string_view Name) {
  std::string Lower = toLower(Name);
  for (unsigned I = 0; I != NumRegisters; ++I)
    if (Lower == CanonicalNames[I])
      return I;
  if (Lower.size() >= 2 && Lower[0] == 'r') {
    std::optional<int64_t> Number = parseInteger(Lower.substr(1));
    if (Number && *Number >= 0 && *Number < NumRegisters)
      return static_cast<unsigned>(*Number);
  }
  return std::nullopt;
}
