//===- isa/Serialize.h - Program object-file format --------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small binary object format ("GX") for assembled Programs, so guest
/// binaries can be built once and shipped/loaded without re-assembly:
///
/// \code
///   magic   "GIRX"          4 bytes
///   version u32 (= 1)
///   load    u32             load address
///   entry   u32             entry point
///   imgsize u32             image byte count
///   nsyms   u32             symbol count
///   image   imgsize bytes
///   symbols { addr u32, len u32, name len bytes } x nsyms
/// \endcode
///
/// All integers little-endian.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ISA_SERIALIZE_H
#define STRATAIB_ISA_SERIALIZE_H

#include "isa/Program.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sdt {
namespace isa {

/// Serialises \p P into the GX byte format.
std::vector<uint8_t> serializeProgram(const Program &P);

/// Parses a GX image. Fails on bad magic, unsupported version, or a
/// truncated/corrupt buffer.
Expected<Program> deserializeProgram(const std::vector<uint8_t> &Bytes);

/// Writes \p P to \p Path. Fails on I/O errors.
Error writeProgramFile(const std::string &Path, const Program &P);

/// Reads a GX file.
Expected<Program> readProgramFile(const std::string &Path);

/// True if \p Bytes begins with the GX magic.
bool isGxImage(const std::vector<uint8_t> &Bytes);

} // namespace isa
} // namespace sdt

#endif // STRATAIB_ISA_SERIALIZE_H
