//===- isa/Instruction.h - Decoded GIR instruction --------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decoded instruction record plus typed factory functions that assert
/// operand validity at construction time. The assembler, the reference
/// interpreter, and the SDT translator all operate on this record.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ISA_INSTRUCTION_H
#define STRATAIB_ISA_INSTRUCTION_H

#include "isa/Opcode.h"
#include "isa/Registers.h"

#include <cstdint>

namespace sdt {
namespace isa {

/// A decoded GIR instruction. Field meaning depends on the opcode format;
/// unused fields are zero.
struct Instruction {
  Opcode Op = Opcode::Halt;
  uint8_t Rd = 0;
  uint8_t Rs1 = 0;
  uint8_t Rs2 = 0;
  /// Sign-extended immediate. For Format::Jump this is the absolute target
  /// in bytes; for Format::B it is the PC-relative displacement in bytes
  /// (relative to the branch's own address); for Format::Mem it is the
  /// byte offset.
  int32_t Imm = 0;

  /// Convenience accessors for CTI handling.
  CtiKind ctiKind() const { return opcodeInfo(Op).Cti; }
  bool isCti() const { return ctiKind() != CtiKind::None; }
  bool isIndirect() const { return isIndirectBranch(Op); }

  /// For direct jumps/calls: the absolute byte target.
  uint32_t directTarget() const;

  /// For conditional branches at address \p Pc: the taken target.
  uint32_t branchTarget(uint32_t Pc) const;

  bool operator==(const Instruction &Other) const = default;
};

/// Width of every encoded instruction, in bytes.
inline constexpr uint32_t InstructionSize = 4;

/// \name Factory functions (assert operand validity).
/// @{
Instruction makeR(Opcode Op, unsigned Rd, unsigned Rs1, unsigned Rs2);
Instruction makeI(Opcode Op, unsigned Rd, unsigned Rs1, int32_t Imm);
Instruction makeLui(unsigned Rd, int32_t Imm16);
Instruction makeMem(Opcode Op, unsigned Reg, unsigned Base, int32_t Offset);
Instruction makeBranch(Opcode Op, unsigned Rs1, unsigned Rs2,
                       int32_t ByteDisp);
Instruction makeJump(Opcode Op, uint32_t ByteTarget);
Instruction makeJr(unsigned Rs1);
Instruction makeJalr(unsigned Rd, unsigned Rs1);
Instruction makeRet();
Instruction makeSyscall();
Instruction makeHalt();
Instruction makeNop();
/// @}

} // namespace isa
} // namespace sdt

#endif // STRATAIB_ISA_INSTRUCTION_H
