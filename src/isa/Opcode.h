//===- isa/Opcode.h - GIR opcodes and metadata ------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GIR opcode set and its static metadata table. GIR is a 32-bit RISC
/// guest ISA with fixed 4-byte instructions. Control-transfer instructions
/// are classified the way the paper classifies them: direct branches and
/// jumps (handled by fragment linking), and the three indirect-branch
/// classes whose handling the paper evaluates — indirect jumps (`jr`),
/// indirect calls (`jalr`), and returns (`ret`).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ISA_OPCODE_H
#define STRATAIB_ISA_OPCODE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sdt {
namespace isa {

/// All GIR opcodes. The enumerator value is the 6-bit encoding field.
enum class Opcode : uint8_t {
  // ALU register-register.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Sll,
  Srl,
  Sra,
  Slt,
  Sltu,
  // ALU register-immediate.
  Addi,
  Andi,
  Ori,
  Xori,
  Slti,
  Sltiu,
  Slli,
  Srli,
  Srai,
  Lui,
  // Memory.
  Lw,
  Lh,
  Lhu,
  Lb,
  Lbu,
  Sw,
  Sh,
  Sb,
  // Conditional branches (PC-relative).
  Beq,
  Bne,
  Blt,
  Bge,
  Bltu,
  Bgeu,
  // Direct jumps.
  J,
  Jal,
  // Indirect branches — the paper's subject.
  Jr,   ///< Indirect jump through a register (switch tables, computed goto).
  Jalr, ///< Indirect call through a register (function pointers, vtables).
  Ret,  ///< Return: jump to the link register r31.
  // System.
  Syscall,
  Halt,

  NumOpcodes,
};

/// Operand layout of an instruction.
enum class Format : uint8_t {
  R,    ///< rd, rs1, rs2
  I,    ///< rd, rs1, imm16 (sign-extended; shifts use the low 5 bits)
  Lui,  ///< rd, imm16 (placed in the upper half)
  Mem,  ///< rd/rs2, imm16(rs1)
  B,    ///< rs1, rs2, imm16 (PC-relative, in instruction units)
  Jump, ///< imm26 (absolute, in instruction units)
  Jr,   ///< rs1
  Jalr, ///< rd, rs1
  None, ///< no operands (ret, syscall, halt)
};

/// How an instruction transfers control, if at all. Fragment formation and
/// IB-handler selection in the SDT key off this.
enum class CtiKind : uint8_t {
  None,         ///< Falls through.
  CondBranch,   ///< Two-way PC-relative branch.
  DirectJump,   ///< `j target`.
  DirectCall,   ///< `jal target` (writes r31).
  IndirectJump, ///< `jr rs1`.
  IndirectCall, ///< `jalr rd, rs1` (writes rd, usually r31).
  Return,       ///< `ret` (jumps to r31).
  Stop,         ///< `halt` or `syscall` that may terminate.
};

/// Static description of an opcode.
struct OpcodeInfo {
  const char *Mnemonic;
  Format Form;
  CtiKind Cti;
};

/// Returns the metadata for \p Op.
const OpcodeInfo &opcodeInfo(Opcode Op);

/// Returns the mnemonic for \p Op.
std::string_view opcodeMnemonic(Opcode Op);

/// Parses a mnemonic (lower case). Returns std::nullopt for unknown names.
std::optional<Opcode> parseMnemonic(std::string_view Name);

/// True if \p Op ends a fragment (any control transfer or stop).
bool isControlTransfer(Opcode Op);

/// True if \p Op is one of the three indirect-branch classes.
bool isIndirectBranch(Opcode Op);

} // namespace isa
} // namespace sdt

#endif // STRATAIB_ISA_OPCODE_H
