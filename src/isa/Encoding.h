//===- isa/Encoding.h - GIR binary encoding ---------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary encoding of GIR instructions into 32-bit little-endian words.
///
/// Layout (bit 31 is the MSB):
///   [31:26] opcode
///   R:    [25:21] rd  [20:16] rs1 [15:11] rs2
///   I/Mem:[25:21] rd  [20:16] rs1 [15:0]  imm16
///   Lui:  [25:21] rd  [15:0]  imm16
///   B:    [25:21] rs1 [20:16] rs2 [15:0]  imm16 (word displacement)
///   Jump: [25:0]  imm26 (word address)
///   Jr:   [20:16] rs1
///   Jalr: [25:21] rd  [20:16] rs1
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ISA_ENCODING_H
#define STRATAIB_ISA_ENCODING_H

#include "isa/Instruction.h"
#include "support/Error.h"

#include <cstdint>

namespace sdt {
namespace isa {

/// Encodes \p I into a 32-bit word. Operands must be in range (asserted).
uint32_t encode(const Instruction &I);

/// Decodes \p Word. Fails on unknown opcodes; all operand fields decode to
/// in-range values by construction.
Expected<Instruction> decode(uint32_t Word);

/// Reads a little-endian 32-bit word from \p Bytes.
uint32_t readWordLE(const uint8_t *Bytes);

/// Writes \p Word little-endian into \p Bytes.
void writeWordLE(uint8_t *Bytes, uint32_t Word);

} // namespace isa
} // namespace sdt

#endif // STRATAIB_ISA_ENCODING_H
