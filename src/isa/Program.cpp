//===- isa/Program.cpp -----------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Program.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "isa/Program.h"

#include "isa/Encoding.h"
#include "support/StringUtils.h"

using namespace sdt;
using namespace sdt::isa;

Expected<Instruction> Program::fetch(uint32_t Addr) const {
  if (Addr % InstructionSize != 0)
    return Error::failure(
        formatString("unaligned instruction fetch at 0x%x", Addr));
  if (!contains(Addr, InstructionSize))
    return Error::failure(
        formatString("instruction fetch outside image at 0x%x", Addr));
  uint32_t Word = readWordLE(&Image[Addr - LoadAddr]);
  return decode(Word);
}

Expected<uint32_t> Program::symbol(const std::string &Name) const {
  auto It = Symbols.find(Name);
  if (It == Symbols.end())
    return Error::failure("undefined symbol '" + Name + "'");
  return It->second;
}
