//===- service/SnapshotStore.h - Retained warm-state store -------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server-side home for retained warm state: one encoded snapshot
/// blob per tenant, replaced on every retained session and dropped when
/// the arbiter reclaims the tenant's reservation. Mutated only on the
/// server's control thread (admission order), so it needs no locking —
/// workers receive blob *copies*.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_SERVICE_SNAPSHOTSTORE_H
#define STRATAIB_SERVICE_SNAPSHOTSTORE_H

#include <cstdint>
#include <map>
#include <vector>

namespace sdt {
namespace service {

/// Per-tenant snapshot blobs with their warm-state footprints.
class SnapshotStore {
public:
  /// Stores (or replaces) \p Tenant's snapshot. \p CacheBytes is the
  /// simulated cache footprint the snapshot rehydrates to — the quantity
  /// the arbiter accounts as retained.
  void store(uint32_t Tenant, std::vector<uint8_t> Blob,
             uint32_t CacheBytes) {
    Entry &E = Entries[Tenant];
    E.Blob = std::move(Blob);
    E.CacheBytes = CacheBytes;
  }

  /// The tenant's blob, or null when nothing is retained.
  const std::vector<uint8_t> *lookup(uint32_t Tenant) const {
    auto It = Entries.find(Tenant);
    return It == Entries.end() ? nullptr : &It->second.Blob;
  }

  /// Warm-state footprint of the tenant's snapshot (0 when none).
  uint32_t cacheBytes(uint32_t Tenant) const {
    auto It = Entries.find(Tenant);
    return It == Entries.end() ? 0 : It->second.CacheBytes;
  }

  void drop(uint32_t Tenant) { Entries.erase(Tenant); }

  size_t count() const { return Entries.size(); }

  /// Host-side bytes held by stored blobs (observability only; budget
  /// accounting uses the simulated CacheBytes, not blob sizes).
  uint64_t storedBlobBytes() const {
    uint64_t Total = 0;
    for (const auto &[Tenant, E] : Entries)
      Total += E.Blob.size();
    return Total;
  }

private:
  struct Entry {
    std::vector<uint8_t> Blob;
    uint32_t CacheBytes = 0;
  };
  std::map<uint32_t, Entry> Entries;
};

} // namespace service
} // namespace sdt

#endif // STRATAIB_SERVICE_SNAPSHOTSTORE_H
