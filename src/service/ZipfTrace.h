//===- service/ZipfTrace.h - Tenant-popularity traces ------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic Zipfian tenant-popularity traces: tenant k (0-based)
/// is drawn with weight 1/(k+1)^s, the classic skew model for service
/// request streams. s arrives in integer hundredths (the STRATAIB_ZIPF_S
/// knob; 120 means s = 1.20) because the env layer parses integers only.
/// Seeded with support::Rng, so the same (tenants, length, s, seed)
/// always produces the same trace — the experiment compares arbiter
/// modes on an identical admission sequence.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_SERVICE_ZIPFTRACE_H
#define STRATAIB_SERVICE_ZIPFTRACE_H

#include <cstdint>
#include <vector>

namespace sdt {
namespace service {

/// \p SHundredths is the Zipf exponent in hundredths (0 = uniform).
std::vector<uint32_t> zipfTrace(uint32_t NumTenants, uint32_t Length,
                                uint32_t SHundredths, uint64_t Seed);

} // namespace service
} // namespace sdt

#endif // STRATAIB_SERVICE_ZIPFTRACE_H
