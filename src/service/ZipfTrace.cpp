//===- service/ZipfTrace.cpp -----------------------------------*- C++ -*-===//
//
// Part of StrataIB. See ZipfTrace.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "service/ZipfTrace.h"

#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace sdt;

std::vector<uint32_t> sdt::service::zipfTrace(uint32_t NumTenants,
                                              uint32_t Length,
                                              uint32_t SHundredths,
                                              uint64_t Seed) {
  assert(NumTenants > 0 && "trace needs at least one tenant");
  double S = SHundredths / 100.0;

  // Cumulative weights; the total is folded in by sampling against
  // Cdf.back(). Draws use a 53-bit uniform in [0,1), the full precision
  // a double mantissa holds.
  std::vector<double> Cdf(NumTenants);
  double Total = 0.0;
  for (uint32_t K = 0; K != NumTenants; ++K) {
    Total += std::pow(1.0 / (K + 1), S);
    Cdf[K] = Total;
  }

  sdt::Rng Rng(Seed);
  std::vector<uint32_t> Trace(Length);
  for (uint32_t I = 0; I != Length; ++I) {
    double U = static_cast<double>(Rng.next() >> 11) * 0x1.0p-53 * Total;
    uint32_t K = 0;
    while (K + 1 < NumTenants && Cdf[K] <= U)
      ++K;
    Trace[I] = K;
  }
  return Trace;
}
