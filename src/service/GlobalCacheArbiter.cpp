//===- service/GlobalCacheArbiter.cpp --------------------------*- C++ -*-===//
//
// Part of StrataIB. See GlobalCacheArbiter.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "service/GlobalCacheArbiter.h"

#include <algorithm>
#include <cassert>

using namespace sdt;
using namespace sdt::service;

const char *sdt::service::arbiterModeName(ArbiterMode M) {
  return M == ArbiterMode::Isolation ? "isolation" : "shared";
}

GlobalCacheArbiter::GlobalCacheArbiter(const Config &C) : Cfg(C) {
  assert(Cfg.MaxTenants > 0 && "arbiter needs at least one tenant slot");
  assert(Cfg.MinGrantBytes > 0 && "grant floor must be positive");
}

uint32_t GlobalCacheArbiter::sliceBytes() const {
  return std::max(Cfg.BudgetBytes / Cfg.MaxTenants, Cfg.MinGrantBytes);
}

uint64_t GlobalCacheArbiter::reclaimFor(uint32_t Tenant, uint64_t NeededBytes,
                                        std::vector<Reclaim> &Out) {
  uint64_t Free = static_cast<uint64_t>(Cfg.BudgetBytes) >=
                          static_cast<uint64_t>(Inflight) + Retained
                      ? Cfg.BudgetBytes - Inflight - Retained
                      : 0;
  while (Free < NeededBytes) {
    // Least-recently-active victim with retained state; never the
    // admitting tenant, never a tenant with sessions in flight (its warm
    // state is about to be refreshed anyway). Ties break toward the
    // lowest tenant id (map order), keeping the walk deterministic.
    TenantAcct *Victim = nullptr;
    uint32_t VictimId = 0;
    for (auto &[Id, Acct] : Tenants) {
      if (Id == Tenant || Acct.RetainedBytes == 0 ||
          Acct.InflightSessions != 0)
        continue;
      if (!Victim || Acct.LastActive < Victim->LastActive) {
        Victim = &Acct;
        VictimId = Id;
      }
    }
    if (!Victim)
      break;
    Out.push_back({VictimId, Victim->RetainedBytes});
    Free += Victim->RetainedBytes;
    Retained -= Victim->RetainedBytes;
    Victim->RetainedBytes = 0;
    ++Reclaims;
  }
  return Free;
}

GlobalCacheArbiter::Admission GlobalCacheArbiter::admit(uint32_t Tenant,
                                                        uint32_t RequestBytes) {
  TenantAcct &Acct = Tenants[Tenant];
  Acct.LastActive = ++Stamp;
  ++Acct.InflightSessions;
  ++InflightSessions;

  // The tenant's retained reservation is consumed by this admission: the
  // snapshot's bytes move into the session's granted cache (the server
  // keeps the blob around for the decode). The session re-reserves via
  // retain() when it completes — or loses the warm state if that is
  // refused, so the reservation never double-counts against the grant.
  Retained -= Acct.RetainedBytes;
  Acct.RetainedBytes = 0;

  Admission A;
  if (Cfg.Mode == ArbiterMode::Isolation) {
    // The tenant lives in its own slice; the slice also hosts its
    // retained snapshot, so no cross-tenant interaction ever happens.
    A.GrantBytes =
        std::max(std::min(RequestBytes, sliceBytes()), Cfg.MinGrantBytes);
  } else {
    uint64_t Want = std::max(std::min(RequestBytes, Cfg.BudgetBytes),
                             Cfg.MinGrantBytes);
    uint64_t Free = reclaimFor(Tenant, Want, A.Reclaimed);
    A.GrantBytes = static_cast<uint32_t>(
        std::max<uint64_t>(std::min(Want, Free), Cfg.MinGrantBytes));
  }
  Inflight += A.GrantBytes;
  return A;
}

void GlobalCacheArbiter::sessionDone(uint32_t Tenant, uint32_t GrantBytes) {
  auto It = Tenants.find(Tenant);
  assert(It != Tenants.end() && It->second.InflightSessions > 0 &&
         "sessionDone without admit");
  --It->second.InflightSessions;
  --InflightSessions;
  assert(Inflight >= GrantBytes && "releasing more than granted");
  Inflight -= GrantBytes;
}

GlobalCacheArbiter::Retention GlobalCacheArbiter::retain(uint32_t Tenant,
                                                         uint32_t CacheBytes) {
  Retention R;
  if (CacheBytes == 0)
    return R;
  TenantAcct &Acct = Tenants[Tenant];

  if (Cfg.Mode == ArbiterMode::Isolation) {
    // Must fit the tenant's own slice; nobody else is affected.
    if (CacheBytes > sliceBytes())
      return R;
    Retained = Retained - Acct.RetainedBytes + CacheBytes;
    Acct.RetainedBytes = CacheBytes;
    R.Accepted = true;
    return R;
  }

  // The tenant's previous reservation is being replaced, so it does not
  // count against the space the new one needs.
  uint64_t Needed = CacheBytes > Acct.RetainedBytes
                        ? static_cast<uint64_t>(CacheBytes) -
                              Acct.RetainedBytes
                        : 0;
  uint64_t Free = reclaimFor(Tenant, Needed, R.Reclaimed);
  if (Free < Needed)
    return R; // Refused; the caller discards the unreservable blob.
  Retained = Retained - Acct.RetainedBytes + CacheBytes;
  Acct.RetainedBytes = CacheBytes;
  R.Accepted = true;
  return R;
}

void GlobalCacheArbiter::dropRetained(uint32_t Tenant) {
  auto It = Tenants.find(Tenant);
  if (It == Tenants.end())
    return;
  Retained -= It->second.RetainedBytes;
  It->second.RetainedBytes = 0;
}

uint32_t GlobalCacheArbiter::retainedBytes(uint32_t Tenant) const {
  auto It = Tenants.find(Tenant);
  return It == Tenants.end() ? 0 : It->second.RetainedBytes;
}

bool GlobalCacheArbiter::invariantHolds() const {
  if (Cfg.Mode == ArbiterMode::Isolation) {
    // Isolation enforces the budget per slice, not globally: every grant
    // and every retained reservation fits its tenant's slice, and a
    // tenant running K concurrent sessions holds K slices.
    uint32_t Slice = sliceBytes();
    for (const auto &[Id, Acct] : Tenants)
      if (Acct.RetainedBytes > Slice)
        return false;
    return Inflight <= static_cast<uint64_t>(InflightSessions) * Slice &&
           Retained <= static_cast<uint64_t>(Cfg.MaxTenants) * Slice;
  }
  // Shared budget: one pool for grants + retained state, overshooting
  // only by the per-session MinGrantBytes floor.
  return static_cast<uint64_t>(Inflight) + Retained <=
         static_cast<uint64_t>(Cfg.BudgetBytes) +
             static_cast<uint64_t>(InflightSessions) * Cfg.MinGrantBytes;
}
