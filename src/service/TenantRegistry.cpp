//===- service/TenantRegistry.cpp ------------------------------*- C++ -*-===//
//
// Part of StrataIB. See TenantRegistry.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "service/TenantRegistry.h"

#include "service/Snapshot.h"

using namespace sdt;
using namespace sdt::service;

TenantRecord &TenantRegistry::add(std::string Name, isa::Program P,
                                  const core::SdtOptions &Opts,
                                  const arch::MachineModel &Model,
                                  uint32_t RequestBytes,
                                  std::string PluginSpec) {
  TenantRecord &R = Records.emplace_back();
  R.Id = static_cast<uint32_t>(Records.size() - 1);
  R.Name = std::move(Name);
  R.Program = std::move(P);
  R.Opts = Opts;
  R.Model = Model;
  R.PluginSpec = std::move(PluginSpec);
  R.RequestBytes = RequestBytes;
  R.OptionsFp = optionsFingerprint(Opts);
  R.ProgramFp = programFingerprint(R.Program);
  return R;
}
