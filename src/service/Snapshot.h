//===- service/Snapshot.h - Warm-start snapshot codec ------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of a finished session's warm state — the fragment
/// cache's guest entry points plus the shared-table IBTC mappings — into
/// a self-validating blob, following the src/isa/Serialize.cpp idiom:
/// fixed magic, explicit little-endian words, version gate, and typed
/// Expected<> errors from a bounds-checked reader. The snapshot layer
/// adds an endianness guard and a trailing checksum so a corrupted or
/// foreign blob degrades to a diagnostic + cold start, never to a crash.
///
/// Blob layout (all words little-endian unless noted):
///   bytes 0..3   magic "SIBS"
///   u32          endianness marker: 0x01020304 in *native* byte order
///   u32          format version (currently 1)
///   u32          options fingerprint (over SdtOptions::describe())
///   u32          program fingerprint (image + entry + load address)
///   u32          cache bytes at snapshot time (the warm-state footprint
///                the arbiter accounts as retained)
///   u32          fragment count N
///   u32          shared-target count M
///   N x u32      fragment guest entry pcs, allocation order
///   M x (u32,u32) shared-table mappings: handler index, guest target
///   u32          FNV-1a checksum over every preceding byte
///
/// Only state keyed by guest addresses is snapshotted: fragment code is
/// re-emitted deterministically from the guest image at rehydration
/// (charged as a cheap SnapshotLoad bulk install, not a full Translate),
/// and per-site tables / sieve stubs / inline-cache slots — keyed by
/// site ids and stub addresses that are not stable across engine
/// lifetimes — rebuild cold.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_SERVICE_SNAPSHOT_H
#define STRATAIB_SERVICE_SNAPSHOT_H

#include "core/SdtEngine.h"
#include "support/Error.h"

#include <cstdint>
#include <vector>

namespace sdt {
namespace service {

inline constexpr uint32_t SnapshotVersion = 1;

/// Fingerprint of the options a snapshot was taken under. A snapshot
/// only rehydrates into an engine with the identical configuration.
uint32_t optionsFingerprint(const core::SdtOptions &Opts);

/// Fingerprint of the guest program (image bytes + entry + load
/// address). Guards against rehydrating one program's warm state into
/// another program that happens to share a tenant name.
uint32_t programFingerprint(const isa::Program &P);

/// A decoded snapshot: the prewarm image plus the warm-state footprint
/// recorded at encode time.
struct SnapshotInfo {
  uint32_t CacheBytes = 0;
  core::PrewarmImage Image;
};

/// Serializes \p Engine's warm state (call after run()). \p ProgramFp
/// is the fingerprint of the program the engine ran (the engine itself
/// does not retain it).
std::vector<uint8_t> encodeSnapshot(core::SdtEngine &Engine,
                                    uint32_t ProgramFp);

/// Validates and decodes \p Blob. Every defect — bad magic, foreign
/// endianness, unsupported version, fingerprint mismatch, truncation,
/// checksum failure — returns a typed error; the caller logs it and
/// starts cold.
Expected<SnapshotInfo> decodeSnapshot(const std::vector<uint8_t> &Blob,
                                      uint32_t OptionsFp, uint32_t ProgramFp);

} // namespace service
} // namespace sdt

#endif // STRATAIB_SERVICE_SNAPSHOT_H
