//===- service/EngineServer.h - Multi-tenant SDT server ----------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation-as-a-service: a long-lived server that admits guest
/// sessions (program + workload + mechanism config) from many tenants
/// over one shared host. Per-session SdtEngine instances run on a
/// support::ThreadPool; a GlobalCacheArbiter keeps the sum of all
/// in-flight fragment caches plus retained warm state under one global
/// budget; a SnapshotStore retains each tenant's warm state (fragment
/// entries + shared IBTC mappings, Snapshot.h) and rehydrates it on the
/// tenant's next admission.
///
/// Admission lifecycle (docs/Service.md):
///   admit -> [reclaim LRA warm state] -> grant -> [decode snapshot]
///         -> run on worker -> complete -> [retain new snapshot]
///
/// Determinism contract: every accounting decision (grants, reclaims,
/// retention) happens on the control thread in admission order, and a
/// session is admitted only after the session AdmissionWindow places
/// ahead of it has *completed* — so results depend on the configured
/// window, never on the worker count. STRATAIB_JOBS changes wall time
/// only; cycle counts are bit-identical for any job count (pinned by a
/// ctest, race-clean under TSan).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_SERVICE_ENGINESERVER_H
#define STRATAIB_SERVICE_ENGINESERVER_H

#include "core/SdtEngine.h"
#include "service/GlobalCacheArbiter.h"
#include "service/SnapshotStore.h"
#include "service/TenantRegistry.h"
#include "trace/TraceExport.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace sdt {
namespace service {

struct ServerConfig {
  ArbiterMode Mode = ArbiterMode::SharedBudget;
  /// The global budget covering all in-flight caches + retained warm
  /// state (STRATAIB_GLOBAL_CACHE_BYTES).
  uint32_t GlobalCacheBytes = 1u << 20;
  /// Isolation-slice denominator and admission-window upper bound.
  uint32_t MaxTenants = 8;
  uint32_t MinGrantBytes = 4096;
  /// Retain warm state and rehydrate it on re-admission
  /// (STRATAIB_WARM_START).
  bool WarmStart = true;
  /// Worker threads executing sessions. Affects wall time only, never
  /// results (see the determinism contract above).
  unsigned Workers = 1;
  /// Sessions that may be in flight at once — the *accounting* window.
  /// Part of the server configuration, so results are reproducible
  /// regardless of STRATAIB_JOBS. Clamped to [1, MaxTenants].
  unsigned AdmissionWindow = 4;
  /// Per-session guest instruction budget (0 = engine default).
  uint64_t MaxInstructions = 0;
};

/// Everything observable about one completed session.
struct SessionResult {
  uint32_t Tenant = 0;
  bool Warm = false;          ///< Started from a rehydrated snapshot.
  uint32_t GrantBytes = 0;
  uint64_t TotalCycles = 0;
  std::array<uint64_t,
             static_cast<size_t>(arch::CycleCategory::NumCategories)>
      CyclesByCategory{};
  core::SdtStats Stats;
  vm::RunResult Run;
  /// Non-empty when the engine could not be built (the session did not
  /// run; Run is default-initialized).
  std::string EngineError;
  /// Non-empty when a retained snapshot was rejected at admission (the
  /// session started cold; the diagnostic names the defect).
  std::string SnapshotError;
  /// The tenant's plugin spec ("" when uninstrumented) and the session's
  /// end-of-run plugin metrics, keys "<plugin>.<metric>".
  std::string PluginSpec;
  std::vector<std::pair<std::string, uint64_t>> PluginMetrics;
};

class EngineServer {
public:
  explicit EngineServer(const ServerConfig &C);

  const ServerConfig &config() const { return Cfg; }

  /// Registers a tenant (before runTrace). \p RequestBytes is the cache
  /// capacity each of its sessions requests from the arbiter.
  /// \p PluginSpec attaches instrumentation plugins to every session of
  /// this tenant (a fresh plugin::PluginManager per session — tenants
  /// never share plugin state); an invalid spec surfaces as
  /// SessionResult::EngineError at run time. Trace-enabled
  /// configurations run fine but are never snapshotted (trace fragments
  /// do not rehydrate deterministically), so their sessions always start
  /// cold.
  uint32_t registerTenant(std::string Name, isa::Program P,
                          const core::SdtOptions &Opts,
                          const arch::MachineModel &Model,
                          uint32_t RequestBytes,
                          std::string PluginSpec = "");

  /// Runs one session per entry of \p TenantTrace (tenant ids in
  /// admission order). Returns results in trace order.
  std::vector<SessionResult> runTrace(const std::vector<uint32_t> &TenantTrace);

  GlobalCacheArbiter &arbiter() { return Arb; }
  const GlobalCacheArbiter &arbiter() const { return Arb; }
  TenantRegistry &registry() { return Reg; }
  SnapshotStore &snapshots() { return Store; }

  /// Attaches a control-thread-only sink: the server records
  /// tenant-admit / tenant-evict / snapshot-save / snapshot-load events
  /// on it (never from workers; per-session engines run untraced).
  void setTraceSink(trace::TraceSink *S) { Sink = S; }

  /// Reconciliation expectations for the server's own trace (the four
  /// service counters; everything engine-level is zero because no
  /// engine events are recorded on the server sink).
  trace::StatsExpectation expectations() const;

private:
  struct WorkerOutput {
    SessionResult Result;
    std::vector<uint8_t> SnapshotBlob; ///< Empty when not snapshotted.
    uint32_t SnapshotCacheBytes = 0;
  };

  WorkerOutput runSession(const TenantRecord &T, uint32_t GrantBytes,
                          bool Warm, core::PrewarmImage Image) const;

  void emit(trace::EventKind K, uint32_t A, uint32_t B);

  ServerConfig Cfg;
  GlobalCacheArbiter Arb;
  TenantRegistry Reg;
  SnapshotStore Store;
  trace::TraceSink *Sink = nullptr;

  // Service counters (control thread; mirrored into expectations()).
  uint64_t TenantAdmissions = 0;
  uint64_t TenantEvictions = 0;
  uint64_t SnapshotSaves = 0;
  uint64_t SnapshotLoads = 0;
};

} // namespace service
} // namespace sdt

#endif // STRATAIB_SERVICE_ENGINESERVER_H
