//===- service/Snapshot.cpp ------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Snapshot.h for the interface and blob layout.
//
//===----------------------------------------------------------------------===//

#include "service/Snapshot.h"

#include "support/StringUtils.h"

#include <cstring>

using namespace sdt;
using namespace sdt::service;

namespace {

constexpr char Magic[4] = {'S', 'I', 'B', 'S'};
constexpr uint32_t EndianMarker = 0x01020304;

void appendU32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

/// The endianness guard is the one word written in *native* byte order:
/// a blob moved to an opposite-endian host decodes it as 0x04030201.
void appendNativeU32(std::vector<uint8_t> &Out, uint32_t V) {
  uint8_t Raw[4];
  std::memcpy(Raw, &V, 4);
  Out.insert(Out.end(), Raw, Raw + 4);
}

uint32_t fnv1a(const uint8_t *Data, size_t Size) {
  uint32_t Hash = 2166136261u;
  for (size_t I = 0; I != Size; ++I) {
    Hash ^= Data[I];
    Hash *= 16777619u;
  }
  return Hash;
}

/// Bounds-checked little-endian reader (the Serialize.cpp idiom).
class Reader {
public:
  Reader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  bool readU32(uint32_t &V) {
    if (Size - Pos < 4)
      return false;
    V = static_cast<uint32_t>(Data[Pos]) |
        (static_cast<uint32_t>(Data[Pos + 1]) << 8) |
        (static_cast<uint32_t>(Data[Pos + 2]) << 16) |
        (static_cast<uint32_t>(Data[Pos + 3]) << 24);
    Pos += 4;
    return true;
  }

  bool readNativeU32(uint32_t &V) {
    if (Size - Pos < 4)
      return false;
    std::memcpy(&V, Data + Pos, 4);
    Pos += 4;
    return true;
  }

  bool readBytes(uint8_t *Out, size_t N) {
    if (Size - Pos < N)
      return false;
    std::memcpy(Out, Data + Pos, N);
    Pos += N;
    return true;
  }

  size_t pos() const { return Pos; }
  bool atEnd() const { return Pos == Size; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
};

} // namespace

uint32_t sdt::service::optionsFingerprint(const core::SdtOptions &Opts) {
  std::string D = Opts.describe();
  return fnv1a(reinterpret_cast<const uint8_t *>(D.data()), D.size());
}

uint32_t sdt::service::programFingerprint(const isa::Program &P) {
  uint32_t Hash = fnv1a(P.image().data(), P.image().size());
  uint8_t Tail[8];
  uint32_t Entry = P.entry();
  uint32_t Load = P.loadAddress();
  std::memcpy(Tail, &Entry, 4);
  std::memcpy(Tail + 4, &Load, 4);
  // Fold entry + load address on top of the image hash.
  Hash ^= fnv1a(Tail, 8);
  return Hash;
}

std::vector<uint8_t> sdt::service::encodeSnapshot(core::SdtEngine &Engine,
                                                  uint32_t ProgramFp) {
  core::FragmentCache &Cache = Engine.fragmentCache();

  std::vector<uint32_t> Entries;
  for (uint32_t I = 0; I != Cache.fragmentCount(); ++I) {
    if (!Cache.isLive(I))
      continue;
    uint32_t GuestEntry = Cache.fragment(I).GuestEntry;
    // Only fragments the guest map still points at are worth carrying
    // (a retired trace head's original fragment would re-translate into
    // something else anyway).
    if (Cache.lookup(GuestEntry).Frag == I)
      Entries.push_back(GuestEntry);
  }

  std::vector<core::PrewarmImage::SharedTarget> Targets;
  std::vector<core::IBHandler *> Hs = Engine.allHandlers();
  for (uint32_t H = 0; H != Hs.size(); ++H) {
    std::vector<uint32_t> GuestTargets;
    Hs[H]->exportSharedTargets(GuestTargets);
    for (uint32_t T : GuestTargets)
      Targets.push_back({H, T});
  }

  std::vector<uint8_t> Blob;
  Blob.insert(Blob.end(), Magic, Magic + 4);
  appendNativeU32(Blob, EndianMarker);
  appendU32(Blob, SnapshotVersion);
  appendU32(Blob, optionsFingerprint(Engine.options()));
  appendU32(Blob, ProgramFp);
  appendU32(Blob, Cache.usedBytes());
  appendU32(Blob, static_cast<uint32_t>(Entries.size()));
  appendU32(Blob, static_cast<uint32_t>(Targets.size()));
  for (uint32_t E : Entries)
    appendU32(Blob, E);
  for (const core::PrewarmImage::SharedTarget &T : Targets) {
    appendU32(Blob, T.HandlerIndex);
    appendU32(Blob, T.GuestTarget);
  }
  appendU32(Blob, fnv1a(Blob.data(), Blob.size()));
  return Blob;
}

Expected<SnapshotInfo>
sdt::service::decodeSnapshot(const std::vector<uint8_t> &Blob,
                             uint32_t OptionsFp, uint32_t ProgramFp) {
  if (Blob.size() < 4 || std::memcmp(Blob.data(), Magic, 4) != 0)
    return Error::failure("not a snapshot (bad magic)");
  if (Blob.size() < 4 + 4)
    return Error::failure("truncated snapshot header");
  // Everything before the trailing checksum word must hash to it.
  if (Blob.size() < 4 + 4 + 4)
    return Error::failure("truncated snapshot header");
  Reader Tail(Blob.data() + Blob.size() - 4, 4);
  uint32_t Checksum = 0;
  Tail.readU32(Checksum);
  if (fnv1a(Blob.data(), Blob.size() - 4) != Checksum)
    return Error::failure("snapshot checksum mismatch (corrupt)");

  Reader R(Blob.data() + 4, Blob.size() - 8); // Skip magic and checksum.
  uint32_t Endian = 0;
  uint32_t Version = 0;
  uint32_t OFp = 0;
  uint32_t PFp = 0;
  SnapshotInfo Info;
  uint32_t NumEntries = 0;
  uint32_t NumTargets = 0;
  if (!R.readNativeU32(Endian) || !R.readU32(Version) || !R.readU32(OFp) ||
      !R.readU32(PFp) || !R.readU32(Info.CacheBytes) ||
      !R.readU32(NumEntries) || !R.readU32(NumTargets))
    return Error::failure("truncated snapshot header");
  if (Endian != EndianMarker)
    return Error::failure("snapshot endianness mismatch (foreign host)");
  if (Version != SnapshotVersion)
    return Error::failure(
        formatString("unsupported snapshot version %u", Version));
  if (OFp != OptionsFp)
    return Error::failure("snapshot was taken under a different "
                          "engine configuration");
  if (PFp != ProgramFp)
    return Error::failure("snapshot belongs to a different program");

  Info.Image.FragmentEntries.reserve(NumEntries);
  for (uint32_t I = 0; I != NumEntries; ++I) {
    uint32_t E = 0;
    if (!R.readU32(E))
      return Error::failure("truncated snapshot fragment table");
    Info.Image.FragmentEntries.push_back(E);
  }
  Info.Image.SharedTargets.reserve(NumTargets);
  for (uint32_t I = 0; I != NumTargets; ++I) {
    core::PrewarmImage::SharedTarget T;
    if (!R.readU32(T.HandlerIndex) || !R.readU32(T.GuestTarget))
      return Error::failure("truncated snapshot target table");
    Info.Image.SharedTargets.push_back(T);
  }
  if (!R.atEnd())
    return Error::failure("snapshot has trailing garbage");
  return Info;
}
