//===- service/EngineServer.cpp --------------------------------*- C++ -*-===//
//
// Part of StrataIB. See EngineServer.h for the interface and the
// determinism contract.
//
//===----------------------------------------------------------------------===//

#include "service/EngineServer.h"

#include "plugin/PluginManager.h"
#include "service/Snapshot.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <deque>
#include <future>
#include <utility>

using namespace sdt;
using namespace sdt::service;

static GlobalCacheArbiter::Config arbiterConfig(const ServerConfig &C) {
  GlobalCacheArbiter::Config A;
  A.Mode = C.Mode;
  A.BudgetBytes = C.GlobalCacheBytes;
  A.MaxTenants = C.MaxTenants;
  A.MinGrantBytes = C.MinGrantBytes;
  return A;
}

EngineServer::EngineServer(const ServerConfig &C) : Cfg(C), Arb(arbiterConfig(C)) {
  if (Cfg.MaxTenants == 0)
    Cfg.MaxTenants = 1;
  if (Cfg.Workers == 0)
    Cfg.Workers = 1;
  if (Cfg.AdmissionWindow == 0)
    Cfg.AdmissionWindow = 1;
  if (Cfg.AdmissionWindow > Cfg.MaxTenants)
    Cfg.AdmissionWindow = Cfg.MaxTenants;
}

uint32_t EngineServer::registerTenant(std::string Name, isa::Program P,
                                      const core::SdtOptions &Opts,
                                      const arch::MachineModel &Model,
                                      uint32_t RequestBytes,
                                      std::string PluginSpec) {
  return Reg
      .add(std::move(Name), std::move(P), Opts, Model, RequestBytes,
           std::move(PluginSpec))
      .Id;
}

void EngineServer::emit(trace::EventKind K, uint32_t A, uint32_t B) {
  if (Sink)
    Sink->record(K, A, B);
}

EngineServer::WorkerOutput
EngineServer::runSession(const TenantRecord &T, uint32_t GrantBytes, bool Warm,
                         core::PrewarmImage Image) const {
  WorkerOutput Out;
  SessionResult &R = Out.Result;
  R.Tenant = T.Id;
  R.Warm = Warm;
  R.GrantBytes = GrantBytes;

  arch::TimingModel Timing(T.Model);
  vm::ExecOptions Exec;
  Exec.Timing = &Timing;
  if (Cfg.MaxInstructions != 0)
    Exec.MaxInstructions = Cfg.MaxInstructions;

  core::SdtOptions Opts = T.Opts;
  Opts.FragmentCacheBytes = GrantBytes;
  // Route every capacity decision through the arbiter's ledger so
  // cross-engine eviction pressure is observable globally. The wrapper is
  // decision-transparent (same kind, same plans), so per-tenant cycle
  // counts match a standalone engine bit-for-bit.
  cachemgr::GlobalBudgetLedger *Led =
      &const_cast<GlobalCacheArbiter &>(Arb).ledger();
  Opts.PolicyFactory = [Led](cachemgr::CachePolicyKind Kind,
                             const cachemgr::PolicyConfig &Config) {
    return std::make_unique<cachemgr::ArbitratedPolicy>(
        cachemgr::makeCachePolicy(Kind, Config), *Led);
  };

  auto EngineOr = core::SdtEngine::create(T.Program, Opts, Exec);
  if (!EngineOr) {
    R.EngineError = EngineOr.takeError().message();
    return Out;
  }
  core::SdtEngine &Engine = **EngineOr;

  // Per-session plugin manager: attached before prewarm so rehydration
  // delivers its translation callbacks (exactly once — run() never
  // replays them).
  std::unique_ptr<plugin::PluginManager> Plugins;
  if (!T.PluginSpec.empty()) {
    Expected<std::unique_ptr<plugin::PluginManager>> MgrOr =
        plugin::createPluginManager(T.PluginSpec);
    if (!MgrOr) {
      R.EngineError = MgrOr.takeError().message();
      return Out;
    }
    Plugins = std::move(*MgrOr);
    Engine.setPlugins(Plugins.get());
    R.PluginSpec = T.PluginSpec;
  }

  if (Warm)
    Engine.prewarm(Image);

  R.Run = Engine.run();
  R.Stats = Engine.stats();
  if (Plugins)
    R.PluginMetrics = Plugins->metrics();
  R.TotalCycles = Timing.totalCycles();
  for (size_t C = 0;
       C != static_cast<size_t>(arch::CycleCategory::NumCategories); ++C)
    R.CyclesByCategory[C] = Timing.cycles(static_cast<arch::CycleCategory>(C));

  // Snapshot the finished cache for the tenant's next admission.
  // Trace-enabled configurations are excluded: retired trace heads and
  // promotion state do not rehydrate deterministically.
  if (Cfg.WarmStart && !T.Opts.EnableTraces) {
    // The cache may overshoot its nominal capacity by one in-flight
    // fragment; reserve at most the grant — rehydration is
    // capacity-bounded anyway (prewarm skips once the next cache fills).
    Out.SnapshotCacheBytes =
        std::min(Engine.fragmentCache().usedBytes(), GrantBytes);
    if (Out.SnapshotCacheBytes != 0)
      Out.SnapshotBlob = encodeSnapshot(Engine, T.ProgramFp);
  }
  return Out;
}

std::vector<SessionResult>
EngineServer::runTrace(const std::vector<uint32_t> &TenantTrace) {
  std::vector<SessionResult> Results(TenantTrace.size());
  support::ThreadPool Pool(Cfg.Workers);

  struct Pending {
    size_t TraceIndex = 0;
    uint32_t Tenant = 0;
    uint32_t GrantBytes = 0;
    std::string SnapshotError; ///< Cold-fallback diagnostic, if any.
    std::future<WorkerOutput> Fut;
  };
  std::deque<Pending> Window;

  // Completion runs on the control thread in admission order: release the
  // grant, then (maybe) retain the new snapshot. This is the only place
  // arbiter or store state changes after admission.
  auto Complete = [&](Pending P) {
    WorkerOutput Out = P.Fut.get();
    Arb.sessionDone(P.Tenant, P.GrantBytes);

    TenantRecord &T = Reg.tenant(P.Tenant);
    ++T.Sessions;
    if (Out.Result.Warm)
      ++T.WarmSessions;

    if (Cfg.WarmStart && Out.Result.EngineError.empty() &&
        !Out.SnapshotBlob.empty() && Out.SnapshotCacheBytes != 0) {
      GlobalCacheArbiter::Retention R =
          Arb.retain(P.Tenant, Out.SnapshotCacheBytes);
      for (const Reclaim &V : R.Reclaimed) {
        Store.drop(V.Tenant);
        emit(trace::EventKind::TenantEvict, V.Tenant, V.CacheBytes);
        ++TenantEvictions;
      }
      if (R.Accepted) {
        emit(trace::EventKind::SnapshotSave, P.Tenant, Out.SnapshotCacheBytes);
        ++SnapshotSaves;
        Store.store(P.Tenant, std::move(Out.SnapshotBlob),
                    Out.SnapshotCacheBytes);
      } else {
        // No reservation, no blob: admission consumed the previous one,
        // so a stale stored copy would be unaccounted warm state.
        Store.drop(P.Tenant);
      }
    }
    assert(Arb.invariantHolds() && "arbiter accounting out of budget");
    Out.Result.SnapshotError = std::move(P.SnapshotError);
    Results[P.TraceIndex] = std::move(Out.Result);
  };

  for (size_t I = 0; I != TenantTrace.size(); ++I) {
    // The accounting window: admission I sees exactly the completions of
    // sessions up to I - AdmissionWindow, independent of worker count.
    while (Window.size() >= Cfg.AdmissionWindow) {
      Complete(std::move(Window.front()));
      Window.pop_front();
    }

    uint32_t Id = TenantTrace[I];
    assert(Id < Reg.size() && "trace names an unregistered tenant");
    TenantRecord &T = Reg.tenant(Id);

    GlobalCacheArbiter::Admission A = Arb.admit(Id, T.RequestBytes);
    for (const Reclaim &V : A.Reclaimed) {
      Store.drop(V.Tenant);
      emit(trace::EventKind::TenantEvict, V.Tenant, V.CacheBytes);
      ++TenantEvictions;
    }
    emit(trace::EventKind::TenantAdmit, Id, A.GrantBytes);
    ++TenantAdmissions;

    // Decode on the control thread: a rejected snapshot mutates the store
    // and the arbiter, which only this thread may do.
    bool Warm = false;
    core::PrewarmImage Image;
    std::string SnapErr;
    if (Cfg.WarmStart) {
      if (const std::vector<uint8_t> *Blob = Store.lookup(Id)) {
        Expected<SnapshotInfo> Info =
            decodeSnapshot(*Blob, T.OptionsFp, T.ProgramFp);
        if (Info) {
          Warm = true;
          Image = std::move(Info->Image);
          emit(trace::EventKind::SnapshotLoad, Id, Info->CacheBytes);
          ++SnapshotLoads;
        } else {
          SnapErr = Info.takeError().message();
          std::fprintf(stderr,
                       "sdt-server: tenant %u (%s): discarding snapshot: %s "
                       "(starting cold)\n",
                       Id, T.Name.c_str(), SnapErr.c_str());
          Store.drop(Id);
          Arb.dropRetained(Id);
          ++T.SnapshotsDiscarded;
        }
      }
    }

    Pending P;
    P.TraceIndex = I;
    P.Tenant = Id;
    P.GrantBytes = A.GrantBytes;
    // The worker reads only immutable tenant fields plus its private
    // copies; all shared mutation stays on this thread.
    P.SnapshotError = std::move(SnapErr);
    P.Fut = Pool.submit(
        [this, &T, Grant = A.GrantBytes, Warm,
         Img = std::move(Image)]() mutable {
          return runSession(T, Grant, Warm, std::move(Img));
        });
    Window.push_back(std::move(P));
  }

  while (!Window.empty()) {
    Complete(std::move(Window.front()));
    Window.pop_front();
  }
  return Results;
}

trace::StatsExpectation EngineServer::expectations() const {
  trace::StatsExpectation E;
  E.TenantAdmissions = TenantAdmissions;
  E.TenantEvictions = TenantEvictions;
  E.SnapshotSaves = SnapshotSaves;
  E.SnapshotLoads = SnapshotLoads;
  return E;
}
