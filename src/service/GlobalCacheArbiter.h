//===- service/GlobalCacheArbiter.h - Global cache budget --------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The capacity arbiter for a multi-tenant engine fleet: one global
/// fragment-cache budget (STRATAIB_GLOBAL_CACHE_BYTES) covers both the
/// caches of in-flight sessions (grants) and the warm state retained for
/// future admissions (snapshots). Two modes:
///
///  - Isolation: the budget is cut into MaxTenants equal slices; a
///    tenant's grant and retained snapshot live inside its own slice and
///    tenants never affect each other (reclaims() stays 0).
///  - SharedBudget: grants and retained snapshots draw from one pool;
///    when an admission (or a retention) does not fit, the arbiter
///    reclaims retained warm state from the least-recently-active
///    tenants until it does — Zipf-popular tenants keep their snapshots,
///    cold tenants lose theirs.
///
/// An admission consumes the tenant's own retained reservation (the
/// snapshot's bytes move into the granted cache); the completed session
/// re-reserves through retain(), or loses its warm state if that is
/// refused. Every session is guaranteed a MinGrantBytes floor even under
/// an exhausted budget, so the shared-mode accounting invariant is
///   inflight + retained <= budget + inflightSessions * MinGrantBytes
/// while isolation mode enforces the budget per slice (each grant and
/// each reservation fits one slice; K concurrent sessions hold K
/// slices). Both are checked by invariantHolds() and pinned by a ctest.
///
/// All methods run on the server's control thread in admission order —
/// grants therefore depend only on the admission/completion sequence,
/// never on worker scheduling, which keeps server results bit-identical
/// for any STRATAIB_JOBS. The embedded GlobalBudgetLedger is the one
/// piece workers touch (relaxed atomic counters, via ArbitratedPolicy).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_SERVICE_GLOBALCACHEARBITER_H
#define STRATAIB_SERVICE_GLOBALCACHEARBITER_H

#include "cachemgr/GlobalBudget.h"

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

namespace sdt {
namespace service {

enum class ArbiterMode : uint8_t { Isolation, SharedBudget };

/// Returns "isolation" or "shared".
const char *arbiterModeName(ArbiterMode M);

/// One reclaimed warm-state reservation (for TenantEvict events).
struct Reclaim {
  uint32_t Tenant = 0;
  uint32_t CacheBytes = 0;
};

class GlobalCacheArbiter {
public:
  struct Config {
    ArbiterMode Mode = ArbiterMode::SharedBudget;
    uint32_t BudgetBytes = 1u << 20;
    /// Slice denominator in isolation mode; also the admission-window
    /// upper bound the server enforces.
    uint32_t MaxTenants = 8;
    /// Grant floor: no session runs with a cache smaller than this.
    uint32_t MinGrantBytes = 4096;
  };

  struct Admission {
    uint32_t GrantBytes = 0;
    std::vector<Reclaim> Reclaimed;
  };

  struct Retention {
    bool Accepted = false;
    std::vector<Reclaim> Reclaimed;
  };

  explicit GlobalCacheArbiter(const Config &C);

  const Config &config() const { return Cfg; }

  /// Admits one session for \p Tenant requesting \p RequestBytes of
  /// cache. Returns the grant plus any least-recently-active warm state
  /// reclaimed to make room (the caller drops those snapshots).
  Admission admit(uint32_t Tenant, uint32_t RequestBytes);

  /// The session admitted with \p GrantBytes finished; its cache is gone.
  void sessionDone(uint32_t Tenant, uint32_t GrantBytes);

  /// Asks to retain \p CacheBytes of warm state for \p Tenant. May
  /// reclaim other tenants' warm state in shared mode; refuses when the
  /// budget cannot cover it even after reclaiming (the caller then
  /// discards the blob — admission already consumed any previous
  /// reservation).
  Retention retain(uint32_t Tenant, uint32_t CacheBytes);

  /// The tenant's snapshot became unusable (corrupt blob, config
  /// change); releases its reservation without counting a reclaim.
  void dropRetained(uint32_t Tenant);

  uint32_t retainedBytes(uint32_t Tenant) const;
  uint32_t retainedTotal() const { return Retained; }
  uint32_t inflightBytes() const { return Inflight; }
  uint32_t inflightSessions() const { return InflightSessions; }

  /// Warm-state reservations reclaimed under budget pressure (the
  /// cross-tenant eviction count E18 compares across modes; always 0 in
  /// isolation mode).
  uint64_t reclaims() const { return Reclaims; }

  /// The accounting invariant documented above (mode-dependent).
  bool invariantHolds() const;

  /// Cross-engine eviction counters, written by every tenant engine's
  /// ArbitratedPolicy from the worker threads.
  cachemgr::GlobalBudgetLedger &ledger() { return Ledger; }
  const cachemgr::GlobalBudgetLedger &ledger() const { return Ledger; }

private:
  struct TenantAcct {
    uint32_t RetainedBytes = 0;
    uint32_t InflightSessions = 0;
    uint64_t LastActive = 0; ///< Admission stamp (recency for LRA).
  };

  uint32_t sliceBytes() const;

  /// Reclaims least-recently-active retained state (excluding \p Tenant
  /// and tenants with in-flight sessions) until \p NeededBytes fit in
  /// the free pool or nothing reclaimable remains. Appends victims to
  /// \p Out and returns the free pool size afterwards.
  uint64_t reclaimFor(uint32_t Tenant, uint64_t NeededBytes,
                      std::vector<Reclaim> &Out);

  Config Cfg;
  std::map<uint32_t, TenantAcct> Tenants;
  uint32_t Inflight = 0;
  uint32_t InflightSessions = 0;
  uint32_t Retained = 0;
  uint64_t Stamp = 0;
  uint64_t Reclaims = 0;
  cachemgr::GlobalBudgetLedger Ledger;
};

} // namespace service
} // namespace sdt

#endif // STRATAIB_SERVICE_GLOBALCACHEARBITER_H
