//===- service/TenantRegistry.h - Tenant ownership ---------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns everything the server knows about a tenant: the guest program,
/// the engine configuration its sessions run under, fingerprints for
/// snapshot validation, and per-tenant aggregates. Records live in a
/// deque so references stay stable across registration; after
/// registration the immutable fields (program, options, model,
/// fingerprints) are read concurrently by worker threads while the
/// aggregates are only touched on the control thread.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_SERVICE_TENANTREGISTRY_H
#define STRATAIB_SERVICE_TENANTREGISTRY_H

#include "arch/MachineModel.h"
#include "core/SdtOptions.h"
#include "isa/Program.h"

#include <cstdint>
#include <deque>
#include <string>

namespace sdt {
namespace service {

struct TenantRecord {
  uint32_t Id = 0;
  std::string Name;

  // Immutable after registration (worker threads read these).
  isa::Program Program;
  core::SdtOptions Opts;
  arch::MachineModel Model;
  /// Instrumentation plugins attached to every session of this tenant
  /// (comma-separated, see plugin::createPluginManager; "" = none).
  /// Each session gets a fresh manager, so tenants never share plugin
  /// state and per-tenant cycle counts stay independent.
  std::string PluginSpec;
  uint32_t RequestBytes = 0; ///< Cache bytes each session asks for.
  uint32_t OptionsFp = 0;    ///< Snapshot-validation fingerprints.
  uint32_t ProgramFp = 0;

  // Control-thread aggregates.
  uint64_t Sessions = 0;
  uint64_t WarmSessions = 0;
  uint64_t SnapshotsDiscarded = 0; ///< Corrupt/mismatched blobs dropped.
};

class TenantRegistry {
public:
  /// Registers a tenant and returns its record (id already assigned).
  TenantRecord &add(std::string Name, isa::Program P,
                    const core::SdtOptions &Opts,
                    const arch::MachineModel &Model, uint32_t RequestBytes,
                    std::string PluginSpec = "");

  TenantRecord &tenant(uint32_t Id) { return Records[Id]; }
  const TenantRecord &tenant(uint32_t Id) const { return Records[Id]; }

  size_t size() const { return Records.size(); }

private:
  std::deque<TenantRecord> Records;
};

} // namespace service
} // namespace sdt

#endif // STRATAIB_SERVICE_TENANTREGISTRY_H
