//===- opt/TraceOptimizer.cpp ----------------------------------*- C++ -*-===//
//
// Part of StrataIB. See TraceOptimizer.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "opt/TraceOptimizer.h"

#include "vm/ExecSemantics.h"

#include <array>
#include <cassert>
#include <optional>

using namespace sdt;
using namespace sdt::core;
using namespace sdt::opt;
using sdt::isa::Instruction;
using sdt::isa::Opcode;

namespace {

bool isLoadOp(Opcode Op) {
  return Op == Opcode::Lw || Op == Opcode::Lh || Op == Opcode::Lhu ||
         Op == Opcode::Lb || Op == Opcode::Lbu;
}

bool isStoreOp(Opcode Op) {
  return Op == Opcode::Sw || Op == Opcode::Sh || Op == Opcode::Sb;
}

/// Remaps every OffTraceIndex through \p Remap (old index -> new index).
void remapOffTrace(std::vector<HostInstr> &Ops,
                   const std::vector<uint32_t> &Remap) {
  for (HostInstr &HI : Ops)
    if (HI.Kind == HostOpKind::TraceBranch || HI.Kind == HostOpKind::SpecGuard)
      HI.OffTraceIndex = Remap[HI.OffTraceIndex];
}

//===----------------------------------------------------------------------===//
// const-forward
//===----------------------------------------------------------------------===//

/// Forward-propagates constants along the trace and folds pure ALU ops
/// whose inputs are all known. Sound because traces are single-entry:
/// execution can only reach op i by flowing through ops 0..i-1 (links,
/// trampolines, and the dispatcher always enter fragments at index 0),
/// so facts survive across conditional exits — an off-trace exit leaves
/// the fragment entirely.
uint64_t constForwardPass(std::vector<HostInstr> &Ops) {
  uint64_t Folds = 0;
  // Known[r] = the constant register r holds at this point, if proven.
  std::array<std::optional<uint32_t>, 32> Known;
  Known[0] = 0; // r0 is hardwired zero.

  auto kill = [&Known](uint8_t Reg) {
    if (Reg != 0)
      Known[Reg].reset();
  };

  for (HostInstr &HI : Ops) {
    switch (HI.Kind) {
    case HostOpKind::Guest: {
      const Instruction &I = HI.GuestI;
      if (vm::isPureAlu(I.Op)) {
        bool NeedRs1 = vm::pureAluReadsRs1(I.Op);
        bool NeedRs2 = vm::pureAluReadsRs2(I.Op);
        if ((!NeedRs1 || Known[I.Rs1]) && (!NeedRs2 || Known[I.Rs2])) {
          uint32_t A = NeedRs1 ? *Known[I.Rs1] : 0;
          uint32_t B = NeedRs2 ? *Known[I.Rs2] : 0;
          uint32_t V = vm::evalPureAlu(I, A, B);
          if (!HI.Folded)
            ++Folds;
          HI.Folded = true;
          HI.FoldedValue = V;
          if (I.Rd != 0)
            Known[I.Rd] = V;
        } else {
          kill(I.Rd);
        }
      } else if (isLoadOp(I.Op)) {
        kill(I.Rd); // loaded value is unknown
      }
      // Stores write no register.
      break;
    }
    case HostOpKind::SetLink:
      // Writes the link register with a translation-time-variable value
      // (host address under fast returns) — treat as unknown.
      kill(HI.GuestI.Rd);
      break;
    case HostOpKind::SyscallOp:
      // Syscalls may clobber any register.
      for (unsigned R = 1; R != 32; ++R)
        Known[R].reset();
      break;
    case HostOpKind::CondBranch:
    case HostOpKind::TraceBranch:
    case HostOpKind::SpecGuard:
    case HostOpKind::IBLookup:
    case HostOpKind::ExitStub:
    case HostOpKind::JumpHost:
    case HostOpKind::Elided:
    case HostOpKind::HaltOp:
      // No guest-register writes.
      break;
    }
  }
  return Folds;
}

//===----------------------------------------------------------------------===//
// dead-link
//===----------------------------------------------------------------------===//

/// True if op \p HI reads guest register \p Reg.
bool readsReg(const HostInstr &HI, uint8_t Reg) {
  switch (HI.Kind) {
  case HostOpKind::Guest: {
    const Instruction &I = HI.GuestI;
    if (vm::isPureAlu(I.Op))
      return (vm::pureAluReadsRs1(I.Op) && I.Rs1 == Reg) ||
             (vm::pureAluReadsRs2(I.Op) && I.Rs2 == Reg);
    if (isLoadOp(I.Op))
      return I.Rs1 == Reg; // base address
    if (isStoreOp(I.Op))
      return I.Rs1 == Reg || I.Rd == Reg; // base + stored value
    return true; // unknown shape: assume it reads
  }
  case HostOpKind::TraceBranch:
  case HostOpKind::CondBranch:
    return HI.GuestI.Rs1 == Reg || HI.GuestI.Rs2 == Reg;
  case HostOpKind::IBLookup:
  case HostOpKind::SpecGuard:
    return HI.GuestI.Rs1 == Reg; // dynamic target register
  default:
    return false;
  }
}

/// Register op \p HI overwrites, or 0 if none (r0 writes are no-ops).
uint8_t writesReg(const HostInstr &HI) {
  switch (HI.Kind) {
  case HostOpKind::Guest: {
    const Instruction &I = HI.GuestI;
    if (vm::isPureAlu(I.Op) || isLoadOp(I.Op))
      return I.Rd;
    return 0;
  }
  case HostOpKind::SetLink:
    return HI.GuestI.Rd;
  default:
    return 0;
  }
}

/// Kills SetLink ops whose link register is overwritten before any read
/// with no possible trace exit in between. The scan is strictly along
/// the straight line; any op that can leave the fragment (branch, stub,
/// IB site, guard, syscall, halt) is a barrier because the link value
/// would be live off-trace. Never runs under shadow-stack returns: the
/// predictor pairs every SetLink push with a return pop, and skipping
/// pushes would desynchronise it (the caller gates on Opts).
uint64_t deadLinkPass(std::vector<HostInstr> &Ops) {
  uint64_t Dead = 0;
  for (size_t I = 0; I != Ops.size(); ++I) {
    HostInstr &Link = Ops[I];
    if (Link.Kind != HostOpKind::SetLink || Link.LinkDead)
      continue;
    uint8_t Rd = Link.GuestI.Rd;
    if (Rd == 0)
      continue;
    for (size_t J = I + 1; J != Ops.size(); ++J) {
      const HostInstr &Next = Ops[J];
      if (readsReg(Next, Rd))
        break; // live
      if (writesReg(Next) == Rd) {
        Link.LinkDead = true;
        ++Dead;
        break;
      }
      bool Barrier = Next.Kind != HostOpKind::Guest &&
                     Next.Kind != HostOpKind::SetLink &&
                     Next.Kind != HostOpKind::Elided;
      if (Barrier)
        break; // execution may leave the trace with Rd live
    }
  }
  return Dead;
}

//===----------------------------------------------------------------------===//
// elide-glue
//===----------------------------------------------------------------------===//

/// Removes Elided jump markers from the stream, folding each one's guest
/// retirement into the next surviving op's ElidedJumps count. A trailing
/// Elided (no successor op) is kept — something must still retire it.
uint64_t elideGluePass(std::vector<HostInstr> &Ops) {
  uint64_t Removed = 0;
  std::vector<uint32_t> Remap(Ops.size());
  size_t Out = 0;
  uint32_t Pending = 0;
  for (size_t I = 0; I != Ops.size(); ++I) {
    if (Ops[I].Kind == HostOpKind::Elided && I + 1 != Ops.size()) {
      Pending += 1u + Ops[I].ElidedJumps;
      Remap[I] = static_cast<uint32_t>(Out); // folds into the successor
      ++Removed;
      continue;
    }
    assert(Pending <= UINT16_MAX && "elided-jump count overflow");
    Ops[I].ElidedJumps = static_cast<uint16_t>(Ops[I].ElidedJumps + Pending);
    Pending = 0;
    Remap[I] = static_cast<uint32_t>(Out);
    if (Out != I)
      Ops[Out] = Ops[I];
    ++Out;
  }
  Ops.resize(Out);
  remapOffTrace(Ops, Remap);
  return Removed;
}

//===----------------------------------------------------------------------===//
// outline-stubs
//===----------------------------------------------------------------------===//

/// Moves cold ops — off-trace exit stubs and speculation-fallback IB
/// sites, i.e. everything referenced by an OffTraceIndex — to the
/// fragment tail, preserving relative order within each partition. The
/// hot straight line then occupies contiguous I-cache lines with no
/// 16-byte stubs interleaved.
uint64_t outlineStubsPass(std::vector<HostInstr> &Ops) {
  std::vector<char> Cold(Ops.size(), 0);
  for (const HostInstr &HI : Ops)
    if (HI.Kind == HostOpKind::TraceBranch ||
        HI.Kind == HostOpKind::SpecGuard) {
      assert(HI.OffTraceIndex < Ops.size() && HI.OffTraceIndex != 0);
      Cold[HI.OffTraceIndex] = 1;
    }

  std::vector<uint32_t> Remap(Ops.size());
  std::vector<HostInstr> New;
  New.reserve(Ops.size());
  for (size_t I = 0; I != Ops.size(); ++I)
    if (!Cold[I]) {
      Remap[I] = static_cast<uint32_t>(New.size());
      New.push_back(Ops[I]);
    }
  size_t HotCount = New.size();
  for (size_t I = 0; I != Ops.size(); ++I)
    if (Cold[I]) {
      Remap[I] = static_cast<uint32_t>(New.size());
      New.push_back(Ops[I]);
    }
  uint64_t Moved = 0;
  for (size_t I = 0; I != Ops.size(); ++I)
    if (Cold[I] && Remap[I] != I)
      ++Moved;
  Ops = std::move(New);
  remapOffTrace(Ops, Remap);
  (void)HotCount;
  return Moved;
}

//===----------------------------------------------------------------------===//
// coalesce-flags
//===----------------------------------------------------------------------===//

/// On-trace successor of op \p I: guards and trace branches fall past an
/// adjacent off-trace op (when it was not outlined), everything else
/// falls through.
size_t nextOnTrace(const std::vector<HostInstr> &Ops, size_t I) {
  const HostInstr &HI = Ops[I];
  if (HI.Kind == HostOpKind::TraceBranch || HI.Kind == HostOpKind::SpecGuard)
    return HI.OffTraceIndex == I + 1 ? I + 2 : I + 1;
  return I + 1;
}

/// When two guards are adjacent on the hot path (separated only by
/// flag-neutral glue: SetLink materialisations and elided jumps), the
/// first guard's flag restore and the second's flag save cancel — the
/// app's flag state is untouched in between. Each elision is 4 bytes
/// and one save/restore charge off the hit path.
uint64_t coalesceFlagsPass(std::vector<HostInstr> &Ops) {
  uint64_t Pairs = 0;
  for (size_t I = 0; I < Ops.size(); ++I) {
    if (Ops[I].Kind != HostOpKind::SpecGuard || Ops[I].FlagRestoreElided)
      continue;
    size_t J = nextOnTrace(Ops, I);
    while (J < Ops.size() && (Ops[J].Kind == HostOpKind::SetLink ||
                              Ops[J].Kind == HostOpKind::Elided))
      J = nextOnTrace(Ops, J);
    if (J < Ops.size() && Ops[J].Kind == HostOpKind::SpecGuard &&
        !Ops[J].FlagSaveElided) {
      Ops[I].FlagRestoreElided = true;
      Ops[J].FlagSaveElided = true;
      ++Pairs;
    }
  }
  return Pairs;
}

} // namespace

TraceOptStats sdt::opt::optimizeTrace(std::vector<HostInstr> &Ops,
                                      const SdtOptions &Opts) {
  TraceOptStats S;
  if (Ops.empty())
    return S;
  if (Opts.OptConstForward)
    S.ConstFolds = constForwardPass(Ops);
  if (Opts.OptDeadLink && Opts.Returns != ReturnStrategy::ShadowStack)
    S.DeadLinks = deadLinkPass(Ops);
  if (Opts.OptElideGlue)
    S.GlueElided = elideGluePass(Ops);
  if (Opts.OptOutlineStubs)
    S.StubsOutlined = outlineStubsPass(Ops);
  if (Opts.OptCoalesceFlags)
    S.FlagPairsElided = coalesceFlagsPass(Ops);
  return S;
}
