//===- opt/TraceOptimizer.h - Superblock pass pipeline -----------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace-optimization pipeline: a sequence of peephole/redundancy
/// passes that run over a stitched superblock's HostInstr stream between
/// trace stitching and code emission (docs/Superblocks.md). The passes
/// never change guest-visible behaviour — they only remove work the
/// linearised layout made redundant:
///
///  - const-forward: forward-propagate constants established within the
///    trace and fold pure ALU ops to constant materialisations (exact
///    semantics via vm::evalPureAlu — the same evaluator the
///    interpreter uses);
///  - dead-link: kill SetLink ops whose link register is overwritten
///    before any read with no trace exit in between;
///  - elide-glue: remove the zero-byte Elided jump markers entirely,
///    folding their guest-retirement bookkeeping into the successor op;
///  - outline-stubs: move off-trace exit stubs and speculation-fallback
///    lookup sites out of the hot straight line to the fragment tail,
///    shrinking the hot path's I-cache footprint;
///  - coalesce-flags: share one flag save/restore pair between adjacent
///    speculation guards.
///
/// The pipeline operates on the pre-layout op stream (no host addresses
/// assigned yet, IB sites not yet registered), so removed ops cost
/// nothing and reordered ops land at their final addresses.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_OPT_TRACEOPTIMIZER_H
#define STRATAIB_OPT_TRACEOPTIMIZER_H

#include "core/HostInstr.h"
#include "core/SdtOptions.h"

#include <cstdint>
#include <vector>

namespace sdt {
namespace opt {

/// What one optimizeTrace() invocation did, per pass.
struct TraceOptStats {
  uint64_t GlueElided = 0;      ///< Elided ops removed.
  uint64_t ConstFolds = 0;      ///< Guest ALU ops folded to constants.
  uint64_t DeadLinks = 0;       ///< SetLink ops proven dead.
  uint64_t StubsOutlined = 0;   ///< Cold ops moved to the tail.
  uint64_t FlagPairsElided = 0; ///< Guard flag save/restores shared.
};

/// Runs the enabled passes (Opts.Opt* toggles) over the pending trace
/// stream \p Ops in place. \p Ops uses fragment-local indices in
/// OffTraceIndex; the pipeline keeps them consistent across removals and
/// reordering. Must run before layout (host addresses are reassigned).
TraceOptStats optimizeTrace(std::vector<core::HostInstr> &Ops,
                            const core::SdtOptions &Opts);

} // namespace opt
} // namespace sdt

#endif // STRATAIB_OPT_TRACEOPTIMIZER_H
