//===- arch/BranchPredictor.cpp --------------------------------*- C++ -*-===//
//
// Part of StrataIB. See BranchPredictor.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "arch/BranchPredictor.h"

#include "support/Hashing.h"

#include <cassert>

using namespace sdt;
using namespace sdt::arch;

BranchPredictor::BranchPredictor(const PredictorConfig &Config)
    : Config(Config) {
  assert(isPowerOf2(Config.GshareEntries) && isPowerOf2(Config.BtbEntries) &&
         "predictor tables must be powers of two");
  assert(Config.RasDepth > 0 && "RAS must have at least one entry");
  Counters.assign(Config.GshareEntries, 1); // Weakly not-taken.
  Btb.assign(Config.BtbEntries, 0);
  Ras.assign(Config.RasDepth, 0);
}

void BranchPredictor::reset() {
  Counters.assign(Config.GshareEntries, 1);
  Btb.assign(Config.BtbEntries, 0);
  RasTop = 0;
  History = 0;
  CondMispredicts = 0;
  IndirectMispredicts = 0;
  ReturnMispredicts = 0;
}

bool BranchPredictor::predictConditional(uint32_t Pc, bool Taken) {
  uint32_t Index = ((Pc >> 2) ^ History) & (Config.GshareEntries - 1);
  uint8_t &Counter = Counters[Index];
  bool Predicted = Counter >= 2;

  if (Taken && Counter < 3)
    ++Counter;
  else if (!Taken && Counter > 0)
    --Counter;
  History = ((History << 1) | (Taken ? 1 : 0)) & 0xFFFF;

  bool Correct = Predicted == Taken;
  if (!Correct)
    ++CondMispredicts;
  return Correct;
}

bool BranchPredictor::predictIndirect(uint32_t Pc, uint32_t Target) {
  uint32_t Index = (Pc >> 2) & (Config.BtbEntries - 1);
  bool Correct = Btb[Index] == Target;
  Btb[Index] = Target;
  if (!Correct)
    ++IndirectMispredicts;
  return Correct;
}

void BranchPredictor::pushReturn(uint32_t ReturnAddr) {
  // Circular overwrite on overflow, like a real RAS.
  Ras[RasTop % Config.RasDepth] = ReturnAddr;
  ++RasTop;
}

bool BranchPredictor::predictReturn(uint32_t Target) {
  if (RasTop == 0) {
    ++ReturnMispredicts;
    return false;
  }
  --RasTop;
  bool Correct = Ras[RasTop % Config.RasDepth] == Target;
  if (!Correct)
    ++ReturnMispredicts;
  return Correct;
}
