//===- arch/BranchPredictor.cpp --------------------------------*- C++ -*-===//
//
// Part of StrataIB. See BranchPredictor.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "arch/BranchPredictor.h"

#include "support/Hashing.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace sdt;
using namespace sdt::arch;

const char *sdt::arch::predictorKindName(PredictorKind K) {
  switch (K) {
  case PredictorKind::None:
    return "none";
  case PredictorKind::Btb:
    return "btb";
  case PredictorKind::TaggedIbtb:
    return "ibtb";
  case PredictorKind::Perfect:
    return "perfect";
  }
  assert(false && "invalid predictor kind");
  return "?";
}

std::optional<PredictorKind>
sdt::arch::parsePredictorKind(const std::string &Name) {
  if (Name == "none")
    return PredictorKind::None;
  if (Name == "btb")
    return PredictorKind::Btb;
  if (Name == "ibtb")
    return PredictorKind::TaggedIbtb;
  if (Name == "perfect")
    return PredictorKind::Perfect;
  return std::nullopt;
}

std::string PredictorConfig::describe() const {
  switch (Kind) {
  case PredictorKind::None:
    return "none";
  case PredictorKind::Btb:
    return formatString("btb:%u", BtbEntries);
  case PredictorKind::TaggedIbtb:
    return formatString("ibtb:%ux%uh%u", BtbEntries, IbtbWays,
                        IbtbHistoryBits);
  case PredictorKind::Perfect:
    return "perfect";
  }
  assert(false && "invalid predictor kind");
  return "?";
}

BranchPredictor::BranchPredictor(const PredictorConfig &Config)
    : Config(Config) {
  assert(isPowerOf2(Config.GshareEntries) && isPowerOf2(Config.BtbEntries) &&
         "predictor tables must be powers of two");
  assert(Config.RasDepth > 0 && "RAS must have at least one entry");
  if (Config.Kind == PredictorKind::TaggedIbtb) {
    assert(isPowerOf2(Config.IbtbWays) &&
           Config.IbtbWays <= Config.BtbEntries &&
           "iBTB ways must be a power of two <= entries");
    assert(Config.IbtbHistoryBits <= 32 && "path history is 32 bits wide");
  }
  Counters.assign(Config.GshareEntries, 1); // Weakly not-taken.
  Targets.assign(Config.BtbEntries, TargetEntry());
  Ras.assign(Config.RasDepth, 0);
}

void BranchPredictor::reset() {
  Counters.assign(Config.GshareEntries, 1);
  Targets.assign(Config.BtbEntries, TargetEntry());
  RasTop = 0;
  History = 0;
  PathHistory = 0;
  Clock = 0;
  CondMispredicts = 0;
  IndirectMispredicts = 0;
  ReturnMispredicts = 0;
  IndirectLookups = 0;
  ReturnLookups = 0;
}

bool BranchPredictor::predictConditional(uint32_t Pc, bool Taken) {
  uint32_t Index = ((Pc >> 2) ^ History) & (Config.GshareEntries - 1);
  uint8_t &Counter = Counters[Index];
  bool Predicted = Counter >= 2;

  if (Taken && Counter < 3)
    ++Counter;
  else if (!Taken && Counter > 0)
    --Counter;
  History = ((History << 1) | (Taken ? 1 : 0)) & 0xFFFF;

  bool Correct = Predicted == Taken;
  if (!Correct)
    ++CondMispredicts;
  return Correct;
}

bool BranchPredictor::predictIndirectBtb(uint32_t Pc, uint32_t Target) {
  uint32_t Index = (Pc >> 2) & (Config.BtbEntries - 1);
  TargetEntry &E = Targets[Index];
  // A prediction only counts when the entry is live *and* belongs to
  // this branch: a cold or aliased entry has nothing to say.
  bool Correct = E.Valid && E.Tag == Pc && E.Target == Target;
  E.Tag = Pc;
  E.Target = Target;
  E.Valid = true;
  return Correct;
}

bool BranchPredictor::predictIndirectIbtb(uint32_t Pc, uint32_t Target) {
  uint32_t Set = ((Pc >> 2) ^ PathHistory) & (ibtbSets() - 1);
  uint32_t Base = Set * Config.IbtbWays;

  TargetEntry *Hit = nullptr;
  for (uint32_t Way = 0; Way != Config.IbtbWays && !Hit; ++Way) {
    TargetEntry &E = Targets[Base + Way];
    if (E.Valid && E.Tag == Pc)
      Hit = &E;
  }
  if (Hit) {
    bool Correct = Hit->Target == Target;
    Hit->Target = Target;
    Hit->LastUse = ++Clock;
    return Correct;
  }

  // Tag mismatch or cold: allocate an invalid way first, else the LRU.
  TargetEntry *Victim = nullptr;
  for (uint32_t Way = 0; Way != Config.IbtbWays && !Victim; ++Way)
    if (!Targets[Base + Way].Valid)
      Victim = &Targets[Base + Way];
  if (!Victim) {
    Victim = &Targets[Base];
    for (uint32_t Way = 1; Way != Config.IbtbWays; ++Way)
      if (Targets[Base + Way].LastUse < Victim->LastUse)
        Victim = &Targets[Base + Way];
  }
  Victim->Tag = Pc;
  Victim->Target = Target;
  Victim->LastUse = ++Clock;
  Victim->Valid = true;
  return false;
}

bool BranchPredictor::predictIndirect(uint32_t Pc, uint32_t Target) {
  ++IndirectLookups;
  bool Correct;
  switch (Config.Kind) {
  case PredictorKind::None:
    Correct = false;
    break;
  case PredictorKind::Btb:
    Correct = predictIndirectBtb(Pc, Target);
    break;
  case PredictorKind::TaggedIbtb:
    Correct = predictIndirectIbtb(Pc, Target);
    break;
  case PredictorKind::Perfect:
    Correct = true;
    break;
  }
  // Path history folds in the resolved target's low (word) bits so the
  // same branch PC occupies distinct iBTB sets per calling context.
  if (Config.IbtbHistoryBits != 0) {
    uint32_t Mask = Config.IbtbHistoryBits >= 32
                        ? 0xFFFFFFFFu
                        : (1u << Config.IbtbHistoryBits) - 1;
    PathHistory = ((PathHistory << 4) | ((Target >> 2) & 0xF)) & Mask;
  }
  if (!Correct)
    ++IndirectMispredicts;
  return Correct;
}

void BranchPredictor::pushReturn(uint32_t ReturnAddr) {
  // Circular overwrite on overflow, like a real RAS.
  Ras[RasTop % Config.RasDepth] = ReturnAddr;
  ++RasTop;
}

bool BranchPredictor::predictReturn(uint32_t Target) {
  ++ReturnLookups;
  // The analytic bounds cover the whole indirect-control-flow side,
  // returns included; the RAS is left untouched so pushes stay cheap.
  if (Config.Kind == PredictorKind::None) {
    ++ReturnMispredicts;
    return false;
  }
  if (Config.Kind == PredictorKind::Perfect)
    return true;
  if (RasTop == 0) {
    ++ReturnMispredicts;
    return false;
  }
  --RasTop;
  bool Correct = Ras[RasTop % Config.RasDepth] == Target;
  if (!Correct)
    ++ReturnMispredicts;
  return Correct;
}
