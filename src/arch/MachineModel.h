//===- arch/MachineModel.h - Host machine cost models -----------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterised machine cost models. The paper's cross-architecture claim
/// is that the best IB-handling mechanism and configuration depend on the
/// underlying implementation — chiefly the cost of preserving condition
/// codes around the inline lookup, branch-misprediction penalties, and
/// cache geometry. Each MachineModel captures those first-order parameters
/// for one machine class; `x86Model()` and `sparcModel()` mirror the two
/// machine classes the paper contrasts, and `simpleModel()` is a fully
/// deterministic unit-testing machine.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ARCH_MACHINEMODEL_H
#define STRATAIB_ARCH_MACHINEMODEL_H

#include "arch/BranchPredictor.h"
#include "arch/CacheSim.h"

#include <optional>
#include <string>
#include <vector>

namespace sdt {
namespace arch {

/// Cycle costs and geometry for one machine class.
struct MachineModel {
  std::string Name;

  // --- Application instruction costs (cycles, L1-hit latencies) ---------
  unsigned AluCost = 1;
  unsigned MulCost = 3;
  unsigned DivCost = 20;
  unsigned LoadCost = 2;
  unsigned StoreCost = 1;
  unsigned BranchCost = 1; ///< Correctly predicted conditional branch.
  unsigned JumpCost = 1;   ///< Direct jump or call.
  unsigned IndirectCost = 2; ///< Correctly predicted indirect branch.
  unsigned SyscallCost = 80;

  // --- Misprediction penalties ------------------------------------------
  unsigned CondMispredictPenalty = 12;
  unsigned IndirectMispredictPenalty = 14;
  unsigned ReturnMispredictPenalty = 14;

  // --- Cache miss penalties (to next level) ------------------------------
  unsigned ICacheMissPenalty = 10;
  unsigned DCacheMissPenalty = 12;

  // --- SDT-relevant costs -------------------------------------------------
  /// Spilling/refilling the register context around a dispatcher entry.
  unsigned ContextSaveCost = 40;
  unsigned ContextRestoreCost = 40;
  /// Preserving condition codes around inline lookup code: the expensive
  /// architectural way (x86 `pushf`/`popf`) vs. the light way (`lahf`/
  /// `sahf` or a spare register move on machines with cheap CC access).
  unsigned FlagSaveFullCost = 20;
  unsigned FlagRestoreFullCost = 20;
  unsigned FlagSaveLightCost = 2;
  unsigned FlagRestoreLightCost = 2;
  /// ALU ops per visited sieve stub. A sieve stub compares the dynamic
  /// target against a 32-bit constant and branches: a CISC machine folds
  /// that into one compare-immediate (plus the branch charged
  /// separately), while a fixed-width RISC must materialise the constant
  /// first (sethi/or), making each stub visit costlier.
  unsigned SieveStubOps = 2;
  /// The dispatcher's translation-map probe (beyond the context switch).
  unsigned MapLookupCost = 120;
  /// Translation work per translated guest instruction.
  unsigned TranslateCostPerInstr = 350;
  /// Patching a fragment-link stub.
  unsigned LinkPatchCost = 60;

  // --- Geometry ------------------------------------------------------------
  CacheConfig ICache;
  CacheConfig DCache;
  PredictorConfig Predictor;
};

/// Pentium-4-class x86 machine: expensive full flag save, deep pipeline
/// (large mispredict penalties), modest L1 caches.
MachineModel x86Model();

/// UltraSPARC-class machine: cheap condition-code access, shallower
/// pipeline, larger L1 caches, costly register-window context switches.
MachineModel sparcModel();

/// Deterministic textbook machine for unit tests: unit costs, tiny caches.
MachineModel simpleModel();

/// Looks up a model by name ("x86", "sparc", "simple"); std::nullopt for
/// unknown names.
std::optional<MachineModel> modelByName(const std::string &Name);

/// Returns \p M with its indirect-predictor configuration replaced by
/// \p P and its Name suffixed with the predictor label ("x86/ibtb:512x4h8").
/// The rename matters: benchmark harnesses memoise native baselines per
/// model name, and the native cycle count depends on the predictor.
MachineModel withPredictor(MachineModel M, const PredictorConfig &P);

/// Names accepted by modelByName().
std::vector<std::string> allModelNames();

} // namespace arch
} // namespace sdt

#endif // STRATAIB_ARCH_MACHINEMODEL_H
