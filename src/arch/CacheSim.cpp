//===- arch/CacheSim.cpp ---------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See CacheSim.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "arch/CacheSim.h"

#include "support/Hashing.h"

#include <cassert>

using namespace sdt;
using namespace sdt::arch;

CacheSim::CacheSim(const CacheConfig &Config) : Config(Config) {
  assert(isPowerOf2(Config.SizeBytes) && isPowerOf2(Config.LineBytes) &&
         isPowerOf2(Config.Associativity) && "cache geometry not power of 2");
  assert(Config.SizeBytes >= Config.LineBytes * Config.Associativity &&
         "cache smaller than one set");
  LineShift = log2Floor(Config.LineBytes);
  SetMask = Config.numSets() - 1;
  Ways.resize(static_cast<size_t>(Config.numSets()) * Config.Associativity);
  MruWay.assign(Config.numSets(), 0);
}

uint32_t CacheSim::setIndex(uint32_t Addr) const {
  return (Addr >> LineShift) & SetMask;
}

uint32_t CacheSim::tagOf(uint32_t Addr) const {
  return Addr >> LineShift; // Keep full line number; cheap and unambiguous.
}

bool CacheSim::access(uint32_t Addr) {
  ++Clock;
  uint32_t Set = setIndex(Addr);
  uint32_t Tag = tagOf(Addr);
  Way *Base = &Ways[static_cast<size_t>(Set) * Config.Associativity];

  // MRU memo: consecutive touches to a set overwhelmingly land on the
  // same line (straight-line fetch, repeated table probes), so check the
  // last-touched way before scanning them all.
  Way &Mru = Base[MruWay[Set]];
  if (Mru.Valid && Mru.Tag == Tag) {
    Mru.LastUse = Clock;
    ++Hits;
    return true;
  }

  Way *Victim = Base;
  for (uint32_t W = 0; W != Config.Associativity; ++W) {
    Way &Candidate = Base[W];
    if (Candidate.Valid && Candidate.Tag == Tag) {
      Candidate.LastUse = Clock;
      MruWay[Set] = W;
      ++Hits;
      return true;
    }
    if (!Candidate.Valid ||
        (Victim->Valid && Candidate.LastUse < Victim->LastUse))
      Victim = &Candidate;
  }

  Victim->Tag = Tag;
  Victim->Valid = true;
  Victim->LastUse = Clock;
  MruWay[Set] = static_cast<uint32_t>(Victim - Base);
  ++Misses;
  return false;
}

bool CacheSim::isResident(uint32_t Addr) const {
  uint32_t Set = setIndex(Addr);
  uint32_t Tag = tagOf(Addr);
  const Way *Base = &Ways[static_cast<size_t>(Set) * Config.Associativity];
  for (uint32_t W = 0; W != Config.Associativity; ++W)
    if (Base[W].Valid && Base[W].Tag == Tag)
      return true;
  return false;
}

void CacheSim::flush() {
  for (Way &W : Ways)
    W.Valid = false;
}
