//===- arch/Timing.h - Cycle accounting engine ------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timing engine both execution modes share. Native interpretation
/// and SDT execution charge cycles through the same TimingModel, so the
/// overhead ratios the benchmarks report compare like with like: the same
/// cost table, the same caches, the same branch predictor.
///
/// Cycles are attributed to categories (application work, translation,
/// dispatch, IB handling, linking) so the harness can report where SDT
/// time goes — the paper's framing of IB handling as *the* residual
/// overhead after fragment linking.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ARCH_TIMING_H
#define STRATAIB_ARCH_TIMING_H

#include "arch/BranchPredictor.h"
#include "arch/CacheSim.h"
#include "arch/MachineModel.h"
#include "isa/Instruction.h"

#include <array>
#include <cstdint>

namespace sdt {
namespace arch {

/// Where a charged cycle is attributed.
enum class CycleCategory : uint8_t {
  App,        ///< Work the native program would also do.
  Translate,  ///< Building fragments.
  Dispatch,   ///< Context switch + translation-map lookup.
  IBLookup,   ///< Inline IB-handling code (IBTC probes, sieve walks, ...).
  Link,       ///< Patching direct-branch link stubs.
  Instrument, ///< Injected instrumentation probes (block counters).
  SnapshotLoad, ///< Rehydrating a warm-start snapshot (service layer).
  NumCategories,
};

/// Returns a short label ("app", "translate", ...).
const char *cycleCategoryName(CycleCategory C);

/// Cycle accounting against one MachineModel instance.
class TimingModel {
public:
  explicit TimingModel(const MachineModel &Model);

  const MachineModel &model() const { return Model; }

  // --- Category control ---------------------------------------------------
  void setCategory(CycleCategory C) { Current = C; }
  CycleCategory category() const { return Current; }

  /// RAII category switch.
  class CategoryScope {
  public:
    CategoryScope(TimingModel &T, CycleCategory C)
        : Timing(T), Saved(T.category()) {
      Timing.setCategory(C);
    }
    ~CategoryScope() { Timing.setCategory(Saved); }
    CategoryScope(const CategoryScope &) = delete;
    CategoryScope &operator=(const CategoryScope &) = delete;

  private:
    TimingModel &Timing;
    CycleCategory Saved;
  };

  // --- Raw charging ---------------------------------------------------------
  void charge(uint64_t Cycles) {
    Accumulated[static_cast<size_t>(Current)] += Cycles;
  }
  /// Accumulates directly into \p C without touching the current
  /// category. The explicit-category overloads below are the hot-path
  /// form: per-op category flips (setCategory pairs, CategoryScope
  /// save/restore churn) disappear from the simulation loop, while the
  /// attribution stays exactly the same.
  void charge(CycleCategory C, uint64_t Cycles) {
    Accumulated[static_cast<size_t>(C)] += Cycles;
  }

  // --- Instruction-level charging -------------------------------------------
  /// Instruction fetch at \p Addr: I-cache access; miss penalty on miss.
  void chargeFetch(uint32_t Addr);

  /// Fetch of a multi-line inline code sequence: touches the I-cache once
  /// per cache line in [Addr, Addr+Bytes). Used for IB-lookup code whose
  /// footprint exceeds one host instruction (the sieve's stub chains, the
  /// IBTC's inline probe sequence).
  void chargeCodeRange(uint32_t Addr, uint32_t Bytes);
  void chargeCodeRange(CycleCategory C, uint32_t Addr, uint32_t Bytes);

  /// Data access at \p Addr: op cost + D-cache miss penalty on miss.
  void chargeLoad(uint32_t Addr);
  void chargeLoad(CycleCategory C, uint32_t Addr);
  void chargeStore(uint32_t Addr);
  void chargeStore(CycleCategory C, uint32_t Addr);

  /// Charges the execute cost of non-control \p I (no fetch, no memory:
  /// callers charge those with the address-aware methods above).
  void chargeExecute(const isa::Instruction &I);

  // --- Control flow (prediction-aware) ---------------------------------------
  void chargeCondBranch(uint32_t Pc, bool Taken);
  void chargeCondBranch(CycleCategory C, uint32_t Pc, bool Taken);
  void chargeDirectJump();
  void chargeDirectJump(CycleCategory C);
  /// Direct or indirect call: jump cost + RAS push for \p ReturnAddr.
  void chargeCallLink(uint32_t ReturnAddr);
  void chargeIndirectJump(uint32_t Pc, uint32_t Target);
  void chargeIndirectJump(CycleCategory C, uint32_t Pc, uint32_t Target);
  void chargeReturn(uint32_t Target);
  void chargeReturn(CycleCategory C, uint32_t Target);
  void chargeSyscall();

  // --- SDT-mechanism costs -----------------------------------------------
  void chargeContextSave();
  void chargeContextSave(CycleCategory C);
  void chargeContextRestore();
  void chargeContextRestore(CycleCategory C);
  void chargeFlagSave(bool FullSave);
  void chargeFlagSave(CycleCategory C, bool FullSave);
  void chargeFlagRestore(bool FullSave);
  void chargeFlagRestore(CycleCategory C, bool FullSave);
  void chargeMapLookup();
  void chargeMapLookup(CycleCategory C);
  void chargeTranslation(unsigned GuestInstrCount);
  void chargeTranslation(CycleCategory C, unsigned GuestInstrCount);
  void chargeLinkPatch();
  void chargeLinkPatch(CycleCategory C);
  /// N inline ALU ops (hash computation etc.).
  void chargeAluOps(unsigned Count);
  void chargeAluOps(CycleCategory C, unsigned Count);

  // --- Results ----------------------------------------------------------
  uint64_t totalCycles() const;
  uint64_t cycles(CycleCategory C) const {
    return Accumulated[static_cast<size_t>(C)];
  }

  CacheSim &icache() { return ICache; }
  CacheSim &dcache() { return DCache; }
  BranchPredictor &predictor() { return Predictor; }
  const CacheSim &icache() const { return ICache; }
  const CacheSim &dcache() const { return DCache; }
  const BranchPredictor &predictor() const { return Predictor; }

private:
  MachineModel Model;
  CacheSim ICache;
  CacheSim DCache;
  BranchPredictor Predictor;
  std::array<uint64_t, static_cast<size_t>(CycleCategory::NumCategories)>
      Accumulated{};
  CycleCategory Current = CycleCategory::App;
};

} // namespace arch
} // namespace sdt

#endif // STRATAIB_ARCH_TIMING_H
