//===- arch/CacheSim.h - Set-associative cache simulator --------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, LRU, write-allocate cache simulator. The paper's
/// central cross-mechanism tradeoff is cache residency: IBTC lookups hit
/// the *data* cache (the translation table is data), while sieve lookups
/// hit the *instruction* cache (the dispatch stubs are code). The timing
/// model instantiates one CacheSim per cache and charges the miss penalty
/// whenever an access misses.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ARCH_CACHESIM_H
#define STRATAIB_ARCH_CACHESIM_H

#include <cstdint>
#include <vector>

namespace sdt {
namespace arch {

/// Cache geometry. All fields must be powers of two.
struct CacheConfig {
  uint32_t SizeBytes = 16 * 1024;
  uint32_t LineBytes = 32;
  uint32_t Associativity = 2;

  uint32_t numSets() const {
    return SizeBytes / (LineBytes * Associativity);
  }
};

/// One level of set-associative LRU cache.
class CacheSim {
public:
  explicit CacheSim(const CacheConfig &Config);

  /// Touches the line containing \p Addr. Returns true on hit. Misses
  /// allocate (write-allocate policy for stores too).
  ///
  /// Fast path: each set remembers its most-recently-used way, so the
  /// common touch-the-same-line-again case hits without scanning every
  /// way. Hit/miss results, LRU state, and counters are bit-identical to
  /// the full scan.
  bool access(uint32_t Addr);

  /// True if the line containing \p Addr is currently resident (no state
  /// change; used by tests).
  bool isResident(uint32_t Addr) const;

  /// Credits \p N hits without touching line state — the batched form of
  /// N repeat accesses to the line access() touched last. Exact by
  /// construction: a repeat touch of the most-recently-used line can
  /// never miss, and refreshing its LastUse stamp (already the largest in
  /// its set) cannot change any later LRU victim choice, so dropping the
  /// touches leaves every future hit/miss outcome — and therefore every
  /// counter — bit-identical. The pre-decoded execution engine uses this
  /// to probe the I-cache once per fetched line-span instead of once per
  /// instruction.
  void creditHits(uint64_t N) { Hits += N; }

  /// Drops all lines (used when the fragment cache is flushed, which
  /// invalidates the translated-code footprint).
  void flush();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t accesses() const { return Hits + Misses; }

  const CacheConfig &config() const { return Config; }

private:
  struct Way {
    uint32_t Tag = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  uint32_t setIndex(uint32_t Addr) const;
  uint32_t tagOf(uint32_t Addr) const;

  CacheConfig Config;
  uint32_t LineShift;
  uint32_t SetMask;
  std::vector<Way> Ways; ///< numSets x Associativity, row-major.
  std::vector<uint32_t> MruWay; ///< Per set: way index touched last.
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace arch
} // namespace sdt

#endif // STRATAIB_ARCH_CACHESIM_H
