//===- arch/Timing.cpp -----------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Timing.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "arch/Timing.h"

#include <cassert>

using namespace sdt;
using namespace sdt::arch;
using namespace sdt::isa;

const char *sdt::arch::cycleCategoryName(CycleCategory C) {
  switch (C) {
  case CycleCategory::App:
    return "app";
  case CycleCategory::Translate:
    return "translate";
  case CycleCategory::Dispatch:
    return "dispatch";
  case CycleCategory::IBLookup:
    return "ib-lookup";
  case CycleCategory::Link:
    return "link";
  case CycleCategory::Instrument:
    return "instrument";
  case CycleCategory::NumCategories:
    break;
  }
  assert(false && "invalid category");
  return "?";
}

TimingModel::TimingModel(const MachineModel &Model)
    : Model(Model), ICache(Model.ICache), DCache(Model.DCache),
      Predictor(Model.Predictor) {}

void TimingModel::chargeFetch(uint32_t Addr) {
  if (!ICache.access(Addr))
    charge(Model.ICacheMissPenalty);
}

void TimingModel::chargeCodeRange(uint32_t Addr, uint32_t Bytes) {
  if (Bytes == 0)
    return;
  uint32_t Line = Model.ICache.LineBytes;
  uint32_t First = Addr & ~(Line - 1);
  uint32_t Last = (Addr + Bytes - 1) & ~(Line - 1);
  for (uint32_t A = First;; A += Line) {
    if (!ICache.access(A))
      charge(Model.ICacheMissPenalty);
    if (A == Last)
      break;
  }
}

void TimingModel::chargeLoad(uint32_t Addr) {
  charge(Model.LoadCost);
  if (!DCache.access(Addr))
    charge(Model.DCacheMissPenalty);
}

void TimingModel::chargeStore(uint32_t Addr) {
  charge(Model.StoreCost);
  if (!DCache.access(Addr))
    charge(Model.DCacheMissPenalty);
}

void TimingModel::chargeExecute(const Instruction &I) {
  switch (I.Op) {
  case Opcode::Mul:
    charge(Model.MulCost);
    return;
  case Opcode::Div:
  case Opcode::Rem:
    charge(Model.DivCost);
    return;
  default:
    charge(Model.AluCost);
    return;
  }
}

void TimingModel::chargeCondBranch(uint32_t Pc, bool Taken) {
  charge(Model.BranchCost);
  if (!Predictor.predictConditional(Pc, Taken))
    charge(Model.CondMispredictPenalty);
}

void TimingModel::chargeDirectJump() { charge(Model.JumpCost); }

void TimingModel::chargeCallLink(uint32_t ReturnAddr) {
  charge(Model.JumpCost);
  Predictor.pushReturn(ReturnAddr);
}

void TimingModel::chargeIndirectJump(uint32_t Pc, uint32_t Target) {
  charge(Model.IndirectCost);
  if (!Predictor.predictIndirect(Pc, Target))
    charge(Model.IndirectMispredictPenalty);
}

void TimingModel::chargeReturn(uint32_t Target) {
  charge(Model.IndirectCost);
  if (!Predictor.predictReturn(Target))
    charge(Model.ReturnMispredictPenalty);
}

void TimingModel::chargeSyscall() { charge(Model.SyscallCost); }

void TimingModel::chargeContextSave() { charge(Model.ContextSaveCost); }

void TimingModel::chargeContextRestore() {
  charge(Model.ContextRestoreCost);
}

void TimingModel::chargeFlagSave(bool FullSave) {
  charge(FullSave ? Model.FlagSaveFullCost : Model.FlagSaveLightCost);
}

void TimingModel::chargeFlagRestore(bool FullSave) {
  charge(FullSave ? Model.FlagRestoreFullCost : Model.FlagRestoreLightCost);
}

void TimingModel::chargeMapLookup() { charge(Model.MapLookupCost); }

void TimingModel::chargeTranslation(unsigned GuestInstrCount) {
  charge(static_cast<uint64_t>(Model.TranslateCostPerInstr) *
         GuestInstrCount);
}

void TimingModel::chargeLinkPatch() { charge(Model.LinkPatchCost); }

void TimingModel::chargeAluOps(unsigned Count) {
  charge(static_cast<uint64_t>(Model.AluCost) * Count);
}

uint64_t TimingModel::totalCycles() const {
  uint64_t Total = 0;
  for (uint64_t C : Accumulated)
    Total += C;
  return Total;
}
