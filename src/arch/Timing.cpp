//===- arch/Timing.cpp -----------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Timing.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "arch/Timing.h"

#include <cassert>

using namespace sdt;
using namespace sdt::arch;
using namespace sdt::isa;

const char *sdt::arch::cycleCategoryName(CycleCategory C) {
  switch (C) {
  case CycleCategory::App:
    return "app";
  case CycleCategory::Translate:
    return "translate";
  case CycleCategory::Dispatch:
    return "dispatch";
  case CycleCategory::IBLookup:
    return "ib-lookup";
  case CycleCategory::Link:
    return "link";
  case CycleCategory::Instrument:
    return "instrument";
  case CycleCategory::SnapshotLoad:
    return "snapshot-load";
  case CycleCategory::NumCategories:
    break;
  }
  assert(false && "invalid category");
  return "?";
}

TimingModel::TimingModel(const MachineModel &Model)
    : Model(Model), ICache(Model.ICache), DCache(Model.DCache),
      Predictor(Model.Predictor) {}

// Each cost method has an explicit-category core; the category-less form
// charges the current category, so pre-existing callers (the native VM
// loop, tests) behave exactly as before.

void TimingModel::chargeFetch(uint32_t Addr) {
  if (!ICache.access(Addr))
    charge(Model.ICacheMissPenalty);
}

void TimingModel::chargeCodeRange(CycleCategory C, uint32_t Addr,
                                  uint32_t Bytes) {
  if (Bytes == 0)
    return;
  uint32_t Line = Model.ICache.LineBytes;
  uint32_t First = Addr & ~(Line - 1);
  uint32_t Last = (Addr + Bytes - 1) & ~(Line - 1);
  for (uint32_t A = First;; A += Line) {
    if (!ICache.access(A))
      charge(C, Model.ICacheMissPenalty);
    if (A == Last)
      break;
  }
}

void TimingModel::chargeCodeRange(uint32_t Addr, uint32_t Bytes) {
  chargeCodeRange(Current, Addr, Bytes);
}

void TimingModel::chargeLoad(CycleCategory C, uint32_t Addr) {
  charge(C, Model.LoadCost);
  if (!DCache.access(Addr))
    charge(C, Model.DCacheMissPenalty);
}

void TimingModel::chargeLoad(uint32_t Addr) { chargeLoad(Current, Addr); }

void TimingModel::chargeStore(CycleCategory C, uint32_t Addr) {
  charge(C, Model.StoreCost);
  if (!DCache.access(Addr))
    charge(C, Model.DCacheMissPenalty);
}

void TimingModel::chargeStore(uint32_t Addr) { chargeStore(Current, Addr); }

void TimingModel::chargeExecute(const Instruction &I) {
  switch (I.Op) {
  case Opcode::Mul:
    charge(Model.MulCost);
    return;
  case Opcode::Div:
  case Opcode::Rem:
    charge(Model.DivCost);
    return;
  default:
    charge(Model.AluCost);
    return;
  }
}

void TimingModel::chargeCondBranch(CycleCategory C, uint32_t Pc,
                                   bool Taken) {
  charge(C, Model.BranchCost);
  if (!Predictor.predictConditional(Pc, Taken))
    charge(C, Model.CondMispredictPenalty);
}

void TimingModel::chargeCondBranch(uint32_t Pc, bool Taken) {
  chargeCondBranch(Current, Pc, Taken);
}

void TimingModel::chargeDirectJump(CycleCategory C) {
  charge(C, Model.JumpCost);
}

void TimingModel::chargeDirectJump() { chargeDirectJump(Current); }

void TimingModel::chargeCallLink(uint32_t ReturnAddr) {
  charge(Model.JumpCost);
  Predictor.pushReturn(ReturnAddr);
}

void TimingModel::chargeIndirectJump(CycleCategory C, uint32_t Pc,
                                     uint32_t Target) {
  charge(C, Model.IndirectCost);
  if (!Predictor.predictIndirect(Pc, Target))
    charge(C, Model.IndirectMispredictPenalty);
}

void TimingModel::chargeIndirectJump(uint32_t Pc, uint32_t Target) {
  chargeIndirectJump(Current, Pc, Target);
}

void TimingModel::chargeReturn(CycleCategory C, uint32_t Target) {
  charge(C, Model.IndirectCost);
  if (!Predictor.predictReturn(Target))
    charge(C, Model.ReturnMispredictPenalty);
}

void TimingModel::chargeReturn(uint32_t Target) {
  chargeReturn(Current, Target);
}

void TimingModel::chargeSyscall() { charge(Model.SyscallCost); }

void TimingModel::chargeContextSave(CycleCategory C) {
  charge(C, Model.ContextSaveCost);
}

void TimingModel::chargeContextSave() { chargeContextSave(Current); }

void TimingModel::chargeContextRestore(CycleCategory C) {
  charge(C, Model.ContextRestoreCost);
}

void TimingModel::chargeContextRestore() { chargeContextRestore(Current); }

void TimingModel::chargeFlagSave(CycleCategory C, bool FullSave) {
  charge(C, FullSave ? Model.FlagSaveFullCost : Model.FlagSaveLightCost);
}

void TimingModel::chargeFlagSave(bool FullSave) {
  chargeFlagSave(Current, FullSave);
}

void TimingModel::chargeFlagRestore(CycleCategory C, bool FullSave) {
  charge(C,
         FullSave ? Model.FlagRestoreFullCost : Model.FlagRestoreLightCost);
}

void TimingModel::chargeFlagRestore(bool FullSave) {
  chargeFlagRestore(Current, FullSave);
}

void TimingModel::chargeMapLookup(CycleCategory C) {
  charge(C, Model.MapLookupCost);
}

void TimingModel::chargeMapLookup() { chargeMapLookup(Current); }

void TimingModel::chargeTranslation(CycleCategory C,
                                    unsigned GuestInstrCount) {
  charge(C, static_cast<uint64_t>(Model.TranslateCostPerInstr) *
                GuestInstrCount);
}

void TimingModel::chargeTranslation(unsigned GuestInstrCount) {
  chargeTranslation(Current, GuestInstrCount);
}

void TimingModel::chargeLinkPatch(CycleCategory C) {
  charge(C, Model.LinkPatchCost);
}

void TimingModel::chargeLinkPatch() { chargeLinkPatch(Current); }

void TimingModel::chargeAluOps(CycleCategory C, unsigned Count) {
  charge(C, static_cast<uint64_t>(Model.AluCost) * Count);
}

void TimingModel::chargeAluOps(unsigned Count) {
  chargeAluOps(Current, Count);
}

uint64_t TimingModel::totalCycles() const {
  uint64_t Total = 0;
  for (uint64_t C : Accumulated)
    Total += C;
  return Total;
}
