//===- arch/MachineModel.cpp -----------------------------------*- C++ -*-===//
//
// Part of StrataIB. See MachineModel.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "arch/MachineModel.h"

using namespace sdt;
using namespace sdt::arch;

MachineModel sdt::arch::x86Model() {
  MachineModel M;
  M.Name = "x86";

  M.AluCost = 1;
  M.MulCost = 3;
  M.DivCost = 25;
  M.LoadCost = 2;
  M.StoreCost = 1;
  M.BranchCost = 1;
  M.JumpCost = 1;
  M.IndirectCost = 2;
  M.SyscallCost = 100;

  // Deep pipeline: mispredicts are expensive.
  M.CondMispredictPenalty = 20;
  M.IndirectMispredictPenalty = 24;
  M.ReturnMispredictPenalty = 24;

  M.ICacheMissPenalty = 12;
  M.DCacheMissPenalty = 14;

  M.ContextSaveCost = 45;
  M.ContextRestoreCost = 45;
  // The paper's x86 headline: pushf/popf-style full EFLAGS preservation is
  // very expensive; the lahf/sahf-style light save is nearly free.
  M.FlagSaveFullCost = 22;
  M.FlagRestoreFullCost = 22;
  M.FlagSaveLightCost = 2;
  M.FlagRestoreLightCost = 2;

  // cmp imm32 is a single instruction on a CISC machine.
  M.SieveStubOps = 1;
  M.MapLookupCost = 130;
  M.TranslateCostPerInstr = 350;
  M.LinkPatchCost = 60;

  M.ICache = {/*SizeBytes=*/16 * 1024, /*LineBytes=*/64,
              /*Associativity=*/4};
  M.DCache = {/*SizeBytes=*/16 * 1024, /*LineBytes=*/64,
              /*Associativity=*/4};
  M.Predictor = {/*GshareEntries=*/4096, /*BtbEntries=*/512,
                 /*RasDepth=*/16};
  return M;
}

MachineModel sdt::arch::sparcModel() {
  MachineModel M;
  M.Name = "sparc";

  M.AluCost = 1;
  M.MulCost = 6;
  M.DivCost = 40;
  M.LoadCost = 2;
  M.StoreCost = 1;
  M.BranchCost = 1;
  M.JumpCost = 1;
  M.IndirectCost = 3;
  M.SyscallCost = 120;

  // Shallower pipeline: cheaper mispredicts.
  M.CondMispredictPenalty = 8;
  M.IndirectMispredictPenalty = 10;
  M.ReturnMispredictPenalty = 10;

  M.ICacheMissPenalty = 14;
  M.DCacheMissPenalty = 16;

  // Register windows make a full context switch costly...
  M.ContextSaveCost = 70;
  M.ContextRestoreCost = 70;
  // ...but condition codes are a register read: full and light saves are
  // both cheap, so the paper's flag-save distinction barely matters here.
  M.FlagSaveFullCost = 3;
  M.FlagRestoreFullCost = 3;
  M.FlagSaveLightCost = 2;
  M.FlagRestoreLightCost = 2;

  // Each sieve stub must materialise its 32-bit tag (sethi+or) before
  // comparing — fixed-width instructions cannot embed the constant.
  M.SieveStubOps = 4;
  M.MapLookupCost = 150;
  M.TranslateCostPerInstr = 400;
  M.LinkPatchCost = 70;

  M.ICache = {/*SizeBytes=*/32 * 1024, /*LineBytes=*/32,
              /*Associativity=*/4};
  M.DCache = {/*SizeBytes=*/64 * 1024, /*LineBytes=*/32,
              /*Associativity=*/4};
  // Weaker indirect prediction hardware than the x86 model.
  M.Predictor = {/*GshareEntries=*/2048, /*BtbEntries=*/128,
                 /*RasDepth=*/8};
  return M;
}

MachineModel sdt::arch::simpleModel() {
  MachineModel M;
  M.Name = "simple";

  M.AluCost = 1;
  M.MulCost = 1;
  M.DivCost = 1;
  M.LoadCost = 1;
  M.StoreCost = 1;
  M.BranchCost = 1;
  M.JumpCost = 1;
  M.IndirectCost = 1;
  M.SyscallCost = 1;

  M.CondMispredictPenalty = 0;
  M.IndirectMispredictPenalty = 0;
  M.ReturnMispredictPenalty = 0;

  M.ICacheMissPenalty = 0;
  M.DCacheMissPenalty = 0;

  M.ContextSaveCost = 10;
  M.ContextRestoreCost = 10;
  M.FlagSaveFullCost = 4;
  M.FlagRestoreFullCost = 4;
  M.FlagSaveLightCost = 1;
  M.FlagRestoreLightCost = 1;
  M.MapLookupCost = 20;
  M.TranslateCostPerInstr = 50;
  M.LinkPatchCost = 5;

  M.ICache = {/*SizeBytes=*/1024, /*LineBytes=*/32, /*Associativity=*/1};
  M.DCache = {/*SizeBytes=*/1024, /*LineBytes=*/32, /*Associativity=*/1};
  M.Predictor = {/*GshareEntries=*/64, /*BtbEntries=*/16, /*RasDepth=*/4};
  return M;
}

std::optional<MachineModel>
sdt::arch::modelByName(const std::string &Name) {
  if (Name == "x86")
    return x86Model();
  if (Name == "sparc")
    return sparcModel();
  if (Name == "simple")
    return simpleModel();
  return std::nullopt;
}

std::vector<std::string> sdt::arch::allModelNames() {
  return {"x86", "sparc", "simple"};
}

MachineModel sdt::arch::withPredictor(MachineModel M,
                                      const PredictorConfig &P) {
  M.Predictor = P;
  M.Name += "/" + P.describe();
  return M;
}
