//===- arch/BranchPredictor.h - Branch prediction model ---------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch prediction substrate: a gshare-style conditional predictor, a
/// pluggable *indirect-target* predictor family, and a return-address
/// stack.
///
/// This model is what gives the paper's architecture story its teeth:
/// native hardware predicts *returns* almost perfectly through the RAS,
/// but an SDT that translates returns into hash-table lookups issues an
/// indirect jump the indirect predictor must handle instead — destroying
/// the RAS win. Fast returns recover it, which is why they matter so
/// much.
///
/// The indirect-target side is a family, because which *software* IB
/// mechanism wins depends on how well the *hardware* predicts the
/// indirect jumps that mechanism emits (the modern sequel to the paper's
/// x86-vs-SPARC crossover; see bench/e17_predictor_quality.cpp):
///
///   - None:       analytic lower bound — every indirect transfer
///                 mispredicts (a machine with no indirect predictor).
///   - Btb:        tagged direct-mapped last-target BTB (the classic
///                 organisation; what older hardware shipped).
///   - TaggedIbtb: set-associative iBTB indexed by a hash of the branch
///                 PC and a global *path history* of recent indirect
///                 targets, LRU within a set (Sniper-style ibtb.h; the
///                 organisation "BTB Reverse Engineering on Arm"
///                 documents). Path history lets one polymorphic site
///                 hold a target per calling context.
///   - Perfect:    analytic upper bound — no indirect transfer ever
///                 mispredicts.
///
/// None and Perfect bound the host's *entire* indirect-control-flow
/// prediction, returns included: under None even RAS-friendly returns
/// mispredict, under Perfect everything hits. Btb and TaggedIbtb pair
/// with a real RAS for returns.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ARCH_BRANCHPREDICTOR_H
#define STRATAIB_ARCH_BRANCHPREDICTOR_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sdt {
namespace arch {

/// Which indirect-target predictor the machine models.
enum class PredictorKind : uint8_t {
  None,       ///< Every indirect transfer mispredicts (lower bound).
  Btb,        ///< Tagged direct-mapped last-target BTB.
  TaggedIbtb, ///< Set-associative, PC ^ path-history indexed, tagged.
  Perfect,    ///< No indirect transfer ever mispredicts (upper bound).
};

/// Returns "none", "btb", "ibtb", or "perfect".
const char *predictorKindName(PredictorKind K);

/// Parses a predictorKindName() string; std::nullopt for unknown names.
std::optional<PredictorKind> parsePredictorKind(const std::string &Name);

/// Predictor geometry. All table sizes must be powers of two.
struct PredictorConfig {
  uint32_t GshareEntries = 4096; ///< 2-bit counters.
  uint32_t BtbEntries = 512;     ///< Indirect-target entries (all kinds).
  uint32_t RasDepth = 16;        ///< Return-address stack.
  PredictorKind Kind = PredictorKind::Btb;
  uint32_t IbtbWays = 4;        ///< TaggedIbtb set associativity.
  uint32_t IbtbHistoryBits = 8; ///< Path-history bits hashed into the index.

  /// Short label for benchmark output: "none", "btb:512",
  /// "ibtb:512x4h8", "perfect".
  std::string describe() const;
};

/// Combined conditional/indirect/return predictor.
class BranchPredictor {
public:
  explicit BranchPredictor(const PredictorConfig &Config);

  /// Predicts and trains on a conditional branch at \p Pc with outcome
  /// \p Taken. Returns true if the prediction was correct.
  bool predictConditional(uint32_t Pc, bool Taken);

  /// Predicts and trains on an indirect branch at \p Pc resolving to
  /// \p Target. Returns true if the indirect predictor named the target.
  bool predictIndirect(uint32_t Pc, uint32_t Target);

  /// Records a call: pushes \p ReturnAddr onto the RAS.
  void pushReturn(uint32_t ReturnAddr);

  /// Predicts and trains on a return resolving to \p Target. Returns true
  /// if the RAS top matched (the common case for well-nested code).
  /// Under PredictorKind::None / Perfect the analytic bound applies
  /// instead of the RAS.
  bool predictReturn(uint32_t Target);

  /// Drops all state (used across benchmark repetitions).
  void reset();

  uint64_t conditionalMispredicts() const { return CondMispredicts; }
  uint64_t indirectMispredicts() const { return IndirectMispredicts; }
  uint64_t returnMispredicts() const { return ReturnMispredicts; }
  /// Total predictIndirect / predictReturn calls (for mispredict rates).
  uint64_t indirectLookups() const { return IndirectLookups; }
  uint64_t returnLookups() const { return ReturnLookups; }

private:
  /// One indirect-target entry, shared by the Btb and TaggedIbtb kinds.
  /// The explicit valid bit matters: guest address 0 is a legal indirect
  /// target, so "empty" must not be encodable as a target value (a cold
  /// entry once stored 0 and silently counted a genuine 0-target as a
  /// correct prediction). The tag rejects aliased PCs that an untagged
  /// table would mispredict *as hits*.
  struct TargetEntry {
    uint32_t Tag = 0;
    uint32_t Target = 0;
    uint64_t LastUse = 0; ///< LRU clock (TaggedIbtb only).
    bool Valid = false;
  };

  bool predictIndirectBtb(uint32_t Pc, uint32_t Target);
  bool predictIndirectIbtb(uint32_t Pc, uint32_t Target);
  uint32_t ibtbSets() const { return Config.BtbEntries / Config.IbtbWays; }

  PredictorConfig Config;
  std::vector<uint8_t> Counters; ///< 2-bit saturating, init weakly not-taken.
  std::vector<TargetEntry> Targets; ///< BTB / iBTB storage.
  std::vector<uint32_t> Ras;
  uint32_t RasTop = 0;      ///< Number of valid entries.
  uint32_t History = 0;     ///< Global branch history for gshare.
  uint32_t PathHistory = 0; ///< Recent indirect-target bits (TaggedIbtb).
  uint64_t Clock = 0;       ///< LRU clock for the TaggedIbtb sets.

  uint64_t CondMispredicts = 0;
  uint64_t IndirectMispredicts = 0;
  uint64_t ReturnMispredicts = 0;
  uint64_t IndirectLookups = 0;
  uint64_t ReturnLookups = 0;
};

} // namespace arch
} // namespace sdt

#endif // STRATAIB_ARCH_BRANCHPREDICTOR_H
