//===- arch/BranchPredictor.h - Branch prediction model ---------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch prediction substrate: a gshare-style conditional predictor, a
/// direct-mapped BTB for indirect branches, and a return-address stack.
///
/// This model is what gives the paper's architecture story its teeth:
/// native hardware predicts *returns* almost perfectly through the RAS,
/// but an SDT that translates returns into hash-table lookups issues an
/// indirect jump the BTB must predict instead — destroying the RAS win.
/// Fast returns recover it, which is why they matter so much.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_ARCH_BRANCHPREDICTOR_H
#define STRATAIB_ARCH_BRANCHPREDICTOR_H

#include <cstdint>
#include <vector>

namespace sdt {
namespace arch {

/// Predictor geometry. All table sizes must be powers of two.
struct PredictorConfig {
  uint32_t GshareEntries = 4096; ///< 2-bit counters.
  uint32_t BtbEntries = 512;     ///< Indirect-target cache.
  uint32_t RasDepth = 16;        ///< Return-address stack.
};

/// Combined conditional/indirect/return predictor.
class BranchPredictor {
public:
  explicit BranchPredictor(const PredictorConfig &Config);

  /// Predicts and trains on a conditional branch at \p Pc with outcome
  /// \p Taken. Returns true if the prediction was correct.
  bool predictConditional(uint32_t Pc, bool Taken);

  /// Predicts and trains on an indirect branch at \p Pc resolving to
  /// \p Target. Returns true if the BTB predicted the target.
  bool predictIndirect(uint32_t Pc, uint32_t Target);

  /// Records a call: pushes \p ReturnAddr onto the RAS.
  void pushReturn(uint32_t ReturnAddr);

  /// Predicts and trains on a return resolving to \p Target. Returns true
  /// if the RAS top matched (the common case for well-nested code).
  bool predictReturn(uint32_t Target);

  /// Drops all state (used across benchmark repetitions).
  void reset();

  uint64_t conditionalMispredicts() const { return CondMispredicts; }
  uint64_t indirectMispredicts() const { return IndirectMispredicts; }
  uint64_t returnMispredicts() const { return ReturnMispredicts; }

private:
  PredictorConfig Config;
  std::vector<uint8_t> Counters; ///< 2-bit saturating, init weakly-taken.
  std::vector<uint32_t> Btb;     ///< Last target per entry (0 = empty).
  std::vector<uint32_t> Ras;
  uint32_t RasTop = 0;  ///< Number of valid entries.
  uint32_t History = 0; ///< Global branch history for gshare.

  uint64_t CondMispredicts = 0;
  uint64_t IndirectMispredicts = 0;
  uint64_t ReturnMispredicts = 0;
};

} // namespace arch
} // namespace sdt

#endif // STRATAIB_ARCH_BRANCHPREDICTOR_H
