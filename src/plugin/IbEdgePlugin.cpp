//===- plugin/IbEdgePlugin.cpp ---------------------------------*- C++ -*-===//
//
// Part of StrataIB. See IbEdgePlugin.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "plugin/IbEdgePlugin.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>

using namespace sdt;
using namespace sdt::plugin;

void IbEdgePlugin::onIBResolved(const IBResolution &R, arch::TimingModel *T) {
  uint64_t Key = (static_cast<uint64_t>(R.SitePc) << 32) | R.GuestTarget;
  ++Edges[Key];
  SiteClass.emplace(R.SitePc, R.Class);
  ++Resolutions[static_cast<int>(R.Class)];
  InlineHits += R.InlineHit;

  if (R.Mechanism) {
    bool Found = false;
    for (auto &[Name, Count] : ByMechanism)
      if (Name == R.Mechanism || std::strcmp(Name, R.Mechanism) == 0) {
        ++Count;
        Found = true;
        break;
      }
    if (!Found)
      ByMechanism.emplace_back(R.Mechanism, 1);
  }

  if (T) {
    // Key hash, then a read-modify-write of the hashed edge-table slot.
    uint32_t H = static_cast<uint32_t>(Key ^ (Key >> 32));
    H *= 0x9e3779b1u;
    uint32_t Slot = (H >> 16) & 0xFFFF;
    T->chargeAluOps(arch::CycleCategory::Instrument, 2);
    T->chargeLoad(arch::CycleCategory::Instrument, IbEdgeTableBase + Slot * 8);
    T->chargeStore(arch::CycleCategory::Instrument,
                   IbEdgeTableBase + Slot * 8);
  }
}

IbEdgePlugin::ClassSummary IbEdgePlugin::summarize(core::IBClass C) const {
  ClassSummary S;
  std::unordered_map<uint32_t, uint64_t> TargetsPerSite;
  for (const auto &[Key, Count] : Edges) {
    uint32_t SitePc = static_cast<uint32_t>(Key >> 32);
    auto It = SiteClass.find(SitePc);
    if (It == SiteClass.end() || It->second != C)
      continue;
    ++S.Edges;
    S.Executions += Count;
    ++TargetsPerSite[SitePc];
  }
  S.Sites = TargetsPerSite.size();
  for (const auto &[Site, Targets] : TargetsPerSite) {
    (void)Site;
    S.PolymorphicSites += Targets > 1;
    S.MaxTargets = std::max(S.MaxTargets, Targets);
  }
  return S;
}

std::vector<Plugin::Metric> IbEdgePlugin::metrics() const {
  std::vector<Metric> Out;
  uint64_t TotalExec = 0;
  static const char *const ClassKey[3] = {"jump", "call", "return"};
  for (int C = 0; C != 3; ++C) {
    ClassSummary S = summarize(static_cast<core::IBClass>(C));
    std::string P = ClassKey[C];
    Out.emplace_back(P + "_sites", S.Sites);
    Out.emplace_back(P + "_edges", S.Edges);
    Out.emplace_back(P + "_executions", S.Executions);
    Out.emplace_back(P + "_polymorphic_sites", S.PolymorphicSites);
    Out.emplace_back(P + "_max_targets", S.MaxTargets);
    TotalExec += S.Executions;
  }
  Out.emplace_back("total_executions", TotalExec);
  Out.emplace_back("inline_hits", InlineHits);
  return Out;
}

std::string IbEdgePlugin::reportText() const {
  std::string Out;
  char Buf[160];
  static const char *const ClassName[3] = {"ind-jump", "ind-call", "return"};
  Out += "class      sites  edges  executions  poly-sites  max-targets\n";
  for (int C = 0; C != 3; ++C) {
    ClassSummary S = summarize(static_cast<core::IBClass>(C));
    std::snprintf(Buf, sizeof(Buf), "%-9s %6llu %6llu %11llu %11llu %12llu\n",
                  ClassName[C], static_cast<unsigned long long>(S.Sites),
                  static_cast<unsigned long long>(S.Edges),
                  static_cast<unsigned long long>(S.Executions),
                  static_cast<unsigned long long>(S.PolymorphicSites),
                  static_cast<unsigned long long>(S.MaxTargets));
    Out += Buf;
  }
  // Stable order for the serving-path split (insertion order follows
  // first resolution, which is deterministic, but sort by name anyway so
  // reports diff cleanly across configs).
  std::vector<std::pair<const char *, uint64_t>> Paths = ByMechanism;
  std::sort(Paths.begin(), Paths.end(), [](const auto &A, const auto &B) {
    return std::strcmp(A.first, B.first) < 0;
  });
  for (const auto &[Name, Count] : Paths) {
    std::snprintf(Buf, sizeof(Buf), "served by %-14s %llu\n", Name,
                  static_cast<unsigned long long>(Count));
    Out += Buf;
  }
  return Out;
}
