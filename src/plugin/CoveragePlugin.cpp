//===- plugin/CoveragePlugin.cpp -------------------------------*- C++ -*-===//
//
// Part of StrataIB. See CoveragePlugin.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "plugin/CoveragePlugin.h"

#include <cstdio>

using namespace sdt;
using namespace sdt::plugin;

void CoveragePlugin::onFragmentEntry(uint32_t FragIndex, uint32_t GuestEntry,
                                     arch::TimingModel *T) {
  (void)FragIndex;
  uint32_t Cur = blockId(GuestEntry);
  uint32_t Idx = (Cur ^ Prev) & (MapEntries - 1);
  ++Map[Idx];
  Prev = Cur >> 1;
  ++Entries;
  if (T) {
    // Hash+xor, then a read-modify-write of the 32-bit map counter.
    T->chargeAluOps(arch::CycleCategory::Instrument, 2);
    T->chargeLoad(arch::CycleCategory::Instrument, CoverageMapBase + Idx * 4);
    T->chargeStore(arch::CycleCategory::Instrument, CoverageMapBase + Idx * 4);
  }
}

std::vector<Plugin::Metric> CoveragePlugin::metrics() const {
  uint64_t Edges = 0;
  uint64_t MaxHits = 0;
  for (uint32_t C : Map) {
    if (C) {
      ++Edges;
      if (C > MaxHits)
        MaxHits = C;
    }
  }
  return {{"block_entries", Entries},
          {"edges_hit", Edges},
          {"map_entries", MapEntries},
          {"max_edge_hits", MaxHits}};
}

std::string CoveragePlugin::reportText() const {
  uint64_t Edges = 0;
  for (uint32_t C : Map)
    Edges += C != 0;
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf),
                "%llu block entries, %llu/%u map edges hit (%.2f%%)\n",
                static_cast<unsigned long long>(Entries),
                static_cast<unsigned long long>(Edges), MapEntries,
                100.0 * static_cast<double>(Edges) / MapEntries);
  return Buf;
}
