//===- plugin/Plugin.h - Instrumentation plugin interface --------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public instrumentation API over the engine's trace spine: a Plugin
/// registers callbacks at translation time (inspect each fragment/trace as
/// it is built — guest PCs, IB sites, the emitted HostInstr stream) and at
/// execution time (fragment entry, IB resolution with the resolved target,
/// guest loads/stores). The design follows QEMU's TB-hook plugin API: the
/// engine owns a PluginManager and invokes it from the same `if (...)`
/// guarded sites the trace ring buffer uses, so a run with no plugins
/// loaded is bit-identical in simulated cycles to a run without the
/// subsystem.
///
/// Costs are modeled, not hidden: execution-time probes charge their own
/// loads/stores/ALU ops to CycleCategory::Instrument at fixed simulated
/// addresses (so probe data structures pollute the modeled D-cache exactly
/// like InstrumentBlockCounts does). Translation-time inspection runs on
/// the host side of the translator and charges nothing, mirroring how a
/// real SDT amortises instrumentation into translation.
///
/// Coherence contract: translation-time state keyed by fragment index must
/// be dropped when the engine reports onFragmentInvalidated (PR-3 partial
/// eviction, PR-4 self-modifying-code invalidation) or onCacheFlush; a
/// fragment index may be reused after either. Guest-level state (coverage
/// bitmaps, edge matrices, memory shadow) survives cache churn untouched.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_PLUGIN_PLUGIN_H
#define STRATAIB_PLUGIN_PLUGIN_H

#include "arch/Timing.h"
#include "core/HostInstr.h"
#include "core/SdtOptions.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sdt {
namespace plugin {

/// Simulated address regions for plugin probe data (distinct from the
/// mechanism tables at 0x60000000..0x73ffffff so cache-pollution effects
/// are attributable per plugin).
inline constexpr uint32_t CoverageMapBase = 0x74000000;
inline constexpr uint32_t IbEdgeTableBase = 0x76000000;
inline constexpr uint32_t MemShadowBase = 0x78000000;

/// The guest image/memory layout, handed to every plugin when it is
/// attached to an engine (before any other callback).
struct GuestLayout {
  uint32_t ImageBase = 0;   ///< Program load address.
  uint32_t ImageBytes = 0;  ///< Program image size.
  uint32_t MemoryBytes = 0; ///< Total guest memory size.
  uint32_t StackTop = 0;    ///< Initial stack top (stack grows down).
};

/// One indirect-branch translation site inside a fragment view.
struct IBSiteView {
  uint32_t SiteId = 0;      ///< Index into the engine's site table.
  uint32_t GuestPc = 0;     ///< Guest address of the jr/jalr/ret.
  core::IBClass Class = core::IBClass::Jump;
  const char *Mechanism = nullptr; ///< Bound mechanism's name().
  /// True for the fallback site behind a speculation guard (only executes
  /// on guard misses).
  bool SpecFallback = false;
};

/// A just-translated fragment (or superblock trace), presented to
/// translation-time callbacks after it has been installed in the cache.
struct FragmentView {
  uint32_t FragIndex = 0;  ///< Cache index; key for invalidation.
  uint32_t GuestEntry = 0; ///< Guest PC this fragment translates.
  bool IsTrace = false;    ///< Built by the superblock builder.
  uint32_t CodeBytes = 0;  ///< Simulated code size (incl. IB inline seqs).
  /// The emitted host instruction stream (valid only for the duration of
  /// the callback — copy what you keep).
  const std::vector<core::HostInstr> *Code = nullptr;
  /// Every IB site in the stream, with its dynamic class and the
  /// mechanism bound to that class.
  std::vector<IBSiteView> Sites;
};

/// One executed indirect branch, after the engine resolved its target.
struct IBResolution {
  uint32_t SiteId = 0;  ///< Engine site-table index.
  uint32_t SitePc = 0;  ///< Guest address of the IB instruction.
  core::IBClass Class = core::IBClass::Jump;
  /// Which path served it: a mechanism's name() ("ibtc", "sieve", ...) or
  /// one of the engine fast paths ("inline", "fast-return",
  /// "shadow-stack", "spec-guard").
  const char *Mechanism = nullptr;
  /// True when the translated target was produced without entering the
  /// dispatcher (mechanism hit, inline-cache hit, guard hit, served
  /// return).
  bool InlineHit = false;
  uint32_t GuestTarget = 0; ///< The dynamic guest target.
};

/// Base class for instrumentation plugins. Create one per engine run;
/// plugins are single-threaded like the engine that owns them.
class Plugin {
public:
  virtual ~Plugin() = default;

  /// Stable short name ("coverage"); also the STRATAIB_PLUGINS spec token.
  virtual const char *name() const = 0;

  /// Which execution-time callbacks this plugin wants. The manager caches
  /// the union so the engine hot loop tests one boolean per category.
  /// Translation-time and coherence callbacks are always delivered.
  struct CallbackSet {
    bool FragmentEntry = false;
    bool IBResolved = false;
    bool MemAccess = false;
  };
  virtual CallbackSet callbacks() const { return {}; }

  // --- Lifecycle ----------------------------------------------------------

  /// Delivered once, before any other callback, when the manager is
  /// attached to an engine.
  virtual void onAttach(const GuestLayout &Layout) { (void)Layout; }

  // --- Translation time ---------------------------------------------------

  /// A fragment (or trace) was translated and installed in the code
  /// cache. Fires exactly once per installation — including snapshot
  /// rehydration (SdtEngine::prewarm), which translates each snapshot
  /// fragment once and must not replay callbacks on run(). Charges no
  /// simulated cycles.
  virtual void onFragmentTranslated(const FragmentView &F) { (void)F; }

  /// Fragment \p FragIndex was evicted (cache pressure) or invalidated
  /// (guest code write). Any state keyed by the index must be dropped;
  /// the index may be reused by a future translation.
  virtual void onFragmentInvalidated(uint32_t FragIndex,
                                     uint32_t GuestEntry) {
    (void)FragIndex;
    (void)GuestEntry;
  }

  /// The whole fragment cache (and all mechanism state) was flushed;
  /// every fragment index is invalid.
  virtual void onCacheFlush() {}

  // --- Execution time (charge CycleCategory::Instrument on \p T) ---------

  /// Control entered fragment \p FragIndex at its head. \p T may be null
  /// (no timing model attached); probes must then skip their charges.
  virtual void onFragmentEntry(uint32_t FragIndex, uint32_t GuestEntry,
                               arch::TimingModel *T) {
    (void)FragIndex;
    (void)GuestEntry;
    (void)T;
  }

  /// An indirect branch resolved. Fires exactly once per executed IB,
  /// whichever path served it.
  virtual void onIBResolved(const IBResolution &R, arch::TimingModel *T) {
    (void)R;
    (void)T;
  }

  /// The guest executed a load or store of \p Addr at \p GuestPc.
  virtual void onMemAccess(uint32_t GuestPc, uint32_t Addr, bool IsStore,
                           arch::TimingModel *T) {
    (void)GuestPc;
    (void)Addr;
    (void)IsStore;
    (void)T;
  }

  // --- Reporting ----------------------------------------------------------

  /// Flat named counters for machine-readable summaries (bench JSON,
  /// service aggregates). Keys are snake_case, stable across runs.
  using Metric = std::pair<std::string, uint64_t>;
  virtual std::vector<Metric> metrics() const { return {}; }

  /// Optional multi-line human-readable report ("" when mute).
  virtual std::string reportText() const { return std::string(); }
};

} // namespace plugin
} // namespace sdt

#endif // STRATAIB_PLUGIN_PLUGIN_H
