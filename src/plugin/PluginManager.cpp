//===- plugin/PluginManager.cpp --------------------------------*- C++ -*-===//
//
// Part of StrataIB. See PluginManager.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "plugin/PluginManager.h"

#include "core/FragmentCache.h"
#include "plugin/CoveragePlugin.h"
#include "plugin/IbEdgePlugin.h"
#include "plugin/MemCheckPlugin.h"
#include "support/Json.h"

#include <cstring>

using namespace sdt;
using namespace sdt::plugin;

void PluginManager::add(std::unique_ptr<Plugin> P) {
  Plugin::CallbackSet S = P->callbacks();
  AnyFragmentEntry |= S.FragmentEntry;
  AnyIBResolved |= S.IBResolved;
  AnyMemAccess |= S.MemAccess;
  Plugins.push_back(std::move(P));
}

Plugin *PluginManager::find(const char *Name) const {
  for (const std::unique_ptr<Plugin> &P : Plugins)
    if (std::strcmp(P->name(), Name) == 0)
      return P.get();
  return nullptr;
}

void PluginManager::attach(const GuestLayout &Layout,
                           const char *const MechByClass[3]) {
  for (int C = 0; C != 3; ++C)
    MechNames[C] = MechByClass[C];
  for (const std::unique_ptr<Plugin> &P : Plugins)
    P->onAttach(Layout);
}

void PluginManager::fragmentTranslated(uint32_t FragIndex,
                                       const core::Fragment &F,
                                       bool IsTrace) {
  FragmentView V;
  V.FragIndex = FragIndex;
  V.GuestEntry = F.GuestEntry;
  V.IsTrace = IsTrace;
  V.CodeBytes = F.CodeBytes;
  V.Code = &F.Code;
  for (const core::HostInstr &HI : F.Code) {
    if (HI.Kind != core::HostOpKind::IBLookup)
      continue;
    IBSiteView S;
    S.SiteId = HI.SiteId;
    S.GuestPc = HI.GuestPc;
    S.Class = HI.SiteClass;
    S.Mechanism = MechNames[static_cast<int>(HI.SiteClass)];
    S.SpecFallback = HI.SpecFallback;
    V.Sites.push_back(S);
  }

  // A trace replaces the plain fragment for the same guest entry in the
  // dispatch map, but the old fragment stays live (its head becomes a
  // trampoline), so no invalidation fires here; the record table simply
  // gains the new index.
  FragRecord R;
  R.GuestEntry = V.GuestEntry;
  R.IsTrace = IsTrace;
  R.IBSites = static_cast<uint32_t>(V.Sites.size());
  Records[FragIndex] = R;
  ++TranslationCallbacks;

  for (const std::unique_ptr<Plugin> &P : Plugins)
    P->onFragmentTranslated(V);
}

void PluginManager::fragmentInvalidated(uint32_t FragIndex,
                                        uint32_t GuestEntry) {
  Records.erase(FragIndex);
  ++InvalidationCallbacks;
  for (const std::unique_ptr<Plugin> &P : Plugins)
    P->onFragmentInvalidated(FragIndex, GuestEntry);
}

void PluginManager::cacheFlushed() {
  Records.clear();
  ++FlushCallbacks;
  for (const std::unique_ptr<Plugin> &P : Plugins)
    P->onCacheFlush();
}

void PluginManager::fragmentEntry(uint32_t FragIndex, uint32_t GuestEntry,
                                  arch::TimingModel *T) {
  for (const std::unique_ptr<Plugin> &P : Plugins)
    P->onFragmentEntry(FragIndex, GuestEntry, T);
}

void PluginManager::ibResolved(const IBResolution &R, arch::TimingModel *T) {
  for (const std::unique_ptr<Plugin> &P : Plugins)
    P->onIBResolved(R, T);
}

void PluginManager::memAccess(uint32_t GuestPc, uint32_t Addr, bool IsStore,
                              arch::TimingModel *T) {
  for (const std::unique_ptr<Plugin> &P : Plugins)
    P->onMemAccess(GuestPc, Addr, IsStore, T);
}

std::vector<Plugin::Metric> PluginManager::metrics() const {
  std::vector<Plugin::Metric> Out;
  for (const std::unique_ptr<Plugin> &P : Plugins)
    for (Plugin::Metric &M : P->metrics()) {
      M.first = std::string(P->name()) + "." + M.first;
      Out.push_back(std::move(M));
    }
  return Out;
}

std::string PluginManager::reportJson() const {
  support::JsonWriter W;
  W.beginObject();
  W.key("plugins").beginArray();
  for (const std::unique_ptr<Plugin> &P : Plugins) {
    W.beginObject();
    W.key("name").value(P->name());
    W.key("metrics").beginObject();
    for (const Plugin::Metric &M : P->metrics())
      W.key(M.first).value(M.second);
    W.endObject();
    std::string Text = P->reportText();
    if (!Text.empty())
      W.key("report").value(Text);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}

std::string PluginManager::reportText() const {
  std::string Out;
  for (const std::unique_ptr<Plugin> &P : Plugins) {
    std::string Text = P->reportText();
    if (Text.empty())
      continue;
    Out += "--- plugin: ";
    Out += P->name();
    Out += " ---\n";
    Out += Text;
    if (Out.back() != '\n')
      Out += '\n';
  }
  return Out;
}

const char *sdt::plugin::knownPluginNames() {
  return "coverage, ibedges, memcheck";
}

std::unique_ptr<Plugin> sdt::plugin::createPlugin(const std::string &Name) {
  if (Name == "coverage")
    return std::make_unique<CoveragePlugin>();
  if (Name == "ibedges")
    return std::make_unique<IbEdgePlugin>();
  if (Name == "memcheck")
    return std::make_unique<MemCheckPlugin>();
  return nullptr;
}

Expected<std::unique_ptr<PluginManager>>
sdt::plugin::createPluginManager(const std::string &Spec) {
  auto Mgr = std::make_unique<PluginManager>();
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Name = Spec.substr(Pos, Comma - Pos);
    // Trim surrounding whitespace so "coverage, memcheck" works.
    while (!Name.empty() && (Name.front() == ' ' || Name.front() == '\t'))
      Name.erase(Name.begin());
    while (!Name.empty() && (Name.back() == ' ' || Name.back() == '\t'))
      Name.pop_back();
    Pos = Comma + 1;
    if (Name.empty())
      continue;
    if (Mgr->find(Name.c_str()))
      return Error::failure("duplicate plugin '" + Name + "' in spec '" +
                            Spec + "'");
    std::unique_ptr<Plugin> P = createPlugin(Name);
    if (!P)
      return Error::failure("unknown plugin '" + Name + "' (known: " +
                            knownPluginNames() + ")");
    Mgr->add(std::move(P));
  }
  return Mgr;
}
