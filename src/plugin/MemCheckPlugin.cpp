//===- plugin/MemCheckPlugin.cpp -------------------------------*- C++ -*-===//
//
// Part of StrataIB. See MemCheckPlugin.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "plugin/MemCheckPlugin.h"

#include <cstdio>

using namespace sdt;
using namespace sdt::plugin;

void MemCheckPlugin::onAttach(const GuestLayout &Layout) {
  uint32_t Words = Layout.MemoryBytes / 4;
  Shadow.assign((Words + 63) / 64, 0);
  // The loader wrote the program image; mark it stored.
  for (uint32_t A = Layout.ImageBase & ~3u;
       A < Layout.ImageBase + Layout.ImageBytes && (A >> 2) < Words; A += 4)
    markWord(A >> 2);
  // The ABI owns the initial-frame area at the stack top.
  uint32_t StackBase =
      Layout.StackTop > StackSlackBytes ? Layout.StackTop - StackSlackBytes : 0;
  for (uint32_t A = StackBase & ~3u; (A >> 2) < Words; A += 4)
    markWord(A >> 2);
}

void MemCheckPlugin::onMemAccess(uint32_t GuestPc, uint32_t Addr, bool IsStore,
                                 arch::TimingModel *T) {
  uint32_t Word = Addr >> 2;
  if ((Word >> 6) >= Shadow.size())
    return; // Out-of-range guest access faults on its own; nothing to track.
  if (IsStore) {
    ++Stores;
    markWord(Word);
  } else {
    ++Loads;
    if (!wordMarked(Word)) {
      ++UninitLoads;
      bool Seen = false;
      for (const Offender &O : Offenders)
        if (O.GuestPc == GuestPc && O.Addr == Addr) {
          Seen = true;
          break;
        }
      if (!Seen && Offenders.size() < MaxOffenders)
        Offenders.push_back({GuestPc, Addr});
    }
  }
  if (T) {
    // Index math plus the shadow-word read; stores write the word back.
    uint32_t ShadowAddr = MemShadowBase + (Word >> 6) * 8;
    T->chargeAluOps(arch::CycleCategory::Instrument, 1);
    T->chargeLoad(arch::CycleCategory::Instrument, ShadowAddr);
    if (IsStore)
      T->chargeStore(arch::CycleCategory::Instrument, ShadowAddr);
  }
}

std::vector<Plugin::Metric> MemCheckPlugin::metrics() const {
  return {{"loads", Loads},
          {"stores", Stores},
          {"uninitialised_loads", UninitLoads},
          {"distinct_offenders", Offenders.size()}};
}

std::string MemCheckPlugin::reportText() const {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "%llu loads, %llu stores, %llu uninitialised loads\n",
                static_cast<unsigned long long>(Loads),
                static_cast<unsigned long long>(Stores),
                static_cast<unsigned long long>(UninitLoads));
  std::string Out = Buf;
  for (const Offender &O : Offenders) {
    std::snprintf(Buf, sizeof(Buf), "  pc 0x%08x loads 0x%08x before any store\n",
                  O.GuestPc, O.Addr);
    Out += Buf;
  }
  if (UninitLoads > Offenders.size()) {
    std::snprintf(Buf, sizeof(Buf), "  (first %zu distinct sites shown)\n",
                  Offenders.size());
    Out += Buf;
  }
  return Out;
}
