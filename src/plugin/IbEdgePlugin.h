//===- plugin/IbEdgePlugin.h - IB callsite->target edge matrix ---*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Indirect-branch edge profiler: a (callsite pc -> dynamic target) count
/// matrix per IB class, accumulated live at every IB resolution — the
/// data behind the paper's Table 1 (sites, dynamic executions, and
/// targets-per-site arity for indirect jumps, indirect calls, and
/// returns), derivable from a single instrumented run instead of a
/// post-hoc trace pass. Also splits resolutions by the serving path
/// (mechanism hit, inline cache, guard, dispatcher miss), which is the
/// per-mechanism view the shootout experiments aggregate.
///
/// Probe cost per resolution: 2 ALU ops (key hash) plus one load+store of
/// the hashed edge-table entry at its simulated address, charged to
/// CycleCategory::Instrument.
///
/// Edges are guest-level state and survive cache churn.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_PLUGIN_IBEDGEPLUGIN_H
#define STRATAIB_PLUGIN_IBEDGEPLUGIN_H

#include "plugin/Plugin.h"

#include <map>
#include <unordered_map>

namespace sdt {
namespace plugin {

class IbEdgePlugin : public Plugin {
public:
  const char *name() const override { return "ibedges"; }
  CallbackSet callbacks() const override {
    CallbackSet S;
    S.IBResolved = true;
    return S;
  }

  void onIBResolved(const IBResolution &R, arch::TimingModel *T) override;

  std::vector<Metric> metrics() const override;
  std::string reportText() const override;

  /// (site pc << 32 | guest target) -> dynamic execution count.
  const std::unordered_map<uint64_t, uint64_t> &edges() const {
    return Edges;
  }

private:
  /// Per-class arity summary derived from the edge matrix.
  struct ClassSummary {
    uint64_t Sites = 0;
    uint64_t Edges = 0;
    uint64_t Executions = 0;
    uint64_t PolymorphicSites = 0;
    uint64_t MaxTargets = 0;
  };
  ClassSummary summarize(core::IBClass C) const;

  std::unordered_map<uint64_t, uint64_t> Edges;
  /// Site pc -> class (sites are monomorphic in class by construction).
  std::unordered_map<uint32_t, core::IBClass> SiteClass;
  uint64_t Resolutions[3] = {0, 0, 0};
  uint64_t InlineHits = 0;
  /// Serving-path split; names are stable static strings but may arrive
  /// via distinct pointers, so bump by content like the trace sink does.
  std::vector<std::pair<const char *, uint64_t>> ByMechanism;
};

} // namespace plugin
} // namespace sdt

#endif // STRATAIB_PLUGIN_IBEDGEPLUGIN_H
