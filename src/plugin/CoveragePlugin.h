//===- plugin/CoveragePlugin.h - AFL-style edge coverage ---------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AFL-style edge-coverage bitmap over guest basic-block transitions: at
/// each fragment entry the plugin hashes the guest entry pc into a block
/// id, XORs it with the (shifted) previous id, and bumps a 64K-entry hit
/// map — the classic `Map[Cur ^ Prev]++; Prev = Cur >> 1` probe (the
/// shift keeps A->B distinct from B->A and self-edges visible). The probe
/// is charged to CycleCategory::Instrument as 2 ALU ops plus one
/// load+store of the map entry at its simulated address, so map locality
/// interacts with the modeled D-cache exactly like a compiled-in probe
/// would.
///
/// Coverage is guest-level state: eviction, SMC invalidation, and cache
/// flushes do not clear the map (the same guest edge re-executed from a
/// re-translated fragment is the same edge).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_PLUGIN_COVERAGEPLUGIN_H
#define STRATAIB_PLUGIN_COVERAGEPLUGIN_H

#include "plugin/Plugin.h"

namespace sdt {
namespace plugin {

class CoveragePlugin : public Plugin {
public:
  static constexpr uint32_t MapEntries = 1u << 16;

  CoveragePlugin() : Map(MapEntries, 0) {}

  const char *name() const override { return "coverage"; }
  CallbackSet callbacks() const override {
    CallbackSet S;
    S.FragmentEntry = true;
    return S;
  }

  void onFragmentEntry(uint32_t FragIndex, uint32_t GuestEntry,
                       arch::TimingModel *T) override;

  std::vector<Metric> metrics() const override;
  std::string reportText() const override;

  const std::vector<uint32_t> &map() const { return Map; }

  /// Deterministic block id for a guest pc (xorshift-multiply mix; pcs
  /// are word-aligned so the low bits are discarded first).
  static uint32_t blockId(uint32_t Pc) {
    uint32_t H = Pc >> 2;
    H ^= H >> 16;
    H *= 0x7feb352du;
    H ^= H >> 15;
    return H & (MapEntries - 1);
  }

private:
  std::vector<uint32_t> Map;
  uint32_t Prev = 0;
  uint64_t Entries = 0;
};

} // namespace plugin
} // namespace sdt

#endif // STRATAIB_PLUGIN_COVERAGEPLUGIN_H
