//===- plugin/MemCheckPlugin.h - Uninitialised-load checker ------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Guest memory-access checker: keeps a word-granular shadow bitmap of
/// guest memory marking which words have ever been stored, and flags every
/// load of a never-stored address (the classic "read of uninitialised
/// memory" check, at word granularity — a byte store marks its whole word,
/// so the check under-reports rather than false-positives on packed
/// data). The loaded program image and the initial stack page are
/// pre-marked: the loader wrote the image, and the ABI owns the region at
/// the stack top.
///
/// Probe cost charged to CycleCategory::Instrument: every access pays
/// 1 ALU op plus a load of its shadow word at the word's simulated shadow
/// address; stores additionally pay the shadow write-back.
///
/// The shadow tracks guest memory, not the code cache, so eviction/SMC/
/// flush callbacks leave it untouched (a guest store stays a store even
/// when the fragment that executed it dies).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_PLUGIN_MEMCHECKPLUGIN_H
#define STRATAIB_PLUGIN_MEMCHECKPLUGIN_H

#include "plugin/Plugin.h"

namespace sdt {
namespace plugin {

class MemCheckPlugin : public Plugin {
public:
  /// Bytes at the stack top pre-marked as initialised (initial frame /
  /// environment area owned by the ABI).
  static constexpr uint32_t StackSlackBytes = 4096;
  /// Offender list cap: the first distinct (pc, addr) pairs kept for the
  /// report; further flagged loads only bump the counter.
  static constexpr size_t MaxOffenders = 16;

  const char *name() const override { return "memcheck"; }
  CallbackSet callbacks() const override {
    CallbackSet S;
    S.MemAccess = true;
    return S;
  }

  void onAttach(const GuestLayout &Layout) override;
  void onMemAccess(uint32_t GuestPc, uint32_t Addr, bool IsStore,
                   arch::TimingModel *T) override;

  std::vector<Metric> metrics() const override;
  std::string reportText() const override;

  struct Offender {
    uint32_t GuestPc = 0;
    uint32_t Addr = 0;
  };
  const std::vector<Offender> &offenders() const { return Offenders; }
  uint64_t uninitialisedLoads() const { return UninitLoads; }

private:
  bool wordMarked(uint32_t Word) const {
    return (Shadow[Word >> 6] >> (Word & 63)) & 1;
  }
  void markWord(uint32_t Word) { Shadow[Word >> 6] |= 1ull << (Word & 63); }

  std::vector<uint64_t> Shadow; ///< One bit per guest word.
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t UninitLoads = 0;
  std::vector<Offender> Offenders;
};

} // namespace plugin
} // namespace sdt

#endif // STRATAIB_PLUGIN_MEMCHECKPLUGIN_H
