//===- plugin/PluginManager.h - Plugin registry + dispatch -------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PluginManager owns an engine's plugins and fans callbacks out to
/// them. SdtEngine/Translator call the manager from `if (Plugins)` guarded
/// sites (the same pattern the trace sink uses); per-category `wants*()`
/// flags are cached at add() time so the execution hot loop pays one
/// predictable branch per category when no plugin subscribed.
///
/// The manager also keeps the canonical translation-record table (fragment
/// index → guest entry/kind/site count), dropped on invalidation exactly
/// per the coherence contract in Plugin.h — tests use it to pin eviction,
/// SMC, and prewarm exactly-once behaviour without a bespoke test plugin.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_PLUGIN_PLUGINMANAGER_H
#define STRATAIB_PLUGIN_PLUGINMANAGER_H

#include "plugin/Plugin.h"
#include "support/Error.h"

#include <memory>
#include <unordered_map>

namespace sdt {
namespace core {
struct Fragment;
}
namespace plugin {

class PluginManager {
public:
  /// Adds \p P (takes ownership) and folds its callback set into the
  /// cached wants-flags. Must happen before attach().
  void add(std::unique_ptr<Plugin> P);

  size_t size() const { return Plugins.size(); }
  const std::vector<std::unique_ptr<Plugin>> &plugins() const {
    return Plugins;
  }
  /// The loaded plugin named \p Name, or null.
  Plugin *find(const char *Name) const;

  bool wantsFragmentEntry() const { return AnyFragmentEntry; }
  bool wantsIBResolved() const { return AnyIBResolved; }
  bool wantsMemAccess() const { return AnyMemAccess; }

  // --- Engine-facing dispatch --------------------------------------------

  /// Binds the manager to an engine: records the guest layout and the
  /// mechanism name bound to each IB class, then delivers onAttach to
  /// every plugin.
  void attach(const GuestLayout &Layout,
              const char *const MechByClass[3]);

  /// A fragment/trace was installed at \p FragIndex. Builds the
  /// FragmentView (IB sites resolved against the attached mechanism
  /// names), records it, and notifies every plugin.
  void fragmentTranslated(uint32_t FragIndex, const core::Fragment &F,
                          bool IsTrace);

  /// Fragment \p FragIndex was evicted/invalidated: drops its record and
  /// notifies every plugin.
  void fragmentInvalidated(uint32_t FragIndex, uint32_t GuestEntry);

  /// Full flush: drops every record and notifies every plugin.
  void cacheFlushed();

  /// Hot-path dispatch; call only when the matching wants*() is true.
  void fragmentEntry(uint32_t FragIndex, uint32_t GuestEntry,
                     arch::TimingModel *T);
  void ibResolved(const IBResolution &R, arch::TimingModel *T);
  void memAccess(uint32_t GuestPc, uint32_t Addr, bool IsStore,
                 arch::TimingModel *T);

  // --- Translation records (coherence-visible state) ----------------------

  struct FragRecord {
    uint32_t GuestEntry = 0;
    bool IsTrace = false;
    uint32_t IBSites = 0;
  };
  const std::unordered_map<uint32_t, FragRecord> &fragmentRecords() const {
    return Records;
  }
  uint64_t translationCallbacks() const { return TranslationCallbacks; }
  uint64_t invalidationCallbacks() const { return InvalidationCallbacks; }
  uint64_t flushCallbacks() const { return FlushCallbacks; }

  // --- Reporting ----------------------------------------------------------

  /// Every plugin's metrics, keys prefixed "<plugin>.": stable order.
  std::vector<Plugin::Metric> metrics() const;
  /// {"plugins":[{"name":..., "metrics":{...}, "report":"..."}]}
  std::string reportJson() const;
  /// Concatenated non-empty plugin reports, each under a header line.
  std::string reportText() const;

private:
  std::vector<std::unique_ptr<Plugin>> Plugins;
  std::unordered_map<uint32_t, FragRecord> Records;
  const char *MechNames[3] = {nullptr, nullptr, nullptr};
  bool AnyFragmentEntry = false;
  bool AnyIBResolved = false;
  bool AnyMemAccess = false;
  uint64_t TranslationCallbacks = 0;
  uint64_t InvalidationCallbacks = 0;
  uint64_t FlushCallbacks = 0;
};

/// Names accepted by createPluginManager, comma-joined (for diagnostics).
const char *knownPluginNames();

/// Creates the in-tree plugin named \p Name ("coverage", "ibedges",
/// "memcheck"), or null for an unknown name.
std::unique_ptr<Plugin> createPlugin(const std::string &Name);

/// Parses a comma-separated spec ("coverage,memcheck"; empty tokens
/// ignored) into a manager holding one instance of each named plugin.
/// Duplicate or unknown names are errors. An empty spec yields an empty
/// manager (valid: the engine then delivers no callbacks but the
/// plumbing is exercised).
Expected<std::unique_ptr<PluginManager>>
createPluginManager(const std::string &Spec);

} // namespace plugin
} // namespace sdt

#endif // STRATAIB_PLUGIN_PLUGINMANAGER_H
