//===- workloads/WorkloadsSmc.cpp ------------------------------*- C++ -*-===//
//
// Part of StrataIB. Self-modifying guests: programs that store into
// their own code range mid-run, so every stale translation an SDT fails
// to invalidate changes the observable output. Both generators keep the
// rewritten words on their own page — write detection is word-granular,
// so this is isolation hygiene rather than a correctness requirement:
// it keeps the invalidation traffic confined to the code under test.
// Both patch by copying whole instruction words from never-executed
// template code; GIR direct jumps are absolutely encoded, so a copied
// word keeps its target.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadGenerators.h"

#include "support/StringUtils.h"

using namespace sdt;
using namespace sdt::workloads;
using assembler::AsmBuilder;

/// smcpatch: a JIT-style self-patcher. A hot leaf kernel is called in
/// phases; at each phase boundary the main loop overwrites the kernel's
/// one live instruction ("addi s1, s1, K") with the next phase's
/// template word, changing the per-call increment. The final printed
/// value is analytic — calls-per-phase times the sum of the K sequence —
/// so an engine that keeps executing the stale kernel translation is
/// observably wrong, not just slow.
void detail::genSmcPatch(AsmBuilder &B, uint32_t Scale) {
  // Per-phase increments; phase 0 is the initial code, phases 1..5 are
  // patched in. Sum = 29, so the printed total is CallsPerPhase * 29.
  static const unsigned K[6] = {1, 2, 3, 5, 7, 11};
  unsigned CallsPerPhase = Scale * 300u;

  emitHeader(B);
  B.emit("li s1, 0"); // the kernel's accumulator
  B.emit("li s2, 0"); // phase index

  B.label("sp_phase");
  B.emitf("li s6, %u", CallsPerPhase);
  B.label("sp_call");
  B.emit("jal sp_kernel");
  B.emit("addi s6, s6, -1");
  B.emit("bnez s6, sp_call");
  B.emit("addi s2, s2, 1");
  B.emit("li t0, 6");
  B.emit("bge s2, t0, sp_done");
  B.comment("patch the kernel: copy template word s2 over sp_live");
  B.emit("la t1, sp_tmpls");
  B.emit("slli t2, s2, 2");
  B.emit("add t1, t1, t2");
  B.emit("lw t3, 0(t1)");
  B.emit("la t4, sp_live");
  B.emit("sw t3, 0(t4)"); // the self-modifying store
  B.emit("j sp_phase");

  B.label("sp_done");
  B.emit("move a0, s1");
  B.emit("li v0, 1");
  B.emit("syscall"); // print the analytic total
  emitChecksumExit(B, "s1");

  B.comment("the kernel sits alone on its page so patches only ever");
  B.comment("invalidate kernel translations, never the main loop");
  B.emit(".align 4096");
  B.label("sp_kernel");
  B.label("sp_live");
  B.emitf("addi s1, s1, %u", K[0]);
  B.emit("ret");
  B.comment("never-executed template instructions, one per phase");
  B.label("sp_tmpls");
  for (unsigned P = 0; P != 6; ++P)
    B.emitf("addi s1, s1, %u", K[P]);
}

/// smctable: a jump-table rewriter. Indirect jumps land *inside* a page
/// of single-instruction jump slots ("j st_hN"); every 2048 iterations
/// the table is rotated by copying slot words from a template block, so
/// the same slot address dispatches to a different handler. Handlers mix
/// the checksum non-commutatively — executing even one stale slot
/// translation after a rotation diverges the checksum. Because the
/// indirect-branch targets are themselves the rewritten words, this is
/// the workload that makes the IB mechanisms (IBTC / sieve / inline
/// caches) prove their invalidation is coherent, not just the fragment
/// map's.
void detail::genSmcTable(AsmBuilder &B, uint32_t Scale) {
  unsigned Iters = 2048u * (2u + Scale);

  emitHeader(B);
  B.emit("li s0, 123456789"); // LCG state
  B.emit("li s7, 0");         // checksum
  B.emit("li s3, 0");         // rotation phase
  B.emitf("li s6, %u", Iters);

  B.label("st_loop");
  emitLcgStep(B, "s0", "t6");
  B.emit("srli t0, s0, 16");
  B.emit("andi t0, t0, 7");
  B.emit("slli t0, t0, 2");
  B.emit("la t1, st_slots");
  B.emit("add t1, t1, t0");
  B.emit("jr t1"); // indirect jump into the rewritable table

  B.label("st_back");
  B.emit("addi s6, s6, -1");
  B.emit("beqz s6, st_done");
  B.emit("andi t0, s6, 2047");
  B.emit("bnez t0, st_loop");
  B.comment("rotate: slot i now jumps where slot i+1 used to");
  B.emit("addi s3, s3, 1");
  B.emit("andi s3, s3, 3");
  B.emit("li t0, 0");
  B.label("st_rot");
  B.emit("add t1, t0, s3");
  B.emit("andi t1, t1, 3");
  B.emit("slli t1, t1, 2");
  B.emit("la t2, st_tmpls");
  B.emit("add t2, t2, t1");
  B.emit("lw t3, 0(t2)");
  B.emit("slli t4, t0, 2");
  B.emit("la t5, st_slots");
  B.emit("add t5, t5, t4");
  B.emit("sw t3, 0(t5)"); // rewrite one live jump-table slot
  B.emit("addi t0, t0, 1");
  B.emit("li t1, 8");
  B.emit("blt t0, t1, st_rot");
  B.emit("j st_loop");

  B.label("st_done");
  B.emit("move a0, s7");
  B.emit("li v0, 1");
  B.emit("syscall");
  emitChecksumExit(B, "s7");

  B.comment("handlers: distinct non-commutative checksum mixers");
  B.label("st_h0");
  B.emit("slli t2, s7, 1");
  B.emit("add s7, s7, t2");
  B.emit("addi s7, s7, 17");
  B.emit("j st_back");
  B.label("st_h1");
  B.emit("slli t2, s7, 5");
  B.emit("xor s7, s7, t2");
  B.emit("addi s7, s7, 7");
  B.emit("j st_back");
  B.label("st_h2");
  B.emit("srli t2, s7, 3");
  B.emit("add s7, s7, t2");
  B.emit("xori s7, s7, 11");
  B.emit("j st_back");
  B.label("st_h3");
  B.emit("li t2, 37");
  B.emit("mul s7, s7, t2");
  B.emit("addi s7, s7, 1");
  B.emit("j st_back");

  B.comment("the rewritable slots (and their templates) on their own");
  B.comment("page; direct-jump words are absolutely encoded, so the");
  B.comment("copied templates keep their handler targets");
  B.emit(".align 4096");
  B.label("st_slots");
  for (unsigned S = 0; S != 8; ++S)
    B.emitf("j st_h%u", S % 4);
  B.label("st_tmpls");
  for (unsigned T = 0; T != 4; ++T)
    B.emitf("j st_h%u", T);
}
