//===- workloads/WorkloadsMinc.cpp -----------------------------*- C++ -*-===//
//
// Part of StrataIB. An extra workload whose guest code comes out of the
// girc compiler rather than a hand-written generator: an expression
// evaluator that dispatches operators through a function-pointer table
// and recurses — compiler-shaped prologues/epilogues, frame traffic, and
// the indirect calls and returns the IB mechanisms must translate.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadGenerators.h"

#include "girc/Compiler.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace sdt;
using namespace sdt::workloads;
using assembler::AsmBuilder;

void detail::genMinc(AsmBuilder &B, uint32_t Scale) {
  std::string Source = formatString(R"(
    // Compiled by girc: operator dispatch through a function-pointer
    // table, recursive evaluation, LCG-driven operand stream.
    array ops[4];
    var seed;

    func rnd() {
      seed = seed * 1103515245 + 12345;
      return (seed >> 16) & 32767;
    }

    func op_add(a, b) { return a + b; }
    func op_sub(a, b) { return a - b; }
    func op_mul(a, b) { return (a * b) >> 3; }
    func op_mix(a, b) { return (a ^ b) + 7; }

    func eval(depth, x) {
      if (depth == 0) { return x; }
      var f = ops[rnd() & 3];
      return f(eval(depth - 1, x + 1), rnd() & 255);
    }

    func main() {
      ops[0] = op_add;
      ops[1] = op_sub;
      ops[2] = op_mul;
      ops[3] = op_mix;
      seed = 20260704;
      var i = 0;
      var acc = 0;
      while (i < %u) {
        acc = acc + eval(6, i);
        i = i + 1;
      }
      checksum(acc);
      return 0;
    }
  )",
                                    Scale * 120u);

  Expected<std::string> Asm = girc::compileToAssembly(Source);
  assert(Asm && "minc workload failed to compile");
  B.raw(*Asm);
}
