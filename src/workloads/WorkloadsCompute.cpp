//===- workloads/WorkloadsCompute.cpp --------------------------*- C++ -*-===//
//
// Part of StrataIB. Compute-bound SPEC INT proxies: gzip, vpr, mcf,
// bzip2, twolf. These are the low/moderate-IB end of the suite — the
// workloads every mechanism handles easily, which anchors the overhead
// comparisons.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadGenerators.h"

using namespace sdt;
using namespace sdt::workloads;
using assembler::AsmBuilder;

/// gzip proxy: fill a buffer with compressible data, then repeatedly scan
/// for backward matches through a small leaf function. Dominated by tight
/// byte-compare loops; IBs are rare leaf-call returns.
void detail::genGzip(AsmBuilder &B, uint32_t Scale) {
  emitHeader(B);
  B.emit("li s7, 0");                 // checksum
  B.emitf("li s6, %u", Scale);        // outer blocks

  B.comment("fill buffer with period-64 runs so -64 back-refs match long");
  B.emit("la s5, gz_buf");
  B.emit("li t0, 0");
  B.emit("li t1, 4096");
  B.label("gz_fill");
  B.emit("srli t2, t0, 4");
  B.emit("andi t2, t2, 3");
  B.emit("add t3, s5, t0");
  B.emit("sb t2, 0(t3)");
  B.emit("addi t0, t0, 1");
  B.emit("blt t0, t1, gz_fill");

  B.label("gz_outer");
  B.emit("li s1, 64");                // scan position
  B.label("gz_scan");
  B.emit("move a0, s1");
  B.emit("jal gz_match");
  B.emit("add s7, s7, v0");
  B.emit("addi s1, s1, 13");
  B.emit("li t0, 4000");
  B.emit("blt s1, t0, gz_scan");
  B.emit("addi s6, s6, -1");
  B.emit("bnez s6, gz_outer");
  emitChecksumExit(B, "s7");

  B.comment("match(a0=pos): length of match between pos and pos-64");
  B.label("gz_match");
  B.emit("la t0, gz_buf");
  B.emit("add t1, t0, a0");
  B.emit("addi t2, t1, -64");
  B.emit("li v0, 0");
  B.emit("li t3, 32");
  B.label("gz_mloop");
  B.emit("lbu t4, 0(t1)");
  B.emit("lbu t5, 0(t2)");
  B.emit("bne t4, t5, gz_mdone");
  B.emit("addi v0, v0, 1");
  B.emit("addi t1, t1, 1");
  B.emit("addi t2, t2, 1");
  B.emit("addi t3, t3, -1");
  B.emit("bnez t3, gz_mloop");
  B.label("gz_mdone");
  B.emit("ret");

  B.emit(".align 4");
  B.label("gz_buf");
  B.emit(".space 4160");
}

/// vpr proxy: annealing-style placement loop. Each move evaluates a cost
/// through a two-entry function-pointer table (a dimorphic indirect call)
/// plus neighbourhood arithmetic.
void detail::genVpr(AsmBuilder &B, uint32_t Scale) {
  emitHeader(B);
  B.emit("li s7, 0");
  B.emit("li s0, 987654321"); // LCG seed
  B.emitf("li s6, %u", Scale * 3000u);
  B.emit("la s4, vpr_fns");
  B.emit("la s3, vpr_cells");

  B.comment("initialise cell positions");
  B.emit("li t0, 0");
  B.emit("li t1, 1024");
  B.label("vpr_init");
  B.emit("slli t2, t0, 2");
  B.emit("add t2, s3, t2");
  B.emit("mul t3, t0, t0");
  B.emit("andi t3, t3, 8191");
  B.emit("sw t3, 0(t2)");
  B.emit("addi t0, t0, 1");
  B.emit("blt t0, t1, vpr_init");

  B.label("vpr_loop");
  detail::emitLcgStep(B, "s0", "t6");
  B.emit("srli t0, s0, 16");
  B.emit("andi t0, t0, 1023"); // cell index
  B.emit("slli t1, t0, 2");
  B.emit("add s2, s3, t1");    // &cells[i]
  B.emit("lw a0, 0(s2)");
  B.comment("neighbourhood cost: sum of two neighbours");
  B.emit("andi t2, t1, 4092");
  B.emit("add t3, s3, t2");
  B.emit("lw t4, 0(t3)");
  B.emit("add a0, a0, t4");
  detail::emitLcgStep(B, "s0", "t6");
  B.emit("srli t5, s0, 18");
  B.emit("andi t5, t5, 1");
  B.emit("slli t5, t5, 2");
  B.emit("add t5, s4, t5");
  B.emit("lw t5, 0(t5)");
  B.emit("jalr t5");           // v0 = cost(a0), dimorphic
  B.emit("add s7, s7, v0");
  B.emit("andi v0, v0, 8191");
  B.emit("sw v0, 0(s2)");
  B.emit("addi s6, s6, -1");
  B.emit("bnez s6, vpr_loop");
  emitChecksumExit(B, "s7");

  B.label("vpr_cost0");
  B.emit("mul v0, a0, a0");
  B.emit("srli v0, v0, 8");
  B.emit("addi v0, v0, 3");
  B.emit("ret");
  B.label("vpr_cost1");
  B.emit("slli v0, a0, 1");
  B.emit("xori v0, v0, 85");
  B.emit("addi v0, v0, 7");
  B.emit("ret");

  B.emit(".align 4");
  B.label("vpr_cells");
  B.emit(".space 4096");
  B.label("vpr_fns");
  B.emit(".word vpr_cost0, vpr_cost1");
}

/// mcf proxy: network-simplex-style pointer chasing over a precomputed
/// successor array. Long dependent-load chains, almost no IBs — the
/// workload where SDT overhead should vanish once linking works.
void detail::genMcf(AsmBuilder &B, uint32_t Scale) {
  emitHeader(B);
  B.emit("li s7, 0");
  B.emit("la s5, mcf_next");

  B.comment("build successor permutation: next[i] = (i*2053+7) mod 4096");
  B.emit("li t0, 0");
  B.emit("li t1, 4096");
  B.label("mcf_build");
  B.emit("li t2, 2053");
  B.emit("mul t3, t0, t2");
  B.emit("addi t3, t3, 7");
  B.emit("andi t3, t3, 4095");
  B.emit("slli t3, t3, 2");    // store *byte offsets* to chase directly
  B.emit("slli t5, t0, 2");
  B.emit("add t5, s5, t5");
  B.emit("sw t3, 0(t5)");
  B.emit("addi t0, t0, 1");
  B.emit("blt t0, t1, mcf_build");

  B.emitf("li s6, %u", Scale * 6u); // passes
  B.label("mcf_outer");
  B.emit("li s1, 0");
  B.emit("li s2, 4096");
  B.label("mcf_chase");
  B.emit("add t0, s5, s1");
  B.emit("lw s1, 0(t0)");
  B.emit("add s7, s7, s1");
  B.emit("addi s2, s2, -1");
  B.emit("bnez s2, mcf_chase");
  B.comment("one pricing call per pass (rare returns)");
  B.emit("move a0, s7");
  B.emit("jal mcf_price");
  B.emit("add s7, s7, v0");
  B.emit("addi s6, s6, -1");
  B.emit("bnez s6, mcf_outer");
  emitChecksumExit(B, "s7");

  B.label("mcf_price");
  B.emit("srli v0, a0, 3");
  B.emit("xori v0, v0, 1234");
  B.emit("ret");

  B.emit(".align 4");
  B.label("mcf_next");
  B.emit(".space 16384");
}

/// bzip2 proxy: block sorting. Insertion sort over 128-word blocks of
/// LCG data — branchy compare loops, essentially no IBs.
void detail::genBzip2(AsmBuilder &B, uint32_t Scale) {
  emitHeader(B);
  B.emit("li s7, 0");
  B.emit("li s0, 555555555");       // seed
  B.emitf("li s6, %u", Scale * 2u); // blocks

  B.label("bz_block");
  B.comment("fill 128 words with LCG data");
  B.emit("la s5, bz_arr");
  B.emit("li t0, 0");
  B.emit("li t1, 128");
  B.label("bz_fill");
  detail::emitLcgStep(B, "s0", "t6");
  B.emit("srli t2, s0, 12");
  B.emit("andi t2, t2, 65535");
  B.emit("slli t3, t0, 2");
  B.emit("add t3, s5, t3");
  B.emit("sw t2, 0(t3)");
  B.emit("addi t0, t0, 1");
  B.emit("blt t0, t1, bz_fill");

  B.comment("insertion sort");
  B.emit("li s1, 1");               // i
  B.label("bz_outer");
  B.emit("slli t0, s1, 2");
  B.emit("add t0, s5, t0");
  B.emit("lw s2, 0(t0)");           // key
  B.emit("move s3, s1");            // j
  B.label("bz_inner");
  B.emit("beqz s3, bz_place");
  B.emit("addi t1, s3, -1");
  B.emit("slli t2, t1, 2");
  B.emit("add t2, s5, t2");
  B.emit("lw t3, 0(t2)");
  B.emit("bleu t3, s2, bz_place");  // arr[j-1] <= key: stop
  B.emit("slli t4, s3, 2");
  B.emit("add t4, s5, t4");
  B.emit("sw t3, 0(t4)");           // shift right
  B.emit("addi s3, s3, -1");
  B.emit("j bz_inner");
  B.label("bz_place");
  B.emit("slli t4, s3, 2");
  B.emit("add t4, s5, t4");
  B.emit("sw s2, 0(t4)");
  B.emit("addi s1, s1, 1");
  B.emit("li t5, 128");
  B.emit("blt s1, t5, bz_outer");

  B.comment("fold the median into the checksum");
  B.emit("lw t0, 256(s5)");
  B.emit("add s7, s7, t0");
  B.emit("addi s6, s6, -1");
  B.emit("bnez s6, bz_block");
  emitChecksumExit(B, "s7");

  B.emit(".align 4");
  B.label("bz_arr");
  B.emit(".space 512");
}

/// twolf proxy: simulated annealing over a placement array with a helper
/// function per move — a moderate mix of branches, memory traffic, and
/// call/return pairs.
void detail::genTwolf(AsmBuilder &B, uint32_t Scale) {
  emitHeader(B);
  B.emit("li s7, 0");
  B.emit("li s0, 424242421");
  B.emitf("li s6, %u", Scale * 2500u);
  B.emit("la s5, tw_pos");

  B.comment("initialise positions");
  B.emit("li t0, 0");
  B.emit("li t1, 512");
  B.label("tw_init");
  B.emit("slli t2, t0, 2");
  B.emit("add t2, s5, t2");
  B.emit("slli t3, t0, 3");
  B.emit("sw t3, 0(t2)");
  B.emit("addi t0, t0, 1");
  B.emit("blt t0, t1, tw_init");

  B.label("tw_loop");
  detail::emitLcgStep(B, "s0", "t6");
  B.emit("srli t0, s0, 16");
  B.emit("andi t0, t0, 511");
  B.emit("slli t0, t0, 2");
  B.emit("add s1, s5, t0");     // &pos[i]
  detail::emitLcgStep(B, "s0", "t6");
  B.emit("srli t1, s0, 16");
  B.emit("andi t1, t1, 511");
  B.emit("slli t1, t1, 2");
  B.emit("add s2, s5, t1");     // &pos[j]
  B.emit("lw a0, 0(s1)");
  B.emit("lw a1, 0(s2)");
  B.emit("jal tw_delta");
  B.emit("add s7, s7, v0");
  B.emit("andi t2, v0, 1");
  B.emit("beqz t2, tw_noswap");
  B.comment("accept the move: swap positions");
  B.emit("lw t3, 0(s1)");
  B.emit("lw t4, 0(s2)");
  B.emit("sw t4, 0(s1)");
  B.emit("sw t3, 0(s2)");
  B.label("tw_noswap");
  B.emit("addi s6, s6, -1");
  B.emit("bnez s6, tw_loop");
  emitChecksumExit(B, "s7");

  B.label("tw_delta");
  B.emit("sub t0, a0, a1");
  B.emit("mul t1, t0, t0");
  B.emit("srli t1, t1, 4");
  B.emit("add v0, t1, a0");
  B.emit("xor v0, v0, a1");
  B.emit("ret");

  B.emit(".align 4");
  B.label("tw_pos");
  B.emit(".space 2048");
}
