//===- workloads/RandomProgram.h - Random program generator ------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random GIR program generation for differential property tests:
/// every generated program terminates by construction (calls only go to
/// higher-numbered functions, loops have fixed trip counts, switches jump
/// forward), is deterministic, and accumulates a checksum that both
/// execution engines must reproduce bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_WORKLOADS_RANDOMPROGRAM_H
#define STRATAIB_WORKLOADS_RANDOMPROGRAM_H

#include "isa/Program.h"
#include "support/Error.h"

#include <cstdint>
#include <string>

namespace sdt {
namespace workloads {

/// Shape knobs for generated programs.
struct RandomProgramOptions {
  unsigned NumFunctions = 6;     ///< Including main; >= 1.
  unsigned ItemsPerFunction = 6; ///< Statements drawn per function.
  bool AllowIndirectCalls = true;
  bool AllowIndirectJumps = true;
  bool AllowLoops = true;
  /// Repetitions of the whole call tree from main (dynamic length knob).
  unsigned MainIterations = 3;
};

/// Generates the assembly text for seed \p Seed.
std::string generateRandomAssembly(uint64_t Seed,
                                   const RandomProgramOptions &Opts = {});

/// Generates and assembles the program for seed \p Seed. Generated
/// programs always assemble; failure here is a generator bug (asserted).
Expected<isa::Program>
generateRandomProgram(uint64_t Seed, const RandomProgramOptions &Opts = {});

} // namespace workloads
} // namespace sdt

#endif // STRATAIB_WORKLOADS_RANDOMPROGRAM_H
