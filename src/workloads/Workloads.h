//===- workloads/Workloads.h - SPEC CPU2000 INT proxies ----------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the twelve SPEC CPU2000 integer benchmarks the
/// paper measures. Each generator emits a GIR assembly program whose
/// *indirect-branch profile* — the mix of returns / indirect calls /
/// indirect jumps, target fan-out, and call depth — mimics the published
/// character of the corresponding SPEC program. The numerical work is
/// synthetic; the IB behaviour, which is all the mechanisms under study
/// can see, is the modeled quantity (see DESIGN.md, substitution record).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_WORKLOADS_WORKLOADS_H
#define STRATAIB_WORKLOADS_WORKLOADS_H

#include "isa/Program.h"
#include "support/Error.h"

#include <string>
#include <string_view>
#include <vector>

namespace sdt {
namespace assembler {
class AsmBuilder;
} // namespace assembler

namespace workloads {

/// Generator signature: emits the whole program into \p B. \p Scale
/// multiplies the dynamic work (Scale 1 is roughly 50-150k guest
/// instructions; benchmarks run Scale 10-40).
using GeneratorFn = void (*)(assembler::AsmBuilder &B, uint32_t Scale);

/// Registry entry for one workload.
struct WorkloadInfo {
  const char *Name;
  const char *Description;
  /// One-word dominant-IB characterisation: "returns", "ind-jumps",
  /// "ind-calls", "mixed", or "low-ib".
  const char *IBProfile;
  GeneratorFn Generate;
};

/// All twelve proxies, in SPEC CPU2000 INT order.
const std::vector<WorkloadInfo> &allWorkloads();

/// Extra (non-SPEC) workloads: "bigcode", a many-function program whose
/// translated footprint exceeds small fragment caches, "hotcold", a
/// hot indirect-dispatch kernel plus a per-phase cold code swath (both
/// used by the code-cache-pressure ablations, E14), "minc", a
/// girc-compiled evaluator, and the self-modifying pair
/// "smcpatch"/"smctable" used by the SMC coherence experiment (E15).
const std::vector<WorkloadInfo> &extraWorkloads();

/// Looks up a workload by name ("gzip" ... "twolf", or an extra);
/// nullptr if unknown.
const WorkloadInfo *findWorkload(std::string_view Name);

/// Generates and assembles the named workload. Fails on unknown names,
/// and — should a generator ever emit bad assembly — propagates the
/// assembler's error with the workload named (in every build mode; a
/// generator bug must not surface as a mystery failure under NDEBUG).
Expected<isa::Program> buildWorkload(std::string_view Name, uint32_t Scale);

/// Returns the generated assembly source (for inspection / examples).
Expected<std::string> workloadSource(std::string_view Name, uint32_t Scale);

} // namespace workloads
} // namespace sdt

#endif // STRATAIB_WORKLOADS_WORKLOADS_H
