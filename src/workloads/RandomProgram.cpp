//===- workloads/RandomProgram.cpp -----------------------------*- C++ -*-===//
//
// Part of StrataIB. See RandomProgram.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "workloads/RandomProgram.h"

#include "assembler/AsmBuilder.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace sdt;
using namespace sdt::workloads;
using assembler::AsmBuilder;

namespace {

/// Emits one function at a time; jump/call tables are deferred to the end
/// of the program image.
///
/// Termination is by construction: calls (direct or through tables) only
/// target higher-numbered functions, loops have fixed trip counts, and
/// switch arms only jump forward to a per-switch join label.
class RandomProgramBuilder {
public:
  RandomProgramBuilder(uint64_t Seed, const RandomProgramOptions &Opts)
      : Rng(Seed), Opts(Opts) {
    assert(Opts.NumFunctions >= 1 && "need at least one function");
  }

  std::string build();

private:
  void emitFunction(unsigned Index);
  void emitItem(unsigned FuncIndex, const std::string &Prefix);

  void emitAluBurst();
  void emitMemOp();
  void emitLoop(const std::string &Prefix);
  void emitDirectCall(unsigned FuncIndex);
  void emitIndirectCall(unsigned FuncIndex);
  void emitSwitch(const std::string &Prefix);

  /// A random temp register t0..t5 (t6/t7 are scratch for addresses,
  /// table indexing, and loop counters).
  std::string randTemp() {
    return formatString("t%u", static_cast<unsigned>(Rng.nextBelow(6)));
  }

  sdt::Rng Rng;
  RandomProgramOptions Opts;
  AsmBuilder B;
  /// (label, ".word ..." line) pairs emitted after the code.
  std::vector<std::pair<std::string, std::string>> DeferredData;
  unsigned TableCounter = 0;
};

} // namespace

void RandomProgramBuilder::emitAluBurst() {
  unsigned Count = 2 + static_cast<unsigned>(Rng.nextBelow(4));
  for (unsigned I = 0; I != Count; ++I) {
    std::string D = randTemp(), A = randTemp(), C = randTemp();
    switch (Rng.nextBelow(8)) {
    case 0:
      B.emitf("add %s, %s, %s", D.c_str(), A.c_str(), C.c_str());
      break;
    case 1:
      B.emitf("sub %s, %s, %s", D.c_str(), A.c_str(), C.c_str());
      break;
    case 2:
      B.emitf("xor %s, %s, %s", D.c_str(), A.c_str(), C.c_str());
      break;
    case 3:
      B.emitf("mul %s, %s, %s", D.c_str(), A.c_str(), C.c_str());
      break;
    case 4:
      B.emitf("addi %s, %s, %d", D.c_str(), A.c_str(),
              static_cast<int>(Rng.nextInRange(-512, 512)));
      break;
    case 5:
      B.emitf("slli %s, %s, %u", D.c_str(), A.c_str(),
              static_cast<unsigned>(Rng.nextBelow(8)));
      break;
    case 6:
      B.emitf("srli %s, %s, %u", D.c_str(), A.c_str(),
              static_cast<unsigned>(Rng.nextBelow(8)));
      break;
    case 7:
      B.emitf("slt %s, %s, %s", D.c_str(), A.c_str(), C.c_str());
      break;
    }
  }
  B.emitf("xor s7, s7, %s", randTemp().c_str());
}

void RandomProgramBuilder::emitMemOp() {
  std::string V = randTemp(), A = randTemp();
  // Mask to a word-aligned offset inside the scratch array.
  B.emitf("andi t6, %s, 1020", A.c_str());
  B.emit("la t7, rp_mem");
  B.emit("add t6, t6, t7");
  if (Rng.nextChance(1, 2)) {
    B.emitf("sw %s, 0(t6)", V.c_str());
  } else {
    B.emitf("lw %s, 0(t6)", V.c_str());
    B.emitf("add s7, s7, %s", V.c_str());
  }
}

void RandomProgramBuilder::emitLoop(const std::string &Prefix) {
  unsigned Trip = 3 + static_cast<unsigned>(Rng.nextBelow(6));
  std::string Head = Prefix + "_loop";
  B.emitf("li t7, %u", Trip);
  B.label(Head);
  unsigned Body = 1 + static_cast<unsigned>(Rng.nextBelow(3));
  for (unsigned I = 0; I != Body; ++I) {
    std::string D = randTemp(), A = randTemp();
    if (Rng.nextChance(1, 2))
      B.emitf("add %s, %s, t7", D.c_str(), A.c_str());
    else
      B.emitf("xor s7, s7, %s", A.c_str());
  }
  B.emit("addi t7, t7, -1");
  B.emitf("bnez t7, %s", Head.c_str());
}

void RandomProgramBuilder::emitDirectCall(unsigned FuncIndex) {
  assert(FuncIndex + 1 < Opts.NumFunctions && "no callee available");
  unsigned Callee =
      FuncIndex + 1 +
      static_cast<unsigned>(
          Rng.nextBelow(Opts.NumFunctions - FuncIndex - 1));
  B.emitf("move a0, %s", randTemp().c_str());
  B.emitf("jal rp_f%u", Callee);
  B.emit("add s7, s7, v0");
}

void RandomProgramBuilder::emitIndirectCall(unsigned FuncIndex) {
  unsigned MaxCallees = Opts.NumFunctions - FuncIndex - 1;
  unsigned Entries =
      std::min(2u + static_cast<unsigned>(Rng.nextBelow(3)), MaxCallees);
  if (Entries < 2) {
    emitDirectCall(FuncIndex);
    return;
  }
  std::string Table = formatString("rp_tab%u", TableCounter++);
  std::string Words = ".word ";
  for (unsigned I = 0; I != Entries; ++I) {
    unsigned Callee = FuncIndex + 1 +
                      static_cast<unsigned>(Rng.nextBelow(MaxCallees));
    if (I != 0)
      Words += ", ";
    Words += formatString("rp_f%u", Callee);
  }
  DeferredData.emplace_back(Table, Words);

  std::string Sel = randTemp();
  B.emitf("andi t6, %s, 32767", Sel.c_str()); // Non-negative selector.
  B.emitf("li t7, %u", Entries);
  B.emit("rem t6, t6, t7");
  B.emit("slli t6, t6, 2");
  B.emitf("la t7, %s", Table.c_str());
  B.emit("add t6, t6, t7");
  B.emit("lw t6, 0(t6)");
  B.emitf("move a0, %s", randTemp().c_str());
  B.emit("jalr t6");
  B.emit("add s7, s7, v0");
}

void RandomProgramBuilder::emitSwitch(const std::string &Prefix) {
  unsigned Arms = 2 + static_cast<unsigned>(Rng.nextBelow(3));
  std::string Table = formatString("rp_tab%u", TableCounter++);
  std::string Words = ".word ";
  for (unsigned I = 0; I != Arms; ++I) {
    if (I != 0)
      Words += ", ";
    Words += formatString("%s_arm%u", Prefix.c_str(), I);
  }
  DeferredData.emplace_back(Table, Words);

  std::string Sel = randTemp();
  B.emitf("andi t6, %s, 32767", Sel.c_str());
  B.emitf("li t7, %u", Arms);
  B.emit("rem t6, t6, t7");
  B.emit("slli t6, t6, 2");
  B.emitf("la t7, %s", Table.c_str());
  B.emit("add t6, t6, t7");
  B.emit("lw t6, 0(t6)");
  B.emit("jr t6");
  for (unsigned I = 0; I != Arms; ++I) {
    B.label(formatString("%s_arm%u", Prefix.c_str(), I));
    std::string D = randTemp();
    B.emitf("addi %s, %s, %u", D.c_str(), D.c_str(), I * 3 + 1);
    B.emitf("xor s7, s7, %s", D.c_str());
    B.emitf("j %s_join", Prefix.c_str());
  }
  B.label(Prefix + "_join");
}

void RandomProgramBuilder::emitItem(unsigned FuncIndex,
                                    const std::string &Prefix) {
  bool CanCall = FuncIndex + 1 < Opts.NumFunctions;
  // Weighted choice; fall back to an ALU burst when a feature is off.
  switch (Rng.nextBelow(10)) {
  case 0:
  case 1:
  case 2:
    emitAluBurst();
    return;
  case 3:
  case 4:
    emitMemOp();
    return;
  case 5:
  case 6:
    if (Opts.AllowLoops)
      emitLoop(Prefix);
    else
      emitAluBurst();
    return;
  case 7:
    if (CanCall)
      emitDirectCall(FuncIndex);
    else
      emitAluBurst();
    return;
  case 8:
    if (CanCall && Opts.AllowIndirectCalls)
      emitIndirectCall(FuncIndex);
    else
      emitMemOp();
    return;
  case 9:
    if (Opts.AllowIndirectJumps)
      emitSwitch(Prefix);
    else
      emitAluBurst();
    return;
  }
  assert(false && "nextBelow(10) out of range");
}

void RandomProgramBuilder::emitFunction(unsigned Index) {
  B.blank();
  B.label(formatString("rp_f%u", Index));
  B.emit("push ra");
  // Deterministic temp initialisation from the argument.
  B.emit("addi t0, a0, 1");
  B.emit("slli t1, a0, 1");
  B.emit("xori t2, a0, 255");
  B.emit("addi t3, a0, 77");
  B.emit("srli t4, a0, 1");
  B.emit("move t5, a0");
  for (unsigned Item = 0; Item != Opts.ItemsPerFunction; ++Item)
    emitItem(Index, formatString("rp_f%u_i%u", Index, Item));
  B.emit("move v0, t0");
  B.emit("pop ra");
  B.emit("ret");
}

std::string RandomProgramBuilder::build() {
  B.org(0x1000);
  B.entry("main");
  B.label("main");
  B.emit("li s7, 0");
  B.emitf("li s6, %u", Opts.MainIterations);
  B.label("rp_mainloop");
  B.emit("move a0, s6");
  B.emit("jal rp_f0");
  B.emit("add s7, s7, v0");
  B.emit("addi s6, s6, -1");
  B.emit("bnez s6, rp_mainloop");
  B.emit("move a0, s7");
  B.emit("li v0, 4");
  B.emit("syscall"); // checksum(s7)
  B.emit("li a0, 0");
  B.emit("li v0, 0");
  B.emit("syscall"); // exit(0)

  for (unsigned I = 0; I != Opts.NumFunctions; ++I)
    emitFunction(I);

  B.blank();
  B.emit(".align 4");
  B.label("rp_mem");
  B.emit(".space 1024");
  for (const auto &[Label, Words] : DeferredData) {
    B.label(Label);
    B.emit(Words);
  }
  return B.source();
}

std::string
sdt::workloads::generateRandomAssembly(uint64_t Seed,
                                       const RandomProgramOptions &Opts) {
  RandomProgramBuilder Builder(Seed, Opts);
  return Builder.build();
}

Expected<isa::Program>
sdt::workloads::generateRandomProgram(uint64_t Seed,
                                      const RandomProgramOptions &Opts) {
  Expected<isa::Program> P =
      assembler::assemble(generateRandomAssembly(Seed, Opts));
  // A generator emitting unassemblable code is a bug, but an assert
  // vanishes under NDEBUG — name the seed so the failure reproduces.
  if (!P)
    return Error::failure(
        formatString("random program (seed %llu) failed to assemble: %s",
                     static_cast<unsigned long long>(Seed),
                     P.error().message().c_str()));
  return P;
}
