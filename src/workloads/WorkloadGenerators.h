//===- workloads/WorkloadGenerators.h - Generator internals ------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal declarations of the per-benchmark generator functions plus the
/// shared assembly idioms they use (program prologue/epilogue, guest-side
/// LCG). Implementations are grouped by character: compute-bound proxies,
/// call-bound proxies, and interpreter proxies.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_WORKLOADS_WORKLOADGENERATORS_H
#define STRATAIB_WORKLOADS_WORKLOADGENERATORS_H

#include "assembler/AsmBuilder.h"

#include <cstdint>

namespace sdt {
namespace workloads {
namespace detail {

/// Emits ".org/.entry main" and the "main:" label.
void emitHeader(assembler::AsmBuilder &B);

/// Emits the standard epilogue: fold register \p ChecksumReg into the run
/// checksum (syscall 4) and exit(0). Clobbers a0/v0.
void emitChecksumExit(assembler::AsmBuilder &B, const char *ChecksumReg);

/// Emits one LCG step on register \p Reg using \p Tmp as scratch:
/// Reg = Reg * 1103515245 + 12345.
void emitLcgStep(assembler::AsmBuilder &B, const char *Reg,
                 const char *Tmp);

// --- Compute-bound proxies (WorkloadsCompute.cpp) -----------------------
void genGzip(assembler::AsmBuilder &B, uint32_t Scale);
void genVpr(assembler::AsmBuilder &B, uint32_t Scale);
void genMcf(assembler::AsmBuilder &B, uint32_t Scale);
void genBzip2(assembler::AsmBuilder &B, uint32_t Scale);
void genTwolf(assembler::AsmBuilder &B, uint32_t Scale);

// --- Call-bound proxies (WorkloadsCalls.cpp) -------------------------------
void genGcc(assembler::AsmBuilder &B, uint32_t Scale);
void genCrafty(assembler::AsmBuilder &B, uint32_t Scale);
void genEon(assembler::AsmBuilder &B, uint32_t Scale);
void genVortex(assembler::AsmBuilder &B, uint32_t Scale);

// --- Interpreter proxies (WorkloadsInterp.cpp) ---------------------------
void genParser(assembler::AsmBuilder &B, uint32_t Scale);
void genPerlbmk(assembler::AsmBuilder &B, uint32_t Scale);
void genGap(assembler::AsmBuilder &B, uint32_t Scale);

// --- Extra (non-SPEC) workloads ------------------------------------------
void genBigCode(assembler::AsmBuilder &B, uint32_t Scale);
void genHotCold(assembler::AsmBuilder &B, uint32_t Scale);
/// Compiled by the girc MinC compiler (WorkloadsMinc.cpp).
void genMinc(assembler::AsmBuilder &B, uint32_t Scale);

// --- Self-modifying guests (WorkloadsSmc.cpp) ----------------------------
void genSmcPatch(assembler::AsmBuilder &B, uint32_t Scale);
void genSmcTable(assembler::AsmBuilder &B, uint32_t Scale);

} // namespace detail
} // namespace workloads
} // namespace sdt

#endif // STRATAIB_WORKLOADS_WORKLOADGENERATORS_H
