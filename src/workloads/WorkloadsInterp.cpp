//===- workloads/WorkloadsInterp.cpp ---------------------------*- C++ -*-===//
//
// Part of StrataIB. Interpreter-style SPEC INT proxies: parser, perlbmk,
// gap. Indirect jumps dominate here; perlbmk's direct-threaded dispatch
// is the megamorphic worst case every IB mechanism struggles with.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadGenerators.h"

#include "support/StringUtils.h"

using namespace sdt;
using namespace sdt::workloads;
using assembler::AsmBuilder;

/// parser proxy: a table-driven state machine. Tokens drive a transition
/// table lookup; the new state dispatches through one jump-table site
/// with fan-out 16.
void detail::genParser(AsmBuilder &B, uint32_t Scale) {
  constexpr unsigned NumStates = 16;

  emitHeader(B);
  B.emit("li s7, 0");
  B.emit("li s0, 141421356");          // LCG seed (token stream)
  B.emit("li s2, 0");                  // state
  B.emitf("li s6, %u", Scale * 3000u); // tokens
  B.emit("la s4, pr_trans");
  B.emit("la s5, pr_tab");

  B.comment("build transition table: trans[s*8+t] = (s*5 + t*3 + 1) & 15");
  B.emit("li t0, 0");                  // s
  B.label("pr_bs");
  B.emit("li t1, 0");                  // t
  B.label("pr_bt");
  B.emit("li t2, 5");
  B.emit("mul t2, t0, t2");
  B.emit("li t3, 3");
  B.emit("mul t3, t1, t3");
  B.emit("add t2, t2, t3");
  B.emit("addi t2, t2, 1");
  B.emit("andi t2, t2, 15");
  B.emit("slli t4, t0, 3");
  B.emit("add t4, t4, t1");
  B.emit("add t4, s4, t4");
  B.emit("sb t2, 0(t4)");
  B.emit("addi t1, t1, 1");
  B.emit("li t5, 8");
  B.emit("blt t1, t5, pr_bt");
  B.emit("addi t0, t0, 1");
  B.emitf("li t5, %u", NumStates);
  B.emit("blt t0, t5, pr_bs");

  B.label("pr_loop");
  detail::emitLcgStep(B, "s0", "t6");
  B.emit("srli t0, s0, 16");
  B.emit("andi t0, t0, 7");            // token class
  B.emit("slli t1, s2, 3");
  B.emit("add t1, t1, t0");
  B.emit("add t1, s4, t1");
  B.emit("lbu s2, 0(t1)");             // next state
  B.emit("slli t2, s2, 2");
  B.emit("add t2, s5, t2");
  B.emit("lw t3, 0(t2)");
  B.emit("jr t3");                     // state dispatch (fan-out 16)

  for (unsigned S = 0; S != NumStates; ++S) {
    B.label(formatString("pr_h%u", S));
    // Distinct per-state action so states are observable.
    B.emitf("addi t4, s2, %u", S * 7 + 1);
    if (S % 3 == 0)
      B.emit("slli t4, t4, 1");
    if (S % 3 == 1)
      B.emit("xori t4, t4, 93");
    B.emit("add s7, s7, t4");
    B.emit("j pr_next");
  }

  B.label("pr_next");
  B.emit("addi s6, s6, -1");
  B.emit("bnez s6, pr_loop");
  emitChecksumExit(B, "s7");

  B.emit(".align 4");
  B.label("pr_tab");
  for (unsigned S = 0; S != NumStates; S += 4)
    B.emitf(".word pr_h%u, pr_h%u, pr_h%u, pr_h%u", S, S + 1, S + 2,
            S + 3);
  B.label("pr_trans");
  B.emit(".space 128");
}

/// perlbmk proxy: a direct-threaded bytecode interpreter. Every one of
/// the 16 opcode handlers ends with its own table-driven indirect jump,
/// so the program has 16 megamorphic IB sites — the hardest case for
/// per-site prediction and the showcase for shared translation caches.
void detail::genPerlbmk(AsmBuilder &B, uint32_t Scale) {
  constexpr unsigned NumOps = 16;

  emitHeader(B);
  B.emit("li s7, 0");
  B.emit("li s0, 577215664");          // seed for bytecode generation
  B.emit("li s1, 0");                  // instruction pointer
  B.emit("li s3, 1");                  // accumulator
  B.emitf("li s2, %u", Scale * 4000u); // step budget
  B.emit("la s4, pl_bc");
  B.emit("la s5, pl_tab");

  B.comment("generate 256 bytecodes: bc[i] = LCG & 15");
  B.emit("li t0, 0");
  B.emit("li t1, 256");
  B.label("pl_gen");
  detail::emitLcgStep(B, "s0", "t6");
  B.emit("srli t2, s0, 16");
  B.emitf("andi t2, t2, %u", NumOps - 1);
  B.emit("add t3, s4, t0");
  B.emit("sb t2, 0(t3)");
  B.emit("addi t0, t0, 1");
  B.emit("blt t0, t1, pl_gen");

  B.comment("enter the threaded loop: dispatch bc[0]");
  B.emit("lbu t1, 0(s4)");
  B.emit("slli t1, t1, 2");
  B.emit("add t1, s5, t1");
  B.emit("lw t2, 0(t1)");
  B.emit("jr t2");

  // The threaded dispatch tail, duplicated into every handler (that
  // duplication is what "direct-threaded" means — and why each handler
  // is its own IB site).
  auto emitThreadedTail = [&B]() {
    B.emit("addi s2, s2, -1");
    B.emit("beqz s2, pl_done");
    B.emit("addi s1, s1, 1");
    B.emit("andi s1, s1, 255");
    B.emit("add t0, s4, s1");
    B.emit("lbu t1, 0(t0)");
    B.emit("slli t1, t1, 2");
    B.emit("add t1, s5, t1");
    B.emit("lw t2, 0(t1)");
    B.emit("jr t2");
  };

  for (unsigned Op = 0; Op != NumOps; ++Op) {
    B.label(formatString("pl_h%u", Op));
    // Distinct micro-semantics per opcode.
    switch (Op % 8) {
    case 0:
      B.emitf("addi s3, s3, %u", Op + 1);
      break;
    case 1:
      B.emit("slli s3, s3, 1");
      B.emit("addi s3, s3, 1");
      break;
    case 2:
      B.emitf("xori s3, s3, %u", Op * 257 + 3);
      break;
    case 3:
      B.emit("srli t3, s3, 3");
      B.emit("add s3, s3, t3");
      break;
    case 4:
      B.emit("li t3, 31");
      B.emit("mul s3, s3, t3");
      break;
    case 5:
      B.emit("sub s3, s3, s1");
      break;
    case 6:
      B.emit("and t3, s3, s1");
      B.emit("or s3, s3, t3");
      B.emit("addi s3, s3, 5");
      break;
    case 7:
      B.emit("srli t3, s3, 1");
      B.emit("xor s3, s3, t3");
      break;
    }
    B.emit("add s7, s7, s3");
    emitThreadedTail();
  }

  B.label("pl_done");
  B.emit("add s7, s7, s3");
  emitChecksumExit(B, "s7");

  B.emit(".align 4");
  B.label("pl_tab");
  for (unsigned Op = 0; Op != NumOps; Op += 4)
    B.emitf(".word pl_h%u, pl_h%u, pl_h%u, pl_h%u", Op, Op + 1, Op + 2,
            Op + 3);
  B.label("pl_bc");
  B.emit(".space 256");
}

/// gap proxy: a central-loop bytecode interpreter with arithmetic-heavy
/// handlers — one indirect-jump dispatch site with fan-out 8 and more
/// useful work per dispatched operation than perlbmk.
void detail::genGap(AsmBuilder &B, uint32_t Scale) {
  constexpr unsigned NumOps = 8;

  emitHeader(B);
  B.emit("li s7, 0");
  B.emit("li s0, 267914296");
  B.emit("li s1, 0");                  // instruction pointer
  B.emit("li s3, 7");                  // accumulator
  B.emitf("li s2, %u", Scale * 2200u); // step budget
  B.emit("la s4, gap_bc");
  B.emit("la s5, gap_tab");

  B.comment("generate 256 bytecodes");
  B.emit("li t0, 0");
  B.emit("li t1, 256");
  B.label("gap_gen");
  detail::emitLcgStep(B, "s0", "t6");
  B.emit("srli t2, s0, 16");
  B.emitf("andi t2, t2, %u", NumOps - 1);
  B.emit("add t3, s4, t0");
  B.emit("sb t2, 0(t3)");
  B.emit("addi t0, t0, 1");
  B.emit("blt t0, t1, gap_gen");

  B.label("gap_loop");
  B.emit("beqz s2, gap_done");
  B.emit("addi s2, s2, -1");
  B.emit("add t0, s4, s1");
  B.emit("lbu t1, 0(t0)");
  B.emit("addi s1, s1, 1");
  B.emit("andi s1, s1, 255");
  B.emit("slli t1, t1, 2");
  B.emit("add t1, s5, t1");
  B.emit("lw t2, 0(t1)");
  B.emit("jr t2");                     // central dispatch (fan-out 8)

  for (unsigned Op = 0; Op != NumOps; ++Op) {
    B.label(formatString("gap_h%u", Op));
    switch (Op) {
    case 0: // multiply-accumulate chain
      B.emit("li t3, 13");
      B.emit("mul s3, s3, t3");
      B.emit("addi s3, s3, 7");
      break;
    case 1: // small reduction loop (4 iterations)
      B.emit("li t3, 4");
      B.label("gap_h1l");
      B.emit("srli t4, s3, 2");
      B.emit("add s3, s3, t4");
      B.emit("addi t3, t3, -1");
      B.emit("bnez t3, gap_h1l");
      break;
    case 2:
      B.emit("xori s3, s3, 23130");
      B.emit("slli t3, s3, 3");
      B.emit("sub s3, t3, s3");
      break;
    case 3: // division (expensive op class)
      B.emit("li t3, 97");
      B.emit("div t4, s3, t3");
      B.emit("rem s3, s3, t3");
      B.emit("add s3, s3, t4");
      break;
    case 4:
      B.emit("add s3, s3, s1");
      B.emit("slli s3, s3, 1");
      break;
    case 5: // memory round-trip through the bytecode array
      B.emit("andi t3, s3, 252");
      B.emit("add t3, s4, t3");
      B.emit("lbu t4, 0(t3)");
      B.emit("add s3, s3, t4");
      break;
    case 6:
      B.emit("srli t3, s3, 5");
      B.emit("xor s3, s3, t3");
      B.emit("addi s3, s3, 3");
      break;
    case 7:
      B.emit("li t3, 2654435");
      B.emit("mul s3, s3, t3");
      B.emit("srli s3, s3, 1");
      break;
    }
    B.emit("add s7, s7, s3");
    B.emit("j gap_loop");
  }

  B.label("gap_done");
  emitChecksumExit(B, "s7");

  B.emit(".align 4");
  B.label("gap_tab");
  for (unsigned Op = 0; Op != NumOps; Op += 4)
    B.emitf(".word gap_h%u, gap_h%u, gap_h%u, gap_h%u", Op, Op + 1, Op + 2,
            Op + 3);
  B.label("gap_bc");
  B.emit(".space 256");
}
