//===- workloads/WorkloadsCalls.cpp ----------------------------*- C++ -*-===//
//
// Part of StrataIB. Call-bound SPEC INT proxies: gcc, crafty, eon,
// vortex. Returns (and, for eon/vortex, indirect calls) dominate the IB
// mix here — the workloads where return-handling strategy decides the
// overhead.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadGenerators.h"

#include "support/StringUtils.h"

using namespace sdt;
using namespace sdt::workloads;
using assembler::AsmBuilder;

/// gcc proxy: a statement processor — a jump-table switch over statement
/// kinds whose cases call into a population of small helper functions,
/// some through a second nested switch. Deep call chains, frequent
/// returns, moderate indirect jumps.
void detail::genGcc(AsmBuilder &B, uint32_t Scale) {
  emitHeader(B);
  B.emit("li s7, 0");
  B.emit("li s0, 314159265");
  B.emitf("li s6, %u", Scale * 1200u);

  B.label("gcc_loop");
  detail::emitLcgStep(B, "s0", "t6");
  B.emit("srli a0, s0, 16");
  B.emit("andi a0, a0, 7");   // statement kind
  B.emit("srli a1, s0, 8");
  B.emit("andi a1, a1, 1023"); // operand
  B.emit("jal gcc_stmt");
  B.emit("add s7, s7, v0");
  B.emit("addi s6, s6, -1");
  B.emit("bnez s6, gcc_loop");
  emitChecksumExit(B, "s7");

  B.comment("stmt(a0=kind, a1=val): dispatch through a jump table");
  B.label("gcc_stmt");
  B.emit("push ra");
  B.emit("la t0, gcc_tab");
  B.emit("slli t1, a0, 2");
  B.emit("add t0, t0, t1");
  B.emit("lw t1, 0(t0)");
  B.emit("jr t1");

  B.label("gcc_case0"); // assignment: fold through two helpers
  B.emit("move a0, a1");
  B.emit("jal gcc_f0");
  B.emit("move a0, v0");
  B.emit("jal gcc_f1");
  B.emit("j gcc_stmt_done");
  B.label("gcc_case1"); // arithmetic expr
  B.emit("move a0, a1");
  B.emit("jal gcc_expr");
  B.emit("j gcc_stmt_done");
  B.label("gcc_case2"); // compare
  B.emit("move a0, a1");
  B.emit("jal gcc_f2");
  B.emit("j gcc_stmt_done");
  B.label("gcc_case3"); // call-like: helper chain of depth 3
  B.emit("move a0, a1");
  B.emit("jal gcc_f3");
  B.emit("j gcc_stmt_done");
  B.label("gcc_case4");
  B.emit("move a0, a1");
  B.emit("jal gcc_f4");
  B.emit("move a0, v0");
  B.emit("jal gcc_expr");
  B.emit("j gcc_stmt_done");
  B.label("gcc_case5");
  B.emit("slli v0, a1, 2");
  B.emit("j gcc_stmt_done");
  B.label("gcc_case6");
  B.emit("move a0, a1");
  B.emit("jal gcc_f5");
  B.emit("j gcc_stmt_done");
  B.label("gcc_case7");
  B.emit("move a0, a1");
  B.emit("jal gcc_f0");
  B.emit("move a0, v0");
  B.emit("jal gcc_f4");
  B.label("gcc_stmt_done");
  B.emit("pop ra");
  B.emit("ret");

  B.comment("expr(a0): nested switch over expression kind");
  B.label("gcc_expr");
  B.emit("push ra");
  B.emit("andi t0, a0, 3");
  B.emit("la t1, gcc_etab");
  B.emit("slli t0, t0, 2");
  B.emit("add t1, t1, t0");
  B.emit("lw t1, 0(t1)");
  B.emit("jr t1");
  B.label("gcc_ecase0");
  B.emit("jal gcc_f1");
  B.emit("j gcc_expr_done");
  B.label("gcc_ecase1");
  B.emit("jal gcc_f2");
  B.emit("j gcc_expr_done");
  B.label("gcc_ecase2");
  B.emit("jal gcc_f5");
  B.emit("j gcc_expr_done");
  B.label("gcc_ecase3");
  B.emit("addi v0, a0, 17");
  B.label("gcc_expr_done");
  B.emit("pop ra");
  B.emit("ret");

  // Helper population: small leaf (and near-leaf) functions.
  B.label("gcc_f0");
  B.emit("slli v0, a0, 1");
  B.emit("xori v0, v0, 51");
  B.emit("ret");
  B.label("gcc_f1");
  B.emit("mul v0, a0, a0");
  B.emit("srli v0, v0, 7");
  B.emit("ret");
  B.label("gcc_f2");
  B.emit("slti t0, a0, 512");
  B.emit("add v0, a0, t0");
  B.emit("ret");
  B.label("gcc_f3"); // chains into f2 then f1
  B.emit("push ra");
  B.emit("addi a0, a0, 5");
  B.emit("jal gcc_f2");
  B.emit("move a0, v0");
  B.emit("jal gcc_f1");
  B.emit("pop ra");
  B.emit("ret");
  B.label("gcc_f4");
  B.emit("srli v0, a0, 2");
  B.emit("addi v0, v0, 9");
  B.emit("ret");
  B.label("gcc_f5"); // chains into f4
  B.emit("push ra");
  B.emit("xori a0, a0, 170");
  B.emit("jal gcc_f4");
  B.emit("pop ra");
  B.emit("ret");

  B.emit(".align 4");
  B.label("gcc_tab");
  B.emit(".word gcc_case0, gcc_case1, gcc_case2, gcc_case3");
  B.emit(".word gcc_case4, gcc_case5, gcc_case6, gcc_case7");
  B.label("gcc_etab");
  B.emit(".word gcc_ecase0, gcc_ecase1, gcc_ecase2, gcc_ecase3");
}

/// crafty proxy: recursive game-tree search, depth 9 → ~1000 call/return
/// pairs per root search. Returns are by far the dominant IB class, with
/// the deep nesting that makes hardware return prediction (and fast
/// returns) shine.
void detail::genCrafty(AsmBuilder &B, uint32_t Scale) {
  emitHeader(B);
  B.emit("li s7, 0");
  B.emit("li s5, 161803398");
  B.emitf("li s6, %u", Scale * 4u); // root searches

  B.label("cr_root");
  detail::emitLcgStep(B, "s5", "t6");
  B.emit("li a0, 9");      // depth
  B.emit("move a1, s5");   // position state
  B.emit("jal cr_search");
  B.emit("add s7, s7, v0");
  B.emit("addi s6, s6, -1");
  B.emit("bnez s6, cr_root");
  emitChecksumExit(B, "s7");

  B.comment("search(a0=depth, a1=state): two-child minimax");
  B.label("cr_search");
  B.emit("bnez a0, cr_rec");
  B.comment("leaf: static evaluation sweeps a small feature loop");
  B.emit("mul v0, a1, a1");
  B.emit("srli v0, v0, 11");
  B.emit("xor v0, v0, a1");
  B.emit("li t0, 6");
  B.label("cr_eval");
  B.emit("slli t1, v0, 2");
  B.emit("sub v0, t1, v0");
  B.emit("srli t1, v0, 9");
  B.emit("xor v0, v0, t1");
  B.emit("addi t0, t0, -1");
  B.emit("bnez t0, cr_eval");
  B.emit("andi v0, v0, 4095");
  B.emit("ret");
  B.label("cr_rec");
  B.emit("push ra");
  B.emit("push s0");
  B.emit("push s1");
  B.emit("push s2");
  B.emit("move s0, a0");
  B.emit("move s1, a1");
  B.comment("left child: state*3+1");
  B.emit("addi a0, s0, -1");
  B.emit("slli t0, s1, 1");
  B.emit("add a1, t0, s1");
  B.emit("addi a1, a1, 1");
  B.emit("jal cr_search");
  B.emit("move s2, v0");
  B.comment("right child: state^0x2a55");
  B.emit("addi a0, s0, -1");
  B.emit("xori a1, s1, 10837");
  B.emit("jal cr_search");
  B.comment("minimax combine: take max, nudge by depth");
  B.emit("bge v0, s2, cr_keep");
  B.emit("move v0, s2");
  B.label("cr_keep");
  B.emit("add v0, v0, s0");
  B.emit("pop s2");
  B.emit("pop s1");
  B.emit("pop s0");
  B.emit("pop ra");
  B.emit("ret");
}

/// eon proxy: C++-style virtual dispatch. Heterogeneous objects carry a
/// vtable pointer; the render loop calls one of two virtual methods on a
/// random object — one indirect-call site with six dynamic targets.
void detail::genEon(AsmBuilder &B, uint32_t Scale) {
  emitHeader(B);
  B.emit("li s7, 0");
  B.emit("li s0, 271828183");
  B.emitf("li s6, %u", Scale * 2000u);
  B.emit("la s5, eon_objs");

  B.comment("construct 256 objects: vptr = vtable[i mod 3], field = i*i");
  B.emit("li t0, 0");
  B.emit("li t1, 256");
  B.label("eon_init");
  B.emit("li t2, 3");
  B.emit("rem t3, t0, t2");
  B.emit("slli t3, t3, 2");
  B.emit("la t4, eon_vts");
  B.emit("add t4, t4, t3");
  B.emit("lw t4, 0(t4)");       // vtable address
  B.emit("slli t5, t0, 3");     // 8 bytes per object
  B.emit("add t5, s5, t5");
  B.emit("sw t4, 0(t5)");
  B.emit("mul t6, t0, t0");
  B.emit("sw t6, 4(t5)");
  B.emit("addi t0, t0, 1");
  B.emit("blt t0, t1, eon_init");

  B.label("eon_loop");
  detail::emitLcgStep(B, "s0", "t6");
  B.emit("srli t0, s0, 16");
  B.emit("andi t0, t0, 255");   // object index
  B.emit("slli t0, t0, 3");
  B.emit("add s1, s5, t0");     // object base
  B.emit("lw t1, 0(s1)");       // vptr
  B.emit("srli t2, s0, 24");
  B.emit("andi t2, t2, 1");     // method selector
  B.emit("slli t2, t2, 2");
  B.emit("add t1, t1, t2");
  B.emit("lw t3, 0(t1)");       // method address
  B.emit("lw a0, 4(s1)");       // field
  B.emit("jalr t3");            // the polymorphic call site
  B.emit("add s7, s7, v0");
  B.emit("sw v0, 4(s1)");
  B.emit("addi s6, s6, -1");
  B.emit("bnez s6, eon_loop");
  emitChecksumExit(B, "s7");

  B.comment("class 0: sphere");
  B.label("eon_c0m0");
  B.emit("mul v0, a0, a0");
  B.emit("srli v0, v0, 9");
  B.emit("ret");
  B.label("eon_c0m1");
  B.emit("addi v0, a0, 33");
  B.emit("ret");
  B.comment("class 1: triangle");
  B.label("eon_c1m0");
  B.emit("slli v0, a0, 1");
  B.emit("xori v0, v0, 977");
  B.emit("ret");
  B.label("eon_c1m1");
  B.emit("srli v0, a0, 3");
  B.emit("addi v0, v0, 5");
  B.emit("ret");
  B.comment("class 2: light");
  B.label("eon_c2m0");
  B.emit("xori v0, a0, 21845");
  B.emit("ret");
  B.label("eon_c2m1");
  B.emit("slli t0, a0, 2");
  B.emit("sub v0, t0, a0");
  B.emit("ret");

  B.emit(".align 4");
  B.label("eon_vt0");
  B.emit(".word eon_c0m0, eon_c0m1");
  B.label("eon_vt1");
  B.emit(".word eon_c1m0, eon_c1m1");
  B.label("eon_vt2");
  B.emit(".word eon_c2m0, eon_c2m1");
  B.label("eon_vts");
  B.emit(".word eon_vt0, eon_vt1, eon_vt2");
  B.label("eon_objs");
  B.emit(".space 2048");
}

/// vortex proxy: an object-database transaction loop. Records carry a
/// type tag; each transaction dispatches through an operation table
/// (indirect call, fan-out 6) whose handlers call shared validation
/// helpers (extra call depth → many returns).
void detail::genVortex(AsmBuilder &B, uint32_t Scale) {
  emitHeader(B);
  B.emit("li s7, 0");
  B.emit("li s0, 696729599");
  B.emitf("li s6, %u", Scale * 1500u);
  B.emit("la s5, vx_db");

  B.comment("populate 512 records: tag = i mod 6, value = i*37");
  B.emit("li t0, 0");
  B.emit("li t1, 512");
  B.label("vx_init");
  B.emit("li t2, 6");
  B.emit("rem t3, t0, t2");
  B.emit("slli t4, t0, 3");
  B.emit("add t4, s5, t4");
  B.emit("sw t3, 0(t4)");     // tag
  B.emit("li t5, 37");
  B.emit("mul t5, t0, t5");
  B.emit("sw t5, 4(t4)");     // value
  B.emit("addi t0, t0, 1");
  B.emit("blt t0, t1, vx_init");

  B.label("vx_loop");
  detail::emitLcgStep(B, "s0", "t6");
  B.emit("srli t0, s0, 16");
  B.emit("andi t0, t0, 511");
  B.emit("slli t0, t0, 3");
  B.emit("add s1, s5, t0");   // record base
  B.emit("lw t1, 0(s1)");     // tag
  B.emit("la t2, vx_ops");
  B.emit("slli t1, t1, 2");
  B.emit("add t2, t2, t1");
  B.emit("lw t3, 0(t2)");
  B.emit("lw a0, 4(s1)");     // value
  B.emit("jalr t3");          // per-type operation
  B.emit("add s7, s7, v0");
  B.emit("sw v0, 4(s1)");
  B.emit("addi s6, s6, -1");
  B.emit("bnez s6, vx_loop");
  emitChecksumExit(B, "s7");

  B.comment("shared validators");
  B.label("vx_check");
  B.emit("andi v0, a0, 16383");
  B.emit("addi v0, v0, 1");
  B.emit("ret");
  B.label("vx_hash");
  B.emit("mul v0, a0, a0");
  B.emit("srli v0, v0, 13");
  B.emit("xor v0, v0, a0");
  B.emit("ret");

  B.comment("per-type operations (each calls a validator)");
  B.label("vx_op0");
  B.emit("push ra");
  B.emit("jal vx_check");
  B.emit("slli v0, v0, 1");
  B.emit("pop ra");
  B.emit("ret");
  B.label("vx_op1");
  B.emit("push ra");
  B.emit("jal vx_hash");
  B.emit("addi v0, v0, 11");
  B.emit("pop ra");
  B.emit("ret");
  B.label("vx_op2");
  B.emit("push ra");
  B.emit("jal vx_check");
  B.emit("move a0, v0");
  B.emit("jal vx_hash");
  B.emit("pop ra");
  B.emit("ret");
  B.label("vx_op3");
  B.emit("srli v0, a0, 1");
  B.emit("xori v0, v0, 255");
  B.emit("ret");
  B.label("vx_op4");
  B.emit("push ra");
  B.emit("jal vx_hash");
  B.emit("srli v0, v0, 2");
  B.emit("pop ra");
  B.emit("ret");
  B.label("vx_op5");
  B.emit("push ra");
  B.emit("addi a0, a0, 3");
  B.emit("jal vx_check");
  B.emit("pop ra");
  B.emit("ret");

  B.emit(".align 4");
  B.label("vx_ops");
  B.emit(".word vx_op0, vx_op1, vx_op2, vx_op3, vx_op4, vx_op5");
  B.label("vx_db");
  B.emit(".space 4096");
}

/// bigcode: a code-footprint stressor (not a SPEC proxy). Hundreds of
/// distinct small functions are called round-robin across several passes,
/// so the translated working set far exceeds a small fragment cache and
/// every flush forces wholesale retranslation.
void detail::genBigCode(AsmBuilder &B, uint32_t Scale) {
  unsigned NumFuncs = 100 + Scale * 20;

  emitHeader(B);
  B.emit("li s7, 0");
  B.emitf("li s6, %u", 4 + Scale); // passes over the population

  B.label("bc_pass");
  for (unsigned F = 0; F != NumFuncs; ++F) {
    B.emitf("li a0, %u", F * 17 + 3);
    B.emitf("jal bc_f%u", F);
    B.emit("add s7, s7, v0");
  }
  B.emit("addi s6, s6, -1");
  B.emit("bnez s6, bc_pass");
  emitChecksumExit(B, "s7");

  for (unsigned F = 0; F != NumFuncs; ++F) {
    B.label(formatString("bc_f%u", F));
    // Distinct bodies so no two functions fold together.
    B.emitf("addi v0, a0, %u", F + 1);
    switch (F % 4) {
    case 0:
      B.emit("slli t0, v0, 2");
      B.emit("sub v0, t0, v0");
      break;
    case 1:
      B.emitf("xori v0, v0, %u", (F * 7) & 0xFFFF);
      B.emit("srli t0, v0, 3");
      B.emit("add v0, v0, t0");
      break;
    case 2:
      B.emit("li t0, 23");
      B.emit("mul v0, v0, t0");
      break;
    case 3:
      B.emit("slli t0, v0, 1");
      B.emit("xor v0, v0, t0");
      B.emit("addi v0, v0, 9");
      break;
    }
    B.emit("ret");
  }
}

/// hotcold: a generational-eviction showcase (not a SPEC proxy). A hot
/// kernel — an indirect-dispatch loop over 32 distinct handlers — runs at
/// the top of every phase, then the phase walks a large population of cold
/// functions exactly once. The cold swath overflows a small fragment cache
/// each phase, so a policy that protects the hot generation keeps the
/// kernel (and its IBTC entries) translated across collections, while
/// full-flush rethrashes it every phase.
void detail::genHotCold(AsmBuilder &B, uint32_t Scale) {
  constexpr unsigned NumHot = 128; // power of two (LCG mask selects).
  unsigned NumCold = 30 + Scale * 6;
  unsigned Phases = 4 + Scale / 2;
  // Enough trips that every handler averages ~20 executions per phase —
  // all kernel fragments cross any sane generational promotion threshold
  // before the cold swath first fills the cache (floored so tiny scales
  // keep the property too).
  unsigned HotIters = 256 * Scale < 2048 ? 2048 : 256 * Scale;

  emitHeader(B);
  B.emit("li s0, 987654321"); // LCG state
  B.emit("li s7, 0");         // checksum
  B.emitf("li s5, %u", Phases);

  B.label("hc_phase");
  // Hot kernel: indirect dispatch through the handler table.
  B.emitf("li s6, %u", HotIters);
  B.label("hc_hot");
  emitLcgStep(B, "s0", "t6");
  B.emit("srli t0, s0, 16");
  B.emitf("andi t0, t0, %u", NumHot - 1);
  B.emit("slli t0, t0, 2");
  B.emit("la t1, hc_htab");
  B.emit("add t1, t1, t0");
  B.emit("lw t2, 0(t1)");
  B.emit("srli a0, s0, 8");
  B.emit("jalr t2"); // the hot indirect call site
  B.emit("add s7, s7, v0");
  B.emit("addi s6, s6, -1");
  B.emit("bnez s6, hc_hot");
  // Cold swath: each cold function exactly once per phase.
  for (unsigned F = 0; F != NumCold; ++F) {
    B.emitf("li a0, %u", F * 13 + 5);
    B.emitf("jal hc_c%u", F);
    B.emit("add s7, s7, v0");
  }
  B.emit("addi s5, s5, -1");
  B.emit("bnez s5, hc_phase");
  emitChecksumExit(B, "s7");

  // The hot handlers: distinct, deliberately fat bodies so the hot
  // generation is a meaningful slice of the code footprint (that slice is
  // exactly what full-flush retranslates every phase and generational
  // does not).
  for (unsigned H = 0; H != NumHot; ++H) {
    B.label(formatString("hc_h%u", H));
    B.emitf("addi v0, a0, %u", H * 3 + 1);
    switch (H % 4) {
    case 0:
      B.emit("slli t0, v0, 2");
      B.emit("sub v0, t0, v0");
      break;
    case 1:
      B.emitf("xori v0, v0, %u", (H * 19) & 0xFFFF);
      B.emit("srli t0, v0, 3");
      B.emit("add v0, v0, t0");
      break;
    case 2:
      B.emit("li t0, 41");
      B.emit("mul v0, v0, t0");
      break;
    case 3:
      B.emit("slli t0, v0, 1");
      B.emit("xor v0, v0, t0");
      B.emit("addi v0, v0, 13");
      break;
    }
    B.emitf("xori v0, v0, %u", (H * 29 + 7) & 0xFFFF);
    B.emit("slli t0, v0, 4");
    B.emit("add v0, v0, t0");
    B.emit("srli t0, v0, 5");
    B.emit("xor v0, v0, t0");
    B.emit("ret");
  }

  for (unsigned F = 0; F != NumCold; ++F) {
    B.label(formatString("hc_c%u", F));
    // Distinct bodies so no two functions fold together.
    B.emitf("addi v0, a0, %u", F + 2);
    switch (F % 4) {
    case 0:
      B.emit("slli t0, v0, 3");
      B.emit("sub v0, t0, v0");
      break;
    case 1:
      B.emitf("xori v0, v0, %u", (F * 11) & 0xFFFF);
      B.emit("srli t0, v0, 2");
      B.emit("add v0, v0, t0");
      break;
    case 2:
      B.emit("li t0, 29");
      B.emit("mul v0, v0, t0");
      break;
    case 3:
      B.emit("slli t0, v0, 1");
      B.emit("xor v0, v0, t0");
      B.emit("addi v0, v0, 7");
      break;
    }
    B.emit("ret");
  }

  B.emit(".align 4");
  B.label("hc_htab");
  for (unsigned H = 0; H != NumHot; ++H)
    B.emitf(".word hc_h%u", H);
}
