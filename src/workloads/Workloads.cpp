//===- workloads/Workloads.cpp ---------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Workloads.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "assembler/AsmBuilder.h"
#include "support/Error.h"
#include "workloads/WorkloadGenerators.h"

#include <cassert>

using namespace sdt;
using namespace sdt::workloads;
using namespace sdt::workloads::detail;
using assembler::AsmBuilder;

void detail::emitHeader(AsmBuilder &B) {
  B.org(0x1000);
  B.entry("main");
  B.label("main");
}

void detail::emitChecksumExit(AsmBuilder &B, const char *ChecksumReg) {
  B.emitf("move a0, %s", ChecksumReg);
  B.emit("li v0, 4");
  B.emit("syscall"); // checksum(a0)
  B.emit("li a0, 0");
  B.emit("li v0, 0");
  B.emit("syscall"); // exit(0)
}

void detail::emitLcgStep(AsmBuilder &B, const char *Reg, const char *Tmp) {
  B.emitf("li %s, 1103515245", Tmp);
  B.emitf("mul %s, %s, %s", Reg, Reg, Tmp);
  B.emitf("addi %s, %s, 12345", Reg, Reg);
}

const std::vector<WorkloadInfo> &sdt::workloads::allWorkloads() {
  static const std::vector<WorkloadInfo> Registry = {
      {"gzip", "LZ-style window compression: tight scan loops, leaf calls",
       "low-ib", genGzip},
      {"vpr", "placement annealing: array math with a 2-way function "
              "pointer",
       "mixed", genVpr},
      {"gcc", "many small functions, deep call chains, statement-kind "
              "switch",
       "returns", genGcc},
      {"mcf", "network-simplex-style pointer chasing", "low-ib", genMcf},
      {"crafty", "recursive game-tree search: returns dominate", "returns",
       genCrafty},
      {"parser", "table-driven state machine with per-state dispatch",
       "ind-jumps", genParser},
      {"eon", "virtual-method dispatch over heterogeneous objects",
       "ind-calls", genEon},
      {"perlbmk", "direct-threaded bytecode interpreter: megamorphic "
                  "indirect jumps",
       "ind-jumps", genPerlbmk},
      {"gap", "central-loop bytecode interpreter with arithmetic kernels",
       "ind-jumps", genGap},
      {"vortex", "tagged-record database: operation table calls + deep "
                 "returns",
       "ind-calls", genVortex},
      {"bzip2", "block sort: compare-heavy inner loops", "low-ib",
       genBzip2},
      {"twolf", "simulated annealing with helper calls", "mixed", genTwolf},
  };
  return Registry;
}

const std::vector<WorkloadInfo> &sdt::workloads::extraWorkloads() {
  static const std::vector<WorkloadInfo> Registry = {
      {"bigcode", "hundreds of small functions: translated-code footprint "
                  "exceeds small fragment caches",
       "returns", genBigCode},
      {"hotcold", "hot indirect-dispatch kernel + per-phase cold code "
                  "swath: the generational-eviction showcase",
       "mixed", genHotCold},
      {"minc", "girc-compiled recursive evaluator with function-pointer "
               "operator dispatch",
       "ind-calls", genMinc},
      {"smcpatch", "JIT-style self-patcher: rewrites its hot kernel's "
                   "increment at every phase boundary",
       "returns", genSmcPatch},
      {"smctable", "jump-table rewriter: indirect jumps into a page of "
                   "jump slots that is rotated mid-run",
       "ind-jumps", genSmcTable},
  };
  return Registry;
}

const WorkloadInfo *sdt::workloads::findWorkload(std::string_view Name) {
  for (const WorkloadInfo &W : allWorkloads())
    if (Name == W.Name)
      return &W;
  for (const WorkloadInfo &W : extraWorkloads())
    if (Name == W.Name)
      return &W;
  return nullptr;
}

Expected<isa::Program> sdt::workloads::buildWorkload(std::string_view Name,
                                                     uint32_t Scale) {
  const WorkloadInfo *W = findWorkload(Name);
  if (!W)
    return Error::failure("unknown workload '" + std::string(Name) + "'");
  assert(Scale > 0 && "workload scale must be positive");
  AsmBuilder B;
  W->Generate(B, Scale);
  Expected<isa::Program> P = B.build();
  // A generator emitting unassemblable code is a bug, but an assert
  // vanishes under NDEBUG — propagate a diagnosable error instead.
  if (!P)
    return Error::failure("workload '" + std::string(Name) +
                          "' failed to assemble: " + P.error().message());
  return P;
}

Expected<std::string> sdt::workloads::workloadSource(std::string_view Name,
                                                     uint32_t Scale) {
  const WorkloadInfo *W = findWorkload(Name);
  if (!W)
    return Error::failure("unknown workload '" + std::string(Name) + "'");
  AsmBuilder B;
  W->Generate(B, Scale);
  return B.source();
}
