//===- vm/Syscalls.h - Guest system call interface ---------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guest's system-call surface, shared by the interpreter and the SDT
/// (an SDT passes system calls through to the host unchanged, so both
/// engines must produce identical observable effects). Calling convention:
/// `v0` holds the syscall number, `a0` the argument; results return in
/// `v0`.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_VM_SYSCALLS_H
#define STRATAIB_VM_SYSCALLS_H

#include "vm/GuestMemory.h"
#include "vm/GuestState.h"

#include <cstdint>
#include <string>

namespace sdt {
namespace vm {

/// Syscall numbers (in v0 at the `syscall` instruction).
enum class Syscall : uint32_t {
  Exit = 0,     ///< exit(a0): terminate with code a0.
  PrintInt = 1, ///< print a0 as signed decimal + newline.
  PrintChar = 2, ///< print the low byte of a0.
  PrintStr = 3, ///< print NUL-terminated string at address a0.
  Checksum = 4, ///< fold a0 into the run checksum (cheap output).
};

/// Observable output of a run, accumulated across syscalls.
struct SyscallContext {
  std::string Output;
  uint64_t Checksum = 1469598103934665603ULL; ///< FNV-1a offset basis.

  /// Folds a 32-bit value into the checksum (FNV-1a over the 4 bytes).
  void foldChecksum(uint32_t Value);
};

/// What the engine should do after the syscall.
enum class SyscallOutcome : uint8_t {
  Continue, ///< Resume at the next instruction.
  Exit,     ///< Terminate; exit code was recorded.
  Fault,    ///< Bad syscall number or bad argument.
};

/// Executes the syscall encoded in \p State (reads v0/a0, may write v0).
/// On Exit, \p ExitCode receives a0. On Fault, \p FaultReason is set to a
/// static string.
SyscallOutcome executeSyscall(GuestState &State, GuestMemory &Memory,
                              SyscallContext &Context, int32_t &ExitCode,
                              const char *&FaultReason);

} // namespace vm
} // namespace sdt

#endif // STRATAIB_VM_SYSCALLS_H
