//===- vm/GuestVM.cpp ------------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See GuestVM.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "vm/GuestVM.h"

#include "support/StringUtils.h"
#include "vm/ExecSemantics.h"

#include <cassert>

using namespace sdt;
using namespace sdt::vm;
using namespace sdt::isa;

const char *sdt::vm::exitReasonName(ExitReason R) {
  switch (R) {
  case ExitReason::Exited:
    return "exited";
  case ExitReason::Halted:
    return "halted";
  case ExitReason::Fault:
    return "fault";
  case ExitReason::InstrLimit:
    return "instr-limit";
  }
  assert(false && "invalid exit reason");
  return "?";
}

GuestVM::GuestVM(const Program &P, const ExecOptions &Opts)
    : Opts(Opts), Memory(Opts.MemorySize),
      Decoder(Memory, P.loadAddress(),
              static_cast<uint32_t>(P.image().size()) & ~3u) {
  State.Pc = P.entry();
  // 16 bytes of headroom below the top keep small positive sp offsets
  // inside memory.
  State.setReg(RegSP, Memory.stackTop() - 16);
  State.setReg(RegFP, Memory.stackTop() - 16);
  // Watch the decoded window for guest stores so self-modifying code
  // invalidates the decode cache instead of executing stale decodes.
  Memory.trackCodeWrites(Decoder.base(), Decoder.size());
}

Expected<std::unique_ptr<GuestVM>> GuestVM::create(const Program &P,
                                                   const ExecOptions &Opts) {
  if (const char *Problem = GuestMemory::sizeProblem(Opts.MemorySize))
    return Error::failure(formatString("invalid ExecOptions::MemorySize %u: %s",
                                       Opts.MemorySize, Problem));
  auto VM = std::unique_ptr<GuestVM>(new GuestVM(P, Opts));
  if (!VM->Memory.loadProgram(P))
    return Error::failure("program image does not fit in guest memory");
  return VM;
}

RunResult GuestVM::run() {
  RunResult Result;
  SyscallContext Sys;
  arch::TimingModel *Timing = Opts.Timing;

  auto fault = [&](const char *Reason, uint32_t Addr) {
    Result.Reason = ExitReason::Fault;
    Result.FaultMessage =
        formatString("%s at pc=0x%x (addr=0x%x)", Reason, State.Pc, Addr);
  };

  uint64_t Executed = 0;
  while (Executed < Opts.MaxInstructions) {
    uint32_t Pc = State.Pc;
    const Instruction *I = Decoder.fetch(Pc);
    if (!I) {
      fault("bad instruction fetch", Pc);
      break;
    }
    ++Executed;
    if (Timing)
      Timing->chargeFetch(Pc);

    CtiKind Kind = I->ctiKind();
    if (Kind == CtiKind::None) {
      ExecEffect Effect = executeNonCti(*I, State, Memory);
      if (Effect.faulted()) {
        fault(Effect.FaultReason, Effect.Addr);
        break;
      }
      if (Timing) {
        if (Effect.IsMem) {
          if (Effect.IsStore)
            Timing->chargeStore(Effect.Addr);
          else
            Timing->chargeLoad(Effect.Addr);
        } else {
          Timing->chargeExecute(*I);
        }
      }
      // A store into the code range stales the decode cache; drop the
      // dirtied words before the next fetch. No cycles are charged: the
      // oracle models native execution, where the hardware keeps
      // instruction fetch coherent with stores.
      if (Effect.IsStore && Memory.hasPendingCodeWrites())
        for (const auto &[Begin, End] : Memory.takePendingCodeWrites())
          Decoder.invalidate(Begin, End - Begin);
      State.Pc = Pc + InstructionSize;
      continue;
    }

    switch (Kind) {
    case CtiKind::CondBranch: {
      bool Taken = evalBranchCondition(*I, State);
      if (Timing)
        Timing->chargeCondBranch(Pc, Taken);
      ++Result.Cti.CondBranches;
      State.Pc = Taken ? I->branchTarget(Pc) : Pc + InstructionSize;
      break;
    }
    case CtiKind::DirectJump:
      if (Timing)
        Timing->chargeDirectJump();
      ++Result.Cti.DirectJumps;
      State.Pc = I->directTarget();
      break;
    case CtiKind::DirectCall: {
      uint32_t ReturnAddr = Pc + InstructionSize;
      State.setReg(RegRA, ReturnAddr);
      if (Timing)
        Timing->chargeCallLink(ReturnAddr);
      ++Result.Cti.DirectCalls;
      State.Pc = I->directTarget();
      break;
    }
    case CtiKind::IndirectJump: {
      uint32_t Target = State.reg(I->Rs1);
      if (Timing)
        Timing->chargeIndirectJump(Pc, Target);
      ++Result.Cti.IndirectJumps;
      if (Opts.CollectSiteTargets)
        Result.SiteTargets[Pc].insert(Target);
      State.Pc = Target;
      break;
    }
    case CtiKind::IndirectCall: {
      uint32_t Target = State.reg(I->Rs1);
      uint32_t ReturnAddr = Pc + InstructionSize;
      State.setReg(I->Rd, ReturnAddr);
      if (Timing) {
        Timing->chargeIndirectJump(Pc, Target);
        Timing->predictor().pushReturn(ReturnAddr);
      }
      ++Result.Cti.IndirectCalls;
      if (Opts.CollectSiteTargets)
        Result.SiteTargets[Pc].insert(Target);
      State.Pc = Target;
      break;
    }
    case CtiKind::Return: {
      uint32_t Target = State.reg(RegRA);
      if (Timing)
        Timing->chargeReturn(Target);
      ++Result.Cti.Returns;
      if (Opts.CollectSiteTargets)
        Result.SiteTargets[Pc].insert(Target);
      State.Pc = Target;
      break;
    }
    case CtiKind::Stop: {
      if (I->Op == Opcode::Halt) {
        Result.Reason = ExitReason::Halted;
        Result.Output = std::move(Sys.Output);
        Result.Checksum = Sys.Checksum;
        Result.InstructionCount = Executed;
        return Result;
      }
      assert(I->Op == Opcode::Syscall && "unexpected Stop opcode");
      if (Timing)
        Timing->chargeSyscall();
      int32_t ExitCode = 0;
      const char *Reason = nullptr;
      SyscallOutcome Outcome =
          executeSyscall(State, Memory, Sys, ExitCode, Reason);
      if (Outcome == SyscallOutcome::Fault) {
        fault(Reason, State.reg(RegA0));
        Result.Output = std::move(Sys.Output);
        Result.Checksum = Sys.Checksum;
        Result.InstructionCount = Executed;
        return Result;
      }
      if (Outcome == SyscallOutcome::Exit) {
        Result.Reason = ExitReason::Exited;
        Result.ExitCode = ExitCode;
        Result.Output = std::move(Sys.Output);
        Result.Checksum = Sys.Checksum;
        Result.InstructionCount = Executed;
        return Result;
      }
      State.Pc = Pc + InstructionSize;
      break;
    }
    case CtiKind::None:
      assert(false && "handled above");
      break;
    }

    if (Result.Reason == ExitReason::Fault && !Result.FaultMessage.empty())
      break;
  }

  if (Result.FaultMessage.empty() && Executed >= Opts.MaxInstructions)
    Result.Reason = ExitReason::InstrLimit;
  Result.Output = std::move(Sys.Output);
  Result.Checksum = Sys.Checksum;
  Result.InstructionCount = Executed;
  return Result;
}
