//===- vm/ExecSemantics.cpp ------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See ExecSemantics.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "vm/ExecSemantics.h"

#include <cassert>

using namespace sdt;
using namespace sdt::vm;
using namespace sdt::isa;

bool sdt::vm::isPureAlu(Opcode Op) {
  return static_cast<uint8_t>(Op) >= static_cast<uint8_t>(Opcode::Add) &&
         static_cast<uint8_t>(Op) <= static_cast<uint8_t>(Opcode::Lui);
}

bool sdt::vm::pureAluReadsRs1(Opcode Op) {
  assert(isPureAlu(Op) && "not a pure ALU opcode");
  return Op != Opcode::Lui;
}

bool sdt::vm::pureAluReadsRs2(Opcode Op) {
  assert(isPureAlu(Op) && "not a pure ALU opcode");
  return opcodeInfo(Op).Form == Format::R;
}

ExecEffect sdt::vm::executeNonCti(const Instruction &I, GuestState &State,
                                  GuestMemory &Memory) {
  assert(!I.isCti() && "executeNonCti given a control-transfer instruction");

  ExecEffect Effect;
  uint32_t A = State.reg(I.Rs1);
  uint32_t B = State.reg(I.Rs2);
  uint32_t ImmU = static_cast<uint32_t>(I.Imm);

  if (isPureAlu(I.Op)) {
    State.setReg(I.Rd, evalPureAlu(I, A, B));
    return Effect;
  }

  switch (I.Op) {
  // --- Memory ------------------------------------------------------------
  case Opcode::Lw: {
    uint32_t Addr = A + ImmU;
    Effect.IsMem = true;
    Effect.Addr = Addr;
    uint32_t Value;
    if (!Memory.load32(Addr, Value)) {
      Effect.FaultReason = "bad 32-bit load";
      return Effect;
    }
    State.setReg(I.Rd, Value);
    return Effect;
  }
  case Opcode::Lh:
  case Opcode::Lhu: {
    uint32_t Addr = A + ImmU;
    Effect.IsMem = true;
    Effect.Addr = Addr;
    uint16_t Value;
    if (!Memory.load16(Addr, Value)) {
      Effect.FaultReason = "bad 16-bit load";
      return Effect;
    }
    State.setReg(I.Rd, I.Op == Opcode::Lh
                           ? static_cast<uint32_t>(
                                 static_cast<int32_t>(
                                     static_cast<int16_t>(Value)))
                           : Value);
    return Effect;
  }
  case Opcode::Lb:
  case Opcode::Lbu: {
    uint32_t Addr = A + ImmU;
    Effect.IsMem = true;
    Effect.Addr = Addr;
    uint8_t Value;
    if (!Memory.load8(Addr, Value)) {
      Effect.FaultReason = "bad 8-bit load";
      return Effect;
    }
    State.setReg(I.Rd, I.Op == Opcode::Lb
                           ? static_cast<uint32_t>(
                                 static_cast<int32_t>(
                                     static_cast<int8_t>(Value)))
                           : Value);
    return Effect;
  }
  case Opcode::Sw: {
    uint32_t Addr = A + ImmU;
    Effect.IsMem = true;
    Effect.IsStore = true;
    Effect.Addr = Addr;
    if (!Memory.store32(Addr, State.reg(I.Rd)))
      Effect.FaultReason = "bad 32-bit store";
    return Effect;
  }
  case Opcode::Sh: {
    uint32_t Addr = A + ImmU;
    Effect.IsMem = true;
    Effect.IsStore = true;
    Effect.Addr = Addr;
    if (!Memory.store16(Addr, static_cast<uint16_t>(State.reg(I.Rd))))
      Effect.FaultReason = "bad 16-bit store";
    return Effect;
  }
  case Opcode::Sb: {
    uint32_t Addr = A + ImmU;
    Effect.IsMem = true;
    Effect.IsStore = true;
    Effect.Addr = Addr;
    if (!Memory.store8(Addr, static_cast<uint8_t>(State.reg(I.Rd))))
      Effect.FaultReason = "bad 8-bit store";
    return Effect;
  }

  default:
    assert(false && "CTI reached executeNonCti");
    Effect.FaultReason = "internal: CTI in executeNonCti";
    return Effect;
  }
}

bool sdt::vm::evalBranchCondition(const Instruction &I,
                                  const GuestState &State) {
  uint32_t A = State.reg(I.Rs1);
  uint32_t B = State.reg(I.Rs2);
  switch (I.Op) {
  case Opcode::Beq:
    return A == B;
  case Opcode::Bne:
    return A != B;
  case Opcode::Blt:
    return static_cast<int32_t>(A) < static_cast<int32_t>(B);
  case Opcode::Bge:
    return static_cast<int32_t>(A) >= static_cast<int32_t>(B);
  case Opcode::Bltu:
    return A < B;
  case Opcode::Bgeu:
    return A >= B;
  default:
    assert(false && "not a conditional branch");
    return false;
  }
}
