//===- vm/GuestMemory.h - Guest address space --------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guest's flat 32-bit address space with checked accessors. Both the
/// reference interpreter and the SDT's host executor operate on the same
/// GuestMemory type so memory side effects are directly comparable in
/// differential tests.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_VM_GUESTMEMORY_H
#define STRATAIB_VM_GUESTMEMORY_H

#include "isa/Program.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace sdt {
namespace vm {

/// Flat guest memory: valid addresses are [PageSize, Size) — page zero is
/// left unmapped so null dereferences fault.
class GuestMemory {
public:
  static constexpr uint32_t PageSize = 0x1000;
  static constexpr uint32_t DefaultSize = 16 * 1024 * 1024;

  explicit GuestMemory(uint32_t Size = DefaultSize);

  uint32_t size() const { return static_cast<uint32_t>(Bytes.size()); }

  /// Copies \p P's image to its load address. Returns false if the image
  /// does not fit.
  bool loadProgram(const isa::Program &P);

  /// \name Checked accessors.
  /// Return false on out-of-range or (for 16/32-bit) unaligned access.
  /// @{
  bool load8(uint32_t Addr, uint8_t &Out) const;
  bool load16(uint32_t Addr, uint16_t &Out) const;
  bool load32(uint32_t Addr, uint32_t &Out) const;
  bool store8(uint32_t Addr, uint8_t Value);
  bool store16(uint32_t Addr, uint16_t Value);
  bool store32(uint32_t Addr, uint32_t Value);
  /// @}

  /// True if [Addr, Addr+Size) is a valid access range.
  bool validRange(uint32_t Addr, uint32_t Size) const {
    return Addr >= PageSize && Size <= this->size() &&
           Addr <= this->size() - Size;
  }

  /// Highest valid word address + 4; the VM initialises the stack pointer
  /// just below this.
  uint32_t stackTop() const { return size() & ~3u; }

  /// \name Code-write tracking (self-modifying-code coherence).
  /// Write detection over the code-bearing part of the image. Off by
  /// default, so the store path pays only one always-false range
  /// compare; the execution engines enable it over their decoded window
  /// and drain the pending writes to invalidate stale decoded /
  /// translated views. Detection is word-granular: guest images freely
  /// mix code and data (jump tables, buffers) on the same page, so
  /// page-granular dirtying would invalidate live translations on plain
  /// data stores — perturbing programs that never modify code at all.
  /// @{

  /// Starts tracking writes over [Base, Base+Bytes), snapped outward to
  /// word boundaries. Replaces any previous window and drops pending
  /// writes; Bytes == 0 turns tracking off.
  void trackCodeWrites(uint32_t Base, uint32_t Bytes);

  /// True when a tracked word has been written since the last
  /// takePendingCodeWrites().
  bool hasPendingCodeWrites() const { return !PendingWrites.empty(); }

  /// The written words as half-open word-aligned [Begin, End) address
  /// ranges, in write order (consecutive writes to adjacent/overlapping
  /// words coalesce); clears the pending set.
  std::vector<std::pair<uint32_t, uint32_t>> takePendingCodeWrites();

  /// @}

  /// Why \p Size is not usable as a guest-memory size (a static string),
  /// or nullptr when it is. GuestVM::create / SdtEngine::create report
  /// this as a proper error instead of tripping the constructor asserts.
  static const char *sizeProblem(uint32_t Size);

private:
  /// Store-path slow half: records the tracked word(s) holding \p Addr.
  void noteCodeWrite(uint32_t Addr);

  std::vector<uint8_t> Bytes;
  uint32_t TrackBase = 0; ///< Word-aligned start of the tracked window.
  uint32_t TrackSize = 0; ///< Window bytes; 0 while tracking is off.
  /// Word-aligned half-open ranges written since the last drain.
  std::vector<std::pair<uint32_t, uint32_t>> PendingWrites;
};

} // namespace vm
} // namespace sdt

#endif // STRATAIB_VM_GUESTMEMORY_H
