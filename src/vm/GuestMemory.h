//===- vm/GuestMemory.h - Guest address space --------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guest's flat 32-bit address space with checked accessors. Both the
/// reference interpreter and the SDT's host executor operate on the same
/// GuestMemory type so memory side effects are directly comparable in
/// differential tests.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_VM_GUESTMEMORY_H
#define STRATAIB_VM_GUESTMEMORY_H

#include "isa/Program.h"

#include <cstdint>
#include <vector>

namespace sdt {
namespace vm {

/// Flat guest memory: valid addresses are [PageSize, Size) — page zero is
/// left unmapped so null dereferences fault.
class GuestMemory {
public:
  static constexpr uint32_t PageSize = 0x1000;
  static constexpr uint32_t DefaultSize = 16 * 1024 * 1024;

  explicit GuestMemory(uint32_t Size = DefaultSize);

  uint32_t size() const { return static_cast<uint32_t>(Bytes.size()); }

  /// Copies \p P's image to its load address. Returns false if the image
  /// does not fit.
  bool loadProgram(const isa::Program &P);

  /// \name Checked accessors.
  /// Return false on out-of-range or (for 16/32-bit) unaligned access.
  /// @{
  bool load8(uint32_t Addr, uint8_t &Out) const;
  bool load16(uint32_t Addr, uint16_t &Out) const;
  bool load32(uint32_t Addr, uint32_t &Out) const;
  bool store8(uint32_t Addr, uint8_t Value);
  bool store16(uint32_t Addr, uint16_t Value);
  bool store32(uint32_t Addr, uint32_t Value);
  /// @}

  /// True if [Addr, Addr+Size) is a valid access range.
  bool validRange(uint32_t Addr, uint32_t Size) const {
    return Addr >= PageSize && Size <= this->size() &&
           Addr <= this->size() - Size;
  }

  /// Highest valid word address + 4; the VM initialises the stack pointer
  /// just below this.
  uint32_t stackTop() const { return size() & ~3u; }

private:
  std::vector<uint8_t> Bytes;
};

} // namespace vm
} // namespace sdt

#endif // STRATAIB_VM_GUESTMEMORY_H
