//===- vm/ExecSemantics.h - Shared instruction semantics --------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic core for GIR instructions, shared by the reference
/// interpreter and the SDT host executor (the SDT translates ALU/memory
/// instructions 1:1, so executing them through the same function models
/// exactly what an SDT's identity translation does). Control transfers are
/// *not* handled here — each execution engine implements those, which is
/// precisely where the SDT differs from native execution.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_VM_EXECSEMANTICS_H
#define STRATAIB_VM_EXECSEMANTICS_H

#include "isa/Instruction.h"
#include "vm/GuestMemory.h"
#include "vm/GuestState.h"

#include <cstdint>

namespace sdt {
namespace vm {

/// Outcome of executing one non-CTI instruction.
struct ExecEffect {
  /// Null on success; otherwise a static description of the fault.
  const char *FaultReason = nullptr;
  /// Faulting or accessed address (valid when FaultReason or IsMem).
  uint32_t Addr = 0;
  /// Whether the instruction accessed memory (for timing).
  bool IsMem = false;
  bool IsStore = false;

  bool faulted() const { return FaultReason != nullptr; }
};

/// Executes non-control-transfer instruction \p I against \p State and
/// \p Memory. \p I must not be a CTI (asserted). Does not advance the PC.
ExecEffect executeNonCti(const isa::Instruction &I, GuestState &State,
                         GuestMemory &Memory);

/// True for pure ALU opcodes (Add..Sltu, Addi..Srai, Lui): no memory
/// access, no control transfer, result a function of register/immediate
/// inputs only. These are the ops a constant-forwarding optimizer may
/// fold.
bool isPureAlu(isa::Opcode Op);

/// Whether a pure-ALU opcode reads Rs1 / Rs2 (Lui reads neither;
/// immediate forms read only Rs1).
bool pureAluReadsRs1(isa::Opcode Op);
bool pureAluReadsRs2(isa::Opcode Op);

/// Computes the result of pure-ALU instruction \p I given operand values
/// \p A (Rs1) and \p B (Rs2). This is the single source of ALU semantics:
/// executeNonCti delegates here, so constant folding over translated code
/// is exact by construction (RISC-V division conventions, shift masking,
/// 32-bit wrapping).
uint32_t evalPureAlu(const isa::Instruction &I, uint32_t A, uint32_t B);

/// Evaluates the condition of conditional branch \p I (beq/bne/blt/bge/
/// bltu/bgeu) against \p State.
bool evalBranchCondition(const isa::Instruction &I, const GuestState &State);

} // namespace vm
} // namespace sdt

#endif // STRATAIB_VM_EXECSEMANTICS_H
