//===- vm/ExecSemantics.h - Shared instruction semantics --------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic core for GIR instructions, shared by the reference
/// interpreter and the SDT host executor (the SDT translates ALU/memory
/// instructions 1:1, so executing them through the same function models
/// exactly what an SDT's identity translation does). Control transfers are
/// *not* handled here — each execution engine implements those, which is
/// precisely where the SDT differs from native execution.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_VM_EXECSEMANTICS_H
#define STRATAIB_VM_EXECSEMANTICS_H

#include "isa/Instruction.h"
#include "vm/GuestMemory.h"
#include "vm/GuestState.h"

#include <cstdint>

namespace sdt {
namespace vm {

/// Outcome of executing one non-CTI instruction.
struct ExecEffect {
  /// Null on success; otherwise a static description of the fault.
  const char *FaultReason = nullptr;
  /// Faulting or accessed address (valid when FaultReason or IsMem).
  uint32_t Addr = 0;
  /// Whether the instruction accessed memory (for timing).
  bool IsMem = false;
  bool IsStore = false;

  bool faulted() const { return FaultReason != nullptr; }
};

/// Executes non-control-transfer instruction \p I against \p State and
/// \p Memory. \p I must not be a CTI (asserted). Does not advance the PC.
ExecEffect executeNonCti(const isa::Instruction &I, GuestState &State,
                         GuestMemory &Memory);

/// Evaluates the condition of conditional branch \p I (beq/bne/blt/bge/
/// bltu/bgeu) against \p State.
bool evalBranchCondition(const isa::Instruction &I, const GuestState &State);

} // namespace vm
} // namespace sdt

#endif // STRATAIB_VM_EXECSEMANTICS_H
