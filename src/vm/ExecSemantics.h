//===- vm/ExecSemantics.h - Shared instruction semantics --------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic core for GIR instructions, shared by the reference
/// interpreter and the SDT host executor (the SDT translates ALU/memory
/// instructions 1:1, so executing them through the same function models
/// exactly what an SDT's identity translation does). Control transfers are
/// *not* handled here — each execution engine implements those, which is
/// precisely where the SDT differs from native execution.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_VM_EXECSEMANTICS_H
#define STRATAIB_VM_EXECSEMANTICS_H

#include "isa/Instruction.h"
#include "vm/GuestMemory.h"
#include "vm/GuestState.h"

#include <cassert>
#include <cstdint>
#include <limits>

namespace sdt {
namespace vm {

/// Outcome of executing one non-CTI instruction.
struct ExecEffect {
  /// Null on success; otherwise a static description of the fault.
  const char *FaultReason = nullptr;
  /// Faulting or accessed address (valid when FaultReason or IsMem).
  uint32_t Addr = 0;
  /// Whether the instruction accessed memory (for timing).
  bool IsMem = false;
  bool IsStore = false;

  bool faulted() const { return FaultReason != nullptr; }
};

/// Executes non-control-transfer instruction \p I against \p State and
/// \p Memory. \p I must not be a CTI (asserted). Does not advance the PC.
ExecEffect executeNonCti(const isa::Instruction &I, GuestState &State,
                         GuestMemory &Memory);

/// True for pure ALU opcodes (Add..Sltu, Addi..Srai, Lui): no memory
/// access, no control transfer, result a function of register/immediate
/// inputs only. These are the ops a constant-forwarding optimizer may
/// fold.
bool isPureAlu(isa::Opcode Op);

/// Whether a pure-ALU opcode reads Rs1 / Rs2 (Lui reads neither;
/// immediate forms read only Rs1).
bool pureAluReadsRs1(isa::Opcode Op);
bool pureAluReadsRs2(isa::Opcode Op);

/// Signed division following the RISC-V convention: x/0 = -1, x%0 = x;
/// INT_MIN / -1 = INT_MIN, INT_MIN % -1 = 0 (no trap, no UB).
inline int32_t signedDivRiscv(int32_t A, int32_t B) {
  if (B == 0)
    return -1;
  if (A == std::numeric_limits<int32_t>::min() && B == -1)
    return A;
  return A / B;
}

inline int32_t signedRemRiscv(int32_t A, int32_t B) {
  if (B == 0)
    return A;
  if (A == std::numeric_limits<int32_t>::min() && B == -1)
    return 0;
  return A % B;
}

/// Computes the result of pure-ALU instruction \p I given operand values
/// \p A (Rs1) and \p B (Rs2). This is the single source of ALU semantics:
/// executeNonCti delegates here, so constant folding over translated code
/// is exact by construction (RISC-V division conventions, shift masking,
/// 32-bit wrapping). Inline so the pre-decoded execution engine's fused
/// ALU kernel (exec/PlanExecutor.cpp) pays no call per op.
inline uint32_t evalPureAlu(const isa::Instruction &I, uint32_t A,
                            uint32_t B) {
  uint32_t ImmU = static_cast<uint32_t>(I.Imm);
  switch (I.Op) {
  // --- Register-register ALU ------------------------------------------
  case isa::Opcode::Add:
    return A + B;
  case isa::Opcode::Sub:
    return A - B;
  case isa::Opcode::Mul:
    return A * B;
  case isa::Opcode::Div:
    return static_cast<uint32_t>(
        signedDivRiscv(static_cast<int32_t>(A), static_cast<int32_t>(B)));
  case isa::Opcode::Rem:
    return static_cast<uint32_t>(
        signedRemRiscv(static_cast<int32_t>(A), static_cast<int32_t>(B)));
  case isa::Opcode::And:
    return A & B;
  case isa::Opcode::Or:
    return A | B;
  case isa::Opcode::Xor:
    return A ^ B;
  case isa::Opcode::Sll:
    return A << (B & 31);
  case isa::Opcode::Srl:
    return A >> (B & 31);
  case isa::Opcode::Sra:
    return static_cast<uint32_t>(static_cast<int32_t>(A) >> (B & 31));
  case isa::Opcode::Slt:
    return static_cast<int32_t>(A) < static_cast<int32_t>(B);
  case isa::Opcode::Sltu:
    return A < B;

  // --- Register-immediate ALU -----------------------------------------
  case isa::Opcode::Addi:
    return A + ImmU;
  case isa::Opcode::Andi:
    return A & ImmU;
  case isa::Opcode::Ori:
    return A | ImmU;
  case isa::Opcode::Xori:
    return A ^ ImmU;
  case isa::Opcode::Slti:
    return static_cast<int32_t>(A) < I.Imm;
  case isa::Opcode::Sltiu:
    return A < ImmU;
  case isa::Opcode::Slli:
    return A << (ImmU & 31);
  case isa::Opcode::Srli:
    return A >> (ImmU & 31);
  case isa::Opcode::Srai:
    return static_cast<uint32_t>(static_cast<int32_t>(A) >> (ImmU & 31));
  case isa::Opcode::Lui:
    return ImmU << 16;

  default:
    assert(false && "evalPureAlu given a non-ALU opcode");
    return 0;
  }
}

/// Evaluates the condition of conditional branch \p I (beq/bne/blt/bge/
/// bltu/bgeu) against \p State.
bool evalBranchCondition(const isa::Instruction &I, const GuestState &State);

} // namespace vm
} // namespace sdt

#endif // STRATAIB_VM_EXECSEMANTICS_H
