//===- vm/DecodeCache.cpp --------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See DecodeCache.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "vm/DecodeCache.h"

#include "isa/Encoding.h"

#include <cassert>

using namespace sdt;
using namespace sdt::vm;
using namespace sdt::isa;

DecodeCache::DecodeCache(const GuestMemory &Memory, uint32_t Base,
                         uint32_t Size)
    : Memory(Memory), Base(Base), Size(Size) {
  assert(Base % InstructionSize == 0 && Size % InstructionSize == 0 &&
         "code region must be word-aligned");
  size_t Slots = Size / InstructionSize;
  Decoded.resize(Slots);
  States.assign(Slots, SlotState::Unknown);
}

const Instruction *DecodeCache::fetch(uint32_t Addr) {
  if (Addr % InstructionSize != 0 || Addr < Base || Addr - Base >= Size)
    return nullptr;
  size_t Slot = (Addr - Base) / InstructionSize;
  switch (States[Slot]) {
  case SlotState::Valid:
    return &Decoded[Slot];
  case SlotState::Invalid:
    return nullptr;
  case SlotState::Unknown:
    break;
  }

  uint32_t Word;
  if (!Memory.load32(Addr, Word)) {
    States[Slot] = SlotState::Invalid;
    return nullptr;
  }
  Expected<Instruction> I = decode(Word);
  if (!I) {
    States[Slot] = SlotState::Invalid;
    return nullptr;
  }
  Decoded[Slot] = *I;
  States[Slot] = SlotState::Valid;
  return &Decoded[Slot];
}
