//===- vm/DecodeCache.cpp --------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See DecodeCache.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "vm/DecodeCache.h"

#include "isa/Encoding.h"

#include <algorithm>
#include <cassert>

using namespace sdt;
using namespace sdt::vm;
using namespace sdt::isa;

DecodeCache::DecodeCache(const GuestMemory &Memory, uint32_t Base,
                         uint32_t Size)
    : Memory(Memory), Base(Base), Size(Size) {
  assert(Base % InstructionSize == 0 && Size % InstructionSize == 0 &&
         "code region must be word-aligned");
  size_t Slots = Size / InstructionSize;
  Decoded.resize(Slots);
  States.assign(Slots, SlotState::Unknown);
}

uint32_t DecodeCache::invalidate(uint32_t Addr, uint32_t Bytes) {
  uint64_t Lo = std::max<uint64_t>(Addr, Base);
  uint64_t Hi = std::min(static_cast<uint64_t>(Addr) + Bytes,
                         static_cast<uint64_t>(Base) + Size);
  uint32_t Reset = 0;
  if (Lo >= Hi)
    return Reset;
  size_t First = static_cast<size_t>(Lo - Base) / InstructionSize;
  size_t Last = static_cast<size_t>(Hi - Base + InstructionSize - 1) /
                InstructionSize;
  for (size_t Slot = First; Slot != Last; ++Slot)
    if (States[Slot] != SlotState::Unknown) {
      States[Slot] = SlotState::Unknown;
      ++Reset;
    }
  return Reset;
}

const Instruction *DecodeCache::fetch(uint32_t Addr) {
  if (Addr % InstructionSize != 0 || Addr < Base || Addr - Base >= Size)
    return nullptr;
  size_t Slot = (Addr - Base) / InstructionSize;
  switch (States[Slot]) {
  case SlotState::Valid:
    return &Decoded[Slot];
  case SlotState::Invalid:
    return nullptr;
  case SlotState::Unknown:
    break;
  }

  uint32_t Word;
  if (!Memory.load32(Addr, Word)) {
    States[Slot] = SlotState::Invalid;
    return nullptr;
  }
  Expected<Instruction> I = decode(Word);
  if (!I) {
    States[Slot] = SlotState::Invalid;
    return nullptr;
  }
  Decoded[Slot] = *I;
  States[Slot] = SlotState::Valid;
  return &Decoded[Slot];
}
