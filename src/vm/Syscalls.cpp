//===- vm/Syscalls.cpp -----------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Syscalls.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "vm/Syscalls.h"

#include "support/StringUtils.h"

using namespace sdt;
using namespace sdt::vm;
using namespace sdt::isa;

void SyscallContext::foldChecksum(uint32_t Value) {
  for (unsigned Shift = 0; Shift != 32; Shift += 8) {
    Checksum ^= (Value >> Shift) & 0xFF;
    Checksum *= 1099511628211ULL; // FNV-1a prime.
  }
}

SyscallOutcome sdt::vm::executeSyscall(GuestState &State, GuestMemory &Memory,
                                       SyscallContext &Context,
                                       int32_t &ExitCode,
                                       const char *&FaultReason) {
  uint32_t Number = State.reg(RegV0);
  uint32_t Arg = State.reg(RegA0);

  switch (static_cast<Syscall>(Number)) {
  case Syscall::Exit:
    ExitCode = static_cast<int32_t>(Arg);
    return SyscallOutcome::Exit;

  case Syscall::PrintInt:
    Context.Output +=
        formatString("%d\n", static_cast<int32_t>(Arg));
    return SyscallOutcome::Continue;

  case Syscall::PrintChar:
    Context.Output += static_cast<char>(Arg & 0xFF);
    return SyscallOutcome::Continue;

  case Syscall::PrintStr: {
    // Bounded scan for the terminating NUL.
    for (uint32_t Addr = Arg;; ++Addr) {
      uint8_t Byte;
      if (!Memory.load8(Addr, Byte)) {
        FaultReason = "print_str: unterminated or unmapped string";
        return SyscallOutcome::Fault;
      }
      if (Byte == 0)
        break;
      Context.Output += static_cast<char>(Byte);
    }
    return SyscallOutcome::Continue;
  }

  case Syscall::Checksum:
    Context.foldChecksum(Arg);
    return SyscallOutcome::Continue;
  }

  FaultReason = "unknown syscall number";
  return SyscallOutcome::Fault;
}
