//===- vm/DecodeCache.h - Lazy predecoded code view --------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lazily-populated decode cache over the guest code region. Decoding a
/// fixed-width ISA is deterministic, so both the interpreter and the SDT
/// translator fetch through this cache; it models a hardware decoder /
/// decoded-ops cache and keeps million-instruction runs fast. Guest code
/// is immutable after load (no self-modifying code in GIR programs), which
/// makes the cache sound.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_VM_DECODECACHE_H
#define STRATAIB_VM_DECODECACHE_H

#include "isa/Instruction.h"
#include "vm/GuestMemory.h"

#include <cstdint>
#include <vector>

namespace sdt {
namespace vm {

/// Decode cache over [Base, Base+Size) in \p Memory.
class DecodeCache {
public:
  /// \p Base and \p Size must be word-aligned.
  DecodeCache(const GuestMemory &Memory, uint32_t Base, uint32_t Size);

  /// Returns the decoded instruction at \p Addr, or nullptr if \p Addr is
  /// unaligned, outside the code region, or holds an invalid encoding.
  const isa::Instruction *fetch(uint32_t Addr);

  uint32_t base() const { return Base; }
  uint32_t size() const { return Size; }

private:
  enum class SlotState : uint8_t { Unknown, Valid, Invalid };

  const GuestMemory &Memory;
  uint32_t Base;
  uint32_t Size;
  std::vector<isa::Instruction> Decoded;
  std::vector<SlotState> States;
};

} // namespace vm
} // namespace sdt

#endif // STRATAIB_VM_DECODECACHE_H
