//===- vm/DecodeCache.h - Lazy predecoded code view --------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lazily-populated decode cache over the guest code region. Decoding a
/// fixed-width ISA is deterministic, so both the interpreter and the SDT
/// translator fetch through this cache; it models a hardware decoder /
/// decoded-ops cache and keeps million-instruction runs fast. Guest code
/// is *not* immutable: GIR programs may store into their own code range
/// (self-modifying code). The owning engine watches GuestMemory's
/// code-write tracking and calls invalidate() on every dirtied range,
/// which is what keeps this cache sound.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_VM_DECODECACHE_H
#define STRATAIB_VM_DECODECACHE_H

#include "isa/Instruction.h"
#include "vm/GuestMemory.h"

#include <cstdint>
#include <vector>

namespace sdt {
namespace vm {

/// Decode cache over [Base, Base+Size) in \p Memory.
class DecodeCache {
public:
  /// \p Base and \p Size must be word-aligned.
  DecodeCache(const GuestMemory &Memory, uint32_t Base, uint32_t Size);

  /// Returns the decoded instruction at \p Addr, or nullptr if \p Addr is
  /// unaligned, outside the code region, or holds an invalid encoding.
  const isa::Instruction *fetch(uint32_t Addr);

  /// Forgets the decoded view of [Addr, Addr+Bytes), clamped to the code
  /// region: a guest store rewrote those words, so the next fetch must
  /// re-read and re-decode them. Returns the number of slots reset.
  uint32_t invalidate(uint32_t Addr, uint32_t Bytes);

  uint32_t base() const { return Base; }
  uint32_t size() const { return Size; }

private:
  enum class SlotState : uint8_t { Unknown, Valid, Invalid };

  const GuestMemory &Memory;
  uint32_t Base;
  uint32_t Size;
  std::vector<isa::Instruction> Decoded;
  std::vector<SlotState> States;
};

} // namespace vm
} // namespace sdt

#endif // STRATAIB_VM_DECODECACHE_H
