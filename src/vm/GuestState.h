//===- vm/GuestState.h - Architectural register state -----------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guest-visible architectural state: 32 GPRs and the PC. `r0` writes
/// are discarded. Shared by the interpreter and the SDT host executor.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_VM_GUESTSTATE_H
#define STRATAIB_VM_GUESTSTATE_H

#include "isa/Registers.h"

#include <array>
#include <cstdint>

namespace sdt {
namespace vm {

/// Architectural state of the guest CPU.
struct GuestState {
  std::array<uint32_t, isa::NumRegisters> Regs{};
  uint32_t Pc = 0;

  uint32_t reg(unsigned I) const { return Regs[I]; }

  /// Writes \p Value to register \p I; writes to r0 are discarded.
  void setReg(unsigned I, uint32_t Value) {
    Regs[I] = Value;
    Regs[isa::RegZero] = 0;
  }
};

} // namespace vm
} // namespace sdt

#endif // STRATAIB_VM_GUESTSTATE_H
