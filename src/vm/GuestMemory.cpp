//===- vm/GuestMemory.cpp --------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See GuestMemory.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "vm/GuestMemory.h"

#include <cassert>
#include <cstring>

using namespace sdt;
using namespace sdt::vm;

GuestMemory::GuestMemory(uint32_t Size) : Bytes(Size, 0) {
  assert(Size >= 2 * PageSize && "guest memory too small");
  assert(Size % PageSize == 0 && "guest memory must be page-aligned");
}

bool GuestMemory::loadProgram(const isa::Program &P) {
  if (!validRange(P.loadAddress(), static_cast<uint32_t>(P.image().size())))
    return false;
  std::memcpy(&Bytes[P.loadAddress()], P.image().data(), P.image().size());
  return true;
}

bool GuestMemory::load8(uint32_t Addr, uint8_t &Out) const {
  if (!validRange(Addr, 1))
    return false;
  Out = Bytes[Addr];
  return true;
}

bool GuestMemory::load16(uint32_t Addr, uint16_t &Out) const {
  if (Addr % 2 != 0 || !validRange(Addr, 2))
    return false;
  Out = static_cast<uint16_t>(Bytes[Addr]) |
        (static_cast<uint16_t>(Bytes[Addr + 1]) << 8);
  return true;
}

bool GuestMemory::load32(uint32_t Addr, uint32_t &Out) const {
  if (Addr % 4 != 0 || !validRange(Addr, 4))
    return false;
  Out = static_cast<uint32_t>(Bytes[Addr]) |
        (static_cast<uint32_t>(Bytes[Addr + 1]) << 8) |
        (static_cast<uint32_t>(Bytes[Addr + 2]) << 16) |
        (static_cast<uint32_t>(Bytes[Addr + 3]) << 24);
  return true;
}

bool GuestMemory::store8(uint32_t Addr, uint8_t Value) {
  if (!validRange(Addr, 1))
    return false;
  Bytes[Addr] = Value;
  return true;
}

bool GuestMemory::store16(uint32_t Addr, uint16_t Value) {
  if (Addr % 2 != 0 || !validRange(Addr, 2))
    return false;
  Bytes[Addr] = static_cast<uint8_t>(Value);
  Bytes[Addr + 1] = static_cast<uint8_t>(Value >> 8);
  return true;
}

bool GuestMemory::store32(uint32_t Addr, uint32_t Value) {
  if (Addr % 4 != 0 || !validRange(Addr, 4))
    return false;
  Bytes[Addr] = static_cast<uint8_t>(Value);
  Bytes[Addr + 1] = static_cast<uint8_t>(Value >> 8);
  Bytes[Addr + 2] = static_cast<uint8_t>(Value >> 16);
  Bytes[Addr + 3] = static_cast<uint8_t>(Value >> 24);
  return true;
}
