//===- vm/GuestMemory.cpp --------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See GuestMemory.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "vm/GuestMemory.h"

#include <cassert>
#include <cstring>

using namespace sdt;
using namespace sdt::vm;

GuestMemory::GuestMemory(uint32_t Size) : Bytes(Size, 0) {
  assert(!sizeProblem(Size) && "invalid guest memory size");
}

const char *GuestMemory::sizeProblem(uint32_t Size) {
  if (Size < 2 * PageSize)
    return "guest memory too small (needs the unmapped null page plus at "
           "least one usable page)";
  if (Size % PageSize != 0)
    return "guest memory size must be a multiple of the page size";
  return nullptr;
}

void GuestMemory::trackCodeWrites(uint32_t Base, uint32_t Bytes) {
  PendingWrites.clear();
  if (Bytes == 0) {
    TrackBase = 0;
    TrackSize = 0;
    return;
  }
  // Snap outward to word boundaries: decode slots are word-granular, and
  // a slightly wider window only over-reports (never misses a write).
  uint64_t End = static_cast<uint64_t>(Base) + Bytes;
  TrackBase = Base & ~3u;
  TrackSize =
      static_cast<uint32_t>(((End + 3) & ~static_cast<uint64_t>(3)) -
                            TrackBase);
}

void GuestMemory::noteCodeWrite(uint32_t Addr) {
  // Aligned accesses never straddle a word (stores wider than a byte are
  // alignment-checked), so the word holding Addr covers the whole store.
  uint32_t Begin = Addr & ~3u;
  uint32_t End = Begin + 4;
  if (!PendingWrites.empty() && PendingWrites.back().second >= Begin &&
      PendingWrites.back().first <= Begin) {
    // Sequential patch loops write adjacent words; coalesce in place.
    if (End > PendingWrites.back().second)
      PendingWrites.back().second = End;
    return;
  }
  PendingWrites.emplace_back(Begin, End);
}

std::vector<std::pair<uint32_t, uint32_t>>
GuestMemory::takePendingCodeWrites() {
  std::vector<std::pair<uint32_t, uint32_t>> Out;
  Out.swap(PendingWrites);
  return Out;
}

bool GuestMemory::loadProgram(const isa::Program &P) {
  if (!validRange(P.loadAddress(), static_cast<uint32_t>(P.image().size())))
    return false;
  std::memcpy(&Bytes[P.loadAddress()], P.image().data(), P.image().size());
  return true;
}

bool GuestMemory::load8(uint32_t Addr, uint8_t &Out) const {
  if (!validRange(Addr, 1))
    return false;
  Out = Bytes[Addr];
  return true;
}

bool GuestMemory::load16(uint32_t Addr, uint16_t &Out) const {
  if (Addr % 2 != 0 || !validRange(Addr, 2))
    return false;
  Out = static_cast<uint16_t>(Bytes[Addr]) |
        (static_cast<uint16_t>(Bytes[Addr + 1]) << 8);
  return true;
}

bool GuestMemory::load32(uint32_t Addr, uint32_t &Out) const {
  if (Addr % 4 != 0 || !validRange(Addr, 4))
    return false;
  Out = static_cast<uint32_t>(Bytes[Addr]) |
        (static_cast<uint32_t>(Bytes[Addr + 1]) << 8) |
        (static_cast<uint32_t>(Bytes[Addr + 2]) << 16) |
        (static_cast<uint32_t>(Bytes[Addr + 3]) << 24);
  return true;
}

bool GuestMemory::store8(uint32_t Addr, uint8_t Value) {
  if (!validRange(Addr, 1))
    return false;
  // Unsigned wrap makes this one compare; always false while tracking is
  // off (TrackSize == 0).
  if (Addr - TrackBase < TrackSize)
    noteCodeWrite(Addr);
  Bytes[Addr] = Value;
  return true;
}

bool GuestMemory::store16(uint32_t Addr, uint16_t Value) {
  if (Addr % 2 != 0 || !validRange(Addr, 2))
    return false;
  if (Addr - TrackBase < TrackSize)
    noteCodeWrite(Addr);
  Bytes[Addr] = static_cast<uint8_t>(Value);
  Bytes[Addr + 1] = static_cast<uint8_t>(Value >> 8);
  return true;
}

bool GuestMemory::store32(uint32_t Addr, uint32_t Value) {
  if (Addr % 4 != 0 || !validRange(Addr, 4))
    return false;
  if (Addr - TrackBase < TrackSize)
    noteCodeWrite(Addr);
  Bytes[Addr] = static_cast<uint8_t>(Value);
  Bytes[Addr + 1] = static_cast<uint8_t>(Value >> 8);
  Bytes[Addr + 2] = static_cast<uint8_t>(Value >> 16);
  Bytes[Addr + 3] = static_cast<uint8_t>(Value >> 24);
  return true;
}
