//===- vm/GuestVM.h - Reference interpreter ----------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reference interpreter: "native" execution of a guest Program. It is
/// both the correctness oracle for differential tests and the native
/// baseline the SDT's overhead is normalised against (when given a
/// TimingModel, it charges native cycle costs — correctly-predicted
/// returns via the RAS and all).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_VM_GUESTVM_H
#define STRATAIB_VM_GUESTVM_H

#include "arch/Timing.h"
#include "isa/Program.h"
#include "support/Error.h"
#include "vm/DecodeCache.h"
#include "vm/GuestMemory.h"
#include "vm/GuestState.h"
#include "vm/RunResult.h"
#include "vm/Syscalls.h"

#include <cstdint>
#include <memory>

namespace sdt {
namespace vm {

/// Execution knobs shared by the interpreter and the SDT engine.
struct ExecOptions {
  /// Stop (with ExitReason::InstrLimit) after this many guest
  /// instructions; a backstop against runaway programs.
  uint64_t MaxInstructions = 2000000000ULL;
  /// Charge cycles against this timing model (optional).
  arch::TimingModel *Timing = nullptr;
  /// Record per-IB-site distinct-target sets (Table 1 fan-out data).
  bool CollectSiteTargets = false;
  /// Guest memory size in bytes.
  uint32_t MemorySize = GuestMemory::DefaultSize;
};

/// The reference interpreter.
class GuestVM {
public:
  /// Loads \p P into fresh memory; registers start zeroed except
  /// sp/fp (top of memory) and pc (entry). Fails if the image does not
  /// fit.
  static Expected<std::unique_ptr<GuestVM>> create(const isa::Program &P,
                                                   const ExecOptions &Opts);

  /// Runs to termination (or fault / instruction budget).
  RunResult run();

  GuestState &state() { return State; }
  GuestMemory &memory() { return Memory; }

private:
  GuestVM(const isa::Program &P, const ExecOptions &Opts);

  ExecOptions Opts;
  GuestMemory Memory;
  GuestState State;
  DecodeCache Decoder;
};

} // namespace vm
} // namespace sdt

#endif // STRATAIB_VM_GUESTVM_H
