//===- vm/RunResult.h - Execution results ------------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result record produced by any execution engine (the reference
/// interpreter and the SDT engine both return one), so differential tests
/// and the benchmark harness compare observable behaviour field by field.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_VM_RUNRESULT_H
#define STRATAIB_VM_RUNRESULT_H

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace sdt {
namespace vm {

/// Why execution stopped.
enum class ExitReason : uint8_t {
  Exited,     ///< exit syscall.
  Halted,     ///< halt instruction.
  Fault,      ///< memory/decode/syscall fault.
  InstrLimit, ///< hit the configured instruction budget.
};

/// Returns "exited", "halted", "fault", or "instr-limit".
const char *exitReasonName(ExitReason R);

/// Dynamic control-transfer statistics, split the way the paper splits
/// them: the three indirect classes are the subject of study.
struct CtiStats {
  uint64_t Returns = 0;
  uint64_t IndirectCalls = 0;
  uint64_t IndirectJumps = 0;
  uint64_t CondBranches = 0;
  uint64_t DirectCalls = 0;
  uint64_t DirectJumps = 0;

  uint64_t indirectTotal() const {
    return Returns + IndirectCalls + IndirectJumps;
  }
};

/// Everything observable about one run.
struct RunResult {
  ExitReason Reason = ExitReason::Fault;
  int32_t ExitCode = 0;
  std::string Output;
  uint64_t Checksum = 0;
  uint64_t InstructionCount = 0;
  std::string FaultMessage;
  CtiStats Cti;

  /// Per-IB-site distinct-target sets; populated only when the engine is
  /// asked to collect the profile (Table 1 fan-out statistics).
  std::map<uint32_t, std::set<uint32_t>> SiteTargets;

  /// True if the run terminated normally (exit or halt).
  bool finishedNormally() const {
    return Reason == ExitReason::Exited || Reason == ExitReason::Halted;
  }
};

} // namespace vm
} // namespace sdt

#endif // STRATAIB_VM_RUNRESULT_H
