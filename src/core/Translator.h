//===- core/Translator.h - Guest → fragment translation ----------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translator builds fragments: straight-line host code from a guest
/// entry point up to the first control transfer (or the fragment-size
/// budget). Direct control transfers become linkable exit stubs; indirect
/// ones become IB-lookup sites emitted through the configured mechanism.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_CORE_TRANSLATOR_H
#define STRATAIB_CORE_TRANSLATOR_H

#include "arch/Timing.h"
#include "core/FragmentCache.h"
#include "core/IBHandler.h"
#include "core/SdtStats.h"
#include "support/Error.h"
#include "vm/DecodeCache.h"

#include <vector>

namespace sdt {
namespace plugin {
class PluginManager;
}
namespace core {

/// One registered IB site.
struct IBSiteInfo {
  uint32_t GuestPc = 0;
  IBClass Class = IBClass::Jump;
  SiteCode Code;
};

/// Fragment builder.
class Translator {
public:
  Translator(vm::DecodeCache &Decoder, FragmentCache &Cache,
             const SdtOptions &Opts);

  /// Binds one mechanism per IB class. Pass the same pointer for classes
  /// sharing a mechanism instance.
  void setHandlers(IBHandler *Jump, IBHandler *Call, IBHandler *Returns);

  /// Convenience: \p Main serves jumps and calls.
  void setHandlers(IBHandler *Main, IBHandler *Returns) {
    setHandlers(Main, Main, Returns);
  }

  IBHandler *handlerFor(IBClass Class) const {
    return Handlers[static_cast<size_t>(Class)];
  }

  /// Translates the fragment starting at \p GuestPc and inserts it into
  /// the cache. Charges \p Timing (nullable) under CycleCategory::
  /// Translate. Fails on undecodable code at \p GuestPc.
  Expected<HostLoc> translate(uint32_t GuestPc, arch::TimingModel *Timing,
                              SdtStats &Stats);

  /// How a recorded hot path ended (what the executor saw last).
  enum class TraceEnd : uint8_t {
    CtiBudget, ///< Stopped after the recorded CTI count (incl. loop close).
    AtIB,      ///< Stopped at an indirect branch (included in the trace).
    AtStop,    ///< Stopped at a syscall/halt (included in the trace).
  };

  /// Re-translates the hot path starting at \p Head as a linear trace:
  /// \p CondOutcomes are the recorded conditional-branch directions (in
  /// path order), \p SpecTargets the recorded monomorphic IB targets to
  /// inline behind guards (in path order, possibly empty), \p CtiCount
  /// the number of guest CTIs recorded, and \p End how recording
  /// stopped. When Opts.OptimizeTraces is set the stitched stream runs
  /// through the opt:: pass pipeline before layout. The new fragment
  /// replaces the guest-map entry for \p Head. Fails if \p Head decodes
  /// invalid.
  Expected<HostLoc> buildTrace(uint32_t Head,
                               const std::vector<bool> &CondOutcomes,
                               const std::vector<uint32_t> &SpecTargets,
                               unsigned CtiCount, TraceEnd End,
                               arch::TimingModel *Timing, SdtStats &Stats);

  /// Convenience overload: no speculated IB crossings.
  Expected<HostLoc> buildTrace(uint32_t Head,
                               const std::vector<bool> &CondOutcomes,
                               unsigned CtiCount, TraceEnd End,
                               arch::TimingModel *Timing, SdtStats &Stats) {
    return buildTrace(Head, CondOutcomes, {}, CtiCount, End, Timing, Stats);
  }

  const std::vector<IBSiteInfo> &sites() const { return Sites; }

  /// Drops all site registrations (fragment cache was flushed).
  void clearSites() { Sites.clear(); }

  /// Attaches the engine's trace sink (null = tracing off); translate()
  /// and buildTrace() emit FragmentTranslated / TraceBuilt events.
  void setTraceSink(trace::TraceSink *S) { Sink = S; }

  /// Attaches the engine's plugin manager (null = instrumentation off);
  /// translate() and buildTrace() deliver the translation-time callback
  /// once per installed fragment, after it is in the cache.
  void setPlugins(plugin::PluginManager *P) { Plugins = P; }

private:
  vm::DecodeCache &Decoder;
  FragmentCache &Cache;
  SdtOptions Opts;
  IBHandler *Handlers[NumIBClasses] = {nullptr, nullptr, nullptr};
  std::vector<IBSiteInfo> Sites;
  trace::TraceSink *Sink = nullptr; ///< Null when tracing is off.
  plugin::PluginManager *Plugins = nullptr; ///< Null when no plugins.
};

} // namespace core
} // namespace sdt

#endif // STRATAIB_CORE_TRANSLATOR_H
