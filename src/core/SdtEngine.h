//===- core/SdtEngine.h - The SDT execution engine ---------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The software-dynamic-translation engine: dispatcher, fragment-cache
/// execution, fragment linking, and the configured indirect-branch
/// mechanisms. Running a program here is observably identical to the
/// reference interpreter (same output, checksum, exit state, instruction
/// count); what differs — and what the benchmarks measure — is the cycle
/// cost charged to the shared timing model.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_CORE_SDTENGINE_H
#define STRATAIB_CORE_SDTENGINE_H

#include "cachemgr/CacheManager.h"
#include "core/FragmentCache.h"
#include "core/IBHandler.h"
#include "core/SdtOptions.h"
#include "core/SdtStats.h"
#include "core/Translator.h"
#include "isa/Program.h"
#include "support/Error.h"
#include "vm/GuestMemory.h"
#include "vm/GuestState.h"
#include "vm/GuestVM.h"
#include "vm/RunResult.h"
#include "vm/Syscalls.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sdt {
namespace plugin {
class PluginManager;
}
namespace exec {
class PlanStore;
struct PlanStats;
}
namespace core {

/// A decoded warm-start snapshot: what SdtEngine::prewarm rebuilds
/// before run(). Produced by the service layer's snapshot codec
/// (src/service/Snapshot.h) from a previous session of the same
/// program under the same options.
struct PrewarmImage {
  /// Guest entry pcs of the fragments to pre-translate, in snapshot
  /// (allocation) order.
  std::vector<uint32_t> FragmentEntries;
  /// One shared-table IB mapping to reinstall: which mechanism instance
  /// (index in allHandlers() order) and which guest target. The
  /// translated address is re-resolved against the rebuilt cache.
  struct SharedTarget {
    uint32_t HandlerIndex = 0;
    uint32_t GuestTarget = 0;
  };
  std::vector<SharedTarget> SharedTargets;
};

/// The SDT engine. Create one per run.
class SdtEngine {
public:
  /// Loads \p P and configures mechanisms per \p Opts. Initial register
  /// state matches GuestVM exactly.
  static Expected<std::unique_ptr<SdtEngine>>
  create(const isa::Program &P, const SdtOptions &Opts,
         const vm::ExecOptions &Exec);

  /// Out of line: the pre-decoded plan store (src/exec) is an
  /// incomplete type here.
  ~SdtEngine();

  /// Runs under translation until exit/halt/fault/instruction budget.
  vm::RunResult run();

  /// The engine that will actually execute translated code this run:
  /// Opts.Engine, downgraded to Switch whenever a deopt predicate holds
  /// (trace sink attached, plugins with execution probes). Reflects what
  /// run() does, so summaries can label what really ran.
  ExecEngineKind activeEngine() const {
    return usePlanEngine() ? ExecEngineKind::Plan : ExecEngineKind::Switch;
  }

  /// Plan-engine build/reuse counters (docs/ExecutionEngine.md), or null
  /// when the plan engine never ran. Lives outside SdtStats so engine
  /// choice cannot perturb the stats block the house bit-identity
  /// invariant covers.
  const exec::PlanStats *planStats() const;

  /// Rehydrates a warm-start snapshot before run(): re-translates each
  /// snapshot fragment (charging the cheap CycleCategory::SnapshotLoad
  /// install cost instead of the full Translate cost) and reinstalls the
  /// shared-table IB mappings. Entries that no longer translate, that
  /// overflow the granted cache (partial warm start), or that name a
  /// handler without a shared table are skipped and counted in
  /// SdtStats::RehydrationsSkipped — a damaged snapshot degrades to a
  /// colder start, never to a fault. Untraced: the service layer records
  /// the snapshot-load event on its own control-thread sink.
  void prewarm(const PrewarmImage &Image);

  const SdtStats &stats() const { return Stats; }
  const SdtOptions &options() const { return Opts; }
  FragmentCache &fragmentCache() { return Cache; }
  const std::vector<IBSiteInfo> &sites() const { return Xlate.sites(); }

  /// The main mechanism (jumps/calls; also returns unless a dedicated
  /// strategy is configured).
  IBHandler &mainHandler() { return *Main; }
  /// The dedicated return mechanism, or the main one.
  IBHandler &returnHandler() { return ReturnH ? *ReturnH : *Main; }

  /// Every distinct top-level mechanism instance (main + any per-class
  /// overrides), in a stable order.
  std::vector<IBHandler *> allHandlers() {
    std::vector<IBHandler *> Hs{Main.get()};
    if (JumpH)
      Hs.push_back(JumpH.get());
    if (CallH)
      Hs.push_back(CallH.get());
    if (ReturnH)
      Hs.push_back(ReturnH.get());
    return Hs;
  }

  /// Attaches (or detaches, with null) a trace sink to the whole engine —
  /// fragment cache, translator, and every mechanism — and points the
  /// sink's clock at this run's timing model so events carry simulated
  /// cycle timestamps. Recording never charges the timing model, so cycle
  /// counts are bit-identical with or without a sink.
  void setTraceSink(trace::TraceSink *S);

  /// Attaches (or detaches, with null) an instrumentation plugin manager
  /// (src/plugin) to the engine and translator: translation-time
  /// callbacks fire once per installed fragment (including prewarm
  /// rehydration — run() never replays them), coherence callbacks fire on
  /// eviction/SMC invalidation/flush, and execution-time callbacks fire
  /// from the run loop when a loaded plugin subscribed. With no manager
  /// (or an empty one) cycle counts are bit-identical to a plain run;
  /// plugins charge their own probe costs to CycleCategory::Instrument.
  void setPlugins(plugin::PluginManager *P);
  plugin::PluginManager *plugins() { return Plugins; }

  /// Multi-line report: stats counters + mechanism summaries.
  std::string report() const;

  /// Per-block execution counts (guest block entry → executions), valid
  /// after run() when Opts.InstrumentBlockCounts is set.
  const std::map<uint32_t, uint64_t> &blockCounts() const {
    return BlockCounts;
  }

  vm::GuestState &state() { return State; }
  vm::GuestMemory &memory() { return Memory; }

private:
  SdtEngine(const isa::Program &P, const SdtOptions &Opts,
            const vm::ExecOptions &Exec);

  /// Everything one run() accumulates, threaded through the shared
  /// per-op step and both execution loops so the switch and plan
  /// engines retire instructions through identical code.
  struct RunContext {
    vm::RunResult Result;
    vm::SyscallContext Sys;
    arch::TimingModel *T = nullptr;
    HostLoc Cur;            ///< Next host op to execute.
    uint64_t Executed = 0;  ///< Guest instructions retired.
    bool Done = false;
  };

  /// Ends the run with \p Reason.
  void finishRun(RunContext &Ctx, vm::ExitReason Reason);
  /// Ends the run with a fault carrying \p Message.
  void faultRun(RunContext &Ctx, std::string Message);
  /// Trace recording: one guest CTI was retired. \p CondOutcome is -1
  /// for unconditional transfers, else the branch direction.
  void recordCtiStep(int CondOutcome);
  /// The fragment-entry block (Cur.Index == 0): exec counting, the
  /// block-count probe, plugin entry callbacks, trace-recording
  /// start/loop-close. Shared verbatim by both engines.
  void noteFragmentEntry(RunContext &Ctx);
  /// Executes exactly one host op at Ctx.Cur — the legacy switch body.
  /// The plan engine delegates every non-fused op here, which is what
  /// makes the two engines identical by construction.
  void stepAt(RunContext &Ctx);
  /// The legacy interpreter: per-instruction switch until Ctx.Done.
  void runSwitchLoop(RunContext &Ctx);
  /// The pre-decoded engine (src/exec/PlanExecutor.cpp): fused superop
  /// runs with batched timing charges, threaded dispatch, and per-op
  /// fallthrough to stepAt for CTIs/IB sites.
  void runPlanLoop(RunContext &Ctx);
  /// True when run() should use the plan engine: Opts.Engine == Plan and
  /// no deopt predicate holds. A trace sink needs per-instruction fetch
  /// events; fragment-entry/IB/memory plugin probes need per-op
  /// callbacks in exact interleaving with their charges.
  bool usePlanEngine() const;

  /// The slow path: context switch, map lookup, translate on miss.
  /// Invalid HostLoc + FaultMessage on translation failure.
  /// \p PinnedFrag is the fragment the engine is currently executing
  /// (never evicted by a capacity decision taken here; UINT32_MAX on the
  /// initial dispatch).
  HostLoc dispatchTo(uint32_t GuestPc, uint32_t PinnedFrag = UINT32_MAX);

  /// The cache is full: ask the CacheManager for a plan and carry it out
  /// — a full flush, or a partial eviction followed by coherent
  /// invalidation of every IB-handler pointer into the freed ranges.
  void handleCachePressure(uint32_t PinnedFrag);

  /// A guest store dirtied the decoded code range (self-modifying code):
  /// invalidates the decode cache over every dirtied page and evicts
  /// every fragment whose guest source hull overlaps them, scrubbing
  /// links and IB-handler pointers exactly like a capacity eviction.
  /// Returns true when the currently-executing fragment \p CurFrag was
  /// among the victims (the caller must re-dispatch instead of advancing).
  bool handleCodeWrite(uint32_t StoreAddr, uint32_t CurFrag);

  /// Ends the active trace recording: builds the trace fragment, points
  /// the guest map at it, and patches the old fragment's head into a
  /// trampoline. Safe to call mid-execution (only Code[0] of the old
  /// fragment changes).
  void finishTrace(Translator::TraceEnd End);

  /// Flushes the fragment cache and all mechanism state.
  void flushEverything();

  IBHandler *handlerFor(IBClass Class) {
    if (Class == IBClass::Return && ReturnH)
      return ReturnH.get();
    if (Class == IBClass::Jump && JumpH)
      return JumpH.get();
    if (Class == IBClass::Call && CallH)
      return CallH.get();
    return Main.get();
  }

  SdtOptions Opts;
  vm::ExecOptions Exec;
  vm::GuestMemory Memory;
  vm::GuestState State;
  vm::DecodeCache Decoder;
  FragmentCache Cache;
  cachemgr::CacheManager CacheMgr;
  std::unique_ptr<IBHandler> Main;
  std::unique_ptr<IBHandler> JumpH; ///< Only when JumpMechanism overrides.
  std::unique_ptr<IBHandler> CallH; ///< Only when CallMechanism overrides.
  std::unique_ptr<IBHandler> ReturnH; ///< Only for ReturnStrategy::ReturnCache.
  Translator Xlate;
  SdtStats Stats;
  trace::TraceSink *Sink = nullptr; ///< Null when tracing is off.
  plugin::PluginManager *Plugins = nullptr; ///< Null when no plugins.
  std::string PendingFault; ///< Set by dispatchTo on translation failure.

  /// Lazily-built per-fragment execution plans (created on first
  /// runPlanLoop; null when the plan engine never ran).
  std::unique_ptr<exec::PlanStore> PlanEngine;
  /// Guest spans dirtied by observed code writes, accumulated across the
  /// run: fragments whose source hull overlaps one keep getting
  /// invalidated and re-translated, so their plans deoptimize to the
  /// legacy per-instruction path (docs/ExecutionEngine.md).
  std::vector<std::pair<uint32_t, uint32_t>> DirtiedGuestSpans;

  /// Delivers one IB-resolution callback (call sites guard with
  /// `if (Plugins)`; the wants-check and struct build live out of line so
  /// the hot loop only pays the null test).
  void notifyIBResolved(const HostInstr &HI, const char *Mechanism,
                        bool InlineHit, uint32_t GuestTarget);

  /// Software shadow stack (ReturnStrategy::ShadowStack): (guest return
  /// address, translated entry address) pairs; wraps at
  /// Opts.ShadowStackDepth.
  std::vector<std::pair<uint32_t, uint32_t>> Shadow;
  uint64_t ShadowTop = 0; ///< Count of pushes (not reset by wrap).

  /// Instrumentation results (InstrumentBlockCounts).
  std::map<uint32_t, uint64_t> BlockCounts;

  // --- Trace recording (EnableTraces) ---------------------------------
  bool Recording = false;
  uint32_t TraceHead = 0;
  std::vector<bool> TraceOutcomes; ///< Conditional directions, path order.
  unsigned TraceCtis = 0;          ///< Guest CTIs recorded so far.
  std::set<uint32_t> TracedHeads;  ///< Heads already traced (or aborted).

  // --- Speculative IB inlining (TraceSpeculate) ------------------------
  /// Monomorphic targets recorded for speculated IB crossings, path
  /// order (consumed by buildTrace).
  std::vector<uint32_t> TraceSpecTargets;
  /// Per-IB-site target profile: guest pc → (last dynamic target, run
  /// length of that target). An IB is considered monomorphic once one
  /// target repeats TraceSpeculateThreshold times in a row.
  std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>> IBProfile;

  bool speculationOn() const {
    return Opts.EnableTraces && Opts.TraceSpeculate;
  }

  /// Whether class-\p C sites may be speculated through. Returns only
  /// qualify under plain as-indirect handling: the fast-return and
  /// shadow-stack strategies resolve returns before the IB site runs,
  /// and the return cache already serves them inline.
  bool canSpeculate(IBClass C) const {
    if (!speculationOn())
      return false;
    if (C == IBClass::Return && Opts.Returns != ReturnStrategy::AsIndirect)
      return false;
    return true;
  }

  void updateIBProfile(uint32_t Pc, uint32_t Target) {
    if (!speculationOn())
      return;
    auto &Entry = IBProfile[Pc];
    if (Entry.first == Target)
      ++Entry.second;
    else
      Entry = {Target, 1};
  }

  bool profileMonomorphic(uint32_t Pc, uint32_t Target) const {
    auto It = IBProfile.find(Pc);
    return It != IBProfile.end() && It->second.first == Target &&
           It->second.second >= Opts.TraceSpeculateThreshold;
  }
};

} // namespace core
} // namespace sdt

#endif // STRATAIB_CORE_SDTENGINE_H
