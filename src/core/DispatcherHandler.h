//===- core/DispatcherHandler.h - Baseline IB handling -----------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline mechanism: no inline translation at all. Every indirect
/// branch trampolines into the dispatcher — a full context save, a
/// translation-map probe, and a context restore — which is the overhead
/// source the paper opens with.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_CORE_DISPATCHERHANDLER_H
#define STRATAIB_CORE_DISPATCHERHANDLER_H

#include "core/IBHandler.h"

namespace sdt {
namespace core {

/// Always-miss mechanism: the engine's dispatcher path does all the work.
class DispatcherHandler : public IBHandler {
public:
  const char *name() const override { return "dispatcher"; }

  SiteCode emitSite(uint32_t SiteId, IBClass Class, uint32_t GuestPc,
                    FragmentCache &Cache,
                    bool SpeculativeFallback = false) override;

  LookupOutcome lookup(uint32_t SiteId, uint32_t GuestTarget,
                       arch::TimingModel *Timing) override;

  void record(uint32_t SiteId, uint32_t GuestTarget, uint32_t HostEntryAddr,
              arch::TimingModel *Timing) override;

  void flush() override {}
};

} // namespace core
} // namespace sdt

#endif // STRATAIB_CORE_DISPATCHERHANDLER_H
