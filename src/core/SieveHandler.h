//===- core/SieveHandler.h - I-cache-resident sieve dispatch -----*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sieve: instead of probing a data table, the IB site's inline code
/// hashes the target and jumps *into code* — a bucket of
/// compare-and-branch stubs allocated in the fragment cache. Each stub
/// compares the dynamic target against one known guest address and either
/// jumps straight to its translated fragment or falls through to the next
/// stub; the last stub trampolines to the dispatcher. Lookup traffic is
/// therefore instruction-cache traffic, the sieve's defining contrast with
/// the data-resident IBTC.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_CORE_SIEVEHANDLER_H
#define STRATAIB_CORE_SIEVEHANDLER_H

#include "core/IBHandler.h"
#include "support/Statistics.h"

#include <unordered_map>
#include <vector>

namespace sdt {
namespace core {

/// Sieve mechanism.
class SieveHandler : public IBHandler {
public:
  /// \p ChargeFlagSave as in IbtcHandler.
  SieveHandler(const SdtOptions &Opts, bool ChargeFlagSave = true);

  const char *name() const override { return "sieve"; }

  /// Preallocates the bucket-header jump slots in the fragment cache.
  void initialize(FragmentCache &Cache) override;

  SiteCode emitSite(uint32_t SiteId, IBClass Class, uint32_t GuestPc,
                    FragmentCache &Cache,
                    bool SpeculativeFallback = false) override;

  LookupOutcome lookup(uint32_t SiteId, uint32_t GuestTarget,
                       arch::TimingModel *Timing) override;

  void record(uint32_t SiteId, uint32_t GuestTarget, uint32_t HostEntryAddr,
              arch::TimingModel *Timing) override;

  void flush() override;

  /// Unchains every stub whose translated target was evicted and returns
  /// its bytes to the cache's capacity budget (stubs are code-resident,
  /// so invalidation is code-cache surgery — the sieve's extra cost
  /// under cache pressure).
  uint64_t invalidateEvicted(const EvictedRanges &Ranges, FragmentCache &Cache,
                             arch::TimingModel *Timing) override;

  std::string statsSummary() const override;

  /// Total compare-and-branch stubs currently allocated.
  uint64_t stubCount() const { return Stubs; }
  /// Distribution of stubs visited per lookup.
  const Histogram &chainLengthHistogram() const { return ChainLengths; }

private:
  struct Stub {
    uint32_t GuestTarget = 0;
    uint32_t HostEntryAddr = 0;
    uint32_t StubAddr = 0;
  };

  static constexpr uint32_t StubBytes = 12;   ///< cmp + branch + jump.
  static constexpr uint32_t HeaderBytes = 8;  ///< per-bucket jump slot.
  static constexpr uint32_t SiteBytes = 24;   ///< inline hash + jump.

  SdtOptions Opts;
  bool ChargeFlagSave;
  FragmentCache *Cache = nullptr;

  uint32_t HeadersAddr = 0; ///< Base of the bucket-header slots.
  std::vector<std::vector<Stub>> Buckets;
  std::unordered_map<uint32_t, uint32_t> SiteCodeAddr;

  uint64_t Stubs = 0;
  Histogram ChainLengths{16, 1};
};

} // namespace core
} // namespace sdt

#endif // STRATAIB_CORE_SIEVEHANDLER_H
