//===- core/FragmentCache.cpp ----------------------------------*- C++ -*-===//
//
// Part of StrataIB. See FragmentCache.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "core/FragmentCache.h"

#include <algorithm>
#include <cassert>

using namespace sdt;
using namespace sdt::core;

uint32_t sdt::core::hostOpBytes(HostOpKind Kind) {
  switch (Kind) {
  case HostOpKind::Guest:
  case HostOpKind::CondBranch:
  case HostOpKind::JumpHost:
  case HostOpKind::SyscallOp:
  case HostOpKind::HaltOp:
  case HostOpKind::TraceBranch:
    return 4;
  case HostOpKind::Elided:
    return 0; // Linearised away; retires the guest instruction for free.
  case HostOpKind::SetLink:
    return 8; // Materialise a 32-bit constant into the link register.
  case HostOpKind::ExitStub:
    return 16; // Target constant + trampoline into the dispatcher.
  case HostOpKind::IBLookup:
    return 0; // The handler reports the mechanism's inline footprint.
  case HostOpKind::SpecGuard:
    // Flag save + materialise predicted target + compare-and-branch +
    // flag restore (the save/restore halves shrink when coalesced; see
    // hostInstrBytes).
    return 20;
  }
  assert(false && "invalid host op kind");
  return 4;
}

uint32_t sdt::core::hostInstrBytes(const HostInstr &HI) {
  if (HI.Kind == HostOpKind::SpecGuard)
    return 12 + (HI.FlagSaveElided ? 0 : 4) + (HI.FlagRestoreElided ? 0 : 4);
  if (HI.Kind == HostOpKind::SetLink && HI.LinkDead)
    return 0;
  return hostOpBytes(HI.Kind);
}

void EvictedRanges::add(uint32_t Begin, uint32_t End) {
  if (Begin < End)
    Spans.emplace_back(Begin, End);
}

void EvictedRanges::finalize() {
  std::sort(Spans.begin(), Spans.end());
  size_t Out = 0;
  for (size_t I = 0; I != Spans.size(); ++I) {
    if (Out != 0 && Spans[I].first <= Spans[Out - 1].second)
      Spans[Out - 1].second = std::max(Spans[Out - 1].second, Spans[I].second);
    else
      Spans[Out++] = Spans[I];
  }
  Spans.resize(Out);
}

bool EvictedRanges::contains(uint32_t Addr) const {
  auto It = std::upper_bound(
      Spans.begin(), Spans.end(), Addr,
      [](uint32_t A, const std::pair<uint32_t, uint32_t> &S) {
        return A < S.first;
      });
  if (It == Spans.begin())
    return false;
  --It;
  return Addr < It->second;
}

FragmentCache::FragmentCache(uint32_t CapacityBytes)
    : CapacityBytes(CapacityBytes) {
  assert(CapacityBytes >= 4096 && "fragment cache unrealistically small");
}

HostLoc FragmentCache::lookup(uint32_t GuestPc) const {
  if (LastGuestValid && LastGuestPc == GuestPc)
    return LastGuestLoc;
  auto It = GuestMap.find(GuestPc);
  if (It == GuestMap.end())
    return HostLoc();
  LastGuestValid = true;
  LastGuestPc = GuestPc;
  LastGuestLoc = HostLoc{It->second, 0};
  return LastGuestLoc;
}

uint32_t FragmentCache::beginFragment() { return Cursor; }

uint32_t FragmentCache::allocateBytes(uint32_t Bytes) {
  uint32_t Addr = Cursor;
  Cursor += Bytes;
  UsedBytes += Bytes;
  return Addr;
}

HostLoc FragmentCache::insert(Fragment Frag) {
  assert(!Frag.Code.empty() && "inserting an empty fragment");
  assert(Frag.HostEntryAddr == Frag.Code.front().HostAddr &&
         "fragment entry address out of sync with its first op");
  uint32_t Index = static_cast<uint32_t>(Fragments.size());
  auto [GuestIt, GuestInserted] = GuestMap.emplace(Frag.GuestEntry, Index);
  assert(GuestInserted && "double translation of a guest address");
  (void)GuestIt;
  (void)GuestInserted;
  if (EvictedGuests.erase(Frag.GuestEntry))
    ++Retranslations;
  EntryMap.emplace(Frag.HostEntryAddr, Index);
  Fragments.push_back(std::move(Frag));
  ++LiveCount;
  invalidateMemos();
  return HostLoc{Index, 0};
}

HostLoc FragmentCache::replaceForGuest(Fragment Frag) {
  assert(!Frag.Code.empty() && "inserting an empty fragment");
  auto It = GuestMap.find(Frag.GuestEntry);
  assert(It != GuestMap.end() && "replaceForGuest without prior fragment");
  uint32_t Index = static_cast<uint32_t>(Fragments.size());
  It->second = Index;
  EntryMap.emplace(Frag.HostEntryAddr, Index);
  Fragments.push_back(std::move(Frag));
  ++LiveCount;
  invalidateMemos();
  return HostLoc{Index, 0};
}

void FragmentCache::flushAll() {
  if (Sink)
    Sink->record(trace::EventKind::CacheFlush,
                 static_cast<uint32_t>(LiveCount), UsedBytes);
  invalidateMemos();
  for (const Fragment &F : Fragments) {
    if (!F.Live)
      continue; // Tombstones were retired when they were evicted.
    RetiredEntries.emplace(F.HostEntryAddr, F.GuestEntry);
    EvictedGuests.insert(F.GuestEntry);
  }
  Fragments.clear();
  GuestMap.clear();
  EntryMap.clear();
  UsedBytes = 0;
  LiveCount = 0;
  ++Flushes;
  // Cursor intentionally NOT reset: host addresses are never reused, so
  // stale translated addresses (fast returns) stay distinguishable.
}

EvictionOutcome FragmentCache::evict(const std::vector<uint32_t> &Victims,
                                     bool EmitEvent) {
  EvictionOutcome Out;
  if (Victims.empty())
    return Out;
  invalidateMemos();
  std::vector<bool> IsVictim(Fragments.size(), false);
  for (uint32_t Index : Victims) {
    Fragment &F = Fragments[Index];
    assert(F.Live && "evicting a fragment twice");
    IsVictim[Index] = true;
    F.Live = false;
    ++F.PlanGen; // Tombstoning invalidates any cached execution plan.
    --LiveCount;
    RetiredEntries.emplace(F.HostEntryAddr, F.GuestEntry);
    EvictedGuests.insert(F.GuestEntry);
    // A trace replacement may have re-pointed this guest entry at a
    // newer fragment; only drop the mapping if it is still ours.
    auto It = GuestMap.find(F.GuestEntry);
    if (It != GuestMap.end() && It->second == Index)
      GuestMap.erase(It);
    EntryMap.erase(F.HostEntryAddr);
    UsedBytes -= F.CodeBytes;
    Out.Ranges.add(F.HostEntryAddr, F.HostEntryAddr + F.CodeBytes);
    ++Out.FragmentsEvicted;
    Out.BytesFreed += F.CodeBytes;
    F.Code.clear();
    F.Code.shrink_to_fit();
  }
  Out.Ranges.finalize();
  // Revert every live fragment's direct links into the freed ranges:
  // patched exit stubs and trace trampolines (JumpHost) go back to
  // unlinked exit stubs, cached SetLink return points are dropped.
  for (Fragment &F : Fragments) {
    if (!F.Live)
      continue;
    for (HostInstr &HI : F.Code) {
      if (HI.Kind == HostOpKind::JumpHost && HI.TargetHost.valid() &&
          IsVictim[HI.TargetHost.Frag]) {
        HI.Kind = HostOpKind::ExitStub;
        HI.TargetHost = HostLoc();
        HI.Linked = false;
        ++F.PlanGen; // Body mutated: cached execution plans are stale.
        ++Out.LinksUnlinked;
        if (Sink)
          Sink->record(trace::EventKind::LinkUnlink, HI.TargetGuest,
                       HI.HostAddr);
      } else if (HI.Kind == HostOpKind::SetLink && HI.Linked &&
                 Out.Ranges.contains(HI.TargetHostAddr)) {
        HI.Linked = false;
        HI.TargetHostAddr = 0;
        ++F.PlanGen; // Body mutated: cached execution plans are stale.
        ++Out.LinksUnlinked;
        if (Sink)
          Sink->record(trace::EventKind::LinkUnlink, HI.TargetGuest,
                       HI.HostAddr);
      }
    }
  }
  if (Sink && EmitEvent)
    Sink->record(trace::EventKind::CacheEvict,
                 static_cast<uint32_t>(Out.FragmentsEvicted),
                 static_cast<uint32_t>(Out.BytesFreed));
  return Out;
}

void FragmentCache::releaseBytes(uint32_t Bytes) {
  assert(Bytes <= UsedBytes && "releasing more bytes than are in use");
  UsedBytes -= Bytes;
}

HostLoc FragmentCache::locForEntryAddr(uint32_t HostEntryAddr) const {
  if (LastEntryValid && LastEntryAddr == HostEntryAddr)
    return LastEntryLoc;
  auto It = EntryMap.find(HostEntryAddr);
  if (It == EntryMap.end())
    return HostLoc();
  LastEntryValid = true;
  LastEntryAddr = HostEntryAddr;
  LastEntryLoc = HostLoc{It->second, 0};
  return LastEntryLoc;
}

uint32_t FragmentCache::retiredGuestEntry(uint32_t HostEntryAddr) const {
  auto It = RetiredEntries.find(HostEntryAddr);
  return It == RetiredEntries.end() ? 0 : It->second;
}
