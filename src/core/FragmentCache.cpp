//===- core/FragmentCache.cpp ----------------------------------*- C++ -*-===//
//
// Part of StrataIB. See FragmentCache.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "core/FragmentCache.h"

#include <cassert>

using namespace sdt;
using namespace sdt::core;

uint32_t sdt::core::hostOpBytes(HostOpKind Kind) {
  switch (Kind) {
  case HostOpKind::Guest:
  case HostOpKind::CondBranch:
  case HostOpKind::JumpHost:
  case HostOpKind::SyscallOp:
  case HostOpKind::HaltOp:
  case HostOpKind::TraceBranch:
    return 4;
  case HostOpKind::Elided:
    return 0; // Linearised away; retires the guest instruction for free.
  case HostOpKind::SetLink:
    return 8; // Materialise a 32-bit constant into the link register.
  case HostOpKind::ExitStub:
    return 16; // Target constant + trampoline into the dispatcher.
  case HostOpKind::IBLookup:
    return 0; // The handler reports the mechanism's inline footprint.
  }
  assert(false && "invalid host op kind");
  return 4;
}

FragmentCache::FragmentCache(uint32_t CapacityBytes)
    : CapacityBytes(CapacityBytes) {
  assert(CapacityBytes >= 4096 && "fragment cache unrealistically small");
}

HostLoc FragmentCache::lookup(uint32_t GuestPc) const {
  if (LastGuestValid && LastGuestPc == GuestPc)
    return LastGuestLoc;
  auto It = GuestMap.find(GuestPc);
  if (It == GuestMap.end())
    return HostLoc();
  LastGuestValid = true;
  LastGuestPc = GuestPc;
  LastGuestLoc = HostLoc{It->second, 0};
  return LastGuestLoc;
}

uint32_t FragmentCache::beginFragment() { return Cursor; }

uint32_t FragmentCache::allocateBytes(uint32_t Bytes) {
  uint32_t Addr = Cursor;
  Cursor += Bytes;
  UsedBytes += Bytes;
  return Addr;
}

HostLoc FragmentCache::insert(Fragment Frag) {
  assert(!Frag.Code.empty() && "inserting an empty fragment");
  assert(Frag.HostEntryAddr == Frag.Code.front().HostAddr &&
         "fragment entry address out of sync with its first op");
  uint32_t Index = static_cast<uint32_t>(Fragments.size());
  auto [GuestIt, GuestInserted] = GuestMap.emplace(Frag.GuestEntry, Index);
  assert(GuestInserted && "double translation of a guest address");
  (void)GuestIt;
  (void)GuestInserted;
  EntryMap.emplace(Frag.HostEntryAddr, Index);
  Fragments.push_back(std::move(Frag));
  invalidateMemos();
  return HostLoc{Index, 0};
}

HostLoc FragmentCache::replaceForGuest(Fragment Frag) {
  assert(!Frag.Code.empty() && "inserting an empty fragment");
  auto It = GuestMap.find(Frag.GuestEntry);
  assert(It != GuestMap.end() && "replaceForGuest without prior fragment");
  uint32_t Index = static_cast<uint32_t>(Fragments.size());
  It->second = Index;
  EntryMap.emplace(Frag.HostEntryAddr, Index);
  Fragments.push_back(std::move(Frag));
  invalidateMemos();
  return HostLoc{Index, 0};
}

void FragmentCache::flushAll() {
  if (Sink)
    Sink->record(trace::EventKind::CacheFlush,
                 static_cast<uint32_t>(Fragments.size()), UsedBytes);
  invalidateMemos();
  for (const Fragment &F : Fragments)
    RetiredEntries.emplace(F.HostEntryAddr, F.GuestEntry);
  Fragments.clear();
  GuestMap.clear();
  EntryMap.clear();
  UsedBytes = 0;
  ++Flushes;
  // Cursor intentionally NOT reset: host addresses are never reused, so
  // stale translated addresses (fast returns) stay distinguishable.
}

HostLoc FragmentCache::locForEntryAddr(uint32_t HostEntryAddr) const {
  if (LastEntryValid && LastEntryAddr == HostEntryAddr)
    return LastEntryLoc;
  auto It = EntryMap.find(HostEntryAddr);
  if (It == EntryMap.end())
    return HostLoc();
  LastEntryValid = true;
  LastEntryAddr = HostEntryAddr;
  LastEntryLoc = HostLoc{It->second, 0};
  return LastEntryLoc;
}

uint32_t FragmentCache::retiredGuestEntry(uint32_t HostEntryAddr) const {
  auto It = RetiredEntries.find(HostEntryAddr);
  return It == RetiredEntries.end() ? 0 : It->second;
}
