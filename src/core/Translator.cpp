//===- core/Translator.cpp -------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See Translator.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "core/Translator.h"

#include "opt/TraceOptimizer.h"
#include "plugin/PluginManager.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace sdt;
using namespace sdt::core;
using namespace sdt::isa;

namespace {

/// Appends one host op to \p Frag at the cache's next simulated address.
void emitOp(FragmentCache &Cache, Fragment &Frag, HostInstr HI) {
  HI.HostAddr = Cache.allocateBytes(hostOpBytes(HI.Kind));
  Frag.Code.push_back(HI);
}

void emitExitStub(FragmentCache &Cache, Fragment &Frag, uint32_t Target,
                  bool Counts) {
  HostInstr HI;
  HI.Kind = HostOpKind::ExitStub;
  HI.TargetGuest = Target;
  HI.CountsAsGuest = Counts;
  emitOp(Cache, Frag, HI);
}

} // namespace

Translator::Translator(vm::DecodeCache &Decoder, FragmentCache &Cache,
                       const SdtOptions &Opts)
    : Decoder(Decoder), Cache(Cache), Opts(Opts) {}

void Translator::setHandlers(IBHandler *Jump, IBHandler *Call,
                             IBHandler *Returns) {
  assert(Jump && Call && Returns && "translator needs all handlers bound");
  Handlers[static_cast<size_t>(IBClass::Jump)] = Jump;
  Handlers[static_cast<size_t>(IBClass::Call)] = Call;
  Handlers[static_cast<size_t>(IBClass::Return)] = Returns;
}

/// Emits an IB-lookup site through the bound mechanism (registers it in
/// the site table).
static void emitIBSite(Translator &X, std::vector<IBSiteInfo> &Sites,
                       FragmentCache &Cache, Fragment &Frag, IBClass Class,
                       uint32_t Pc, unsigned TargetReg) {
  uint32_t SiteId = static_cast<uint32_t>(Sites.size());
  SiteCode Code = X.handlerFor(Class)->emitSite(SiteId, Class, Pc, Cache,
                                                /*SpeculativeFallback=*/false);
  Sites.push_back({Pc, Class, Code});

  HostInstr HI;
  HI.Kind = HostOpKind::IBLookup;
  HI.GuestPc = Pc;
  HI.HostAddr = Code.Addr;
  HI.SiteId = SiteId;
  HI.SiteClass = Class;
  HI.GuestI.Rs1 = static_cast<uint8_t>(TargetReg);
  HI.CountsAsGuest = true;
  Frag.Code.push_back(HI); // Address already allocated by the handler.
}

Expected<HostLoc> Translator::translate(uint32_t GuestPc,
                                        arch::TimingModel *Timing,
                                        SdtStats &Stats) {
  assert(handlerFor(IBClass::Jump) && "translate before setHandlers");
  assert(!Cache.lookup(GuestPc).valid() && "double translation");

  Fragment Frag;
  Frag.GuestEntry = GuestPc;
  Frag.HostEntryAddr = Cache.beginFragment();
  Frag.GuestLow = GuestPc;
  Frag.GuestHigh = GuestPc;

  uint32_t Pc = GuestPc;
  unsigned GuestCount = 0;
  bool Done = false;
  while (!Done) {
    const Instruction *I = Decoder.fetch(Pc);
    if (!I) {
      if (Frag.Code.empty())
        return Error::failure(formatString(
            "cannot translate: invalid guest code at 0x%x", Pc));
      // Stop before the undecodable word; executing past the fragment
      // will re-enter the dispatcher and fault there.
      emitExitStub(Cache, Frag, Pc, /*Counts=*/false);
      break;
    }
    ++GuestCount;
    Frag.GuestLow = std::min(Frag.GuestLow, Pc);
    Frag.GuestHigh = std::max(Frag.GuestHigh, Pc + InstructionSize);

    switch (opcodeInfo(I->Op).Cti) {
    case CtiKind::None: {
      HostInstr HI;
      HI.Kind = HostOpKind::Guest;
      HI.GuestI = *I;
      HI.GuestPc = Pc;
      HI.CountsAsGuest = true;
      emitOp(Cache, Frag, HI);
      Pc += InstructionSize;
      if (GuestCount >= Opts.MaxFragmentInstrs) {
        emitExitStub(Cache, Frag, Pc, /*Counts=*/false);
        Done = true;
      }
      break;
    }
    case CtiKind::CondBranch: {
      HostInstr HI;
      HI.Kind = HostOpKind::CondBranch;
      HI.GuestI = *I;
      HI.GuestPc = Pc;
      HI.CountsAsGuest = true;
      emitOp(Cache, Frag, HI);
      emitExitStub(Cache, Frag, Pc + InstructionSize, false); // Fall-through.
      emitExitStub(Cache, Frag, I->branchTarget(Pc), false);  // Taken.
      Done = true;
      break;
    }
    case CtiKind::DirectJump:
      emitExitStub(Cache, Frag, I->directTarget(), /*Counts=*/true);
      Done = true;
      break;
    case CtiKind::DirectCall: {
      HostInstr Link;
      Link.Kind = HostOpKind::SetLink;
      Link.GuestI.Rd = RegRA;
      Link.GuestPc = Pc;
      Link.TargetGuest = Pc + InstructionSize;
      Link.CountsAsGuest = true;
      emitOp(Cache, Frag, Link);
      emitExitStub(Cache, Frag, I->directTarget(), /*Counts=*/false);
      Done = true;
      break;
    }
    case CtiKind::IndirectJump:
      emitIBSite(*this, Sites, Cache, Frag, IBClass::Jump, Pc, I->Rs1);
      Done = true;
      break;
    case CtiKind::IndirectCall: {
      HostInstr Link;
      Link.Kind = HostOpKind::SetLink;
      Link.GuestI.Rd = I->Rd;
      Link.GuestPc = Pc;
      Link.TargetGuest = Pc + InstructionSize;
      Link.CountsAsGuest = false; // The IBLookup retires the jalr.
      emitOp(Cache, Frag, Link);
      emitIBSite(*this, Sites, Cache, Frag, IBClass::Call, Pc, I->Rs1);
      Done = true;
      break;
    }
    case CtiKind::Return:
      emitIBSite(*this, Sites, Cache, Frag, IBClass::Return, Pc, RegRA);
      Done = true;
      break;
    case CtiKind::Stop:
      if (I->Op == Opcode::Halt) {
        HostInstr HI;
        HI.Kind = HostOpKind::HaltOp;
        HI.GuestPc = Pc;
        HI.CountsAsGuest = true;
        emitOp(Cache, Frag, HI);
      } else {
        HostInstr HI;
        HI.Kind = HostOpKind::SyscallOp;
        HI.GuestPc = Pc;
        HI.CountsAsGuest = true;
        emitOp(Cache, Frag, HI);
        emitExitStub(Cache, Frag, Pc + InstructionSize, false);
      }
      Done = true;
      break;
    }
  }

  Frag.CodeBytes = Cache.beginFragment() - Frag.HostEntryAddr;
  ++Stats.FragmentsTranslated;
  Stats.GuestInstrsTranslated += GuestCount;
  if (Timing)
    Timing->chargeTranslation(arch::CycleCategory::Translate, GuestCount);
  if (Sink)
    Sink->record(trace::EventKind::FragmentTranslated, GuestPc, GuestCount);
  HostLoc Loc = Cache.insert(std::move(Frag));
  if (Plugins)
    Plugins->fragmentTranslated(Loc.Frag, Cache.fragment(Loc.Frag),
                                /*IsTrace=*/false);
  return Loc;
}

Expected<HostLoc> Translator::buildTrace(
    uint32_t Head, const std::vector<bool> &CondOutcomes,
    const std::vector<uint32_t> &SpecTargets, unsigned CtiCount, TraceEnd End,
    arch::TimingModel *Timing, SdtStats &Stats) {
  assert(handlerFor(IBClass::Jump) && "buildTrace before setHandlers");
  assert(Cache.lookup(Head).valid() &&
         "trace head must already have a fragment");

  // Safety valve for pathological straight-line code.
  const unsigned InstrBudget = 4096;

  Fragment Frag;
  Frag.GuestEntry = Head;
  Frag.GuestLow = Head;
  Frag.GuestHigh = Head;

  // Phase 1: stitch the recorded path into a pending op stream. Host
  // addresses are not assigned and IB sites not registered yet, so the
  // optimizer below may still remove and reorder ops for free.
  std::vector<HostInstr> Ops;
  auto pushExitStub = [&Ops](uint32_t Target, bool Counts) {
    HostInstr HI;
    HI.Kind = HostOpKind::ExitStub;
    HI.TargetGuest = Target;
    HI.CountsAsGuest = Counts;
    Ops.push_back(HI);
  };
  auto pushIBSite = [&Ops](IBClass Class, uint32_t Pc, unsigned TargetReg,
                           bool Fallback) {
    HostInstr HI;
    HI.Kind = HostOpKind::IBLookup;
    HI.GuestPc = Pc;
    HI.SiteClass = Class;
    HI.SpecFallback = Fallback;
    HI.GuestI.Rs1 = static_cast<uint8_t>(TargetReg);
    HI.CountsAsGuest = true;
    Ops.push_back(HI);
  };

  uint32_t Pc = Head;
  size_t OutcomeIdx = 0;
  size_t SpecIdx = 0;
  unsigned Ctis = 0;
  unsigned GuestCount = 0;
  bool Done = false;

  // An indirect CTI either crosses the trace behind a speculation guard
  // (when recording captured a monomorphic target for it) or terminates
  // it with a normal IB-lookup site.
  auto emitIndirect = [&](IBClass Class, unsigned TargetReg) {
    if (SpecIdx < SpecTargets.size()) {
      uint32_t Predicted = SpecTargets[SpecIdx++];
      HostInstr G;
      G.Kind = HostOpKind::SpecGuard;
      G.GuestPc = Pc;
      G.GuestI.Rs1 = static_cast<uint8_t>(TargetReg);
      G.TargetGuest = Predicted;
      G.SiteClass = Class;
      G.CountsAsGuest = false; // the executor retires it on guard hits
      G.OffTraceIndex = static_cast<uint32_t>(Ops.size()) + 1;
      Ops.push_back(G);
      pushIBSite(Class, Pc, TargetReg, /*Fallback=*/true);
      ++Stats.SpecGuardsEmitted;
      Pc = Predicted;
      ++Ctis;
      return;
    }
    assert(End == TraceEnd::AtIB && Ctis == CtiCount &&
           "trace walk diverged from the recorded path");
    pushIBSite(Class, Pc, TargetReg, /*Fallback=*/false);
    Done = true;
  };

  while (!Done) {
    if (GuestCount >= InstrBudget) {
      pushExitStub(Pc, /*Counts=*/false);
      break;
    }
    const Instruction *I = Decoder.fetch(Pc);
    if (!I) {
      if (Ops.empty())
        return Error::failure(formatString(
            "cannot build trace: invalid guest code at 0x%x", Pc));
      pushExitStub(Pc, /*Counts=*/false);
      break;
    }
    ++GuestCount;
    Frag.GuestLow = std::min(Frag.GuestLow, Pc);
    Frag.GuestHigh = std::max(Frag.GuestHigh, Pc + InstructionSize);

    switch (opcodeInfo(I->Op).Cti) {
    case CtiKind::None: {
      HostInstr HI;
      HI.Kind = HostOpKind::Guest;
      HI.GuestI = *I;
      HI.GuestPc = Pc;
      HI.CountsAsGuest = true;
      Ops.push_back(HI);
      Pc += InstructionSize;
      break;
    }
    case CtiKind::CondBranch: {
      assert(OutcomeIdx < CondOutcomes.size() &&
             "recorded outcomes exhausted mid-trace");
      bool Taken = CondOutcomes[OutcomeIdx++];
      HostInstr HI;
      HI.Kind = HostOpKind::TraceBranch;
      HI.GuestI = *I;
      HI.GuestPc = Pc;
      HI.OnTraceTaken = Taken;
      HI.CountsAsGuest = true;
      HI.OffTraceIndex = static_cast<uint32_t>(Ops.size()) + 1;
      Ops.push_back(HI);
      uint32_t TakenTarget = I->branchTarget(Pc);
      uint32_t FallThrough = Pc + InstructionSize;
      // Off-trace exit stub sits right after the branch (until stub
      // outlining moves it to the tail and retargets OffTraceIndex).
      pushExitStub(Taken ? FallThrough : TakenTarget, false);
      Pc = Taken ? TakenTarget : FallThrough;
      ++Ctis;
      break;
    }
    case CtiKind::DirectJump: {
      HostInstr HI;
      HI.Kind = HostOpKind::Elided;
      HI.GuestPc = Pc;
      HI.TargetGuest = I->directTarget();
      HI.CountsAsGuest = true;
      Ops.push_back(HI);
      Pc = I->directTarget();
      ++Ctis;
      break;
    }
    case CtiKind::DirectCall: {
      // Followed inline: the callee body continues on the trace.
      HostInstr Link;
      Link.Kind = HostOpKind::SetLink;
      Link.GuestI.Rd = RegRA;
      Link.GuestPc = Pc;
      Link.TargetGuest = Pc + InstructionSize;
      Link.CountsAsGuest = true;
      Ops.push_back(Link);
      Pc = I->directTarget();
      ++Ctis;
      break;
    }
    case CtiKind::IndirectJump:
      emitIndirect(IBClass::Jump, I->Rs1);
      break;
    case CtiKind::IndirectCall: {
      HostInstr Link;
      Link.Kind = HostOpKind::SetLink;
      Link.GuestI.Rd = I->Rd;
      Link.GuestPc = Pc;
      Link.TargetGuest = Pc + InstructionSize;
      Link.CountsAsGuest = false;
      Ops.push_back(Link);
      emitIndirect(IBClass::Call, I->Rs1);
      break;
    }
    case CtiKind::Return:
      emitIndirect(IBClass::Return, RegRA);
      break;
    case CtiKind::Stop:
      assert(End == TraceEnd::AtStop && Ctis == CtiCount &&
             "trace walk diverged from the recorded path");
      if (I->Op == Opcode::Halt) {
        HostInstr HI;
        HI.Kind = HostOpKind::HaltOp;
        HI.GuestPc = Pc;
        HI.CountsAsGuest = true;
        Ops.push_back(HI);
      } else {
        HostInstr HI;
        HI.Kind = HostOpKind::SyscallOp;
        HI.GuestPc = Pc;
        HI.CountsAsGuest = true;
        Ops.push_back(HI);
        pushExitStub(Pc + InstructionSize, false);
      }
      Done = true;
      break;
    }

    // The recorded path ends after CtiCount transfers (loop-close lands
    // back on Head; the stub below then self-links to this trace).
    if (!Done && End == TraceEnd::CtiBudget && Ctis == CtiCount) {
      pushExitStub(Pc, /*Counts=*/false);
      Done = true;
    }
  }

  // Phase 2: the superblock pass pipeline (docs/Superblocks.md).
  if (Opts.OptimizeTraces) {
    opt::TraceOptStats O = opt::optimizeTrace(Ops, Opts);
    ++Stats.TracesOptimized;
    Stats.TraceGlueElided += O.GlueElided;
    Stats.TraceConstFolds += O.ConstFolds;
    Stats.TraceDeadLinks += O.DeadLinks;
    Stats.TraceStubsOutlined += O.StubsOutlined;
    Stats.TraceFlagPairsElided += O.FlagPairsElided;
    if (Sink)
      Sink->record(trace::EventKind::TraceOptimized, Head,
                   static_cast<uint32_t>(O.GlueElided + O.DeadLinks +
                                         O.FlagPairsElided));
  }

  // Phase 3: layout — assign final simulated addresses and register IB
  // sites through the bound mechanisms, in (possibly reordered) order.
  Frag.HostEntryAddr = Cache.beginFragment();
  for (HostInstr &HI : Ops) {
    if (HI.Kind == HostOpKind::IBLookup) {
      uint32_t SiteId = static_cast<uint32_t>(Sites.size());
      SiteCode Code = handlerFor(HI.SiteClass)
                          ->emitSite(SiteId, HI.SiteClass, HI.GuestPc, Cache,
                                     HI.SpecFallback);
      Sites.push_back({HI.GuestPc, HI.SiteClass, Code});
      HI.SiteId = SiteId;
      HI.HostAddr = Code.Addr;
    } else {
      HI.HostAddr = Cache.allocateBytes(hostInstrBytes(HI));
    }
  }
  Frag.Code = std::move(Ops);

  Frag.CodeBytes = Cache.beginFragment() - Frag.HostEntryAddr;
  ++Stats.FragmentsTranslated;
  ++Stats.TracesBuilt;
  Stats.GuestInstrsTranslated += GuestCount;
  Stats.TraceGuestInstrs += GuestCount;
  if (Timing)
    Timing->chargeTranslation(arch::CycleCategory::Translate, GuestCount);
  if (Sink) {
    Sink->record(trace::EventKind::FragmentTranslated, Head, GuestCount);
    Sink->record(trace::EventKind::TraceBuilt, Head, GuestCount);
  }
  HostLoc Loc = Cache.replaceForGuest(std::move(Frag));
  if (Plugins)
    Plugins->fragmentTranslated(Loc.Frag, Cache.fragment(Loc.Frag),
                                /*IsTrace=*/true);
  return Loc;
}
