//===- core/FragmentCache.h - Translated-code cache --------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fragment cache ("code cache"): the arena of translated fragments,
/// the guest-PC → fragment map, and the simulated host address space the
/// timing model fetches from. IB handlers also allocate their code-resident
/// structures (sieve stubs) here, so fragment-cache pressure is shared
/// between fragments and lookup code — as it is in a real SDT.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_CORE_FRAGMENTCACHE_H
#define STRATAIB_CORE_FRAGMENTCACHE_H

#include "core/HostInstr.h"
#include "trace/TraceSink.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sdt {
namespace core {

/// Base simulated address of the fragment cache. Guest addresses are far
/// below this, which is what lets fast returns distinguish translated
/// return addresses from guest ones.
inline constexpr uint32_t FragmentCacheBase = 0x40000000;

/// One translated fragment.
struct Fragment {
  uint32_t GuestEntry = 0;    ///< Guest PC this fragment translates.
  uint32_t HostEntryAddr = 0; ///< Simulated address of the first host op.
  uint32_t CodeBytes = 0;     ///< Total simulated bytes (incl. IB inline).
  /// Guest source hull [GuestLow, GuestHigh): every guest code word read
  /// to build this fragment lies inside it. Traces can span discontiguous
  /// regions, so the hull over-approximates — which only over-invalidates
  /// when a guest store dirties nearby code, never misses a dependency.
  uint32_t GuestLow = 0;
  uint32_t GuestHigh = 0;
  std::vector<HostInstr> Code;
  uint64_t ExecCount = 0;
  /// Plan-coherence generation (docs/ExecutionEngine.md). Bumped every
  /// time this fragment's Code is mutated in place after installation —
  /// link patching (ExitStub -> JumpHost), lazy SetLink host-address
  /// caching, trace trampolines, eviction unlinking — and on
  /// tombstoning. The pre-decoded execution engine caches a per-fragment
  /// plan stamped with the generation it was built from and lazily
  /// re-plans when the stamps diverge.
  uint64_t PlanGen = 0;
  /// False once a policy has evicted this fragment. Evicted fragments
  /// stay in the vector as tombstones so HostLoc fragment indices held
  /// by linked JumpHost ops remain stable.
  bool Live = true;

  /// True when the source hull intersects guest range [Begin, End).
  bool overlapsGuest(uint32_t Begin, uint32_t End) const {
    return GuestLow < End && Begin < GuestHigh;
  }
};

/// The simulated host address ranges freed by one partial eviction, in
/// the form every referencing structure needs to test its cached
/// pointers against. Ranges are half-open [Begin, End).
class EvictedRanges {
public:
  void add(uint32_t Begin, uint32_t End);
  /// Sorts and merges; must be called once before contains().
  void finalize();
  bool contains(uint32_t Addr) const;
  bool empty() const { return Spans.empty(); }
  const std::vector<std::pair<uint32_t, uint32_t>> &ranges() const {
    return Spans;
  }

private:
  std::vector<std::pair<uint32_t, uint32_t>> Spans;
};

/// What one FragmentCache::evict() call did.
struct EvictionOutcome {
  uint64_t FragmentsEvicted = 0;
  uint64_t BytesFreed = 0;
  /// Incoming direct links (JumpHost / cached SetLink targets) reverted
  /// to dispatcher stubs because they pointed into the evicted ranges.
  uint64_t LinksUnlinked = 0;
  EvictedRanges Ranges;
};

/// The translated-code cache.
class FragmentCache {
public:
  explicit FragmentCache(uint32_t CapacityBytes);

  /// Looks up the fragment translating guest address \p GuestPc; invalid
  /// HostLoc when absent. Repeated lookups of the same guest address
  /// (hot dispatch targets) are served from a one-entry memo without
  /// touching the hash map.
  HostLoc lookup(uint32_t GuestPc) const;

  /// Registers \p Frag (translated code for Frag.GuestEntry). Returns its
  /// entry location. The fragment must have been laid out with
  /// beginFragment()/allocateBytes().
  HostLoc insert(Fragment Frag);

  /// Re-points the guest-PC mapping for Frag.GuestEntry (which must
  /// already be translated) to \p Frag — used when a hot path is
  /// re-translated as a trace. The old fragment stays live (existing
  /// links into it keep working); callers typically patch its head into
  /// a trampoline to the replacement.
  HostLoc replaceForGuest(Fragment Frag);

  /// Starts laying out a new fragment: returns its host entry address.
  uint32_t beginFragment();

  /// Allocates \p Bytes of simulated code space at the current cursor
  /// (fragment bodies and handler stubs alike) and returns its address.
  uint32_t allocateBytes(uint32_t Bytes);

  /// True when more than CapacityBytes are live since the last flush —
  /// the caller should flush before translating more.
  bool isFull() const { return UsedBytes >= CapacityBytes; }

  /// Drops every fragment (and the guest/host maps). Host addresses are
  /// never reused: the cursor keeps monotonically increasing, so stale
  /// translated addresses can still be recognised via retiredGuestEntry().
  void flushAll();

  /// Evicts the fragments at \p Victims (live-fragment indices). Victims
  /// become tombstones — their vector slots survive so HostLoc indices
  /// stay stable — and every live fragment's direct links into the freed
  /// ranges are reverted to unlinked exit stubs. The caller must then
  /// invalidate IB-handler state against the returned ranges before
  /// executing any translated code. \p EmitEvent controls the aggregate
  /// CacheEvict trace event: capacity evictions emit it (reconciled
  /// against SdtStats::PartialEvictions); code-write invalidations pass
  /// false and emit their own per-fragment events instead.
  EvictionOutcome evict(const std::vector<uint32_t> &Victims,
                        bool EmitEvent = true);

  /// Returns \p Bytes of simulated code space to the capacity budget
  /// (used when code-resident handler structures — sieve stubs — are
  /// discarded during invalidation). Addresses are never reused; only
  /// the pressure accounting shrinks.
  void releaseBytes(uint32_t Bytes);

  /// True when the fragment at \p Index has not been evicted.
  bool isLive(uint32_t Index) const { return Fragments[Index].Live; }

  /// Records that the fragment body at \p Index was patched in place
  /// (link patching, SetLink caching, trace trampolines) so any cached
  /// execution plan for it is stale. evict() bumps generations itself.
  void noteBodyPatched(uint32_t Index) { ++Fragments[Index].PlanGen; }

  /// Live (non-tombstoned) fragments.
  size_t liveFragmentCount() const { return LiveCount; }

  /// Fragments re-inserted for a guest entry previously freed by
  /// evict() or flushAll() — the retranslation (thrash) counter.
  uint64_t retranslations() const { return Retranslations; }

  /// Maps a live fragment entry address to its location; invalid HostLoc
  /// when unknown (e.g. flushed). Memoised like lookup(): IB mechanisms
  /// resolve the same hot entry address on every dispatch.
  HostLoc locForEntryAddr(uint32_t HostEntryAddr) const;

  /// For a fragment entry address retired by a flush: the guest PC it used
  /// to translate (so fast-return addresses survive flushes); 0 if unknown.
  uint32_t retiredGuestEntry(uint32_t HostEntryAddr) const;

  /// Access to a live fragment.
  Fragment &fragment(uint32_t Index) { return Fragments[Index]; }
  const Fragment &fragment(uint32_t Index) const { return Fragments[Index]; }

  size_t fragmentCount() const { return Fragments.size(); }
  uint32_t usedBytes() const { return UsedBytes; }
  uint64_t flushCount() const { return Flushes; }

  /// Attaches the engine's trace sink (null = tracing off); flushAll()
  /// emits a CacheFlush event through it.
  void setTraceSink(trace::TraceSink *S) { Sink = S; }

private:
  void invalidateMemos() {
    LastGuestValid = false;
    LastEntryValid = false;
  }

  uint32_t CapacityBytes;
  trace::TraceSink *Sink = nullptr; ///< Null when tracing is off.
  uint32_t Cursor = FragmentCacheBase;
  uint32_t UsedBytes = 0;
  uint64_t Flushes = 0;
  size_t LiveCount = 0;
  uint64_t Retranslations = 0;
  std::vector<Fragment> Fragments;
  std::unordered_map<uint32_t, uint32_t> GuestMap; ///< guest PC -> index.
  std::unordered_map<uint32_t, uint32_t> EntryMap; ///< host addr -> index.
  std::unordered_map<uint32_t, uint32_t> RetiredEntries; ///< host -> guest.
  /// Guest entries whose translation was freed (evicted or flushed) and
  /// not yet re-translated; feeds the retranslation counter.
  std::unordered_set<uint32_t> EvictedGuests;

  /// One-entry memos for the two hot map lookups. Only successful
  /// lookups are memoised; any mutation invalidates both.
  mutable bool LastGuestValid = false;
  mutable uint32_t LastGuestPc = 0;
  mutable HostLoc LastGuestLoc;
  mutable bool LastEntryValid = false;
  mutable uint32_t LastEntryAddr = 0;
  mutable HostLoc LastEntryLoc;
};

} // namespace core
} // namespace sdt

#endif // STRATAIB_CORE_FRAGMENTCACHE_H
