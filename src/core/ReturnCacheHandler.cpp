//===- core/ReturnCacheHandler.cpp -----------------------------*- C++ -*-===//
//
// Part of StrataIB. See ReturnCacheHandler.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "core/ReturnCacheHandler.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace sdt;
using namespace sdt::core;

ReturnCacheHandler::ReturnCacheHandler(const SdtOptions &Opts) : Opts(Opts) {
  assert(isPowerOf2(Opts.ReturnCacheEntries) &&
         "return cache size must be a power of two");
  Entries.assign(Opts.ReturnCacheEntries, Entry());
}

SiteCode ReturnCacheHandler::emitSite(uint32_t SiteId, IBClass Class,
                                      uint32_t GuestPc, FragmentCache &Cache,
                                      bool SpeculativeFallback) {
  (void)GuestPc;
  (void)SpeculativeFallback; // The hashed table jump is fixed-size.
  assert(Class == IBClass::Return && "return cache bound to a non-return");
  (void)Class;
  uint32_t Addr = Cache.allocateBytes(SiteBytes);
  SiteCodeAddr[SiteId] = Addr;
  return {Addr, SiteBytes};
}

LookupOutcome ReturnCacheHandler::lookup(uint32_t SiteId,
                                         uint32_t GuestTarget,
                                         arch::TimingModel *Timing) {
  uint32_t Index =
      hashAddress(HashKind::ShiftMask, GuestTarget, Opts.ReturnCacheEntries);
  uint32_t EntryAddr = ReturnCacheRegionBase + Index * 8;
  uint32_t SiteAddr = SiteCodeAddr.at(SiteId);

  if (Timing) {
    Timing->chargeCodeRange(arch::CycleCategory::IBLookup, SiteAddr + 4,
                            SiteBytes - 4);
    // No flag save: condition codes are dead across returns.
    Timing->chargeAluOps(arch::CycleCategory::IBLookup,
                         hashAluOpCount(HashKind::ShiftMask) + 1);
    Timing->chargeLoad(arch::CycleCategory::IBLookup, EntryAddr);
    Timing->chargeAluOps(arch::CycleCategory::IBLookup, 1);
  }

  Entry &E = Entries[Index];
  if (E.GuestTag == GuestTarget) {
    if (Timing) {
      Timing->chargeLoad(arch::CycleCategory::IBLookup, EntryAddr + 4);
      Timing->chargeIndirectJump(arch::CycleCategory::IBLookup, SiteAddr,
                                 E.HostEntryAddr);
    }
    countLookup(/*Hit=*/true, SiteId, GuestTarget);
    return {true, E.HostEntryAddr};
  }
  countLookup(/*Hit=*/false, SiteId, GuestTarget);
  return {};
}

void ReturnCacheHandler::record(uint32_t SiteId, uint32_t GuestTarget,
                                uint32_t HostEntryAddr,
                                arch::TimingModel *Timing) {
  (void)SiteId;
  uint32_t Index =
      hashAddress(HashKind::ShiftMask, GuestTarget, Opts.ReturnCacheEntries);
  Entries[Index] = {GuestTarget, HostEntryAddr};
  if (Timing) {
    uint32_t EntryAddr = ReturnCacheRegionBase + Index * 8;
    Timing->chargeStore(arch::CycleCategory::IBLookup, EntryAddr);
    Timing->chargeStore(arch::CycleCategory::IBLookup, EntryAddr + 4);
  }
}

void ReturnCacheHandler::flush() {
  Entries.assign(Opts.ReturnCacheEntries, Entry());
  SiteCodeAddr.clear();
}

uint64_t ReturnCacheHandler::invalidateEvicted(const EvictedRanges &Ranges,
                                               FragmentCache &Cache,
                                               arch::TimingModel *Timing) {
  (void)Cache; // The table is data-resident.
  uint64_t Cleared = 0;
  for (uint32_t I = 0; I != Opts.ReturnCacheEntries; ++I) {
    Entry &E = Entries[I];
    if (E.GuestTag == 0 || !Ranges.contains(E.HostEntryAddr))
      continue;
    E = Entry();
    ++Cleared;
    if (Timing)
      Timing->chargeStore(arch::CycleCategory::IBLookup,
                          ReturnCacheRegionBase + I * 8);
  }
  return Cleared;
}

std::string ReturnCacheHandler::statsSummary() const {
  return formatString(
      "return-cache: %u entries, lookups=%llu hits=%llu (%.2f%%)",
      Opts.ReturnCacheEntries, static_cast<unsigned long long>(lookups()),
      static_cast<unsigned long long>(hits()),
      lookups() ? 100.0 * static_cast<double>(hits()) /
                      static_cast<double>(lookups())
                : 0.0);
}
