//===- core/HostInstr.h - Translated host code representation ----*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The host-code representation translated fragments are made of. Each
/// HostInstr models one host instruction (or one fixed inline sequence,
/// for IB-lookup sites) at a simulated fragment-cache address, so the
/// timing model sees the translated program's real instruction-fetch
/// footprint.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_CORE_HOSTINSTR_H
#define STRATAIB_CORE_HOSTINSTR_H

#include "core/SdtOptions.h"
#include "isa/Instruction.h"

#include <cstdint>

namespace sdt {
namespace core {

/// A position inside the fragment cache: fragment index + instruction
/// index within that fragment.
struct HostLoc {
  uint32_t Frag = UINT32_MAX;
  uint32_t Index = 0;

  bool valid() const { return Frag != UINT32_MAX; }
  bool operator==(const HostLoc &Other) const = default;
};

/// Host instruction kinds.
enum class HostOpKind : uint8_t {
  /// A guest non-CTI instruction translated 1:1 (semantics in GuestI).
  Guest,
  /// A guest conditional branch. Successors by fragment layout: the
  /// instruction at Index+1 is the fall-through stub, Index+2 the taken
  /// stub.
  CondBranch,
  /// Unconditional jump to TargetHost (a patched/linked stub).
  JumpHost,
  /// Unlinked exit: enter the dispatcher for guest address TargetGuest.
  /// The dispatcher patches this to JumpHost when fragment linking is on.
  ExitStub,
  /// Writes the return address into register GuestI.Rd before a call.
  /// Under fast returns the value is the *host* address of the return
  /// point's fragment (resolved lazily on first execution); otherwise it
  /// is the guest return address TargetGuest.
  SetLink,
  /// An indirect-branch translation site (SiteId indexes the engine's
  /// site table). The branch target is read from register GuestI.Rs1
  /// (r31 for returns).
  IBLookup,
  /// A guest `syscall` passed through to the host.
  SyscallOp,
  /// A guest `halt`.
  HaltOp,
  /// A guest conditional branch on a trace. The on-trace direction
  /// (OnTraceTaken) falls through past the off-trace exit stub at
  /// Index+1; the other direction takes that stub.
  TraceBranch,
  /// A direct jump eliminated by trace linearisation: retires one guest
  /// instruction at zero simulated cost and falls through.
  Elided,
  /// A speculative IB-target guard on a trace: compares the dynamic
  /// target (register GuestI.Rs1) against the predicted guest target
  /// (TargetGuest). On a match execution falls through into the inlined
  /// continuation; on a miss it branches to the fallback IBLookup at
  /// OffTraceIndex, which runs the bound mechanism's normal sequence.
  SpecGuard,
};

/// One host instruction.
struct HostInstr {
  HostOpKind Kind = HostOpKind::HaltOp;
  /// The originating guest instruction (Guest/CondBranch/SetLink/IBLookup).
  isa::Instruction GuestI;
  /// Guest address this op was translated from (diagnostics, profiles).
  uint32_t GuestPc = 0;
  /// Simulated fragment-cache address of this op.
  uint32_t HostAddr = 0;
  /// ExitStub/SetLink: the guest target / guest return address.
  uint32_t TargetGuest = 0;
  /// JumpHost, or a linked ExitStub/SetLink: resolved host location.
  HostLoc TargetHost;
  /// SetLink (fast returns): resolved host entry address to write.
  uint32_t TargetHostAddr = 0;
  /// ExitStub/SetLink: resolution happened (stub patched / link cached).
  bool Linked = false;
  /// IBLookup: index into the engine's IB-site table.
  uint32_t SiteId = 0;
  /// IBLookup: which dynamic class this site is.
  IBClass SiteClass = IBClass::Jump;
  /// IBLookup: this site is the fallback behind a SpecGuard — it only
  /// executes on guard misses, so handlers may emit a slimmer site.
  bool SpecFallback = false;
  /// TraceBranch: the branch direction that continues along the trace.
  bool OnTraceTaken = false;
  /// True when executing this op corresponds to retiring one guest
  /// instruction (keeps SDT and native instruction counts identical).
  /// Guest/CondBranch/IBLookup/Syscall/Halt always count; an ExitStub
  /// counts when it stands for a direct `j`; a SetLink counts when it
  /// stands for a direct `jal` (a `jalr`'s count lives on its IBLookup).
  bool CountsAsGuest = false;

  // --- Trace-optimizer annotations (src/opt) ----------------------------
  /// TraceBranch: fragment-local index of the off-trace exit stub.
  /// SpecGuard: fragment-local index of the fallback IBLookup site.
  /// Set at emission (the op right after); stub outlining retargets it.
  uint32_t OffTraceIndex = 0;
  /// Elided direct jumps folded into this op by glue elimination: each
  /// one retires a guest instruction before this op executes.
  uint16_t ElidedJumps = 0;
  /// Guest op whose result was proven constant within the trace: the
  /// executor writes FoldedValue to GuestI.Rd instead of re-computing
  /// (modeled as a constant materialisation, 1 ALU op).
  bool Folded = false;
  uint32_t FoldedValue = 0;
  /// SetLink proven dead (link register overwritten before any read, no
  /// trace exit in between): retires its guest instruction but skips the
  /// register write and its cost; occupies no code bytes.
  bool LinkDead = false;
  /// SpecGuard: flag save/restore elided by coalescing with an adjacent
  /// guard (back-to-back guards share one save/restore pair).
  bool FlagSaveElided = false;
  bool FlagRestoreElided = false;
};

/// Simulated host code-size of each HostOpKind, in bytes. IBLookup sites
/// additionally occupy the mechanism's inline footprint (reported by the
/// handler when the site is emitted).
uint32_t hostOpBytes(HostOpKind Kind);

/// Code-size of one concrete op, honouring optimizer annotations: a dead
/// SetLink occupies nothing, and a SpecGuard shrinks when its flag
/// save/restore was coalesced away.
uint32_t hostInstrBytes(const HostInstr &HI);

} // namespace core
} // namespace sdt

#endif // STRATAIB_CORE_HOSTINSTR_H
